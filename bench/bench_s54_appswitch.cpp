// §5.4 (text): thread/application switching costs.
//
// Paper numbers: Skyloft inter-application uthread switch 1905 ns (kernel
// module suspends one kthread and wakes another); Linux kthread switch
// 1124 ns when both are runnable, 2471 ns when one must be woken. Measured
// here end-to-end through the engine: the latency difference between a task
// chain that stays in one application and one that alternates applications.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "src/simcore/simulation.h"
#include "src/libos/percpu_engine.h"
#include "src/policies/round_robin.h"

namespace skyloft {
namespace {

struct Rig {
  Rig() {
    MachineConfig mcfg;
    mcfg.num_cores = 1;
    machine = std::make_unique<Machine>(&sim, mcfg);
    chip = std::make_unique<UintrChip>(machine.get());
    kernel = std::make_unique<KernelSim>(machine.get(), chip.get());
  }
  Simulation sim;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<UintrChip> chip;
  std::unique_ptr<KernelSim> kernel;
};

// Runs 2N back-to-back 10 us tasks on one core and returns the makespan.
// With `alternate` the tasks alternate between two applications, paying one
// kernel-module switch per assignment.
DurationNs Makespan(bool alternate, int n) {
  Rig rig;
  RoundRobinPolicy policy(kInfiniteSlice);
  PerCpuEngineConfig cfg;
  cfg.base.worker_cores = {0};
  cfg.base.local_switch_ns = 100;
  cfg.tick_path = TickPath::kNone;
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy, cfg);
  App* a = engine.CreateApp("a");
  App* b = engine.CreateApp("b");
  for (int i = 0; i < 2 * n; i++) {
    App* app = alternate ? (i % 2 == 0 ? a : b) : a;
    engine.Submit(engine.NewTask(app, Micros(10)));
  }
  rig.sim.Run();
  return rig.sim.Now();
}

void Main() {
  constexpr int kPairs = 1000;
  const DurationNs same_app = Makespan(false, kPairs);
  const DurationNs cross_app = Makespan(true, kPairs);
  // Alternating pays one inter-application switch per task.
  const double per_switch =
      static_cast<double>(cross_app - same_app) / (2.0 * kPairs);

  Rig rig;
  const CostModel& costs = rig.machine->costs();
  BenchReporter reporter("s54_appswitch");
  reporter.MetaNum("pairs", kPairs);
  auto report = [&reporter](const char* op, double paper, double meas) {
    std::printf("%-44s %10.0f %10.0f\n", op, paper, meas);
    reporter.AddRow().Str("operation", op).Num("paper_ns", paper).Num("meas_ns", meas);
  };
  std::printf("=== Section 5.4: thread/application switching ===\n");
  std::printf("%-44s %10s %10s\n", "operation", "paper ns", "meas ns");
  report("Skyloft inter-application uthread switch", 1905, per_switch);
  report("Linux kthread switch (both runnable)", 1124,
         static_cast<double>(costs.linux_kthread_switch_ns));
  report("Linux kthread switch (wake first)", 2471,
         static_cast<double>(costs.linux_kthread_wake_switch_ns));
  report("senduipi re-arm in timer handler (cycles)", 123,
         static_cast<double>(NsToCycles(costs.SenduipiSnRearmNs())));
  std::printf(
      "\nShape check: inter-app switch ~1.9 us >> intra-app switch (~0.1 us),\n"
      "which is why policies should minimize cross-application switching (§3.3).\n");
  reporter.WriteFile();
}

}  // namespace
}  // namespace skyloft

int main() { skyloft::Main(); }
