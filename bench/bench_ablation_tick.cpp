// Ablation: timer-tick delivery path for preemptive work stealing.
//
// Fixes the policy (work stealing, 15 us quantum) and the workload (RocksDB
// bimodal at 60% load, 8 workers) and sweeps how ticks reach the scheduler:
//   - user-timer: LAPIC timer delegated to user space (the paper's design)
//   - user-deadline: User-Timer Events (§6 future hardware) — per-task
//     deadlines, zero ticks on idle cores
//   - kernel-timer: 1 kHz kernel tick (CONFIG_HZ ceiling)
//   - utimer-ipi: dedicated core sending user IPIs (one fewer worker)
//   - none: no preemption at all
// Reported: achieved load, p99.9 slowdown, and ticks taken (overhead proxy).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/simcore/simulation.h"
#include "src/apps/workloads.h"
#include "src/policies/work_stealing.h"
#include "src/runtime/uthread.h"

namespace skyloft {
namespace {

constexpr int kWorkers = 8;
constexpr DurationNs kQuantum = Micros(15);

SystemSetup MakeTickVariant(const std::string& kind) {
  SystemSetup setup;
  setup.name = "ablate-tick-" + kind;
  setup.sim = std::make_unique<Simulation>();
  MachineConfig mcfg;
  mcfg.num_cores = kWorkers + 1;  // room for the utimer core
  setup.machine = std::make_unique<Machine>(setup.sim.get(), mcfg);
  setup.chip = std::make_unique<UintrChip>(setup.machine.get());
  setup.kernel = std::make_unique<KernelSim>(setup.machine.get(), setup.chip.get());

  WorkStealingParams params;
  params.quantum = kind == "none" ? kInfiniteSliceWs : kQuantum;
  setup.policy = std::make_unique<WorkStealingPolicy>(params);

  PerCpuEngineConfig cfg;
  const int workers = kind == "utimer-ipi" ? kWorkers - 1 : kWorkers;
  for (int i = 0; i < workers; i++) {
    cfg.base.worker_cores.push_back(i);
  }
  cfg.base.local_switch_ns = 100;
  cfg.timer_hz = kSecond / kQuantum;
  if (kind == "user-timer") {
    cfg.tick_path = TickPath::kUserTimer;
  } else if (kind == "user-deadline") {
    cfg.tick_path = TickPath::kUserDeadline;
    cfg.deadline_quantum = kQuantum;
  } else if (kind == "kernel-timer") {
    cfg.tick_path = TickPath::kKernelTimer;
    cfg.timer_hz = 1000;  // CONFIG_HZ ceiling
    cfg.kernel_tick_cost_ns = 1500;
    cfg.base.local_switch_ns = setup.machine->costs().linux_kthread_switch_ns;
  } else if (kind == "utimer-ipi") {
    cfg.tick_path = TickPath::kUtimerIpi;
    cfg.utimer_core = kWorkers - 1 + 1;  // dedicated core past the workers
  } else {
    cfg.tick_path = TickPath::kNone;
    cfg.base.preemption = false;
  }
  setup.engine = std::make_unique<PerCpuEngine>(setup.machine.get(), setup.chip.get(),
                                                setup.kernel.get(), setup.policy.get(), cfg);
  setup.app = setup.engine->CreateApp("server");
  setup.engine->Start();
  return setup;
}

void Main() {
  const RequestMix mix = RocksdbBimodalMix();
  const double rate = 0.6 * kWorkers / (MixMeanNs(mix) / 1e9);
  const std::vector<std::string> variants = {"user-timer", "user-deadline", "kernel-timer",
                                             "utimer-ipi", "none"};

  BenchReporter reporter("ablation_tick");
  reporter.MetaNum("workers", kWorkers);
  reporter.MetaNum("quantum_us", static_cast<double>(kQuantum) / 1000.0);
  reporter.MetaNum("offered_rps", rate);

  // The utimer/uirq columns are measured interrupt volume from the chip and
  // kernel counters: how many user timer IRQs fired and how often the kernel
  // (re)programmed the timer on each path.
  PrintHeader("Ablation: tick path x RocksDB bimodal @60% (8 workers, q=15us)",
              {"tick path", "achieved", "p999 slowdn", "ticks/ms", "utimer irq", "timer prog"});
  for (const std::string& kind : variants) {
    SystemSetup setup = MakeTickVariant(kind);
    LoadPointOptions options;
    options.warmup = Millis(100);
    options.measure = Millis(600);
    const LoadPointResult r = RunLoadPoint(setup, mix, rate, options);
    const auto& chip = setup.chip->counters();
    const auto& kernel = setup.kernel->counters();
    const double ticks_per_ms = static_cast<double>(setup.percpu()->ticks()) /
                                (static_cast<double>(options.measure + options.warmup) / 1e6);
    PrintCell(kind.c_str());
    PrintCell(r.achieved_rps / 1000.0);
    PrintCell(static_cast<double>(r.p999_slowdown_x100) / 100.0);
    PrintCell(ticks_per_ms);
    PrintCell(static_cast<std::int64_t>(chip.user_timer_irqs.Value()));
    PrintCell(static_cast<std::int64_t>(kernel.timer_programs.Value()));
    EndRow();
    reporter.AddRow()
        .Str("tick_path", kind)
        .Num("achieved_rps", r.achieved_rps)
        .Num("p999_slowdown", static_cast<double>(r.p999_slowdown_x100) / 100.0)
        .Num("ticks_per_ms", ticks_per_ms)
        .Int("user_timer_irqs", static_cast<std::int64_t>(chip.user_timer_irqs.Value()))
        .Int("user_irqs_delivered",
             static_cast<std::int64_t>(chip.user_irqs_delivered.Value()))
        .Int("timer_programs", static_cast<std::int64_t>(kernel.timer_programs.Value()));
  }
  // Host-runtime tick-rate check (ISSUE 9): the preemption timer thread used
  // to sleep a fixed *relative* period after each variable-cost signal
  // fan-out, so the delivered tick rate drifted below the configured one.
  // With the absolute-deadline loop the delivered rate must track the
  // period. Measured as kSignal+kDeferred trace instants per worker over the
  // wall-clock run; the tolerance is generous because CI containers
  // oversubscribe cores (a tick can only be late or dropped — never early —
  // so the upper bound is tight and the lower one loose).
  {
    constexpr std::int64_t kPeriodUs = 1000;  // 1 kHz
    constexpr int kHostWorkers = 1;
    SchedTracer tracer(1 << 18);
    RuntimeOptions opts{.workers = kHostWorkers, .preempt_period_us = kPeriodUs};
    opts.tracer = &tracer;
    Runtime rt(opts);
    const auto start = std::chrono::steady_clock::now();
    rt.Run([] {
      const auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(300);
      volatile std::uint64_t x = 0;
      while (std::chrono::steady_clock::now() < until) {
        x = x + 1;
      }
    });
    const double wall_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    const auto delivered = static_cast<double>(tracer.CountOf(TraceEventType::kSignal) +
                                               tracer.CountOf(TraceEventType::kDeferred));
    const double measured_hz = delivered / wall_sec / kHostWorkers;
    const double configured_hz = 1e6 / static_cast<double>(kPeriodUs);
    std::printf("\nhost timer thread: configured %.0f Hz, delivered %.0f Hz over %.0f ms\n",
                configured_hz, measured_hz, wall_sec * 1e3);
    reporter.AddRow()
        .Str("tick_path", "host-signal-timer")
        .Num("configured_hz", configured_hz)
        .Num("measured_hz", measured_hz);
    SKYLOFT_CHECK(measured_hz > 0.4 * configured_hz);
    SKYLOFT_CHECK(measured_hz < 2.0 * configured_hz);
  }
  reporter.WriteFile();
  std::printf(
      "\nExpected: user-timer and user-deadline meet the same slowdown, but\n"
      "user-deadline takes far fewer ticks (none on idle/quiet cores);\n"
      "kernel-timer preempts at ms granularity (slowdown blows up); utimer\n"
      "matches user-timer at the cost of a worker; none is worst.\n");
}

}  // namespace
}  // namespace skyloft

int main() { skyloft::Main(); }
