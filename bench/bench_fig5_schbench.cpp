// Fig. 5: schbench wakeup latency under per-CPU scheduling policies.
//
// Paper result to reproduce (shape): Skyloft's RR/CFS/EEVDF at a 100 kHz
// user-space timer achieve ~100 us-class p99 wakeup latencies when cores are
// oversubscribed, while Linux equivalents (250/1000 Hz kernel tick, Table 5
// parameters) sit orders of magnitude higher (~ms to ~10 ms); CFS slightly
// beats RR (sleeper compensation); EEVDF beats CFS.
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/schbench.h"

namespace skyloft {
namespace {

constexpr int kCores = 24;

std::int64_t RunSchbench(const std::function<SystemSetup()>& make, int workers) {
  SystemSetup setup = make();
  SchbenchSim bench(setup.engine.get(), setup.app,
                    SchbenchOptions{.worker_threads = workers});
  bench.Start();
  setup.sim->RunUntil(Millis(100));  // warmup
  setup.engine->ResetStats();
  setup.sim->RunUntil(Millis(100) + Millis(400));
  return bench.WakeupPercentileNs(0.99);
}

void Main() {
  struct Row {
    const char* name;
    std::function<SystemSetup()> make;
  };
  const std::vector<Row> systems = {
      {"linux-rr", [] { return MakeLinuxPerCpu(LinuxSched::kRrDefault, kCores); }},
      {"linux-cfs-def", [] { return MakeLinuxPerCpu(LinuxSched::kCfsDefault, kCores); }},
      {"linux-cfs-tuned", [] { return MakeLinuxPerCpu(LinuxSched::kCfsTuned, kCores); }},
      {"linux-eevdf-def", [] { return MakeLinuxPerCpu(LinuxSched::kEevdfDefault, kCores); }},
      {"linux-eevdf-tun", [] { return MakeLinuxPerCpu(LinuxSched::kEevdfTuned, kCores); }},
      {"skyloft-rr", [] { return MakeSkyloftPerCpu(SkyloftSched::kRr, kCores); }},
      {"skyloft-cfs", [] { return MakeSkyloftPerCpu(SkyloftSched::kCfs, kCores); }},
      {"skyloft-eevdf", [] { return MakeSkyloftPerCpu(SkyloftSched::kEevdf, kCores); }},
  };
  const std::vector<int> worker_counts = {16, 24, 32, 40, 48, 56, 64};

  std::vector<std::string> cols = {"p99 wakeup(us)"};
  for (const int w : worker_counts) {
    cols.push_back(std::to_string(w) + " thr");
  }
  BenchReporter reporter("fig5_schbench");
  reporter.MetaNum("cores", kCores);

  PrintHeader("Fig.5 schbench p99 wakeup latency (us), 24 cores", cols);
  for (const Row& row : systems) {
    PrintCell(row.name);
    for (const int workers : worker_counts) {
      const std::int64_t p99 = RunSchbench(row.make, workers);
      PrintCell(static_cast<double>(p99) / 1000.0);
      reporter.AddRow().Str("system", row.name).Int("workers", workers).Int("p99_wakeup_ns",
                                                                            p99);
    }
    EndRow();
  }
  reporter.WriteFile();
  std::printf(
      "\nExpected shape: skyloft-* stay ~1e2 us once workers > cores;\n"
      "linux-* rise to ~1e3-1e4 us; cfs <= rr; eevdf <= cfs within each family.\n");
}

}  // namespace
}  // namespace skyloft

int main() { skyloft::Main(); }
