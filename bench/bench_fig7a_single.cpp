// Fig. 7a: 99% tail latency vs offered load for the dispersive synthetic
// workload (99.5% x 4 us + 0.5% x 10 ms), 20 worker cores.
//
// Paper results to reproduce (shape):
//   - Skyloft-Shinjuku (30 us quantum) and original Shinjuku nearly overlap
//   - ghOSt saturates at ~80% of Skyloft's max throughput, with ~3x higher
//     99% latency at low load
//   - Linux CFS reaches only ~58.7% of Skyloft's max throughput
//   - a 15 us quantum lowers tail latency slightly but costs peak throughput
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/workloads.h"

namespace skyloft {
namespace {

constexpr int kWorkers = 20;

void Main() {
  const RequestMix mix = DispersiveMix();
  const double capacity_rps = kWorkers / (MixMeanNs(mix) / 1e9);  // ~370 kRPS

  struct Row {
    const char* name;
    std::function<SystemSetup()> make;
  };
  const std::vector<Row> systems = {
      {"skyloft-q30", [] { return MakeSkyloftShinjuku(kWorkers, Micros(30), false); }},
      {"skyloft-q15", [] { return MakeSkyloftShinjuku(kWorkers, Micros(15), false); }},
      {"shinjuku-q30", [] { return MakeShinjukuOriginal(kWorkers, Micros(30)); }},
      {"ghost-q30", [] { return MakeGhost(kWorkers, Micros(30), false); }},
      {"linux-cfs", [] { return MakeLinuxCfsCentralWorkload(kWorkers); }},
  };
  const std::vector<double> load_fracs = {0.05, 0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95};

  BenchReporter reporter("fig7a_single");
  reporter.MetaNum("workers", kWorkers);
  reporter.MetaNum("capacity_rps", capacity_rps);

  std::vector<std::string> cols = {"system", "load(kRPS)", "achieved", "p50(us)", "p99(us)"};
  PrintHeader("Fig.7a dispersive load, 20 workers: 99% latency vs load", cols);
  for (const Row& row : systems) {
    double max_good_rps = 0;
    for (const double frac : load_fracs) {
      SystemSetup setup = row.make();
      LoadPointOptions options;
      options.warmup = Millis(50);
      options.measure = Millis(400);
      options.rss_route = false;  // the dispatcher owns placement
      const LoadPointResult r = RunLoadPoint(setup, mix, capacity_rps * frac, options);
      PrintCell(row.name);
      PrintCell(r.offered_rps / 1000.0);
      PrintCell(r.achieved_rps / 1000.0);
      PrintCell(static_cast<double>(r.p50_ns) / 1000.0);
      PrintCell(static_cast<double>(r.p99_ns) / 1000.0);
      EndRow();
      reporter.AddLoadPoint(row.name, r);
      // "Maximum throughput" = highest load still served (achieved within 2%
      // of offered) while meeting a 200 us 99% SLO — the knee where each
      // Fig. 7a curve goes vertical.
      if (r.achieved_rps > 0.98 * r.offered_rps && r.p99_ns < Micros(200)) {
        max_good_rps = std::max(max_good_rps, r.achieved_rps);
      }
    }
    std::printf("%16s  max throughput %.1f kRPS\n", row.name, max_good_rps / 1000.0);
    reporter.AddRow().Str("label", std::string(row.name) + "-max").Num("max_good_rps",
                                                                      max_good_rps);
  }
  std::printf(
      "\nExpected shape: skyloft ~= shinjuku; ghost max ~0.8x skyloft and ~3x\n"
      "p99 at low load; linux-cfs max ~0.59x skyloft.\n");
  reporter.WriteFile();
}

}  // namespace
}  // namespace skyloft

int main() { skyloft::Main(); }
