// Fig. 7b: the dispersive LC workload co-located with a best-effort batch
// application, with Shenango-style core allocation (5 us congestion checks).
//
// Paper results to reproduce (shape):
//   - Skyloft keeps the same tail latency as the un-co-located Fig. 7a run
//   - vs ghOSt: ~19% higher max throughput, ~33% lower 99% tail latency
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/batch_app.h"
#include "src/apps/workloads.h"

namespace skyloft {
namespace {

constexpr int kWorkers = 20;

struct SystemUnderTest {
  SystemSetup setup;
  App* be_app = nullptr;
};

SystemUnderTest MakeColocated(const char* kind) {
  SystemUnderTest sut;
  if (std::string(kind) == "skyloft") {
    sut.setup = MakeSkyloftShinjuku(kWorkers, Micros(30), /*core_alloc=*/true);
    sut.be_app = sut.setup.engine->CreateApp("batch", /*best_effort=*/true);
    sut.setup.central()->AttachBestEffortApp(sut.be_app);
  } else if (std::string(kind) == "ghost") {
    sut.setup = MakeGhost(kWorkers, Micros(30), /*core_alloc=*/true);
    sut.be_app = sut.setup.engine->CreateApp("batch", true);
    sut.setup.central()->AttachBestEffortApp(sut.be_app);
  } else {  // linux: both apps compete in the shared CFS runqueues
    sut.setup = MakeLinuxCfsCentralWorkload(kWorkers);
    sut.be_app = sut.setup.engine->CreateApp("batch", true);
    auto* driver = new BatchAppDriver(sut.setup.engine.get(), sut.be_app,
                                      BatchAppDriver::Options{.tasks = kWorkers,
                                                              .chunk_ns = Millis(1)});
    driver->Start();  // driver leaks intentionally: lives as long as the sim
  }
  return sut;
}

void Main() {
  const RequestMix mix = DispersiveMix();
  const double capacity_rps = kWorkers / (MixMeanNs(mix) / 1e9);
  const std::vector<const char*> systems = {"skyloft", "ghost", "linux"};
  const std::vector<double> load_fracs = {0.05, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95};

  BenchReporter reporter("fig7b_colocated");
  reporter.MetaNum("workers", kWorkers);
  reporter.MetaNum("capacity_rps", capacity_rps);

  PrintHeader("Fig.7b dispersive LC + batch BE: 99% latency vs load",
              {"system", "load(kRPS)", "achieved", "p99(us)", "be-share"});
  for (const char* kind : systems) {
    for (const double frac : load_fracs) {
      SystemUnderTest sut = MakeColocated(kind);
      LoadPointOptions options;
      options.warmup = Millis(50);
      options.measure = Millis(400);
      options.rss_route = false;
      options.be_app = sut.be_app;
      const LoadPointResult r = RunLoadPoint(sut.setup, mix, capacity_rps * frac, options);
      PrintCell(kind);
      PrintCell(r.offered_rps / 1000.0);
      PrintCell(r.achieved_rps / 1000.0);
      PrintCell(static_cast<double>(r.p99_ns) / 1000.0);
      PrintCell(r.be_share);
      EndRow();
      reporter.AddLoadPoint(kind, r);
    }
  }
  reporter.WriteFile();
  std::printf(
      "\nExpected shape: skyloft p99 matches Fig.7a at every load (core\n"
      "allocation does not hurt the LC app); ghost saturates ~19%% earlier with\n"
      "~1.5x the p99; linux trades LC latency for BE share.\n");
}

}  // namespace
}  // namespace skyloft

int main() { skyloft::Main(); }
