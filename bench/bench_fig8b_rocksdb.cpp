// Fig. 8b: RocksDB server with a bimodal workload (50% GET @ 0.95 us,
// 50% SCAN @ 591 us), 14 worker cores, 99.9% *slowdown* SLO.
//
// Paper results to reproduce (shape):
//   - Shenango (no in-app preemption) blows the 50x slowdown SLO at a small
//     fraction of the load Skyloft sustains
//   - Skyloft's preemptive work stealing supports quanta down to 5 us; at
//     q=5 us it sustains ~1.9x Shenango's load at the 50x SLO
//   - emulating the timer with a dedicated IPI core (utimer, 13 workers)
//     costs ~13% of throughput vs local APIC timers (14 workers)
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/workloads.h"
#include "src/policies/work_stealing.h"

namespace skyloft {
namespace {

constexpr int kWorkers = 14;

void Main() {
  const RequestMix mix = RocksdbBimodalMix();
  const double capacity_rps = kWorkers / (MixMeanNs(mix) / 1e9);  // ~47 kRPS

  struct Row {
    const char* name;
    std::function<SystemSetup()> make;
  };
  const std::vector<Row> systems = {
      {"skyloft-q5", [] { return MakeSkyloftWorkStealing(kWorkers, Micros(5)); }},
      {"skyloft-q15", [] { return MakeSkyloftWorkStealing(kWorkers, Micros(15)); }},
      {"skyloft-q30", [] { return MakeSkyloftWorkStealing(kWorkers, Micros(30)); }},
      {"utimer-q5",
       [] { return MakeSkyloftWorkStealing(kWorkers - 1, Micros(5), /*utimer=*/true); }},
      {"shenango", [] { return MakeShenango(kWorkers); }},
  };
  const std::vector<double> load_fracs = {0.05, 0.1, 0.2,  0.3, 0.4,  0.5, 0.6,
                                          0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95};
  constexpr double kSloSlowdown = 50.0;

  BenchReporter reporter("fig8b_rocksdb");
  reporter.MetaNum("workers", kWorkers);
  reporter.MetaNum("capacity_rps", capacity_rps);
  reporter.MetaNum("slo_slowdown", kSloSlowdown);

  PrintHeader("Fig.8b RocksDB bimodal, 14 workers: 99.9% slowdown vs load",
              {"system", "load(kRPS)", "achieved", "p99.9 slowdn"});
  for (const Row& row : systems) {
    double max_slo_rps = 0;
    for (const double frac : load_fracs) {
      SystemSetup setup = row.make();
      LoadPointOptions options;
      options.warmup = Millis(100);
      options.measure = Millis(800);  // enough SCANs for a stable p99.9
      options.rss_route = true;
      options.wire_ns = Micros(5);
      const LoadPointResult r = RunLoadPoint(setup, mix, capacity_rps * frac, options);
      const double slowdown = static_cast<double>(r.p999_slowdown_x100) / 100.0;
      PrintCell(row.name);
      PrintCell(r.offered_rps / 1000.0);
      PrintCell(r.achieved_rps / 1000.0);
      PrintCell(slowdown);
      EndRow();
      reporter.AddLoadPoint(row.name, r);
      if (slowdown <= kSloSlowdown && r.achieved_rps > 0.98 * r.offered_rps) {
        max_slo_rps = std::max(max_slo_rps, r.achieved_rps);
      }
    }
    std::printf("%16s  max load at %.0fx slowdown SLO: %.1f kRPS\n", row.name, kSloSlowdown,
                max_slo_rps / 1000.0);
    reporter.AddRow().Str("label", std::string(row.name) + "-max").Num("max_slo_rps",
                                                                      max_slo_rps);
  }
  reporter.WriteFile();
  std::printf(
      "\nExpected shape: skyloft-q5 sustains ~1.9x shenango's load at the 50x\n"
      "SLO; smaller quanta help; utimer ~13%% below skyloft-q5 (one fewer worker).\n");
}

}  // namespace
}  // namespace skyloft

int main() { skyloft::Main(); }
