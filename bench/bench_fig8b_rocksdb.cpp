// Fig. 8b: RocksDB server with a bimodal workload (50% GET @ 0.95 us,
// 50% SCAN @ 591 us), 14 worker cores, 99.9% *slowdown* SLO.
//
// Paper results to reproduce (shape):
//   - Shenango (no in-app preemption) blows the 50x slowdown SLO at a small
//     fraction of the load Skyloft sustains
//   - Skyloft's preemptive work stealing supports quanta down to 5 us; at
//     q=5 us it sustains ~1.9x Shenango's load at the 50x SLO
//   - emulating the timer with a dedicated IPI core (utimer, 13 workers)
//     costs ~13% of throughput vs local APIC timers (14 workers)
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/workloads.h"
#include "src/policies/work_stealing.h"
#include "src/runtime/quantum_controller.h"

namespace skyloft {
namespace {

constexpr int kWorkers = 14;

// Controller tuning for this figure. Fig. 8b's SLO is a p99.9 slowdown,
// which a 5 ms windowed p99 cannot see at low load (1-in-1000 events), so
// the configuration is tail-conservative: steer by the GET (protected-kind)
// windowed p99 against a tight 10x target and never trade tail for tick
// overhead (the tick budget is effectively off). The controller then has one
// job — discover the small quantum this bimodal mix wants — rather than
// being told q=5 us as the static rows are.
QuantumControllerConfig Fig8bAdaptiveConfig() {
  QuantumControllerConfig config;
  config.slo_slowdown_x100 = 1000;
  config.tighten_at = 0.8;
  config.relax_below = 0.1;
  config.quantum_min = Micros(5);
  config.quantum_max = Micros(200);
  config.quantum_initial = Micros(15);
  config.tighten_div = 3;
  config.relax_mul = 2;
  config.flip_worsen_frac = 0.5;
  // 5 ms windows hold only a handful of requests at the lowest load points.
  config.min_window_samples = 8;
  config.signal_ewma = 0.2;
  config.tick_budget_per_core_hz = 1e12;
  config.timer_period_frac = 1.0;
  config.timer_period_min = Micros(5);
  config.timer_period_max = Micros(200);
  return config;
}

void Main() {
  const RequestMix mix = RocksdbBimodalMix();
  const double capacity_rps = kWorkers / (MixMeanNs(mix) / 1e9);  // ~47 kRPS

  struct Row {
    const char* name;
    std::function<SystemSetup()> make;
    bool adaptive = false;
  };
  const std::vector<Row> systems = {
      {"skyloft-q5", [] { return MakeSkyloftWorkStealing(kWorkers, Micros(5)); }},
      {"skyloft-q15", [] { return MakeSkyloftWorkStealing(kWorkers, Micros(15)); }},
      {"skyloft-q30", [] { return MakeSkyloftWorkStealing(kWorkers, Micros(30)); }},
      {"utimer-q5",
       [] { return MakeSkyloftWorkStealing(kWorkers - 1, Micros(5), /*utimer=*/true); }},
      {"shenango", [] { return MakeShenango(kWorkers); }},
      // Starts every load point at q=15 us and lets the quantum controller
      // find the quantum; expected to track skyloft-q5 without being told.
      {"skyloft-adaptive",
       [] { return MakeSkyloftWorkStealing(kWorkers, Fig8bAdaptiveConfig().quantum_initial); },
       /*adaptive=*/true},
  };
  const std::vector<double> load_fracs = {0.05, 0.1, 0.2,  0.3, 0.4,  0.5, 0.6,
                                          0.65, 0.7, 0.75, 0.8, 0.85, 0.9, 0.95};
  constexpr double kSloSlowdown = 50.0;

  BenchReporter reporter("fig8b_rocksdb");
  reporter.MetaNum("workers", kWorkers);
  reporter.MetaNum("capacity_rps", capacity_rps);
  reporter.MetaNum("slo_slowdown", kSloSlowdown);

  PrintHeader("Fig.8b RocksDB bimodal, 14 workers: 99.9% slowdown vs load",
              {"system", "load(kRPS)", "achieved", "p99.9 slowdn"});
  for (const Row& row : systems) {
    double max_slo_rps = 0;
    std::uint64_t adjustments = 0;
    for (const double frac : load_fracs) {
      SystemSetup setup = row.make();
      std::unique_ptr<QuantumController> controller;
      if (row.adaptive) {
        QuantumController::Hooks hooks;
        SchedPolicy* policy = setup.policy.get();
        KernelSim* kernel = setup.kernel.get();
        hooks.apply_quantum = [policy](DurationNs quantum_ns, int) {
          policy->SetQuantum(quantum_ns, SchedPolicy::kAllWorkers);
        };
        hooks.apply_timer_period = [kernel](DurationNs period_ns) {
          for (int core = 0; core < kWorkers; core++) {
            kernel->SkyloftTimerSetHz(core, kSecond / period_ns);
          }
        };
        controller = std::make_unique<QuantumController>(Fig8bAdaptiveConfig(), hooks);
        controller->WatchSlowdown(&setup.engine->stats().slowdown_x100);
        controller->WatchProtected(
            &setup.engine->stats().slowdown_by_kind_x100[kKindShort]);
        PerCpuEngine* percpu = setup.percpu();
        controller->WatchTicks([percpu] { return percpu->ticks(); }, kWorkers);
        controller->ApplyInitial(0);
        QuantumController* ctl = controller.get();
        Simulation* sim = setup.sim.get();
        setup.sim->SchedulePeriodic(Millis(5), Millis(5), [ctl, sim] { ctl->Poll(sim->Now()); });
      }
      LoadPointOptions options;
      options.warmup = Millis(100);
      options.measure = Millis(800);  // enough SCANs for a stable p99.9
      options.rss_route = true;
      options.wire_ns = Micros(5);
      const LoadPointResult r = RunLoadPoint(setup, mix, capacity_rps * frac, options);
      const double slowdown = static_cast<double>(r.p999_slowdown_x100) / 100.0;
      PrintCell(row.name);
      PrintCell(r.offered_rps / 1000.0);
      PrintCell(r.achieved_rps / 1000.0);
      PrintCell(slowdown);
      EndRow();
      reporter.AddLoadPoint(row.name, r);
      if (controller != nullptr) {
        adjustments += controller->adjustments();
        reporter.AddRow()
            .Str("label", std::string(row.name) + "-quantum")
            .Num("offered_rps", r.offered_rps)
            .Num("final_quantum_us", static_cast<double>(controller->quantum()) / 1000.0)
            .Int("adjustments", static_cast<std::int64_t>(controller->adjustments()));
      }
      if (slowdown <= kSloSlowdown && r.achieved_rps > 0.98 * r.offered_rps) {
        max_slo_rps = std::max(max_slo_rps, r.achieved_rps);
      }
    }
    std::printf("%16s  max load at %.0fx slowdown SLO: %.1f kRPS\n", row.name, kSloSlowdown,
                max_slo_rps / 1000.0);
    if (row.adaptive) {
      std::printf("%16s  controller made %llu adjustments across the sweep\n", "",
                  static_cast<unsigned long long>(adjustments));
    }
    reporter.AddRow().Str("label", std::string(row.name) + "-max").Num("max_slo_rps",
                                                                      max_slo_rps);
  }
  reporter.WriteFile();
  std::printf(
      "\nExpected shape: skyloft-q5 sustains ~1.9x shenango's load at the 50x\n"
      "SLO; smaller quanta help; utimer ~13%% below skyloft-q5 (one fewer worker).\n");
}

}  // namespace
}  // namespace skyloft

int main() { skyloft::Main(); }
