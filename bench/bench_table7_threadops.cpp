// Table 7: threading operation cost (ns) — REAL host measurements.
//
// Unlike the simulation-backed benchmarks, this one runs the actual Skyloft
// host runtime (hand-rolled context switch, Park/Unpark, uthread mutex and
// condvar) against real pthreads on this machine, mirroring the paper's
// methodology: Yield (ping-pong switch), Spawn (create+run+join), Mutex
// (uncontended lock/unlock), Condvar (signal round trip).
//
// Paper numbers (Sapphire Rapids @ 2 GHz): pthread 898/15418/28/2532 ns vs
// Skyloft 37/191/27/86 ns. Absolute values here depend on this container's
// CPU; the shape to check is Skyloft beating pthreads by 1-2 orders of
// magnitude on yield/spawn/condvar and tying on uncontended mutex.
#include <pthread.h>
#include <sched.h>

#include <chrono>
#include <string_view>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/logging.h"
#include "src/runtime/sync.h"
#include "src/runtime/uthread.h"

namespace skyloft {
namespace {

using Clock = std::chrono::steady_clock;

// --smoke divides every round count for CI; full runs use scale 1.
long g_scale = 1;

long Rounds(long full) {
  const long r = full / g_scale;
  return r > 0 ? r : 1;
}

double NsPerOp(Clock::time_point start, Clock::time_point end, long ops) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count() /
         static_cast<double>(ops);
}

// ---- Skyloft runtime ----

RuntimeOptions OneWorker(RuntimePolicy policy) {
  RuntimeOptions opts{.workers = 1};
  opts.sched.policy = policy;
  return opts;
}

double SkyloftYield(RuntimePolicy policy) {
  const long kRounds = Rounds(200'000);
  Runtime rt(OneWorker(policy));
  double result = 0;
  rt.Run([&] {
    UThread* peer = Runtime::Spawn([kRounds] {
      for (long i = 0; i < kRounds; i++) {
        Runtime::Yield();
      }
    });
    const auto start = Clock::now();
    for (long i = 0; i < kRounds; i++) {
      Runtime::Yield();
    }
    const auto end = Clock::now();
    Runtime::Join(peer);
    // Each Yield is one full switch through the scheduler.
    result = NsPerOp(start, end, kRounds);
  });
  return result;
}

double SkyloftSpawn(RuntimePolicy policy) {
  const long kRounds = Rounds(50'000);
  Runtime rt(OneWorker(policy));
  double result = 0;
  rt.Run([&] {
    const auto start = Clock::now();
    for (long i = 0; i < kRounds; i++) {
      UThread* t = Runtime::Spawn([] {});
      Runtime::Join(t);
    }
    const auto end = Clock::now();
    result = NsPerOp(start, end, kRounds);
  });
  return result;
}

double SkyloftMutex() {
  const long kRounds = Rounds(2'000'000);
  Runtime rt(RuntimeOptions{.workers = 1});
  double result = 0;
  rt.Run([&] {
    UthreadMutex mutex;
    const auto start = Clock::now();
    for (long i = 0; i < kRounds; i++) {
      mutex.Lock();
      mutex.Unlock();
    }
    const auto end = Clock::now();
    result = NsPerOp(start, end, kRounds);
  });
  return result;
}

double SkyloftCondvar() {
  const long kRounds = Rounds(100'000);
  Runtime rt(RuntimeOptions{.workers = 1});
  double result = 0;
  rt.Run([&] {
    UthreadMutex mutex;
    UthreadCondVar cv;
    int turn = 0;
    UThread* peer = Runtime::Spawn([&] {
      mutex.Lock();
      for (long i = 0; i < kRounds; i++) {
        while (turn != 1) {
          cv.Wait(&mutex);
        }
        turn = 0;
        cv.Signal();
      }
      mutex.Unlock();
    });
    const auto start = Clock::now();
    mutex.Lock();
    for (long i = 0; i < kRounds; i++) {
      turn = 1;
      cv.Signal();
      while (turn != 0) {
        cv.Wait(&mutex);
      }
    }
    mutex.Unlock();
    const auto end = Clock::now();
    Runtime::Join(peer);
    result = NsPerOp(start, end, 2 * kRounds);  // two signal+wake per round
  });
  return result;
}

// ---- pthreads ----

double PthreadYield() {
  // Two runnable pthreads on shared cores: sched_yield round-robins them
  // through the kernel scheduler.
  const long kRounds = Rounds(100'000);
  std::atomic<bool> stop{false};
  pthread_t peer;
  pthread_create(
      &peer, nullptr,
      [](void* arg) -> void* {
        auto* flag = static_cast<std::atomic<bool>*>(arg);
        while (!flag->load(std::memory_order_relaxed)) {
          sched_yield();
        }
        return nullptr;
      },
      &stop);
  const auto start = Clock::now();
  for (long i = 0; i < kRounds; i++) {
    sched_yield();
  }
  const auto end = Clock::now();
  stop.store(true);
  pthread_join(peer, nullptr);
  return NsPerOp(start, end, kRounds);
}

double PthreadSpawn() {
  const long kRounds = Rounds(2'000);
  const auto start = Clock::now();
  for (long i = 0; i < kRounds; i++) {
    pthread_t t;
    pthread_create(&t, nullptr, [](void*) -> void* { return nullptr; }, nullptr);
    pthread_join(t, nullptr);
  }
  const auto end = Clock::now();
  return NsPerOp(start, end, kRounds);
}

double PthreadMutex() {
  const long kRounds = Rounds(2'000'000);
  pthread_mutex_t mutex = PTHREAD_MUTEX_INITIALIZER;
  const auto start = Clock::now();
  for (long i = 0; i < kRounds; i++) {
    pthread_mutex_lock(&mutex);
    pthread_mutex_unlock(&mutex);
  }
  const auto end = Clock::now();
  return NsPerOp(start, end, kRounds);
}

struct PingPong {
  pthread_mutex_t mutex = PTHREAD_MUTEX_INITIALIZER;
  pthread_cond_t cv = PTHREAD_COND_INITIALIZER;
  int turn = 0;
  long rounds = 0;
};

double PthreadCondvar() {
  const long kRounds = Rounds(20'000);
  PingPong pp;
  pp.rounds = kRounds;
  pthread_t peer;
  pthread_create(
      &peer, nullptr,
      [](void* arg) -> void* {
        auto* pp = static_cast<PingPong*>(arg);
        pthread_mutex_lock(&pp->mutex);
        for (long i = 0; i < pp->rounds; i++) {
          while (pp->turn != 1) {
            pthread_cond_wait(&pp->cv, &pp->mutex);
          }
          pp->turn = 0;
          pthread_cond_signal(&pp->cv);
        }
        pthread_mutex_unlock(&pp->mutex);
        return nullptr;
      },
      &pp);
  const auto start = Clock::now();
  pthread_mutex_lock(&pp.mutex);
  for (long i = 0; i < kRounds; i++) {
    pp.turn = 1;
    pthread_cond_signal(&pp.cv);
    while (pp.turn != 0) {
      pthread_cond_wait(&pp.cv, &pp.mutex);
    }
  }
  pthread_mutex_unlock(&pp.mutex);
  const auto end = Clock::now();
  pthread_join(peer, nullptr);
  return NsPerOp(start, end, 2 * kRounds);
}

void Main() {
  BenchReporter reporter("table7_threadops");
  reporter.MetaNum("scale", static_cast<double>(g_scale));

  const double yield_pthread = PthreadYield();
  const double yield_skyloft = SkyloftYield(RuntimePolicy::kWorkStealing);
  const double spawn_pthread = PthreadSpawn();
  const double spawn_skyloft = SkyloftSpawn(RuntimePolicy::kWorkStealing);
  const double mutex_pthread = PthreadMutex();
  const double mutex_skyloft = SkyloftMutex();
  const double condvar_pthread = PthreadCondvar();
  const double condvar_skyloft = SkyloftCondvar();

  std::printf("=== Table 7: threading operations (ns), measured on this host ===\n");
  std::printf("%-10s %14s %14s %18s %18s\n", "op", "pthread", "skyloft", "paper pthread",
              "paper skyloft");
  std::printf("%-10s %14.0f %14.0f %18d %18d\n", "Yield", yield_pthread, yield_skyloft, 898, 37);
  std::printf("%-10s %14.0f %14.0f %18d %18d\n", "Spawn", spawn_pthread, spawn_skyloft, 15418,
              191);
  std::printf("%-10s %14.0f %14.0f %18d %18d\n", "Mutex", mutex_pthread, mutex_skyloft, 28, 27);
  std::printf("%-10s %14.0f %14.0f %18d %18d\n", "Condvar", condvar_pthread, condvar_skyloft,
              2532, 86);

  auto op_row = [&reporter](const char* op, double pthread_ns, double skyloft_ns,
                            int paper_pthread, int paper_skyloft) {
    reporter.AddRow()
        .Str("op", op)
        .Num("pthread_ns", pthread_ns)
        .Num("skyloft_ns", skyloft_ns)
        .Int("paper_pthread_ns", paper_pthread)
        .Int("paper_skyloft_ns", paper_skyloft);
  };
  op_row("yield", yield_pthread, yield_skyloft, 898, 37);
  op_row("spawn", spawn_pthread, spawn_skyloft, 15418, 191);
  op_row("mutex", mutex_pthread, mutex_skyloft, 28, 27);
  op_row("condvar", condvar_pthread, condvar_skyloft, 2532, 86);

  // The Table 2 interface makes the host policy swappable; the op cost must
  // not depend on which policy fills the runqueues. FIFO exercises the
  // plain-queue path, work stealing the pre-refactor default.
  const double yield_ws = SkyloftYield(RuntimePolicy::kWorkStealing);
  const double yield_fifo = SkyloftYield(RuntimePolicy::kFifo);
  const double spawn_ws = SkyloftSpawn(RuntimePolicy::kWorkStealing);
  const double spawn_fifo = SkyloftSpawn(RuntimePolicy::kFifo);
  std::printf("\n=== Policy column: same ops through the Table 2 layer ===\n");
  std::printf("%-10s %14s %14s\n", "op", "ws", "fifo");
  std::printf("%-10s %14.0f %14.0f\n", "Yield", yield_ws, yield_fifo);
  std::printf("%-10s %14.0f %14.0f\n", "Spawn", spawn_ws, spawn_fifo);
  reporter.AddRow().Str("op", "yield-policy").Num("ws_ns", yield_ws).Num("fifo_ns", yield_fifo);
  reporter.AddRow().Str("op", "spawn-policy").Num("ws_ns", spawn_ws).Num("fifo_ns", spawn_fifo);

  // Observability must be pay-for-what-you-use: with no tracer attached (the
  // default — RuntimeOptions::tracer is null in every run above), the yield
  // path carries only an untaken branch. Guard that the measured cost stays
  // within generous noise of the historical numbers. Sanitizer builds inflate
  // every op by an order of magnitude, so the ceiling only applies to plain
  // builds.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define SKYLOFT_BENCH_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define SKYLOFT_BENCH_SANITIZED 1
#endif
#endif
#ifndef SKYLOFT_BENCH_SANITIZED
  SKYLOFT_CHECK(yield_skyloft < 5000.0)
      << "tracing-disabled yield cost regressed: " << yield_skyloft << " ns/op";
#endif

  std::printf(
      "\n(Go column omitted: no offline Go toolchain — see DESIGN.md.)\n"
      "Shape check: skyloft << pthread on Yield/Spawn/Condvar; Mutex ~ tie.\n");
  reporter.WriteFile();
}

}  // namespace
}  // namespace skyloft

int main(int argc, char** argv) {
  for (int i = 1; i < argc; i++) {
    if (std::string_view(argv[i]) == "--smoke") {
      skyloft::g_scale = 20;  // CI: same code paths, ~1/20th the rounds
    }
  }
  skyloft::Main();
}
