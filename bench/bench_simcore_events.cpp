// Event-core microbenchmark: timing-wheel Simulation vs the seed
// priority-queue engine (tests/reference_simulation.h).
//
// Profiles:
//   periodic_heavy  - 24 periodic timers at 100 kHz (the ApicTimer / kernel
//                     tick pattern) plus a pool of self-rescheduling one-shot
//                     events providing background pending load.
//   random_horizon  - a large pool of self-rescheduling one-shots with
//                     boundary-biased random delays (same-tick up to tens of
//                     milliseconds, crossing every wheel level and the
//                     overflow horizon) plus a schedule-and-cancel mix.
//
// Both engines run the byte-identical schedule (same seeds), the event counts
// are cross-checked, and wall-clock throughput is written to
// BENCH_simcore.json in the current directory.
//
// A third section sweeps ClusterSim shard counts on the periodic-heavy
// profile — every shard carries its own 24-timer + background load, so total
// work scales with the shard count and events/s measures how well the
// conservative-window coordinator turns host cores into throughput. Results
// land in BENCH_simcore_parallel.json; the >=4x acceptance bar only applies
// on hosts with enough hardware threads (recorded in the JSON).
//
// Usage: bench_simcore_events [--smoke]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/logging.h"
#include "src/base/random.h"
#include "src/base/time.h"
#include "src/simcore/cluster_sim.h"
#include "src/simcore/simulation.h"
#include "tests/reference_simulation.h"

namespace skyloft {
namespace {

// ---- periodic adapter (the only API difference between the engines) ----

template <typename F>
void StartPeriodic(Simulation& sim, TimeNs first, DurationNs period, F body) {
  sim.SchedulePeriodic(first, period, std::move(body));
}

template <typename F>
void StartPeriodic(ReferenceSimulation& sim, TimeNs first, DurationNs period, F body) {
  // Seed idiom: each fire re-schedules a fresh event before running the body.
  struct State {
    ReferenceSimulation* sim;
    DurationNs period;
    F body;
    std::function<void()> fire;
  };
  auto state = std::make_shared<State>(State{&sim, period, std::move(body), {}});
  state->fire = [state] {
    state->sim->ScheduleAt(state->sim->Now() + state->period, state->fire);
    state->body();
  };
  sim.ScheduleAt(first, state->fire);
}

// Boundary-biased delays: same-tick, wheel level boundaries (64, 4096, 2^18),
// the 2^24 overflow horizon, and far futures.
DurationNs RandomDelay(Rng& rng) {
  switch (rng.NextBelow(8)) {
    case 0:
      return static_cast<DurationNs>(rng.NextBelow(4));
    case 1:
      return 62 + static_cast<DurationNs>(rng.NextBelow(5));
    case 2:
      return 4094 + static_cast<DurationNs>(rng.NextBelow(5));
    case 3:
      return (DurationNs{1} << 18) - 2 + static_cast<DurationNs>(rng.NextBelow(5));
    case 4:
      return (DurationNs{1} << 24) - 3 + static_cast<DurationNs>(rng.NextBelow(6));
    case 5:
      return 1 + static_cast<DurationNs>(rng.NextBelow(1000));
    case 6:
      return 1 + static_cast<DurationNs>(rng.NextBelow(200'000));
    default:
      return 1 + static_cast<DurationNs>(rng.NextBelow(40'000'000));
  }
}

// A pool of events that each re-schedule themselves on fire, keeping a steady
// pending population. With `cancel_mix`, each fire also schedules one extra
// decoy and cancels the previously stored decoy handle, exercising the
// Cancel() path at benchmark rates.
template <typename Engine>
struct SelfRescheduler {
  SelfRescheduler(Engine& sim, std::uint64_t seed, bool cancel_mix)
      : sim_(sim), rng_(seed), cancel_mix_(cancel_mix) {}

  void Seed(int population) {
    decoys_.assign(64, 0);
    for (int i = 0; i < population; i++) {
      Spawn();
    }
  }

  void Spawn() {
    sim_.ScheduleAfter(RandomDelay(rng_), [this] { OnFire(); });
  }

  void OnFire() {
    if (cancel_mix_) {
      const auto slot = rng_.NextBelow(decoys_.size());
      if (decoys_[slot] != 0) {
        cancels_ += sim_.Cancel(decoys_[slot]) ? 1 : 0;
      }
      decoys_[slot] = sim_.ScheduleAfter(Millis(500) + RandomDelay(rng_), [] {});
    }
    Spawn();
  }

  Engine& sim_;
  Rng rng_;
  bool cancel_mix_;
  std::vector<std::uint64_t> decoys_;
  std::uint64_t cancels_ = 0;
};

struct ProfileResult {
  std::string name;
  std::string engine;
  std::uint64_t events = 0;
  double wall_s = 0;
  double events_per_s = 0;
};

template <typename Engine>
ProfileResult RunPeriodicHeavy(const char* engine_name, DurationNs sim_duration) {
  Engine sim;
  // 24 cores' worth of APIC-style ticks at 100 kHz.
  const DurationNs period = HzToPeriodNs(100'000);
  for (int core = 0; core < 24; core++) {
    StartPeriodic(sim, 1 + core, period, [] {});
  }
  // Background pending load so the reference heap is never trivially small.
  SelfRescheduler<Engine> background(sim, /*seed=*/42, /*cancel_mix=*/false);
  background.Seed(512);

  const auto start = std::chrono::steady_clock::now();
  sim.RunUntil(sim_duration);
  const auto stop = std::chrono::steady_clock::now();

  ProfileResult r;
  r.name = "periodic_heavy";
  r.engine = engine_name;
  r.events = sim.EventsExecuted();
  r.wall_s = std::chrono::duration<double>(stop - start).count();
  r.events_per_s = static_cast<double>(r.events) / r.wall_s;
  return r;
}

template <typename Engine>
ProfileResult RunRandomHorizon(const char* engine_name, DurationNs sim_duration) {
  Engine sim;
  SelfRescheduler<Engine> pool(sim, /*seed=*/7, /*cancel_mix=*/true);
  pool.Seed(2048);

  const auto start = std::chrono::steady_clock::now();
  sim.RunUntil(sim_duration);
  const auto stop = std::chrono::steady_clock::now();

  ProfileResult r;
  r.name = "random_horizon";
  r.engine = engine_name;
  r.events = sim.EventsExecuted();
  r.wall_s = std::chrono::duration<double>(stop - start).count();
  r.events_per_s = static_cast<double>(r.events) / r.wall_s;
  return r;
}

// One shard-sweep point: `shards` SimNodes under a ClusterSim, each loaded
// with the full periodic-heavy profile (24 APIC-style timers + a 512-event
// self-rescheduling pool on a per-shard derived seed), run on `shards` host
// threads. No links are registered, so the coordinator uses the default
// epoch; the workload is embarrassingly shard-parallel by construction —
// the sweep isolates the coordinator's barrier/window overhead and the
// scaling the host can deliver.
ProfileResult RunPeriodicHeavySharded(int shards, DurationNs sim_duration) {
  ClusterSim::Options options;
  options.num_threads = shards;
  ClusterSim cluster(shards, options);
  std::vector<std::unique_ptr<SelfRescheduler<SimNode>>> pools;
  const DurationNs period = HzToPeriodNs(100'000);
  for (int s = 0; s < shards; s++) {
    SimNode* sim = cluster.node(s);
    for (int core = 0; core < 24; core++) {
      StartPeriodic(*sim, 1 + core, period, [] {});
    }
    pools.push_back(std::make_unique<SelfRescheduler<SimNode>>(
        *sim, Rng::DeriveStream(42, static_cast<std::uint64_t>(s)), /*cancel_mix=*/false));
    pools.back()->Seed(512);
  }

  const auto start = std::chrono::steady_clock::now();
  cluster.RunUntil(sim_duration);
  const auto stop = std::chrono::steady_clock::now();

  ProfileResult r;
  r.name = "periodic_heavy_x" + std::to_string(shards);
  r.engine = "cluster";
  r.events = cluster.TotalEventsExecuted();
  r.wall_s = std::chrono::duration<double>(stop - start).count();
  r.events_per_s = static_cast<double>(r.events) / r.wall_s;
  return r;
}

void Report(const ProfileResult& ref, const ProfileResult& wheel, BenchReporter& reporter,
            bool* ok) {
  SKYLOFT_CHECK(ref.name == wheel.name);
  if (ref.events != wheel.events) {
    std::fprintf(stderr, "FAIL: %s event counts diverge (reference=%llu wheel=%llu)\n",
                 ref.name.c_str(), static_cast<unsigned long long>(ref.events),
                 static_cast<unsigned long long>(wheel.events));
    *ok = false;
  }
  const double speedup = ref.wall_s / wheel.wall_s;
  std::printf("%-16s %12llu events | reference %8.3fs (%10.0f ev/s) | "
              "wheel %8.3fs (%10.0f ev/s) | speedup %.2fx\n",
              ref.name.c_str(), static_cast<unsigned long long>(wheel.events), ref.wall_s,
              ref.events_per_s, wheel.wall_s, wheel.events_per_s, speedup);
  reporter.AddRow()
      .Str("profile", ref.name)
      .Int("events", static_cast<std::int64_t>(wheel.events))
      .Num("reference_wall_s", ref.wall_s)
      .Num("reference_events_per_s", ref.events_per_s)
      .Num("wheel_wall_s", wheel.wall_s)
      .Num("wheel_events_per_s", wheel.events_per_s)
      .Num("speedup", speedup);
}

int Main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  // Full run: 24 timers x 100 kHz x 3 simulated seconds = 7.2M periodic fires
  // plus background load; random_horizon lands at ~2M events. Smoke keeps CI
  // in the low hundreds of milliseconds.
  const DurationNs periodic_duration = smoke ? Millis(20) : 3 * kSecond;
  const DurationNs horizon_duration = smoke ? Millis(60) : 2 * kSecond;

  bool ok = true;
  BenchReporter reporter("simcore");
  reporter.MetaBool("smoke", smoke);

  {
    auto ref = RunPeriodicHeavy<ReferenceSimulation>("reference", periodic_duration);
    auto wheel = RunPeriodicHeavy<Simulation>("wheel", periodic_duration);
    Report(ref, wheel, reporter, &ok);
    if (!smoke && ref.wall_s / wheel.wall_s < 2.0) {
      std::fprintf(stderr, "FAIL: periodic_heavy speedup below the 2x acceptance bar\n");
      ok = false;
    }
  }
  {
    auto ref = RunRandomHorizon<ReferenceSimulation>("reference", horizon_duration);
    auto wheel = RunRandomHorizon<Simulation>("wheel", horizon_duration);
    Report(ref, wheel, reporter, &ok);
  }

  if (!reporter.WriteFile()) {
    ok = false;
  }

  // ---- shard-count sweep (BENCH_simcore_parallel.json) ----
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const DurationNs sweep_duration = smoke ? Millis(20) : kSecond;
  BenchReporter parallel("simcore_parallel");
  parallel.MetaBool("smoke", smoke);
  parallel.MetaNum("hw_threads", static_cast<double>(hw_threads));

  double base_events_per_s = 0;
  double best_scaled_speedup = 0;
  for (const int shards : {1, 2, 4, 8}) {
    ProfileResult r = RunPeriodicHeavySharded(shards, sweep_duration);
    if (shards == 1) {
      base_events_per_s = r.events_per_s;
    }
    const double speedup = r.events_per_s / base_events_per_s;
    if (shards >= 4) {
      best_scaled_speedup = std::max(best_scaled_speedup, speedup);
    }
    std::printf("%-16s %12llu events | %d threads | %8.3fs (%10.0f ev/s) | %.2fx vs 1 shard\n",
                r.name.c_str(), static_cast<unsigned long long>(r.events), shards, r.wall_s,
                r.events_per_s, speedup);
    parallel.AddRow()
        .Str("profile", r.name)
        .Int("shards", shards)
        .Int("events", static_cast<std::int64_t>(r.events))
        .Num("wall_s", r.wall_s)
        .Num("events_per_s", r.events_per_s)
        .Num("speedup_vs_1shard", speedup);
  }
  // The >=4x bar needs at least 8 host threads (4x at exactly 4 cores would
  // demand perfectly free barriers); on smaller hosts — CI included — the
  // sweep still runs and records, it just cannot prove scaling.
  if (!smoke && hw_threads >= 8 && best_scaled_speedup < 4.0) {
    std::fprintf(stderr, "FAIL: shard sweep peaked at %.2fx (< 4x) with %u hw threads\n",
                 best_scaled_speedup, hw_threads);
    ok = false;
  }
  if (!parallel.WriteFile()) {
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace skyloft

int main(int argc, char** argv) { return skyloft::Main(argc, argv); }
