// Fig. 8a: Memcached with Meta's USR workload (99.8% GET / 0.2% SET),
// 4 worker cores, work-stealing policy.
//
// Paper results to reproduce (shape): Skyloft within 2% of Shenango's max
// throughput, with slightly *lower* tail latency at low load (Shenango pays
// for frequent core parking/unparking when mostly idle).
#include <cstdio>
#include <functional>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/workloads.h"
#include "src/policies/work_stealing.h"

namespace skyloft {
namespace {

constexpr int kWorkers = 4;

void Main() {
  const RequestMix mix = MemcachedUsrMix();
  const double capacity_rps = kWorkers / (MixMeanNs(mix) / 1e9);  // ~4 MRPS

  struct Row {
    const char* name;
    std::function<SystemSetup()> make;
  };
  const std::vector<Row> systems = {
      // Light-tailed workload: work stealing without preemption, like
      // Shenango's policy, but on spinning Skyloft workers.
      {"skyloft-ws", [] { return MakeSkyloftWorkStealing(kWorkers, kInfiniteSliceWs); }},
      {"shenango", [] { return MakeShenango(kWorkers); }},
  };
  const std::vector<double> load_fracs = {0.05, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.98};

  BenchReporter reporter("fig8a_memcached");
  reporter.MetaNum("workers", kWorkers);
  reporter.MetaNum("capacity_rps", capacity_rps);

  PrintHeader("Fig.8a Memcached USR, 4 workers: 99.9% latency vs load",
              {"system", "load(kRPS)", "achieved", "p99(us)", "p99.9(us)"});
  for (const Row& row : systems) {
    for (const double frac : load_fracs) {
      SystemSetup setup = row.make();
      LoadPointOptions options;
      options.warmup = Millis(20);
      options.measure = Millis(150);
      options.rss_route = true;  // RSS steers flows to cores (§3.5)
      options.wire_ns = Micros(5);
      const LoadPointResult r = RunLoadPoint(setup, mix, capacity_rps * frac, options);
      PrintCell(row.name);
      PrintCell(r.offered_rps / 1000.0);
      PrintCell(r.achieved_rps / 1000.0);
      PrintCell(static_cast<double>(r.p99_ns) / 1000.0);
      PrintCell(static_cast<double>(r.p999_ns) / 1000.0);
      EndRow();
      reporter.AddLoadPoint(row.name, r);
    }
  }
  reporter.WriteFile();
  std::printf(
      "\nExpected shape: the two curves nearly overlap (within ~2%% max load);\n"
      "skyloft slightly lower tail at low load (no park/unpark penalty).\n");
}

}  // namespace
}  // namespace skyloft

int main() { skyloft::Main(); }
