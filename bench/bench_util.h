// Shared helpers for the figure/table benchmarks: open-loop load-point
// driver with warmup, fixed-width table printing, and the BENCH_<name>.json
// results reporter every bench emits for CI artifact collection.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <fstream>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "src/baselines/systems.h"
#include "src/net/loadgen.h"

namespace skyloft {

struct LoadPointResult {
  double offered_rps = 0;
  double achieved_rps = 0;
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t p999_ns = 0;
  std::int64_t p999_slowdown_x100 = 0;
  double be_share = 0;  // CPU share of the best-effort app, if any
};

struct LoadPointOptions {
  DurationNs warmup = Millis(20);
  DurationNs measure = Millis(300);
  DurationNs wire_ns = 0;
  bool rss_route = true;
  std::uint64_t seed = 1;
  App* be_app = nullptr;  // include this app's CPU share in the result
};

// Drives `setup` with an open-loop Poisson client at `rate_rps` and returns
// measured latency/throughput after discarding the warmup window.
inline LoadPointResult RunLoadPoint(SystemSetup& setup, const RequestMix& mix, double rate_rps,
                                    const LoadPointOptions& options) {
  PoissonClient::Options copts;
  copts.rate_rps = rate_rps;
  copts.seed = options.seed;
  copts.rss_route = options.rss_route;
  copts.wire_ns = options.wire_ns;
  PoissonClient client(setup.engine.get(), setup.app, mix, copts);
  client.Start();
  setup.sim->RunUntil(options.warmup);
  setup.engine->ResetStats();
  setup.sim->RunUntil(options.warmup + options.measure);

  LoadPointResult result;
  result.offered_rps = rate_rps;
  EngineStats& stats = setup.engine->stats();
  result.achieved_rps = stats.ThroughputRps(setup.sim->Now());
  result.p50_ns = stats.request_latency.Percentile(0.5);
  result.p99_ns = stats.request_latency.Percentile(0.99);
  result.p999_ns = stats.request_latency.Percentile(0.999);
  result.p999_slowdown_x100 = stats.slowdown_x100.Percentile(0.999);
  if (options.be_app != nullptr) {
    result.be_share = setup.engine->CpuShare(options.be_app);
  }
  client.Stop();
  return result;
}

inline void PrintHeader(const std::string& title, const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& c : columns) {
    std::printf("%16s", c.c_str());
  }
  std::printf("\n");
}

inline void PrintCell(double v) { std::printf("%16.1f", v); }
inline void PrintCell(std::int64_t v) { std::printf("%16lld", static_cast<long long>(v)); }
inline void PrintCell(const char* v) { std::printf("%16s", v); }
inline void EndRow() { std::printf("\n"); }

// Machine-readable results artifact. Every bench builds one of these and
// calls WriteFile() before exiting, producing BENCH_<name>.json in the
// working directory:
//   {"benchmark":"<name>","meta":{...},"rows":[{...},...]}
// Rows mirror the printed table; meta records the bench configuration.
class BenchReporter {
 public:
  explicit BenchReporter(std::string name) : name_(std::move(name)) {}

  void MetaStr(const std::string& key, const std::string& value) {
    meta_.emplace_back(key, Quote(value));
  }
  void MetaNum(const std::string& key, double value) { meta_.emplace_back(key, Render(value)); }
  void MetaBool(const std::string& key, bool value) {
    meta_.emplace_back(key, value ? "true" : "false");
  }

  class Row {
   public:
    Row& Num(const std::string& key, double v) {
      fields_.emplace_back(key, Render(v));
      return *this;
    }
    Row& Int(const std::string& key, std::int64_t v) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
      fields_.emplace_back(key, buf);
      return *this;
    }
    Row& Str(const std::string& key, const std::string& v) {
      fields_.emplace_back(key, Quote(v));
      return *this;
    }

   private:
    friend class BenchReporter;
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  Row& AddRow() {
    rows_.emplace_back();
    return rows_.back();
  }

  // Standard columns for an open-loop load point.
  void AddLoadPoint(const std::string& label, const LoadPointResult& r) {
    AddRow()
        .Str("label", label)
        .Num("offered_rps", r.offered_rps)
        .Num("achieved_rps", r.achieved_rps)
        .Int("p50_ns", r.p50_ns)
        .Int("p99_ns", r.p99_ns)
        .Int("p999_ns", r.p999_ns)
        .Int("p999_slowdown_x100", r.p999_slowdown_x100)
        .Num("be_share", r.be_share);
  }

  std::string ToJson() const {
    std::string out = "{\"benchmark\":" + Quote(name_) + ",\"meta\":{";
    bool first = true;
    for (const auto& [key, value] : meta_) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += Quote(key) + ":" + value;
    }
    out += "},\"rows\":[";
    first = true;
    for (const Row& row : rows_) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += "{";
      bool rfirst = true;
      for (const auto& [key, value] : row.fields_) {
        if (!rfirst) {
          out += ",";
        }
        rfirst = false;
        out += Quote(key) + ":" + value;
      }
      out += "}";
    }
    out += "]}";
    return out;
  }

  bool WriteFile() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "failed to open %s for writing\n", path.c_str());
      return false;
    }
    out << ToJson() << "\n";
    std::printf("wrote %s\n", path.c_str());
    return out.good();
  }

 private:
  static std::string Render(double v) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
      }
      out += c;
    }
    out += "\"";
    return out;
  }

  std::string name_;
  std::vector<std::pair<std::string, std::string>> meta_;
  std::deque<Row> rows_;
};

}  // namespace skyloft

#endif  // BENCH_BENCH_UTIL_H_
