// Shared helpers for the figure/table benchmarks: open-loop load-point
// driver with warmup, and fixed-width table printing.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/baselines/systems.h"
#include "src/net/loadgen.h"

namespace skyloft {

struct LoadPointResult {
  double offered_rps = 0;
  double achieved_rps = 0;
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t p999_ns = 0;
  std::int64_t p999_slowdown_x100 = 0;
  double be_share = 0;  // CPU share of the best-effort app, if any
};

struct LoadPointOptions {
  DurationNs warmup = Millis(20);
  DurationNs measure = Millis(300);
  DurationNs wire_ns = 0;
  bool rss_route = true;
  std::uint64_t seed = 1;
  App* be_app = nullptr;  // include this app's CPU share in the result
};

// Drives `setup` with an open-loop Poisson client at `rate_rps` and returns
// measured latency/throughput after discarding the warmup window.
inline LoadPointResult RunLoadPoint(SystemSetup& setup, const RequestMix& mix, double rate_rps,
                                    const LoadPointOptions& options) {
  PoissonClient::Options copts;
  copts.rate_rps = rate_rps;
  copts.seed = options.seed;
  copts.rss_route = options.rss_route;
  copts.wire_ns = options.wire_ns;
  PoissonClient client(setup.engine.get(), setup.app, mix, copts);
  client.Start();
  setup.sim->RunUntil(options.warmup);
  setup.engine->ResetStats();
  setup.sim->RunUntil(options.warmup + options.measure);

  LoadPointResult result;
  result.offered_rps = rate_rps;
  EngineStats& stats = setup.engine->stats();
  result.achieved_rps = stats.ThroughputRps(setup.sim->Now());
  result.p50_ns = stats.request_latency.Percentile(0.5);
  result.p99_ns = stats.request_latency.Percentile(0.99);
  result.p999_ns = stats.request_latency.Percentile(0.999);
  result.p999_slowdown_x100 = stats.slowdown_x100.Percentile(0.999);
  if (options.be_app != nullptr) {
    result.be_share = setup.engine->CpuShare(options.be_app);
  }
  client.Stop();
  return result;
}

inline void PrintHeader(const std::string& title, const std::vector<std::string>& columns) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& c : columns) {
    std::printf("%16s", c.c_str());
  }
  std::printf("\n");
}

inline void PrintCell(double v) { std::printf("%16.1f", v); }
inline void PrintCell(std::int64_t v) { std::printf("%16lld", static_cast<long long>(v)); }
inline void PrintCell(const char* v) { std::printf("%16s", v); }
inline void EndRow() { std::printf("\n"); }

}  // namespace skyloft

#endif  // BENCH_BENCH_UTIL_H_
