// Table 6: preemption mechanism comparison (cycles @ 2.0 GHz).
//
// Measures each notification mechanism end-to-end *through the simulation
// machinery* (not by echoing constants): a sender on core 0 notifies core 1
// (and core 30 on the other socket for the cross-NUMA row); the benchmark
// reports the sender-side cost, receiver-side handling cost, and measured
// delivery latency, next to the paper's numbers.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/simcore/simulation.h"
#include "src/kernelsim/kernel_sim.h"
#include "src/simcore/machine.h"
#include "src/uintr/uintr_chip.h"

namespace skyloft {
namespace {

struct Measured {
  Cycles send = -1;
  Cycles receive = -1;
  Cycles delivery = -1;
};

BenchReporter* g_reporter = nullptr;

void Row(const char* name, Cycles ps, Cycles pr, Cycles pd, const Measured& m) {
  auto cell = [](Cycles v) {
    if (v < 0) {
      std::printf("%10s", "-");
    } else {
      std::printf("%10lld", static_cast<long long>(v));
    }
  };
  std::printf("%-28s", name);
  cell(ps);
  cell(pr);
  cell(pd);
  std::printf("   |");
  cell(m.send);
  cell(m.receive);
  cell(m.delivery);
  std::printf("\n");
  g_reporter->AddRow()
      .Str("mechanism", name)
      .Int("paper_send_cycles", ps)
      .Int("paper_receive_cycles", pr)
      .Int("paper_delivery_cycles", pd)
      .Int("send_cycles", m.send)
      .Int("receive_cycles", m.receive)
      .Int("delivery_cycles", m.delivery);
}

struct Rig {
  Rig() {
    MachineConfig mcfg;
    mcfg.num_cores = 48;
    mcfg.cores_per_socket = 24;
    machine = std::make_unique<Machine>(&sim, mcfg);
    chip = std::make_unique<UintrChip>(machine.get());
    kernel = std::make_unique<KernelSim>(machine.get(), chip.get());
  }
  Simulation sim;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<UintrChip> chip;
  std::unique_ptr<KernelSim> kernel;
};

Measured MeasureUserIpi(CoreId dest) {
  Rig rig;
  Measured m;
  Upid upid;
  upid.nv = kUserIpiVector;
  upid.ndst = dest;
  UserInterruptUnit& unit = rig.chip->unit(dest);
  unit.SetUinv(kUserIpiVector);
  unit.SetActiveUpid(&upid);
  TimeNs handler_at = -1;
  DurationNs receive_ns = 0;
  unit.SetHandler([&](const UintrFrame& frame) {
    handler_at = rig.sim.Now();
    receive_ns = frame.receive_cost_ns;
  });
  const int idx = rig.chip->RegisterUittEntry(0, &upid, 3);
  const TimeNs t0 = rig.sim.Now();
  const DurationNs send_ns = rig.chip->SendUipi(0, idx);
  rig.sim.Run();
  m.send = NsToCycles(send_ns);
  m.receive = NsToCycles(receive_ns);
  m.delivery = NsToCycles(handler_at - t0);
  return m;
}

Measured MeasureKernelIpi() {
  Rig rig;
  Measured m;
  TimeNs handler_at = -1;
  const DurationNs send_ns = rig.kernel->SendKernelIpi(0, 1, [&] { handler_at = rig.sim.Now(); });
  rig.sim.Run();
  m.send = NsToCycles(send_ns);
  m.receive = NsToCycles(rig.kernel->KernelIpiReceiveCost());
  m.delivery = NsToCycles(handler_at);
  return m;
}

Measured MeasureSignal() {
  Rig rig;
  Measured m;
  const Tid tid = rig.kernel->CreateThread(0);
  rig.kernel->BindToCore(tid, 1);
  TimeNs handler_at = -1;
  const DurationNs send_ns = rig.kernel->SendSignal(0, tid, [&] { handler_at = rig.sim.Now(); });
  rig.sim.Run();
  m.send = NsToCycles(send_ns);
  m.receive = NsToCycles(rig.kernel->SignalReceiveCost());
  m.delivery = NsToCycles(handler_at);
  return m;
}

Measured MeasureUserTimer() {
  // Full §3.2 path: kernel module configures delegation, user primes PIR,
  // LAPIC timer fires, the user handler measures its receive cost.
  Rig rig;
  Measured m;
  Upid upid;
  rig.kernel->SkyloftTimerEnable(2, &upid);
  const int self_idx = rig.chip->RegisterUittEntry(2, &upid, 1);
  DurationNs receive_ns = -1;
  rig.chip->unit(2).SetHandler([&](const UintrFrame& frame) {
    receive_ns = frame.receive_cost_ns;
    rig.chip->SendUipi(2, self_idx);
  });
  rig.chip->SendUipi(2, self_idx);
  rig.kernel->SkyloftTimerSetHz(2, 100'000);
  rig.sim.RunUntil(Micros(20));
  m.receive = NsToCycles(receive_ns);
  return m;
}

Measured MeasureSetitimer() {
  Rig rig;
  Measured m;
  m.receive = NsToCycles(rig.machine->costs().SetitimerReceiveNs());
  return m;
}

void Main() {
  BenchReporter reporter("table6_preemption");
  g_reporter = &reporter;
  std::printf("=== Table 6: preemption mechanisms (cycles @ 2 GHz) ===\n");
  std::printf("%-28s%10s%10s%10s   |%10s%10s%10s\n", "", "paper", "paper", "paper", "meas",
              "meas", "meas");
  std::printf("%-28s%10s%10s%10s   |%10s%10s%10s\n", "mechanism", "send", "recv", "deliv",
              "send", "recv", "deliv");
  Row("Signal", 1224, 6359, 5274, MeasureSignal());
  Row("Kernel IPI", 437, 1582, 1345, MeasureKernelIpi());
  Row("User IPI", 167, 661, 1211, MeasureUserIpi(1));
  Row("User IPI (cross NUMA)", 178, 883, 1782, MeasureUserIpi(30));
  Row("setitimer", -1, 5057, -1, MeasureSetitimer());
  Row("User timer interrupt", -1, 642, -1, MeasureUserTimer());
  Rig rig;
  const Cycles rearm = NsToCycles(rig.machine->costs().SenduipiSnRearmNs());
  std::printf("\nsenduipi (UPID.SN=1) re-arm in handler: paper ~123 cycles, model %lld\n",
              static_cast<long long>(rearm));
  reporter.AddRow()
      .Str("mechanism", "senduipi-sn-rearm")
      .Int("paper_receive_cycles", 123)
      .Int("receive_cycles", rearm);
  std::printf(
      "Shape check: user IPI < kernel IPI < signal on every column; the user\n"
      "timer beats even user IPIs on receive (no cross-core delivery).\n");
  reporter.WriteFile();
}

}  // namespace
}  // namespace skyloft

int main() { skyloft::Main(); }
