// Runqueue contention microbenchmark: aggregate enqueue+dequeue throughput
// of the host scheduler's two drivers as worker count grows.
//
// Drives HostSched directly (no uthreads, no timers) with one OS thread per
// worker in a closed loop, under the work-stealing policy on both drivers:
//   - mutex: the shard-mutex driver (force_locked), every operation through
//     one policy instance behind a lock — the pre-lock-free behavior
//   - lockfree: the two-level runqueue (MPSC mailbox -> Chase-Lev deque,
//     DESIGN.md section 9)
// Scenarios:
//   - local:  each worker cycles one item through its own queue (the yield
//     fast path — mailbox self-push + drain, zero cross-worker traffic when
//     lock-free)
//   - remote: each worker dequeues locally and enqueues to its neighbor,
//     with a stock of items per worker keeping the pipeline full
//     (cross-worker submission: the mailbox CAS path vs. the neighbor's
//     shard lock; empty workers fall into the steal path)
// Emits BENCH_runq_contention.json via BenchReporter. `--smoke` shrinks the
// measurement window and worker sweep for CI.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/base/compiler.h"
#include "src/runtime/host_sched.h"

namespace skyloft {
namespace {

// One scheduling item per worker, each on its own cache lines so the bench
// measures the runqueues, not false sharing between neighboring items.
struct alignas(kCacheLineSize) BenchItem {
  SchedItem item;
};

struct ScenarioResult {
  std::uint64_t ops = 0;  // enqueues + dequeues completed
  double mops_per_s = 0;
};

// Closed loop: every worker starts with `stock` items in its own queue and
// cycles them (dequeue + enqueue = 2 ops per iteration). `remote` sends each
// item to the next worker instead of back to ourselves.
ScenarioResult RunScenario(bool lock_free, bool remote, int workers, int stock,
                           DurationNs measure_ns) {
  HostSchedOptions opts;
  opts.policy = RuntimePolicy::kWorkStealing;
  opts.force_locked = !lock_free;
  HostSched sched(workers, opts);

  std::vector<BenchItem> items(static_cast<std::size_t>(workers * stock));
  for (int i = 0; i < workers * stock; i++) {
    items[static_cast<std::size_t>(i)].item.id = static_cast<std::uint64_t>(i + 1);
    sched.EnqueueNew(&items[static_cast<std::size_t>(i)].item, kEnqueueNew, i % workers);
  }

  std::atomic<bool> stop{false};
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::uint64_t> ops(static_cast<std::size_t>(workers), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; w++) {
    threads.emplace_back([&, w] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      std::uint64_t local = 0;
      const int target = remote ? (w + 1) % workers : w;
      while (!stop.load(std::memory_order_relaxed)) {
        SchedItem* item = sched.Dequeue(w);
        if (item == nullptr) {
          // Our item is in flight (neighbor hasn't forwarded yet, or a thief
          // migrated it); let whoever holds it run.
          std::this_thread::yield();
          continue;
        }
        sched.Enqueue(item, kEnqueueYield, target);
        local += 2;
      }
      ops[static_cast<std::size_t>(w)] = local;
    });
  }
  while (ready.load() < workers) {
    std::this_thread::yield();
  }
  const auto start = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(std::chrono::nanoseconds(measure_ns));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) {
    t.join();
  }
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  ScenarioResult result;
  for (int w = 0; w < workers; w++) {
    result.ops += ops[static_cast<std::size_t>(w)];
  }
  result.mops_per_s = static_cast<double>(result.ops) / elapsed_s / 1e6;
  return result;
}

}  // namespace
}  // namespace skyloft

int main(int argc, char** argv) {
  using namespace skyloft;
  bool smoke = false;
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    }
  }
  const DurationNs measure = smoke ? Millis(30) : Millis(200);
  std::vector<int> worker_counts = smoke ? std::vector<int>{1, 2, 4} : std::vector<int>{1, 2, 4, 8};

  BenchReporter reporter("runq_contention");
  reporter.MetaStr("policy", "skyloft-ws");
  reporter.MetaNum("measure_ms", static_cast<double>(measure) / 1e6);
  reporter.MetaBool("smoke", smoke);
  reporter.MetaNum("hw_threads", std::thread::hardware_concurrency());

  PrintHeader("Runqueue contention: mutex-shard vs lock-free (enq+deq Mops/s)",
              {"scenario", "workers", "mutex", "lockfree", "speedup"});
  for (const bool remote : {false, true}) {
    const char* scenario = remote ? "remote" : "local";
    // Local measures the single-item yield cycle; remote keeps a stock of
    // items per worker so the pipeline measures throughput, not the OS
    // context-switch latency of handing one item around a ring.
    const int stock = remote ? 16 : 1;
    for (const int workers : worker_counts) {
      const ScenarioResult mutex_r =
          RunScenario(/*lock_free=*/false, remote, workers, stock, measure);
      const ScenarioResult lf_r = RunScenario(/*lock_free=*/true, remote, workers, stock, measure);
      const double speedup =
          mutex_r.mops_per_s > 0 ? lf_r.mops_per_s / mutex_r.mops_per_s : 0;
      PrintCell(scenario);
      PrintCell(static_cast<std::int64_t>(workers));
      PrintCell(mutex_r.mops_per_s);
      PrintCell(lf_r.mops_per_s);
      PrintCell(speedup);
      EndRow();
      reporter.AddRow()
          .Str("scenario", scenario)
          .Int("workers", workers)
          .Num("mutex_mops", mutex_r.mops_per_s)
          .Num("lockfree_mops", lf_r.mops_per_s)
          .Num("speedup", speedup);
    }
  }
  return reporter.WriteFile() ? 0 : 1;
}
