// Fig. 6: schbench wakeup latency vs Round-Robin time slice.
//
// Paper result to reproduce (shape): wakeup latency is roughly proportional
// to the RR time slice; Skyloft-FIFO (infinite slice, no preemption) is the
// worst once cores are oversubscribed.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/schbench.h"

namespace skyloft {
namespace {

constexpr int kCores = 24;

std::int64_t RunSchbench(DurationNs slice, int workers) {
  SystemSetup setup =
      slice == kInfiniteSlice
          ? MakeSkyloftPerCpu(SkyloftSched::kFifo, kCores)
          : MakeSkyloftPerCpu(SkyloftSched::kRr, kCores, slice);
  SchbenchSim bench(setup.engine.get(), setup.app,
                    SchbenchOptions{.worker_threads = workers});
  bench.Start();
  setup.sim->RunUntil(Millis(100));
  setup.engine->ResetStats();
  setup.sim->RunUntil(Millis(500));
  return bench.WakeupPercentileNs(0.99);
}

void Main() {
  const std::vector<std::pair<const char*, DurationNs>> slices = {
      {"rr-5us", Micros(5)},   {"rr-50us", Micros(50)}, {"rr-500us", Micros(500)},
      {"rr-5ms", Millis(5)},   {"fifo", kInfiniteSlice},
  };
  const std::vector<int> worker_counts = {16, 24, 32, 40, 48, 56, 64};

  std::vector<std::string> cols = {"p99 wakeup(us)"};
  for (const int w : worker_counts) {
    cols.push_back(std::to_string(w) + " thr");
  }
  BenchReporter reporter("fig6_timeslice");
  reporter.MetaNum("cores", kCores);

  PrintHeader("Fig.6 schbench p99 wakeup latency (us) vs RR time slice", cols);
  for (const auto& [name, slice] : slices) {
    PrintCell(name);
    for (const int workers : worker_counts) {
      const std::int64_t p99 = RunSchbench(slice, workers);
      PrintCell(static_cast<double>(p99) / 1000.0);
      reporter.AddRow().Str("slice", name).Int("workers", workers).Int("p99_wakeup_ns", p99);
    }
    EndRow();
  }
  reporter.WriteFile();
  std::printf("\nExpected shape: p99 wakeup roughly proportional to the slice;\n"
              "FIFO worst (bounded only by the 2.3 ms request length times queue depth).\n");
}

}  // namespace
}  // namespace skyloft

int main() { skyloft::Main(); }
