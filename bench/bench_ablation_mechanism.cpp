// Ablation: preemption mechanism, everything else held constant.
//
// The paper's implicit claim is that UINTR is the *enabler*: the same
// centralized Shinjuku policy with the same dispatcher, queue, and quantum,
// differing only in how the preemption signal reaches the worker, separates
// into distinct latency/throughput regimes. This bench swaps only the
// mechanism costs (Table 6 rows) on the dispersive workload:
//   user IPI (Skyloft) -> posted IPI (Shinjuku/Dune) -> kernel IPI +
//   reschedule (ghOSt-style) -> Linux signal (Shenango-style) -> none.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/simcore/simulation.h"
#include "src/apps/workloads.h"

namespace skyloft {
namespace {

constexpr int kWorkers = 20;

SystemSetup MakeWithMechanism(const char* kind) {
  // Identical engine layout; only preemption delivery/receive costs differ.
  CostModel costs;  // for converting Table 6 cycle figures
  CentralizedEngineConfig::Mech mech = CentralizedEngineConfig::Mech::kModelled;
  DurationNs delivery = 0;
  DurationNs receive = 0;
  const std::string k(kind);
  if (k == "user-ipi") {
    mech = CentralizedEngineConfig::Mech::kUserIpi;
  } else if (k == "posted-ipi") {
    delivery = 1500;
    receive = 1200;
  } else if (k == "kernel-ipi") {
    delivery = costs.KernelIpiDeliveryNs() + costs.syscall_ns;
    receive = costs.KernelIpiReceiveNs() + costs.linux_kthread_switch_ns;
  } else if (k == "signal") {
    delivery = costs.SignalDeliveryNs() + costs.syscall_ns;
    receive = costs.SignalReceiveNs();
  } else {  // none
    mech = CentralizedEngineConfig::Mech::kNone;
  }

  // Build via the Skyloft factory, then override the mechanism knobs by
  // reconstructing the engine with the same layout.
  SystemSetup setup = MakeSkyloftShinjuku(kWorkers, Micros(30), false);
  if (mech != CentralizedEngineConfig::Mech::kUserIpi) {
    setup = SystemSetup{};
    setup.name = std::string("ablate-") + kind;
    setup.sim = std::make_unique<Simulation>();
    MachineConfig mcfg;
    mcfg.num_cores = kWorkers + 1;
    setup.machine = std::make_unique<Machine>(setup.sim.get(), mcfg);
    setup.chip = std::make_unique<UintrChip>(setup.machine.get());
    setup.kernel = std::make_unique<KernelSim>(setup.machine.get(), setup.chip.get());
    setup.policy = std::make_unique<ShinjukuPolicy>();
    CentralizedEngineConfig ccfg;
    for (int i = 0; i < kWorkers; i++) {
      ccfg.base.worker_cores.push_back(i);
    }
    ccfg.dispatcher_core = kWorkers;
    ccfg.base.local_switch_ns = 100;
    ccfg.quantum = Micros(30);
    ccfg.mech = mech;
    ccfg.preempt_delivery_ns = delivery;
    ccfg.preempt_receive_ns = receive;
    setup.engine = std::make_unique<CentralizedEngine>(setup.machine.get(), setup.chip.get(),
                                                       setup.kernel.get(), setup.policy.get(),
                                                       ccfg);
    setup.app = setup.engine->CreateApp("lc");
    setup.engine->Start();
  }
  return setup;
}

void Main() {
  const RequestMix mix = DispersiveMix();
  const double capacity = kWorkers / (MixMeanNs(mix) / 1e9);
  const std::vector<const char*> mechanisms = {"user-ipi", "posted-ipi", "kernel-ipi",
                                               "signal", "none"};
  const std::vector<double> load_fracs = {0.4, 0.7, 0.9};

  BenchReporter reporter("ablation_mechanism");
  reporter.MetaNum("workers", kWorkers);
  reporter.MetaNum("capacity_rps", capacity);

  // Interrupt-volume columns come from the chip/kernel counters, so the table
  // reports what each mechanism actually *sent* during the measured window,
  // not just its modelled per-event cost.
  PrintHeader("Ablation: preemption mechanism x dispersive load (p99 us of GETs)",
              {"mechanism", "load(kRPS)", "p99 GET(us)", "p99 all(us)", "senduipi", "uirq",
               "signals", "kipis"});
  for (const char* kind : mechanisms) {
    for (const double frac : load_fracs) {
      SystemSetup setup = MakeWithMechanism(kind);
      LoadPointOptions options;
      options.warmup = Millis(50);
      options.measure = Millis(300);
      options.rss_route = false;
      RunLoadPoint(setup, mix, capacity * frac, options);
      const auto& stats = setup.engine->stats();
      const auto& chip = setup.chip->counters();
      const auto& kernel = setup.kernel->counters();
      const double p99_get =
          static_cast<double>(stats.latency_by_kind[kKindShort].Percentile(0.99)) / 1000.0;
      const double p99_all =
          static_cast<double>(stats.request_latency.Percentile(0.99)) / 1000.0;
      PrintCell(kind);
      PrintCell(capacity * frac / 1000.0);
      PrintCell(p99_get);
      PrintCell(p99_all);
      PrintCell(static_cast<std::int64_t>(chip.senduipi_executed.Value()));
      PrintCell(static_cast<std::int64_t>(chip.user_irqs_delivered.Value()));
      PrintCell(static_cast<std::int64_t>(kernel.signals_sent.Value()));
      PrintCell(static_cast<std::int64_t>(kernel.kernel_ipis_sent.Value()));
      EndRow();
      reporter.AddRow()
          .Str("mechanism", kind)
          .Num("load_frac", frac)
          .Num("offered_rps", capacity * frac)
          .Num("p99_get_us", p99_get)
          .Num("p99_all_us", p99_all)
          .Int("senduipi_executed", static_cast<std::int64_t>(chip.senduipi_executed.Value()))
          .Int("user_irqs_delivered",
               static_cast<std::int64_t>(chip.user_irqs_delivered.Value()))
          .Int("signals_sent", static_cast<std::int64_t>(kernel.signals_sent.Value()))
          .Int("kernel_ipis_sent", static_cast<std::int64_t>(kernel.kernel_ipis_sent.Value()));
    }
  }
  std::printf(
      "\nExpected: GET p99 ordering user-ipi <= posted-ipi < kernel-ipi < signal\n"
      "<< none (head-of-line). Heavier mechanisms also erode high-load capacity\n"
      "(the dispatcher and workers burn more time per preemption). The volume\n"
      "columns are measured from the chip/kernel counters: only user-ipi\n"
      "exercises the real SENDUIPI path; the modelled mechanisms apply flat\n"
      "Table 6 costs without touching the chip, so their channels stay 0.\n");
  reporter.WriteFile();
}

}  // namespace
}  // namespace skyloft

int main() { skyloft::Main(); }
