// Table 4: lines of code per scheduling policy.
//
// The paper's point: against Skyloft's Table 2 operations, each policy is a
// few hundred lines (vs thousands inside the Linux kernel or ghOSt agents).
// This benchmark counts the actual implementation lines of this repository's
// policies (headers + sources, excluding blanks and pure comment lines) and
// prints them next to the paper's numbers.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"

#ifndef SKYLOFT_SOURCE_DIR
#define SKYLOFT_SOURCE_DIR "."
#endif

namespace {

skyloft::BenchReporter* g_reporter = nullptr;

int CountLoc(const std::vector<std::string>& files) {
  int loc = 0;
  for (const std::string& file : files) {
    std::ifstream in(std::string(SKYLOFT_SOURCE_DIR) + "/" + file);
    if (!in) {
      std::fprintf(stderr, "warning: cannot open %s\n", file.c_str());
      continue;
    }
    std::string line;
    bool in_block_comment = false;
    while (std::getline(in, line)) {
      std::size_t i = line.find_first_not_of(" \t");
      if (i == std::string::npos) {
        continue;  // blank
      }
      if (in_block_comment) {
        if (line.find("*/") != std::string::npos) {
          in_block_comment = false;
        }
        continue;
      }
      if (line.compare(i, 2, "//") == 0) {
        continue;  // comment line
      }
      if (line.compare(i, 2, "/*") == 0 && line.find("*/") == std::string::npos) {
        in_block_comment = true;
        continue;
      }
      loc++;
    }
  }
  return loc;
}

void Row(const char* name, int paper_loc, int ours) {
  std::printf("%-38s %10d %12d\n", name, paper_loc, ours);
  g_reporter->AddRow().Str("scheduler", name).Int("paper_loc", paper_loc).Int("repo_loc", ours);
}

}  // namespace

int main() {
  skyloft::BenchReporter reporter("table4_loc");
  g_reporter = &reporter;
  std::printf("=== Table 4: lines of code per scheduler ===\n");
  std::printf("%-38s %10s %12s\n", "scheduler", "paper LOC", "this repo");
  Row("Linux CFS (kernel/sched/fair.c)", 6592, 0);
  Row("Linux RT (kernel/sched/rt.c)", 1939, 0);
  Row("Linux EEVDF (v6.8 fair.c)", 7102, 0);
  Row("ghOSt Shinjuku", 710, 0);
  Row("ghOSt Shinjuku-Shenango", 727, 0);
  Row("Skyloft Round-Robin",
      141, CountLoc({"src/policies/round_robin.h", "src/policies/round_robin.cpp"}));
  Row("Skyloft CFS", 430, CountLoc({"src/policies/cfs.h", "src/policies/cfs.cpp"}));
  Row("Skyloft EEVDF", 579, CountLoc({"src/policies/eevdf.h", "src/policies/eevdf.cpp"}));
  Row("Skyloft Shinjuku",
      192, CountLoc({"src/policies/shinjuku.h", "src/policies/shinjuku.cpp"}));
  Row("Skyloft Shinjuku-Shenango (policy+alloc)", 444,
      CountLoc({"src/policies/shinjuku.h", "src/policies/shinjuku.cpp",
                "src/libos/central_engine.h"}));
  Row("Skyloft Work-Stealing (Preemptive)", 150,
      CountLoc({"src/policies/work_stealing.h", "src/policies/work_stealing.cpp"}));
  // Not a policy: the substrate-neutral Table 2 interface every policy above
  // is written against (SchedItem + SchedPolicy/EngineView + registry). The
  // paper gives no LOC for it; the point is that ~200 lines of interface buy
  // both the simulated engines and the real host runtime.
  Row("Table 2 interface (shared src/sched)", 0,
      CountLoc({"src/sched/sched_item.h", "src/sched/policy.h", "src/sched/registry.h",
                "src/sched/registry.cpp"}));
  std::printf(
      "\nShape check: every Skyloft policy lands in the hundreds of lines,\n"
      "one to two orders of magnitude below the kernel implementations.\n"
      "The same policy sources count for BOTH substrates: they include only\n"
      "src/sched and link into the simulator and the host runtime unchanged.\n");
  reporter.WriteFile();
  return 0;
}
