// Shifting-mix scenario for the adaptive quantum controller (DESIGN.md §13,
// ROADMAP item 2): the GET/SCAN ratio drifts over time, and no static
// quantum wins both regimes.
//
//   - bimodal phases (50% GET @ 0.95 us / 50% SCAN @ 591 us): a small
//     quantum protects the GET tail from head-of-line blocking behind SCANs
//     (Fig. 8b's result) — an infinite quantum blows the short-request tail
//     by ~600x.
//   - scan phases (100% SCAN): every task is the same length, so preemption
//     cannot help anyone finish sooner; slicing only adds tick/preemption
//     overhead and processor-sharing tail inflation. A small quantum at
//     200 kHz ticks burns ~8% of every core and round-robins equal tasks;
//     FIFO (infinite quantum) is optimal.
//
// The sweep runs static quanta {5 us, 15 us, 50 us, inf} plus the adaptive
// controller and checks the ISSUE 9 acceptance bars in-bench: adaptive
// overall p99 slowdown must beat every static, and per-phase p99 must land
// within 20% of the best static for that phase. The simulation is seeded and
// deterministic, so the bars are reproducible, not flaky.
//
// Outputs: BENCH_quantum_adaptive.json (sweep + quantum-vs-time series) and
// TRACE_quantum_adaptive.json (Perfetto counter track of quantum_set
// events). `--smoke` shrinks the phases for CI and skips the bars (too few
// samples for a stable p99).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/workloads.h"
#include "src/base/logging.h"
#include "src/policies/work_stealing.h"
#include "src/runtime/quantum_controller.h"

namespace skyloft {
namespace {

constexpr int kWorkers = 14;
constexpr DurationNs kGetServiceNs = 950;
constexpr DurationNs kScanServiceNs = Micros(591);

// One segment of the drifting workload: `get_frac` of requests are GETs,
// the rest SCANs, offered at `load_frac` of that mix's own capacity.
struct PhaseSpec {
  const char* name;
  double get_frac;
  double load_frac;
};

RequestMix MixWithGetFraction(double get_frac) {
  RequestMix mix;
  if (get_frac > 0) {
    mix.push_back({get_frac, ServiceTimeDist::Fixed(kGetServiceNs), kKindShort});
  }
  if (get_frac < 1) {
    mix.push_back({1 - get_frac, ServiceTimeDist::Fixed(kScanServiceNs), kKindLong});
  }
  return mix;
}

struct PhaseResult {
  std::int64_t p99_slowdown_x100 = 0;
  std::uint64_t samples = 0;
};

struct RunResult {
  std::int64_t overall_p99_x100 = 0;
  double achieved_rps = 0;
  std::uint64_t ticks = 0;
  std::vector<PhaseResult> phases;
};

// Drives `setup` through the phase sequence. Per-phase tails come from
// LatencyHistogram::DeltaSince against a baseline copied at each phase
// boundary — the same interval-snapshot machinery the controller itself
// steers by.
RunResult RunShiftingMix(SystemSetup& setup, const std::vector<PhaseSpec>& phases,
                         DurationNs phase_ns, DurationNs warmup_ns) {
  // Clients schedule events that capture `this`; keep every phase's client
  // alive until the simulation is done with all of them.
  std::deque<std::unique_ptr<PoissonClient>> clients;
  std::uint64_t seed = 1;
  auto start_client = [&](const PhaseSpec& phase) {
    const RequestMix mix = MixWithGetFraction(phase.get_frac);
    const double capacity_rps = kWorkers / (MixMeanNs(mix) / 1e9);
    PoissonClient::Options copts;
    copts.rate_rps = capacity_rps * phase.load_frac;
    copts.seed = seed++;
    copts.rss_route = true;
    copts.wire_ns = Micros(5);
    clients.push_back(
        std::make_unique<PoissonClient>(setup.engine.get(), setup.app, mix, copts));
    clients.back()->Start();
  };

  // Warmup on the first phase's mix, then discard.
  start_client(phases[0]);
  setup.sim->RunUntil(warmup_ns);
  clients.back()->Stop();
  setup.engine->ResetStats();

  RunResult result;
  EngineStats& stats = setup.engine->stats();
  TimeNs t = warmup_ns;
  for (const PhaseSpec& phase : phases) {
    const LatencyHistogram baseline = stats.slowdown_x100;
    start_client(phase);
    t += phase_ns;
    setup.sim->RunUntil(t);
    clients.back()->Stop();
    const LatencyHistogram window = stats.slowdown_x100.DeltaSince(baseline);
    result.phases.push_back(PhaseResult{window.Percentile(0.99), window.Count()});
  }
  result.overall_p99_x100 = stats.slowdown_x100.Percentile(0.99);
  result.achieved_rps = stats.ThroughputRps(setup.sim->Now());
  result.ticks = setup.percpu()->ticks();
  return result;
}

QuantumControllerConfig AdaptiveConfig() {
  QuantumControllerConfig config;
  config.slo_slowdown_x100 = 1000;  // steer the windowed p99 against 10x
  config.tighten_at = 0.8;
  // Keep the comfortable threshold far below the bimodal steady state: the
  // EWMA-smoothed short-request p99 at the floor hovers at 7-12x and dips
  // on runs of quiet windows, so 8x would fire spurious relax excursions.
  // This scenario does not need the comfortable branch for its transitions
  // anyway — scan entry rides the protected-empty branch — it only has to
  // catch a genuinely idle tail (~1-2x).
  config.relax_below = 0.3;
  config.quantum_min = Micros(5);  // 200 kHz ticks at the floor — below this
                                   // the tick stream itself eats the cores
  // 600 us > the 591 us SCAN service time: parked at the max, no request is
  // ever preempted (FIFO), while the (clamped) 200 us timer keeps a cheap
  // 5 kHz heartbeat so the controller still sees windows.
  config.quantum_max = Micros(600);
  config.quantum_initial = Micros(15);
  config.tighten_div = 6.0;  // regime shifts are abrupt; converge in <= 3 polls
  config.relax_mul = 12.0;
  config.flip_worsen_frac = 0.5;
  config.min_window_samples = 24;
  // Damp the max-of-~30-GETs window noise hard. Neither regime transition
  // pays for the lag: scan entry rides the protected-empty branch (no EWMA
  // involved), and bimodal entry moves the raw tail by ~40x, which drags
  // even a 0.2-weighted EWMA across the congestion threshold in one window.
  config.signal_ewma = 0.2;
  // Any ticking above 8 kHz/core is worth shedding while the tail is
  // comfortable; this is what walks the quantum from the floor to the max
  // when the mix turns uniform.
  config.tick_budget_per_core_hz = 8e3;
  // Tick once per quantum, like the static nodes: quantum-overrun detection
  // latency equals one quantum, and the floor stays at 200 kHz ticks.
  config.timer_period_frac = 1.0;
  config.timer_period_min = Micros(5);
  config.timer_period_max = Micros(200);
  return config;
}

void Main(bool smoke) {
  // GET/SCAN ratio drift: 50/50 -> 0/100 -> 50/50 -> 0/100. The bimodal
  // phases run at 0.70 of bimodal capacity — enough queueing that an
  // infinite quantum blows the GET tail (~200x), while a 5 us quantum keeps
  // it ~17x. The scan phases run at 0.92 of scan-only capacity, where a
  // 5 us quantum's tick + preemption overhead (~10% of every core) pushes
  // the effective utilization toward 1 and slicing equal-length tasks
  // inflates the tail past the bimodal phases' own p99 — so a tight static
  // quantum loses *overall*, not just per phase — while FIFO stays ~2-3x.
  std::vector<PhaseSpec> phases = {
      {"bimodal", 0.5, 0.70},
      {"scan", 0.0, 0.92},
      {"bimodal", 0.5, 0.70},
      {"scan", 0.0, 0.92},
  };
  DurationNs phase_ns = Millis(1000);
  DurationNs warmup_ns = Millis(50);
  const DurationNs poll_ns = Millis(2);
  if (smoke) {
    phases.resize(2);
    phase_ns = Millis(40);
    warmup_ns = Millis(10);
  }

  struct Row {
    std::string name;
    DurationNs quantum;  // kInfiniteSliceWs = never preempt
    bool adaptive;
  };
  const std::vector<Row> systems = {
      {"static-5us", Micros(5), false},
      {"static-15us", Micros(15), false},
      {"static-50us", Micros(50), false},
      {"static-inf", kInfiniteSliceWs, false},
      {"adaptive", AdaptiveConfig().quantum_initial, true},
  };

  BenchReporter reporter("quantum_adaptive");
  reporter.MetaNum("workers", kWorkers);
  reporter.MetaNum("phase_ms", static_cast<double>(phase_ns) / 1e6);
  reporter.MetaNum("phases", static_cast<double>(phases.size()));
  reporter.MetaBool("smoke", smoke);

  std::vector<std::string> columns = {"system", "overall p99", "ticks(k)"};
  for (std::size_t p = 0; p < phases.size(); p++) {
    columns.push_back("ph" + std::to_string(p) + " " + phases[p].name);
  }
  PrintHeader("Shifting GET/SCAN mix: p99 slowdown, static quanta vs adaptive", columns);

  std::vector<RunResult> results;
  std::vector<QuantumController::HistoryPoint> history;
  std::uint64_t adjustments = 0;
  std::size_t quantum_events = 0;
  for (const Row& row : systems) {
    SystemSetup setup = MakeSkyloftWorkStealing(kWorkers, row.quantum);
    std::unique_ptr<QuantumController> controller;
    SchedTracer tracer(1 << 14);
    if (row.adaptive) {
      QuantumController::Hooks hooks;
      SchedPolicy* policy = setup.policy.get();
      KernelSim* kernel = setup.kernel.get();
      hooks.apply_quantum = [policy](DurationNs quantum_ns, int) {
        policy->SetQuantum(quantum_ns, SchedPolicy::kAllWorkers);
      };
      hooks.apply_timer_period = [kernel](DurationNs period_ns) {
        for (int core = 0; core < kWorkers; core++) {
          kernel->SkyloftTimerSetHz(core, kSecond / period_ns);
        }
      };
      controller = std::make_unique<QuantumController>(AdaptiveConfig(), hooks);
      controller->WatchSlowdown(&setup.engine->stats().slowdown_x100);
      // Steer by the short-request tail: it is what the quantum protects,
      // and its absence (scan-only phases) is the relax signal.
      controller->WatchProtected(
          &setup.engine->stats().slowdown_by_kind_x100[kKindShort]);
      PerCpuEngine* percpu = setup.percpu();
      controller->WatchTicks([percpu] { return percpu->ticks(); }, kWorkers);
      controller->SetTracer(&tracer);
      controller->ApplyInitial(0);
      QuantumController* ctl = controller.get();
      Simulation* sim = setup.sim.get();
      setup.sim->SchedulePeriodic(poll_ns, poll_ns, [ctl, sim] { ctl->Poll(sim->Now()); });
    }
    RunResult r = RunShiftingMix(setup, phases, phase_ns, warmup_ns);
    results.push_back(r);

    PrintCell(row.name.c_str());
    PrintCell(static_cast<double>(r.overall_p99_x100) / 100.0);
    PrintCell(static_cast<double>(r.ticks) / 1000.0);
    for (const PhaseResult& ph : r.phases) {
      PrintCell(static_cast<double>(ph.p99_slowdown_x100) / 100.0);
    }
    EndRow();

    auto& out = reporter.AddRow()
                   .Str("label", row.name)
                   .Num("overall_p99_slowdown", static_cast<double>(r.overall_p99_x100) / 100.0)
                   .Num("achieved_rps", r.achieved_rps)
                   .Int("ticks", static_cast<std::int64_t>(r.ticks));
    for (std::size_t p = 0; p < r.phases.size(); p++) {
      out.Num("phase" + std::to_string(p) + "_p99_slowdown",
              static_cast<double>(r.phases[p].p99_slowdown_x100) / 100.0)
          .Int("phase" + std::to_string(p) + "_samples",
               static_cast<std::int64_t>(r.phases[p].samples));
    }

    if (row.adaptive) {
      history = controller->history();
      adjustments = controller->adjustments();
      quantum_events = tracer.CountOf(TraceEventType::kQuantumSet);
      std::ofstream trace("TRACE_quantum_adaptive.json");
      trace << tracer.ToJson();
    }
  }

  // Quantum-vs-time series (also a Perfetto counter track in the trace file).
  for (const auto& point : history) {
    reporter.AddRow()
        .Str("label", "quantum_point")
        .Num("t_ms", static_cast<double>(point.when) / 1e6)
        .Num("quantum_us", static_cast<double>(point.quantum_ns) / 1000.0);
  }
  reporter.MetaNum("adjustments", static_cast<double>(adjustments));

  std::printf("\ncontroller: %llu adjustments, %zu quantum_set trace events\n",
              static_cast<unsigned long long>(adjustments), quantum_events);
  SKYLOFT_CHECK(adjustments >= 1);     // the controller must actually steer
  SKYLOFT_CHECK(quantum_events >= 1);  // and the trace must show it

  bool pass = true;
  if (!smoke) {
    // ISSUE 9 acceptance bars. results.back() is the adaptive run.
    const RunResult& adaptive = results.back();
    for (std::size_t s = 0; s + 1 < results.size(); s++) {
      if (adaptive.overall_p99_x100 >= results[s].overall_p99_x100) {
        std::printf("FAIL: adaptive overall p99 %.1fx does not beat %s (%.1fx)\n",
                    adaptive.overall_p99_x100 / 100.0, systems[s].name.c_str(),
                    results[s].overall_p99_x100 / 100.0);
        pass = false;
      }
    }
    for (std::size_t p = 0; p < phases.size(); p++) {
      std::int64_t best = results[0].phases[p].p99_slowdown_x100;
      for (std::size_t s = 1; s + 1 < results.size(); s++) {
        best = std::min(best, results[s].phases[p].p99_slowdown_x100);
      }
      if (static_cast<double>(adaptive.phases[p].p99_slowdown_x100) >
          1.2 * static_cast<double>(best)) {
        std::printf("FAIL: phase %zu (%s): adaptive p99 %.1fx > 1.2x best static %.1fx\n", p,
                    phases[p].name, adaptive.phases[p].p99_slowdown_x100 / 100.0, best / 100.0);
        pass = false;
      }
    }
    std::printf("acceptance bars: %s\n", pass ? "PASS" : "FAIL");
  }
  reporter.MetaBool("bars_pass", pass);
  reporter.WriteFile();
  if (!pass) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace skyloft

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  skyloft::Main(smoke);
}
