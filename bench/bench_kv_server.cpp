// End-to-end KV serving benchmark over real loopback sockets (DESIGN.md
// section 10, EXPERIMENTS.md "kv_server").
//
// Stands up the networked KV server (src/apps/kv_server_net) on the host
// runtime — per-worker epoll engine cores, SO_REUSEPORT sharding, one
// handler uthread per connection — and drives it from an epoll-based load
// generator running in separate OS threads over real TCP connections:
//
//   - closed-loop points: every connection keeps exactly one request in
//     flight; measures peak sustainable throughput and unloaded latency;
//   - open-loop points: requests are issued on a fixed per-connection
//     schedule regardless of replies (latency is measured from the
//     *scheduled* send instant, so server queueing delay is charged to the
//     server — the tail-at-scale methodology of Fig. 7/8).
//
// Each point runs under both host-scheduler drivers: the lock-free
// two-level-runqueue work stealer and the force_locked shard-mutex
// baseline, making the scheduler path cost visible in p99/p999. On io_uring
// builds the whole sweep additionally runs once per data path — completion
// (multishot recv / provided buffers / async sends) vs readiness — with a
// syscalls/request column computed from the engines' syscall counters.
//
// The connection sweep includes a many-connection point (10k in --smoke,
// 100k in --full if the fd limit allows) to exercise uthread-per-connection
// scale: stacks are allocated lazily (make_unique_for_overwrite) so 10k
// parked handlers cost pages actually touched, not stack_size each.
//
// Emits BENCH_kv_server.json (schema in EXPERIMENTS.md).
//
//   ./build/bench/bench_kv_server [--smoke | --full] [--workers N]
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/kv_server_net.h"
#include "src/base/histogram.h"
#include "src/net/frame.h"
#include "src/runtime/sync.h"
#include "src/runtime/uthread.h"

namespace skyloft {
namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Tries to raise RLIMIT_NOFILE high enough for the many-connection points
// (each connection costs two fds in this single-process setup). Returns the
// effective soft limit.
std::size_t RaiseFdLimit(std::size_t want) {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) != 0) {
    return 1024;
  }
  if (lim.rlim_cur >= want) {
    return static_cast<std::size_t>(lim.rlim_cur);
  }
  rlimit raised = lim;
  raised.rlim_cur = want;
  raised.rlim_max = std::max<rlim_t>(lim.rlim_max, want);
  if (setrlimit(RLIMIT_NOFILE, &raised) == 0) {  // needs CAP_SYS_RESOURCE
    return want;
  }
  raised.rlim_cur = lim.rlim_max;  // best we can do unprivileged
  raised.rlim_max = lim.rlim_max;
  setrlimit(RLIMIT_NOFILE, &raised);
  std::fprintf(stderr, "fd limit raise to %zu refused; staying at %zu\n", want,
               static_cast<std::size_t>(raised.rlim_cur));
  return static_cast<std::size_t>(raised.rlim_cur);
}

// ---------------------------------------------------------------------------
// Epoll-based client pool (runs in plain OS threads, never on the runtime).
// ---------------------------------------------------------------------------

struct ClientConn {
  int fd = -1;
  bool connected = false;
  bool want_out = false;       // EPOLLOUT currently armed
  std::string outbuf;          // unsent bytes (partial writes / EAGAIN)
  std::size_t outbuf_off = 0;
  FrameDecoder decoder;
  std::deque<std::int64_t> inflight;  // scheduled send instants, FIFO
  std::int64_t next_due_ns = 0;       // open loop: next scheduled send
  unsigned rng = 1;
};

struct LoadPointConfig {
  bool open_loop = false;
  int connections = 0;
  double offered_rps = 0;  // open loop only
  std::int64_t warmup_ns = 0;
  std::int64_t measure_ns = 0;
  int io_threads = 2;
  int connect_inflight_cap = 384;  // paced setup: stay under listen backlog
  int pipeline_cap = 64;           // open loop: max outstanding per conn
};

struct LoadPointOutcome {
  double achieved_rps = 0;
  std::int64_t p50_ns = 0;
  std::int64_t p99_ns = 0;
  std::int64_t p999_ns = 0;
  std::uint64_t replies = 0;
  std::uint64_t errors = 0;     // connection failures / resets
  std::uint64_t shed = 0;       // open loop: sends skipped at pipeline cap
  int connected = 0;            // connections actually established
};

// One client I/O thread: owns `conns`, an epoll set, and a slice of the
// offered load. Runs connect, then warmup+measure, recording reply latency.
class ClientThread {
 public:
  ClientThread(std::uint16_t port, const LoadPointConfig& cfg, int index, int nconns)
      : port_(port), cfg_(cfg), index_(index) {
    conns_.resize(static_cast<std::size_t>(nconns));
    epfd_ = epoll_create1(EPOLL_CLOEXEC);
  }
  ~ClientThread() {
    for (ClientConn& c : conns_) {
      if (c.fd >= 0) {
        close(c.fd);
      }
    }
    if (epfd_ >= 0) {
      close(epfd_);
    }
  }

  void Launch(std::atomic<int>* ready, std::atomic<std::int64_t>* start_ns,
              std::atomic<int>* done) {
    thread_ = std::thread([this, ready, start_ns, done] {
      Connect();
      ready->fetch_add(1, std::memory_order_acq_rel);
      // Wait for the coordinator to publish the common start instant so all
      // threads enter warmup together.
      std::int64_t start = 0;
      while ((start = start_ns->load(std::memory_order_acquire)) == 0) {
        std::this_thread::yield();
      }
      Run(start);
      done->fetch_add(1, std::memory_order_acq_rel);
    });
  }
  void Join() { thread_.join(); }

  const LatencyHistogram& latency() const { return latency_; }
  std::uint64_t replies() const { return replies_; }
  std::uint64_t errors() const { return errors_; }
  std::uint64_t shed() const { return shed_; }
  int connected() const { return connected_; }

 private:
  void Arm(ClientConn* c, bool out) {
    epoll_event ev{};
    ev.events = EPOLLIN | (out ? EPOLLOUT : 0u);
    ev.data.ptr = c;
    epoll_ctl(epfd_, EPOLL_CTL_MOD, c->fd, &ev);
    c->want_out = out;
  }

  void Fail(ClientConn* c) {
    if (c->fd >= 0) {
      epoll_ctl(epfd_, EPOLL_CTL_DEL, c->fd, nullptr);
      close(c->fd);
      c->fd = -1;
    }
    c->connected = false;
    errors_++;
  }

  // Establishes all connections, pacing in-flight connects so the server's
  // accept batches keep up with the listen backlog.
  void Connect() {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port_);

    std::size_t next = 0;
    int inflight = 0;
    std::size_t pending = conns_.size();
    std::vector<epoll_event> events(512);
    const std::int64_t deadline = NowNs() + 60'000'000'000ll;
    while (pending > 0 && NowNs() < deadline) {
      while (next < conns_.size() && inflight < cfg_.connect_inflight_cap) {
        ClientConn* c = &conns_[next++];
        c->rng = static_cast<unsigned>(index_ * 1000003 + static_cast<int>(next)) * 2654435761u + 1;
        c->fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
        if (c->fd < 0) {
          Fail(c);
          pending--;
          continue;
        }
        const int one = 1;
        setsockopt(c->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        const int rc = connect(c->fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
        epoll_event ev{};
        ev.data.ptr = c;
        if (rc == 0) {
          c->connected = true;
          connected_++;
          ev.events = EPOLLIN;
          epoll_ctl(epfd_, EPOLL_CTL_ADD, c->fd, &ev);
          pending--;
        } else if (errno == EINPROGRESS) {
          ev.events = EPOLLIN | EPOLLOUT;
          c->want_out = true;
          epoll_ctl(epfd_, EPOLL_CTL_ADD, c->fd, &ev);
          inflight++;
        } else {
          Fail(c);
          pending--;
        }
      }
      const int n = epoll_wait(epfd_, events.data(), static_cast<int>(events.size()), 20);
      for (int i = 0; i < n; i++) {
        auto* c = static_cast<ClientConn*>(events[i].data.ptr);
        if (c->connected) {
          continue;  // stray event from an already-completed connect
        }
        inflight--;
        pending--;
        int err = 0;
        socklen_t len = sizeof(err);
        getsockopt(c->fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err != 0 || (events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
          Fail(c);
          continue;
        }
        c->connected = true;
        connected_++;
        Arm(c, false);
      }
    }
  }

  void QueueRequest(ClientConn* c, std::int64_t sched_ns) {
    c->rng = c->rng * 1664525u + 1013904223u;
    const unsigned roll = c->rng % 1000;
    std::string request;
    const std::string key = "user" + std::to_string(c->rng % 10'000);
    if (roll < 2) {
      request = "SCAN user 64";
    } else if (roll < 4) {
      request = "SET " + key + " updated";
    } else {
      request = "GET " + key;
    }
    c->outbuf += EncodeFrame(request);
    c->inflight.push_back(sched_ns);
  }

  // Returns false when the connection died mid-write.
  bool FlushOut(ClientConn* c) {
    while (c->outbuf_off < c->outbuf.size()) {
      const ssize_t n = write(c->fd, c->outbuf.data() + c->outbuf_off,
                              c->outbuf.size() - c->outbuf_off);
      if (n > 0) {
        c->outbuf_off += static_cast<std::size_t>(n);
        continue;
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!c->want_out) {
          Arm(c, true);
        }
        return true;
      }
      return false;
    }
    c->outbuf.clear();
    c->outbuf_off = 0;
    if (c->want_out) {
      Arm(c, false);
    }
    return true;
  }

  // Drains replies; records latency for ones completed inside the measure
  // window. Returns false when the connection died.
  bool DrainIn(ClientConn* c, std::int64_t measure_start, std::int64_t measure_end) {
    char buf[8192];
    while (true) {
      const ssize_t n = read(c->fd, buf, sizeof(buf));
      if (n > 0) {
        c->decoder.Feed(buf, static_cast<std::size_t>(n));
        std::string payload;
        while (c->decoder.Next(&payload) == FrameDecodeStatus::kFrame) {
          const std::int64_t now = NowNs();
          if (!c->inflight.empty()) {
            const std::int64_t sched = c->inflight.front();
            c->inflight.pop_front();
            if (now >= measure_start && now < measure_end) {
              latency_.Record(now - sched);
              replies_++;
            }
          }
          if (!cfg_.open_loop) {
            // Closed loop: next request leaves the instant the reply landed.
            QueueRequest(c, NowNs());
            if (!FlushOut(c)) {
              return false;
            }
          }
        }
        if (c->decoder.poisoned()) {
          return false;
        }
        if (static_cast<std::size_t>(n) == sizeof(buf)) {
          continue;
        }
        return true;
      }
      if (n == 0) {
        return false;
      }
      if (errno == EINTR) {
        continue;
      }
      return errno == EAGAIN || errno == EWOULDBLOCK;
    }
  }

  void Run(std::int64_t start_ns) {
    const std::int64_t measure_start = start_ns + cfg_.warmup_ns;
    const std::int64_t measure_end = measure_start + cfg_.measure_ns;
    std::vector<epoll_event> events(1024);

    // Open loop: spread each connection's schedule over its interval so the
    // aggregate arrival process is near-uniform from the first tick.
    std::int64_t interval_ns = 0;
    if (cfg_.open_loop) {
      const double per_thread = cfg_.offered_rps / cfg_.io_threads;
      const double per_conn = per_thread / static_cast<double>(std::max<std::size_t>(
                                              1, conns_.size()));
      interval_ns = static_cast<std::int64_t>(1e9 / std::max(per_conn, 1e-3));
      std::size_t i = 0;
      for (ClientConn& c : conns_) {
        c.next_due_ns =
            start_ns + static_cast<std::int64_t>((interval_ns * static_cast<std::int64_t>(i++)) /
                                                 static_cast<std::int64_t>(conns_.size()));
      }
    } else {
      for (ClientConn& c : conns_) {
        if (c.connected) {
          QueueRequest(&c, NowNs());
          if (!FlushOut(&c)) {
            Fail(&c);
          }
        }
      }
    }

    while (NowNs() < measure_end) {
      if (cfg_.open_loop) {
        const std::int64_t now = NowNs();
        for (ClientConn& c : conns_) {
          if (!c.connected) {
            continue;
          }
          while (c.next_due_ns <= now) {
            if (static_cast<int>(c.inflight.size()) >= cfg_.pipeline_cap) {
              // Overload shedding: keep the schedule, drop the send. Counted
              // so overloaded points are visibly saturated, not mislabeled.
              shed_++;
              c.next_due_ns += interval_ns;
              continue;
            }
            QueueRequest(&c, c.next_due_ns);  // latency charged from schedule
            c.next_due_ns += interval_ns;
          }
          if (!c.outbuf.empty() && !FlushOut(&c)) {
            Fail(&c);
          }
        }
      }
      const int n = epoll_wait(epfd_, events.data(), static_cast<int>(events.size()),
                               cfg_.open_loop ? 1 : 10);
      for (int i = 0; i < n; i++) {
        auto* c = static_cast<ClientConn*>(events[i].data.ptr);
        if (c->fd < 0) {
          continue;
        }
        if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
          Fail(c);
          continue;
        }
        bool ok = true;
        if ((events[i].events & EPOLLOUT) != 0) {
          ok = FlushOut(c);
        }
        if (ok && (events[i].events & EPOLLIN) != 0) {
          ok = DrainIn(c, measure_start, measure_end);
        }
        if (!ok) {
          Fail(c);
        }
      }
    }
  }

  std::uint16_t port_;
  LoadPointConfig cfg_;
  int index_;
  int epfd_ = -1;
  std::vector<ClientConn> conns_;
  std::thread thread_;

  LatencyHistogram latency_;
  std::uint64_t replies_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t shed_ = 0;
  int connected_ = 0;
};

// Runs the whole client pool to completion (plain threads, no runtime).
LoadPointOutcome RunClientPool(std::uint16_t port, const LoadPointConfig& cfg) {
  const int threads = cfg.io_threads;
  std::vector<std::unique_ptr<ClientThread>> pool;
  std::atomic<int> ready{0};
  std::atomic<std::int64_t> start_ns{0};
  std::atomic<int> done{0};
  for (int t = 0; t < threads; t++) {
    const int base = cfg.connections / threads;
    const int nconns = base + (t < cfg.connections % threads ? 1 : 0);
    pool.push_back(std::make_unique<ClientThread>(port, cfg, t, nconns));
  }
  for (auto& ct : pool) {
    ct->Launch(&ready, &start_ns, &done);
  }
  while (ready.load(std::memory_order_acquire) < threads) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  start_ns.store(NowNs() + 5'000'000, std::memory_order_release);  // 5 ms to the gate

  LoadPointOutcome out;
  LatencyHistogram merged;
  for (auto& ct : pool) {
    ct->Join();
    merged.Merge(ct->latency());
    out.replies += ct->replies();
    out.errors += ct->errors();
    out.shed += ct->shed();
    out.connected += ct->connected();
  }
  out.achieved_rps = static_cast<double>(out.replies) /
                     (static_cast<double>(cfg.measure_ns) / 1e9);
  out.p50_ns = merged.Percentile(0.5);
  out.p99_ns = merged.Percentile(0.99);
  out.p999_ns = merged.Percentile(0.999);
  return out;
}

// Runs one load point against an already-started server. Must be called
// from uthread context.
//
// The client pool runs in a forked child process: the fd limit is
// per-process, and a 10k-connection point costs ~10k fds on EACH side —
// client fds in the child, server fds here — which would bust a single
// process's limit. The child reports the outcome over a pipe; the parent
// parks on the pipe through its own I/O engine (WaitForReadable works on
// any pollable fd, not just sockets), so the engine cores keep serving
// while we wait.
SKYLOFT_MAY_SWITCH LoadPointOutcome RunPoint(Runtime* rt, std::uint16_t port,
                                             const LoadPointConfig& cfg) {
  int pipefd[2];
  if (pipe(pipefd) != 0) {
    std::fprintf(stderr, "pipe failed: %s\n", std::strerror(errno));
    return {};
  }
  const pid_t child = fork();
  if (child < 0) {
    // No child process available: run in-process with whatever connection
    // count fits half the fd budget (both endpoint fds land here).
    close(pipefd[0]);
    close(pipefd[1]);
    std::fprintf(stderr, "fork failed (%s); running client pool in-process\n",
                 std::strerror(errno));
    LoadPointConfig clamped = cfg;
    std::atomic<bool> done{false};
    LoadPointOutcome out;
    std::thread pool([&] {
      out = RunClientPool(port, clamped);
      done.store(true, std::memory_order_release);
    });
    while (!done.load(std::memory_order_acquire)) {
      Runtime::SleepFor(1000);
    }
    pool.join();
    return out;
  }
  if (child == 0) {
    // Client process. Only this thread survived the fork; the runtime's
    // workers, timers, and sockets belong to the parent (inherited fd
    // copies are left untouched and die with _exit).
    close(pipefd[0]);
    const LoadPointOutcome out = RunClientPool(port, cfg);
    ssize_t wrote = write(pipefd[1], &out, sizeof(out));
    _exit(wrote == sizeof(out) ? 0 : 1);
  }
  close(pipefd[1]);
  LoadPointOutcome out;
  IoEngine* engine = rt->io_engine(0);
  IoHandle* handle = engine->Register(pipefd[0]);
  std::size_t got = 0;
  auto* bytes = reinterpret_cast<unsigned char*>(&out);
  while (got < sizeof(out)) {
    const unsigned ready = WaitForReadable(handle);
    const ssize_t n = read(pipefd[0], bytes + got, sizeof(out) - got);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    if ((ready & (kIoHup | kIoError)) != 0 || n == 0) {
      break;  // child died before reporting
    }
  }
  engine->Deregister(handle);  // closes pipefd[0]
  if (got < sizeof(out)) {
    std::fprintf(stderr, "client process died before reporting\n");
    out = {};
  }
  int status = 0;
  waitpid(child, &status, 0);  // child already exited; returns immediately
  return out;
}

struct PointSpec {
  const char* mode;  // "closed" | "open"
  int connections;
  double offered_rps;  // open only
  int reps = 1;        // repeat and report the median-p99 rep (noise damping)
};

// Picks the repetition with the median p99 — on a small shared box the
// kernel's own timeslicing injects multi-ms noise into any single run, and
// the median rep is the honest central tendency for every reported column
// (keeping achieved/p50/p999 from the same run as the p99 they belong to).
LoadPointOutcome MedianByP99(std::vector<LoadPointOutcome> reps) {
  std::sort(reps.begin(), reps.end(),
            [](const LoadPointOutcome& a, const LoadPointOutcome& b) {
              return a.p99_ns < b.p99_ns;
            });
  return reps[reps.size() / 2];
}

}  // namespace
}  // namespace skyloft

int main(int argc, char** argv) {
  using namespace skyloft;

  bool smoke = false;
  bool full = false;
  int workers = 4;
  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--full") {
      full = true;
    } else if (arg == "--workers" && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--smoke | --full] [--workers N]\n", argv[0]);
      return 2;
    }
  }

  // The client pool runs in a forked child (see RunPoint), so each side of a
  // connection lands in its own process: the per-process budget is one fd
  // per connection plus slack for listeners, epoll sets, and stdio.
  const std::size_t max_point_conns = full ? 100'000 : 10'000;
  const std::size_t fd_limit = RaiseFdLimit(max_point_conns + 1024);
  const int conn_budget = static_cast<int>(fd_limit - 1024);

  std::vector<PointSpec> points;
  if (smoke) {
    points = {{"closed", 64, 0, 3},
              {"closed", 512, 0, 3},
              {"open", 10'000, 20'000, 1}};
  } else if (full) {
    points = {{"closed", 64, 0, 5},
              {"closed", 1'024, 0, 5},
              {"open", 10'000, 20'000, 3},
              {"open", 10'000, 50'000, 3},
              {"open", 100'000, 20'000, 1}};
  } else {
    points = {{"closed", 64, 0, 1}, {"open", 2'000, 10'000, 1}};
  }

  BenchReporter reporter("kv_server");
  reporter.MetaNum("workers", workers);
  reporter.MetaBool("smoke", smoke);
  reporter.MetaBool("full", full);
  reporter.MetaNum("fd_limit", static_cast<double>(fd_limit));
  reporter.MetaNum("connection_budget", conn_budget);
  reporter.MetaStr("latency_convention",
                   "closed: send->reply; open: scheduled-send->reply (queueing charged)");
  reporter.MetaStr("syscall_convention",
                   "syscalls/request = (io_uring_enter + read + write + accept) / served "
                   "requests over the whole point (warmup included on both sides)");

  // Data-path sweep: on an io_uring build each point runs twice — once on the
  // completion path (multishot recv + provided buffers + async sends, batched
  // submission) and once with IoEngineOptions::completion off, which is the
  // readiness POLL_ADD baseline. Epoll builds only have readiness.
  std::vector<bool> completion_modes;
#ifdef SKYLOFT_IO_URING
  completion_modes = {true, false};
#else
  completion_modes = {false};
#endif

  PrintHeader("kv_server over loopback TCP",
              {"path", "policy", "mode", "conns", "offered", "achieved", "p99_ns", "sys/req"});

  bool syscall_gate_failed = false;
  for (const bool completion_on : completion_modes) {
    for (const bool force_locked : {false, true}) {
      for (const PointSpec& spec : points) {
        LoadPointConfig cfg;
        cfg.open_loop = std::string(spec.mode) == "open";
        cfg.connections = std::min(spec.connections, conn_budget);
        if (cfg.connections < spec.connections) {
          std::fprintf(stderr, "point %s/%d clamped to %d conns by fd limit %zu\n", spec.mode,
                       spec.connections, cfg.connections, fd_limit);
        }
        cfg.offered_rps = spec.offered_rps;
        cfg.warmup_ns = smoke ? 300'000'000 : 500'000'000;
        cfg.measure_ns = smoke ? 1'500'000'000 : 5'000'000'000;

        RuntimeOptions ropts;
        ropts.workers = workers;
        // Small stacks: handlers are shallow (read/serve/writev), and at 10k+
        // uthreads the default 64 KB each would be the dominant allocation.
        ropts.stack_size = 16 * 1024;
        ropts.io_engine = true;
        ropts.io.completion = completion_on;
        ropts.sched.force_locked = force_locked;

        Runtime rt(ropts);
        // What the engine actually armed: a capable kernel + completion_on
        // gives the completion path; everything else serves readiness. A
        // completion request that fell back is reported as what it ran.
        const bool completion_active =
            rt.io_engine(0) != nullptr && rt.io_engine(0)->completion();
        if (completion_on && !completion_active) {
          std::fprintf(stderr, "completion path unavailable (kernel/probe); "
                               "this pass measures readiness\n");
        }
        const char* data_path = completion_active ? "completion" : "readiness";
        LoadPointOutcome out;
        std::uint64_t server_requests = 0;
        std::uint64_t peer_resets = 0;
        std::uint64_t frame_errors = 0;
        std::uint64_t io_syscalls = 0;
        rt.Run([&] {
          KvServerNetOptions sopts;
          sopts.udp = false;  // TCP sweep; the UDP path is covered by tests
          KvServerNet server(&rt, sopts);
          server.Start();
          const std::uint64_t sys_before = rt.io_data_syscalls();
          std::vector<LoadPointOutcome> reps;
          for (int rep = 0; rep < spec.reps; rep++) {
            reps.push_back(RunPoint(&rt, server.tcp_port(), cfg));
          }
          out = MedianByP99(std::move(reps));
          io_syscalls = rt.io_data_syscalls() - sys_before;
          server_requests = server.tcp_requests();
          peer_resets = server.peer_resets();
          frame_errors = server.frame_errors();
          server.Stop();
        });
        const double sys_per_req =
            static_cast<double>(io_syscalls) /
            static_cast<double>(std::max<std::uint64_t>(1, server_requests));
        // The CI gate from EXPERIMENTS.md: the completion path's steady state
        // must stay under half a syscall per request at the closed-loop
        // points (open-loop low-rate points legitimately approach one enter
        // per response — there is nothing to batch a submission with).
        if (smoke && completion_active && !cfg.open_loop && sys_per_req >= 0.5) {
          std::fprintf(stderr,
                       "SYSCALL GATE FAILED: completion path %s/%d conns measured %.3f "
                       "syscalls/request (gate: < 0.5)\n",
                       spec.mode, cfg.connections, sys_per_req);
          syscall_gate_failed = true;
        }

        const char* policy = force_locked ? "locked" : "ws-lockfree";
        PrintCell(data_path);
        PrintCell(policy);
        PrintCell(spec.mode);
        PrintCell(static_cast<std::int64_t>(cfg.connections));
        PrintCell(cfg.open_loop ? cfg.offered_rps : 0.0);
        PrintCell(out.achieved_rps);
        PrintCell(out.p99_ns);
        PrintCell(sys_per_req);
        EndRow();

        reporter.AddRow()
            .Str("data_path", data_path)
            .Str("policy", policy)
            .Str("mode", spec.mode)
            .Int("connections", cfg.connections)
            .Int("connected", out.connected)
            .Num("offered_rps", cfg.open_loop ? cfg.offered_rps : 0.0)
            .Num("achieved_rps", out.achieved_rps)
            .Int("p50_ns", out.p50_ns)
            .Int("p99_ns", out.p99_ns)
            .Int("p999_ns", out.p999_ns)
            .Int("replies", static_cast<std::int64_t>(out.replies))
            .Int("client_errors", static_cast<std::int64_t>(out.errors))
            .Int("shed_sends", static_cast<std::int64_t>(out.shed))
            .Int("server_requests", static_cast<std::int64_t>(server_requests))
            .Int("server_peer_resets", static_cast<std::int64_t>(peer_resets))
            .Int("server_frame_errors", static_cast<std::int64_t>(frame_errors))
            .Int("io_syscalls", static_cast<std::int64_t>(io_syscalls))
            .Num("syscalls_per_request", sys_per_req)
            .Int("steals", static_cast<std::int64_t>(rt.steals()))
            .Int("preemptions", static_cast<std::int64_t>(rt.preemptions()))
            .Str("sched_driver", rt.lock_free_sched() ? "lock-free" : "shard-mutex");
      }
    }
  }

  if (!reporter.WriteFile()) {
    return 1;
  }
  return syscall_gate_failed ? 1 : 0;
}
