// Fig. 7c: CPU share of the co-located batch application vs LC load.
//
// Paper result to reproduce (shape): Skyloft, ghOSt, and Linux all hand the
// batch app most of the machine at low LC load and progressively less toward
// saturation; original Shinjuku gives the batch app exactly zero at every
// load (dedicated cores).
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/apps/batch_app.h"
#include "src/apps/workloads.h"

namespace skyloft {
namespace {

constexpr int kWorkers = 20;

double MeasureBeShare(const std::string& kind, double rate_rps, const RequestMix& mix) {
  SystemSetup setup;
  App* be = nullptr;
  if (kind == "skyloft") {
    setup = MakeSkyloftShinjuku(kWorkers, Micros(30), true);
    be = setup.engine->CreateApp("batch", true);
    setup.central()->AttachBestEffortApp(be);
  } else if (kind == "ghost") {
    setup = MakeGhost(kWorkers, Micros(30), true);
    be = setup.engine->CreateApp("batch", true);
    setup.central()->AttachBestEffortApp(be);
  } else if (kind == "shinjuku") {
    setup = MakeShinjukuOriginal(kWorkers, Micros(30));
    be = setup.engine->CreateApp("batch", true);  // never scheduled: no allocator
  } else {
    setup = MakeLinuxCfsCentralWorkload(kWorkers);
    be = setup.engine->CreateApp("batch", true);
    auto* driver = new BatchAppDriver(setup.engine.get(), be,
                                      BatchAppDriver::Options{.tasks = kWorkers,
                                                              .chunk_ns = Millis(1)});
    driver->Start();
  }
  LoadPointOptions options;
  options.warmup = Millis(50);
  options.measure = Millis(400);
  options.rss_route = false;
  options.be_app = be;
  return RunLoadPoint(setup, mix, rate_rps, options).be_share;
}

void Main() {
  const RequestMix mix = DispersiveMix();
  const double capacity_rps = kWorkers / (MixMeanNs(mix) / 1e9);
  const std::vector<double> load_fracs = {0.05, 0.2, 0.4, 0.6, 0.8, 0.95};

  std::vector<std::string> cols = {"be share"};
  for (const double f : load_fracs) {
    cols.push_back(std::to_string(static_cast<int>(f * 100)) + "% load");
  }
  BenchReporter reporter("fig7c_cpushare");
  reporter.MetaNum("workers", kWorkers);
  reporter.MetaNum("capacity_rps", capacity_rps);

  PrintHeader("Fig.7c CPU share of the batch application vs LC load", cols);
  for (const char* kind : {"skyloft", "ghost", "linux", "shinjuku"}) {
    PrintCell(kind);
    for (const double frac : load_fracs) {
      const double share = MeasureBeShare(kind, capacity_rps * frac, mix);
      PrintCell(share);
      reporter.AddRow().Str("system", kind).Num("load_frac", frac).Num("be_share", share);
    }
    EndRow();
  }
  reporter.WriteFile();
  std::printf(
      "\nExpected shape: skyloft ~= ghost ~= linux (high share at low load,\n"
      "falling toward 0 near saturation); shinjuku pinned at 0.\n");
}

}  // namespace
}  // namespace skyloft

int main() { skyloft::Main(); }
