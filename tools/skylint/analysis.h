#ifndef TOOLS_SKYLINT_ANALYSIS_H_
#define TOOLS_SKYLINT_ANALYSIS_H_

#include <string>
#include <vector>

#include "tools/skylint/model.h"
#include "tools/skylint/token.h"

namespace skylint {

// Whole-program analyzer: merges per-file parses, builds the name-resolved
// call graph, runs the fixpoints and the four rules, applies suppressions.
class Analyzer {
 public:
  // Takes ownership of the lexed files.
  void AddFile(FileTokens file);

  // Runs everything; returns the post-suppression diagnostics, sorted.
  std::vector<Diagnostic> Run();

  // Debugging aid (--dump): prints functions, annotations and the computed
  // may-switch / signal-safe sets to stdout.
  void Dump() const;

 private:
  void ExtractAll();
  void MergeAnnotations();
  void BuildCallGraph();
  void ComputeMaySwitch();
  void ComputeSignalClosure();
  void CheckTlsAcrossSwitch();    // R1
  void CheckPreemptBalance();     // R2
  void CheckSignalUnsafeCalls();  // R3
  void CheckNoSwitchReach();      // R4
  void ApplySuppressions();

  bool FunctionMaySwitch(int fn) const { return may_switch_[static_cast<std::size_t>(fn)]; }
  // True when a call site may resolve to a context-switching function.
  bool CallMaySwitch(const CallSite& cs) const;
  std::string SwitchPath(int from) const;  // "A -> B -> C" into the switch set
  void Report(int fn, int line, const std::string& rule, const std::string& msg);

  std::vector<FileTokens> files_;
  std::vector<Function> functions_;            // merged program-wide list
  std::set<std::string> tls_variables_;
  std::vector<std::vector<int>> callees_;      // function index -> callee indices
  std::vector<bool> may_switch_;
  std::vector<bool> signal_safe_;              // in the signal-handler closure
  std::vector<int> signal_parent_;             // BFS parent for path messages
  std::vector<Diagnostic> diags_;
};

}  // namespace skylint

#endif  // TOOLS_SKYLINT_ANALYSIS_H_
