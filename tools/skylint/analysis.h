#ifndef TOOLS_SKYLINT_ANALYSIS_H_
#define TOOLS_SKYLINT_ANALYSIS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "tools/skylint/model.h"
#include "tools/skylint/token.h"

namespace skylint {

// The closed set of rule names, shared by suppression validation and the
// CLI's --rule filter (both reject names outside it).
const std::set<std::string>& KnownRules();

// Whole-program analyzer: merges per-file parses, builds the name-resolved
// call graph, runs the fixpoints and the rules, applies suppressions.
class Analyzer {
 public:
  // Takes ownership of the lexed files.
  void AddFile(FileTokens file);

  // Runs everything; returns the post-suppression diagnostics, sorted.
  std::vector<Diagnostic> Run();

  // Debugging aid (--dump): prints functions, annotations, the computed
  // may-switch / signal-safe / worker-closure sets, the per-function lock
  // summaries and the acquired-while-holding lock graph to stdout.
  void Dump() const;

 private:
  // Net lock effect of calling a function: the lock classes it returns
  // holding minus those it releases. Seeded from SKYLOFT_ACQUIRES/RELEASES
  // annotations; derived for unannotated bodies by the summary fixpoint.
  struct LockSummary {
    std::set<std::string> acquires;
    std::set<std::string> releases;
    bool operator==(const LockSummary& o) const {
      return acquires == o.acquires && releases == o.releases;
    }
  };

  // One acquired-while-holding observation: `held` was held when `acquired`
  // was taken at file/line.
  struct LockEdge {
    int file = -1;
    int line = 0;
  };

  void ExtractAll();
  void MergeAnnotations();
  void BuildCallGraph();
  void ComputeMaySwitch();
  void ComputeSignalClosure();
  void ComputeWorkerClosure();
  void ComputeLockSummaries();
  void CheckTlsAcrossSwitch();    // R1
  void CheckPreemptBalance();     // R2
  void CheckSignalUnsafeCalls();  // R3
  void CheckNoSwitchReach();      // R4
  void CheckLockDiscipline();     // R5 lock-held-across-switch,
                                  // R8 lock-requires-unheld, and the
                                  // lock-order edge collection
  void CheckLockOrderCycles();    // R6 lock-order-cycle
  void CheckBlockingOnWorker();   // R7 blocking-call-on-worker
  void ApplySuppressions();

  // Simulates one function body's lock state: a linear token walk with a
  // block-scope stack for RAII guards. When `report` is set, emits the R5/R8
  // diagnostics and records lock-order edges; otherwise only computes the
  // summary. Returns the net summary (exit-held relative to entry-held).
  LockSummary WalkLocks(int fn, bool report);

  bool FunctionMaySwitch(int fn) const { return may_switch_[static_cast<std::size_t>(fn)]; }
  // True when a call site may resolve to a context-switching function.
  bool CallMaySwitch(const CallSite& cs) const;
  std::string SwitchPath(int from) const;  // "A -> B -> C" into the switch set
  std::string WorkerPath(int fn) const;    // root -> ... -> fn for R7 messages
  // Lock-class name for a lock_guard-style constructor argument: the last
  // identifier of the lock expression, qualified by the enclosing class of
  // `fn` so `mu_` in two classes stays two lock classes.
  std::string GuardLockName(int fn, const std::string& last_ident) const;
  void Report(int fn, int line, const std::string& rule, const std::string& msg);

  std::vector<FileTokens> files_;
  std::vector<Function> functions_;            // merged program-wide list
  std::set<std::string> tls_variables_;
  std::map<std::string, std::vector<int>> by_name_;  // simple name -> indices
  std::vector<std::vector<int>> callees_;      // function index -> callee indices
  std::vector<bool> may_switch_;
  std::vector<bool> signal_safe_;              // in the signal-handler closure
  std::vector<int> signal_parent_;             // BFS parent for path messages
  std::vector<bool> on_worker_;                // in the worker/scheduler closure
  std::vector<int> worker_parent_;             // BFS parent for path messages
  std::vector<LockSummary> summaries_;
  // (held, acquired) -> first witness site.
  std::map<std::pair<std::string, std::string>, LockEdge> lock_edges_;
  std::vector<Diagnostic> diags_;
};

}  // namespace skylint

#endif  // TOOLS_SKYLINT_ANALYSIS_H_
