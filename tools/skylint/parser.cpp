// Heuristic C++ function extractor.
//
// skylint does not build an AST; it recognizes just enough declaration
// syntax to find function definitions/declarations, their scope-qualified
// names, their annotation macros and their body token ranges. Anything it
// does not recognize is skipped — the tool must never crash on valid C++,
// and over-approximation is acceptable for a checker with suppressions.
#include <cstddef>
#include <string>
#include <vector>

#include "tools/skylint/model.h"

namespace skylint {

namespace {

bool IsKeyword(const std::string& s) {
  static const std::set<std::string> kw = {
      "if",       "else",     "for",      "while",   "do",       "switch",  "case",
      "default",  "break",    "continue", "return",  "goto",     "sizeof",  "alignof",
      "alignas",  "decltype", "typeid",   "new",     "delete",   "throw",   "try",
      "catch",    "static_assert",        "co_await", "co_yield", "co_return",
      "not",      "and",      "or",       "constexpr", "consteval", "constinit",
  };
  return kw.count(s) != 0;
}

bool IsAnnotation(const std::string& s) {
  return s == "SKYLOFT_MAY_SWITCH" || s == "SKYLOFT_NO_SWITCH" || s == "SKYLOFT_SIGNAL_SAFE" ||
         s == "SKYLOFT_RETURNS_TLS" || s == "SKYLOFT_BLOCKING" || s == "SKYLOFT_ACQUIRES" ||
         s == "SKYLOFT_RELEASES" || s == "SKYLOFT_REQUIRES";
}

// The annotations that take a lock-class argument list: SKYLOFT_ACQUIRES(l).
bool IsLockAnnotation(const std::string& s) {
  return s == "SKYLOFT_ACQUIRES" || s == "SKYLOFT_RELEASES" || s == "SKYLOFT_REQUIRES";
}

struct Scope {
  std::string name;  // empty for anonymous namespaces ("<anon>")
  int open_depth;    // brace depth before this scope's '{'
};

class Parser {
 public:
  Parser(const FileTokens& file, int file_index) : toks_(file.tokens), file_index_(file_index) {}

  ParsedFile Run() {
    ScanTls();
    std::size_t i = 0;
    while (!AtEof(i)) {
      i = Step(i);
    }
    return std::move(out_);
  }

 private:
  bool AtEof(std::size_t i) const { return i >= toks_.size() || toks_[i].kind == Tok::kEof; }
  const Token& T(std::size_t i) const {
    static const Token eof{Tok::kEof, "", 0};
    return i < toks_.size() ? toks_[i] : eof;
  }
  bool Is(std::size_t i, const char* s) const { return T(i).text == s; }

  // Index just past the brace/paren group opening at `i`; toks_[i] must be
  // the opener. Returns toks_.size() when unbalanced.
  std::size_t SkipBalanced(std::size_t i, char open, char close) {
    int depth = 0;
    const std::string o(1, open), c(1, close);
    for (; !AtEof(i); i++) {
      if (T(i).text == o) depth++;
      if (T(i).text == c && --depth == 0) return i + 1;
    }
    return toks_.size();
  }

  // thread_local / __thread declarations anywhere in the file. The declared
  // name is the last identifier before the first of `= ; { [`.
  void ScanTls() {
    for (std::size_t i = 0; !AtEof(i); i++) {
      if (T(i).kind != Tok::kIdent ||
          (T(i).text != "thread_local" && T(i).text != "__thread")) {
        continue;
      }
      std::string name;
      for (std::size_t j = i + 1; !AtEof(j) && j < i + 40; j++) {
        const Token& t = T(j);
        if (t.text == "=" || t.text == ";" || t.text == "{" || t.text == "[") break;
        if (t.kind == Tok::kIdent && !IsKeyword(t.text)) name = t.text;
      }
      if (!name.empty()) out_.tls_variables.insert(name);
    }
  }

  std::string JoinScopes(const std::vector<std::string>& extra) const {
    std::string q;
    for (const Scope& s : scopes_) {
      if (!q.empty()) q += "::";
      q += s.name;
    }
    for (const std::string& e : extra) {
      if (!q.empty()) q += "::";
      q += e;
    }
    return q;
  }

  // One step of the top-level scan (outside any function body).
  std::size_t Step(std::size_t i) {
    const Token& t = T(i);
    if (t.text == "{") {
      depth_++;
      return i + 1;
    }
    if (t.text == "}") {
      depth_--;
      // Nested-namespace shorthand (`namespace a::b {`) opens several scopes
      // on one brace, so popping must loop.
      while (!scopes_.empty() && scopes_.back().open_depth == depth_) scopes_.pop_back();
      return i + 1;
    }
    if (t.text == "namespace") return StepNamespace(i);
    if (t.text == "enum") return StepEnum(i);
    if (t.text == "class" || t.text == "struct" || t.text == "union") return StepClass(i);
    // An initializer at class/namespace scope: skip to the semicolon so call
    // expressions inside it are not mistaken for function declarations.
    if (t.text == "=") return SkipInitializer(i);
    // GCC attribute syntax: `__attribute__((noinline)) T Name(...)`. Skip the
    // attribute so Name, not __attribute__, is taken as the declarator.
    if ((t.text == "__attribute__" || t.text == "__declspec") && Is(i + 1, "(")) {
      return SkipBalanced(i + 1, '(', ')');
    }
    // Function-like annotation macros (SKYLOFT_ACQUIRES(l) etc.) would
    // otherwise look like a declarator name followed by its parameter list;
    // skip the argument group so the *next* identifier is tried instead.
    if (t.kind == Tok::kIdent && IsLockAnnotation(t.text) && Is(i + 1, "(")) {
      return SkipBalanced(i + 1, '(', ')');
    }
    if (t.kind == Tok::kIdent && Is(i + 1, "(") && !IsKeyword(t.text) && t.text != "operator") {
      std::size_t next = TryFunction(i);
      if (next != 0) return next;
    }
    return i + 1;
  }

  std::size_t StepNamespace(std::size_t i) {
    std::vector<std::string> names;
    std::size_t j = i + 1;
    while (T(j).kind == Tok::kIdent || Is(j, "::")) {
      if (T(j).kind == Tok::kIdent) names.push_back(T(j).text);
      j++;
    }
    if (!Is(j, "{")) return i + 1;  // namespace alias or using-directive
    if (names.empty()) names.push_back("<anon>");
    for (const std::string& n : names) scopes_.push_back(Scope{n, depth_});
    depth_++;
    return j + 1;
  }

  std::size_t StepEnum(std::size_t i) {
    for (std::size_t j = i + 1; !AtEof(j) && j < i + 60; j++) {
      if (Is(j, ";")) return j + 1;
      if (Is(j, "{")) return SkipBalanced(j, '{', '}');
    }
    return i + 1;
  }

  std::size_t StepClass(std::size_t i) {
    // Distinguish a class *definition* from forward declarations, template
    // parameters (`class T,`/`class T>`), elaborated return types, etc.
    std::string name;
    for (std::size_t j = i + 1; !AtEof(j) && j < i + 80; j++) {
      const std::string& s = T(j).text;
      if (s == ";" || s == "=" || s == "," || s == ">" || s == "(" || s == ")") return i + 1;
      if (s == "{") {
        if (name.empty()) name = "<anon>";
        scopes_.push_back(Scope{name, depth_});
        depth_++;
        return j + 1;
      }
      if (s == ":") break;  // base-clause: definitely a definition
      if (T(j).kind == Tok::kIdent && !IsKeyword(s) && s != "final" && !IsAnnotation(s)) {
        name = s;
      }
    }
    // Saw the base-clause colon; scan on to the opening brace.
    for (std::size_t j = i + 1; !AtEof(j); j++) {
      if (Is(j, "{")) {
        if (name.empty()) name = "<anon>";
        scopes_.push_back(Scope{name, depth_});
        depth_++;
        return j + 1;
      }
      if (Is(j, ";")) return j + 1;
    }
    return i + 1;
  }

  std::size_t SkipInitializer(std::size_t i) {
    int braces = 0, parens = 0;
    for (; !AtEof(i); i++) {
      const std::string& s = T(i).text;
      if (s == "{") braces++;
      if (s == "}") braces--;
      if (s == "(") parens++;
      if (s == ")") parens--;
      if (s == ";" && braces <= 0 && parens <= 0) return i + 1;
    }
    return toks_.size();
  }

  // Attempts to parse a function declaration/definition whose name token is
  // at `i` (already known to be followed by '('). Returns the index to
  // resume scanning at, or 0 if this is not a function.
  std::size_t TryFunction(std::size_t i) {
    // Name chain: walk backwards over `ident ::` pairs.
    std::vector<std::string> chain{T(i).text};
    std::size_t first = i;
    while (first >= 2 && Is(first - 1, "::") && T(first - 2).kind == Tok::kIdent) {
      chain.insert(chain.begin(), T(first - 2).text);
      first -= 2;
    }
    if (first >= 1 && Is(first - 1, "~")) chain.back() = "~" + chain.back();

    const std::size_t params_end = SkipBalanced(i + 1, '(', ')');  // just past ')'
    if (params_end >= toks_.size()) return 0;

    // Post-parameter qualifiers, then classify by what terminates the
    // declarator: `;` declaration, `{` body, `:` ctor-init, `=` special.
    std::size_t j = params_end;
    bool is_def = false;
    std::size_t body_open = 0;
    for (; !AtEof(j); j++) {
      const std::string& s = T(j).text;
      if (s == "const" || s == "noexcept" || s == "override" || s == "final" ||
          s == "volatile" || s == "&" || s == "&&" || s == "throw" || s == "mutable" ||
          s == "requires" || T(j).kind == Tok::kIdent) {
        if (s == "noexcept" && Is(j + 1, "(")) j = SkipBalanced(j + 1, '(', ')') - 1;
        continue;
      }
      if (s == "->") {  // trailing return type: allow type tokens up to { or ;
        continue;
      }
      if (s == "<" || s == ">" || s == "*" || s == "::" || s == ",") continue;
      if (s == "[") {  // attribute or array — skip balanced
        j = SkipBalanced(j, '[', ']') - 1;
        continue;
      }
      if (s == "(") {  // e.g. decltype(...) in a trailing return type
        j = SkipBalanced(j, '(', ')') - 1;
        continue;
      }
      if (s == ";") {
        j++;
        break;  // declaration
      }
      if (s == "=") {
        // `= 0;` / `= default;` / `= delete;` are declarations; anything
        // else means this was a variable initializer, not a function.
        if (Is(j + 1, "0") || Is(j + 1, "default") || Is(j + 1, "delete")) {
          j += 2;
          if (Is(j, ";")) j++;
          break;
        }
        return 0;
      }
      if (s == ":") {  // constructor initializer list
        j++;
        while (!AtEof(j)) {
          while (!AtEof(j) && !Is(j, "(") && !Is(j, "{") && !Is(j, ";")) j++;
          if (Is(j, ";") || AtEof(j)) return 0;
          j = Is(j, "(") ? SkipBalanced(j, '(', ')') : SkipBalanced(j, '{', '}');
          if (Is(j, ",")) {
            j++;
            continue;
          }
          break;
        }
        if (!Is(j, "{")) return 0;
        is_def = true;
        body_open = j;
        break;
      }
      if (s == "{") {
        is_def = true;
        body_open = j;
        break;
      }
      return 0;  // unrecognized declarator tail
    }

    Function fn;
    fn.simple = chain.back();
    std::vector<std::string> extra(chain.begin(), chain.end());
    fn.qualified = JoinScopes(extra);
    fn.file = file_index_;
    fn.line = T(i).line;
    fn.ann = CollectAnnotations(first);
    if (is_def) {
      const std::size_t close = SkipBalanced(body_open, '{', '}');
      fn.has_body = true;
      fn.body_begin = static_cast<int>(body_open + 1);
      fn.body_end = static_cast<int>(close > 0 ? close - 1 : body_open + 1);
      out_.functions.push_back(std::move(fn));
      return close;
    }
    out_.functions.push_back(std::move(fn));
    return j;
  }

  // Annotation macros between the previous statement boundary and the start
  // of the declarator name chain. Lock-class arguments are read forward from
  // the macro name: SKYLOFT_ACQUIRES(a, b) adds {a, b}.
  Annotations CollectAnnotations(std::size_t name_start) {
    Annotations ann;
    std::size_t k = name_start;
    int limit = 48;
    while (k > 0 && limit-- > 0) {
      k--;
      const std::string& s = T(k).text;
      if (s == ";" || s == "{" || s == "}" || s == ":") break;
      if (s == "SKYLOFT_MAY_SWITCH") ann.may_switch = true;
      if (s == "SKYLOFT_NO_SWITCH") ann.no_switch = true;
      if (s == "SKYLOFT_SIGNAL_SAFE") ann.signal_safe = true;
      if (s == "SKYLOFT_RETURNS_TLS") ann.returns_tls = true;
      if (s == "SKYLOFT_BLOCKING") ann.blocking = true;
      if (IsLockAnnotation(s) && Is(k + 1, "(")) {
        std::set<std::string>* into = s == "SKYLOFT_ACQUIRES"   ? &ann.acquires
                                      : s == "SKYLOFT_RELEASES" ? &ann.releases
                                                                : &ann.requires_held;
        for (std::size_t a = k + 2; !AtEof(a) && !Is(a, ")") && a < k + 16; a++) {
          if (T(a).kind == Tok::kIdent) into->insert(T(a).text);
        }
      }
    }
    return ann;
  }

  const std::vector<Token>& toks_;
  int file_index_;
  int depth_ = 0;
  std::vector<Scope> scopes_;
  ParsedFile out_;
};

}  // namespace

ParsedFile ParseFile(const FileTokens& file, int file_index) {
  return Parser(file, file_index).Run();
}

}  // namespace skylint
