#include "tools/skylint/lexer.h"

#include <cctype>
#include <cstring>

namespace skylint {

namespace {

bool IsIdentStart(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool IsIdentChar(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Multi-character operators, longest first so greedy matching is correct.
// Only `::`, `->` and the brace/paren family are semantically load-bearing
// for skylint, but tokenizing the rest as single units keeps downstream
// pattern matches (e.g. `=` vs `==`) honest.
const char* kPunct3[] = {"<<=", ">>=", "->*", "...", nullptr};
const char* kPunct2[] = {"::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
                         "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
                         ".*", "##", nullptr};

// Parses a `skylint:allow(rule[,rule]) -- reason` directive out of a comment
// body, if present.
void ParseSuppression(const std::string& comment, int line, FileTokens* out) {
  const std::size_t at = comment.find("skylint:allow");
  if (at == std::string::npos) {
    return;
  }
  Suppression sup;
  sup.line = line;
  std::size_t i = at + std::strlen("skylint:allow");
  while (i < comment.size() && comment[i] == ' ') i++;
  if (i < comment.size() && comment[i] == '(') {
    i++;
    std::string rule;
    while (i < comment.size() && comment[i] != ')') {
      if (comment[i] == ',') {
        if (!rule.empty()) sup.rules.push_back(rule);
        rule.clear();
      } else if (comment[i] != ' ') {
        rule += comment[i];
      }
      i++;
    }
    if (!rule.empty()) sup.rules.push_back(rule);
    if (i < comment.size()) i++;  // ')'
  }
  // Reason: ` -- non-empty text` after the rule list.
  const std::size_t dashes = comment.find("--", i);
  if (dashes != std::string::npos) {
    std::size_t r = dashes + 2;
    while (r < comment.size() && std::isspace(static_cast<unsigned char>(comment[r]))) r++;
    sup.has_reason = r < comment.size();
  }
  out->suppressions.push_back(std::move(sup));
}

}  // namespace

FileTokens Lex(const std::string& path, const std::string& text) {
  FileTokens out;
  out.path = path;
  std::size_t i = 0;
  const std::size_t n = text.size();
  int line = 1;
  bool at_line_start = true;  // only whitespace seen since the last newline

  auto push = [&](Tok kind, std::string s) {
    out.tokens.push_back(Token{kind, std::move(s), line});
    at_line_start = false;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      line++;
      at_line_start = true;
      i++;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      i++;
      continue;
    }
    // Preprocessor directive: skip the whole (possibly continued) line.
    if (c == '#' && at_line_start) {
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          line++;
          i += 2;
          continue;
        }
        if (text[i] == '\n') break;
        i++;
      }
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const std::size_t start = i + 2;
      while (i < n && text[i] != '\n') i++;
      ParseSuppression(text.substr(start, i - start), line, &out);
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      std::size_t start = i + 2;
      int start_line = line;
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') line++;
        i++;
      }
      ParseSuppression(text.substr(start, i - start), start_line, &out);
      i = i + 2 <= n ? i + 2 : n;
      continue;
    }
    // Raw string literal.
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && text[d] != '(') delim += text[d++];
      const std::string closer = ")" + delim + "\"";
      std::size_t end = text.find(closer, d);
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < end && k < n; k++) {
        if (text[k] == '\n') line++;
      }
      push(Tok::kString, "<raw-string>");
      i = end == n ? n : end + closer.size();
      continue;
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t j = i + 1;
      while (j < n && text[j] != quote) {
        if (text[j] == '\\' && j + 1 < n) j++;
        if (text[j] == '\n') line++;  // unterminated literal; stay robust
        j++;
      }
      push(quote == '"' ? Tok::kString : Tok::kChar, text.substr(i, j - i + 1));
      i = j < n ? j + 1 : n;
      continue;
    }
    if (IsIdentStart(c)) {
      std::size_t j = i;
      while (j < n && IsIdentChar(text[j])) j++;
      push(Tok::kIdent, text.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::size_t j = i;
      while (j < n && (IsIdentChar(text[j]) || text[j] == '.' || text[j] == '\'' ||
                       ((text[j] == '+' || text[j] == '-') && j > i &&
                        (text[j - 1] == 'e' || text[j - 1] == 'E' || text[j - 1] == 'p' ||
                         text[j - 1] == 'P')))) {
        j++;
      }
      push(Tok::kNumber, text.substr(i, j - i));
      i = j;
      continue;
    }
    // Punctuation, longest match first.
    bool matched = false;
    for (const char** set : {kPunct3, kPunct2}) {
      for (int k = 0; set[k] != nullptr; k++) {
        const std::size_t len = std::strlen(set[k]);
        if (text.compare(i, len, set[k]) == 0) {
          push(Tok::kPunct, set[k]);
          i += len;
          matched = true;
          break;
        }
      }
      if (matched) break;
    }
    if (!matched) {
      push(Tok::kPunct, std::string(1, c));
      i++;
    }
  }
  out.tokens.push_back(Token{Tok::kEof, "", line});
  return out;
}

}  // namespace skylint
