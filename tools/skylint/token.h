// Token model shared by the skylint lexer, parser and checks.
//
// skylint never runs the preprocessor: macros like SKYLOFT_MAY_SWITCH are
// seen as plain identifiers, which is exactly what the annotation pass
// relies on, and preprocessor directives are skipped whole.
#ifndef TOOLS_SKYLINT_TOKEN_H_
#define TOOLS_SKYLINT_TOKEN_H_

#include <string>
#include <vector>

namespace skylint {

enum class Tok {
  kIdent,   // identifiers and keywords (skylint does not distinguish)
  kNumber,  // integer/float literals, including separators and suffixes
  kString,  // "...", R"(...)", '...includes prefix-less strings only
  kChar,    // 'x'
  kPunct,   // operators and delimiters; multi-char ops are one token
  kEof,
};

struct Token {
  Tok kind = Tok::kEof;
  std::string text;
  int line = 0;
};

// One `// skylint:allow(rule[,rule]) -- reason` comment. A suppression at
// line L covers diagnostics reported at L (trailing comment) and at L+1
// (comment on its own line above the offending code).
struct Suppression {
  int line = 0;
  std::vector<std::string> rules;
  bool has_reason = false;
  bool used = false;
};

struct FileTokens {
  std::string path;  // as printed in diagnostics
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
};

}  // namespace skylint

#endif  // TOOLS_SKYLINT_TOKEN_H_
