// skylint — Skyloft's in-tree scheduling- and lock-discipline checker.
//
// Usage:
//   skylint [--root DIR] [--compile-commands FILE] [--dump]
//           [--rule NAME]... [files...]
//
// With explicit files, only those are analyzed (the fixture-test mode).
// Otherwise the file set comes from the compilation database when given,
// falling back to a glob of <root>/src. `--rule` (repeatable, `--rule=x`
// also accepted) restricts the printed findings — and the exit status — to
// the named rules, for fast fixture iteration. Diagnostics are always
// emitted in stable (file, line, rule, message) order so CI diffs are
// deterministic. Exit status is nonzero when any diagnostic survives
// suppression and the filter. See tools/skylint/README.md.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/skylint/analysis.h"
#include "tools/skylint/filelist.h"
#include "tools/skylint/lexer.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string compile_commands;
  bool dump = false;
  std::set<std::string> rule_filter;
  std::vector<std::string> files;

  for (int i = 1; i < argc; i++) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--compile-commands" && i + 1 < argc) {
      compile_commands = argv[++i];
    } else if (arg == "--dump") {
      dump = true;
    } else if (arg == "--rule" && i + 1 < argc) {
      rule_filter.insert(argv[++i]);
    } else if (arg.rfind("--rule=", 0) == 0) {
      rule_filter.insert(arg.substr(7));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: skylint [--root DIR] [--compile-commands FILE] [--dump] "
          "[--rule NAME]... [files...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "skylint: unknown option '%s'\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }

  // Reject unknown rule names up front: a typo'd --rule would otherwise
  // filter every finding away and green-light CI.
  for (const std::string& r : rule_filter) {
    if (skylint::KnownRules().count(r) == 0) {
      std::fprintf(stderr, "skylint: unknown rule '%s'\n", r.c_str());
      return 2;
    }
  }

  const bool explicit_files = !files.empty();
  if (!explicit_files) {
    files = skylint::CollectFiles(root, compile_commands);
    if (files.empty()) {
      std::fprintf(stderr, "skylint: no input files under %s/src\n", root.c_str());
      return 2;
    }
  }

  skylint::Analyzer analyzer;
  for (const std::string& f : files) {
    // Relative paths from CollectFiles are relative to --root.
    const std::string on_disk =
        explicit_files || f.front() == '/' ? f : root + "/" + f;
    std::string text;
    if (!ReadFile(on_disk, &text)) {
      std::fprintf(stderr, "skylint: cannot read %s\n", on_disk.c_str());
      return 2;
    }
    analyzer.AddFile(skylint::Lex(f, text));
  }

  std::vector<skylint::Diagnostic> diags = analyzer.Run();
  if (!rule_filter.empty()) {
    std::vector<skylint::Diagnostic> kept;
    for (auto& d : diags) {
      if (rule_filter.count(d.rule) != 0) kept.push_back(std::move(d));
    }
    diags = std::move(kept);
  }
  if (dump) analyzer.Dump();
  for (const auto& d : diags) {
    std::printf("%s:%d: %s: %s\n", d.file.c_str(), d.line, d.rule.c_str(), d.message.c_str());
  }
  if (!diags.empty()) {
    std::fprintf(stderr, "skylint: %zu finding%s\n", diags.size(), diags.size() == 1 ? "" : "s");
    return 1;
  }
  return 0;
}
