// The four scheduling-discipline rules.
//
// R1 tls-across-switch   A TLS-derived address must not be live across a
//                        call into the may-context-switch set: after the
//                        switch the uthread may run on a different pthread,
//                        where the cached address names the wrong thread's
//                        state. (PR 2: errno-location CSE in the signal
//                        handler.)
// R2 preempt-balance     Every preempt_disable-style increment must be
//                        matched on every exit path. (PR 2: preempt-guard
//                        drift across migration.)
// R3 signal-unsafe-call  Functions transitively reachable from the
//                        preemption signal handler (SKYLOFT_SIGNAL_SAFE
//                        roots) must not allocate, lock, or touch stdio.
//                        (PR 2: glibc tcache corruption under preemption.)
// R4 switch-in-noswitch  A SKYLOFT_NO_SWITCH function must not transitively
//                        reach a switch primitive (shard locks held across
//                        a context switch deadlock the worker).
//
// The may-switch and signal-safe sets are fixpoints over a name-resolved
// call graph seeded by the annotations in src/base/compiler.h. Name-based
// resolution over-approximates (every function with a matching unqualified
// name is a candidate callee); suppressions exist for the residue.
#include "tools/skylint/analysis.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <map>

namespace skylint {

namespace {

const std::set<std::string>& CallKeywords() {
  static const std::set<std::string> kw = {
      "if",     "for",     "while",   "switch",       "return",     "sizeof",
      "alignof", "alignas", "decltype", "typeid",     "static_assert", "catch",
      "throw",  "new",     "delete",  "co_await",     "co_return",  "co_yield",
      "assert", "defined", "not",     "and",          "or",
      "SKYLOFT_MAY_SWITCH", "SKYLOFT_NO_SWITCH", "SKYLOFT_SIGNAL_SAFE",
      "SKYLOFT_RETURNS_TLS",
  };
  return kw;
}

// Names that are never async-signal-safe: allocation, stdio, locking, and
// this repo's logging macros (they expand to stdio + abort).
const std::set<std::string>& SignalDenylist() {
  static const std::set<std::string> deny = {
      "malloc",       "calloc",     "realloc",   "free",       "posix_memalign",
      "aligned_alloc", "strdup",    "make_unique", "make_shared",
      "printf",       "fprintf",    "sprintf",   "snprintf",   "vprintf",
      "vfprintf",     "vsnprintf",  "puts",      "fputs",      "putchar",
      "fputc",        "fwrite",     "fread",     "fopen",      "fclose",
      "fflush",       "fgets",      "scanf",     "fscanf",
      "pthread_mutex_lock", "pthread_mutex_unlock", "pthread_cond_wait",
      "pthread_cond_signal", "pthread_cond_broadcast", "pthread_rwlock_rdlock",
      "pthread_rwlock_wrlock", "lock_guard", "unique_lock", "scoped_lock",
      "shared_lock",  "lock",      "syslog",    "exit",
      "SKYLOFT_LOG",  "SKYLOFT_CHECK", "SKYLOFT_DCHECK",
  };
  return deny;
}

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> rules = {
      "tls-across-switch", "preempt-balance", "signal-unsafe-call", "switch-in-noswitch"};
  return rules;
}

}  // namespace

void Analyzer::AddFile(FileTokens file) { files_.push_back(std::move(file)); }

void Analyzer::ExtractAll() {
  // Parse every file, keeping all definitions. Declarations are kept only
  // when no definition with the same qualified name exists — they act as
  // call-graph leaves (e.g. skyloft_ctx_switch, defined in assembly) and as
  // annotation carriers (merged below).
  std::vector<Function> decls;
  for (std::size_t f = 0; f < files_.size(); f++) {
    ParsedFile parsed = ParseFile(files_[f], static_cast<int>(f));
    tls_variables_.insert(parsed.tls_variables.begin(), parsed.tls_variables.end());
    for (Function& fn : parsed.functions) {
      (fn.has_body ? functions_ : decls).push_back(std::move(fn));
    }
  }
  std::set<std::string> defined;
  for (const Function& fn : functions_) defined.insert(fn.qualified);
  std::set<std::string> kept_decls;
  for (Function& fn : decls) {
    const bool keep = defined.count(fn.qualified) == 0 && kept_decls.insert(fn.qualified).second;
    if (keep) {
      functions_.push_back(std::move(fn));
    } else if (fn.ann.may_switch || fn.ann.no_switch || fn.ann.signal_safe ||
               fn.ann.returns_tls) {
      // Annotation on a dropped declaration still applies (merged next).
      functions_.push_back(std::move(fn));
      functions_.back().has_body = false;
      functions_.back().body_begin = functions_.back().body_end = 0;
    }
  }

  // Call sites for every definition.
  const auto& kw = CallKeywords();
  for (Function& fn : functions_) {
    if (!fn.has_body) continue;
    const auto& toks = files_[static_cast<std::size_t>(fn.file)].tokens;
    for (int p = fn.body_begin; p + 1 < fn.body_end; p++) {
      const Token& t = toks[static_cast<std::size_t>(p)];
      if (t.kind != Tok::kIdent || kw.count(t.text) != 0) continue;
      if (toks[static_cast<std::size_t>(p + 1)].text != "(") continue;
      fn.calls.push_back(CallSite{t.text, t.line, p});
    }
  }
}

void Analyzer::MergeAnnotations() {
  std::map<std::string, Annotations> merged;
  for (const Function& fn : functions_) merged[fn.qualified].Merge(fn.ann);
  for (Function& fn : functions_) fn.ann = merged[fn.qualified];
  // Annotation-carrying duplicate declarations have served their purpose;
  // drop them so every remaining entry is a definition or a unique leaf.
  std::set<std::string> seen;
  std::vector<Function> out;
  for (Function& fn : functions_) {
    if (fn.has_body || seen.insert(fn.qualified).second) out.push_back(std::move(fn));
  }
  functions_ = std::move(out);
}

void Analyzer::BuildCallGraph() {
  std::map<std::string, std::vector<int>> by_name;
  for (std::size_t i = 0; i < functions_.size(); i++) {
    by_name[functions_[i].simple].push_back(static_cast<int>(i));
  }
  callees_.assign(functions_.size(), {});
  for (std::size_t i = 0; i < functions_.size(); i++) {
    std::set<int> targets;
    for (const CallSite& cs : functions_[i].calls) {
      auto it = by_name.find(cs.name);
      if (it == by_name.end()) continue;
      for (int t : it->second) {
        if (t != static_cast<int>(i)) targets.insert(t);
      }
    }
    callees_[i].assign(targets.begin(), targets.end());
  }
}

void Analyzer::ComputeMaySwitch() {
  // Fixpoint: a function may switch if annotated SKYLOFT_MAY_SWITCH or if it
  // calls a may-switch function. SKYLOFT_NO_SWITCH is a propagation barrier:
  // a violating no-switch function is reported once by R4 instead of
  // cascading may-switch into every caller.
  may_switch_.assign(functions_.size(), false);
  for (std::size_t i = 0; i < functions_.size(); i++) {
    may_switch_[i] = functions_[i].ann.may_switch;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < functions_.size(); i++) {
      if (may_switch_[i] || functions_[i].ann.no_switch) continue;
      for (int c : callees_[i]) {
        if (may_switch_[static_cast<std::size_t>(c)]) {
          may_switch_[i] = true;
          changed = true;
          break;
        }
      }
    }
  }
}

void Analyzer::ComputeSignalClosure() {
  signal_safe_.assign(functions_.size(), false);
  signal_parent_.assign(functions_.size(), -1);
  std::deque<int> work;
  for (std::size_t i = 0; i < functions_.size(); i++) {
    if (functions_[i].ann.signal_safe) {
      signal_safe_[i] = true;
      work.push_back(static_cast<int>(i));
    }
  }
  while (!work.empty()) {
    const int cur = work.front();
    work.pop_front();
    for (int c : callees_[static_cast<std::size_t>(cur)]) {
      if (!signal_safe_[static_cast<std::size_t>(c)]) {
        signal_safe_[static_cast<std::size_t>(c)] = true;
        signal_parent_[static_cast<std::size_t>(c)] = cur;
        work.push_back(c);
      }
    }
  }
}

bool Analyzer::CallMaySwitch(const CallSite& cs) const {
  for (std::size_t i = 0; i < functions_.size(); i++) {
    if (functions_[i].simple == cs.name && may_switch_[i]) return true;
  }
  return false;
}

std::string Analyzer::SwitchPath(int from) const {
  std::string path = functions_[static_cast<std::size_t>(from)].simple;
  int cur = from;
  for (int hop = 0; hop < 8; hop++) {
    if (functions_[static_cast<std::size_t>(cur)].ann.may_switch) break;
    int next = -1;
    for (int c : callees_[static_cast<std::size_t>(cur)]) {
      if (may_switch_[static_cast<std::size_t>(c)]) {
        next = c;
        break;
      }
    }
    if (next < 0) break;
    path += " -> " + functions_[static_cast<std::size_t>(next)].simple;
    cur = next;
  }
  return path;
}

void Analyzer::Report(int fn, int line, const std::string& rule, const std::string& msg) {
  diags_.push_back(Diagnostic{files_[static_cast<std::size_t>(functions_[static_cast<std::size_t>(fn)].file)].path,
                              line, rule, msg});
}

// ---- R1: tls-across-switch -------------------------------------------------

void Analyzer::CheckTlsAcrossSwitch() {
  for (std::size_t i = 0; i < functions_.size(); i++) {
    const Function& fn = functions_[i];
    if (!fn.has_body) continue;
    const auto& toks = files_[static_cast<std::size_t>(fn.file)].tokens;
    auto text = [&](int p) -> const std::string& { return toks[static_cast<std::size_t>(p)].text; };
    auto line_of = [&](int p) { return toks[static_cast<std::size_t>(p)].line; };
    auto is_returns_tls_call = [&](int p) {
      if (toks[static_cast<std::size_t>(p)].kind != Tok::kIdent || text(p + 1) != "(") return false;
      for (const Function& g : functions_) {
        if (g.simple == text(p) && g.ann.returns_tls) return true;
      }
      return false;
    };
    // A TLS *address* source: &errno, &<thread_local var>, __errno_location()
    // or a SKYLOFT_RETURNS_TLS call — unless immediately dereferenced, which
    // re-derives on every evaluation and is the sanctioned pattern.
    auto is_addr_source = [&](int p) {
      const bool deref = p > fn.body_begin && text(p - 1) == "*";
      if (text(p) == "&" && p + 1 < fn.body_end &&
          (text(p + 1) == "errno" || tls_variables_.count(text(p + 1)) != 0)) {
        return true;
      }
      if (deref) return false;
      if (text(p) == "__errno_location" && text(p + 1) == "(") return true;
      return is_returns_tls_call(p);
    };

    // May-switch call positions within the body.
    std::vector<int> switch_pos;
    std::vector<std::string> switch_name;
    for (const CallSite& cs : fn.calls) {
      if (CallMaySwitch(cs)) {
        switch_pos.push_back(cs.pos);
        switch_name.push_back(cs.name);
      }
    }

    // R1a: a variable bound to a TLS-derived address, used after a
    // may-switch call that follows the binding.
    if (!switch_pos.empty()) {
      for (int p = fn.body_begin; p + 2 < fn.body_end; p++) {
        if (toks[static_cast<std::size_t>(p)].kind != Tok::kIdent || text(p + 1) != "=") continue;
        // RHS scan to the statement end.
        int stmt_end = p + 2;
        bool tls_rhs = false;
        while (stmt_end < fn.body_end && text(stmt_end) != ";") {
          if (is_addr_source(stmt_end)) tls_rhs = true;
          stmt_end++;
        }
        if (!tls_rhs) continue;
        const std::string var = text(p);
        for (std::size_t s = 0; s < switch_pos.size(); s++) {
          if (switch_pos[s] <= stmt_end) continue;
          for (int u = switch_pos[s] + 1; u < fn.body_end; u++) {
            if (toks[static_cast<std::size_t>(u)].kind == Tok::kIdent && text(u) == var) {
              Report(static_cast<int>(i), line_of(u), "tls-across-switch",
                     "'" + var + "' holds a TLS-derived address and is used after '" +
                         switch_name[s] + "()' (line " + std::to_string(line_of(switch_pos[s])) +
                         "), which may context-switch");
              u = fn.body_end;     // one report per binding
              s = switch_pos.size() - 1;
            }
          }
        }
      }
    }

    // R1b: raw errno touched on both sides of a may-switch call. glibc marks
    // __errno_location() __attribute__((const)), so the compiler may CSE the
    // location across the switch — after migration it names the wrong
    // thread's errno.
    if (!switch_pos.empty()) {
      std::vector<int> raw;
      for (int p = fn.body_begin; p < fn.body_end; p++) {
        if (text(p) == "errno" || (text(p) == "__errno_location" && text(p + 1) == "(")) {
          raw.push_back(p);
        }
      }
      for (std::size_t s = 0; s < switch_pos.size() && !raw.empty(); s++) {
        const bool before = raw.front() < switch_pos[s];
        int after = -1;
        for (int r : raw) {
          if (r > switch_pos[s]) {
            after = r;
            break;
          }
        }
        if (before && after >= 0) {
          Report(static_cast<int>(i), line_of(after), "tls-across-switch",
                 "errno is accessed on both sides of '" + switch_name[s] + "()' (line " +
                     std::to_string(line_of(switch_pos[s])) +
                     "), which may context-switch; the const-attributed __errno_location may "
                     "be CSE'd across it — re-derive via a SKYLOFT_RETURNS_TLS helper");
          break;
        }
      }
    }

    // R1c: returning a TLS-derived address demands the SKYLOFT_RETURNS_TLS
    // annotation, so callers are checked instead of trusted.
    if (!fn.ann.returns_tls) {
      for (int p = fn.body_begin; p < fn.body_end; p++) {
        if (text(p) != "return") continue;
        for (int q = p + 1; q < fn.body_end && text(q) != ";"; q++) {
          if (is_addr_source(q)) {
            Report(static_cast<int>(i), line_of(p), "tls-across-switch",
                   "'" + fn.simple +
                       "' returns a TLS-derived address; annotate it with SKYLOFT_RETURNS_TLS");
            p = fn.body_end;
            break;
          }
        }
      }
    }
  }
}

// ---- R2: preempt-balance ---------------------------------------------------

void Analyzer::CheckPreemptBalance() {
  for (std::size_t i = 0; i < functions_.size(); i++) {
    const Function& fn = functions_[i];
    if (!fn.has_body) continue;
    const auto& toks = files_[static_cast<std::size_t>(fn.file)].tokens;
    auto text = [&](int p) -> const std::string& { return toks[static_cast<std::size_t>(p)].text; };

    // Linear scan with a block stack: a block that returns does not leak its
    // balance delta into the fall-through path (an early-return arm that
    // re-enables preemption must not mask the main path's imbalance).
    struct Block {
      int entry_balance;
      bool returned;
    };
    std::vector<Block> blocks;
    int balance = 0;
    bool saw_counter = false;
    for (int p = fn.body_begin; p < fn.body_end; p++) {
      const std::string& s = text(p);
      if (s == "{") {
        blocks.push_back(Block{balance, false});
        continue;
      }
      if (s == "}") {
        if (!blocks.empty()) {
          if (blocks.back().returned) balance = blocks.back().entry_balance;
          blocks.pop_back();
        }
        continue;
      }
      if (s == "return") {
        if (balance != 0) {
          Report(static_cast<int>(i), toks[static_cast<std::size_t>(p)].line, "preempt-balance",
                 "return with preempt-disable balance " + std::string(balance > 0 ? "+" : "") +
                     std::to_string(balance) + " in '" + fn.simple + "'");
        }
        if (!blocks.empty()) blocks.back().returned = true;
        continue;
      }
      // <preempt_disable/preempt_count counter> (. | ->) fetch_add|fetch_sub (
      // The name filter is deliberately narrow: statistics counters such as
      // `preemptions_` or `preempt_deferrals_` are not disable depths.
      if (toks[static_cast<std::size_t>(p)].kind == Tok::kIdent &&
          (s.find("preempt_disable") != std::string::npos ||
           s.find("preempt_count") != std::string::npos) &&
          p + 3 < fn.body_end &&
          (text(p + 1) == "." || text(p + 1) == "->") && text(p + 3) == "(") {
        if (text(p + 2) == "fetch_add") {
          balance++;
          saw_counter = true;
        } else if (text(p + 2) == "fetch_sub") {
          balance--;
          saw_counter = true;
        }
      }
    }
    if (saw_counter && balance != 0) {
      Report(static_cast<int>(i), fn.line, "preempt-balance",
             "'" + fn.simple + "' exits with preempt-disable balance " +
                 std::string(balance > 0 ? "+" : "") + std::to_string(balance));
    }
  }
}

// ---- R3: signal-unsafe-call ------------------------------------------------

void Analyzer::CheckSignalUnsafeCalls() {
  const auto& deny = SignalDenylist();
  for (std::size_t i = 0; i < functions_.size(); i++) {
    if (!signal_safe_[i] || !functions_[i].has_body) continue;
    const Function& fn = functions_[i];
    const auto& toks = files_[static_cast<std::size_t>(fn.file)].tokens;

    // Path from a signal-safe root for the message.
    std::string via = fn.simple;
    for (int p = signal_parent_[i]; p >= 0; p = signal_parent_[static_cast<std::size_t>(p)]) {
      via = functions_[static_cast<std::size_t>(p)].simple + " -> " + via;
    }

    for (const CallSite& cs : fn.calls) {
      if (deny.count(cs.name) != 0) {
        Report(static_cast<int>(i), cs.line, "signal-unsafe-call",
               "'" + cs.name + "' is not async-signal-safe (reached via " + via + ")");
      }
    }
    for (int p = fn.body_begin; p < fn.body_end; p++) {
      const Token& t = toks[static_cast<std::size_t>(p)];
      if (t.kind != Tok::kIdent || (t.text != "new" && t.text != "delete")) continue;
      // Placement new does not allocate.
      if (t.text == "new" && p + 1 < fn.body_end &&
          toks[static_cast<std::size_t>(p + 1)].text == "(") {
        continue;
      }
      Report(static_cast<int>(i), t.line, "signal-unsafe-call",
             "operator " + t.text + " allocates and is not async-signal-safe (reached via " +
                 via + ")");
    }
  }
}

// ---- R4: switch-in-noswitch ------------------------------------------------

void Analyzer::CheckNoSwitchReach() {
  for (std::size_t i = 0; i < functions_.size(); i++) {
    const Function& fn = functions_[i];
    if (!fn.ann.no_switch) continue;
    if (fn.ann.may_switch) {
      Report(static_cast<int>(i), fn.line, "switch-in-noswitch",
             "'" + fn.simple + "' is annotated both SKYLOFT_NO_SWITCH and SKYLOFT_MAY_SWITCH");
      continue;
    }
    if (!fn.has_body) continue;
    for (const CallSite& cs : fn.calls) {
      if (!CallMaySwitch(cs)) continue;
      // Resolve to a may-switch candidate for the path message.
      int target = -1;
      for (std::size_t t = 0; t < functions_.size(); t++) {
        if (functions_[t].simple == cs.name && may_switch_[t]) {
          target = static_cast<int>(t);
          break;
        }
      }
      Report(static_cast<int>(i), cs.line, "switch-in-noswitch",
             "SKYLOFT_NO_SWITCH function '" + fn.simple + "' calls '" + cs.name +
                 "', which may context-switch (" + SwitchPath(target) + ")");
      break;  // one report per function keeps the signal readable
    }
  }
}

// ---- suppressions ----------------------------------------------------------

void Analyzer::ApplySuppressions() {
  // bad-suppression diagnostics first; they cannot themselves be suppressed.
  for (const FileTokens& file : files_) {
    for (const Suppression& sup : file.suppressions) {
      if (sup.rules.empty()) {
        diags_.push_back(Diagnostic{file.path, sup.line, "bad-suppression",
                                    "skylint:allow requires a rule list: "
                                    "// skylint:allow(<rule>) -- <reason>"});
        continue;
      }
      for (const std::string& r : sup.rules) {
        if (KnownRules().count(r) == 0) {
          diags_.push_back(Diagnostic{file.path, sup.line, "bad-suppression",
                                      "unknown rule '" + r + "' in skylint:allow"});
        }
      }
      if (!sup.has_reason) {
        diags_.push_back(Diagnostic{file.path, sup.line, "bad-suppression",
                                    "skylint:allow is missing its justification: append "
                                    "' -- <reason>'"});
      }
    }
  }

  std::vector<Diagnostic> kept;
  for (const Diagnostic& d : diags_) {
    bool suppressed = false;
    if (d.rule != "bad-suppression") {
      for (FileTokens& file : files_) {
        if (file.path != d.file) continue;
        for (Suppression& sup : file.suppressions) {
          if (!sup.has_reason) continue;  // invalid suppressions suppress nothing
          if (sup.line != d.line && sup.line != d.line - 1) continue;
          if (std::find(sup.rules.begin(), sup.rules.end(), d.rule) == sup.rules.end()) continue;
          suppressed = true;
          sup.used = true;
        }
      }
    }
    if (!suppressed) kept.push_back(d);
  }
  diags_ = std::move(kept);
}

std::vector<Diagnostic> Analyzer::Run() {
  ExtractAll();
  MergeAnnotations();
  BuildCallGraph();
  ComputeMaySwitch();
  ComputeSignalClosure();
  CheckTlsAcrossSwitch();
  CheckPreemptBalance();
  CheckSignalUnsafeCalls();
  CheckNoSwitchReach();
  ApplySuppressions();
  std::sort(diags_.begin(), diags_.end());
  diags_.erase(std::unique(diags_.begin(), diags_.end()), diags_.end());
  return diags_;
}

void Analyzer::Dump() const {
  std::printf("== functions (%zu) ==\n", functions_.size());
  for (std::size_t i = 0; i < functions_.size(); i++) {
    const Function& fn = functions_[i];
    std::printf("%s%s%s%s%s %s  [%s:%d]%s calls=%zu\n",
                may_switch_.empty() ? "" : (may_switch_[i] ? "S" : "-"),
                signal_safe_.empty() ? "" : (signal_safe_[i] ? "H" : "-"),
                fn.ann.no_switch ? "N" : "-", fn.ann.returns_tls ? "T" : "-",
                fn.has_body ? "D" : "d", fn.qualified.c_str(),
                files_[static_cast<std::size_t>(fn.file)].path.c_str(), fn.line,
                fn.ann.may_switch ? " [MAY_SWITCH]" : "", fn.calls.size());
  }
  std::printf("== tls variables ==\n");
  for (const std::string& v : tls_variables_) std::printf("  %s\n", v.c_str());
}

}  // namespace skylint
