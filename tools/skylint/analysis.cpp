// The scheduling- and lock-discipline rules.
//
// R1 tls-across-switch   A TLS-derived address must not be live across a
//                        call into the may-context-switch set: after the
//                        switch the uthread may run on a different pthread,
//                        where the cached address names the wrong thread's
//                        state. (PR 2: errno-location CSE in the signal
//                        handler.)
// R2 preempt-balance     Every preempt_disable-style increment must be
//                        matched on every exit path. (PR 2: preempt-guard
//                        drift across migration.)
// R3 signal-unsafe-call  Functions transitively reachable from the
//                        preemption signal handler (SKYLOFT_SIGNAL_SAFE
//                        roots) must not allocate, lock, or touch stdio.
//                        (PR 2: glibc tcache corruption under preemption.)
// R4 switch-in-noswitch  A SKYLOFT_NO_SWITCH function must not transitively
//                        reach a switch primitive (shard locks held across
//                        a context switch deadlock the worker).
//
// Lock-discipline rules (skylint v2). Per-function lock summaries — the set
// of lock classes a call net-acquires/releases — are seeded by
// SKYLOFT_ACQUIRES/RELEASES annotations and derived for unannotated bodies
// by a bounded interprocedural fixpoint; std::lock_guard/unique_lock/
// scoped_lock declarations and annotated RAII guard constructors are modeled
// as scope-bound acquires.
//
// R5 lock-held-across-switch  A lock class is held at a call into the
//                        may-switch closure: the uthread can park holding a
//                        spinlock, stalling every spinner until it is
//                        rescheduled (the PR 6 tail-amplifier shape).
//                        Callees that SKYLOFT_REQUIRES the held lock are
//                        exempt — the condvar-wait pattern releases it
//                        itself before parking.
// R6 lock-order-cycle    The static acquired-while-holding graph over all
//                        lock classes has a cycle; each edge's first witness
//                        site is reported with the cycle.
// R7 blocking-call-on-worker  A raw blocking syscall (nanosleep/poll/
//                        futex-wait shapes), or a SKYLOFT_BLOCKING helper,
//                        is reachable from WorkerLoop/engine poll paths. A
//                        blocked worker pthread stalls every uthread it
//                        hosts. fd reads/writes are sanctioned when the
//                        same body parks through WaitForReadable/
//                        WaitForWritable (the drain-until-EAGAIN pattern on
//                        O_NONBLOCK sockets).
// R8 lock-requires-unheld  A SKYLOFT_REQUIRES(l) function is called at a
//                        site where `l` is not visibly held.
//
// The may-switch and signal-safe sets are fixpoints over a name-resolved
// call graph seeded by the annotations in src/base/compiler.h. Name-based
// resolution over-approximates (every function with a matching unqualified
// name is a candidate callee); suppressions exist for the residue. The lock
// walk is linear per body (no branch sensitivity): an early-return arm that
// releases a lock under-approximates the fall-through path, which the
// fixture corpus and suppressions cover.
#include "tools/skylint/analysis.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>

namespace skylint {

namespace {

const std::set<std::string>& CallKeywords() {
  static const std::set<std::string> kw = {
      "if",     "for",     "while",   "switch",       "return",     "sizeof",
      "alignof", "alignas", "decltype", "typeid",     "static_assert", "catch",
      "throw",  "new",     "delete",  "co_await",     "co_return",  "co_yield",
      "assert", "defined", "not",     "and",          "or",
      "SKYLOFT_MAY_SWITCH", "SKYLOFT_NO_SWITCH", "SKYLOFT_SIGNAL_SAFE",
      "SKYLOFT_RETURNS_TLS", "SKYLOFT_BLOCKING", "SKYLOFT_ACQUIRES",
      "SKYLOFT_RELEASES", "SKYLOFT_REQUIRES",
  };
  return kw;
}

// RAII lock holders from <mutex>/<shared_mutex>: `std::lock_guard<M> g(mu);`
// acquires at the declaration and releases at the enclosing scope's end.
const std::set<std::string>& GuardTemplates() {
  static const std::set<std::string> g = {"lock_guard", "unique_lock", "scoped_lock",
                                          "shared_lock"};
  return g;
}

// Syscalls/library calls that block the calling pthread unconditionally.
// A worker that enters one of these stalls every uthread it hosts; the
// runtime's sanctioned waits (WaitForReadable/WaitForWritable, Park,
// SleepFor) park the uthread instead.
const std::set<std::string>& UnconditionalBlocking() {
  static const std::set<std::string> deny = {
      "nanosleep", "clock_nanosleep", "usleep",      "sleep",       "sleep_for",
      "sleep_until", "poll",          "ppoll",       "select",      "pselect",
      "epoll_wait", "epoll_pwait",    "sigwait",     "sigwaitinfo", "sigtimedwait",
      "pause",      "pthread_join",   "pthread_cond_wait", "pthread_cond_timedwait",
      "waitpid",    "wait4",          "system",      "flock",       "fsync",
      "fdatasync",  "msync",
  };
  return deny;
}

// fd I/O that blocks only on a blocking-mode fd. Sanctioned when the same
// body parks through WaitForReadable/WaitForWritable — the engine contract
// puts every registered fd in O_NONBLOCK and the call sits in a
// drain-until-EAGAIN loop around the park.
const std::set<std::string>& FdBlocking() {
  static const std::set<std::string> deny = {
      "read",  "pread",  "readv",  "recv",  "recvfrom", "recvmsg", "write",
      "pwrite", "writev", "send",  "sendto", "sendmsg",  "accept",  "accept4",
      "connect",
  };
  return deny;
}

// Names that are never async-signal-safe: allocation, stdio, locking, and
// this repo's logging macros (they expand to stdio + abort).
const std::set<std::string>& SignalDenylist() {
  static const std::set<std::string> deny = {
      "malloc",       "calloc",     "realloc",   "free",       "posix_memalign",
      "aligned_alloc", "strdup",    "make_unique", "make_shared",
      "printf",       "fprintf",    "sprintf",   "snprintf",   "vprintf",
      "vfprintf",     "vsnprintf",  "puts",      "fputs",      "putchar",
      "fputc",        "fwrite",     "fread",     "fopen",      "fclose",
      "fflush",       "fgets",      "scanf",     "fscanf",
      "pthread_mutex_lock", "pthread_mutex_unlock", "pthread_cond_wait",
      "pthread_cond_signal", "pthread_cond_broadcast", "pthread_rwlock_rdlock",
      "pthread_rwlock_wrlock", "lock_guard", "unique_lock", "scoped_lock",
      "shared_lock",  "lock",      "syslog",    "exit",
      "SKYLOFT_LOG",  "SKYLOFT_CHECK", "SKYLOFT_DCHECK",
  };
  return deny;
}

bool HasAnyAnnotation(const Annotations& a) {
  return a.may_switch || a.no_switch || a.signal_safe || a.returns_tls || a.blocking ||
         !a.acquires.empty() || !a.releases.empty() || !a.requires_held.empty();
}

}  // namespace

const std::set<std::string>& KnownRules() {
  static const std::set<std::string> rules = {
      "tls-across-switch",      "preempt-balance",  "signal-unsafe-call",
      "switch-in-noswitch",     "lock-held-across-switch", "lock-order-cycle",
      "blocking-call-on-worker", "lock-requires-unheld"};
  return rules;
}

void Analyzer::AddFile(FileTokens file) { files_.push_back(std::move(file)); }

void Analyzer::ExtractAll() {
  // Parse every file, keeping all definitions. Declarations are kept only
  // when no definition with the same qualified name exists — they act as
  // call-graph leaves (e.g. skyloft_ctx_switch, defined in assembly) and as
  // annotation carriers (merged below).
  std::vector<Function> decls;
  for (std::size_t f = 0; f < files_.size(); f++) {
    ParsedFile parsed = ParseFile(files_[f], static_cast<int>(f));
    tls_variables_.insert(parsed.tls_variables.begin(), parsed.tls_variables.end());
    for (Function& fn : parsed.functions) {
      (fn.has_body ? functions_ : decls).push_back(std::move(fn));
    }
  }
  std::set<std::string> defined;
  for (const Function& fn : functions_) defined.insert(fn.qualified);
  std::set<std::string> kept_decls;
  for (Function& fn : decls) {
    const bool keep = defined.count(fn.qualified) == 0 && kept_decls.insert(fn.qualified).second;
    if (keep) {
      functions_.push_back(std::move(fn));
    } else if (HasAnyAnnotation(fn.ann)) {
      // Annotation on a dropped declaration still applies (merged next).
      functions_.push_back(std::move(fn));
      functions_.back().has_body = false;
      functions_.back().body_begin = functions_.back().body_end = 0;
    }
  }

  // Call sites for every definition.
  const auto& kw = CallKeywords();
  for (Function& fn : functions_) {
    if (!fn.has_body) continue;
    const auto& toks = files_[static_cast<std::size_t>(fn.file)].tokens;
    for (int p = fn.body_begin; p + 1 < fn.body_end; p++) {
      const Token& t = toks[static_cast<std::size_t>(p)];
      if (t.kind != Tok::kIdent || kw.count(t.text) != 0) continue;
      if (toks[static_cast<std::size_t>(p + 1)].text != "(") continue;
      fn.calls.push_back(CallSite{t.text, t.line, p});
    }
  }
}

void Analyzer::MergeAnnotations() {
  std::map<std::string, Annotations> merged;
  for (const Function& fn : functions_) merged[fn.qualified].Merge(fn.ann);
  for (Function& fn : functions_) fn.ann = merged[fn.qualified];
  // Annotation-carrying duplicate declarations have served their purpose;
  // drop them so every remaining entry is a definition or a unique leaf.
  std::set<std::string> seen;
  std::vector<Function> out;
  for (Function& fn : functions_) {
    if (fn.has_body || seen.insert(fn.qualified).second) out.push_back(std::move(fn));
  }
  functions_ = std::move(out);
}

void Analyzer::BuildCallGraph() {
  by_name_.clear();
  for (std::size_t i = 0; i < functions_.size(); i++) {
    by_name_[functions_[i].simple].push_back(static_cast<int>(i));
  }
  callees_.assign(functions_.size(), {});
  for (std::size_t i = 0; i < functions_.size(); i++) {
    std::set<int> targets;
    for (const CallSite& cs : functions_[i].calls) {
      auto it = by_name_.find(cs.name);
      if (it == by_name_.end()) continue;
      for (int t : it->second) {
        if (t != static_cast<int>(i)) targets.insert(t);
      }
    }
    callees_[i].assign(targets.begin(), targets.end());
  }
}

void Analyzer::ComputeMaySwitch() {
  // Fixpoint: a function may switch if annotated SKYLOFT_MAY_SWITCH or if it
  // calls a may-switch function. SKYLOFT_NO_SWITCH is a propagation barrier:
  // a violating no-switch function is reported once by R4 instead of
  // cascading may-switch into every caller.
  may_switch_.assign(functions_.size(), false);
  for (std::size_t i = 0; i < functions_.size(); i++) {
    may_switch_[i] = functions_[i].ann.may_switch;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < functions_.size(); i++) {
      if (may_switch_[i] || functions_[i].ann.no_switch) continue;
      for (int c : callees_[i]) {
        if (may_switch_[static_cast<std::size_t>(c)]) {
          may_switch_[i] = true;
          changed = true;
          break;
        }
      }
    }
  }
}

void Analyzer::ComputeSignalClosure() {
  signal_safe_.assign(functions_.size(), false);
  signal_parent_.assign(functions_.size(), -1);
  std::deque<int> work;
  for (std::size_t i = 0; i < functions_.size(); i++) {
    if (functions_[i].ann.signal_safe) {
      signal_safe_[i] = true;
      work.push_back(static_cast<int>(i));
    }
  }
  while (!work.empty()) {
    const int cur = work.front();
    work.pop_front();
    for (int c : callees_[static_cast<std::size_t>(cur)]) {
      if (!signal_safe_[static_cast<std::size_t>(c)]) {
        signal_safe_[static_cast<std::size_t>(c)] = true;
        signal_parent_[static_cast<std::size_t>(c)] = cur;
        work.push_back(c);
      }
    }
  }
}

void Analyzer::ComputeWorkerClosure() {
  // Everything a runtime worker's scheduler loop or any uthread body can
  // reach: forward-reachable from WorkerLoop and from the may-switch set
  // (may-switch code by definition executes on a worker; the engine poll
  // paths hang off WorkerLoop itself).
  on_worker_.assign(functions_.size(), false);
  worker_parent_.assign(functions_.size(), -1);
  std::deque<int> work;
  for (std::size_t i = 0; i < functions_.size(); i++) {
    if (functions_[i].simple == "WorkerLoop" || may_switch_[i]) {
      on_worker_[i] = true;
      work.push_back(static_cast<int>(i));
    }
  }
  while (!work.empty()) {
    const int cur = work.front();
    work.pop_front();
    for (int c : callees_[static_cast<std::size_t>(cur)]) {
      if (!on_worker_[static_cast<std::size_t>(c)]) {
        on_worker_[static_cast<std::size_t>(c)] = true;
        worker_parent_[static_cast<std::size_t>(c)] = cur;
        work.push_back(c);
      }
    }
  }
}

std::string Analyzer::WorkerPath(int fn) const {
  std::string via = functions_[static_cast<std::size_t>(fn)].simple;
  for (int p = worker_parent_[static_cast<std::size_t>(fn)]; p >= 0;
       p = worker_parent_[static_cast<std::size_t>(p)]) {
    via = functions_[static_cast<std::size_t>(p)].simple + " -> " + via;
  }
  return via;
}

std::string Analyzer::GuardLockName(int fn, const std::string& last_ident) const {
  // Qualify a lock_guard argument's terminal identifier by the enclosing
  // class so `mu_` in MetricGroup and ClusterSim stays two lock classes.
  // Namespace components carry no instance identity and are stripped.
  static const std::set<std::string> ns = {"skyloft", "std", "detail", "internal", "<anon>"};
  const std::string& q = functions_[static_cast<std::size_t>(fn)].qualified;
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t at; (at = q.find("::", start)) != std::string::npos; start = at + 2) {
    parts.push_back(q.substr(start, at - start));
  }
  // The function name itself (after the last ::) is intentionally excluded.
  std::string scope;
  for (const std::string& p : parts) {
    if (ns.count(p) != 0) continue;
    if (!scope.empty()) scope += "::";
    scope += p;
  }
  return scope.empty() ? last_ident : scope + "::" + last_ident;
}

Analyzer::LockSummary Analyzer::WalkLocks(int fn_index, bool report) {
  const Function& fn = functions_[static_cast<std::size_t>(fn_index)];
  LockSummary net;
  if (!fn.has_body) return net;
  const auto& toks = files_[static_cast<std::size_t>(fn.file)].tokens;
  auto text = [&](int p) -> const std::string& { return toks[static_cast<std::size_t>(p)].text; };
  auto line_of = [&](int p) { return toks[static_cast<std::size_t>(p)].line; };
  auto is_ident = [&](int p) {
    return p < fn.body_end && toks[static_cast<std::size_t>(p)].kind == Tok::kIdent;
  };

  const std::set<std::string>& entry = fn.ann.requires_held;
  std::map<std::string, int> held;   // lock class -> acquire line
  std::set<std::string> released;    // net releases of locks acquired elsewhere
  std::set<std::string> ever_held;   // held at any point of this walk
  for (const std::string& l : entry) {
    held[l] = fn.line;
    ever_held.insert(l);
  }

  // Locks owned by an RAII guard in each open scope; scope 0 is the body.
  std::vector<std::vector<std::string>> scopes(1);

  std::map<int, const CallSite*> call_at;
  for (const CallSite& cs : fn.calls) call_at[cs.pos] = &cs;

  auto acquire = [&](const std::string& l, int line, bool scoped) {
    if (report) {
      for (const auto& h : held) {
        if (h.first == l) continue;
        auto key = std::make_pair(h.first, l);
        if (lock_edges_.find(key) == lock_edges_.end()) {
          lock_edges_[key] = LockEdge{fn.file, line};
        }
      }
    }
    if (released.count(l) != 0) {
      released.erase(l);  // reacquired what this body released: net zero
    }
    if (held.find(l) == held.end()) held[l] = line;
    ever_held.insert(l);
    if (scoped) scopes.back().push_back(l);
  };
  auto release = [&](const std::string& l) {
    // A release of a lock this body never held releases the *caller's* lock
    // (an unlock helper). A second release on another control-flow path of a
    // lock already acquired-and-released here is linear-walk residue, not a
    // caller-visible effect.
    if (held.erase(l) == 0 && ever_held.count(l) == 0) released.insert(l);
  };

  // Just past the matching closer of a <...> group opening at p.
  auto skip_angles = [&](int p) {
    int depth = 0;
    for (; p < fn.body_end; p++) {
      if (text(p) == "<") depth++;
      if (text(p) == ">" && --depth == 0) return p + 1;
      if (text(p) == ";") break;  // bail on a stray comparison
    }
    return p;
  };

  int p = fn.body_begin;
  while (p < fn.body_end) {
    const std::string& s = text(p);
    if (s == "{") {
      scopes.emplace_back();
      p++;
      continue;
    }
    if (s == "}") {
      for (const std::string& l : scopes.back()) held.erase(l);
      if (scopes.size() > 1) scopes.pop_back();
      p++;
      continue;
    }
    // `std::lock_guard<std::mutex> g(expr);` — scope-bound acquire of the
    // lock class named by expr's last identifier, class-qualified.
    if (is_ident(p) && GuardTemplates().count(s) != 0 && p + 1 < fn.body_end &&
        text(p + 1) == "<") {
      int q = skip_angles(p + 1);
      if (is_ident(q) && q + 1 < fn.body_end && text(q + 1) == "(") {
        const int open_line = line_of(q);
        int depth = 0;
        std::string last;
        std::vector<std::string> args;  // scoped_lock(a, b) takes several
        int r = q + 1;
        for (; r < fn.body_end; r++) {
          if (text(r) == "(") {
            if (++depth == 1) continue;
          }
          if (text(r) == ")" && --depth == 0) break;
          if (depth == 1 && text(r) == ",") {
            if (!last.empty()) args.push_back(last);
            last.clear();
            continue;
          }
          if (toks[static_cast<std::size_t>(r)].kind == Tok::kIdent) last = text(r);
        }
        if (!last.empty()) args.push_back(last);
        for (const std::string& a : args) {
          acquire(GuardLockName(fn_index, a), open_line, /*scoped=*/true);
        }
        p = r + 1;
        continue;
      }
      p = q;
      continue;
    }
    // `GuardType g(expr);` where GuardType's constructor is annotated
    // SKYLOFT_ACQUIRES — e.g. UthreadMutexGuard.
    if (is_ident(p) && is_ident(p + 1) && p + 2 < fn.body_end && text(p + 2) == "(" &&
        call_at.find(p) == call_at.end()) {
      std::set<std::string> ctor_acquires;
      auto it = by_name_.find(s);
      if (it != by_name_.end()) {
        for (int c : it->second) {
          const Function& g = functions_[static_cast<std::size_t>(c)];
          if (g.simple == s && !g.ann.acquires.empty()) {
            ctor_acquires.insert(g.ann.acquires.begin(), g.ann.acquires.end());
          }
        }
      }
      if (!ctor_acquires.empty()) {
        for (const std::string& l : ctor_acquires) {
          acquire(l, line_of(p), /*scoped=*/true);
        }
        p += 2;
        continue;
      }
    }
    // Ordinary call site: apply the callee's summary (union over name
    // candidates) and run the call-sensitive rules.
    auto cit = call_at.find(p);
    if (cit != call_at.end()) {
      const CallSite& cs = *cit->second;
      std::set<std::string> uacq, urel, req_union;
      std::set<std::string> req_intersect;
      bool first_candidate = true;
      auto it = by_name_.find(cs.name);
      if (it != by_name_.end()) {
        for (int c : it->second) {
          const Function& g = functions_[static_cast<std::size_t>(c)];
          const LockSummary& sum = summaries_[static_cast<std::size_t>(c)];
          uacq.insert(sum.acquires.begin(), sum.acquires.end());
          urel.insert(sum.releases.begin(), sum.releases.end());
          req_union.insert(g.ann.requires_held.begin(), g.ann.requires_held.end());
          if (first_candidate) {
            req_intersect = g.ann.requires_held;
            first_candidate = false;
          } else {
            std::set<std::string> keep;
            for (const std::string& l : req_intersect) {
              if (g.ann.requires_held.count(l) != 0) keep.insert(l);
            }
            req_intersect = std::move(keep);
          }
        }
      }
      if (report) {
        // R8: every candidate demands these locks (intersection, so a name
        // collision with an unannotated function disables the check rather
        // than spraying false positives).
        for (const std::string& l : req_intersect) {
          if (held.find(l) == held.end()) {
            Report(fn_index, cs.line, "lock-requires-unheld",
                   "'" + cs.name + "' requires lock class '" + l +
                       "' (SKYLOFT_REQUIRES), which is not held here");
          }
        }
        // R5: held across a may-switch call. Callees that REQUIRE or
        // RELEASE the lock handle it themselves (condvar wait / unlock).
        if (!held.empty() && CallMaySwitch(cs)) {
          for (const auto& h : held) {
            if (req_union.count(h.first) != 0 || urel.count(h.first) != 0) continue;
            Report(fn_index, cs.line, "lock-held-across-switch",
                   "lock class '" + h.first + "' (acquired line " + std::to_string(h.second) +
                       ") is held across call to '" + cs.name +
                       "', which may context-switch — a parked uthread would hold it "
                       "across the switch");
          }
        }
      }
      for (const std::string& l : uacq) acquire(l, cs.line, /*scoped=*/false);
      for (const std::string& l : urel) release(l);
      p++;
      continue;
    }
    p++;
  }

  // Remaining RAII guards release at function exit.
  for (const auto& scope : scopes) {
    for (const std::string& l : scope) held.erase(l);
  }
  for (const auto& h : held) {
    if (entry.count(h.first) == 0) net.acquires.insert(h.first);
  }
  for (const std::string& l : entry) {
    if (held.find(l) == held.end()) net.releases.insert(l);
  }
  net.releases.insert(released.begin(), released.end());
  return net;
}

void Analyzer::ComputeLockSummaries() {
  summaries_.assign(functions_.size(), LockSummary{});
  // Annotated functions are authoritative (their bodies implement the lock
  // with raw atomics the walk cannot see); unannotated bodies derive their
  // summary from callees, iterated to a bounded fixpoint.
  for (std::size_t i = 0; i < functions_.size(); i++) {
    if (functions_[i].ann.HasLockAnnotation()) {
      summaries_[i].acquires = functions_[i].ann.acquires;
      summaries_[i].releases = functions_[i].ann.releases;
    }
  }
  for (int round = 0; round < 10; round++) {
    bool changed = false;
    for (std::size_t i = 0; i < functions_.size(); i++) {
      if (functions_[i].ann.HasLockAnnotation() || !functions_[i].has_body) continue;
      LockSummary s = WalkLocks(static_cast<int>(i), /*report=*/false);
      if (!(s == summaries_[i])) {
        summaries_[i] = std::move(s);
        changed = true;
      }
    }
    if (!changed) break;
  }
}

// ---- R5 lock-held-across-switch / R8 lock-requires-unheld ------------------

void Analyzer::CheckLockDiscipline() {
  lock_edges_.clear();
  for (std::size_t i = 0; i < functions_.size(); i++) {
    if (functions_[i].has_body) WalkLocks(static_cast<int>(i), /*report=*/true);
  }
}

// ---- R6 lock-order-cycle ---------------------------------------------------

void Analyzer::CheckLockOrderCycles() {
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& e : lock_edges_) adj[e.first.first].push_back(e.first.second);
  for (auto& a : adj) std::sort(a.second.begin(), a.second.end());

  std::set<std::string> reported;
  // Each cycle is found once, rotated so its lexicographically smallest lock
  // comes first: DFS from every start node, visiting only nodes >= start.
  for (const auto& a : adj) {
    const std::string& start = a.first;
    std::vector<std::string> path{start};
    std::set<std::string> on_path{start};
    std::function<void(const std::string&)> dfs = [&](const std::string& cur) {
      if (path.size() > 8) return;
      auto it = adj.find(cur);
      if (it == adj.end()) return;
      for (const std::string& next : it->second) {
        if (next == start && path.size() >= 2) {
          std::string key;
          for (const std::string& n : path) key += n + "|";
          if (!reported.insert(key).second) continue;
          // Message carries every edge's first witness site — for a two-lock
          // cycle that is both acquisition orders.
          std::string msg = "lock-order cycle: " + start;
          for (std::size_t k = 0; k < path.size(); k++) {
            const std::string& from = path[k];
            const std::string& to = k + 1 < path.size() ? path[k + 1] : start;
            const LockEdge& w = lock_edges_.at(std::make_pair(from, to));
            msg += " -> " + to + " (" + files_[static_cast<std::size_t>(w.file)].path + ":" +
                   std::to_string(w.line) + ")";
          }
          msg += "; acquiring in opposite orders can deadlock";
          const LockEdge& first = lock_edges_.at(std::make_pair(start, path.size() > 1 ? path[1] : start));
          diags_.push_back(Diagnostic{files_[static_cast<std::size_t>(first.file)].path,
                                      first.line, "lock-order-cycle", msg});
          continue;
        }
        if (next <= start || on_path.count(next) != 0) continue;
        path.push_back(next);
        on_path.insert(next);
        dfs(next);
        on_path.erase(next);
        path.pop_back();
      }
    };
    dfs(start);
  }
}

// ---- R7 blocking-call-on-worker --------------------------------------------

void Analyzer::CheckBlockingOnWorker() {
  for (std::size_t i = 0; i < functions_.size(); i++) {
    const Function& fn = functions_[i];
    if (!on_worker_[i] || !fn.has_body) continue;
    // A function that declares itself SKYLOFT_BLOCKING is reported at its
    // call sites, not for its own internals.
    if (fn.ann.blocking) continue;
    const auto& toks = files_[static_cast<std::size_t>(fn.file)].tokens;

    bool sanctioned_io = false;
    for (const CallSite& cs : fn.calls) {
      if (cs.name == "WaitForReadable" || cs.name == "WaitForWritable") {
        sanctioned_io = true;
        break;
      }
    }

    for (const CallSite& cs : fn.calls) {
      // `x.read()` / `p->poll()` are member calls, never the raw syscall;
      // the denylists only name free functions. (SKYLOFT_BLOCKING-annotated
      // methods are still caught below via their annotation.)
      const bool member_call =
          cs.pos > fn.body_begin &&
          (toks[static_cast<std::size_t>(cs.pos - 1)].text == "." ||
           toks[static_cast<std::size_t>(cs.pos - 1)].text == "->");
      bool uncond = !member_call && UnconditionalBlocking().count(cs.name) != 0;
      // futex-wait shape: syscall(SYS_futex, ..., FUTEX_WAIT, ...).
      if (!uncond && cs.name == "syscall") {
        for (int p = cs.pos + 2; p < cs.pos + 10 && p < fn.body_end; p++) {
          const std::string& t = toks[static_cast<std::size_t>(p)].text;
          if (t.find("futex") != std::string::npos || t.find("FUTEX") != std::string::npos) {
            uncond = true;
            break;
          }
        }
      }
      if (uncond) {
        Report(static_cast<int>(i), cs.line, "blocking-call-on-worker",
               "blocking call '" + cs.name + "' on a worker/scheduler path (reached via " +
                   WorkerPath(static_cast<int>(i)) +
                   "); it stalls every uthread on the worker — park through the runtime "
                   "primitives instead");
        continue;
      }
      bool callee_blocking = false;
      auto it = by_name_.find(cs.name);
      if (it != by_name_.end()) {
        for (int c : it->second) {
          if (functions_[static_cast<std::size_t>(c)].ann.blocking) callee_blocking = true;
        }
      }
      if (callee_blocking) {
        Report(static_cast<int>(i), cs.line, "blocking-call-on-worker",
               "'" + cs.name + "' is annotated SKYLOFT_BLOCKING and is called on a "
                   "worker/scheduler path (reached via " + WorkerPath(static_cast<int>(i)) + ")");
        continue;
      }
      if (!member_call && FdBlocking().count(cs.name) != 0 && !sanctioned_io) {
        Report(static_cast<int>(i), cs.line, "blocking-call-on-worker",
               "fd call '" + cs.name + "' on a worker path with no WaitForReadable/"
                   "WaitForWritable park loop in the same body (reached via " +
                   WorkerPath(static_cast<int>(i)) +
                   "); on a blocking fd this stalls the worker pthread");
      }
    }
  }
}

bool Analyzer::CallMaySwitch(const CallSite& cs) const {
  for (std::size_t i = 0; i < functions_.size(); i++) {
    if (functions_[i].simple == cs.name && may_switch_[i]) return true;
  }
  return false;
}

std::string Analyzer::SwitchPath(int from) const {
  std::string path = functions_[static_cast<std::size_t>(from)].simple;
  int cur = from;
  for (int hop = 0; hop < 8; hop++) {
    if (functions_[static_cast<std::size_t>(cur)].ann.may_switch) break;
    int next = -1;
    for (int c : callees_[static_cast<std::size_t>(cur)]) {
      if (may_switch_[static_cast<std::size_t>(c)]) {
        next = c;
        break;
      }
    }
    if (next < 0) break;
    path += " -> " + functions_[static_cast<std::size_t>(next)].simple;
    cur = next;
  }
  return path;
}

void Analyzer::Report(int fn, int line, const std::string& rule, const std::string& msg) {
  diags_.push_back(Diagnostic{files_[static_cast<std::size_t>(functions_[static_cast<std::size_t>(fn)].file)].path,
                              line, rule, msg});
}

// ---- R1: tls-across-switch -------------------------------------------------

void Analyzer::CheckTlsAcrossSwitch() {
  for (std::size_t i = 0; i < functions_.size(); i++) {
    const Function& fn = functions_[i];
    if (!fn.has_body) continue;
    const auto& toks = files_[static_cast<std::size_t>(fn.file)].tokens;
    auto text = [&](int p) -> const std::string& { return toks[static_cast<std::size_t>(p)].text; };
    auto line_of = [&](int p) { return toks[static_cast<std::size_t>(p)].line; };
    auto is_returns_tls_call = [&](int p) {
      if (toks[static_cast<std::size_t>(p)].kind != Tok::kIdent || text(p + 1) != "(") return false;
      for (const Function& g : functions_) {
        if (g.simple == text(p) && g.ann.returns_tls) return true;
      }
      return false;
    };
    // A TLS *address* source: &errno, &<thread_local var>, __errno_location()
    // or a SKYLOFT_RETURNS_TLS call — unless immediately dereferenced, which
    // re-derives on every evaluation and is the sanctioned pattern.
    auto is_addr_source = [&](int p) {
      const bool deref = p > fn.body_begin && text(p - 1) == "*";
      if (text(p) == "&" && p + 1 < fn.body_end &&
          (text(p + 1) == "errno" || tls_variables_.count(text(p + 1)) != 0)) {
        return true;
      }
      if (deref) return false;
      if (text(p) == "__errno_location" && text(p + 1) == "(") return true;
      return is_returns_tls_call(p);
    };

    // May-switch call positions within the body.
    std::vector<int> switch_pos;
    std::vector<std::string> switch_name;
    for (const CallSite& cs : fn.calls) {
      if (CallMaySwitch(cs)) {
        switch_pos.push_back(cs.pos);
        switch_name.push_back(cs.name);
      }
    }

    // R1a: a variable bound to a TLS-derived address, used after a
    // may-switch call that follows the binding.
    if (!switch_pos.empty()) {
      for (int p = fn.body_begin; p + 2 < fn.body_end; p++) {
        if (toks[static_cast<std::size_t>(p)].kind != Tok::kIdent || text(p + 1) != "=") continue;
        // RHS scan to the statement end.
        int stmt_end = p + 2;
        bool tls_rhs = false;
        while (stmt_end < fn.body_end && text(stmt_end) != ";") {
          if (is_addr_source(stmt_end)) tls_rhs = true;
          stmt_end++;
        }
        if (!tls_rhs) continue;
        const std::string var = text(p);
        for (std::size_t s = 0; s < switch_pos.size(); s++) {
          if (switch_pos[s] <= stmt_end) continue;
          for (int u = switch_pos[s] + 1; u < fn.body_end; u++) {
            if (toks[static_cast<std::size_t>(u)].kind == Tok::kIdent && text(u) == var) {
              Report(static_cast<int>(i), line_of(u), "tls-across-switch",
                     "'" + var + "' holds a TLS-derived address and is used after '" +
                         switch_name[s] + "()' (line " + std::to_string(line_of(switch_pos[s])) +
                         "), which may context-switch");
              u = fn.body_end;     // one report per binding
              s = switch_pos.size() - 1;
            }
          }
        }
      }
    }

    // R1b: raw errno touched on both sides of a may-switch call. glibc marks
    // __errno_location() __attribute__((const)), so the compiler may CSE the
    // location across the switch — after migration it names the wrong
    // thread's errno.
    if (!switch_pos.empty()) {
      std::vector<int> raw;
      for (int p = fn.body_begin; p < fn.body_end; p++) {
        if (text(p) == "errno" || (text(p) == "__errno_location" && text(p + 1) == "(")) {
          raw.push_back(p);
        }
      }
      for (std::size_t s = 0; s < switch_pos.size() && !raw.empty(); s++) {
        const bool before = raw.front() < switch_pos[s];
        int after = -1;
        for (int r : raw) {
          if (r > switch_pos[s]) {
            after = r;
            break;
          }
        }
        if (before && after >= 0) {
          Report(static_cast<int>(i), line_of(after), "tls-across-switch",
                 "errno is accessed on both sides of '" + switch_name[s] + "()' (line " +
                     std::to_string(line_of(switch_pos[s])) +
                     "), which may context-switch; the const-attributed __errno_location may "
                     "be CSE'd across it — re-derive via a SKYLOFT_RETURNS_TLS helper");
          break;
        }
      }
    }

    // R1c: returning a TLS-derived address demands the SKYLOFT_RETURNS_TLS
    // annotation, so callers are checked instead of trusted.
    if (!fn.ann.returns_tls) {
      for (int p = fn.body_begin; p < fn.body_end; p++) {
        if (text(p) != "return") continue;
        for (int q = p + 1; q < fn.body_end && text(q) != ";"; q++) {
          if (is_addr_source(q)) {
            Report(static_cast<int>(i), line_of(p), "tls-across-switch",
                   "'" + fn.simple +
                       "' returns a TLS-derived address; annotate it with SKYLOFT_RETURNS_TLS");
            p = fn.body_end;
            break;
          }
        }
      }
    }
  }
}

// ---- R2: preempt-balance ---------------------------------------------------

void Analyzer::CheckPreemptBalance() {
  for (std::size_t i = 0; i < functions_.size(); i++) {
    const Function& fn = functions_[i];
    if (!fn.has_body) continue;
    const auto& toks = files_[static_cast<std::size_t>(fn.file)].tokens;
    auto text = [&](int p) -> const std::string& { return toks[static_cast<std::size_t>(p)].text; };

    // Linear scan with a block stack: a block that returns does not leak its
    // balance delta into the fall-through path (an early-return arm that
    // re-enables preemption must not mask the main path's imbalance).
    struct Block {
      int entry_balance;
      bool returned;
    };
    std::vector<Block> blocks;
    int balance = 0;
    bool saw_counter = false;
    for (int p = fn.body_begin; p < fn.body_end; p++) {
      const std::string& s = text(p);
      if (s == "{") {
        blocks.push_back(Block{balance, false});
        continue;
      }
      if (s == "}") {
        if (!blocks.empty()) {
          if (blocks.back().returned) balance = blocks.back().entry_balance;
          blocks.pop_back();
        }
        continue;
      }
      if (s == "return") {
        if (balance != 0) {
          Report(static_cast<int>(i), toks[static_cast<std::size_t>(p)].line, "preempt-balance",
                 "return with preempt-disable balance " + std::string(balance > 0 ? "+" : "") +
                     std::to_string(balance) + " in '" + fn.simple + "'");
        }
        if (!blocks.empty()) blocks.back().returned = true;
        continue;
      }
      // <preempt_disable/preempt_count counter> (. | ->) fetch_add|fetch_sub (
      // The name filter is deliberately narrow: statistics counters such as
      // `preemptions_` or `preempt_deferrals_` are not disable depths.
      if (toks[static_cast<std::size_t>(p)].kind == Tok::kIdent &&
          (s.find("preempt_disable") != std::string::npos ||
           s.find("preempt_count") != std::string::npos) &&
          p + 3 < fn.body_end &&
          (text(p + 1) == "." || text(p + 1) == "->") && text(p + 3) == "(") {
        if (text(p + 2) == "fetch_add") {
          balance++;
          saw_counter = true;
        } else if (text(p + 2) == "fetch_sub") {
          balance--;
          saw_counter = true;
        }
      }
    }
    if (saw_counter && balance != 0) {
      Report(static_cast<int>(i), fn.line, "preempt-balance",
             "'" + fn.simple + "' exits with preempt-disable balance " +
                 std::string(balance > 0 ? "+" : "") + std::to_string(balance));
    }
  }
}

// ---- R3: signal-unsafe-call ------------------------------------------------

void Analyzer::CheckSignalUnsafeCalls() {
  const auto& deny = SignalDenylist();
  for (std::size_t i = 0; i < functions_.size(); i++) {
    if (!signal_safe_[i] || !functions_[i].has_body) continue;
    const Function& fn = functions_[i];
    const auto& toks = files_[static_cast<std::size_t>(fn.file)].tokens;

    // Path from a signal-safe root for the message.
    std::string via = fn.simple;
    for (int p = signal_parent_[i]; p >= 0; p = signal_parent_[static_cast<std::size_t>(p)]) {
      via = functions_[static_cast<std::size_t>(p)].simple + " -> " + via;
    }

    for (const CallSite& cs : fn.calls) {
      if (deny.count(cs.name) != 0) {
        Report(static_cast<int>(i), cs.line, "signal-unsafe-call",
               "'" + cs.name + "' is not async-signal-safe (reached via " + via + ")");
      }
    }
    for (int p = fn.body_begin; p < fn.body_end; p++) {
      const Token& t = toks[static_cast<std::size_t>(p)];
      if (t.kind != Tok::kIdent || (t.text != "new" && t.text != "delete")) continue;
      // Placement new does not allocate.
      if (t.text == "new" && p + 1 < fn.body_end &&
          toks[static_cast<std::size_t>(p + 1)].text == "(") {
        continue;
      }
      Report(static_cast<int>(i), t.line, "signal-unsafe-call",
             "operator " + t.text + " allocates and is not async-signal-safe (reached via " +
                 via + ")");
    }
  }
}

// ---- R4: switch-in-noswitch ------------------------------------------------

void Analyzer::CheckNoSwitchReach() {
  for (std::size_t i = 0; i < functions_.size(); i++) {
    const Function& fn = functions_[i];
    if (!fn.ann.no_switch) continue;
    if (fn.ann.may_switch) {
      Report(static_cast<int>(i), fn.line, "switch-in-noswitch",
             "'" + fn.simple + "' is annotated both SKYLOFT_NO_SWITCH and SKYLOFT_MAY_SWITCH");
      continue;
    }
    if (!fn.has_body) continue;
    for (const CallSite& cs : fn.calls) {
      if (!CallMaySwitch(cs)) continue;
      // Resolve to a may-switch candidate for the path message.
      int target = -1;
      for (std::size_t t = 0; t < functions_.size(); t++) {
        if (functions_[t].simple == cs.name && may_switch_[t]) {
          target = static_cast<int>(t);
          break;
        }
      }
      Report(static_cast<int>(i), cs.line, "switch-in-noswitch",
             "SKYLOFT_NO_SWITCH function '" + fn.simple + "' calls '" + cs.name +
                 "', which may context-switch (" + SwitchPath(target) + ")");
      break;  // one report per function keeps the signal readable
    }
  }
}

// ---- suppressions ----------------------------------------------------------

void Analyzer::ApplySuppressions() {
  // bad-suppression diagnostics first; they cannot themselves be suppressed.
  for (const FileTokens& file : files_) {
    for (const Suppression& sup : file.suppressions) {
      if (sup.rules.empty()) {
        diags_.push_back(Diagnostic{file.path, sup.line, "bad-suppression",
                                    "skylint:allow requires a rule list: "
                                    "// skylint:allow(<rule>) -- <reason>"});
        continue;
      }
      for (const std::string& r : sup.rules) {
        if (KnownRules().count(r) == 0) {
          diags_.push_back(Diagnostic{file.path, sup.line, "bad-suppression",
                                      "unknown rule '" + r + "' in skylint:allow"});
        }
      }
      if (!sup.has_reason) {
        diags_.push_back(Diagnostic{file.path, sup.line, "bad-suppression",
                                    "skylint:allow is missing its justification: append "
                                    "' -- <reason>'"});
      }
    }
  }

  std::vector<Diagnostic> kept;
  for (const Diagnostic& d : diags_) {
    bool suppressed = false;
    if (d.rule != "bad-suppression") {
      for (FileTokens& file : files_) {
        if (file.path != d.file) continue;
        for (Suppression& sup : file.suppressions) {
          if (!sup.has_reason) continue;  // invalid suppressions suppress nothing
          if (sup.line != d.line && sup.line != d.line - 1) continue;
          if (std::find(sup.rules.begin(), sup.rules.end(), d.rule) == sup.rules.end()) continue;
          suppressed = true;
          sup.used = true;
        }
      }
    }
    if (!suppressed) kept.push_back(d);
  }
  diags_ = std::move(kept);
}

std::vector<Diagnostic> Analyzer::Run() {
  ExtractAll();
  MergeAnnotations();
  BuildCallGraph();
  ComputeMaySwitch();
  ComputeSignalClosure();
  ComputeWorkerClosure();
  ComputeLockSummaries();
  CheckTlsAcrossSwitch();
  CheckPreemptBalance();
  CheckSignalUnsafeCalls();
  CheckNoSwitchReach();
  CheckLockDiscipline();
  CheckLockOrderCycles();
  CheckBlockingOnWorker();
  ApplySuppressions();
  std::sort(diags_.begin(), diags_.end());
  diags_.erase(std::unique(diags_.begin(), diags_.end()), diags_.end());
  return diags_;
}

void Analyzer::Dump() const {
  std::printf("== functions (%zu) ==\n", functions_.size());
  for (std::size_t i = 0; i < functions_.size(); i++) {
    const Function& fn = functions_[i];
    std::printf("%s%s%s%s%s%s%s %s  [%s:%d]%s calls=%zu\n",
                may_switch_.empty() ? "" : (may_switch_[i] ? "S" : "-"),
                signal_safe_.empty() ? "" : (signal_safe_[i] ? "H" : "-"),
                on_worker_.empty() ? "" : (on_worker_[i] ? "W" : "-"),
                fn.ann.no_switch ? "N" : "-", fn.ann.returns_tls ? "T" : "-",
                fn.ann.blocking ? "B" : "-",
                fn.has_body ? "D" : "d", fn.qualified.c_str(),
                files_[static_cast<std::size_t>(fn.file)].path.c_str(), fn.line,
                fn.ann.may_switch ? " [MAY_SWITCH]" : "", fn.calls.size());
  }
  std::printf("== tls variables ==\n");
  for (const std::string& v : tls_variables_) std::printf("  %s\n", v.c_str());
  std::printf("== lock summaries (nonempty) ==\n");
  for (std::size_t i = 0; i < functions_.size() && i < summaries_.size(); i++) {
    const LockSummary& s = summaries_[i];
    const auto& req = functions_[i].ann.requires_held;
    if (s.acquires.empty() && s.releases.empty() && req.empty()) continue;
    std::string line = "  " + functions_[i].qualified;
    auto join = [](const std::set<std::string>& set) {
      std::string out;
      for (const std::string& l : set) out += (out.empty() ? "" : ",") + l;
      return out;
    };
    if (!s.acquires.empty()) line += " acquires{" + join(s.acquires) + "}";
    if (!s.releases.empty()) line += " releases{" + join(s.releases) + "}";
    if (!req.empty()) line += " requires{" + join(req) + "}";
    std::printf("%s\n", line.c_str());
  }
  std::printf("== lock-order graph (acquired-while-holding) ==\n");
  for (const auto& e : lock_edges_) {
    std::printf("  %s -> %s  [%s:%d]\n", e.first.first.c_str(), e.first.second.c_str(),
                files_[static_cast<std::size_t>(e.second.file)].path.c_str(), e.second.line);
  }
}

}  // namespace skylint
