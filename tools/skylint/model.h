// Program model skylint extracts from the token streams: functions with
// their annotations and body ranges, thread-local variables, call sites.
#ifndef TOOLS_SKYLINT_MODEL_H_
#define TOOLS_SKYLINT_MODEL_H_

#include <set>
#include <string>
#include <vector>

#include "tools/skylint/token.h"

namespace skylint {

// The annotation macros from src/base/compiler.h, seen as bare identifiers
// in declaration signatures (skylint does not preprocess).
struct Annotations {
  bool may_switch = false;   // SKYLOFT_MAY_SWITCH
  bool no_switch = false;    // SKYLOFT_NO_SWITCH
  bool signal_safe = false;  // SKYLOFT_SIGNAL_SAFE
  bool returns_tls = false;  // SKYLOFT_RETURNS_TLS
  bool blocking = false;     // SKYLOFT_BLOCKING

  // Lock classes from SKYLOFT_ACQUIRES/RELEASES/REQUIRES(l). The argument
  // is a lock-class identifier, taken verbatim.
  std::set<std::string> acquires;
  std::set<std::string> releases;
  std::set<std::string> requires_held;

  bool HasLockAnnotation() const { return !acquires.empty() || !releases.empty(); }

  void Merge(const Annotations& o) {
    may_switch |= o.may_switch;
    no_switch |= o.no_switch;
    signal_safe |= o.signal_safe;
    returns_tls |= o.returns_tls;
    blocking |= o.blocking;
    acquires.insert(o.acquires.begin(), o.acquires.end());
    releases.insert(o.releases.begin(), o.releases.end());
    requires_held.insert(o.requires_held.begin(), o.requires_held.end());
  }
};

struct CallSite {
  std::string name;  // unqualified callee name
  int line = 0;
  int pos = 0;  // token index into the owning file's stream
};

struct Function {
  std::string qualified;  // scope-joined, e.g. skyloft::Runtime::Park
  std::string simple;     // Park
  int file = -1;          // index into the analyzer's file list
  int line = 0;           // line of the name token
  Annotations ann;        // effective (merged decl+def) annotations
  bool has_body = false;
  int body_begin = 0;  // token range (begin inclusive, end exclusive)
  int body_end = 0;
  std::vector<CallSite> calls;  // filled by the analyzer for definitions
};

// Result of parsing one file.
struct ParsedFile {
  std::vector<Function> functions;       // definitions and declarations
  std::set<std::string> tls_variables;  // names declared thread_local/__thread
};

ParsedFile ParseFile(const FileTokens& file, int file_index);

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  bool operator<(const Diagnostic& o) const {
    if (file != o.file) return file < o.file;
    if (line != o.line) return line < o.line;
    if (rule != o.rule) return rule < o.rule;
    return message < o.message;
  }
  bool operator==(const Diagnostic& o) const {
    return file == o.file && line == o.line && rule == o.rule && message == o.message;
  }
};

}  // namespace skylint

#endif  // TOOLS_SKYLINT_MODEL_H_
