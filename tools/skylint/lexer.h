#ifndef TOOLS_SKYLINT_LEXER_H_
#define TOOLS_SKYLINT_LEXER_H_

#include <string>

#include "tools/skylint/token.h"

namespace skylint {

// Tokenizes C++ source text. Comments and preprocessor directives are
// consumed (not emitted as tokens); `skylint:allow` comments are parsed into
// FileTokens::suppressions.
FileTokens Lex(const std::string& path, const std::string& text);

}  // namespace skylint

#endif  // TOOLS_SKYLINT_LEXER_H_
