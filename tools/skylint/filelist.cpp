#include "tools/skylint/filelist.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace skylint {

namespace fs = std::filesystem;

namespace {

bool HasSourceExtension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".h" || ext == ".hpp";
}

// Reads one JSON string starting at text[i] == '"'; returns the decoded
// value and leaves i just past the closing quote. Escapes beyond backslash
// and quote are passed through undecoded — paths do not need them.
std::string ReadJsonString(const std::string& text, std::size_t& i) {
  std::string out;
  i++;  // opening quote
  while (i < text.size() && text[i] != '"') {
    if (text[i] == '\\' && i + 1 < text.size()) {
      out += text[i + 1];
      i += 2;
      continue;
    }
    out += text[i++];
  }
  if (i < text.size()) i++;  // closing quote
  return out;
}

}  // namespace

std::vector<std::string> ReadCompileCommands(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  std::vector<std::string> files;
  std::string directory, file;
  int depth = 0;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '{') {
      depth++;
      directory.clear();
      file.clear();
      i++;
      continue;
    }
    if (c == '}') {
      depth--;
      if (!file.empty()) {
        fs::path p(file);
        if (p.is_relative() && !directory.empty()) p = fs::path(directory) / p;
        files.push_back(p.lexically_normal().string());
      }
      i++;
      continue;
    }
    if (c == '"' && depth == 1) {
      const std::string key = ReadJsonString(text, i);
      // Skip to the value.
      while (i < text.size() && (text[i] == ':' || text[i] == ' ' || text[i] == '\n')) i++;
      if (i < text.size() && text[i] == '"') {
        const std::string value = ReadJsonString(text, i);
        if (key == "directory") directory = value;
        if (key == "file") file = value;
      }
      continue;
    }
    i++;
  }
  return files;
}

std::vector<std::string> CollectFiles(const std::string& root,
                                      const std::string& compile_commands) {
  const fs::path src_dir = fs::path(root) / "src";
  std::set<std::string> out;

  auto add = [&](const fs::path& p) {
    std::error_code ec;
    const fs::path rel = fs::relative(p, root, ec);
    out.insert(ec || rel.empty() ? p.string() : rel.string());
  };

  if (!compile_commands.empty()) {
    std::error_code ec;
    const fs::path src_abs = fs::absolute(src_dir, ec);
    for (const std::string& f : ReadCompileCommands(compile_commands)) {
      const fs::path p = fs::absolute(fs::path(f), ec);
      const std::string ps = p.lexically_normal().string();
      const std::string prefix = src_abs.lexically_normal().string();
      if (ps.rfind(prefix, 0) == 0 && HasSourceExtension(p) && fs::exists(p, ec)) {
        add(p);
      }
    }
  }

  const bool from_db = !out.empty();
  std::error_code ec;
  for (fs::recursive_directory_iterator it(src_dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    const fs::path& p = it->path();
    if (!HasSourceExtension(p)) continue;
    // With a database, only headers are globbed in (TU list comes from it);
    // without one, everything under src/ is analyzed.
    const std::string ext = p.extension().string();
    if (from_db && ext != ".h" && ext != ".hpp") continue;
    add(p);
  }

  std::vector<std::string> files(out.begin(), out.end());
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace skylint
