#ifndef TOOLS_SKYLINT_FILELIST_H_
#define TOOLS_SKYLINT_FILELIST_H_

#include <string>
#include <vector>

namespace skylint {

// Extracts the analyzed file set.
//
// Preferred source of truth is compile_commands.json (written by CMake with
// CMAKE_EXPORT_COMPILE_COMMANDS) so skylint and editor tooling agree on what
// is built; entries outside `root`/src are dropped and headers under
// `root`/src are globbed in (compilation databases list only TUs). When the
// database is missing or empty the fallback is a plain glob of `root`/src.
// Returned paths are relative to `root` and sorted.
std::vector<std::string> CollectFiles(const std::string& root,
                                      const std::string& compile_commands);

// Minimal compilation-database reader: returns the "file" entry of every
// command object, resolved against its "directory" when relative. Returns an
// empty list when the file cannot be read or parsed.
std::vector<std::string> ReadCompileCommands(const std::string& path);

}  // namespace skylint

#endif  // TOOLS_SKYLINT_FILELIST_H_
