#include "src/kernelsim/kernel_sim.h"

#include "src/base/logging.h"

namespace skyloft {

KernelSim::KernelSim(Machine* machine, UintrChip* chip)
    : machine_(machine), chip_(chip), isolated_(static_cast<std::size_t>(machine->num_cores()), false) {
  metrics_.LinkCounter("app_switches", &counters_.app_switches);
  metrics_.LinkCounter("parks", &counters_.parks);
  metrics_.LinkCounter("wakeups", &counters_.wakeups);
  metrics_.LinkCounter("timer_programs", &counters_.timer_programs);
  metrics_.LinkCounter("signals_sent", &counters_.signals_sent);
  metrics_.LinkCounter("kernel_ipis_sent", &counters_.kernel_ipis_sent);
}

Tid KernelSim::CreateThread(int app_id) {
  auto kt = std::make_unique<KernelThread>();
  kt->tid = static_cast<Tid>(threads_.size());
  kt->app_id = app_id;
  kt->state = KthreadState::kRunnable;
  threads_.push_back(std::move(kt));
  return threads_.back()->tid;
}

KernelThread& KernelSim::thread(Tid tid) {
  SKYLOFT_CHECK(tid >= 0 && tid < static_cast<Tid>(threads_.size()));
  return *threads_[static_cast<std::size_t>(tid)];
}

const KernelThread& KernelSim::thread(Tid tid) const {
  SKYLOFT_CHECK(tid >= 0 && tid < static_cast<Tid>(threads_.size()));
  return *threads_[static_cast<std::size_t>(tid)];
}

void KernelSim::IsolateCores(const std::vector<CoreId>& cores) {
  for (CoreId core : cores) {
    SKYLOFT_CHECK(core >= 0 && core < machine_->num_cores());
    isolated_[static_cast<std::size_t>(core)] = true;
  }
}

bool KernelSim::IsIsolated(CoreId core) const {
  return isolated_[static_cast<std::size_t>(core)];
}

void KernelSim::BindToCore(Tid tid, CoreId core) {
  KernelThread& kt = thread(tid);
  SKYLOFT_CHECK(kt.state != KthreadState::kExited);
  kt.affinity = core;
  if (IsIsolated(core) && kt.state == KthreadState::kRunnable) {
    SKYLOFT_CHECK(CountRunnableBound(core) <= 1)
        << "Single Binding Rule violated binding tid " << tid << " to core " << core;
  }
}

KernelThread* KernelSim::ActiveOn(CoreId core) {
  for (auto& kt : threads_) {
    if (kt->affinity == core && kt->state == KthreadState::kRunnable) {
      return kt.get();
    }
  }
  return nullptr;
}

int KernelSim::CountRunnableBound(CoreId core) const {
  int n = 0;
  for (const auto& kt : threads_) {
    if (kt->affinity == core && kt->state == KthreadState::kRunnable) {
      n++;
    }
  }
  return n;
}

DurationNs KernelSim::SkyloftParkOnCpu(Tid tid, CoreId core) {
  KernelThread& kt = thread(tid);
  counters_.parks.Inc();
  SKYLOFT_CHECK(kt.state == KthreadState::kRunnable);
  kt.affinity = core;
  kt.state = KthreadState::kSuspended;
  return machine_->costs().syscall_ns;
}

DurationNs KernelSim::SkyloftSwitchTo(Tid cur, Tid target) {
  KernelThread& from = thread(cur);
  KernelThread& to = thread(target);
  counters_.app_switches.Inc();
  SKYLOFT_CHECK(from.state == KthreadState::kRunnable)
      << "switch_to from a non-runnable thread " << cur;
  SKYLOFT_CHECK(to.state == KthreadState::kSuspended)
      << "switch_to target " << target << " is not suspended";
  SKYLOFT_CHECK(from.affinity == to.affinity)
      << "switch_to across cores: " << from.affinity << " vs " << to.affinity;
  // Both transitions happen atomically in the kernel so the Single Binding
  // Rule holds at every observable instant (§3.3).
  from.state = KthreadState::kSuspended;
  to.state = KthreadState::kRunnable;
  CheckBindingRule();
  return machine_->costs().skyloft_app_switch_ns;
}

DurationNs KernelSim::SkyloftWakeup(Tid tid) {
  KernelThread& kt = thread(tid);
  counters_.wakeups.Inc();
  SKYLOFT_CHECK(kt.state == KthreadState::kSuspended);
  kt.state = KthreadState::kRunnable;
  if (kt.affinity != kInvalidCore && IsIsolated(kt.affinity)) {
    SKYLOFT_CHECK(CountRunnableBound(kt.affinity) <= 1)
        << "Single Binding Rule violated waking tid " << tid << " on core " << kt.affinity;
  }
  return machine_->costs().syscall_ns;
}

DurationNs KernelSim::SkyloftTimerEnable(CoreId core, Upid* upid) {
  UserInterruptUnit& unit = chip_->unit(core);
  counters_.timer_programs.Inc();
  // §3.2 configuration step 1: recognize the LAPIC timer vector as a user
  // interrupt. The UPID has SN set so self-SENDUIPIs post without IPIs.
  upid->sn = true;
  upid->ndst = core;
  upid->nv = kApicTimerVector;
  unit.SetUinv(kApicTimerVector);
  unit.SetActiveUpid(upid);
  return machine_->costs().syscall_ns;
}

DurationNs KernelSim::SkyloftTimerSetHz(CoreId core, std::int64_t hz) {
  ApicTimer& timer = chip_->timer(core);
  counters_.timer_programs.Inc();
  if (timer.enabled() && timer.hz() == hz) {
    // Redundant reprogram: the periodic tick stream is already armed at this
    // frequency; keep its event node in place instead of restarting the
    // period (the dominant caller re-issues the ioctl with the same rate).
    return machine_->costs().syscall_ns;
  }
  timer.SetHz(hz);
  timer.Enable();
  return machine_->costs().syscall_ns;
}

DurationNs KernelSim::SendSignal(CoreId from_core, Tid tid, SignalHandler handler) {
  const KernelThread& kt = thread(tid);
  counters_.signals_sent.Inc();
  SKYLOFT_CHECK(kt.state != KthreadState::kExited);
  const CostModel& costs = machine_->costs();
  machine_->sim().ScheduleAfter(costs.SignalDeliveryNs(),
                                [handler = std::move(handler)] { handler(); });
  return costs.SignalSendNs();
}

DurationNs KernelSim::SendKernelIpi(CoreId from_core, CoreId to_core, SignalHandler handler) {
  counters_.kernel_ipis_sent.Inc();
  const CostModel& costs = machine_->costs();
  machine_->sim().ScheduleAfter(costs.KernelIpiDeliveryNs(),
                                [handler = std::move(handler)] { handler(); });
  return costs.KernelIpiSendNs();
}

void KernelSim::CheckBindingRule() const {
  for (CoreId core = 0; core < machine_->num_cores(); core++) {
    if (!IsIsolated(core)) {
      continue;
    }
    SKYLOFT_CHECK(CountRunnableBound(core) <= 1)
        << "Single Binding Rule violated on core " << core;
  }
}

}  // namespace skyloft
