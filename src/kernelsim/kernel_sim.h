// Simulated Linux kernel: kernel threads, affinity, signals, kernel IPIs,
// and the Skyloft kernel module (§3.3, §4.2, Table 3).
//
// The pieces modeled are exactly those the paper's framework interacts with:
//   - kernel threads with runnable/suspended state and per-core binding
//   - the Single Binding Rule: no two *runnable* kernel threads may be bound
//     to the same isolated core (checked on every transition)
//   - the /dev/skyloft ioctl surface: skyloft_park_on_cpu, skyloft_switch_to,
//     skyloft_wakeup, skyloft_timer_enable, skyloft_timer_set_hz
//   - Linux signal delivery and kernel IPIs with Table 6 costs (used by the
//     Shenango/ghOSt baselines and the Table 6 microbenchmark)
#ifndef SRC_KERNELSIM_KERNEL_SIM_H_
#define SRC_KERNELSIM_KERNEL_SIM_H_

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/base/compiler.h"
#include "src/base/metrics.h"
#include "src/simcore/machine.h"
#include "src/uintr/uintr_chip.h"

namespace skyloft {

// Kernel-side operation counts: the ioctl surface plus the two legacy
// notification mechanisms (signals, kernel IPIs) the baselines lean on.
struct KernelSimCounters {
  Counter app_switches;      // skyloft_switch_to calls
  Counter parks;             // skyloft_park_on_cpu calls
  Counter wakeups;           // skyloft_wakeup calls
  Counter timer_programs;    // skyloft_timer_enable/set_hz calls
  Counter signals_sent;      // SendSignal (Shenango-style preemption)
  Counter kernel_ipis_sent;  // SendKernelIpi (ghOSt-style preemption)
};

using Tid = int;
inline constexpr Tid kInvalidTid = -1;

enum class KthreadState {
  kRunnable,   // visible to the kernel scheduler ("active" in the paper)
  kSuspended,  // parked/blocked; invisible to the kernel scheduler ("inactive")
  kExited,
};

struct KernelThread {
  Tid tid = kInvalidTid;
  int app_id = -1;
  CoreId affinity = kInvalidCore;
  KthreadState state = KthreadState::kRunnable;
};

class KernelSim {
 public:
  using SignalHandler = std::function<void()>;
  using IpiHandler = std::function<void(CoreId core)>;

  KernelSim(Machine* machine, UintrChip* chip);

  // ---- Thread lifecycle (pthread_create / sched_setaffinity analogues) ----
  Tid CreateThread(int app_id);
  KernelThread& thread(Tid tid);
  const KernelThread& thread(Tid tid) const;

  // Marks cores as isolated (isolcpus): the Single Binding Rule is enforced
  // on these cores and the stock kernel scheduler keeps off them.
  void IsolateCores(const std::vector<CoreId>& cores);
  bool IsIsolated(CoreId core) const;

  // Binds a runnable thread to a core (daemon startup path: bind directly).
  SKYLOFT_NO_SWITCH void BindToCore(Tid tid, CoreId core);

  // The runnable kernel thread bound to `core`, or nullptr.
  KernelThread* ActiveOn(CoreId core);

  // ---- Skyloft kernel module (Table 3). Each returns the time the calling
  // core is busy executing the operation (ioctl + kernel work), which the
  // caller must charge before proceeding. ----

  // Binds the thread to `core` and suspends it in one atomic step (used when
  // a non-first application launches, §4.1). Switch primitive: the calling
  // kernel thread is suspended and another may take the core.
  SKYLOFT_MAY_SWITCH DurationNs SkyloftParkOnCpu(Tid tid, CoreId core);

  // Suspends `cur` and wakes `target` atomically; both must be bound to the
  // same isolated core. This is the inter-application switch (§3.3) and costs
  // the measured 1905 ns.
  SKYLOFT_MAY_SWITCH DurationNs SkyloftSwitchTo(Tid cur, Tid target);

  // Wakes a suspended thread (it becomes the active thread on its core).
  // The *caller* keeps running — wakeup alone never switches this context.
  SKYLOFT_NO_SWITCH DurationNs SkyloftWakeup(Tid tid);

  // Configures user-space timer-interrupt delegation on `core` (§4.2): sets
  // UINV to the LAPIC timer vector and installs `upid` (with SN pre-set) as
  // the core's active UPID. The caller still must execute the initial
  // self-SENDUIPI to populate the PIR.
  SKYLOFT_NO_SWITCH DurationNs SkyloftTimerEnable(CoreId core, Upid* upid);

  // Programs the LAPIC timer frequency on `core`.
  SKYLOFT_NO_SWITCH DurationNs SkyloftTimerSetHz(CoreId core, std::int64_t hz);

  // ---- Signals (Table 6 "Signal" row; used by Shenango-style preemption) ----
  // Sends a signal from `from_core` to the thread `tid`; `handler` runs on
  // the target's core after the modeled delivery latency. Returns sender cost.
  SKYLOFT_NO_SWITCH DurationNs SendSignal(CoreId from_core, Tid tid, SignalHandler handler);

  // Receiver-side cost of taking a signal (context save, kernel entry/exit).
  DurationNs SignalReceiveCost() const { return machine_->costs().SignalReceiveNs(); }

  // ---- Kernel IPIs (Table 6 "Kernel IPI" row; used by the ghOSt model) ----
  SKYLOFT_NO_SWITCH DurationNs SendKernelIpi(CoreId from_core, CoreId to_core,
                                             SignalHandler handler);
  DurationNs KernelIpiReceiveCost() const { return machine_->costs().KernelIpiReceiveNs(); }

  // Verifies the Single Binding Rule on every isolated core; aborts on
  // violation. Tests call this after random operation sequences.
  SKYLOFT_NO_SWITCH void CheckBindingRule() const;

  Machine& machine() { return *machine_; }
  UintrChip& chip() { return *chip_; }

  // Measured kernel operation volume since construction.
  const KernelSimCounters& counters() const { return counters_; }

 private:
  int CountRunnableBound(CoreId core) const;

  Machine* machine_;
  UintrChip* chip_;
  std::vector<std::unique_ptr<KernelThread>> threads_;
  std::vector<bool> isolated_;
  KernelSimCounters counters_;
  MetricGroup metrics_{"kernelsim"};
};

}  // namespace skyloft

#endif  // SRC_KERNELSIM_KERNEL_SIM_H_
