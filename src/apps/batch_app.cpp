#include "src/apps/batch_app.h"

namespace skyloft {

void BatchAppDriver::Start() {
  for (int i = 0; i < options_.tasks; i++) {
    Task* task = engine_->NewTask(app_, options_.chunk_ns, /*kind=*/3);
    // Each chunk completion immediately queues the next chunk; the task
    // effectively never finishes, it just keeps yielding the CPU back to the
    // scheduler at chunk boundaries.
    task->on_segment_end = [this](Task* t) {
      engine_->machine().sim().ScheduleAfter(
          0, [this, t] { engine_->WakeTask(t, options_.chunk_ns); });
      return SegmentAction::kBlock;
    };
    tasks_.push_back(task);
    engine_->Submit(task);
  }
}

}  // namespace skyloft
