#include "src/apps/workloads.h"

namespace skyloft {

RequestMix DispersiveMix() {
  return {
      {0.995, ServiceTimeDist::Fixed(Micros(4)), kKindShort},
      {0.005, ServiceTimeDist::Fixed(Millis(10)), kKindLong},
  };
}

RequestMix MemcachedUsrMix() {
  return {
      {0.998, ServiceTimeDist::Fixed(1000), kKindShort},   // GET ~1 us
      {0.002, ServiceTimeDist::Fixed(1200), kKindLong},    // SET slightly heavier
  };
}

RequestMix RocksdbBimodalMix() {
  return {
      {0.5, ServiceTimeDist::Fixed(950), kKindShort},          // GET: 0.95 us
      {0.5, ServiceTimeDist::Fixed(Micros(591)), kKindLong},   // SCAN: 591 us
  };
}

}  // namespace skyloft
