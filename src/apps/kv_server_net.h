// Networked KV server on the Skyloft host runtime (DESIGN.md section 10).
//
// This is the production serving path for the paper's §5.3 Memcached-style
// scenario: the in-memory KvStore served over *real* TCP and UDP sockets by
// uthreads on the M:N runtime, with per-worker I/O engine cores
// (src/runtime/io_engine) turning socket readiness into park/unpark wakeups.
//
// Architecture (one slice per runtime worker):
//   - a SO_REUSEPORT TCP listener + UDP socket per worker, registered with
//     that worker's engine, so the kernel shards connections/datagrams at
//     accept time and an fd never changes engines;
//   - an acceptor uthread per listener draining accepts in batches;
//   - one handler uthread per TCP connection: WaitForReadable -> drain ->
//     frame-decode (src/net/frame) -> serve -> respond via writev of
//     per-connection scatter/gather buffers (frame header and payload are
//     separate iovecs; nothing is concatenated);
//   - a UDP uthread per worker serving one frame per datagram.
//
// Every server loop has TWO data paths selected per handle at runtime:
//   - readiness (epoll, or io_uring POLL_ADD fallback): the classic
//     accept4/read/writev/recvfrom/sendto loops above, self-reporting their
//     syscalls via IoEngine::CountSys* for the syscalls/request metric;
//   - completion (io_uring with multishot + provided buffer rings): accepts
//     arrive via TakeAccepted, request bytes via PopRecv from kernel-filled
//     provided buffers (recycled after FrameDecoder::Feed), and responses go
//     out through the engine's async send queue (SendEnqueue) — the steady
//     state makes zero syscalls per request; the engine batches one
//     io_uring_enter per poll round.
// Register() picks the path: completion-mode registrations degrade to
// readiness automatically when the engine lacks completion support, so one
// binary serves both and the loops branch on IoHandle::cs.
//
// Handler uthreads are ordinary runtime uthreads: they migrate via work
// stealing, while their fd's readiness keeps firing on the home engine —
// exercising the remote-enqueue mailbox path of the lock-free runqueues.
//
// The store is striped: a spin-locked (SpinBackoff + PreemptGuard) lock
// table sized from the worker count replaces the old example's 8 global
// UthreadMutex shards, and per-op-kind service latencies land in the
// metrics registry ("kv_server" group) instead of a hand-rolled histogram.
#ifndef SRC_APPS_KV_SERVER_NET_H_
#define SRC_APPS_KV_SERVER_NET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/kvstore.h"
#include "src/base/compiler.h"
#include "src/base/histogram.h"
#include "src/base/metrics.h"
#include "src/runtime/uthread.h"

namespace skyloft {

struct IoHandle;

// The KV request text protocol carried in each frame payload:
//   "GET <key>" | "SET <key> <value>" | "SCAN <start> <limit>"
// Replies: "VALUE <v>" | "NOT_FOUND" | "STORED" | "<k>=<v>;..." | "EMPTY" |
// "ERROR".
enum class KvOpKind { kGet = 0, kSet = 1, kScan = 2, kError = 3 };

// KvStore sharded across a striped spin-lock table. Stripes are cache-line
// separated and sized from the worker count (4x workers, rounded up to a
// power of two, min 8) so the GET fast path of co-scheduled workers rarely
// collides — the contention hot spot the old fixed-8-shard example hid.
// Critical sections are short and preemption-guarded, so a SpinBackoff
// spinlock beats a parking mutex here.
class KvStripedStore {
 public:
  explicit KvStripedStore(int workers, int stripes_override = 0);

  // Serves one request, recording service latency into the per-kind lane
  // histograms. `lane` spreads latency recording across lanes (callers pass
  // the uthread id); any value is safe.
  std::string Serve(const std::string& request, std::uint64_t lane);

  // Direct store access for preloading (single-threaded setup only).
  void Preload(const std::string& key, const std::string& value);

  int stripes() const { return static_cast<int>(stripes_.size()); }

  // Merges the per-lane service-time recordings into the per-kind summary
  // histograms linked in the metrics registry ("kv_server.get_ns", ...).
  // Call while serving is quiesced (after Stop()).
  void MergeLatencies();
  const LatencyHistogram& latency(KvOpKind kind) const {
    return merged_[static_cast<int>(kind)];
  }

 private:
  struct alignas(kCacheLineSize) Stripe {
    std::atomic_flag spin = ATOMIC_FLAG_INIT;
    KvStore store;
  };
  // Latency recording lane: a short spinlock per lane keeps LatencyHistogram
  // (not internally thread-safe) consistent without a global bottleneck.
  struct alignas(kCacheLineSize) LatencyLane {
    std::atomic_flag spin = ATOMIC_FLAG_INIT;
    LatencyHistogram hist[4];  // indexed by KvOpKind
  };

  SKYLOFT_NO_SWITCH Stripe& StripeOf(const std::string& key);
  SKYLOFT_NO_SWITCH static void SpinLock(std::atomic_flag& flag);
  SKYLOFT_NO_SWITCH static void SpinUnlock(std::atomic_flag& flag);

  // Annotated wrappers over the raw flag spin: stripe and lane locks are
  // distinct lock classes, so skylint's order graph can tell nesting of a
  // data stripe inside a latency lane apart from stripe-vs-stripe.
  SKYLOFT_NO_SWITCH SKYLOFT_ACQUIRES(kv_stripe) static void LockStripe(Stripe& s);
  SKYLOFT_NO_SWITCH SKYLOFT_RELEASES(kv_stripe) static void UnlockStripe(Stripe& s);
  SKYLOFT_NO_SWITCH SKYLOFT_ACQUIRES(kv_lane) static void LockLane(LatencyLane& l);
  SKYLOFT_NO_SWITCH SKYLOFT_RELEASES(kv_lane) static void UnlockLane(LatencyLane& l);

  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::vector<std::unique_ptr<LatencyLane>> lanes_;
  LatencyHistogram merged_[4];
};

struct KvServerNetOptions {
  bool tcp = true;
  bool udp = true;
  std::uint16_t tcp_port = 0;  // 0 = kernel-assigned; read back via tcp_port()
  std::uint16_t udp_port = 0;
  int accept_batch = 64;   // accepts drained per readiness edge
  int udp_batch = 64;      // datagrams drained per readiness edge
  int listen_backlog = 4096;
  int lock_stripes = 0;    // 0 = derived from worker count
  int preload_keys = 10'000;
  std::size_t read_buffer = 4096;  // per-connection heap read buffer
};

// One serving instance. Lifecycle (all inside Runtime::Run, uthread context):
//   KvServerNet server(&rt, options);
//   server.Start();   // binds, registers, spawns server uthreads
//   ... drive load ...
//   server.Stop();    // interrupts waits, joins server uthreads
class KvServerNet {
 public:
  KvServerNet(Runtime* rt, const KvServerNetOptions& options);
  ~KvServerNet();

  SKYLOFT_MAY_SWITCH void Start();
  SKYLOFT_MAY_SWITCH void Stop();

  std::uint16_t tcp_port() const { return tcp_port_; }
  std::uint16_t udp_port() const { return udp_port_; }
  KvStripedStore& store() { return store_; }

  std::uint64_t tcp_connections() const { return tcp_conns_->Value(); }
  std::uint64_t tcp_requests() const { return tcp_requests_->Value(); }
  std::uint64_t udp_requests() const { return udp_requests_->Value(); }
  std::uint64_t frame_errors() const { return frame_errors_->Value(); }
  std::uint64_t peer_resets() const { return peer_resets_->Value(); }
  std::int64_t open_connections() const { return open_conns_.load(std::memory_order_relaxed); }

 private:
  struct Listener;  // per-worker listener/udp state

  SKYLOFT_MAY_SWITCH void AcceptLoop(Listener* listener);
  SKYLOFT_MAY_SWITCH void HandleConn(IoHandle* handle);
  SKYLOFT_MAY_SWITCH void UdpLoop(Listener* listener);
  // Per-data-path bodies of HandleConn/UdpLoop (see the file comment).
  // The Conn loops return true when the connection died by peer reset.
  SKYLOFT_MAY_SWITCH bool ConnLoopReadiness(IoHandle* handle, std::uint64_t lane);
  SKYLOFT_MAY_SWITCH bool ConnLoopCompletion(IoHandle* handle, std::uint64_t lane);
  SKYLOFT_MAY_SWITCH void UdpLoopCompletion(Listener* listener, std::uint64_t lane);

  void TrackConn(IoHandle* handle);
  // Returns false if Stop() already interrupted (and will not re-interrupt)
  // this handle — i.e. the handle was no longer in the registry.
  bool UntrackConn(IoHandle* handle);

  Runtime* rt_;
  KvServerNetOptions options_;
  KvStripedStore store_;
  std::vector<std::unique_ptr<Listener>> listeners_;
  std::uint16_t tcp_port_ = 0;
  std::uint16_t udp_port_ = 0;

  std::atomic<bool> stop_{false};
  std::atomic<int> live_server_uthreads_{0};
  std::atomic<std::int64_t> open_conns_{0};

  // Live TCP connection registry, for Stop() to interrupt parked handlers.
  // Interrupt happens under the same spinlock as untrack, so a handle is
  // never interrupted after its handler began deregistration. Lock class
  // `conns_registry`; hold windows must stay switch-free (skylint R5).
  SKYLOFT_NO_SWITCH SKYLOFT_ACQUIRES(conns_registry) void LockConns();
  SKYLOFT_NO_SWITCH SKYLOFT_RELEASES(conns_registry) void UnlockConns();
  std::atomic_flag conns_spin_ = ATOMIC_FLAG_INIT;
  std::vector<IoHandle*> conns_;

  MetricGroup metrics_{"kv_server"};
  Counter* tcp_conns_ = nullptr;
  Counter* tcp_requests_ = nullptr;
  Counter* udp_requests_ = nullptr;
  Counter* frame_errors_ = nullptr;
  Counter* peer_resets_ = nullptr;
};

}  // namespace skyloft

#endif  // SRC_APPS_KV_SERVER_NET_H_
