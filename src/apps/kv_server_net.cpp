#include "src/apps/kv_server_net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>

#include "src/base/logging.h"
#include "src/net/frame.h"
#include "src/runtime/io_engine.h"
#include "src/runtime/sync.h"

namespace skyloft {

namespace {

std::int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

unsigned RoundUpPow2(unsigned v) {
  unsigned p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

std::uint64_t KeyHash(const std::string& key) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : key) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
  }
  return h;
}

// Creates a bound nonblocking socket on 127.0.0.1:`port` with SO_REUSEPORT
// (the kernel shards incoming connections/datagrams across the per-worker
// sockets of the group). Returns -1 on failure.
int BoundSocket(int type, std::uint16_t port) {
  const int fd = socket(AF_INET, type | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return -1;
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    close(fd);
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  return fd;
}

std::uint16_t BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

// One queued response frame: header and payload stay separate buffers and go
// out as two iovec entries — the "no intermediate copy" scatter/gather path.
struct OutFrame {
  std::uint8_t hdr[kFrameHeaderSize];
  std::string payload;
};

constexpr std::size_t kMaxFlushIovs = 32;  // iovec budget per writev
// Frames at or below this size are memcpy'd into a per-flush coalescing
// buffer instead of spending two iovec entries each: typical KV replies
// ("VALUE profile-123", "STORED") are tens of bytes, so a burst of pipelined
// responses leaves in one writev instead of ceil(n/16) — keeping the
// readiness baseline's syscalls/request honest next to the completion path.
constexpr std::size_t kCoalesceFrameMax = 512;
constexpr std::size_t kCoalesceBufMax = 16 * 1024;

// Completion-path send backpressure: above this many queued-but-unsent bytes
// the handler parks until the engine's async send queue drains.
constexpr std::size_t kSendHighWater = 256 * 1024;

}  // namespace

// ---------------------------------------------------------------------------
// KvStripedStore
// ---------------------------------------------------------------------------

KvStripedStore::KvStripedStore(int workers, int stripes_override) {
  const int stripes = stripes_override > 0
                          ? stripes_override
                          : static_cast<int>(RoundUpPow2(
                                static_cast<unsigned>(std::max(8, 4 * workers))));
  for (int i = 0; i < stripes; i++) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
  const int lanes = static_cast<int>(RoundUpPow2(static_cast<unsigned>(std::max(4, workers))));
  for (int i = 0; i < lanes; i++) {
    lanes_.push_back(std::make_unique<LatencyLane>());
  }
}

void KvStripedStore::SpinLock(std::atomic_flag& flag) {
  SpinBackoff backoff;
  while (flag.test_and_set(std::memory_order_acquire)) {
    backoff.Pause();
  }
}

void KvStripedStore::SpinUnlock(std::atomic_flag& flag) {
  flag.clear(std::memory_order_release);
}

void KvStripedStore::LockStripe(Stripe& s) { SpinLock(s.spin); }
void KvStripedStore::UnlockStripe(Stripe& s) { SpinUnlock(s.spin); }
void KvStripedStore::LockLane(LatencyLane& l) { SpinLock(l.spin); }
void KvStripedStore::UnlockLane(LatencyLane& l) { SpinUnlock(l.spin); }

KvStripedStore::Stripe& KvStripedStore::StripeOf(const std::string& key) {
  return *stripes_[KeyHash(key) & (stripes_.size() - 1)];
}

void KvStripedStore::Preload(const std::string& key, const std::string& value) {
  StripeOf(key).store.Set(key, value);
}

std::string KvStripedStore::Serve(const std::string& request, std::uint64_t lane) {
  const std::int64_t t0 = NowNs();
  KvOpKind kind = KvOpKind::kError;
  std::string reply;

  const auto sp1 = request.find(' ');
  const std::string op = request.substr(0, sp1);
  if (op == "GET" && sp1 != std::string::npos) {
    kind = KvOpKind::kGet;
    const std::string key = request.substr(sp1 + 1);
    Stripe& stripe = StripeOf(key);
    // Spin sections are preemption-guarded: a signal-timer preemption while
    // holding the stripe would leave every other worker spinning on it for a
    // full scheduling round.
    Runtime::PreemptGuard guard;
    LockStripe(stripe);
    auto value = stripe.store.Get(key);
    UnlockStripe(stripe);
    reply = value ? "VALUE " + *value : "NOT_FOUND";
  } else if (op == "SET" && sp1 != std::string::npos) {
    const auto sp2 = request.find(' ', sp1 + 1);
    if (sp2 != std::string::npos) {
      kind = KvOpKind::kSet;
      const std::string key = request.substr(sp1 + 1, sp2 - sp1 - 1);
      Stripe& stripe = StripeOf(key);
      Runtime::PreemptGuard guard;
      LockStripe(stripe);
      stripe.store.Set(key, request.substr(sp2 + 1));
      UnlockStripe(stripe);
      reply = "STORED";
    }
  } else if (op == "SCAN" && sp1 != std::string::npos) {
    const auto sp2 = request.find(' ', sp1 + 1);
    if (sp2 != std::string::npos) {
      kind = KvOpKind::kScan;
      const std::string start = request.substr(sp1 + 1, sp2 - sp1 - 1);
      std::size_t limit = 0;
      const std::string limit_str = request.substr(sp2 + 1);
      for (const char c : limit_str) {
        if (c < '0' || c > '9') {
          limit = 0;
          break;
        }
        limit = limit * 10 + static_cast<std::size_t>(c - '0');
        if (limit > 4096) {
          limit = 4096;  // bound the reply; SCAN is the heavy tail op already
          break;
        }
      }
      if (limit == 0) {
        kind = KvOpKind::kError;
      } else {
        // One stripe at a time (never nested), so a heavy scan stalls at
        // most one stripe's GET/SET traffic at a time.
        for (auto& stripe_ptr : stripes_) {
          Runtime::PreemptGuard guard;
          LockStripe(*stripe_ptr);
          for (const auto& [k, v] : stripe_ptr->store.Scan(start, limit)) {
            reply += k + "=" + v + ";";
          }
          UnlockStripe(*stripe_ptr);
        }
        if (reply.empty()) {
          reply = "EMPTY";
        }
      }
    }
  }
  if (kind == KvOpKind::kError) {
    reply = "ERROR";
  }

  const std::int64_t t1 = NowNs();
  LatencyLane& lat = *lanes_[lane & (lanes_.size() - 1)];
  {
    Runtime::PreemptGuard guard;
    LockLane(lat);
    lat.hist[static_cast<int>(kind)].Record(t1 - t0);
    UnlockLane(lat);
  }
  return reply;
}

void KvStripedStore::MergeLatencies() {
  for (int k = 0; k < 4; k++) {
    merged_[k].Reset();
    for (auto& lane : lanes_) {
      merged_[k].Merge(lane->hist[k]);
    }
  }
}

// ---------------------------------------------------------------------------
// KvServerNet
// ---------------------------------------------------------------------------

// Per-worker serving slice: the SO_REUSEPORT listener + UDP socket and their
// engine handles. The acceptor registers accepted connections with `engine`
// (its home worker's engine) no matter which worker the acceptor uthread
// currently runs on — sharding is by listener, not by scheduler placement.
struct KvServerNet::Listener {
  int worker = 0;
  IoEngine* engine = nullptr;
  IoHandle* tcp = nullptr;
  IoHandle* udp = nullptr;
};

KvServerNet::KvServerNet(Runtime* rt, const KvServerNetOptions& options)
    : rt_(rt), options_(options), store_(rt->workers(), options.lock_stripes) {
  tcp_conns_ = metrics_.AddCounter("tcp_connections");
  tcp_requests_ = metrics_.AddCounter("tcp_requests");
  udp_requests_ = metrics_.AddCounter("udp_requests");
  frame_errors_ = metrics_.AddCounter("frame_errors");
  peer_resets_ = metrics_.AddCounter("peer_resets");
  metrics_.LinkValue("open_connections",
                     [this] { return open_conns_.load(std::memory_order_relaxed); });
  metrics_.LinkHistogram("get_ns", &store_.latency(KvOpKind::kGet));
  metrics_.LinkHistogram("set_ns", &store_.latency(KvOpKind::kSet));
  metrics_.LinkHistogram("scan_ns", &store_.latency(KvOpKind::kScan));
}

KvServerNet::~KvServerNet() = default;

void KvServerNet::Start() {
  SKYLOFT_CHECK(listeners_.empty()) << "Start() called twice";
  for (int i = 0; i < options_.preload_keys; i++) {
    store_.Preload("user" + std::to_string(i), "profile-" + std::to_string(i));
  }
  for (int w = 0; w < rt_->workers(); w++) {
    IoEngine* engine = rt_->io_engine(w);
    SKYLOFT_CHECK(engine != nullptr) << "KvServerNet needs RuntimeOptions::io_engine";
    auto listener = std::make_unique<Listener>();
    listener->worker = w;
    listener->engine = engine;
    if (options_.tcp) {
      const int fd = BoundSocket(SOCK_STREAM, tcp_port_ != 0 ? tcp_port_ : options_.tcp_port);
      SKYLOFT_CHECK(fd >= 0) << "tcp listener bind failed: " << std::strerror(errno);
      SKYLOFT_CHECK(listen(fd, options_.listen_backlog) == 0);
      if (tcp_port_ == 0) {
        tcp_port_ = BoundPort(fd);  // first bind fixes the group's port
      }
      // kListener arms multishot accept on a completion-capable engine and
      // degrades to readiness (POLL_ADD / epoll) everywhere else.
      listener->tcp = engine->Register(fd, IoRegisterMode::kListener);
      SKYLOFT_CHECK(listener->tcp != nullptr);
    }
    if (options_.udp) {
      const int fd = BoundSocket(SOCK_DGRAM, udp_port_ != 0 ? udp_port_ : options_.udp_port);
      SKYLOFT_CHECK(fd >= 0) << "udp bind failed: " << std::strerror(errno);
      if (udp_port_ == 0) {
        udp_port_ = BoundPort(fd);
      }
      listener->udp = engine->Register(fd, IoRegisterMode::kDatagram);
      SKYLOFT_CHECK(listener->udp != nullptr);
    }
    listeners_.push_back(std::move(listener));
  }
  for (auto& listener : listeners_) {
    Listener* l = listener.get();
    if (l->tcp != nullptr) {
      live_server_uthreads_.fetch_add(1, std::memory_order_acq_rel);
      Runtime::Spawn([this, l] { AcceptLoop(l); });
    }
    if (l->udp != nullptr) {
      live_server_uthreads_.fetch_add(1, std::memory_order_acq_rel);
      Runtime::Spawn([this, l] { UdpLoop(l); });
    }
  }
}

void KvServerNet::Stop() {
  stop_.store(true, std::memory_order_release);
  for (auto& listener : listeners_) {
    if (listener->tcp != nullptr) {
      IoEngine::Interrupt(listener->tcp);
    }
    if (listener->udp != nullptr) {
      IoEngine::Interrupt(listener->udp);
    }
  }
  // Interrupt live connection handlers under the registry lock: a handler
  // untracks itself (same lock) before deregistering, so no handle is
  // interrupted after its teardown began.
  {
    Runtime::PreemptGuard guard;
    LockConns();
    for (IoHandle* handle : conns_) {
      IoEngine::Interrupt(handle);
    }
    UnlockConns();
  }
  while (live_server_uthreads_.load(std::memory_order_acquire) > 0) {
    Runtime::Yield();
  }
  // All server uthreads are joined, so nothing can race the listener
  // handles any more — only now are they deregistered. (The loops must not
  // do it themselves: a readiness event racing stop_ could otherwise retire
  // a handle while this function concurrently Interrupts it above.)
  for (auto& listener : listeners_) {
    if (listener->tcp != nullptr) {
      listener->engine->Deregister(listener->tcp);
      listener->tcp = nullptr;
    }
    if (listener->udp != nullptr) {
      listener->engine->Deregister(listener->udp);
      listener->udp = nullptr;
    }
  }
  store_.MergeLatencies();
}

void KvServerNet::LockConns() {
  SpinBackoff backoff;
  while (conns_spin_.test_and_set(std::memory_order_acquire)) {
    backoff.Pause();
  }
}

void KvServerNet::UnlockConns() { conns_spin_.clear(std::memory_order_release); }

void KvServerNet::TrackConn(IoHandle* handle) {
  Runtime::PreemptGuard guard;
  LockConns();
  conns_.push_back(handle);
  UnlockConns();
}

bool KvServerNet::UntrackConn(IoHandle* handle) {
  Runtime::PreemptGuard guard;
  LockConns();
  bool found = false;
  for (std::size_t i = 0; i < conns_.size(); i++) {
    if (conns_[i] == handle) {
      conns_[i] = conns_.back();
      conns_.pop_back();
      found = true;
      break;
    }
  }
  UnlockConns();
  return found;
}

void KvServerNet::AcceptLoop(Listener* listener) {
  // Path choice is per handle, fixed at Register() time: a completion-mode
  // listener queues fds from multishot-accept CQEs; readiness keeps accept4.
  const bool use_completion = listener->tcp->cs != nullptr;
  while (!stop_.load(std::memory_order_acquire)) {
    const unsigned ready = WaitForReadable(listener->tcp);
    if (stop_.load(std::memory_order_acquire) || (ready & kIoError) != 0) {
      break;
    }
    int accepted = 0;
    while (accepted < options_.accept_batch) {
      int fd;
      if (use_completion) {
        fd = listener->engine->TakeAccepted(listener->tcp);
        if (fd < 0) {
          break;  // queue drained; the next accept CQE re-latches readability
        }
      } else {
        fd = accept4(listener->tcp->fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
        listener->engine->CountSysAccept();
        if (fd < 0) {
          if (errno == EINTR) {
            continue;
          }
          break;  // EAGAIN: backlog drained (or transient error; next edge retries)
        }
      }
      accepted++;
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      IoHandle* conn = listener->engine->Register(fd, IoRegisterMode::kStream);
      if (conn == nullptr) {
        close(fd);
        continue;
      }
      tcp_conns_->Inc();
      open_conns_.fetch_add(1, std::memory_order_relaxed);
      TrackConn(conn);
      live_server_uthreads_.fetch_add(1, std::memory_order_acq_rel);
      Runtime::Spawn([this, conn] { HandleConn(conn); });
    }
    if (accepted == options_.accept_batch) {
      // Batch limit hit before EAGAIN: the consumed edge must be restored or
      // the rest of the backlog would wait for the next incoming SYN. Yield
      // so freshly spawned handlers get a turn before we keep accepting.
      IoEngine::RelatchReadable(listener->tcp);
      Runtime::Yield();
    }
  }
  // The listener handle stays registered; Stop() retires it after the join
  // barrier, where no Interrupt can race the teardown.
  live_server_uthreads_.fetch_sub(1, std::memory_order_acq_rel);
}

// Flushes queued response frames with writev. `front_off` tracks bytes of
// the front frame already written (partial writev). Returns false when the
// connection died (peer reset mid-write).
SKYLOFT_MAY_SWITCH static bool FlushFrames(IoHandle* conn, std::deque<OutFrame>* queue,
                                           std::size_t* front_off) {
  while (!queue->empty()) {
    // Plan the iovec batch first: consecutive small frames are copied into
    // `coalesce` and merged into one segment per run; large frames keep the
    // zero-copy two-iovec scatter/gather shape. Segments store offsets into
    // `coalesce` and are resolved to pointers only once the plan is complete,
    // because the string may reallocate while growing.
    struct Seg {
      bool copied;      // true: bytes live at coalesce[pos..pos+len)
      const void* ptr;  // false: borrowed from the frame, [ptr, ptr+len)
      std::size_t pos;
      std::size_t len;
    };
    Seg segs[kMaxFlushIovs];
    int nseg = 0;
    std::string coalesce;
    std::size_t skip = *front_off;
    for (const OutFrame& frame : *queue) {
      const std::size_t frame_len = kFrameHeaderSize + frame.payload.size();
      if (frame_len <= kCoalesceFrameMax && coalesce.size() + frame_len <= kCoalesceBufMax) {
        if (nseg == 0 || !segs[nseg - 1].copied) {
          if (nseg == static_cast<int>(kMaxFlushIovs)) {
            break;
          }
          segs[nseg++] = Seg{true, nullptr, coalesce.size(), 0};
        }
        if (skip < kFrameHeaderSize) {
          coalesce.append(reinterpret_cast<const char*>(frame.hdr) + skip,
                          kFrameHeaderSize - skip);
          skip = 0;
        } else {
          skip -= kFrameHeaderSize;
        }
        if (skip < frame.payload.size()) {
          coalesce.append(frame.payload.data() + skip, frame.payload.size() - skip);
        }
        segs[nseg - 1].len = coalesce.size() - segs[nseg - 1].pos;
        skip = 0;  // only the front frame carries an offset
        continue;
      }
      if (nseg + 2 > static_cast<int>(kMaxFlushIovs)) {
        break;
      }
      if (skip < kFrameHeaderSize) {
        segs[nseg++] = Seg{false, frame.hdr + skip, 0, kFrameHeaderSize - skip};
        skip = 0;
      } else {
        skip -= kFrameHeaderSize;
      }
      if (skip < frame.payload.size()) {
        segs[nseg++] = Seg{false, frame.payload.data() + skip, 0, frame.payload.size() - skip};
      }
      skip = 0;
    }
    iovec iov[kMaxFlushIovs];
    for (int i = 0; i < nseg; i++) {
      iov[i].iov_base = const_cast<void*>(segs[i].copied
                                              ? static_cast<const void*>(coalesce.data() + segs[i].pos)
                                              : segs[i].ptr);
      iov[i].iov_len = segs[i].len;
    }
    const ssize_t wrote = writev(conn->fd, iov, nseg);
    conn->engine->CountSysWrite();
    if (wrote < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        const unsigned ready = WaitForWritable(conn);
        if (ready & kIoError) {
          return false;
        }
        continue;
      }
      return false;  // EPIPE / ECONNRESET: peer is gone
    }
    std::size_t remaining = static_cast<std::size_t>(wrote) + *front_off;
    while (!queue->empty()) {
      const std::size_t frame_len = kFrameHeaderSize + queue->front().payload.size();
      if (remaining < frame_len) {
        break;
      }
      remaining -= frame_len;
      queue->pop_front();
    }
    *front_off = remaining;
  }
  return true;
}

// Readiness connection loop: read() to EAGAIN, decode, serve, writev back.
bool KvServerNet::ConnLoopReadiness(IoHandle* conn, std::uint64_t lane) {
  FrameDecoder decoder;
  std::deque<OutFrame> outq;
  std::size_t front_off = 0;
  std::vector<char> buf(options_.read_buffer);
  bool reset = false;

  while (true) {
    const unsigned ready = WaitForReadable(conn);
    if (stop_.load(std::memory_order_acquire)) {
      break;
    }
    bool dead = (ready & kIoError) != 0;
    bool peer_eof = false;
    while (!dead) {
      const ssize_t n = read(conn->fd, buf.data(), buf.size());
      conn->engine->CountSysRead();
      if (n > 0) {
        decoder.Feed(buf.data(), static_cast<std::size_t>(n));
        if (static_cast<std::size_t>(n) < buf.size()) {
          continue;  // short read usually means the socket is drained; one
                     // more read() confirms with EAGAIN
        }
        continue;
      }
      if (n == 0) {
        peer_eof = true;
        break;
      }
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        break;
      }
      reset = errno == ECONNRESET;
      dead = true;
    }
    std::string payload;
    while (!dead && decoder.Next(&payload) == FrameDecodeStatus::kFrame) {
      OutFrame out;
      out.payload = store_.Serve(payload, lane);
      EncodeFrameHeader(out.hdr, static_cast<std::uint32_t>(out.payload.size()));
      outq.push_back(std::move(out));
      tcp_requests_->Inc();
    }
    if (decoder.poisoned()) {
      frame_errors_->Inc();
      dead = true;
    }
    if (!dead && !outq.empty()) {
      if (!FlushFrames(conn, &outq, &front_off)) {
        reset = true;
        dead = true;
      }
    }
    if (dead || peer_eof || (ready & kIoHup) != 0) {
      break;
    }
  }
  return reset;
}

// Completion connection loop: request bytes arrive in kernel-filled provided
// buffers (multishot recv CQEs queued by the home engine's Poll), responses
// leave through the engine's async send queue. The handler makes zero
// syscalls in steady state — it only copies out of provided buffers,
// recycles them, and queues frames for the engine's batched submission.
bool KvServerNet::ConnLoopCompletion(IoHandle* conn, std::uint64_t lane) {
  IoEngine* engine = conn->engine;
  FrameDecoder decoder;
  bool reset = false;

  while (true) {
    const unsigned ready = WaitForReadable(conn);
    if (stop_.load(std::memory_order_acquire)) {
      break;
    }
    // kIoError latches on a recv/send CQE failure (ECONNRESET and friends);
    // data already queued before the error is still drained below, matching
    // the readiness path's read-until-error behavior.
    bool dead = (ready & kIoError) != 0;
    if (dead) {
      reset = true;
    }
    IoRecvSlice slice;
    while (engine->PopRecv(conn, &slice)) {
      decoder.Feed(slice.data, slice.len);
      // The buffer belongs to the HOME engine's ring; the frame bytes were
      // copied into the decoder, so it can go back before we serve.
      engine->RecycleBuffer(slice.buf_id);
    }
    std::string payload;
    while (!dead && decoder.Next(&payload) == FrameDecodeStatus::kFrame) {
      std::string reply = store_.Serve(payload, lane);
      std::string out;
      out.reserve(kFrameHeaderSize + reply.size());
      std::uint8_t hdr[kFrameHeaderSize];
      EncodeFrameHeader(hdr, static_cast<std::uint32_t>(reply.size()));
      out.append(reinterpret_cast<const char*>(hdr), kFrameHeaderSize);
      out += reply;
      if (engine->SendEnqueue(conn, std::move(out)) == 0) {
        reset = true;  // queue refused: the handle errored under us
        dead = true;
        break;
      }
      tcp_requests_->Inc();
    }
    if (decoder.poisoned()) {
      frame_errors_->Inc();
      dead = true;
    }
    // Backpressure: above the high-water mark, park until the final send CQE
    // drains the queue (kIoWritable latch). A stale latch from an earlier
    // drain just re-checks, hence the loop.
    while (!dead && engine->SendQueuedBytes(conn) > kSendHighWater) {
      const unsigned w = WaitForWritable(conn);
      if (stop_.load(std::memory_order_acquire)) {
        return reset;
      }
      if ((w & kIoError) != 0) {
        reset = true;
        dead = true;
      } else if ((w & kIoWritable) == 0) {
        // Sticky kIoHup makes WaitForWritable non-blocking from here on, and
        // the drain we need (this conn's send CQE) is reaped by our worker's
        // scheduler loop — which never runs if we spin. Yield to it.
        Runtime::Yield();
      }
    }
    if ((ready & kIoHup) != 0 && !dead) {
      // Graceful EOF: all request CQEs precede the hup CQE, so the decoder
      // has everything; finish flushing queued responses before closing
      // (the readiness path's synchronous FlushFrames did this implicitly).
      while (engine->SendQueuedBytes(conn) > 0) {
        const unsigned w = WaitForWritable(conn);
        if (stop_.load(std::memory_order_acquire) || (w & kIoError) != 0) {
          break;
        }
        if ((w & kIoWritable) == 0) {
          // Same sticky-HUP spin hazard as the backpressure loop above: wake
          // reason was the latched hup, not a drained queue. Let the worker
          // poll so the in-flight send CQE can land.
          Runtime::Yield();
        }
      }
      break;
    }
    if (dead) {
      break;
    }
  }
  return reset;
}

void KvServerNet::HandleConn(IoHandle* conn) {
  const std::uint64_t lane = Runtime::Current()->id;
  const bool reset = conn->cs != nullptr ? ConnLoopCompletion(conn, lane)
                                         : ConnLoopReadiness(conn, lane);
  if (reset) {
    peer_resets_->Inc();
  }
  open_conns_.fetch_sub(1, std::memory_order_relaxed);
  // Whether or not Stop() already removed us from the registry (and owns any
  // interrupt), releasing the fd is the handler's job.
  UntrackConn(conn);
  conn->engine->Deregister(conn);
  live_server_uthreads_.fetch_sub(1, std::memory_order_acq_rel);
}

// Completion UDP loop: datagrams arrive as multishot-RECVMSG CQEs in
// provided buffers (kernel-packed recvmsg_out + sender address + payload);
// replies go out as fire-and-forget async SENDMSG ops. Zero syscalls per
// datagram in steady state.
void KvServerNet::UdpLoopCompletion(Listener* listener, std::uint64_t lane) {
  IoEngine* engine = listener->engine;
  while (!stop_.load(std::memory_order_acquire)) {
    const unsigned ready = WaitForReadable(listener->udp);
    if (stop_.load(std::memory_order_acquire) || (ready & kIoError) != 0) {
      break;
    }
    int handled = 0;
    IoRecvSlice slice;
    while (handled < options_.udp_batch && engine->PopRecv(listener->udp, &slice)) {
      handled++;
      IoDatagram dgram;
      std::string payload;
      if (!IoEngine::ParseDatagram(slice, &dgram) ||
          DecodeFrame(reinterpret_cast<const std::uint8_t*>(dgram.data), dgram.len, &payload) !=
              FrameDecodeStatus::kFrame) {
        frame_errors_->Inc();  // stray/truncated datagram: drop, never assert
        engine->RecycleBuffer(slice.buf_id);
        continue;
      }
      std::string reply = EncodeFrame(store_.Serve(payload, lane));
      // Best-effort reply, UDP semantics: a refused submission (closed
      // handle, SQ pressure) drops the response like a full socket buffer.
      engine->SendDatagram(listener->udp, dgram.peer, std::move(reply));
      engine->RecycleBuffer(slice.buf_id);
      udp_requests_->Inc();
    }
    if (handled == options_.udp_batch) {
      IoEngine::RelatchReadable(listener->udp);
      Runtime::Yield();
    }
  }
}

void KvServerNet::UdpLoop(Listener* listener) {
  const std::uint64_t lane = Runtime::Current()->id;
  if (listener->udp->cs != nullptr) {
    UdpLoopCompletion(listener, lane);
    // As in AcceptLoop, the listener handle is retired by Stop(), not here.
    live_server_uthreads_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  std::vector<std::uint8_t> buf(65536);
  while (!stop_.load(std::memory_order_acquire)) {
    const unsigned ready = WaitForReadable(listener->udp);
    if (stop_.load(std::memory_order_acquire) || (ready & kIoError) != 0) {
      break;
    }
    int handled = 0;
    while (handled < options_.udp_batch) {
      sockaddr_in peer{};
      socklen_t peer_len = sizeof(peer);
      const ssize_t n = recvfrom(listener->udp->fd, buf.data(), buf.size(), 0,
                                 reinterpret_cast<sockaddr*>(&peer), &peer_len);
      listener->engine->CountSysRead();
      if (n < 0) {
        if (errno == EINTR) {
          continue;
        }
        break;  // EAGAIN: drained
      }
      handled++;
      std::string payload;
      if (DecodeFrame(buf.data(), static_cast<std::size_t>(n), &payload) !=
          FrameDecodeStatus::kFrame) {
        frame_errors_->Inc();  // stray/truncated datagram: drop, never assert
        continue;
      }
      const std::string reply = EncodeFrame(store_.Serve(payload, lane));
      // Best-effort datagram reply: a full socket buffer drops the response,
      // exactly like a real UDP service under overload.
      sendto(listener->udp->fd, reply.data(), reply.size(), 0,
             reinterpret_cast<sockaddr*>(&peer), peer_len);
      listener->engine->CountSysWrite();
      udp_requests_->Inc();
    }
    if (handled == options_.udp_batch) {
      IoEngine::RelatchReadable(listener->udp);
      Runtime::Yield();
    }
  }
  // As in AcceptLoop, the listener handle is retired by Stop(), not here.
  live_server_uthreads_.fetch_sub(1, std::memory_order_acq_rel);
}

}  // namespace skyloft
