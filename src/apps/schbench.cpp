#include "src/apps/schbench.h"

#include "src/base/logging.h"

namespace skyloft {

SchbenchSim::SchbenchSim(Engine* engine, App* app, SchbenchOptions options)
    : engine_(engine), app_(app), options_(options) {}

void SchbenchSim::Start() {
  SimNode& sim = engine_->machine().sim();
  workers_.reserve(static_cast<std::size_t>(options_.worker_threads));
  for (int i = 0; i < options_.worker_threads; i++) {
    Task* worker = engine_->NewTask(app_, options_.request_ns);
    // Workers never finish: each completed request blocks the worker until
    // the message thread wakes it with the next one.
    worker->on_segment_end = [this](Task* task) {
      SimNode& s = engine_->machine().sim();
      s.ScheduleAfter(options_.rewake_delay_ns, [this, task] {
        engine_->WakeTask(task, options_.request_ns);
      });
      return SegmentAction::kBlock;
    };
    workers_.push_back(worker);
  }
  // Stagger the initial wakes slightly so the start is not one giant burst
  // (schbench's message thread also wakes workers one by one).
  DurationNs offset = 0;
  for (Task* worker : workers_) {
    Task* w = worker;
    sim.ScheduleAfter(offset, [this, w] {
      // First activation goes through Submit (task_init + enqueue).
      engine_->Submit(w);
    });
    offset += 200;
  }
}

std::int64_t SchbenchSim::WakeupPercentileNs(double q) const {
  return engine_->stats().wakeup_latency.Percentile(q);
}

std::uint64_t SchbenchSim::requests_completed() const {
  // Workers block rather than finish, so count wakeup samples: one per
  // completed request after the first.
  return engine_->stats().wakeup_latency.Count();
}

}  // namespace skyloft
