// Best-effort batch application driver for per-CPU engines (Fig. 7b/7c's
// Linux comparison point): a fixed population of long-running chunked tasks
// that soak up whatever CPU the scheduler gives them.
//
// Centralized engines manage their batch app internally (CentralizedEngine::
// AttachBestEffortApp); this helper exists for schedulers without a core
// allocator, where batch work simply competes in the shared runqueues.
#ifndef SRC_APPS_BATCH_APP_H_
#define SRC_APPS_BATCH_APP_H_

#include <vector>

#include "src/libos/engine.h"

namespace skyloft {

class BatchAppDriver {
 public:
  struct Options {
    int tasks = 8;                        // batch population
    DurationNs chunk_ns = Millis(1);      // work per segment
  };

  BatchAppDriver(Engine* engine, App* app, Options options)
      : engine_(engine), app_(app), options_(options) {}

  void Start();

  // Total CPU consumed by the batch app since the engine's last stats reset.
  double CpuShare() { return engine_->CpuShare(app_); }

 private:
  Engine* engine_;
  App* app_;
  Options options_;
  std::vector<Task*> tasks_;
};

}  // namespace skyloft

#endif  // SRC_APPS_BATCH_APP_H_
