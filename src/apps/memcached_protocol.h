// Memcached text protocol codec (the wire format of the §5.3 Memcached
// evaluation). Parses client command lines into structured commands and
// formats server responses; used by the KV example/server path and the
// application tests.
//
// Supported subset (what the USR workload exercises):
//   get <key>\r\n
//   set <key> <flags> <exptime> <bytes>\r\n<data>\r\n
//   delete <key>\r\n
#ifndef SRC_APPS_MEMCACHED_PROTOCOL_H_
#define SRC_APPS_MEMCACHED_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>

#include "src/apps/kvstore.h"

namespace skyloft {

enum class McOp { kGet, kSet, kDelete };

struct McCommand {
  McOp op = McOp::kGet;
  std::string key;
  std::uint32_t flags = 0;
  std::uint32_t exptime = 0;
  std::string data;  // kSet only
};

// Parses one complete request starting at `input[pos]`. On success advances
// *pos past the request (including the data block and trailing CRLF for set)
// and returns the command; returns nullopt when the input is incomplete or
// malformed (distinguish via *pos: unchanged means incomplete/malformed).
std::optional<McCommand> ParseMcCommand(const std::string& input, std::size_t* pos);

// Executes a command against a store and returns the wire response
// ("VALUE <key> <flags> <bytes>\r\n<data>\r\nEND\r\n", "STORED\r\n", ...).
std::string ExecuteMcCommand(KvStore& store, const McCommand& command);

// Convenience: formats a command back to wire form (client side).
std::string FormatMcCommand(const McCommand& command);

}  // namespace skyloft

#endif  // SRC_APPS_MEMCACHED_PROTOCOL_H_
