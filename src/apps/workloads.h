// The request mixes used throughout the paper's evaluation.
#ifndef SRC_APPS_WORKLOADS_H_
#define SRC_APPS_WORKLOADS_H_

#include "src/net/loadgen.h"

namespace skyloft {

// Request-class kinds shared by benchmarks for per-class reporting.
inline constexpr int kKindShort = 0;  // GET / short request
inline constexpr int kKindLong = 1;   // SCAN / long request

// §5.2 "Single workload": 99.5% x 4 us short + 0.5% x 10 ms long (the
// dispersive synthetic workload from the ghOSt paper).
RequestMix DispersiveMix();

// §5.3 Memcached: Meta's USR trace shape — 99.8% GET / 0.2% SET, ~1 us each.
RequestMix MemcachedUsrMix();

// §5.3 RocksDB server: 50% GET (0.95 us) / 50% SCAN (591 us).
RequestMix RocksdbBimodalMix();

}  // namespace skyloft

#endif  // SRC_APPS_WORKLOADS_H_
