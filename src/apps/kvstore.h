// A real in-memory key-value store with GET/SET/SCAN, in the spirit of the
// Memcached / RocksDB servers of §5.3. Used by the host-runtime examples
// (actual hash lookups on actual threads) and by the application tests.
//
// Open addressing with linear probing and an ordered index for SCAN. Not
// thread-safe by itself; callers serialize through the runtime's mutex (as
// the example server does) or shard per core.
#ifndef SRC_APPS_KVSTORE_H_
#define SRC_APPS_KVSTORE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace skyloft {

class KvStore {
 public:
  explicit KvStore(std::size_t initial_buckets = 1024);

  // Inserts or overwrites. Returns true if the key was new.
  bool Set(const std::string& key, const std::string& value);

  std::optional<std::string> Get(const std::string& key) const;

  bool Delete(const std::string& key);

  // Ordered range scan: up to `limit` (key, value) pairs with key >= start.
  std::vector<std::pair<std::string, std::string>> Scan(const std::string& start,
                                                        std::size_t limit) const;

  std::size_t Size() const { return size_; }

 private:
  struct Slot {
    enum class State : std::uint8_t { kEmpty, kFull, kTombstone };
    State state = State::kEmpty;
    std::uint64_t hash = 0;
    std::string key;
    std::string value;
  };

  static std::uint64_t Hash(const std::string& key);
  void Grow();
  // Returns slot index for key: the match if present, else the insert slot.
  std::size_t Probe(const std::string& key, std::uint64_t hash, bool* found) const;

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
  // Ordered view for SCAN (RocksDB-style range queries); values live in the
  // hash table, the index maps key -> slot generation-checked lookup.
  std::map<std::string, bool> ordered_keys_;
};

}  // namespace skyloft

#endif  // SRC_APPS_KVSTORE_H_
