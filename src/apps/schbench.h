// schbench workload model (paper §5.1, Fig. 5/6).
//
// schbench v1.0 simulates a network application: M message threads
// continuously wake T worker threads; each woken worker performs a fixed
// amount of work (~2300 us with default parameters) and goes back to sleep.
// The reported metric is *wakeup latency*: the time from the wake to the
// worker actually running. When T exceeds the core count, wakeup latency is
// dominated by scheduling: how quickly the scheduler preempts a running
// worker to run a freshly woken one — which is exactly what Table 5's timer
// frequencies control.
#ifndef SRC_APPS_SCHBENCH_H_
#define SRC_APPS_SCHBENCH_H_

#include <vector>

#include "src/libos/engine.h"

namespace skyloft {

struct SchbenchOptions {
  int worker_threads = 32;
  DurationNs request_ns = Micros(2300);  // per-request work, schbench default
  // Delay between a worker finishing and the message thread re-waking it
  // (futex round trip on the message thread).
  DurationNs rewake_delay_ns = 1000;
};

class SchbenchSim {
 public:
  SchbenchSim(Engine* engine, App* app, SchbenchOptions options);

  // Creates the workers and wakes them all for their first request.
  void Start();

  // Wakeup-latency percentile from the engine stats (the Fig. 5 metric).
  std::int64_t WakeupPercentileNs(double q) const;

  std::uint64_t requests_completed() const;

 private:
  Engine* engine_;
  App* app_;
  SchbenchOptions options_;
  std::vector<Task*> workers_;
};

}  // namespace skyloft

#endif  // SRC_APPS_SCHBENCH_H_
