#include "src/apps/kvstore.h"

#include "src/base/logging.h"

namespace skyloft {

KvStore::KvStore(std::size_t initial_buckets) {
  std::size_t buckets = 16;
  while (buckets < initial_buckets) {
    buckets <<= 1;
  }
  slots_.resize(buckets);
}

std::uint64_t KvStore::Hash(const std::string& key) {
  // FNV-1a, then a splitmix finalizer for better high bits.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  return h;
}

std::size_t KvStore::Probe(const std::string& key, std::uint64_t hash, bool* found) const {
  const std::size_t mask = slots_.size() - 1;
  std::size_t index = hash & mask;
  std::size_t first_tombstone = slots_.size();
  for (std::size_t step = 0; step < slots_.size(); step++) {
    const Slot& slot = slots_[index];
    if (slot.state == Slot::State::kEmpty) {
      *found = false;
      return first_tombstone != slots_.size() ? first_tombstone : index;
    }
    if (slot.state == Slot::State::kTombstone) {
      if (first_tombstone == slots_.size()) {
        first_tombstone = index;
      }
    } else if (slot.hash == hash && slot.key == key) {
      *found = true;
      return index;
    }
    index = (index + 1) & mask;
  }
  *found = false;
  SKYLOFT_CHECK(first_tombstone != slots_.size()) << "hash table full";
  return first_tombstone;
}

void KvStore::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.clear();
  slots_.resize(old.size() * 2);
  size_ = 0;
  tombstones_ = 0;
  for (Slot& slot : old) {
    if (slot.state == Slot::State::kFull) {
      bool found = false;
      const std::size_t index = Probe(slot.key, slot.hash, &found);
      SKYLOFT_DCHECK(!found);
      slots_[index] = std::move(slot);
      size_++;
    }
  }
}

bool KvStore::Set(const std::string& key, const std::string& value) {
  if ((size_ + tombstones_ + 1) * 4 > slots_.size() * 3) {
    Grow();
  }
  const std::uint64_t hash = Hash(key);
  bool found = false;
  const std::size_t index = Probe(key, hash, &found);
  Slot& slot = slots_[index];
  if (found) {
    slot.value = value;
    return false;
  }
  if (slot.state == Slot::State::kTombstone) {
    tombstones_--;
  }
  slot.state = Slot::State::kFull;
  slot.hash = hash;
  slot.key = key;
  slot.value = value;
  size_++;
  ordered_keys_[key] = true;
  return true;
}

std::optional<std::string> KvStore::Get(const std::string& key) const {
  bool found = false;
  const std::size_t index = Probe(key, Hash(key), &found);
  if (!found) {
    return std::nullopt;
  }
  return slots_[index].value;
}

bool KvStore::Delete(const std::string& key) {
  bool found = false;
  const std::size_t index = Probe(key, Hash(key), &found);
  if (!found) {
    return false;
  }
  Slot& slot = slots_[index];
  slot.state = Slot::State::kTombstone;
  slot.key.clear();
  slot.value.clear();
  size_--;
  tombstones_++;
  ordered_keys_.erase(key);
  return true;
}

std::vector<std::pair<std::string, std::string>> KvStore::Scan(const std::string& start,
                                                               std::size_t limit) const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(limit);
  for (auto it = ordered_keys_.lower_bound(start); it != ordered_keys_.end() && out.size() < limit;
       ++it) {
    auto value = Get(it->first);
    SKYLOFT_DCHECK(value.has_value());
    out.emplace_back(it->first, *value);
  }
  return out;
}

}  // namespace skyloft
