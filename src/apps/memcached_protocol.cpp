#include "src/apps/memcached_protocol.h"

#include <charconv>
#include <vector>

namespace skyloft {

namespace {

// Splits a command line (no CRLF) on single spaces.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start <= line.size()) {
    const std::size_t space = line.find(' ', start);
    if (space == std::string::npos) {
      tokens.push_back(line.substr(start));
      break;
    }
    tokens.push_back(line.substr(start, space - start));
    start = space + 1;
  }
  return tokens;
}

bool ParseU32(const std::string& s, std::uint32_t* out) {
  if (s.empty()) {
    return false;
  }
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), *out);
  return ec == std::errc{} && ptr == s.data() + s.size();
}

}  // namespace

std::optional<McCommand> ParseMcCommand(const std::string& input, std::size_t* pos) {
  const std::size_t line_end = input.find("\r\n", *pos);
  if (line_end == std::string::npos) {
    return std::nullopt;  // incomplete line
  }
  const std::string line = input.substr(*pos, line_end - *pos);
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty() || tokens[0].empty()) {
    return std::nullopt;
  }

  McCommand command;
  if (tokens[0] == "get" && tokens.size() == 2) {
    command.op = McOp::kGet;
    command.key = tokens[1];
    *pos = line_end + 2;
    return command;
  }
  if (tokens[0] == "delete" && tokens.size() == 2) {
    command.op = McOp::kDelete;
    command.key = tokens[1];
    *pos = line_end + 2;
    return command;
  }
  if (tokens[0] == "set" && tokens.size() == 5) {
    command.op = McOp::kSet;
    command.key = tokens[1];
    std::uint32_t bytes = 0;
    if (!ParseU32(tokens[2], &command.flags) || !ParseU32(tokens[3], &command.exptime) ||
        !ParseU32(tokens[4], &bytes)) {
      return std::nullopt;
    }
    const std::size_t data_start = line_end + 2;
    if (input.size() < data_start + bytes + 2) {
      return std::nullopt;  // data block incomplete
    }
    if (input.compare(data_start + bytes, 2, "\r\n") != 0) {
      return std::nullopt;  // malformed: missing data terminator
    }
    command.data = input.substr(data_start, bytes);
    *pos = data_start + bytes + 2;
    return command;
  }
  return std::nullopt;
}

std::string ExecuteMcCommand(KvStore& store, const McCommand& command) {
  switch (command.op) {
    case McOp::kGet: {
      const auto value = store.Get(command.key);
      if (!value) {
        return "END\r\n";
      }
      return "VALUE " + command.key + " 0 " + std::to_string(value->size()) + "\r\n" + *value +
             "\r\nEND\r\n";
    }
    case McOp::kSet:
      store.Set(command.key, command.data);
      return "STORED\r\n";
    case McOp::kDelete:
      return store.Delete(command.key) ? "DELETED\r\n" : "NOT_FOUND\r\n";
  }
  return "ERROR\r\n";
}

std::string FormatMcCommand(const McCommand& command) {
  switch (command.op) {
    case McOp::kGet:
      return "get " + command.key + "\r\n";
    case McOp::kDelete:
      return "delete " + command.key + "\r\n";
    case McOp::kSet:
      return "set " + command.key + " " + std::to_string(command.flags) + " " +
             std::to_string(command.exptime) + " " + std::to_string(command.data.size()) +
             "\r\n" + command.data + "\r\n";
  }
  return "";
}

}  // namespace skyloft
