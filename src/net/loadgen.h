// Open-loop Poisson load generator (paper §5.2/§5.3: "a separate machine ...
// running an open-loop load generator ... following a Poisson arrival
// process").
//
// Generates requests at a fixed rate regardless of server progress (open
// loop), draws each request's class and service time from a RequestMix, and
// optionally routes through the simulated NIC (RSS -> per-core rings) before
// submitting the request as a task.
#ifndef SRC_NET_LOADGEN_H_
#define SRC_NET_LOADGEN_H_

#include <vector>

#include "src/base/random.h"
#include "src/libos/engine.h"
#include "src/net/nic.h"

namespace skyloft {

struct RequestClass {
  double weight = 1.0;  // relative probability
  ServiceTimeDist dist = ServiceTimeDist::Fixed(Micros(1));
  int kind = 0;
};

using RequestMix = std::vector<RequestClass>;

// Mean service time of the mix in ns (for computing offered load).
double MixMeanNs(const RequestMix& mix);

class PoissonClient {
 public:
  struct Options {
    double rate_rps = 0;          // offered load
    std::uint64_t seed = 1;
    // Which simulated node this client feeds. The effective RNG stream is
    // Rng::DeriveStream(seed, node_id), so a cluster can give every node the
    // same base seed and still get statistically independent arrival
    // processes per node. Node 0 (the default) uses `seed` unchanged —
    // single-machine setups are bit-identical to their historical traces.
    int node_id = 0;
    bool rss_route = true;        // steer by flow hash to a worker (RSS)
    DurationNs wire_ns = 0;       // one-way client<->server latency
    std::size_t ring_capacity = 4096;
  };

  PoissonClient(Engine* engine, App* app, RequestMix mix, Options options);

  // Starts generating arrivals; runs until Stop() or simulation end.
  void Start();
  void Stop() { running_ = false; }

  std::uint64_t generated() const { return generated_; }
  const Nic& nic() const { return *nic_; }

 private:
  void ScheduleNext();
  void GenerateOne();
  void Deliver(int queue);

  Engine* engine_;
  App* app_;
  RequestMix mix_;
  Options options_;
  Rng rng_;
  std::unique_ptr<Nic> nic_;
  double total_weight_ = 0;
  bool running_ = false;
  std::uint64_t generated_ = 0;
  std::uint64_t next_flow_ = 1;
};

}  // namespace skyloft

#endif  // SRC_NET_LOADGEN_H_
