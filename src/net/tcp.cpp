#include "src/net/tcp.h"

#include <algorithm>

#include "src/base/logging.h"

namespace skyloft {

const char* TcpStateName(TcpState state) {
  switch (state) {
    case TcpState::kClosed:
      return "CLOSED";
    case TcpState::kListen:
      return "LISTEN";
    case TcpState::kSynSent:
      return "SYN_SENT";
    case TcpState::kSynReceived:
      return "SYN_RCVD";
    case TcpState::kEstablished:
      return "ESTABLISHED";
    case TcpState::kFinWait:
      return "FIN_WAIT";
    case TcpState::kCloseWait:
      return "CLOSE_WAIT";
    case TcpState::kTimeWait:
      return "TIME_WAIT";
  }
  return "?";
}

void TcpWire::Transmit(TcpEndpoint* from, const TcpSegment& segment) {
  TcpEndpoint* to = from == a_ ? b_ : a_;
  SKYLOFT_CHECK(to != nullptr) << "wire not attached";
  if (rng_.NextBool(loss_)) {
    dropped_++;
    return;
  }
  delivered_++;
  sim_->ScheduleAfter(delay_ns_, [to, segment] { to->Deliver(segment); });
}

TcpEndpoint::TcpEndpoint(SimNode* sim, TcpWire* wire, std::string name)
    : sim_(sim), wire_(wire), name_(std::move(name)) {}

void TcpEndpoint::Listen() {
  SKYLOFT_CHECK(state_ == TcpState::kClosed);
  state_ = TcpState::kListen;
}

void TcpEndpoint::Connect() {
  SKYLOFT_CHECK(state_ == TcpState::kClosed);
  state_ = TcpState::kSynSent;
  iss_ = 1000;  // deterministic ISN (no security concerns in a model)
  snd_una_ = iss_;
  snd_nxt_ = iss_;
  TcpSegment syn;
  syn.syn = true;
  syn.seq = snd_nxt_++;
  SendSegment(syn);
}

void TcpEndpoint::Send(const std::string& data) {
  SKYLOFT_CHECK(state_ == TcpState::kEstablished || state_ == TcpState::kSynSent ||
                state_ == TcpState::kSynReceived)
      << name_ << " cannot send in state " << TcpStateName(state_);
  send_buffer_ += data;
  TrySendData();
}

void TcpEndpoint::Close() {
  close_requested_ = true;
  MaybeFinish();
}

void TcpEndpoint::SendSegment(TcpSegment segment) {
  segment.ack = state_ != TcpState::kSynSent || !segment.syn;
  segment.ack_num = rcv_nxt_;
  if (segment.syn || segment.fin || !segment.payload.empty()) {
    inflight_[segment.seq] = segment;
    ArmRetransmit();
  }
  wire_->Transmit(this, segment);
}

void TcpEndpoint::TrySendData() {
  if (state_ != TcpState::kEstablished) {
    return;
  }
  while (!send_buffer_.empty() && snd_nxt_ - snd_una_ < kWindowBytes) {
    const std::size_t take = std::min(send_buffer_.size(), kMss);
    TcpSegment segment;
    segment.seq = snd_nxt_;
    segment.payload = send_buffer_.substr(0, take);
    send_buffer_.erase(0, take);
    snd_nxt_ += static_cast<std::uint32_t>(take);
    SendSegment(segment);
  }
  MaybeFinish();
}

void TcpEndpoint::MaybeFinish() {
  if (!close_requested_ || fin_sent_ || !send_buffer_.empty() || snd_una_ != snd_nxt_) {
    return;
  }
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    return;
  }
  fin_sent_ = true;
  state_ = state_ == TcpState::kCloseWait ? TcpState::kTimeWait : TcpState::kFinWait;
  TcpSegment fin;
  fin.fin = true;
  fin.seq = snd_nxt_++;
  SendSegment(fin);
}

void TcpEndpoint::ArmRetransmit() {
  if (rto_event_ != kInvalidEventId) {
    return;
  }
  rto_event_ = sim_->ScheduleAfter(kRto, [this] { OnRetransmitTimeout(); });
}

void TcpEndpoint::OnRetransmitTimeout() {
  rto_event_ = kInvalidEventId;
  if (inflight_.empty()) {
    return;
  }
  // Go-back-N-lite: retransmit the oldest unacknowledged segment.
  retransmits_++;
  TcpSegment segment = inflight_.begin()->second;
  segment.ack_num = rcv_nxt_;
  wire_->Transmit(this, segment);
  ArmRetransmit();
}

void TcpEndpoint::AcceptPayload(const TcpSegment& segment) {
  if (segment.payload.empty()) {
    return;
  }
  if (segment.seq + segment.payload.size() <= rcv_nxt_) {
    return;  // duplicate of fully-delivered data
  }
  if (segment.seq > rcv_nxt_) {
    out_of_order_[segment.seq] = segment.payload;  // hold for reordering
    return;
  }
  // Overlapping or exactly in order: deliver the new part.
  const std::size_t skip = rcv_nxt_ - segment.seq;
  const std::string fresh = segment.payload.substr(skip);
  rcv_nxt_ += static_cast<std::uint32_t>(fresh.size());
  if (on_receive_) {
    on_receive_(fresh);
  }
  // Drain any now-contiguous held segments.
  auto it = out_of_order_.begin();
  while (it != out_of_order_.end() && it->first <= rcv_nxt_) {
    if (it->first + it->second.size() > rcv_nxt_) {
      const std::string more = it->second.substr(rcv_nxt_ - it->first);
      rcv_nxt_ += static_cast<std::uint32_t>(more.size());
      if (on_receive_) {
        on_receive_(more);
      }
    }
    it = out_of_order_.erase(it);
  }
}

void TcpEndpoint::Deliver(const TcpSegment& segment) {
  // ---- connection establishment ----
  if (segment.syn && !segment.ack) {
    if (state_ == TcpState::kListen || state_ == TcpState::kSynReceived) {
      state_ = TcpState::kSynReceived;
      rcv_nxt_ = segment.seq + 1;
      if (iss_ == 0) {
        iss_ = 2000;
        snd_una_ = iss_;
        snd_nxt_ = iss_;
        TcpSegment synack;
        synack.syn = true;
        synack.seq = snd_nxt_++;
        SendSegment(synack);
      } else {
        // Retransmitted SYN: re-send our SYN-ACK.
        OnRetransmitTimeout();
      }
    }
    return;
  }
  if (segment.syn && segment.ack) {
    if (state_ == TcpState::kSynSent) {
      rcv_nxt_ = segment.seq + 1;
      state_ = TcpState::kEstablished;
      // Our SYN is acknowledged.
      if (segment.ack_num > snd_una_) {
        snd_una_ = segment.ack_num;
        inflight_.erase(inflight_.begin(), inflight_.lower_bound(snd_una_));
      }
      TcpSegment ack;
      ack.seq = snd_nxt_;
      SendSegment(ack);
      TrySendData();
    }
    return;
  }

  // ---- acknowledgment processing ----
  if (segment.ack && segment.ack_num > snd_una_) {
    snd_una_ = segment.ack_num;
    inflight_.erase(inflight_.begin(), inflight_.lower_bound(snd_una_));
    if (inflight_.empty() && rto_event_ != kInvalidEventId) {
      sim_->Cancel(rto_event_);
      rto_event_ = kInvalidEventId;
    }
    if (state_ == TcpState::kSynReceived) {
      state_ = TcpState::kEstablished;
    }
    if (state_ == TcpState::kFinWait && fin_sent_ && snd_una_ == snd_nxt_) {
      state_ = TcpState::kTimeWait;
    }
    TrySendData();
  }

  // ---- data ----
  const std::uint32_t before = rcv_nxt_;
  AcceptPayload(segment);

  // ---- teardown ----
  if (segment.fin && segment.seq <= rcv_nxt_) {
    if (segment.seq == rcv_nxt_) {
      rcv_nxt_ = segment.seq + 1;
    }
    if (state_ == TcpState::kEstablished) {
      state_ = TcpState::kCloseWait;
    } else if (state_ == TcpState::kFinWait || state_ == TcpState::kTimeWait) {
      state_ = TcpState::kTimeWait;
    }
    TcpSegment ack;
    ack.seq = snd_nxt_;
    SendSegment(ack);
    MaybeFinish();
    return;
  }

  // ACK any received data (cumulative).
  if (rcv_nxt_ != before || !segment.payload.empty()) {
    TcpSegment ack;
    ack.seq = snd_nxt_;
    SendSegment(ack);
  }
}

}  // namespace skyloft
