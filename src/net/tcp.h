// Lightweight TCP model for the user-space network stack (§3.5: "A
// lightweight user-space TCP and UDP stack is integrated...").
//
// Models the protocol machinery a dataplane TCP needs, at segment
// granularity on the discrete-event simulator:
//   - three-way handshake and FIN teardown (state machine subset)
//   - cumulative ACKs, in-order delivery, duplicate suppression
//   - a fixed-size send window with retransmission on timeout
//   - a lossy wire (seeded, deterministic) to exercise retransmission
//
// Two TcpEndpoints are joined by a TcpWire; application payloads go in via
// Send() and come out via the receive callback, in order, exactly once —
// properties the test suite asserts under loss.
#ifndef SRC_NET_TCP_H_
#define SRC_NET_TCP_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/base/random.h"
#include "src/simcore/sim_node.h"

namespace skyloft {

enum class TcpState {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait,
  kCloseWait,
  kTimeWait,
};

const char* TcpStateName(TcpState state);

struct TcpSegment {
  bool syn = false;
  bool ack = false;
  bool fin = false;
  std::uint32_t seq = 0;      // first byte of payload (or of SYN/FIN)
  std::uint32_t ack_num = 0;  // next expected byte
  std::string payload;
};

class TcpEndpoint;

// Bidirectional wire with propagation delay and independent per-direction
// deterministic loss.
class TcpWire {
 public:
  TcpWire(SimNode* sim, DurationNs delay_ns, double loss_probability, std::uint64_t seed)
      : sim_(sim), delay_ns_(delay_ns), loss_(loss_probability), rng_(seed) {}

  void Attach(TcpEndpoint* a, TcpEndpoint* b) {
    a_ = a;
    b_ = b;
  }

  // Transfers a segment to the peer of `from` (possibly dropping it).
  void Transmit(TcpEndpoint* from, const TcpSegment& segment);

  std::uint64_t delivered() const { return delivered_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  SimNode* sim_;
  DurationNs delay_ns_;
  double loss_;
  Rng rng_;
  TcpEndpoint* a_ = nullptr;
  TcpEndpoint* b_ = nullptr;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

class TcpEndpoint {
 public:
  using ReceiveCallback = std::function<void(const std::string& data)>;

  TcpEndpoint(SimNode* sim, TcpWire* wire, std::string name);

  // Passive open.
  void Listen();
  // Active open: sends SYN and drives the handshake to kEstablished.
  void Connect();
  // Queues application data for reliable in-order delivery to the peer.
  void Send(const std::string& data);
  // Begins teardown once all queued data is acknowledged.
  void Close();

  void SetReceiveCallback(ReceiveCallback cb) { on_receive_ = std::move(cb); }

  TcpState state() const { return state_; }
  const std::string& name() const { return name_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint32_t bytes_acked() const { return snd_una_ - iss_ - 1; }

  // Wire-side input (called by TcpWire).
  void Deliver(const TcpSegment& segment);

 private:
  static constexpr std::uint32_t kWindowBytes = 4096;
  static constexpr DurationNs kRto = Millis(2);
  static constexpr std::size_t kMss = 536;

  void SendSegment(TcpSegment segment);
  void TrySendData();
  void ArmRetransmit();
  void OnRetransmitTimeout();
  void AcceptPayload(const TcpSegment& segment);
  void MaybeFinish();

  SimNode* sim_;
  TcpWire* wire_;
  std::string name_;
  TcpState state_ = TcpState::kClosed;
  ReceiveCallback on_receive_;

  // Send side.
  std::uint32_t iss_ = 0;       // initial send sequence
  std::uint32_t snd_nxt_ = 0;   // next seq to send
  std::uint32_t snd_una_ = 0;   // oldest unacknowledged
  std::string send_buffer_;     // queued, not yet segmented
  std::map<std::uint32_t, TcpSegment> inflight_;  // seq -> segment
  EventId rto_event_ = kInvalidEventId;
  bool close_requested_ = false;
  bool fin_sent_ = false;
  std::uint64_t retransmits_ = 0;

  // Receive side.
  std::uint32_t rcv_nxt_ = 0;  // next expected byte
  std::map<std::uint32_t, std::string> out_of_order_;
};

}  // namespace skyloft

#endif  // SRC_NET_TCP_H_
