#include "src/net/frame.h"

#include <cstring>

namespace skyloft {

namespace {

std::uint16_t Load16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t Load32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) | (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) | static_cast<std::uint32_t>(p[3]);
}

// Validates the fixed header fields (magic/version/length bound); the length
// itself is returned through *len.
FrameDecodeStatus CheckHeader(const std::uint8_t* hdr, std::uint32_t* len) {
  if (Load16(hdr) != kFrameMagic || hdr[2] != kFrameVersion) {
    return FrameDecodeStatus::kError;
  }
  *len = Load32(hdr + 4);
  if (*len > kMaxFramePayload) {
    return FrameDecodeStatus::kError;
  }
  return FrameDecodeStatus::kFrame;
}

}  // namespace

void EncodeFrameHeader(std::uint8_t out[kFrameHeaderSize], std::uint32_t len, FrameOp op) {
  out[0] = static_cast<std::uint8_t>(kFrameMagic >> 8);
  out[1] = static_cast<std::uint8_t>(kFrameMagic & 0xff);
  out[2] = kFrameVersion;
  out[3] = static_cast<std::uint8_t>(op);
  out[4] = static_cast<std::uint8_t>(len >> 24);
  out[5] = static_cast<std::uint8_t>(len >> 16);
  out[6] = static_cast<std::uint8_t>(len >> 8);
  out[7] = static_cast<std::uint8_t>(len & 0xff);
}

std::string EncodeFrame(std::string_view payload, FrameOp op) {
  std::uint8_t hdr[kFrameHeaderSize];
  EncodeFrameHeader(hdr, static_cast<std::uint32_t>(payload.size()), op);
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(reinterpret_cast<const char*>(hdr), kFrameHeaderSize);
  out.append(payload.data(), payload.size());
  return out;
}

FrameDecodeStatus DecodeFrame(const std::uint8_t* data, std::size_t len, std::string* payload,
                              FrameOp* op) {
  if (len < kFrameHeaderSize) {
    return FrameDecodeStatus::kNeedMore;
  }
  std::uint32_t body = 0;
  if (CheckHeader(data, &body) == FrameDecodeStatus::kError) {
    return FrameDecodeStatus::kError;
  }
  if (len < kFrameHeaderSize + body) {
    return FrameDecodeStatus::kNeedMore;
  }
  if (len != kFrameHeaderSize + body) {
    return FrameDecodeStatus::kError;  // datagrams carry exactly one frame
  }
  payload->assign(reinterpret_cast<const char*>(data + kFrameHeaderSize), body);
  if (op != nullptr) {
    *op = static_cast<FrameOp>(data[3]);
  }
  return FrameDecodeStatus::kFrame;
}

void FrameDecoder::Feed(const void* data, std::size_t len) {
  if (poisoned_) {
    return;  // stream already desynchronized; drop everything
  }
  // Compact lazily: only once the consumed prefix dominates, so steady-state
  // framing does one memmove per buffer cycle, not per frame.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(static_cast<const char*>(data), len);
}

FrameDecodeStatus FrameDecoder::Next(std::string* payload, FrameOp* op) {
  if (poisoned_) {
    return FrameDecodeStatus::kError;
  }
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderSize) {
    return FrameDecodeStatus::kNeedMore;
  }
  const auto* hdr = reinterpret_cast<const std::uint8_t*>(buffer_.data() + consumed_);
  std::uint32_t body = 0;
  if (CheckHeader(hdr, &body) == FrameDecodeStatus::kError) {
    poisoned_ = true;
    return FrameDecodeStatus::kError;
  }
  if (avail < kFrameHeaderSize + body) {
    return FrameDecodeStatus::kNeedMore;
  }
  payload->assign(buffer_, consumed_ + kFrameHeaderSize, body);
  if (op != nullptr) {
    *op = static_cast<FrameOp>(hdr[3]);
  }
  consumed_ += kFrameHeaderSize + body;
  return FrameDecodeStatus::kFrame;
}

}  // namespace skyloft
