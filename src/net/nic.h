// Simulated NIC with Receive Side Scaling (paper §3.5).
//
// Mirrors the dataplane layout Skyloft borrows from IX/Shenango: a DPDK poll
// core takes packets off the wire and spreads them across per-core
// descriptor rings by RSS hash; isolated worker cores consume their rings.
// The rings are real SPSC rings (bounded, drop-counted) so overload behaviour
// is observable.
#ifndef SRC_NET_NIC_H_
#define SRC_NET_NIC_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/ring_buffer.h"
#include "src/base/time.h"
#include "src/simcore/sim_node.h"

namespace skyloft {

struct Packet {
  std::uint64_t flow = 0;       // 5-tuple stand-in: selects the RSS queue
  std::uint32_t length = 64;    // bytes on the wire
  TimeNs sent_at = 0;           // client timestamp
  int kind = 0;                 // request class (GET/SET/SCAN/...)
  DurationNs service_ns = 0;    // server-side work this request carries
};

class Nic {
 public:
  // `deliver` runs (in simulated time) whenever a packet lands in a ring;
  // the consumer should drain with PollQueue().
  using DeliverCallback = std::function<void(int queue)>;

  Nic(SimNode* sim, int num_queues, DurationNs wire_latency_ns, std::size_t ring_capacity,
      DeliverCallback deliver);

  // RSS hash: 64-bit finalizer over the flow id (stands in for Toeplitz).
  static std::uint32_t RssHash(std::uint64_t flow);

  int QueueFor(std::uint64_t flow) const {
    return static_cast<int>(RssHash(flow) % static_cast<std::uint32_t>(num_queues_));
  }

  // Puts a packet on the wire; it reaches its RSS queue after the wire
  // latency, or increments the drop counter if the ring is full.
  void Transmit(const Packet& packet);

  // Consumer side: pops one packet from `queue`; false when empty.
  bool PollQueue(int queue, Packet* out);

  std::uint64_t drops() const { return drops_; }
  std::uint64_t delivered() const { return delivered_; }
  int num_queues() const { return num_queues_; }
  DurationNs wire_latency() const { return wire_latency_ns_; }

 private:
  SimNode* sim_;
  int num_queues_;
  DurationNs wire_latency_ns_;
  std::vector<std::unique_ptr<SpscRing<Packet>>> rings_;
  DeliverCallback deliver_;
  std::uint64_t drops_ = 0;
  std::uint64_t delivered_ = 0;
};

}  // namespace skyloft

#endif  // SRC_NET_NIC_H_
