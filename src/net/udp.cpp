#include "src/net/udp.h"

#include <cstring>

namespace skyloft {

namespace {

void Put16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void Put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  Put16(out, static_cast<std::uint16_t>(v >> 16));
  Put16(out, static_cast<std::uint16_t>(v & 0xffff));
}

std::uint16_t Get16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t Get32(const std::uint8_t* p) {
  return (static_cast<std::uint32_t>(Get16(p)) << 16) | Get16(p + 2);
}

constexpr std::size_t kIpHeaderLen = 20;
constexpr std::size_t kUdpHeaderLen = 8;

}  // namespace

std::uint16_t InternetChecksum(const std::uint8_t* data, std::size_t len,
                               std::uint32_t initial) {
  std::uint32_t sum = initial;
  std::size_t i = 0;
  for (; i + 1 < len; i += 2) {
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < len) {
    sum += static_cast<std::uint32_t>(data[i] << 8);
  }
  while (sum >> 16) {
    sum = (sum & 0xffff) + (sum >> 16);
  }
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::vector<std::uint8_t> SerializeUdp(const UdpDatagram& dgram) {
  const auto udp_len = static_cast<std::uint16_t>(kUdpHeaderLen + dgram.payload.size());
  const auto total_len = static_cast<std::uint16_t>(kIpHeaderLen + udp_len);

  std::vector<std::uint8_t> out;
  out.reserve(total_len);

  // IPv4 header with zero checksum first, then patch it in.
  out.push_back(dgram.ip.version_ihl);
  out.push_back(dgram.ip.dscp_ecn);
  Put16(out, total_len);
  Put16(out, dgram.ip.identification);
  Put16(out, dgram.ip.flags_fragment);
  out.push_back(dgram.ip.ttl);
  out.push_back(dgram.ip.protocol);
  Put16(out, 0);  // checksum placeholder
  Put32(out, dgram.ip.src_addr);
  Put32(out, dgram.ip.dst_addr);
  const std::uint16_t ip_csum = InternetChecksum(out.data(), kIpHeaderLen);
  out[10] = static_cast<std::uint8_t>(ip_csum >> 8);
  out[11] = static_cast<std::uint8_t>(ip_csum & 0xff);

  // UDP header + payload; checksum over the pseudo-header + segment.
  const std::size_t udp_off = out.size();
  Put16(out, dgram.udp.src_port);
  Put16(out, dgram.udp.dst_port);
  Put16(out, udp_len);
  Put16(out, 0);  // checksum placeholder
  out.insert(out.end(), dgram.payload.begin(), dgram.payload.end());

  // Pseudo-header: src, dst, zero+protocol, UDP length.
  std::vector<std::uint8_t> pseudo;
  Put32(pseudo, dgram.ip.src_addr);
  Put32(pseudo, dgram.ip.dst_addr);
  pseudo.push_back(0);
  pseudo.push_back(dgram.ip.protocol);
  Put16(pseudo, udp_len);
  pseudo.insert(pseudo.end(), out.begin() + static_cast<std::ptrdiff_t>(udp_off), out.end());
  std::uint16_t udp_csum = InternetChecksum(pseudo.data(), pseudo.size());
  if (udp_csum == 0) {
    udp_csum = 0xffff;  // RFC 768: transmitted zero means "no checksum"
  }
  out[udp_off + 6] = static_cast<std::uint8_t>(udp_csum >> 8);
  out[udp_off + 7] = static_cast<std::uint8_t>(udp_csum & 0xff);
  return out;
}

std::optional<UdpDatagram> ParseUdp(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kIpHeaderLen + kUdpHeaderLen) {
    return std::nullopt;
  }
  UdpDatagram dgram;
  dgram.ip.version_ihl = bytes[0];
  if (dgram.ip.version_ihl != 0x45) {
    return std::nullopt;  // only plain IPv4/20-byte headers
  }
  dgram.ip.dscp_ecn = bytes[1];
  dgram.ip.total_length = Get16(&bytes[2]);
  dgram.ip.identification = Get16(&bytes[4]);
  dgram.ip.flags_fragment = Get16(&bytes[6]);
  dgram.ip.ttl = bytes[8];
  dgram.ip.protocol = bytes[9];
  if (dgram.ip.protocol != 17) {
    return std::nullopt;
  }
  dgram.ip.checksum = Get16(&bytes[10]);
  if (InternetChecksum(bytes.data(), kIpHeaderLen) != 0) {
    return std::nullopt;  // header checksum over a valid header sums to zero
  }
  dgram.ip.src_addr = Get32(&bytes[12]);
  dgram.ip.dst_addr = Get32(&bytes[16]);
  if (dgram.ip.total_length != bytes.size()) {
    return std::nullopt;
  }

  const std::uint8_t* udp = &bytes[kIpHeaderLen];
  dgram.udp.src_port = Get16(udp);
  dgram.udp.dst_port = Get16(udp + 2);
  dgram.udp.length = Get16(udp + 4);
  dgram.udp.checksum = Get16(udp + 6);
  if (dgram.udp.length != bytes.size() - kIpHeaderLen) {
    return std::nullopt;
  }
  if (dgram.udp.checksum != 0) {
    std::vector<std::uint8_t> pseudo;
    Put32(pseudo, dgram.ip.src_addr);
    Put32(pseudo, dgram.ip.dst_addr);
    pseudo.push_back(0);
    pseudo.push_back(dgram.ip.protocol);
    Put16(pseudo, dgram.udp.length);
    pseudo.insert(pseudo.end(), bytes.begin() + static_cast<std::ptrdiff_t>(kIpHeaderLen),
                  bytes.end());
    if (InternetChecksum(pseudo.data(), pseudo.size()) != 0) {
      return std::nullopt;
    }
  }
  dgram.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(kIpHeaderLen + kUdpHeaderLen),
                       bytes.end());
  return dgram;
}

}  // namespace skyloft
