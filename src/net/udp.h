// Minimal IPv4/UDP header model for the user-space network stack (§3.5).
//
// The simulated dataplane carries Packet structs; this header codec is the
// piece of the UDP stack that actually transforms bytes, used by the network
// tests and the example KV server's wire format.
#ifndef SRC_NET_UDP_H_
#define SRC_NET_UDP_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace skyloft {

struct Ipv4Header {
  std::uint8_t version_ihl = 0x45;  // IPv4, 20-byte header
  std::uint8_t dscp_ecn = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint16_t flags_fragment = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 17;  // UDP
  std::uint16_t checksum = 0;
  std::uint32_t src_addr = 0;
  std::uint32_t dst_addr = 0;
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload
  std::uint16_t checksum = 0;
};

struct UdpDatagram {
  Ipv4Header ip;
  UdpHeader udp;
  std::vector<std::uint8_t> payload;
};

// RFC 1071 internet checksum over `data` (plus `initial` partial sum).
std::uint16_t InternetChecksum(const std::uint8_t* data, std::size_t len,
                               std::uint32_t initial = 0);

// Serializes the datagram (network byte order), computing both checksums.
std::vector<std::uint8_t> SerializeUdp(const UdpDatagram& dgram);

// Parses and validates a datagram; nullopt on truncation, bad version,
// non-UDP protocol, or checksum mismatch.
std::optional<UdpDatagram> ParseUdp(const std::vector<std::uint8_t>& bytes);

}  // namespace skyloft

#endif  // SRC_NET_UDP_H_
