// Length-prefixed application frame codec for the real-socket serving path.
//
// TCP delivers a byte stream with arbitrary segmentation, so the networked
// KV server (src/apps/kv_server_net) frames every request and response:
//
//   offset 0  u16  magic   0x534b ("SK"), big-endian
//   offset 2  u8   version (1)
//   offset 3  u8   opcode  (application-defined; the KV server uses kData)
//   offset 4  u32  payload length, big-endian
//   offset 8  payload bytes
//
// The same frame is used one-per-datagram on UDP, where the magic/version
// check rejects stray or truncated packets.
//
// Decoding is incremental and never asserts on hostile input: FrameDecoder
// accepts bytes in arbitrary chunks (byte-at-a-time included — the
// robustness test feeds exactly that) and reports kNeedMore until a full
// frame is buffered, or kError on a bad magic/version/oversized length.
// After kError the stream is poisoned (a desynchronized length-prefixed
// stream cannot be resynchronized safely); the server closes the connection.
#ifndef SRC_NET_FRAME_H_
#define SRC_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace skyloft {

inline constexpr std::size_t kFrameHeaderSize = 8;
inline constexpr std::uint16_t kFrameMagic = 0x534b;  // "SK"
inline constexpr std::uint8_t kFrameVersion = 1;
// Upper bound on a single payload; a length above this is treated as stream
// corruption rather than an allocation request (SCAN replies cap well below).
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

enum class FrameOp : std::uint8_t {
  kData = 0,   // request/response payload (the KV text protocol)
  kError = 1,  // server-side error report
};

// Writes the 8-byte header for a payload of `len` bytes into `out`.
void EncodeFrameHeader(std::uint8_t out[kFrameHeaderSize], std::uint32_t len,
                       FrameOp op = FrameOp::kData);

// Convenience: header + payload in one buffer (client side and UDP, where a
// copy is acceptable; the server's TCP path writev's header and payload
// separately instead — see kv_server_net).
std::string EncodeFrame(std::string_view payload, FrameOp op = FrameOp::kData);

enum class FrameDecodeStatus {
  kFrame,     // a complete frame was extracted
  kNeedMore,  // valid prefix; feed more bytes
  kError,     // bad magic/version or oversized length; stream is poisoned
};

// One-shot decode for datagrams: the buffer must contain exactly one frame.
// Trailing garbage, truncation, or a bad header all return kError/kNeedMore
// without touching *payload.
FrameDecodeStatus DecodeFrame(const std::uint8_t* data, std::size_t len, std::string* payload,
                              FrameOp* op = nullptr);

// Incremental stream decoder. Typical server loop:
//   decoder.Feed(buf, n);
//   std::string payload;
//   while (decoder.Next(&payload) == FrameDecodeStatus::kFrame) { serve(payload); }
//   if (decoder.poisoned()) { close connection; }
class FrameDecoder {
 public:
  // Appends raw bytes from the stream (any chunking, including 1 byte).
  void Feed(const void* data, std::size_t len);

  // Extracts the next complete frame into *payload (and *op if non-null).
  // kNeedMore when the buffer holds only a partial frame; kError latches
  // `poisoned` and every subsequent call returns kError.
  FrameDecodeStatus Next(std::string* payload, FrameOp* op = nullptr);

  bool poisoned() const { return poisoned_; }
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  std::size_t consumed_ = 0;  // bytes of buffer_ already handed out as frames
  bool poisoned_ = false;
};

}  // namespace skyloft

#endif  // SRC_NET_FRAME_H_
