#include "src/net/loadgen.h"

#include "src/base/logging.h"

namespace skyloft {

double MixMeanNs(const RequestMix& mix) {
  double total_weight = 0;
  double sum = 0;
  for (const RequestClass& cls : mix) {
    total_weight += cls.weight;
    sum += cls.weight * cls.dist.MeanNs();
  }
  SKYLOFT_CHECK(total_weight > 0);
  return sum / total_weight;
}

PoissonClient::PoissonClient(Engine* engine, App* app, RequestMix mix, Options options)
    : engine_(engine),
      app_(app),
      mix_(std::move(mix)),
      options_(options),
      rng_(Rng::DeriveStream(options.seed, static_cast<std::uint64_t>(options.node_id))) {
  SKYLOFT_CHECK(!mix_.empty());
  SKYLOFT_CHECK(options_.rate_rps > 0);
  SKYLOFT_CHECK(options_.node_id >= 0);
  for (const RequestClass& cls : mix_) {
    total_weight_ += cls.weight;
  }
  nic_ = std::make_unique<Nic>(&engine_->machine().sim(), engine_->NumWorkers(),
                               options_.wire_ns, options_.ring_capacity,
                               [this](int queue) { Deliver(queue); });
}

void PoissonClient::Start() {
  running_ = true;
  ScheduleNext();
}

void PoissonClient::ScheduleNext() {
  const double mean_gap_ns = 1e9 / options_.rate_rps;
  const auto gap = static_cast<DurationNs>(rng_.NextExponential(mean_gap_ns));
  engine_->machine().sim().ScheduleAfter(gap, [this] {
    if (!running_) {
      return;
    }
    GenerateOne();
    ScheduleNext();
  });
}

void PoissonClient::GenerateOne() {
  generated_++;
  double pick = rng_.NextDouble() * total_weight_;
  const RequestClass* chosen = &mix_.back();
  for (const RequestClass& cls : mix_) {
    if (pick < cls.weight) {
      chosen = &cls;
      break;
    }
    pick -= cls.weight;
  }
  Packet packet;
  packet.flow = next_flow_++;
  packet.sent_at = engine_->Now();
  packet.kind = chosen->kind;
  packet.service_ns = chosen->dist.Sample(rng_);
  nic_->Transmit(packet);
}

void PoissonClient::Deliver(int queue) {
  Packet packet;
  while (nic_->PollQueue(queue, &packet)) {
    Task* task = engine_->NewTask(app_, packet.service_ns, packet.kind);
    const int hint = options_.rss_route ? queue : -1;
    engine_->Submit(task, hint);
  }
}

}  // namespace skyloft
