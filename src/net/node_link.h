// Inter-node network link: the only way simulated nodes of a ClusterSim talk
// to each other.
//
// A link is unidirectional and carries a fixed one-way latency; constructing
// it registers that latency with the cluster, whose conservative lookahead is
// the minimum over all links (see src/simcore/cluster_sim.h). Zero latency is
// rejected — the lookahead must be positive for shards to run whole time
// windows in parallel. Make a pair of links for a bidirectional cable (the
// two directions may have different latencies, e.g. an asymmetric WAN path).
//
// Send() queues a callback for execution on the destination shard at
// Now() + latency; it is delivered at the next epoch barrier in a fixed
// order, so cluster traces are deterministic at any host-thread count.
// Cancel() works while the message is still in flight on the link (it has
// not crossed a barrier); after delivery the destination owns the event and
// Cancel returns false.
#ifndef SRC_NET_NODE_LINK_H_
#define SRC_NET_NODE_LINK_H_

#include "src/simcore/cluster_sim.h"

namespace skyloft {

class NodeLink {
 public:
  NodeLink(ClusterSim* cluster, int src_node, int dst_node, DurationNs latency_ns);

  NodeLink(const NodeLink&) = delete;
  NodeLink& operator=(const NodeLink&) = delete;

  // Runs `fn` on the destination shard at src.Now() + latency().
  RemoteEventId Send(SimNode::Callback fn);

  // Cancels an in-flight send; false once it crossed an epoch barrier.
  bool Cancel(RemoteEventId id);

  int src() const { return src_->node_id(); }
  int dst() const { return dst_node_; }
  DurationNs latency() const { return latency_ns_; }
  std::uint64_t sent() const { return sent_; }

 private:
  SimNode* src_;
  int dst_node_;
  DurationNs latency_ns_;
  std::uint64_t sent_ = 0;
};

}  // namespace skyloft

#endif  // SRC_NET_NODE_LINK_H_
