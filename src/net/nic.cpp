#include "src/net/nic.h"

#include "src/base/logging.h"

namespace skyloft {

Nic::Nic(SimNode* sim, int num_queues, DurationNs wire_latency_ns,
         std::size_t ring_capacity, DeliverCallback deliver)
    : sim_(sim),
      num_queues_(num_queues),
      wire_latency_ns_(wire_latency_ns),
      deliver_(std::move(deliver)) {
  SKYLOFT_CHECK(num_queues > 0);
  rings_.reserve(static_cast<std::size_t>(num_queues));
  for (int q = 0; q < num_queues; q++) {
    rings_.push_back(std::make_unique<SpscRing<Packet>>(ring_capacity));
  }
}

std::uint32_t Nic::RssHash(std::uint64_t flow) {
  // splitmix64 finalizer: uniform enough to stand in for Toeplitz RSS.
  std::uint64_t z = flow + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<std::uint32_t>(z);
}

void Nic::Transmit(const Packet& packet) {
  const int queue = QueueFor(packet.flow);
  sim_->ScheduleAfter(wire_latency_ns_, [this, queue, packet] {
    if (!rings_[static_cast<std::size_t>(queue)]->TryPush(packet)) {
      drops_++;
      return;
    }
    delivered_++;
    if (deliver_) {
      deliver_(queue);
    }
  });
}

bool Nic::PollQueue(int queue, Packet* out) {
  SKYLOFT_CHECK(queue >= 0 && queue < num_queues_);
  return rings_[static_cast<std::size_t>(queue)]->TryPop(out);
}

}  // namespace skyloft
