#include "src/net/node_link.h"

#include <utility>

#include "src/base/logging.h"

namespace skyloft {

NodeLink::NodeLink(ClusterSim* cluster, int src_node, int dst_node, DurationNs latency_ns)
    : dst_node_(dst_node), latency_ns_(latency_ns) {
  SKYLOFT_CHECK(cluster != nullptr);
  SKYLOFT_CHECK(src_node >= 0 && src_node < cluster->num_nodes());
  SKYLOFT_CHECK(dst_node >= 0 && dst_node < cluster->num_nodes());
  SKYLOFT_CHECK(src_node != dst_node) << "a node does not link to itself";
  cluster->RegisterLinkLatency(latency_ns);  // rejects zero latency
  src_ = cluster->node(src_node);
}

RemoteEventId NodeLink::Send(SimNode::Callback fn) {
  sent_++;
  return src_->SendRemote(dst_node_, latency_ns_, std::move(fn));
}

bool NodeLink::Cancel(RemoteEventId id) { return src_->CancelRemote(id); }

}  // namespace skyloft
