#include "src/runtime/sync.h"

#include "src/base/compiler.h"
#include "src/base/logging.h"
#include "src/runtime/io_engine.h"

namespace skyloft {

namespace {

// Shared wait loop for both directions. `consume` is the latch bit this wait
// consumes (kIoReadable/kIoWritable); hup/error terminate either direction
// and stay latched.
SKYLOFT_MAY_SWITCH unsigned WaitForIo(IoHandle* handle, unsigned consume,
                                      std::atomic<UThread*>* waiter_slot, bool want_write) {
  const unsigned wake_mask = consume | kIoHup | kIoError;
  while (true) {
    unsigned ready = handle->ready.load(std::memory_order_acquire);
    if (ready & wake_mask) {
      handle->ready.fetch_and(~consume, std::memory_order_acq_rel);
      return ready;
    }
    // Publish ourselves, then re-check: the engine's DeliverReady latches ready
    // BEFORE exchanging the waiter slot, so either we see the latch here or
    // the engine sees us and unparks. A double-win (both happen) costs one
    // stale unpark token, which every Park loop tolerates.
    waiter_slot->store(Runtime::Current(), std::memory_order_release);
    if (want_write) {
      // io_uring arms write interest on demand (oneshot POLLOUT); epoll's
      // persistent EPOLLOUT|EPOLLET makes this a no-op.
      handle->engine->RequestWritable(handle);
    }
    // Full fence so the re-check below cannot be hoisted above the waiter
    // publish (StoreLoad reordering is legal even on x86, and would let both
    // sides miss each other). The engine side needs no fence: its fetch_or
    // and exchange are RMWs, which always observe the latest slot value.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    ready = handle->ready.load(std::memory_order_acquire);
    if (ready & wake_mask) {
      waiter_slot->store(nullptr, std::memory_order_release);
      handle->ready.fetch_and(~consume, std::memory_order_acq_rel);
      return ready;
    }
    Runtime::Park();
  }
}

}  // namespace

unsigned WaitForReadable(IoHandle* handle) {
  return WaitForIo(handle, kIoReadable, &handle->reader, /*want_write=*/false);
}

unsigned WaitForWritable(IoHandle* handle) {
  return WaitForIo(handle, kIoWritable, &handle->writer, /*want_write=*/true);
}

void UthreadMutex::SpinAcquire() {
  SpinBackoff backoff;
  while (wait_spin_.test_and_set(std::memory_order_acquire)) {
    backoff.Pause();
  }
}

void UthreadMutex::SpinRelease() { wait_spin_.clear(std::memory_order_release); }

bool UthreadMutex::TryLock() {
  bool expected = false;
  return locked_.compare_exchange_strong(expected, true, std::memory_order_acquire);
}

void UthreadMutex::Lock() {
  if (TryLock()) {
    return;
  }
  Runtime::PreemptGuard guard;
  Waiter waiter;
  waiter.thread = Runtime::Current();
  while (true) {
    SpinAcquire();
    if (TryLock()) {
      SpinRelease();
      return;
    }
    waiters_.PushBack(&waiter);
    waiter_count_.fetch_add(1, std::memory_order_release);
    SpinRelease();
    // Recheck after publishing the waiter: an Unlock may have raced between
    // our failed TryLock and the publish, and seen zero waiters.
    if (TryLock()) {
      SpinAcquire();
      if (waiter.IsLinked()) {
        waiters_.Remove(&waiter);
        waiter_count_.fetch_sub(1, std::memory_order_release);
      }
      SpinRelease();
      // If we were already popped, a stale unpark token is pending; Park()
      // consumers (all loops) tolerate the resulting spurious return.
      return;
    }
    Runtime::Park();
    // Woken by an Unlock handoff attempt: loop and race for the lock.
  }
}

void UthreadMutex::Unlock() {
  locked_.store(false, std::memory_order_release);
  if (waiter_count_.load(std::memory_order_acquire) == 0) {
    return;  // uncontended fast path: one store + one load
  }
  Runtime::PreemptGuard guard;
  SpinAcquire();
  Waiter* next = waiters_.PopFront();
  if (next != nullptr) {
    waiter_count_.fetch_sub(1, std::memory_order_release);
  }
  SpinRelease();
  if (next != nullptr) {
    Runtime::Unpark(next->thread);
  }
}

void UthreadCondVar::SpinAcquire() {
  SpinBackoff backoff;
  while (wait_spin_.test_and_set(std::memory_order_acquire)) {
    backoff.Pause();
  }
}

void UthreadCondVar::SpinRelease() { wait_spin_.clear(std::memory_order_release); }

void UthreadCondVar::Wait(UthreadMutex* mutex) {
  Runtime::PreemptGuard guard;
  Waiter waiter;
  waiter.thread = Runtime::Current();
  SpinAcquire();
  waiters_.PushBack(&waiter);
  SpinRelease();
  mutex->Unlock();
  Runtime::Park();
  mutex->Lock();
}

void UthreadCondVar::Signal() {
  Runtime::PreemptGuard guard;
  SpinAcquire();
  Waiter* waiter = waiters_.PopFront();
  SpinRelease();
  if (waiter != nullptr) {
    Runtime::Unpark(waiter->thread);
  }
}

void UthreadCondVar::Broadcast() {
  Runtime::PreemptGuard guard;
  while (true) {
    SpinAcquire();
    Waiter* waiter = waiters_.PopFront();
    SpinRelease();
    if (waiter == nullptr) {
      return;
    }
    Runtime::Unpark(waiter->thread);
  }
}

}  // namespace skyloft
