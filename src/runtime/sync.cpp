#include "src/runtime/sync.h"

#include "src/base/compiler.h"
#include "src/base/logging.h"

namespace skyloft {

void UthreadMutex::SpinAcquire() {
  SpinBackoff backoff;
  while (wait_spin_.test_and_set(std::memory_order_acquire)) {
    backoff.Pause();
  }
}

void UthreadMutex::SpinRelease() { wait_spin_.clear(std::memory_order_release); }

bool UthreadMutex::TryLock() {
  bool expected = false;
  return locked_.compare_exchange_strong(expected, true, std::memory_order_acquire);
}

void UthreadMutex::Lock() {
  if (TryLock()) {
    return;
  }
  Runtime::PreemptGuard guard;
  Waiter waiter;
  waiter.thread = Runtime::Current();
  while (true) {
    SpinAcquire();
    if (TryLock()) {
      SpinRelease();
      return;
    }
    waiters_.PushBack(&waiter);
    waiter_count_.fetch_add(1, std::memory_order_release);
    SpinRelease();
    // Recheck after publishing the waiter: an Unlock may have raced between
    // our failed TryLock and the publish, and seen zero waiters.
    if (TryLock()) {
      SpinAcquire();
      if (waiter.IsLinked()) {
        waiters_.Remove(&waiter);
        waiter_count_.fetch_sub(1, std::memory_order_release);
      }
      SpinRelease();
      // If we were already popped, a stale unpark token is pending; Park()
      // consumers (all loops) tolerate the resulting spurious return.
      return;
    }
    Runtime::Park();
    // Woken by an Unlock handoff attempt: loop and race for the lock.
  }
}

void UthreadMutex::Unlock() {
  locked_.store(false, std::memory_order_release);
  if (waiter_count_.load(std::memory_order_acquire) == 0) {
    return;  // uncontended fast path: one store + one load
  }
  Runtime::PreemptGuard guard;
  SpinAcquire();
  Waiter* next = waiters_.PopFront();
  if (next != nullptr) {
    waiter_count_.fetch_sub(1, std::memory_order_release);
  }
  SpinRelease();
  if (next != nullptr) {
    Runtime::Unpark(next->thread);
  }
}

void UthreadCondVar::SpinAcquire() {
  SpinBackoff backoff;
  while (wait_spin_.test_and_set(std::memory_order_acquire)) {
    backoff.Pause();
  }
}

void UthreadCondVar::SpinRelease() { wait_spin_.clear(std::memory_order_release); }

void UthreadCondVar::Wait(UthreadMutex* mutex) {
  Runtime::PreemptGuard guard;
  Waiter waiter;
  waiter.thread = Runtime::Current();
  SpinAcquire();
  waiters_.PushBack(&waiter);
  SpinRelease();
  mutex->Unlock();
  Runtime::Park();
  mutex->Lock();
}

void UthreadCondVar::Signal() {
  Runtime::PreemptGuard guard;
  SpinAcquire();
  Waiter* waiter = waiters_.PopFront();
  SpinRelease();
  if (waiter != nullptr) {
    Runtime::Unpark(waiter->thread);
  }
}

void UthreadCondVar::Broadcast() {
  Runtime::PreemptGuard guard;
  while (true) {
    SpinAcquire();
    Waiter* waiter = waiters_.PopFront();
    SpinRelease();
    if (waiter == nullptr) {
      return;
    }
    Runtime::Unpark(waiter->thread);
  }
}

}  // namespace skyloft
