#include "src/runtime/context.h"

#include "src/base/logging.h"

// Layout of a switched-out stack (growing down):
//   [ ... frames ... ]
//   return address        <- where skyloft_ctx_switch returns to
//   rbp
//   rbx
//   r12
//   r13
//   r14
//   r15                   <- saved rsp points here
//
// A fresh thread's stack is forged so that the first switch-in "returns"
// into a trampoline that pops entry/arg from the stack area.
__asm__(
    ".text\n"
    ".globl skyloft_ctx_switch\n"
    ".type skyloft_ctx_switch,@function\n"
    ".align 16\n"
    "skyloft_ctx_switch:\n"
    "  pushq %rbp\n"
    "  pushq %rbx\n"
    "  pushq %r12\n"
    "  pushq %r13\n"
    "  pushq %r14\n"
    "  pushq %r15\n"
    "  movq %rsp, (%rdi)\n"
    "  movq %rsi, %rsp\n"
    "  popq %r15\n"
    "  popq %r14\n"
    "  popq %r13\n"
    "  popq %r12\n"
    "  popq %rbx\n"
    "  popq %rbp\n"
    "  retq\n"
    ".size skyloft_ctx_switch,.-skyloft_ctx_switch\n"
    // Trampoline: the forged stack leaves entry in %r12 and arg in %r13
    // (callee-saved, so the switch restored them). Aligns and calls.
    ".globl skyloft_ctx_trampoline\n"
    ".type skyloft_ctx_trampoline,@function\n"
    ".align 16\n"
    "skyloft_ctx_trampoline:\n"
    "  movq %r13, %rdi\n"
    "  andq $-16, %rsp\n"  // SysV: rsp must be 16-aligned at the call
    "  callq *%r12\n"
    "  ud2\n"  // entry must never return (it switches away forever)
    ".size skyloft_ctx_trampoline,.-skyloft_ctx_trampoline\n");

extern "C" void skyloft_ctx_trampoline();

namespace skyloft {

void* InitContext(void* stack_base, std::size_t stack_size, UthreadEntry entry, void* arg) {
  SKYLOFT_CHECK(stack_size >= 1024);
  auto top = reinterpret_cast<std::uintptr_t>(stack_base) + stack_size;
  top &= ~std::uintptr_t{15};  // 16-byte align the logical stack top

  auto* sp = reinterpret_cast<std::uint64_t*>(top);
  // Fake return address (terminates debugger backtraces) ...
  *--sp = 0;
  // ... then the trampoline "return address". After the 6 register pops the
  // switch's retq consumes this slot, leaving rsp ≡ 8 (mod 16) at trampoline
  // entry, exactly as if it had been call'ed — keeping callees aligned.
  *--sp = reinterpret_cast<std::uint64_t>(&skyloft_ctx_trampoline);
  *--sp = 0;                                          // rbp
  *--sp = 0;                                          // rbx
  *--sp = reinterpret_cast<std::uint64_t>(entry);     // r12 -> entry
  *--sp = reinterpret_cast<std::uint64_t>(arg);       // r13 -> arg
  *--sp = 0;                                          // r14
  *--sp = 0;                                          // r15
  return sp;
}

}  // namespace skyloft
