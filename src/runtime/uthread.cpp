#include "src/runtime/uthread.h"

#include <link.h>
#include <pthread.h>
#include <ucontext.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <ctime>
#include <new>

#include "src/base/logging.h"
#include "src/runtime/context.h"
#include "src/runtime/quantum_controller.h"

// ThreadSanitizer cannot follow hand-rolled stack switches on its own: every
// uthread stack is announced as a TSan "fiber" and each skyloft_ctx_switch
// is bracketed by __tsan_switch_to_fiber so the race detector tracks the
// happens-before of the scheduler correctly.
#if defined(__SANITIZE_THREAD__)
#define SKYLOFT_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SKYLOFT_TSAN 1
#endif
#endif

#ifdef SKYLOFT_TSAN
extern "C" {
void* __tsan_get_current_fiber(void);
void* __tsan_create_fiber(unsigned flags);
void __tsan_destroy_fiber(void* fiber);
void __tsan_switch_to_fiber(void* fiber, unsigned flags);
}
#endif

// AddressSanitizer likewise needs each stack switch announced, or its
// interceptors flag the new stack pointer as outside the pthread's stack.
// Protocol: __sanitizer_start_switch_fiber (with the DESTINATION stack's
// bounds, saving the departing context's fake-stack handle) immediately
// before the switch; __sanitizer_finish_switch_fiber (with the handle this
// context saved when it last left) immediately after landing. A null save
// slot on a definitive exit destroys the departing fiber's fake stack.
#if defined(__SANITIZE_ADDRESS__)
#define SKYLOFT_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SKYLOFT_ASAN 1
#endif
#endif

#ifdef SKYLOFT_ASAN
extern "C" {
void __sanitizer_start_switch_fiber(void** fake_stack_save, const void* bottom, size_t size);
void __sanitizer_finish_switch_fiber(void* fake_stack_save, const void** bottom_old,
                                     size_t* size_old);
void __asan_unpoison_memory_region(void const volatile* addr, size_t size);
}
#endif

namespace skyloft {

namespace {

// One runtime at a time may be running; the static API resolves through this.
Runtime* g_runtime = nullptr;

// What the uthread asked the scheduler to do when it switched out.
//   kTick: the preemption timer fired; the scheduler runs sched_timer_tick
//   and either requeues the uthread (preempt) or resumes it directly.
enum class SwitchAction : std::uint8_t { kNone, kYield, kPark, kTick, kExit };

constexpr int kPreemptSignal = SIGURG;

// --- Async-preemption safe points -----------------------------------------
//
// The preemption signal can land anywhere, including inside glibc's malloc.
// glibc's tcache is per-pthread and LOCKLESS: it assumes one execution
// context per pthread. If the handler switches away mid-allocation and this
// pthread then runs another uthread that also allocates, the half-updated
// tcache is corrupted ("malloc(): unaligned tcache chunk", random segfaults).
// The same applies to any libc/ld state keyed on the pthread (stdio lock
// ownership, the dynamic-loader lock during lazy PLT resolution, ...).
//
// Like Go's asynchronous preemption, we only preempt at safe points: the
// handler reads the interrupted PC and defers (returns, letting the next
// timer period retry) unless the PC is inside the main executable's own
// text. Application compute — the paper's preemption target — lives there;
// the non-reentrant per-thread state lives in the shared libraries.
struct TextRange {
  std::uintptr_t lo = 0;
  std::uintptr_t hi = 0;
};
TextRange g_exe_text[8];
int g_exe_text_count = 0;

int CollectExeText(struct dl_phdr_info* info, std::size_t /*size*/, void* /*data*/) {
  if (info->dlpi_name != nullptr && info->dlpi_name[0] != '\0') {
    return 0;  // a shared object; the main executable has the empty name
  }
  for (int i = 0; i < info->dlpi_phnum; i++) {
    const auto& ph = info->dlpi_phdr[i];
    if (ph.p_type == PT_LOAD && (ph.p_flags & PF_X) != 0 &&
        g_exe_text_count < static_cast<int>(sizeof(g_exe_text) / sizeof(g_exe_text[0]))) {
      g_exe_text[g_exe_text_count].lo = info->dlpi_addr + ph.p_vaddr;
      g_exe_text[g_exe_text_count].hi = info->dlpi_addr + ph.p_vaddr + ph.p_memsz;
      g_exe_text_count++;
    }
  }
  return 0;
}

bool PreemptSafePc(std::uintptr_t pc) {
  if (g_exe_text_count == 0) {
    return true;  // no map (fully static build?) — preempt everywhere
  }
  for (int i = 0; i < g_exe_text_count; i++) {
    if (pc >= g_exe_text[i].lo && pc < g_exe_text[i].hi) {
      return true;
    }
  }
  return false;
}

void TsanSwitchTo(void* fiber) {
#ifdef SKYLOFT_TSAN
  __tsan_switch_to_fiber(fiber, 0);
#else
  (void)fiber;
#endif
}

SKYLOFT_SIGNAL_SAFE void AsanStartSwitch(void** fake_stack_save, const void* bottom,
                                         std::size_t size) {
#ifdef SKYLOFT_ASAN
  __sanitizer_start_switch_fiber(fake_stack_save, bottom, size);
#else
  (void)fake_stack_save;
  (void)bottom;
  (void)size;
#endif
}

SKYLOFT_SIGNAL_SAFE void AsanFinishSwitch(void* fake_stack_save) {
#ifdef SKYLOFT_ASAN
  __sanitizer_finish_switch_fiber(fake_stack_save, nullptr, nullptr);
#else
  (void)fake_stack_save;
#endif
}

void AsanUnpoisonStack(const void* stack, std::size_t size) {
#ifdef SKYLOFT_ASAN
  __asan_unpoison_memory_region(stack, size);
#else
  (void)stack;
  (void)size;
#endif
}

std::int64_t MonotonicNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Trace timestamps for the runtime, including from inside the signal
// handler: clock_gettime(CLOCK_MONOTONIC) is async-signal-safe, unlike the
// std::chrono machinery behind MonotonicNs. Same epoch as MonotonicNs on
// glibc (steady_clock is CLOCK_MONOTONIC), so spans and ticks line up.
SKYLOFT_SIGNAL_SAFE std::int64_t TraceClockNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

// glibc marks __errno_location() __attribute__((const)), so the compiler
// reuses one pointer for every `errno` in a frame — including across a
// context switch that migrates the uthread to another pthread, where the
// cached pointer names the WRONG thread's errno. This helper re-derives the
// location on every call; the asm clobber stops const/pure inference.
SKYLOFT_RETURNS_TLS SKYLOFT_SIGNAL_SAFE __attribute__((noinline)) int* CurrentErrnoLocation() {
  asm volatile("" ::: "memory");
  return &errno;
}

}  // namespace

struct RuntimeWorker {
  Runtime* runtime = nullptr;
  int index = 0;

  // Per-worker handle into the policy layer (Table 2 ops under shard locks).
  HostSchedCore sched;

  void* sched_sp = nullptr;
  UThread* current = nullptr;
  SwitchAction action = SwitchAction::kNone;
  // When `current` was switched in (or last charged by a tick): the base for
  // the ran_ns passed to sched_timer_tick.
  std::int64_t run_charge = 0;
  // When `current` was switched in, on the trace clock: the start of the
  // occupancy span the scheduler emits when the uthread switches back out.
  // Separate from run_charge, which is conditional on the signal timer.
  std::int64_t trace_run_start = 0;

  // 0 => the preemption signal handler may switch; anything else defers.
  std::atomic<int> preempt_disable{1};

  void* tsan_fiber = nullptr;  // the worker's scheduler stack, under TSan

  // ASan fiber bookkeeping: the pthread stack's bounds (the switch target
  // when a uthread switches out) and the scheduler context's fake-stack
  // handle, saved while a uthread runs.
  const void* asan_stack_bottom = nullptr;
  std::size_t asan_stack_size = 0;
  void* asan_fake_stack = nullptr;

  pthread_t pthread_handle{};
  std::atomic<bool> handle_valid{false};
};

namespace {
thread_local RuntimeWorker* tl_worker = nullptr;

// UThread park/unpark handshake states (see Park/Unpark):
//   0 running, 1 parking (announced), 2 unpark pending, 3 fully parked
constexpr int kParkRunning = 0;
constexpr int kParkParking = 1;
constexpr int kParkUnparkPending = 2;
constexpr int kParkParked = 3;
}  // namespace

// Park handshake word; kept out of UThread's public header to avoid leaking
// scheduler internals. Allocated immediately after the UThread object in the
// same storage block (see AllocUthread).
struct UThreadExtra {
  std::atomic<int> park{kParkRunning};
  // PreemptGuard depth for this uthread; checked by the signal handler in
  // addition to the worker's own preempt_disable. Per-uthread because a
  // guard can span a Park() that resumes on a different worker.
  std::atomic<int> preempt_count{0};
  void* tsan_fiber = nullptr;
  // This uthread's ASan fake-stack handle, saved while it is switched out.
  // Null on first entry and after an exit (ExitCurrent destroys it).
  void* asan_fake_stack = nullptr;
};

namespace {
UThreadExtra* ExtraOf(UThread* t) { return reinterpret_cast<UThreadExtra*>(t + 1); }
}  // namespace

Runtime::Runtime(RuntimeOptions options) : options_(options) {
  SKYLOFT_CHECK(options_.workers >= 1);
  SKYLOFT_CHECK(options_.stack_size >= 4096);
  preempt_period_us_.store(options_.preempt_period_us > 0 ? options_.preempt_period_us : 0,
                           std::memory_order_relaxed);
  sched_ = std::make_unique<HostSched>(options_.workers, options_.sched);
  preemptions_ = metrics_.AddCounter("preemptions");
  preempt_deferrals_ = metrics_.AddCounter("preempt_deferrals");
  external_placements_ = metrics_.AddCounter("external_placements");
  metrics_.LinkValue("live_uthreads", [this] { return live_uthreads_.load(std::memory_order_relaxed); });
  tracer_ = options_.tracer;
  for (int i = 0; i < options_.workers; i++) {
    auto worker = std::make_unique<RuntimeWorker>();
    worker->runtime = this;
    worker->index = i;
    worker->sched.Bind(sched_.get(), i);
    workers_.push_back(std::move(worker));
  }
  if (options_.io_engine) {
    io_stats_.polls = io_metrics_.AddSharded("polls", options_.workers);
    io_stats_.events = io_metrics_.AddSharded("events", options_.workers);
    io_stats_.wakeups = io_metrics_.AddSharded("wakeups", options_.workers);
    io_stats_.registered = io_metrics_.AddSharded("registered", options_.workers);
    io_stats_.retired = io_metrics_.AddSharded("retired", options_.workers);
    io_stats_.uring_fallbacks = io_metrics_.AddSharded("uring_fallbacks", options_.workers);
    // Data-path syscall accounting (the bench's syscalls/request family):
    // engines count their own io_uring_enter calls; readiness serving loops
    // self-report read/write/accept via IoEngine::CountSys*.
    io_stats_.sys_enter = io_metrics_.AddSharded("sys_enter", options_.workers);
    io_stats_.sys_read = io_metrics_.AddSharded("sys_read", options_.workers);
    io_stats_.sys_write = io_metrics_.AddSharded("sys_write", options_.workers);
    io_stats_.sys_accept = io_metrics_.AddSharded("sys_accept", options_.workers);
    // Completion data-path traffic.
    io_stats_.recv_segments = io_metrics_.AddSharded("recv_segments", options_.workers);
    io_stats_.send_ops = io_metrics_.AddSharded("send_ops", options_.workers);
    io_stats_.completion_accepts = io_metrics_.AddSharded("completion_accepts", options_.workers);
    io_stats_.buf_exhaustions = io_metrics_.AddSharded("buf_exhaustions", options_.workers);
    for (int i = 0; i < options_.workers; i++) {
      engines_.push_back(std::make_unique<IoEngine>(i, options_.io, io_stats_));
    }
  }
}

std::uint64_t Runtime::io_data_syscalls() const {
  if (engines_.empty()) {
    return 0;
  }
  std::uint64_t total = 0;
  for (const ShardedCounter* c : {io_stats_.sys_enter, io_stats_.sys_read, io_stats_.sys_write,
                                  io_stats_.sys_accept}) {
    if (c != nullptr) {
      total += c->Value();
    }
  }
  return total;
}

Runtime::~Runtime() {
  // Destroy the placement-new'd UThreads before their storage goes away.
  for (auto& storage : uthread_storage_) {
    auto* t = reinterpret_cast<UThread*>(storage.get());
#ifdef SKYLOFT_TSAN
    if (ExtraOf(t)->tsan_fiber != nullptr) {
      __tsan_destroy_fiber(ExtraOf(t)->tsan_fiber);
    }
#endif
    t->~UThread();
  }
}

UThread* Runtime::AllocUthread(std::function<void()> fn) {
  UThread* t = nullptr;
  {
    std::lock_guard<std::mutex> lock(pool_lock_);
    if (!free_pool_.empty()) {
      t = free_pool_.back();
      free_pool_.pop_back();
    }
  }
  if (t == nullptr) {
    // UThread and its handshake word share one allocation.
    auto storage = std::make_unique<unsigned char[]>(sizeof(UThread) + sizeof(UThreadExtra));
    t = new (storage.get()) UThread();
    new (storage.get() + sizeof(UThread)) UThreadExtra();
    // for_overwrite: zero-initializing would touch (and commit) every stack
    // page up front, which at 10k+ connection-handler uthreads is hundreds
    // of MB of RSS for pages most uthreads never reach.
    t->stack = std::make_unique_for_overwrite<unsigned char[]>(options_.stack_size);
    t->stack_size = options_.stack_size;
#ifdef SKYLOFT_TSAN
    ExtraOf(t)->tsan_fiber = __tsan_create_fiber(0);
#endif
    {
      std::lock_guard<std::mutex> lock(pool_lock_);
      uthread_storage_.push_back(std::move(storage));
    }
  }
  t->fn = std::move(fn);
  t->state.store(UthreadState::kRunnable, std::memory_order_relaxed);
  t->joiners.clear();
  t->detached = false;
  ExtraOf(t)->park.store(kParkRunning, std::memory_order_relaxed);
  ExtraOf(t)->preempt_count.store(0, std::memory_order_relaxed);
  ExtraOf(t)->asan_fake_stack = nullptr;  // a recycled uthread is a fresh fiber
  // A recycled stack still carries ASan poison from the frames its previous
  // incarnation abandoned at its final context switch (ExitCurrent never
  // returns, so no epilogue unpoisons them); clear it before reuse.
  AsanUnpoisonStack(t->stack.get(), t->stack_size);
  t->sp = InitContext(t->stack.get(), t->stack_size, &Runtime::UthreadMain, t);
  // Fresh id every incarnation: policies use it for deterministic
  // tie-breaking (CFS), and recycled uthreads are logically new tasks.
  // task_init runs later, fused with the first enqueue (see Schedule).
  t->id = next_uthread_id_.fetch_add(1, std::memory_order_relaxed);
  return t;
}

void Runtime::FreeUthread(UThread* thread) {
  std::lock_guard<std::mutex> lock(pool_lock_);
  free_pool_.push_back(thread);
}

void Runtime::Run(std::function<void()> main_fn) {
  SKYLOFT_CHECK(g_runtime == nullptr) << "only one Runtime may run at a time";
  g_runtime = this;
  stopping_.store(false);

  // Install the preemption signal handler (idempotent). SA_SIGINFO: the
  // handler needs the interrupted PC for the safe-point check.
  if (options_.preempt_period_us > 0) {
    if (g_exe_text_count == 0) {
      dl_iterate_phdr(&CollectExeText, nullptr);
    }
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = &Runtime::PreemptSignalHandler;
    sa.sa_flags = SA_NODEFER | SA_RESTART | SA_SIGINFO;
    sigemptyset(&sa.sa_mask);
    SKYLOFT_CHECK(sigaction(kPreemptSignal, &sa, nullptr) == 0);
  }

  live_uthreads_.store(1);
  UThread* main_thread = AllocUthread(std::move(main_fn));
  Schedule(main_thread, kEnqueueNew);  // external submission: placed idle-first

  for (int i = 0; i < options_.workers; i++) {
    worker_threads_.emplace_back([this, i] { WorkerLoop(i); });
  }

  // Housekeeping thread: wakes expired sleepers and (when enabled) delivers
  // the preemption signal to every worker each period — the host stand-in
  // for per-core user timer interrupts. The signal only enters the
  // scheduler; the policy's sched_timer_tick decides whether to preempt.
  //
  // The loop tracks an ABSOLUTE deadline, not a relative sleep: the signal
  // fan-out plus sleeper wakeups cost a variable amount per round, and a
  // relative sleep_for would add that cost to every period — the delivered
  // tick rate used to drift well below the configured one. The period is
  // reread each round so SetPreemptPeriodUs retunes the running timer.
  std::thread timer_thread([this] {
    auto next = std::chrono::steady_clock::now();
    auto next_controller_poll = next;
    while (!stopping_.load(std::memory_order_relaxed)) {
      const std::int64_t period_us = preempt_period_us_.load(std::memory_order_relaxed);
      // The handler is only installed when the runtime started with
      // preemption on; a live period of 0 pauses delivery.
      if (options_.preempt_period_us > 0 && period_us > 0) {
        for (auto& worker : workers_) {
          if (worker->handle_valid.load(std::memory_order_acquire)) {
            pthread_kill(worker->pthread_handle, kPreemptSignal);
          }
        }
      }
      // Wake sleepers whose deadline passed.
      const auto now = std::chrono::steady_clock::now();
      std::vector<UThread*> due;
      {
        std::lock_guard<std::mutex> lock(sleep_lock_);
        auto it = sleepers_.begin();
        while (it != sleepers_.end() && it->first <= now) {
          due.push_back(it->second);
          it = sleepers_.erase(it);
        }
      }
      for (UThread* t : due) {
        Unpark(t);
      }
      // Slow-path quantum-controller poll: runs on this housekeeping thread
      // (never a worker, never a signal handler), so allocation is fine.
      if (options_.quantum_controller != nullptr && now >= next_controller_poll) {
        options_.quantum_controller->Poll(MonotonicNs());
        next_controller_poll =
            now + std::chrono::microseconds(
                      options_.quantum_poll_us > 0 ? options_.quantum_poll_us : 5000);
      }
      next += std::chrono::microseconds(period_us > 0 ? period_us : 100);
      const auto after = std::chrono::steady_clock::now();
      if (next <= after) {
        // Overran the period (heavy fan-out round, scheduler hiccup, or the
        // period was just shortened): re-base to now rather than burst-firing
        // a catch-up train of signals.
        next = after + std::chrono::microseconds(period_us > 0 ? period_us : 100);
      }
      // skylint:allow(blocking-call-on-worker) -- timer lambda runs on its own dedicated std::thread, not a runtime worker; sleeping is its job
      std::this_thread::sleep_until(next);
    }
  });

  // Wait for every user thread to finish.
  while (live_uthreads_.load(std::memory_order_acquire) > 0) {
    // skylint:allow(blocking-call-on-worker) -- Run() executes on the caller's launch thread (not a worker), parked while the worker pthreads run
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  stopping_.store(true);
  for (auto& t : worker_threads_) {
    t.join();
  }
  worker_threads_.clear();
  timer_thread.join();
  g_runtime = nullptr;
}

void Runtime::SleepFor(std::int64_t duration_us) {
  Runtime* rt = g_runtime;
  SKYLOFT_CHECK(rt != nullptr);
  UThread* self = Current();
  {
    Runtime::PreemptGuard guard;
    std::lock_guard<std::mutex> lock(rt->sleep_lock_);
    rt->sleepers_.emplace(
        std::chrono::steady_clock::now() + std::chrono::microseconds(duration_us), self);
  }
  Park();
}

void Runtime::WorkerLoop(int index) {
  RuntimeWorker* worker = workers_[static_cast<std::size_t>(index)].get();
  tl_worker = worker;
  worker->pthread_handle = pthread_self();
#ifdef SKYLOFT_TSAN
  worker->tsan_fiber = __tsan_get_current_fiber();
#endif
#ifdef SKYLOFT_ASAN
  {
    // Uthreads switching out target this pthread's stack; ASan needs its
    // bounds at every such start_switch_fiber call.
    pthread_attr_t attr;
    SKYLOFT_CHECK(pthread_getattr_np(pthread_self(), &attr) == 0);
    void* stack_addr = nullptr;
    std::size_t stack_size = 0;
    SKYLOFT_CHECK(pthread_attr_getstack(&attr, &stack_addr, &stack_size) == 0);
    pthread_attr_destroy(&attr);
    worker->asan_stack_bottom = stack_addr;
    worker->asan_stack_size = stack_size;
  }
#endif
  worker->handle_valid.store(true, std::memory_order_release);

  IoEngine* engine = io_engine(index);

  // `next` carries a directly-resumed uthread past the dequeue (a timer tick
  // the policy declined to turn into a preemption).
  UThread* next = nullptr;
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Engine-core duty: drain socket readiness between uthread segments so a
    // NIC wakeup becomes a runnable uthread within one scheduling round. The
    // resulting Unparks enqueue through THIS worker's runqueue — the
    // remote-enqueue mailbox path when the handler uthread was stolen.
    if (engine != nullptr) {
      engine->Poll();
    }
    if (next == nullptr) {
      next = FindWork(worker);
    }
    if (next == nullptr) {
      // Out of runnable work: push any deferred io_uring submissions before
      // the OS yield (which can cost a whole timeslice on a loaded box) so
      // the kernel processes them while this worker is off-CPU.
      if (engine != nullptr) {
        engine->FlushSubmissions();
      }
      worker->sched.SetIdle(true);
      std::this_thread::yield();
      continue;
    }
    worker->sched.SetIdle(false);
    SwitchTo(worker, next);
    next = nullptr;

    // Back on the scheduler stack: complete whatever the uthread asked.
    UThread* prev = worker->current;
    worker->current = nullptr;
    if (tracer_ != nullptr) {
      // Occupancy span for the segment that just ended ("ph":"X" in the
      // chrome-trace output). Recorded here, not in the uthread, so exits
      // and preemption entries are covered too.
      const std::int64_t span_end = TraceClockNs();
      tracer_->RecordEvent(worker->trace_run_start, TraceEventType::kRun, index, prev->id, 0,
                           span_end - worker->trace_run_start);
    }
    const SwitchAction action = worker->action;
    worker->action = SwitchAction::kNone;
    switch (action) {
      case SwitchAction::kYield:
        // Fused enqueue+dequeue: one shard-lock round trip on the hot path.
        next = static_cast<UThread*>(worker->sched.Requeue(prev, kEnqueueYield));
        break;
      case SwitchAction::kTick: {
        // sched_timer_tick with the wall time the uthread ran since it was
        // switched in (or last ticked); the policy decides preemption.
        const std::int64_t ran_ns = MonotonicNs() - worker->run_charge;
        if (worker->sched.Tick(prev, ran_ns)) {
          preemptions_->Inc();
          if (tracer_ != nullptr) {
            tracer_->RecordEvent(TraceClockNs(), TraceEventType::kPreempt, index, prev->id, 0);
          }
          prev->state.store(UthreadState::kRunnable, std::memory_order_relaxed);
          next = static_cast<UThread*>(worker->sched.Requeue(prev, kEnqueuePreempted));
        } else {
          next = prev;  // resume without touching the runqueues
        }
        break;
      }
      case SwitchAction::kPark: {
        // Publish "fully parked"; if an unpark raced in, requeue now.
        auto& park = ExtraOf(prev)->park;
        int old = park.exchange(kParkParked, std::memory_order_acq_rel);
        if (old == kParkUnparkPending) {
          park.store(kParkRunning, std::memory_order_release);
          prev->state.store(UthreadState::kRunnable, std::memory_order_release);
          worker->sched.Enqueue(prev, kEnqueueWakeup);
        }
        break;
      }
      case SwitchAction::kExit: {
        // Fused task_terminate + task_dequeue, then release the storage.
        next = static_cast<UThread*>(worker->sched.Retire(prev));
        FreeUthread(prev);
        live_uthreads_.fetch_sub(1, std::memory_order_acq_rel);
        break;
      }
      case SwitchAction::kNone:
        SKYLOFT_CHECK(false) << "uthread switched out without an action";
    }
  }
  worker->handle_valid.store(false, std::memory_order_release);
  tl_worker = nullptr;
}

UThread* Runtime::FindWork(RuntimeWorker* worker) {
  // task_dequeue, with the policy's sched_balance as the idle fallback
  // (work stealing's steal-half lives behind it).
  return static_cast<UThread*>(worker->sched.Dequeue());
}

void Runtime::SwitchTo(RuntimeWorker* worker, UThread* next) {
  next->state.store(UthreadState::kRunning, std::memory_order_relaxed);
  worker->current = next;
  // run_charge feeds sched_timer_tick; without the signal timer nothing
  // reads it, and the clock call would tax every switch (~30 ns here).
  if (options_.preempt_period_us > 0) {
    worker->run_charge = MonotonicNs();
  }
  if (tracer_ != nullptr) {
    worker->trace_run_start = TraceClockNs();
    tracer_->RecordEvent(worker->trace_run_start, TraceEventType::kAssign, worker->index, next->id,
                         0);
  }
  // Enable preemption for the duration of the uthread's execution. The
  // signal handler additionally verifies it is on the uthread's stack, so
  // the window between this store and the switch is safe.
  worker->preempt_disable.store(0, std::memory_order_release);
  TsanSwitchTo(ExtraOf(next)->tsan_fiber);
  AsanStartSwitch(&worker->asan_fake_stack, next->stack.get(), next->stack_size);
  skyloft_ctx_switch(&worker->sched_sp, next->sp);
  AsanFinishSwitch(worker->asan_fake_stack);
  // Returned from the uthread (it yielded/parked/ticked/exited).
  worker->preempt_disable.store(1, std::memory_order_release);
}

void Runtime::UthreadMain(void* arg) {
  AsanFinishSwitch(nullptr);  // first entry on this stack: nothing to restore
  auto* self = static_cast<UThread*>(arg);
  self->fn();
  g_runtime->ExitCurrent();
  SKYLOFT_CHECK(false) << "resumed an exited uthread";
}

UThread* Runtime::Current() {
  SKYLOFT_CHECK(tl_worker != nullptr && tl_worker->current != nullptr)
      << "not inside a user thread";
  return tl_worker->current;
}

UThread* Runtime::Spawn(std::function<void()> fn) {
  Runtime* rt = g_runtime;
  SKYLOFT_CHECK(rt != nullptr);
  PreemptGuard guard;
  rt->live_uthreads_.fetch_add(1, std::memory_order_acq_rel);
  UThread* t = rt->AllocUthread(std::move(fn));
  rt->Schedule(t, kEnqueueNew);
  return t;
}

// Precondition: uthread-context callers hold a PreemptGuard (Spawn and
// Unpark do) — the shard lock must not be interrupted by the signal timer.
void Runtime::Schedule(UThread* thread, unsigned flags) {
  RuntimeWorker* worker = tl_worker;
  if (worker != nullptr) {
    if (flags & kEnqueueNew) {
      worker->sched.EnqueueNew(thread, flags);  // fused task_init + enqueue
    } else {
      worker->sched.Enqueue(thread, flags);
    }
    return;
  }
  // Off-runtime submission (external Unpark, Run()'s main thread): place on
  // the first idle worker, falling back to the least-loaded queue, instead
  // of unconditionally piling onto worker 0.
  external_placements_->Inc();
  const int target = sched_->ExternalTarget();
  if (flags & kEnqueueNew) {
    sched_->EnqueueNew(thread, flags, target);
  } else {
    sched_->Enqueue(thread, flags, target);
  }
}

// NOTE on the switch-out protocol (Yield / PreemptTick / Park / ExitCurrent):
// the fetch_add on worker->preempt_disable closes the window between setting
// `action` and reaching the scheduler stack — a signal landing there would
// overwrite the action. There is deliberately NO matching fetch_sub after the
// context switch returns: SwitchTo re-arms preemption with an absolute
// store(0) before resuming any uthread, so the counter is scheduler-owned at
// that point. (Touching tl_worker after skyloft_ctx_switch is also unsafe —
// the uthread may have migrated, and the compiler may have cached the old
// pthread's TLS slot address from before the switch.)
// skylint:allow(preempt-balance) -- switch-out protocol: SwitchTo re-arms with store(0), see NOTE
void Runtime::Yield() {
  RuntimeWorker* worker = tl_worker;
  SKYLOFT_CHECK(worker != nullptr && worker->current != nullptr);
  worker->preempt_disable.fetch_add(1, std::memory_order_acq_rel);
  UThread* self = worker->current;
  self->state.store(UthreadState::kRunnable, std::memory_order_relaxed);
  worker->action = SwitchAction::kYield;
  TsanSwitchTo(worker->tsan_fiber);
  AsanStartSwitch(&ExtraOf(self)->asan_fake_stack, worker->asan_stack_bottom,
                  worker->asan_stack_size);
  skyloft_ctx_switch(&self->sp, worker->sched_sp);
  // `worker` is stale here (the uthread may have migrated); `self` is not.
  AsanFinishSwitch(ExtraOf(self)->asan_fake_stack);
}

// Signal-timer entry: hand control to the scheduler stack so the policy tick
// (which takes the shard lock — unsafe in signal context) runs there.
// skylint:allow(preempt-balance) -- switch-out protocol: SwitchTo re-arms with store(0), see NOTE
void Runtime::PreemptTick() {
  RuntimeWorker* worker = tl_worker;
  worker->preempt_disable.fetch_add(1, std::memory_order_acq_rel);
  UThread* self = worker->current;
  worker->action = SwitchAction::kTick;
  TsanSwitchTo(worker->tsan_fiber);
  AsanStartSwitch(&ExtraOf(self)->asan_fake_stack, worker->asan_stack_bottom,
                  worker->asan_stack_size);
  skyloft_ctx_switch(&self->sp, worker->sched_sp);
  AsanFinishSwitch(ExtraOf(self)->asan_fake_stack);
}

// skylint:allow(preempt-balance) -- main path's +1 is re-armed by SwitchTo's store(0), see NOTE
void Runtime::Park() {
  RuntimeWorker* worker = tl_worker;
  SKYLOFT_CHECK(worker != nullptr && worker->current != nullptr);
  worker->preempt_disable.fetch_add(1, std::memory_order_acq_rel);
  UThread* self = worker->current;
  auto& park = ExtraOf(self)->park;
  int expected = kParkRunning;
  if (!park.compare_exchange_strong(expected, kParkParking, std::memory_order_acq_rel)) {
    // An unpark already arrived: consume it and keep running.
    SKYLOFT_CHECK(expected == kParkUnparkPending);
    park.store(kParkRunning, std::memory_order_release);
    worker->preempt_disable.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  self->state.store(UthreadState::kBlocked, std::memory_order_relaxed);
  worker->action = SwitchAction::kPark;
  TsanSwitchTo(worker->tsan_fiber);
  AsanStartSwitch(&ExtraOf(self)->asan_fake_stack, worker->asan_stack_bottom,
                  worker->asan_stack_size);
  skyloft_ctx_switch(&self->sp, worker->sched_sp);
  AsanFinishSwitch(ExtraOf(self)->asan_fake_stack);
}

void Runtime::Unpark(UThread* thread) {
  Runtime* rt = g_runtime;
  SKYLOFT_CHECK(rt != nullptr);
  auto& park = ExtraOf(thread)->park;
  const int old = park.exchange(kParkUnparkPending, std::memory_order_acq_rel);
  if (old == kParkParked) {
    // Fully parked: we own the wakeup.
    park.store(kParkRunning, std::memory_order_release);
    thread->state.store(UthreadState::kRunnable, std::memory_order_release);
    PreemptGuard guard;
    rt->Schedule(thread, kEnqueueWakeup);
  }
  // old == kParkRunning or kParkParking: the parker (or its scheduler
  // completion) observes kParkUnparkPending and self-requeues.
}

void Runtime::Join(UThread* thread) {
  Runtime* rt = g_runtime;
  SKYLOFT_CHECK(rt != nullptr);
  // Loop: Park may return spuriously (e.g. a stale unpark token left by the
  // mutex fast-path race), so completion is re-checked every wake. `self` is
  // read once, before the first switch: Current() goes through tl_worker,
  // which must not be touched after a Park that may migrate us.
  UThread* self = Current();
  while (true) {
    {
      std::lock_guard<std::mutex> lock(rt->wait_lock_);
      if (thread->state.load(std::memory_order_acquire) == UthreadState::kDone) {
        return;
      }
      thread->joiners.push_back(self);
    }
    Park();
  }
}

// skylint:allow(preempt-balance) -- the uthread never returns; SwitchTo re-arms with store(0)
void Runtime::ExitCurrent() {
  RuntimeWorker* worker = tl_worker;
  UThread* self = worker->current;
  worker->preempt_disable.fetch_add(1, std::memory_order_acq_rel);
  {
    // Scoped: this frame is abandoned at the switch below (ExitCurrent never
    // returns), so the vector's buffer must be released before it.
    std::vector<UThread*> joiners;
    {
      std::lock_guard<std::mutex> lock(wait_lock_);
      self->state.store(UthreadState::kDone, std::memory_order_release);
      joiners.swap(self->joiners);
    }
    for (UThread* j : joiners) {
      Unpark(j);
    }
  }
  worker->action = SwitchAction::kExit;
  TsanSwitchTo(worker->tsan_fiber);
  // Null save slot: this fiber is leaving for good, destroy its fake stack.
  AsanStartSwitch(nullptr, worker->asan_stack_bottom, worker->asan_stack_size);
  skyloft_ctx_switch(&self->sp, worker->sched_sp);
  SKYLOFT_CHECK(false) << "resumed an exited uthread";
}

Runtime::PreemptGuard::PreemptGuard() {
  RuntimeWorker* worker = tl_worker;
  if (worker != nullptr && worker->current != nullptr) {
    counter_ = &ExtraOf(worker->current)->preempt_count;
    counter_->fetch_add(1, std::memory_order_acq_rel);
  }
  // Off-runtime threads never see the preemption signal; the scheduler stack
  // runs with worker->preempt_disable != 0. Neither needs the guard.
}

Runtime::PreemptGuard::~PreemptGuard() {
  if (counter_ != nullptr) {
    counter_->fetch_sub(1, std::memory_order_acq_rel);
  }
}

void Runtime::PreemptSignalHandler(int /*signo*/, siginfo_t* /*info*/, void* uctx) {
  RuntimeWorker* worker = tl_worker;
  if (worker == nullptr || worker->runtime == nullptr) {
    return;
  }
  if (worker->preempt_disable.load(std::memory_order_acquire) != 0) {
    return;  // scheduler or a sync primitive is mid-flight
  }
  UThread* current = worker->current;
  if (current == nullptr) {
    return;
  }
  if (ExtraOf(current)->preempt_count.load(std::memory_order_acquire) != 0) {
    return;  // the uthread holds a PreemptGuard (possibly taken on another worker)
  }
  // Only switch if we interrupted code running on the uthread's own stack;
  // anything else means we're in a transition window.
  char probe;
  const auto sp = reinterpret_cast<std::uintptr_t>(&probe);
  const auto lo = reinterpret_cast<std::uintptr_t>(current->stack.get());
  const auto hi = lo + current->stack_size;
  if (sp < lo || sp >= hi) {
    return;
  }
  // Safe-point check (see TextRange above): defer rather than preempt inside
  // libc/ld/libstdc++, where per-pthread state (malloc tcache, stdio locks,
  // the loader lock) may be mid-update. The next timer period retries.
#if defined(__x86_64__)
  const auto* uc = static_cast<const ucontext_t*>(uctx);
  const auto pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  if (!PreemptSafePc(pc)) {
    worker->runtime->preempt_deferrals_->Inc();
    if (worker->runtime->tracer_ != nullptr) {
      worker->runtime->tracer_->RecordEvent(TraceClockNs(), TraceEventType::kDeferred,
                                            worker->index, current->id, 0);
    }
    return;
  }
#else
  (void)uctx;
#endif
  // Enter the scheduler; the policy's sched_timer_tick makes the call.
  // errno is saved on the uthread's stack: while it is switched out, other
  // uthreads (and the scheduler) run on this pthread and clobber the
  // thread-local errno, so it must be restored when the uthread resumes —
  // into the errno of whichever pthread it resumed on, hence the re-derived
  // location (see CurrentErrnoLocation).
  // Trace the accepted signal delivery before entering the scheduler. Both
  // RecordEvent and TraceClockNs are allocation-free and signal-safe.
  if (worker->runtime->tracer_ != nullptr) {
    worker->runtime->tracer_->RecordEvent(TraceClockNs(), TraceEventType::kSignal, worker->index,
                                          current->id, 0);
  }
  const int saved_errno = *CurrentErrnoLocation();
  PreemptTick();
  *CurrentErrnoLocation() = saved_errno;
}

}  // namespace skyloft
