#include "src/runtime/uthread.h"

#include <pthread.h>

#include <chrono>
#include <csignal>
#include <cstring>
#include <new>

#include "src/base/logging.h"
#include "src/runtime/context.h"

namespace skyloft {

namespace {

// One runtime at a time may be running; the static API resolves through this.
Runtime* g_runtime = nullptr;

// What the uthread asked the scheduler to do when it switched out.
enum class SwitchAction : std::uint8_t { kNone, kYield, kPark, kExit };

constexpr int kPreemptSignal = SIGURG;

}  // namespace

struct RuntimeWorker {
  Runtime* runtime = nullptr;
  int index = 0;

  std::mutex mu;
  std::deque<UThread*> runq;

  void* sched_sp = nullptr;
  UThread* current = nullptr;
  SwitchAction action = SwitchAction::kNone;

  // 0 => the preemption signal handler may switch; anything else defers.
  std::atomic<int> preempt_disable{1};

  std::uint64_t steal_rng = 0;
  pthread_t pthread_handle{};
  std::atomic<bool> handle_valid{false};
};

namespace {
thread_local RuntimeWorker* tl_worker = nullptr;

// UThread park/unpark handshake states (see Park/Unpark):
//   0 running, 1 parking (announced), 2 unpark pending, 3 fully parked
constexpr int kParkRunning = 0;
constexpr int kParkParking = 1;
constexpr int kParkUnparkPending = 2;
constexpr int kParkParked = 3;
}  // namespace

// Park handshake word; kept out of UThread's public header to avoid leaking
// scheduler internals. Allocated immediately after the UThread object in the
// same storage block (see AllocUthread).
struct UThreadExtra {
  std::atomic<int> park{kParkRunning};
};

namespace {
UThreadExtra* ExtraOf(UThread* t) { return reinterpret_cast<UThreadExtra*>(t + 1); }
}  // namespace

Runtime::Runtime(RuntimeOptions options) : options_(options) {
  SKYLOFT_CHECK(options_.workers >= 1);
  SKYLOFT_CHECK(options_.stack_size >= 4096);
  for (int i = 0; i < options_.workers; i++) {
    auto worker = std::make_unique<RuntimeWorker>();
    worker->runtime = this;
    worker->index = i;
    worker->steal_rng = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1);
    workers_.push_back(std::move(worker));
  }
}

Runtime::~Runtime() {
  // Destroy the placement-new'd UThreads before their storage goes away.
  for (auto& storage : uthread_storage_) {
    reinterpret_cast<UThread*>(storage.get())->~UThread();
  }
}

UThread* Runtime::AllocUthread(std::function<void()> fn) {
  UThread* t = nullptr;
  {
    std::lock_guard<std::mutex> lock(pool_lock_);
    if (!free_pool_.empty()) {
      t = free_pool_.back();
      free_pool_.pop_back();
    }
  }
  if (t == nullptr) {
    // UThread and its handshake word share one allocation.
    auto storage = std::make_unique<unsigned char[]>(sizeof(UThread) + sizeof(UThreadExtra));
    t = new (storage.get()) UThread();
    new (storage.get() + sizeof(UThread)) UThreadExtra();
    t->stack = std::make_unique<unsigned char[]>(options_.stack_size);
    t->stack_size = options_.stack_size;
    {
      std::lock_guard<std::mutex> lock(pool_lock_);
      uthread_storage_.push_back(std::move(storage));
    }
  }
  t->fn = std::move(fn);
  t->state.store(UthreadState::kRunnable, std::memory_order_relaxed);
  t->joiners.clear();
  t->detached = false;
  ExtraOf(t)->park.store(kParkRunning, std::memory_order_relaxed);
  t->sp = InitContext(t->stack.get(), t->stack_size, &Runtime::UthreadMain, t);
  return t;
}

void Runtime::FreeUthread(UThread* thread) {
  std::lock_guard<std::mutex> lock(pool_lock_);
  free_pool_.push_back(thread);
}

void Runtime::Run(std::function<void()> main_fn) {
  SKYLOFT_CHECK(g_runtime == nullptr) << "only one Runtime may run at a time";
  g_runtime = this;
  stopping_.store(false);

  // Install the preemption signal handler (idempotent).
  if (options_.preempt_period_us > 0) {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = &Runtime::PreemptSignalHandler;
    sa.sa_flags = SA_NODEFER | SA_RESTART;
    sigemptyset(&sa.sa_mask);
    SKYLOFT_CHECK(sigaction(kPreemptSignal, &sa, nullptr) == 0);
  }

  live_uthreads_.store(1);
  UThread* main_thread = AllocUthread(std::move(main_fn));
  workers_[0]->runq.push_back(main_thread);

  for (int i = 0; i < options_.workers; i++) {
    worker_threads_.emplace_back([this, i] { WorkerLoop(i); });
  }

  // Housekeeping thread: wakes expired sleepers and (when enabled) delivers
  // the preemption signal to every worker each period — the host stand-in
  // for per-core user timer interrupts.
  std::thread timer_thread([this] {
    const auto tick = std::chrono::microseconds(
        options_.preempt_period_us > 0 ? options_.preempt_period_us : 100);
    while (!stopping_.load(std::memory_order_relaxed)) {
      if (options_.preempt_period_us > 0) {
        for (auto& worker : workers_) {
          if (worker->handle_valid.load(std::memory_order_acquire)) {
            pthread_kill(worker->pthread_handle, kPreemptSignal);
          }
        }
      }
      // Wake sleepers whose deadline passed.
      const auto now = std::chrono::steady_clock::now();
      std::vector<UThread*> due;
      {
        std::lock_guard<std::mutex> lock(sleep_lock_);
        auto it = sleepers_.begin();
        while (it != sleepers_.end() && it->first <= now) {
          due.push_back(it->second);
          it = sleepers_.erase(it);
        }
      }
      for (UThread* t : due) {
        Unpark(t);
      }
      std::this_thread::sleep_for(tick);
    }
  });

  // Wait for every user thread to finish.
  while (live_uthreads_.load(std::memory_order_acquire) > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  stopping_.store(true);
  for (auto& t : worker_threads_) {
    t.join();
  }
  worker_threads_.clear();
  timer_thread.join();
  g_runtime = nullptr;
}

void Runtime::SleepFor(std::int64_t duration_us) {
  Runtime* rt = g_runtime;
  SKYLOFT_CHECK(rt != nullptr);
  UThread* self = Current();
  {
    Runtime::PreemptGuard guard;
    std::lock_guard<std::mutex> lock(rt->sleep_lock_);
    rt->sleepers_.emplace(
        std::chrono::steady_clock::now() + std::chrono::microseconds(duration_us), self);
  }
  Park();
}

void Runtime::WorkerLoop(int index) {
  RuntimeWorker* worker = workers_[static_cast<std::size_t>(index)].get();
  tl_worker = worker;
  worker->pthread_handle = pthread_self();
  worker->handle_valid.store(true, std::memory_order_release);

  while (!stopping_.load(std::memory_order_relaxed)) {
    UThread* next = FindWork(worker);
    if (next == nullptr) {
      std::this_thread::yield();
      continue;
    }
    SwitchTo(worker, next);

    // Back on the scheduler stack: complete whatever the uthread asked.
    UThread* prev = worker->current;
    worker->current = nullptr;
    const SwitchAction action = worker->action;
    worker->action = SwitchAction::kNone;
    switch (action) {
      case SwitchAction::kYield: {
        std::lock_guard<std::mutex> lock(worker->mu);
        worker->runq.push_back(prev);
        break;
      }
      case SwitchAction::kPark: {
        // Publish "fully parked"; if an unpark raced in, requeue now.
        auto& park = ExtraOf(prev)->park;
        int old = park.exchange(kParkParked, std::memory_order_acq_rel);
        if (old == kParkUnparkPending) {
          park.store(kParkRunning, std::memory_order_release);
          prev->state.store(UthreadState::kRunnable, std::memory_order_release);
          std::lock_guard<std::mutex> lock(worker->mu);
          worker->runq.push_back(prev);
        }
        break;
      }
      case SwitchAction::kExit: {
        FreeUthread(prev);
        live_uthreads_.fetch_sub(1, std::memory_order_acq_rel);
        break;
      }
      case SwitchAction::kNone:
        SKYLOFT_CHECK(false) << "uthread switched out without an action";
    }
  }
  tl_worker = nullptr;
}

UThread* Runtime::FindWork(RuntimeWorker* worker) {
  {
    std::lock_guard<std::mutex> lock(worker->mu);
    if (!worker->runq.empty()) {
      UThread* t = worker->runq.front();
      worker->runq.pop_front();
      return t;
    }
  }
  // Steal half of a random victim's queue (paper §3.4 sched_balance /
  // Shenango work stealing).
  const int n = options_.workers;
  if (n <= 1) {
    return nullptr;
  }
  worker->steal_rng ^= worker->steal_rng << 13;
  worker->steal_rng ^= worker->steal_rng >> 7;
  worker->steal_rng ^= worker->steal_rng << 17;
  const int start = static_cast<int>(worker->steal_rng % static_cast<std::uint64_t>(n));
  for (int probe = 0; probe < n; probe++) {
    const int vi = (start + probe) % n;
    if (vi == worker->index) {
      continue;
    }
    RuntimeWorker* victim = workers_[static_cast<std::size_t>(vi)].get();
    std::scoped_lock lock(worker->mu, victim->mu);
    if (victim->runq.empty()) {
      continue;
    }
    const std::size_t take = (victim->runq.size() + 1) / 2;
    for (std::size_t i = 0; i < take; i++) {
      worker->runq.push_back(victim->runq.front());
      victim->runq.pop_front();
    }
    steals_.fetch_add(take, std::memory_order_relaxed);
    UThread* t = worker->runq.front();
    worker->runq.pop_front();
    return t;
  }
  return nullptr;
}

void Runtime::SwitchTo(RuntimeWorker* worker, UThread* next) {
  next->state.store(UthreadState::kRunning, std::memory_order_relaxed);
  worker->current = next;
  // Enable preemption for the duration of the uthread's execution. The
  // signal handler additionally verifies it is on the uthread's stack, so
  // the window between this store and the switch is safe.
  worker->preempt_disable.store(0, std::memory_order_release);
  skyloft_ctx_switch(&worker->sched_sp, next->sp);
  // Returned from the uthread (it yielded/parked/exited).
  worker->preempt_disable.store(1, std::memory_order_release);
}

void Runtime::UthreadMain(void* arg) {
  auto* self = static_cast<UThread*>(arg);
  self->fn();
  g_runtime->ExitCurrent();
  SKYLOFT_CHECK(false) << "resumed an exited uthread";
}

UThread* Runtime::Current() {
  SKYLOFT_CHECK(tl_worker != nullptr && tl_worker->current != nullptr)
      << "not inside a user thread";
  return tl_worker->current;
}

UThread* Runtime::Spawn(std::function<void()> fn) {
  Runtime* rt = g_runtime;
  SKYLOFT_CHECK(rt != nullptr);
  PreemptGuard guard;
  rt->live_uthreads_.fetch_add(1, std::memory_order_acq_rel);
  UThread* t = rt->AllocUthread(std::move(fn));
  rt->Schedule(t);
  return t;
}

void Runtime::Schedule(UThread* thread) {
  RuntimeWorker* worker = tl_worker;
  if (worker == nullptr) {
    worker = workers_[0].get();
  }
  std::lock_guard<std::mutex> lock(worker->mu);
  worker->runq.push_back(thread);
}

void Runtime::Yield() {
  RuntimeWorker* worker = tl_worker;
  SKYLOFT_CHECK(worker != nullptr && worker->current != nullptr);
  worker->preempt_disable.fetch_add(1, std::memory_order_acq_rel);
  UThread* self = worker->current;
  self->state.store(UthreadState::kRunnable, std::memory_order_relaxed);
  worker->action = SwitchAction::kYield;
  skyloft_ctx_switch(&self->sp, worker->sched_sp);
  // Possibly resumed on a different worker; re-read the TLS.
  tl_worker->preempt_disable.fetch_sub(1, std::memory_order_acq_rel);
}

void Runtime::Park() {
  RuntimeWorker* worker = tl_worker;
  SKYLOFT_CHECK(worker != nullptr && worker->current != nullptr);
  worker->preempt_disable.fetch_add(1, std::memory_order_acq_rel);
  UThread* self = worker->current;
  auto& park = ExtraOf(self)->park;
  int expected = kParkRunning;
  if (!park.compare_exchange_strong(expected, kParkParking, std::memory_order_acq_rel)) {
    // An unpark already arrived: consume it and keep running.
    SKYLOFT_CHECK(expected == kParkUnparkPending);
    park.store(kParkRunning, std::memory_order_release);
    worker->preempt_disable.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  self->state.store(UthreadState::kBlocked, std::memory_order_relaxed);
  worker->action = SwitchAction::kPark;
  skyloft_ctx_switch(&self->sp, worker->sched_sp);
  tl_worker->preempt_disable.fetch_sub(1, std::memory_order_acq_rel);
}

void Runtime::Unpark(UThread* thread) {
  Runtime* rt = g_runtime;
  SKYLOFT_CHECK(rt != nullptr);
  auto& park = ExtraOf(thread)->park;
  const int old = park.exchange(kParkUnparkPending, std::memory_order_acq_rel);
  if (old == kParkParked) {
    // Fully parked: we own the wakeup.
    park.store(kParkRunning, std::memory_order_release);
    thread->state.store(UthreadState::kRunnable, std::memory_order_release);
    PreemptGuard guard;
    rt->Schedule(thread);
  }
  // old == kParkRunning or kParkParking: the parker (or its scheduler
  // completion) observes kParkUnparkPending and self-requeues.
}

void Runtime::Join(UThread* thread) {
  Runtime* rt = g_runtime;
  SKYLOFT_CHECK(rt != nullptr);
  // Loop: Park may return spuriously (e.g. a stale unpark token left by the
  // mutex fast-path race), so completion is re-checked every wake.
  while (true) {
    {
      std::lock_guard<std::mutex> lock(rt->wait_lock_);
      if (thread->state.load(std::memory_order_acquire) == UthreadState::kDone) {
        return;
      }
      thread->joiners.push_back(Current());
    }
    Park();
  }
}

void Runtime::ExitCurrent() {
  RuntimeWorker* worker = tl_worker;
  UThread* self = worker->current;
  worker->preempt_disable.fetch_add(1, std::memory_order_acq_rel);
  std::vector<UThread*> joiners;
  {
    std::lock_guard<std::mutex> lock(wait_lock_);
    self->state.store(UthreadState::kDone, std::memory_order_release);
    joiners.swap(self->joiners);
  }
  for (UThread* j : joiners) {
    Unpark(j);
  }
  worker->action = SwitchAction::kExit;
  skyloft_ctx_switch(&self->sp, worker->sched_sp);
  SKYLOFT_CHECK(false) << "resumed an exited uthread";
}

Runtime::PreemptGuard::PreemptGuard() {
  if (tl_worker != nullptr) {
    tl_worker->preempt_disable.fetch_add(1, std::memory_order_acq_rel);
  }
}

Runtime::PreemptGuard::~PreemptGuard() {
  if (tl_worker != nullptr) {
    tl_worker->preempt_disable.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void Runtime::PreemptSignalHandler(int /*signo*/) {
  RuntimeWorker* worker = tl_worker;
  if (worker == nullptr || worker->runtime == nullptr) {
    return;
  }
  if (worker->preempt_disable.load(std::memory_order_acquire) != 0) {
    return;  // scheduler or a sync primitive is mid-flight
  }
  UThread* current = worker->current;
  if (current == nullptr) {
    return;
  }
  // Only preempt if we interrupted code running on the uthread's own stack;
  // anything else means we're in a transition window.
  char probe;
  const auto sp = reinterpret_cast<std::uintptr_t>(&probe);
  const auto lo = reinterpret_cast<std::uintptr_t>(current->stack.get());
  const auto hi = lo + current->stack_size;
  if (sp < lo || sp >= hi) {
    return;
  }
  worker->runtime->preemptions_.fetch_add(1, std::memory_order_relaxed);
  Yield();
}

}  // namespace skyloft
