#include "src/runtime/host_sched.h"

#include <algorithm>
#include <chrono>

#include "src/base/logging.h"
#include "src/base/mpsc_queue.h"
#include "src/base/random.h"
#include "src/base/ws_deque.h"
#include "src/policies/cfs.h"
#include "src/policies/eevdf.h"
#include "src/policies/round_robin.h"
#include "src/policies/work_stealing.h"

namespace skyloft {

namespace {

TimeNs HostNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::unique_ptr<SchedPolicy> MakeHostPolicy(RuntimePolicy policy, std::int64_t time_slice_us) {
  switch (policy) {
    case RuntimePolicy::kFifo:
      return std::make_unique<RoundRobinPolicy>(kInfiniteSlice);
    case RuntimePolicy::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>(
          time_slice_us > 0 ? Micros(time_slice_us) : Micros(12) + 500);
    case RuntimePolicy::kCfs: {
      CfsParams params;
      if (time_slice_us > 0) {
        // The override sets the slice floor; widen sched_latency when the
        // requested granularity would otherwise exceed it, so the dynamic
        // slice actually lengthens instead of saturating at the old latency.
        params.min_granularity = Micros(time_slice_us);
        params.sched_latency = std::max(params.sched_latency, 4 * params.min_granularity);
      }
      return std::make_unique<CfsPolicy>(params);
    }
    case RuntimePolicy::kEevdf: {
      EevdfParams params;
      if (time_slice_us > 0) {
        params.base_slice = Micros(time_slice_us);
      }
      return std::make_unique<EevdfPolicy>(params);
    }
    case RuntimePolicy::kWorkStealing:
      break;
  }
  WorkStealingParams params;
  if (time_slice_us > 0) {
    params.quantum = Micros(time_slice_us);
  }
  return std::make_unique<WorkStealingPolicy>(params);
}

// Per-task state of the lock-free driver, stored in SchedItem::policy_data
// (the driver plays the policy's role, so it owns the policy-defined field).
struct LfRunData {
  DurationNs ran = 0;  // run time since last dequeue; reset on dequeue
};

// At most this many items move per steal — half of a huge backlog would
// turn one steal into a long stop-the-victim scan of CAS traffic.
constexpr std::int64_t kStealBatchMax = 8;
// Lost-race retries against one victim before probing the next.
constexpr int kStealRetries = 2;

}  // namespace

// One policy instance plus the EngineView it schedules through. Worker
// indices handed to the policy are shard-local [0, count); WorkerCore maps
// them back to global runtime worker indices.
struct HostSched::Shard : EngineView {
  HostSched* parent = nullptr;
  int base = 0;
  int count = 0;
  std::mutex mu;
  std::unique_ptr<SchedPolicy> owned;
  SchedPolicy* policy = nullptr;

  TimeNs Now() const override { return HostNowNs(); }
  int NumWorkers() const override { return count; }
  int WorkerCore(int index) const override { return base + index; }
  bool IsWorkerIdle(int index) const override {
    return parent->idle_map_.Test(base + index);
  }
};

// Lock-free driver state for one worker: the two-level runqueue (DESIGN.md
// section 9). All submissions land in the mailbox (one CAS); only the owner
// touches the deque's bottom (drain, pop, steal-surplus push); thieves CAS
// the deque's top. Cache-line aligned so neighbor workers' queues never
// share a line.
struct alignas(kCacheLineSize) HostSched::LfWorker {
  explicit LfWorker(std::uint64_t seed, DurationNs quantum_ns) : rng(seed), quantum(quantum_ns) {}
  WsDeque<SchedItem> deque;
  MpscQueue<SchedItem> mailbox;
  Rng rng;  // victim-probe start, owner-only
  // Preemption quantum the lock-free Tick path enforces for this worker;
  // 0 disables tick preemption. Written by SetQuantum (any thread), reread
  // relaxed on every tick — a tick racing an update sees either quantum,
  // both of which were valid moments ago.
  std::atomic<DurationNs> quantum;
};

HostSched::HostSched(int workers, const HostSchedOptions& options)
    : workers_(workers), idle_map_(workers >= 1 ? workers : 1) {
  SKYLOFT_CHECK(workers_ >= 1);
  steals_ = metrics_.AddSharded("steals", workers_);
  mailbox_drains_ = metrics_.AddSharded("mailbox_drains", workers_);
  steal_attempts_ = metrics_.AddSharded("steal_attempts", workers_);
  steal_successes_ = metrics_.AddSharded("steal_successes", workers_);
  cas_retries_ = metrics_.AddSharded("mailbox_cas_retries", workers_);

  approx_len_ = std::make_unique<HotLine[]>(static_cast<std::size_t>(workers_));

  // Build (or adopt) one policy instance first: it decides the driver.
  SchedPolicy* selected = options.custom_policy;
  std::unique_ptr<SchedPolicy> owned;
  if (selected == nullptr) {
    owned = MakeHostPolicy(options.policy, options.time_slice_us);
    selected = owned.get();
  }

  if (selected->SupportsLockFree() && !options.force_locked) {
    lock_free_ = true;
    lf_policy_ = selected;
    lf_owned_ = std::move(owned);
    const DurationNs quantum = selected->LockFreeQuantumNs();
    lf_.reserve(static_cast<std::size_t>(workers_));
    for (int w = 0; w < workers_; w++) {
      lf_.push_back(std::make_unique<LfWorker>(
          0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(w + 1) + 1, quantum));
    }
    return;
  }

  int shards = options.shards;
  if (options.custom_policy != nullptr) {
    shards = 1;  // one instance cannot be split
  }
  if (shards < 1) {
    shards = 1;
  }
  if (shards > workers_) {
    shards = workers_;
  }

  shard_of_.resize(static_cast<std::size_t>(workers_));
  int base = 0;
  for (int s = 0; s < shards; s++) {
    auto shard = std::make_unique<Shard>();
    shard->parent = this;
    shard->base = base;
    shard->count = workers_ / shards + (s < workers_ % shards ? 1 : 0);
    if (options.custom_policy != nullptr) {
      shard->policy = options.custom_policy;
    } else if (s == 0) {
      shard->owned = std::move(owned);  // reuse the capability-probe instance
      shard->policy = shard->owned.get();
    } else {
      shard->owned = MakeHostPolicy(options.policy, options.time_slice_us);
      shard->policy = shard->owned.get();
    }
    shard->policy->SchedInit(shard.get());
    for (int w = base; w < base + shard->count; w++) {
      shard_of_[static_cast<std::size_t>(w)] = s;
    }
    base += shard->count;
    shards_.push_back(std::move(shard));
  }
  SKYLOFT_CHECK(base == workers_);
}

HostSched::~HostSched() = default;

HostSched::Shard* HostSched::ShardOf(int worker) const {
  return shards_[static_cast<std::size_t>(shard_of_[static_cast<std::size_t>(worker)])].get();
}

// ---- lock-free driver -------------------------------------------------------

// All submissions — local, cross-worker, external — go through the target's
// mailbox, never the deque: the deque's bottom end is strictly owner-written,
// so no caller needs to know whether it IS the owner. One CAS, no length
// accounting: placement and preemption read the queues' own state
// (SizeApprox / EmptyApprox) instead of a shared ledger.
void HostSched::LfEnqueue(SchedItem* item, int target) {
  const int retries = lf_[static_cast<std::size_t>(target)]->mailbox.Push(item);
  if (SKYLOFT_UNLIKELY(retries != 0)) {
    cas_retries_->Inc(target, static_cast<std::uint64_t>(retries));
  }
}

SchedItem* HostSched::LfDequeue(int worker) {
  LfWorker& me = *lf_[static_cast<std::size_t>(worker)];
  SchedItem* item = me.deque.PopBottom();
  if (item == nullptr && !me.mailbox.EmptyApprox()) {
    // Drain the backlog. The chain arrives newest-first, so its TAIL is the
    // oldest submission: return that one directly (it never touches the
    // deque — the single-item yield cycle costs one CAS plus one exchange)
    // and push the rest in chain order, which leaves the oldest of the
    // remainder at the bottom. Later pops therefore continue in FIFO
    // arrival order — two reversals cancel — while thieves take the newest
    // from the top.
    SchedItem* chain = me.mailbox.DrainReversed();
    if (chain != nullptr) {
      mailbox_drains_->Inc(worker);
      SchedItem* next = MpscQueue<SchedItem>::Next(chain);
      while (next != nullptr) {
        me.deque.PushBottom(chain);
        chain = next;
        next = MpscQueue<SchedItem>::Next(chain);
      }
      item = chain;
    }
  }
  if (item == nullptr && workers_ > 1) {
    item = LfStealHalf(worker);
  }
  if (item != nullptr) {
    item->PolicyData<LfRunData>()->ran = 0;
  }
  return item;
}

// Probe victims from a random start; take half the first non-empty deque
// found (capped at kStealBatchMax). The first stolen item is returned to run
// now, the surplus goes into our own deque. Mailbox backlogs are invisible
// to thieves — only the owner may drain a mailbox — so a busy worker's
// undrained submissions cannot be rescued here; the preemption tick bounds
// how long they wait (DESIGN.md section 9).
SchedItem* HostSched::LfStealHalf(int worker) {
  LfWorker& me = *lf_[static_cast<std::size_t>(worker)];
  const int start = static_cast<int>(me.rng.NextBelow(static_cast<std::uint64_t>(workers_)));
  for (int i = 0; i < workers_; i++) {
    const int v = (start + i) % workers_;
    if (v == worker) {
      continue;
    }
    LfWorker& victim = *lf_[static_cast<std::size_t>(v)];
    const std::int64_t size = victim.deque.SizeApprox();
    if (size <= 0) {
      continue;
    }
    std::int64_t want = size - size / 2;  // ceil(size / 2)
    if (want > kStealBatchMax) {
      want = kStealBatchMax;
    }
    SchedItem* first = nullptr;
    std::int64_t got = 0;
    int lost = 0;
    while (got < want) {
      SchedItem* stolen = nullptr;
      steal_attempts_->Inc(worker);
      const StealOutcome outcome = victim.deque.Steal(&stolen);
      if (outcome == StealOutcome::kSuccess) {
        steal_successes_->Inc(worker);
        if (first == nullptr) {
          first = stolen;
        } else {
          me.deque.PushBottom(stolen);
        }
        got++;
      } else if (outcome == StealOutcome::kLostRace && got == 0 && ++lost <= kStealRetries) {
        continue;  // contended but non-empty: brief retry before moving on
      } else {
        break;  // empty, or we already hold a batch — stop fighting
      }
    }
    if (got > 0) {
      steals_->Inc(worker, static_cast<std::uint64_t>(got));
      return first;
    }
  }
  return nullptr;
}

// ---- public surface (dispatches per driver) ---------------------------------

void HostSched::Enqueue(SchedItem* item, unsigned flags, int worker_hint) {
  if (lock_free_) {
    // The lock-free discipline is pure FIFO + steal-half: enqueue flags only
    // matter to policies with ordering state, so they are dropped here.
    const int target =
        (worker_hint >= 0 && worker_hint < workers_) ? worker_hint : ExternalTarget();
    LfEnqueue(item, target);
    return;
  }
  Shard* shard;
  int local_hint;
  if (worker_hint >= 0 && worker_hint < workers_) {
    shard = ShardOf(worker_hint);
    local_hint = worker_hint - shard->base;
    // Length accounting only informs cross-worker placement; skip the atomic
    // on a single-worker runtime.
    if (workers_ > 1) {
      approx_len_[worker_hint].len.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    const unsigned s = rr_shard_.fetch_add(1, std::memory_order_relaxed);
    shard = shards_[s % shards_.size()].get();
    local_hint = -1;
  }
  std::lock_guard<std::mutex> lock(shard->mu);
  shard->policy->TaskEnqueue(item, flags, local_hint);
}

void HostSched::EnqueueNew(SchedItem* item, unsigned flags, int worker_hint) {
  if (lock_free_) {
    // TaskInit is policy state the lock-free driver replaces: LfRunData is
    // zero-initialized with the SchedItem itself, so a new item needs no
    // extra init step and the spawn path is exactly one mailbox CAS.
    const int target =
        (worker_hint >= 0 && worker_hint < workers_) ? worker_hint : ExternalTarget();
    LfEnqueue(item, target);
    return;
  }
  Shard* shard;
  int local_hint;
  if (worker_hint >= 0 && worker_hint < workers_) {
    shard = ShardOf(worker_hint);
    local_hint = worker_hint - shard->base;
    if (workers_ > 1) {
      approx_len_[worker_hint].len.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    const unsigned s = rr_shard_.fetch_add(1, std::memory_order_relaxed);
    shard = shards_[s % shards_.size()].get();
    local_hint = -1;
  }
  std::lock_guard<std::mutex> lock(shard->mu);
  shard->policy->TaskInit(item);
  shard->policy->TaskEnqueue(item, flags, local_hint);
}

SchedItem* HostSched::Retire(SchedItem* dead, int worker) {
  if (lock_free_) {
    // task_terminate is a no-op for the FIFO+steal discipline (no per-task
    // policy state to tear down); the exit fast path is just the dequeue.
    (void)dead;
    return LfDequeue(worker);
  }
  Shard* shard = ShardOf(worker);
  const int local = worker - shard->base;
  SchedItem* next;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->policy->TaskTerminate(dead);
    next = shard->policy->TaskDequeue(local);
    if (next == nullptr) {
      shard->policy->SchedBalance(local);
      next = shard->policy->TaskDequeue(local);
      if (next != nullptr) {
        steals_->Inc(worker);
      }
    }
  }
  if (next != nullptr && workers_ > 1) {
    int len = approx_len_[worker].len.load(std::memory_order_relaxed);
    while (len > 0 &&
           !approx_len_[worker].len.compare_exchange_weak(len, len - 1,
                                                          std::memory_order_relaxed)) {
    }
  }
  return next;
}

SchedItem* HostSched::Dequeue(int worker) {
  if (lock_free_) {
    return LfDequeue(worker);
  }
  Shard* shard = ShardOf(worker);
  const int local = worker - shard->base;
  SchedItem* item;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    item = shard->policy->TaskDequeue(local);
    if (item == nullptr) {
      shard->policy->SchedBalance(local);
      item = shard->policy->TaskDequeue(local);
      if (item != nullptr) {
        steals_->Inc(worker);
      }
    }
  }
  if (item != nullptr && workers_ > 1) {
    // Approximate: the item may have migrated from another worker's queue,
    // in which case that worker's counter stays high until it drains.
    int len = approx_len_[worker].len.load(std::memory_order_relaxed);
    while (len > 0 &&
           !approx_len_[worker].len.compare_exchange_weak(len, len - 1,
                                                          std::memory_order_relaxed)) {
    }
  }
  return item;
}

SchedItem* HostSched::Requeue(SchedItem* item, unsigned flags, int worker) {
  if (lock_free_) {
    // Self-submit through the mailbox, then dequeue. Because the deque is
    // drained FIFO, a yielding uthread that re-enqueues itself pops any
    // earlier-arrived work first — strict yield alternation falls out. If a
    // thief migrates the only item (possibly `item` itself) between the push
    // and the pop, this returns nullptr and the caller's loop goes idle.
    LfEnqueue(item, worker);
    return LfDequeue(worker);
  }
  // task_enqueue + task_dequeue under ONE lock acquisition: the scheduler's
  // yield/preempt completion always re-enqueues the previous uthread and
  // immediately needs the next one, and paying two lock round-trips there
  // dominates the cost of a Yield. Policy call order is identical to
  // Enqueue(worker) followed by Dequeue(worker).
  Shard* shard = ShardOf(worker);
  const int local = worker - shard->base;
  SchedItem* next;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->policy->TaskEnqueue(item, flags, local);
    next = shard->policy->TaskDequeue(local);
    if (next == nullptr) {
      shard->policy->SchedBalance(local);
      next = shard->policy->TaskDequeue(local);
      if (next != nullptr) {
        steals_->Inc(worker);
      }
    }
  }
  // Net queue-length change for `worker` is zero when the dequeue succeeded;
  // only the (policy placed the item elsewhere and found nothing) corner
  // needs the enqueue side of the accounting.
  if (next == nullptr && workers_ > 1) {
    approx_len_[worker].len.fetch_add(1, std::memory_order_relaxed);
  }
  return next;
}

bool HostSched::Tick(int worker, SchedItem* current, DurationNs ran_ns) {
  if (lock_free_) {
    // sched_timer_tick without a lock: charge the run time into the item's
    // policy field and preempt once a full quantum has elapsed AND runnable
    // work is waiting somewhere (own queues first — O(1) — then a relaxed
    // scan of the other workers' queues, matching the mutex work-stealing
    // policy's queued_ > 0 test).
    const LfWorker& me = *lf_[static_cast<std::size_t>(worker)];
    // Reread per tick, not latched at driver selection: the quantum
    // controller retunes it live.
    const DurationNs quantum = me.quantum.load(std::memory_order_relaxed);
    if (current == nullptr || quantum == 0) {
      return false;
    }
    LfRunData* data = current->PolicyData<LfRunData>();
    data->ran += ran_ns;
    if (data->ran < quantum) {
      return false;
    }
    if (me.deque.SizeApprox() > 0 || !me.mailbox.EmptyApprox()) {
      return true;
    }
    for (int v = 0; v < workers_; v++) {
      if (v == worker) {
        continue;
      }
      const LfWorker& other = *lf_[static_cast<std::size_t>(v)];
      if (other.deque.SizeApprox() > 0 || !other.mailbox.EmptyApprox()) {
        return true;
      }
    }
    return false;
  }
  Shard* shard = ShardOf(worker);
  std::lock_guard<std::mutex> lock(shard->mu);
  return shard->policy->SchedTimerTick(worker - shard->base, current, ran_ns);
}

int HostSched::ExternalTarget() const {
  const int idle = idle_map_.FindFirstSet();
  if (idle >= 0 && idle < workers_) {
    return idle;
  }
  if (lock_free_) {
    // Least loaded by the queues' own state: deque depth plus one for an
    // undrained mailbox backlog (its exact size is unknowable without
    // draining, which only the owner may do).
    int best = 0;
    std::int64_t best_len = INT64_MAX;
    for (int w = 0; w < workers_; w++) {
      const LfWorker& lw = *lf_[static_cast<std::size_t>(w)];
      const std::int64_t len = lw.deque.SizeApprox() + (lw.mailbox.EmptyApprox() ? 0 : 1);
      if (len < best_len) {
        best_len = len;
        best = w;
      }
    }
    return best;
  }
  int best = 0;
  int best_len = approx_len_[0].len.load(std::memory_order_relaxed);
  for (int w = 1; w < workers_; w++) {
    const int len = approx_len_[w].len.load(std::memory_order_relaxed);
    if (len < best_len) {
      best_len = len;
      best = w;
    }
  }
  return best;
}

void HostSched::SetIdle(int worker, bool idle) {
  // The idle loop republishes its state every poll round; only transitions
  // touch the shared bitmap word, so steady-state idle polling stays a load.
  if (idle_map_.Test(worker) != idle) {
    if (idle) {
      idle_map_.Set(worker);
    } else {
      idle_map_.Clear(worker);
    }
  }
}

std::size_t HostSched::Queued() const {
  if (lock_free_) {
    // Deque depths plus one per undrained mailbox backlog — an undercount
    // while submissions sit in mailboxes, exact once every worker has
    // drained (the only states observable without being each queue's owner).
    std::size_t total = 0;
    for (int w = 0; w < workers_; w++) {
      const LfWorker& lw = *lf_[static_cast<std::size_t>(w)];
      total += static_cast<std::size_t>(lw.deque.SizeApprox());
      if (!lw.mailbox.EmptyApprox()) {
        total += 1;
      }
    }
    return total;
  }
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->policy->QueuedTasks();
  }
  return total;
}

void HostSched::SetQuantum(DurationNs quantum_ns, int worker) {
  if (lock_free_) {
    // Normalize to the lock-free driver's convention: 0 disables tick
    // preemption (both "<= 0" and the policies' INT64_MAX-style infinite
    // sentinel mean "never preempt on a tick").
    DurationNs q = quantum_ns;
    if (q <= 0 || q == INT64_MAX) {
      q = 0;
    }
    if (worker >= 0 && worker < workers_) {
      lf_[static_cast<std::size_t>(worker)]->quantum.store(q, std::memory_order_relaxed);
    } else {
      for (int w = 0; w < workers_; w++) {
        lf_[static_cast<std::size_t>(w)]->quantum.store(q, std::memory_order_relaxed);
      }
    }
    return;
  }
  if (worker >= 0 && worker < workers_) {
    Shard* shard = ShardOf(worker);
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->policy->SetQuantum(quantum_ns, worker - shard->base);
    return;
  }
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->policy->SetQuantum(quantum_ns, SchedPolicy::kAllWorkers);
  }
}

DurationNs HostSched::QuantumFor(int worker) const {
  if (worker < 0 || worker >= workers_) {
    worker = 0;
  }
  if (lock_free_) {
    return lf_[static_cast<std::size_t>(worker)]->quantum.load(std::memory_order_relaxed);
  }
  Shard* shard = ShardOf(worker);
  std::lock_guard<std::mutex> lock(shard->mu);
  return shard->policy->QuantumFor(worker - shard->base);
}

const char* HostSched::PolicyName() const {
  if (lock_free_) {
    return lf_policy_->Name();
  }
  return shards_.front()->policy->Name();
}

}  // namespace skyloft
