#include "src/runtime/host_sched.h"

#include <chrono>

#include "src/base/logging.h"
#include "src/policies/cfs.h"
#include "src/policies/eevdf.h"
#include "src/policies/round_robin.h"
#include "src/policies/work_stealing.h"

namespace skyloft {

namespace {

TimeNs HostNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::unique_ptr<SchedPolicy> MakeHostPolicy(RuntimePolicy policy, std::int64_t time_slice_us) {
  switch (policy) {
    case RuntimePolicy::kFifo:
      return std::make_unique<RoundRobinPolicy>(kInfiniteSlice);
    case RuntimePolicy::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>(
          time_slice_us > 0 ? Micros(time_slice_us) : Micros(12) + 500);
    case RuntimePolicy::kCfs:
      return std::make_unique<CfsPolicy>(CfsParams{});
    case RuntimePolicy::kEevdf:
      return std::make_unique<EevdfPolicy>(EevdfParams{});
    case RuntimePolicy::kWorkStealing:
      break;
  }
  WorkStealingParams params;
  if (time_slice_us > 0) {
    params.quantum = Micros(time_slice_us);
  }
  return std::make_unique<WorkStealingPolicy>(params);
}

}  // namespace

// One policy instance plus the EngineView it schedules through. Worker
// indices handed to the policy are shard-local [0, count); WorkerCore maps
// them back to global runtime worker indices.
struct HostSched::Shard : EngineView {
  HostSched* parent = nullptr;
  int base = 0;
  int count = 0;
  std::mutex mu;
  std::unique_ptr<SchedPolicy> owned;
  SchedPolicy* policy = nullptr;

  TimeNs Now() const override { return HostNowNs(); }
  int NumWorkers() const override { return count; }
  int WorkerCore(int index) const override { return base + index; }
  bool IsWorkerIdle(int index) const override {
    return parent->idle_[base + index].load(std::memory_order_relaxed);
  }
};

HostSched::HostSched(int workers, const HostSchedOptions& options) : workers_(workers) {
  SKYLOFT_CHECK(workers_ >= 1);
  steals_ = metrics_.AddSharded("steals", workers_);
  int shards = options.shards;
  if (options.custom_policy != nullptr) {
    shards = 1;  // one instance cannot be split
  }
  if (shards < 1) {
    shards = 1;
  }
  if (shards > workers_) {
    shards = workers_;
  }

  idle_ = std::make_unique<std::atomic<bool>[]>(static_cast<std::size_t>(workers_));
  approx_len_ = std::make_unique<std::atomic<int>[]>(static_cast<std::size_t>(workers_));
  for (int w = 0; w < workers_; w++) {
    idle_[w].store(false, std::memory_order_relaxed);
    approx_len_[w].store(0, std::memory_order_relaxed);
  }

  shard_of_.resize(static_cast<std::size_t>(workers_));
  int base = 0;
  for (int s = 0; s < shards; s++) {
    auto shard = std::make_unique<Shard>();
    shard->parent = this;
    shard->base = base;
    shard->count = workers_ / shards + (s < workers_ % shards ? 1 : 0);
    if (options.custom_policy != nullptr) {
      shard->policy = options.custom_policy;
    } else {
      shard->owned = MakeHostPolicy(options.policy, options.time_slice_us);
      shard->policy = shard->owned.get();
    }
    shard->policy->SchedInit(shard.get());
    for (int w = base; w < base + shard->count; w++) {
      shard_of_[static_cast<std::size_t>(w)] = s;
    }
    base += shard->count;
    shards_.push_back(std::move(shard));
  }
  SKYLOFT_CHECK(base == workers_);
}

HostSched::~HostSched() = default;

HostSched::Shard* HostSched::ShardOf(int worker) const {
  return shards_[static_cast<std::size_t>(shard_of_[static_cast<std::size_t>(worker)])].get();
}

void HostSched::Enqueue(SchedItem* item, unsigned flags, int worker_hint) {
  Shard* shard;
  int local_hint;
  if (worker_hint >= 0 && worker_hint < workers_) {
    shard = ShardOf(worker_hint);
    local_hint = worker_hint - shard->base;
    // Length accounting only informs cross-worker placement; skip the atomic
    // on a single-worker runtime.
    if (workers_ > 1) {
      approx_len_[worker_hint].fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    const unsigned s = rr_shard_.fetch_add(1, std::memory_order_relaxed);
    shard = shards_[s % shards_.size()].get();
    local_hint = -1;
  }
  std::lock_guard<std::mutex> lock(shard->mu);
  shard->policy->TaskEnqueue(item, flags, local_hint);
}

void HostSched::EnqueueNew(SchedItem* item, unsigned flags, int worker_hint) {
  Shard* shard;
  int local_hint;
  if (worker_hint >= 0 && worker_hint < workers_) {
    shard = ShardOf(worker_hint);
    local_hint = worker_hint - shard->base;
    if (workers_ > 1) {
      approx_len_[worker_hint].fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    const unsigned s = rr_shard_.fetch_add(1, std::memory_order_relaxed);
    shard = shards_[s % shards_.size()].get();
    local_hint = -1;
  }
  std::lock_guard<std::mutex> lock(shard->mu);
  shard->policy->TaskInit(item);
  shard->policy->TaskEnqueue(item, flags, local_hint);
}

SchedItem* HostSched::Retire(SchedItem* dead, int worker) {
  Shard* shard = ShardOf(worker);
  const int local = worker - shard->base;
  SchedItem* next;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->policy->TaskTerminate(dead);
    next = shard->policy->TaskDequeue(local);
    if (next == nullptr) {
      shard->policy->SchedBalance(local);
      next = shard->policy->TaskDequeue(local);
      if (next != nullptr) {
        steals_->Inc(worker);
      }
    }
  }
  if (next != nullptr && workers_ > 1) {
    int len = approx_len_[worker].load(std::memory_order_relaxed);
    while (len > 0 &&
           !approx_len_[worker].compare_exchange_weak(len, len - 1, std::memory_order_relaxed)) {
    }
  }
  return next;
}

SchedItem* HostSched::Dequeue(int worker) {
  Shard* shard = ShardOf(worker);
  const int local = worker - shard->base;
  SchedItem* item;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    item = shard->policy->TaskDequeue(local);
    if (item == nullptr) {
      shard->policy->SchedBalance(local);
      item = shard->policy->TaskDequeue(local);
      if (item != nullptr) {
        steals_->Inc(worker);
      }
    }
  }
  if (item != nullptr && workers_ > 1) {
    // Approximate: the item may have migrated from another worker's queue,
    // in which case that worker's counter stays high until it drains.
    int len = approx_len_[worker].load(std::memory_order_relaxed);
    while (len > 0 &&
           !approx_len_[worker].compare_exchange_weak(len, len - 1, std::memory_order_relaxed)) {
    }
  }
  return item;
}

SchedItem* HostSched::Requeue(SchedItem* item, unsigned flags, int worker) {
  // task_enqueue + task_dequeue under ONE lock acquisition: the scheduler's
  // yield/preempt completion always re-enqueues the previous uthread and
  // immediately needs the next one, and paying two lock round-trips there
  // dominates the cost of a Yield. Policy call order is identical to
  // Enqueue(worker) followed by Dequeue(worker).
  Shard* shard = ShardOf(worker);
  const int local = worker - shard->base;
  SchedItem* next;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->policy->TaskEnqueue(item, flags, local);
    next = shard->policy->TaskDequeue(local);
    if (next == nullptr) {
      shard->policy->SchedBalance(local);
      next = shard->policy->TaskDequeue(local);
      if (next != nullptr) {
        steals_->Inc(worker);
      }
    }
  }
  // Net queue-length change for `worker` is zero when the dequeue succeeded;
  // only the (policy placed the item elsewhere and found nothing) corner
  // needs the enqueue side of the accounting.
  if (next == nullptr && workers_ > 1) {
    approx_len_[worker].fetch_add(1, std::memory_order_relaxed);
  }
  return next;
}

bool HostSched::Tick(int worker, SchedItem* current, DurationNs ran_ns) {
  Shard* shard = ShardOf(worker);
  std::lock_guard<std::mutex> lock(shard->mu);
  return shard->policy->SchedTimerTick(worker - shard->base, current, ran_ns);
}

int HostSched::ExternalTarget() const {
  for (int w = 0; w < workers_; w++) {
    if (idle_[w].load(std::memory_order_relaxed)) {
      return w;
    }
  }
  int best = 0;
  int best_len = approx_len_[0].load(std::memory_order_relaxed);
  for (int w = 1; w < workers_; w++) {
    const int len = approx_len_[w].load(std::memory_order_relaxed);
    if (len < best_len) {
      best_len = len;
      best = w;
    }
  }
  return best;
}

void HostSched::SetIdle(int worker, bool idle) {
  idle_[worker].store(idle, std::memory_order_relaxed);
}

std::size_t HostSched::Queued() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->policy->QueuedTasks();
  }
  return total;
}

const char* HostSched::PolicyName() const { return shards_.front()->policy->Name(); }

}  // namespace skyloft
