// Synchronization primitives for the host runtime, analogous to Skyloft's
// POSIX-compatible threading APIs (§2.4): a blocking mutex and a condition
// variable built on Park/Unpark. Table 7 measures their uncontended and
// signal-path costs against pthreads.
#ifndef SRC_RUNTIME_SYNC_H_
#define SRC_RUNTIME_SYNC_H_

#include <atomic>
#include <cstdint>
#include <deque>

#include "src/base/intrusive_list.h"
#include "src/runtime/uthread.h"

namespace skyloft {

struct IoHandle;

// ---- I/O waits (DESIGN.md section 10) ----
//
// Blocks the current uthread until the handle's engine latches the matching
// readiness (or a sticky kIoHup/kIoError), then consumes the readable/
// writable latch and returns the observed IoReady mask. Edge-triggered
// contract: after WaitForReadable returns, the caller must read until EAGAIN
// before waiting again (symmetrically for writes) — the kernel only re-arms
// the edge once the socket has been drained/filled. kIoHup/kIoError bits are
// left latched so teardown paths keep observing them.
//
// Both primitives may return spuriously under racing wakeups (like every
// Park-based wait in this runtime); callers sit in read/write loops that
// tolerate an extra EAGAIN round.
SKYLOFT_MAY_SWITCH unsigned WaitForReadable(IoHandle* handle);
SKYLOFT_MAY_SWITCH unsigned WaitForWritable(IoHandle* handle);

// A queued blocking mutex: fast path is one CAS; contended acquirers park
// and are woken FIFO by the releasing thread.
class UthreadMutex {
 public:
  UthreadMutex() = default;
  UthreadMutex(const UthreadMutex&) = delete;
  UthreadMutex& operator=(const UthreadMutex&) = delete;

  SKYLOFT_MAY_SWITCH SKYLOFT_ACQUIRES(uthread_mutex) void Lock();
  // TryLock is deliberately not SKYLOFT_ACQUIRES: a conditional acquire has
  // no unconditional post-state skylint's linear lock walk could model.
  SKYLOFT_NO_SWITCH bool TryLock();
  SKYLOFT_NO_SWITCH SKYLOFT_RELEASES(uthread_mutex) void Unlock();

 private:
  struct Waiter : ListNode {
    UThread* thread = nullptr;
  };

  std::atomic<bool> locked_{false};
  // Fast-path gate: Unlock skips the waiter list entirely when zero.
  std::atomic<int> waiter_count_{0};
  // Short spinlock guarding the waiter list; never held across a park
  // (lock class `wait_spin`, shared with UthreadCondVar — same role, and
  // rule lock-held-across-switch enforces the never-parked invariant).
  std::atomic_flag wait_spin_ = ATOMIC_FLAG_INIT;
  IntrusiveList<Waiter> waiters_;

  SKYLOFT_NO_SWITCH SKYLOFT_ACQUIRES(wait_spin) void SpinAcquire();
  SKYLOFT_NO_SWITCH SKYLOFT_RELEASES(wait_spin) void SpinRelease();
};

class UthreadCondVar {
 public:
  UthreadCondVar() = default;
  UthreadCondVar(const UthreadCondVar&) = delete;
  UthreadCondVar& operator=(const UthreadCondVar&) = delete;

  // Atomically releases `mutex` and blocks; reacquires before returning.
  // SKYLOFT_REQUIRES makes the contract checkable both ways: callers must
  // hold the mutex (rule lock-requires-unheld), and holding it across this
  // call is exempt from lock-held-across-switch — Wait itself releases it
  // before parking.
  SKYLOFT_MAY_SWITCH SKYLOFT_REQUIRES(uthread_mutex) void Wait(UthreadMutex* mutex);

  // Wakes one / all waiters.
  SKYLOFT_NO_SWITCH void Signal();
  SKYLOFT_NO_SWITCH void Broadcast();

 private:
  struct Waiter : ListNode {
    UThread* thread = nullptr;
  };

  std::atomic_flag wait_spin_ = ATOMIC_FLAG_INIT;
  IntrusiveList<Waiter> waiters_;

  SKYLOFT_NO_SWITCH SKYLOFT_ACQUIRES(wait_spin) void SpinAcquire();
  SKYLOFT_NO_SWITCH SKYLOFT_RELEASES(wait_spin) void SpinRelease();
};

// Counting semaphore built on the mutex + condvar primitives.
class UthreadSemaphore {
 public:
  explicit UthreadSemaphore(int initial) : count_(initial) {}

  SKYLOFT_MAY_SWITCH void Acquire() {
    mutex_.Lock();
    while (count_ == 0) {
      available_.Wait(&mutex_);
    }
    count_--;
    mutex_.Unlock();
  }

  // May still block: the fast path takes the (parking) mutex.
  SKYLOFT_MAY_SWITCH bool TryAcquire() {
    mutex_.Lock();
    const bool ok = count_ > 0;
    if (ok) {
      count_--;
    }
    mutex_.Unlock();
    return ok;
  }

  SKYLOFT_MAY_SWITCH void Release() {
    mutex_.Lock();
    count_++;
    mutex_.Unlock();
    available_.Signal();
  }

 private:
  UthreadMutex mutex_;
  UthreadCondVar available_;
  int count_;
};

// Bounded multi-producer/multi-consumer channel (Go-style) for uthreads.
template <typename T>
class UthreadChannel {
 public:
  explicit UthreadChannel(std::size_t capacity) : capacity_(capacity) {}

  // Blocks while full; returns false if the channel was closed.
  SKYLOFT_MAY_SWITCH bool Send(T value) {
    mutex_.Lock();
    while (items_.size() >= capacity_ && !closed_) {
      not_full_.Wait(&mutex_);
    }
    if (closed_) {
      mutex_.Unlock();
      return false;
    }
    items_.push_back(std::move(value));
    mutex_.Unlock();
    not_empty_.Signal();
    return true;
  }

  // Blocks while empty; returns false once closed AND drained.
  SKYLOFT_MAY_SWITCH bool Receive(T* out) {
    mutex_.Lock();
    while (items_.empty() && !closed_) {
      not_empty_.Wait(&mutex_);
    }
    if (items_.empty()) {
      mutex_.Unlock();
      return false;  // closed and drained
    }
    *out = std::move(items_.front());
    items_.pop_front();
    mutex_.Unlock();
    not_full_.Signal();
    return true;
  }

  // Unblocks all senders/receivers; further Sends fail, Receives drain.
  SKYLOFT_MAY_SWITCH void Close() {
    mutex_.Lock();
    closed_ = true;
    mutex_.Unlock();
    not_empty_.Broadcast();
    not_full_.Broadcast();
  }

 private:
  std::size_t capacity_;
  UthreadMutex mutex_;
  UthreadCondVar not_empty_;
  UthreadCondVar not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

// RAII lock guard. The SKYLOFT_ACQUIRES on the constructor lets skylint
// treat `UthreadMutexGuard g(&mu);` declarations as scope-bound acquires,
// like std::lock_guard.
class UthreadMutexGuard {
 public:
  SKYLOFT_ACQUIRES(uthread_mutex) explicit UthreadMutexGuard(UthreadMutex* mutex)
      : mutex_(mutex) {
    mutex_->Lock();
  }
  SKYLOFT_RELEASES(uthread_mutex) ~UthreadMutexGuard() { mutex_->Unlock(); }
  UthreadMutexGuard(const UthreadMutexGuard&) = delete;
  UthreadMutexGuard& operator=(const UthreadMutexGuard&) = delete;

 private:
  UthreadMutex* mutex_;
};

}  // namespace skyloft

#endif  // SRC_RUNTIME_SYNC_H_
