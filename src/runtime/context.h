// Bare-metal user-thread context switch for x86-64 SysV.
//
// This is the host-runtime analogue of the paper's "lightweight context
// switching" (§2.4): a switch saves exactly the callee-saved registers and
// the stack pointer — no kernel, no signal masks, no FPU state (the SysV ABI
// makes all vector registers caller-saved across the call).
#ifndef SRC_RUNTIME_CONTEXT_H_
#define SRC_RUNTIME_CONTEXT_H_

#include <cstddef>
#include <cstdint>

#include "src/base/compiler.h"

extern "C" {

// Saves the current callee-saved state on the current stack, stores the
// resulting stack pointer into *save_sp, switches to restore_sp, restores
// callee-saved state, and returns on the new stack.
//
// This is THE switch primitive: the may-switch set skylint enforces is the
// transitive-caller closure of this annotation. It is also called from the
// preemption signal handler, so it must stay async-signal-safe.
SKYLOFT_MAY_SWITCH SKYLOFT_SIGNAL_SAFE void skyloft_ctx_switch(void** save_sp, void* restore_sp);

}  // extern "C"

namespace skyloft {

// Entry function invoked on a fresh uthread stack; receives the pointer that
// was passed to InitContext.
using UthreadEntry = void (*)(void* arg);

// Prepares a fresh stack so that switching into the returned stack pointer
// lands in `entry(arg)` with a correctly aligned stack.
//   stack_base: lowest address of the stack allocation
//   stack_size: bytes
SKYLOFT_NO_SWITCH void* InitContext(void* stack_base, std::size_t stack_size, UthreadEntry entry,
                                    void* arg);

}  // namespace skyloft

#endif  // SRC_RUNTIME_CONTEXT_H_
