// Host M:N user-level threading runtime.
//
// This is the part of Skyloft that runs for real on this machine: user
// threads multiplexed over N worker pthreads with per-worker runqueues and
// work stealing, a stack pool, and optional signal-timer preemption standing
// in for UINTR (which needs Sapphire Rapids hardware — see DESIGN.md).
// Table 7's threading-operation benchmarks measure these primitives.
//
// API sketch (all static calls are valid only inside Runtime::Run):
//   Runtime rt(options);
//   rt.Run([] {
//     UThread* t = Runtime::Spawn([] { ... });
//     Runtime::Yield();
//     Runtime::Join(t);
//   });
#ifndef SRC_RUNTIME_UTHREAD_H_
#define SRC_RUNTIME_UTHREAD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/base/compiler.h"
#include "src/base/intrusive_list.h"

namespace skyloft {

class Runtime;
struct RuntimeWorker;

enum class UthreadState : std::uint8_t {
  kRunnable,
  kRunning,
  kBlocked,
  kDone,
};

struct UThread : ListNode {
  std::function<void()> fn;
  void* sp = nullptr;
  std::unique_ptr<unsigned char[]> stack;
  std::size_t stack_size = 0;
  std::atomic<UthreadState> state{UthreadState::kRunnable};
  // Threads waiting in Join(); protected by the runtime's wait lock.
  std::vector<UThread*> joiners;
  bool detached = false;
};

struct RuntimeOptions {
  int workers = 1;
  std::size_t stack_size = 64 * 1024;
  // Preemption timer period; 0 disables preemption (cooperative only).
  std::int64_t preempt_period_us = 0;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions options);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Runs `main_fn` as the first user thread and returns when every user
  // thread has finished.
  void Run(std::function<void()> main_fn);

  // ---- Callable from inside user threads ----
  static UThread* Spawn(std::function<void()> fn);
  static void Yield();
  static void Join(UThread* thread);
  static UThread* Current();

  // Blocks the current uthread until Unpark; used by the sync primitives.
  static void Park();
  static void Unpark(UThread* thread);

  // Blocks the current uthread for at least `duration_us` (the worker runs
  // other uthreads meanwhile; wakeup granularity is the housekeeping tick).
  static void SleepFor(std::int64_t duration_us);

  // Scope guard that delays signal-timer preemption (scheduler and sync
  // primitives hold it around non-reentrant sections).
  class PreemptGuard {
   public:
    PreemptGuard();
    ~PreemptGuard();
  };

  std::uint64_t preemptions() const { return preemptions_.load(std::memory_order_relaxed); }
  std::uint64_t steals() const { return steals_.load(std::memory_order_relaxed); }

 private:
  friend struct RuntimeWorker;

  void WorkerLoop(int index);
  void Schedule(UThread* thread);          // enqueue on the current/least-loaded worker
  UThread* FindWork(RuntimeWorker* worker);
  void SwitchTo(RuntimeWorker* worker, UThread* next);
  static void UthreadMain(void* arg);
  void ExitCurrent();                       // terminate the running uthread
  UThread* AllocUthread(std::function<void()> fn);
  void FreeUthread(UThread* thread);
  void InstallPreemptTimer(RuntimeWorker* worker);
  static void PreemptSignalHandler(int signo);

  RuntimeOptions options_;
  std::vector<std::unique_ptr<RuntimeWorker>> workers_;
  std::vector<std::thread> worker_threads_;
  std::atomic<std::int64_t> live_uthreads_{0};
  std::atomic<bool> stopping_{false};

  std::mutex wait_lock_;  // protects joiners lists and park/unpark races

  std::mutex sleep_lock_;
  std::multimap<std::chrono::steady_clock::time_point, UThread*> sleepers_;

  std::mutex pool_lock_;
  std::vector<UThread*> free_pool_;
  // Raw storage blocks: each holds a placement-new'd UThread plus its
  // internal handshake word. UThreads are recycled, never destroyed, until
  // the runtime itself is.
  std::vector<std::unique_ptr<unsigned char[]>> uthread_storage_;

  std::atomic<std::uint64_t> preemptions_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace skyloft

#endif  // SRC_RUNTIME_UTHREAD_H_
