// Host M:N user-level threading runtime.
//
// This is the part of Skyloft that runs for real on this machine: user
// threads multiplexed over N worker pthreads, a stack pool, and optional
// signal-timer preemption standing in for UINTR (which needs Sapphire
// Rapids hardware — see DESIGN.md). Scheduling decisions are delegated to a
// Table 2 SchedPolicy through the HostSched adapter: the default is the
// work-stealing policy (per-worker FIFO + steal-half), but any registered
// policy — FIFO, RR, CFS, EEVDF, or a caller-supplied instance — can drive
// the same workers via RuntimeOptions::sched. Table 7's threading-operation
// benchmarks measure these primitives.
//
// API sketch (all static calls are valid only inside Runtime::Run):
//   Runtime rt(options);
//   rt.Run([] {
//     UThread* t = Runtime::Spawn([] { ... });
//     Runtime::Yield();
//     Runtime::Join(t);
//   });
#ifndef SRC_RUNTIME_UTHREAD_H_
#define SRC_RUNTIME_UTHREAD_H_

#include <signal.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/base/compiler.h"
#include "src/base/metrics.h"
#include "src/base/trace.h"
#include "src/runtime/host_sched.h"
#include "src/runtime/io_engine.h"
#include "src/sched/sched_item.h"

namespace skyloft {

class Runtime;
struct RuntimeWorker;

enum class UthreadState : std::uint8_t {
  kRunnable,
  kRunning,
  kBlocked,
  kDone,
};

// UThread embeds SchedItem (runqueue linkage, id, policy data), so the same
// SchedPolicy objects that schedule simulated Tasks schedule real uthreads.
struct UThread : SchedItem {
  std::function<void()> fn;
  void* sp = nullptr;
  std::unique_ptr<unsigned char[]> stack;
  std::size_t stack_size = 0;
  std::atomic<UthreadState> state{UthreadState::kRunnable};
  // Threads waiting in Join(); protected by the runtime's wait lock.
  std::vector<UThread*> joiners;
  bool detached = false;
};

struct RuntimeOptions {
  int workers = 1;
  std::size_t stack_size = 64 * 1024;
  // Preemption timer period; 0 disables preemption (cooperative only). The
  // timer delivers sched_timer_tick to the policy, which decides whether
  // the running uthread is actually preempted.
  std::int64_t preempt_period_us = 0;
  // Policy selection for the host scheduler (defaults to work stealing).
  HostSchedOptions sched{};
  // Per-worker I/O engine cores (epoll/io_uring readiness feeding
  // WaitForReadable/Writable park-unpark wakeups; DESIGN.md section 10).
  // Off by default so non-network workloads pay nothing — the worker loop
  // only polls when an engine exists.
  bool io_engine = false;
  IoEngineOptions io{};
  // Optional scheduling-event tracer (not owned; must outlive the Runtime).
  // Records assignments, occupancy spans, preemptions, and — from inside the
  // signal handler — preemption-signal delivery/deferral instants.
  SchedTracer* tracer = nullptr;
  // Optional adaptive quantum controller (not owned; must outlive Run()).
  // Polled from the housekeeping/timer thread every quantum_poll_us — a slow
  // path off the workers. The caller builds its hooks (typically
  // Runtime::SetQuantum + Runtime::SetPreemptPeriodUs) before Run().
  class QuantumController* quantum_controller = nullptr;
  std::int64_t quantum_poll_us = 5000;
};

class Runtime {
 public:
  explicit Runtime(RuntimeOptions options);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Runs `main_fn` as the first user thread and returns when every user
  // thread has finished.
  void Run(std::function<void()> main_fn);

  // ---- Callable from inside user threads ----
  SKYLOFT_NO_SWITCH static UThread* Spawn(std::function<void()> fn);
  SKYLOFT_MAY_SWITCH static void Yield();
  SKYLOFT_MAY_SWITCH static void Join(UThread* thread);
  SKYLOFT_NO_SWITCH static UThread* Current();

  // Blocks the current uthread until Unpark; used by the sync primitives.
  SKYLOFT_MAY_SWITCH static void Park();
  SKYLOFT_NO_SWITCH static void Unpark(UThread* thread);

  // Blocks the current uthread for at least `duration_us` (the worker runs
  // other uthreads meanwhile; wakeup granularity is the housekeeping tick).
  SKYLOFT_MAY_SWITCH static void SleepFor(std::int64_t duration_us);

  // Scope guard that delays signal-timer preemption (scheduler and sync
  // primitives hold it around non-reentrant sections). The counter lives on
  // the current uthread, not the worker: a guard may span a Park() that
  // resumes on a different worker, and the disable depth must travel with
  // the uthread.
  class PreemptGuard {
   public:
    PreemptGuard();
    ~PreemptGuard();

   private:
    std::atomic<int>* counter_ = nullptr;
  };

  // ---- Live preemption tuning (any thread; the quantum controller's knobs) ----

  // Forwards to HostSched::SetQuantum: per-worker (or all-worker) preemption
  // quantum, effective from the next tick that consults it.
  SKYLOFT_NO_SWITCH void SetQuantum(DurationNs quantum_ns,
                                    int worker = SchedPolicy::kAllWorkers) {
    sched_->SetQuantum(quantum_ns, worker);
  }
  SKYLOFT_NO_SWITCH DurationNs QuantumFor(int worker) const {
    return sched_->QuantumFor(worker);
  }

  // Retunes the preemption-timer period. Only meaningful when the runtime was
  // constructed with preempt_period_us > 0 (the signal handler is installed
  // once, at Run()); <= 0 pauses signal delivery until set positive again.
  void SetPreemptPeriodUs(std::int64_t period_us) {
    preempt_period_us_.store(period_us > 0 ? period_us : 0, std::memory_order_relaxed);
  }
  std::int64_t preempt_period_us() const {
    return preempt_period_us_.load(std::memory_order_relaxed);
  }

  std::uint64_t preemptions() const { return preemptions_->Value(); }
  // Timer signals that landed while the interrupted PC was outside the main
  // executable's text (e.g. inside malloc) and were deferred to the next
  // period instead of preempting — the async-preemption safe-point check.
  std::uint64_t preempt_deferrals() const { return preempt_deferrals_->Value(); }
  std::uint64_t steals() const { return sched_->steals(); }
  // Off-runtime submissions (external Unpark, Run()'s main thread) placed
  // via idle-first/least-loaded selection.
  std::uint64_t external_placements() const { return external_placements_->Value(); }
  const char* policy_name() const { return sched_->PolicyName(); }
  // True when the host scheduler selected the lock-free two-level-runqueue
  // driver for the active policy (see HostSched / DESIGN.md section 9).
  bool lock_free_sched() const { return sched_->lock_free(); }

  int workers() const { return options_.workers; }

  // The I/O engine core owned by `worker` (null unless RuntimeOptions::
  // io_engine). Servers register SO_REUSEPORT listeners here, one per
  // worker, to shard connections at accept time.
  IoEngine* io_engine(int worker) const {
    return engines_.empty() ? nullptr : engines_[static_cast<std::size_t>(worker)].get();
  }

  // Data-path syscall totals across all engines, and the numerator of the
  // bench's syscalls/request column: io_uring_enter + read + write + accept.
  // Engines count their own enters; the readiness serving loops self-report
  // via IoEngine::CountSys*. Zero when the runtime has no I/O engines.
  std::uint64_t io_data_syscalls() const;

 private:
  friend struct RuntimeWorker;

  void WorkerLoop(int index);
  // Enqueues on the calling worker, or — off-runtime — on the first idle /
  // least-loaded worker. `flags` are SchedPolicy EnqueueFlags.
  SKYLOFT_NO_SWITCH void Schedule(UThread* thread, unsigned flags);
  SKYLOFT_NO_SWITCH UThread* FindWork(RuntimeWorker* worker);
  SKYLOFT_MAY_SWITCH void SwitchTo(RuntimeWorker* worker, UThread* next);
  static void UthreadMain(void* arg);
  SKYLOFT_MAY_SWITCH void ExitCurrent();    // terminate the running uthread
  // Signal-timer entry to the scheduler: runs on the interrupted uthread's
  // stack from the SIGURG handler and may switch away from it.
  SKYLOFT_MAY_SWITCH SKYLOFT_SIGNAL_SAFE static void PreemptTick();
  SKYLOFT_NO_SWITCH UThread* AllocUthread(std::function<void()> fn);
  SKYLOFT_NO_SWITCH void FreeUthread(UThread* thread);
  SKYLOFT_SIGNAL_SAFE static void PreemptSignalHandler(int signo, siginfo_t* info, void* uctx);

  RuntimeOptions options_;
  // Live preemption-timer period; seeded from options_.preempt_period_us and
  // retuned by SetPreemptPeriodUs while the timer thread runs.
  std::atomic<std::int64_t> preempt_period_us_{0};
  std::unique_ptr<HostSched> sched_;
  std::vector<std::unique_ptr<RuntimeWorker>> workers_;
  std::vector<std::unique_ptr<IoEngine>> engines_;  // one per worker when enabled
  std::vector<std::thread> worker_threads_;
  std::atomic<std::int64_t> live_uthreads_{0};
  std::atomic<bool> stopping_{false};

  std::mutex wait_lock_;  // protects joiners lists and park/unpark races

  std::mutex sleep_lock_;
  std::multimap<std::chrono::steady_clock::time_point, UThread*> sleepers_;

  std::mutex pool_lock_;
  std::vector<UThread*> free_pool_;
  // Raw storage blocks: each holds a placement-new'd UThread plus its
  // internal handshake word. UThreads are recycled, never destroyed, until
  // the runtime itself is.
  std::vector<std::unique_ptr<unsigned char[]>> uthread_storage_;

  std::atomic<std::uint64_t> next_uthread_id_{1};

  // Unified metrics (replacing the ad-hoc atomics): the counters live in
  // metrics_ and are registered under the "runtime" prefix. Counter::Inc is
  // async-signal-safe, so the signal handler may bump deferrals directly.
  MetricGroup metrics_{"runtime"};
  Counter* preemptions_ = nullptr;
  Counter* preempt_deferrals_ = nullptr;
  Counter* external_placements_ = nullptr;
  // Lanes shared by every engine (one lane per worker); registered under the
  // "io_engine" prefix only when engines exist.
  MetricGroup io_metrics_{"io_engine"};
  IoEngineStats io_stats_{};

  SchedTracer* tracer_ = nullptr;  // from RuntimeOptions; not owned
};

}  // namespace skyloft

#endif  // SRC_RUNTIME_UTHREAD_H_
