// Host-side adapter for the Table 2 scheduling-operations interface.
//
// The sim engines (src/libos) drive a SchedPolicy from a single event loop;
// the host runtime has N real worker pthreads, so the policy must be driven
// concurrently. HostSched owns two interchangeable drivers behind one
// per-worker operation surface:
//
//   - the shard-mutex driver: one-or-more locked shards, each owning a policy
//     instance covering a contiguous worker range. Every policy call happens
//     under the owning shard's mutex. This is the general path — any Table 2
//     policy (CFS, EEVDF, RR, ...) runs here unchanged.
//   - the lock-free driver: a two-level runqueue per worker — an intrusive
//     MPSC mailbox absorbing all submissions plus a Chase-Lev deque the owner
//     drains it into — with steal-half batching when a worker runs dry
//     (DESIGN.md section 9). No mutex anywhere on the task path. Selected
//     when the policy declares SchedPolicy::SupportsLockFree() (the
//     work-stealing default does); the policy object then only supplies its
//     name and preemption quantum.
//
// Locking model (shard-mutex driver): callers on a uthread stack must hold a
// Runtime::PreemptGuard (a preemption signal landing while a shard lock is
// held would deadlock the worker). The runtime's scheduler stack always runs
// with preemption disabled, so WorkerLoop-side calls are safe by
// construction. The lock-free driver has no locks to deadlock on, but the
// same guard discipline applies so the two drivers stay swappable.
#ifndef SRC_RUNTIME_HOST_SCHED_H_
#define SRC_RUNTIME_HOST_SCHED_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/bitmap.h"
#include "src/base/compiler.h"
#include "src/base/metrics.h"
#include "src/sched/policy.h"

namespace skyloft {

// Which policy the host runtime schedules uthreads with (Table 4 policies
// that make sense without a centralized dispatcher thread).
enum class RuntimePolicy {
  kWorkStealing,  // per-worker FIFO + steal-half; the pre-refactor behavior
  kFifo,          // run-to-completion round-robin placement, no preemption
  kRoundRobin,    // FIFO + slice-based preemption via the signal timer
  kCfs,
  kEevdf,
};

struct HostSchedOptions {
  RuntimePolicy policy = RuntimePolicy::kWorkStealing;
  // Slice/quantum override in microseconds; 0 keeps the policy default
  // (12.5 us RR slice, 5 us work-stealing quantum).
  std::int64_t time_slice_us = 0;
  // Number of policy shards (shard-mutex driver only). Workers are split
  // into contiguous ranges, one policy instance per range; balancing
  // (stealing) stays within a shard.
  int shards = 1;
  // Non-owning: schedule with this policy instance instead of constructing
  // one from `policy`. Forces a single shard. The caller keeps the object
  // alive for the lifetime of the Runtime.
  SchedPolicy* custom_policy = nullptr;
  // Pin the shard-mutex driver even when the policy supports the lock-free
  // one (benchmark baselines, driver-parity tests).
  bool force_locked = false;
};

class HostSched {
 public:
  HostSched(int workers, const HostSchedOptions& options);
  ~HostSched();  // out of line: Shard/LfWorker are incomplete types here

  // Every operation below runs policy code under a shard mutex (shard-mutex
  // driver) or manipulates lock-free queues whose progress other workers
  // depend on (lock-free driver); either way it must never reach a switch
  // primitive — hence the blanket SKYLOFT_NO_SWITCH.

  // task_enqueue. `worker_hint` is a global worker index (or -1): a valid
  // hint routes to that worker's runqueue/shard, no hint lets the driver
  // place the task (lock-free: idle-first placement; shard-mutex:
  // round-robin across shards with the policy placing within).
  SKYLOFT_NO_SWITCH void Enqueue(SchedItem* item, unsigned flags, int worker_hint);

  // task_init + task_enqueue fused: a new item is initialized by the same
  // policy instance that first queues it, and the spawn path pays one lock
  // round trip instead of two (lock-free: TaskInit is policy-free, this is
  // a plain mailbox push).
  SKYLOFT_NO_SWITCH void EnqueueNew(SchedItem* item, unsigned flags, int worker_hint);

  // task_terminate + task_dequeue fused: retire a finished item and fetch
  // the worker's next task in one acquisition (the exit fast path).
  SKYLOFT_NO_SWITCH SchedItem* Retire(SchedItem* dead, int worker);

  // task_dequeue for `worker`; on an empty queue invokes sched_balance /
  // steal-half and retries (the paper's idle path). A rescue counts as a
  // steal.
  SKYLOFT_NO_SWITCH SchedItem* Dequeue(int worker);

  // Enqueue(item, flags, worker) + Dequeue(worker) fused — the scheduler's
  // yield-completion fast path. May return a different item than `item`
  // (including nullptr if a thief migrated it before we could re-fetch).
  SKYLOFT_NO_SWITCH SchedItem* Requeue(SchedItem* item, unsigned flags, int worker);

  // sched_timer_tick for `worker`; true => preempt `current`.
  SKYLOFT_NO_SWITCH bool Tick(int worker, SchedItem* current, DurationNs ran_ns);

  // Live quantum control (the adaptive controller's fast knob). Callable from
  // any thread: the lock-free driver stores per-worker atomics that Tick
  // rereads every invocation; the shard-mutex driver forwards to the policy
  // under the owning shard's lock. `worker` < 0 targets all workers;
  // `quantum_ns` <= 0 (or INT64_MAX) disables tick preemption.
  SKYLOFT_NO_SWITCH void SetQuantum(DurationNs quantum_ns, int worker);
  // The quantum in force for `worker` (lock-free driver: 0 == disabled;
  // shard-mutex driver: the policy's own reporting convention).
  SKYLOFT_NO_SWITCH DurationNs QuantumFor(int worker) const;

  // Placement target for submissions that originate off-runtime (external
  // Unpark, Run()'s main thread): first idle worker (one bitmap word scan),
  // else the worker with the (approximately) shortest queue.
  SKYLOFT_NO_SWITCH int ExternalTarget() const;

  SKYLOFT_NO_SWITCH void SetIdle(int worker, bool idle);

  std::size_t Queued() const;  // approximate under the lock-free driver
  std::uint64_t steals() const { return steals_->Value(); }
  const char* PolicyName() const;
  int workers() const { return workers_; }
  // True when this instance runs the lock-free two-level-runqueue driver.
  bool lock_free() const { return lock_free_; }

 private:
  struct Shard;     // shard-mutex driver state (one policy + mutex)
  struct LfWorker;  // lock-free driver state (mailbox + deque + rng)

  Shard* ShardOf(int worker) const;

  // Lock-free driver internals (see host_sched.cpp).
  SKYLOFT_NO_SWITCH void LfEnqueue(SchedItem* item, int target);
  SKYLOFT_NO_SWITCH SchedItem* LfDequeue(int worker);
  SKYLOFT_NO_SWITCH SchedItem* LfStealHalf(int worker);

  // Per-worker approximate queue length, one cache line per worker (same
  // treatment as ShardedCounter lanes) so enqueue accounting on neighbor
  // workers never false-shares.
  struct alignas(kCacheLineSize) HotLine {
    std::atomic<int> len{0};
  };

  int workers_;
  bool lock_free_ = false;

  // ---- shard-mutex driver ----
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<int> shard_of_;  // worker -> shard index

  // ---- lock-free driver ----
  std::vector<std::unique_ptr<LfWorker>> lf_;
  SchedPolicy* lf_policy_ = nullptr;  // name + quantum only; Table 2 unused
  std::unique_ptr<SchedPolicy> lf_owned_;
  // The per-worker lock-free quantum lives in LfWorker::quantum (atomic,
  // reread on every Tick) so SetQuantum takes effect mid-run.

  // Worker state the policies read through EngineView and ExternalTarget
  // reads for placement. approx_len_ tracks per-worker enqueue/dequeue
  // deltas under the shard-mutex driver only (migrations make it
  // approximate); the lock-free driver reads its queues' own state instead
  // and never touches the ledger.
  AtomicBitmap idle_map_;
  std::unique_ptr<HotLine[]> approx_len_;

  MetricGroup metrics_{"host_sched"};
  // All owned by metrics_; one cache-line lane per worker so hot-path
  // accounting never contends on a shared counter word.
  ShardedCounter* steals_ = nullptr;           // items gained via balance/steal
  ShardedCounter* mailbox_drains_ = nullptr;   // non-empty mailbox drains
  ShardedCounter* steal_attempts_ = nullptr;   // Steal() calls (any outcome)
  ShardedCounter* steal_successes_ = nullptr;  // Steal() calls that won an item
  ShardedCounter* cas_retries_ = nullptr;      // mailbox-push CAS retries
  mutable std::atomic<unsigned> rr_shard_{0};
};

// Per-worker view of HostSched: what the runtime's WorkerLoop holds.
class HostSchedCore {
 public:
  void Bind(HostSched* sched, int worker) {
    sched_ = sched;
    worker_ = worker;
  }
  SKYLOFT_NO_SWITCH SchedItem* Dequeue() { return sched_->Dequeue(worker_); }
  SKYLOFT_NO_SWITCH void Enqueue(SchedItem* item, unsigned flags) {
    sched_->Enqueue(item, flags, worker_);
  }
  SKYLOFT_NO_SWITCH void EnqueueNew(SchedItem* item, unsigned flags) {
    sched_->EnqueueNew(item, flags, worker_);
  }
  SKYLOFT_NO_SWITCH SchedItem* Requeue(SchedItem* item, unsigned flags) {
    return sched_->Requeue(item, flags, worker_);
  }
  SKYLOFT_NO_SWITCH SchedItem* Retire(SchedItem* dead) { return sched_->Retire(dead, worker_); }
  SKYLOFT_NO_SWITCH bool Tick(SchedItem* current, DurationNs ran_ns) {
    // skylint:allow(switch-in-noswitch) -- HostSched::Tick is shard-locked; name collides with the sim engines' Tick
    return sched_->Tick(worker_, current, ran_ns);
  }
  SKYLOFT_NO_SWITCH void SetIdle(bool idle) { sched_->SetIdle(worker_, idle); }

 private:
  HostSched* sched_ = nullptr;
  int worker_ = 0;
};

}  // namespace skyloft

#endif  // SRC_RUNTIME_HOST_SCHED_H_
