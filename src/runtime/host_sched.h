// Host-side adapter for the Table 2 scheduling-operations interface.
//
// The sim engines (src/libos) drive a SchedPolicy from a single event loop;
// the host runtime has N real worker pthreads, so the policy must be driven
// concurrently. HostSched wraps a policy in one-or-more locked shards — each
// shard owns one policy instance covering a contiguous range of workers —
// and exposes the per-worker operations the runtime's scheduler loop needs.
// The same policy translation units that run under the simulator (RR, CFS,
// EEVDF, work stealing, ...) run here unchanged; only the driver differs.
//
// Locking model: every policy call happens under the owning shard's mutex,
// and callers on a uthread stack must hold a Runtime::PreemptGuard (a
// preemption signal landing while a shard lock is held would deadlock the
// worker). The runtime's scheduler stack always runs with preemption
// disabled, so WorkerLoop-side calls are safe by construction.
#ifndef SRC_RUNTIME_HOST_SCHED_H_
#define SRC_RUNTIME_HOST_SCHED_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/base/metrics.h"
#include "src/sched/policy.h"

namespace skyloft {

// Which policy the host runtime schedules uthreads with (Table 4 policies
// that make sense without a centralized dispatcher thread).
enum class RuntimePolicy {
  kWorkStealing,  // per-worker FIFO + steal-half; the pre-refactor behavior
  kFifo,          // run-to-completion round-robin placement, no preemption
  kRoundRobin,    // FIFO + slice-based preemption via the signal timer
  kCfs,
  kEevdf,
};

struct HostSchedOptions {
  RuntimePolicy policy = RuntimePolicy::kWorkStealing;
  // Slice/quantum override in microseconds; 0 keeps the policy default
  // (12.5 us RR slice, 5 us work-stealing quantum).
  std::int64_t time_slice_us = 0;
  // Number of policy shards. Workers are split into contiguous ranges, one
  // policy instance per range; balancing (stealing) stays within a shard.
  int shards = 1;
  // Non-owning: schedule with this policy instance instead of constructing
  // one from `policy`. Forces a single shard. The caller keeps the object
  // alive for the lifetime of the Runtime.
  SchedPolicy* custom_policy = nullptr;
};

class HostSched {
 public:
  HostSched(int workers, const HostSchedOptions& options);
  ~HostSched();  // out of line: Shard is an incomplete type here

  // Every operation below executes policy code under a shard mutex and so
  // must never reach a switch primitive (a park with the shard lock held
  // would deadlock the worker) — hence the blanket SKYLOFT_NO_SWITCH.

  // task_enqueue. `worker_hint` is a global worker index (or -1): a valid
  // hint routes to that worker's shard with a shard-local hint, no hint
  // round-robins across shards and lets the policy place the task.
  SKYLOFT_NO_SWITCH void Enqueue(SchedItem* item, unsigned flags, int worker_hint);

  // task_init + task_enqueue fused under the target shard's lock: a new item
  // is initialized by the same policy instance that first queues it, and the
  // spawn path pays one lock round trip instead of two.
  SKYLOFT_NO_SWITCH void EnqueueNew(SchedItem* item, unsigned flags, int worker_hint);

  // task_terminate + task_dequeue fused: retire a finished item and fetch
  // the worker's next task in one lock acquisition (the exit fast path).
  SKYLOFT_NO_SWITCH SchedItem* Retire(SchedItem* dead, int worker);

  // task_dequeue for `worker`; on an empty queue invokes sched_balance and
  // retries once (the paper's idle path). A balance rescue counts as a steal.
  SKYLOFT_NO_SWITCH SchedItem* Dequeue(int worker);

  // Enqueue(item, flags, worker) + Dequeue(worker) fused under one shard
  // lock acquisition — the scheduler's yield-completion fast path.
  SKYLOFT_NO_SWITCH SchedItem* Requeue(SchedItem* item, unsigned flags, int worker);

  // sched_timer_tick for `worker`; true => preempt `current`.
  SKYLOFT_NO_SWITCH bool Tick(int worker, SchedItem* current, DurationNs ran_ns);

  // Placement target for submissions that originate off-runtime (external
  // Unpark, Run()'s main thread): first idle worker, else the worker with
  // the (approximately) shortest queue.
  SKYLOFT_NO_SWITCH int ExternalTarget() const;

  SKYLOFT_NO_SWITCH void SetIdle(int worker, bool idle);

  std::size_t Queued() const;  // across all shards
  std::uint64_t steals() const { return steals_->Value(); }
  const char* PolicyName() const;
  int workers() const { return workers_; }

 private:
  struct Shard;

  Shard* ShardOf(int worker) const;

  int workers_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<int> shard_of_;  // worker -> shard index
  // Worker state the policies read through EngineView and ExternalTarget
  // reads for placement. approx_len_ tracks per-worker enqueue/dequeue
  // deltas; balancing moves are invisible to it, hence "approximate".
  std::unique_ptr<std::atomic<bool>[]> idle_;
  std::unique_ptr<std::atomic<int>[]> approx_len_;
  MetricGroup metrics_{"host_sched"};
  // Owned by metrics_; one cache-line lane per worker so the balance-rescue
  // paths never contend on a shared counter word.
  ShardedCounter* steals_ = nullptr;
  mutable std::atomic<unsigned> rr_shard_{0};
};

// Per-worker view of HostSched: what the runtime's WorkerLoop holds.
class HostSchedCore {
 public:
  void Bind(HostSched* sched, int worker) {
    sched_ = sched;
    worker_ = worker;
  }
  SKYLOFT_NO_SWITCH SchedItem* Dequeue() { return sched_->Dequeue(worker_); }
  SKYLOFT_NO_SWITCH void Enqueue(SchedItem* item, unsigned flags) {
    sched_->Enqueue(item, flags, worker_);
  }
  SKYLOFT_NO_SWITCH void EnqueueNew(SchedItem* item, unsigned flags) {
    sched_->EnqueueNew(item, flags, worker_);
  }
  SKYLOFT_NO_SWITCH SchedItem* Requeue(SchedItem* item, unsigned flags) {
    return sched_->Requeue(item, flags, worker_);
  }
  SKYLOFT_NO_SWITCH SchedItem* Retire(SchedItem* dead) { return sched_->Retire(dead, worker_); }
  SKYLOFT_NO_SWITCH bool Tick(SchedItem* current, DurationNs ran_ns) {
    // skylint:allow(switch-in-noswitch) -- HostSched::Tick is shard-locked; name collides with the sim engines' Tick
    return sched_->Tick(worker_, current, ran_ns);
  }
  SKYLOFT_NO_SWITCH void SetIdle(bool idle) { sched_->SetIdle(worker_, idle); }

 private:
  HostSched* sched_ = nullptr;
  int worker_ = 0;
};

}  // namespace skyloft

#endif  // SRC_RUNTIME_HOST_SCHED_H_
