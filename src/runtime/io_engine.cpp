#include "src/runtime/io_engine.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>

#include "src/base/logging.h"
#include "src/runtime/uthread.h"

#ifdef SKYLOFT_IO_URING
#include <linux/io_uring.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#endif

namespace skyloft {

namespace {

// Low bits of a CQE user_data distinguish what completed for a handle
// (IoHandle is cache-line aligned, so the bits are free).
constexpr std::uintptr_t kTagMask = 0x7;
constexpr std::uintptr_t kTagMainPoll = 0;     // multishot POLLIN|HUP|ERR
constexpr std::uintptr_t kTagRemove = 1;       // POLL_REMOVE of the main poll
constexpr std::uintptr_t kTagWritePoll = 2;    // oneshot POLLOUT
constexpr std::uintptr_t kTagRemoveWrite = 3;  // POLL_REMOVE of the write poll

void IncLane(ShardedCounter* c, int lane, std::uint64_t n = 1) {
  if (c != nullptr) {
    c->Inc(lane, n);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// io_uring backend plumbing (raw syscalls; liburing is not a dependency).
// Compiled only under SKYLOFT_IO_URING; every entry point has an epoll
// fallback so a kernel that refuses io_uring_setup (seccomp'd containers,
// CONFIG_IO_URING=n) degrades cleanly at runtime.
// ---------------------------------------------------------------------------

#ifdef SKYLOFT_IO_URING

struct IoEngine::UringState {
  io_uring_params params{};
  // SQ ring.
  void* sq_ring = nullptr;
  std::size_t sq_ring_len = 0;
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  io_uring_sqe* sqes = nullptr;
  std::size_t sqes_len = 0;
  // CQ ring (separate mmap unless IORING_FEAT_SINGLE_MMAP).
  void* cq_ring = nullptr;
  std::size_t cq_ring_len = 0;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;
  // SQE production is multi-producer (RequestWritable and Deregister run on
  // whatever worker the handler uthread was stolen to); short spinlock.
  std::atomic_flag sqe_spin = ATOMIC_FLAG_INIT;
  unsigned to_submit = 0;
};

namespace {

int SysIoUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags,
                                  nullptr, 0));
}

unsigned PollBitsFromRevents(unsigned revents) {
  unsigned bits = 0;
  if (revents & (POLLIN | POLLRDHUP)) {
    bits |= kIoReadable;
  }
  if (revents & POLLOUT) {
    bits |= kIoWritable;
  }
  if (revents & POLLHUP) {
    bits |= kIoHup;
  }
  if (revents & (POLLERR | POLLNVAL)) {
    bits |= kIoError;
  }
  return bits;
}

}  // namespace

bool IoEngine::UringInit(int entries) {
  auto state = std::make_unique<UringState>();
  const int fd = SysIoUringSetup(static_cast<unsigned>(entries), &state->params);
  if (fd < 0) {
    return false;
  }
  UringState* s = state.get();
  s->sq_ring_len = s->params.sq_off.array + s->params.sq_entries * sizeof(unsigned);
  s->cq_ring_len = s->params.cq_off.cqes + s->params.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (s->params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) {
    s->sq_ring_len = s->cq_ring_len = std::max(s->sq_ring_len, s->cq_ring_len);
  }
  s->sq_ring = mmap(nullptr, s->sq_ring_len, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                    fd, IORING_OFF_SQ_RING);
  if (s->sq_ring == MAP_FAILED) {
    close(fd);
    return false;
  }
  s->cq_ring = single_mmap
                   ? s->sq_ring
                   : mmap(nullptr, s->cq_ring_len, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
  if (s->cq_ring == MAP_FAILED) {
    munmap(s->sq_ring, s->sq_ring_len);
    close(fd);
    return false;
  }
  s->sqes_len = s->params.sq_entries * sizeof(io_uring_sqe);
  s->sqes = static_cast<io_uring_sqe*>(mmap(nullptr, s->sqes_len, PROT_READ | PROT_WRITE,
                                            MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES));
  if (s->sqes == MAP_FAILED) {
    if (!single_mmap) {
      munmap(s->cq_ring, s->cq_ring_len);
    }
    munmap(s->sq_ring, s->sq_ring_len);
    close(fd);
    return false;
  }
  auto* sq = static_cast<unsigned char*>(s->sq_ring);
  s->sq_head = reinterpret_cast<unsigned*>(sq + s->params.sq_off.head);
  s->sq_tail = reinterpret_cast<unsigned*>(sq + s->params.sq_off.tail);
  s->sq_mask = *reinterpret_cast<unsigned*>(sq + s->params.sq_off.ring_mask);
  s->sq_array = reinterpret_cast<unsigned*>(sq + s->params.sq_off.array);
  auto* cq = static_cast<unsigned char*>(s->cq_ring);
  s->cq_head = reinterpret_cast<unsigned*>(cq + s->params.cq_off.head);
  s->cq_tail = reinterpret_cast<unsigned*>(cq + s->params.cq_off.tail);
  s->cq_mask = *reinterpret_cast<unsigned*>(cq + s->params.cq_off.ring_mask);
  s->cqes = reinterpret_cast<io_uring_cqe*>(cq + s->params.cq_off.cqes);

  uring_fd_ = fd;
  uring_ = state.release();
  return true;
}

void IoEngine::UringShutdown() {
  if (uring_ == nullptr) {
    return;
  }
  munmap(uring_->sqes, uring_->sqes_len);
  const bool single_mmap = (uring_->params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (!single_mmap) {
    munmap(uring_->cq_ring, uring_->cq_ring_len);
  }
  munmap(uring_->sq_ring, uring_->sq_ring_len);
  close(uring_fd_);
  uring_fd_ = -1;
  delete uring_;
  uring_ = nullptr;
}

void IoEngine::SqLock(UringState* s) {
  SpinBackoff backoff;
  while (s->sqe_spin.test_and_set(std::memory_order_acquire)) {
    backoff.Pause();
  }
}

void IoEngine::SqUnlock(UringState* s) { s->sqe_spin.clear(std::memory_order_release); }

bool IoEngine::UringArmPoll(IoHandle* handle, unsigned poll_mask, std::uintptr_t tag) {
  UringState* s = uring_;
  SqLock(s);
  const unsigned head = __atomic_load_n(s->sq_head, __ATOMIC_ACQUIRE);
  unsigned tail = *s->sq_tail;
  if (tail - head >= s->params.sq_entries) {
    // SQ full: flush what is queued and retry once; a second failure means
    // the ring is badly undersized — report it to the caller.
    SysIoUringEnter(uring_fd_, s->to_submit, 0, 0);
    s->to_submit = 0;
    if (*s->sq_tail - __atomic_load_n(s->sq_head, __ATOMIC_ACQUIRE) >= s->params.sq_entries) {
      SqUnlock(s);
      return false;
    }
    tail = *s->sq_tail;
  }
  const unsigned index = tail & s->sq_mask;
  io_uring_sqe* sqe = &s->sqes[index];
  std::memset(sqe, 0, sizeof(*sqe));
  if (tag == kTagRemove || tag == kTagRemoveWrite) {
    sqe->opcode = IORING_OP_POLL_REMOVE;
    // addr identifies the poll to cancel by its submission user_data.
    sqe->addr = reinterpret_cast<std::uintptr_t>(handle) |
                (tag == kTagRemove ? kTagMainPoll : kTagWritePoll);
  } else {
    sqe->opcode = IORING_OP_POLL_ADD;
    sqe->fd = handle->fd;
    sqe->poll32_events = poll_mask;
    if (tag == kTagMainPoll) {
      sqe->len = IORING_POLL_ADD_MULTI;
    }
  }
  sqe->user_data = reinterpret_cast<std::uintptr_t>(handle) | tag;
  s->sq_array[index] = index;
  __atomic_store_n(s->sq_tail, tail + 1, __ATOMIC_RELEASE);
  s->to_submit++;
  SqUnlock(s);
  return true;
}

void IoEngine::UringRemovePoll(IoHandle* handle, std::uintptr_t tag) {
  // Must not fail: a dropped remove means its CQE never arrives and the
  // handle is never freed. A full SQ drains via the enter() flush inside
  // UringArmPoll, so the retry terminates.
  SpinBackoff backoff;
  while (!UringArmPoll(handle, 0, tag)) {
    backoff.Pause();
  }
}

// Retires one expected CQE (or Deregister's queueing reference). Whoever
// drops the count to zero after the handle was closed owns the free; until
// then some poll or remove completion may still reference the handle. Must
// be the caller's LAST touch of the handle.
void IoEngine::UringFinishCqe(IoHandle* handle) {
  if (handle->pending_cqes.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
      handle->closed.load(std::memory_order_acquire)) {
    UntrackHandle(handle);
    delete handle;
  }
}

void IoEngine::UringSubmit() {
  UringState* s = uring_;
  SqLock(s);
  const unsigned n = s->to_submit;
  s->to_submit = 0;
  SqUnlock(s);
  if (n > 0) {
    SysIoUringEnter(uring_fd_, n, 0, 0);
  }
}

int IoEngine::UringPoll() {
  UringSubmit();
  UringState* s = uring_;
  int dispatched = 0;
  unsigned head = __atomic_load_n(s->cq_head, __ATOMIC_ACQUIRE);
  const unsigned tail = __atomic_load_n(s->cq_tail, __ATOMIC_ACQUIRE);
  const int budget = options_.max_events;
  while (head != tail && dispatched < budget) {
    const io_uring_cqe* cqe = &s->cqes[head & s->cq_mask];
    auto* handle = reinterpret_cast<IoHandle*>(cqe->user_data & ~kTagMask);
    const std::uintptr_t tag = cqe->user_data & kTagMask;
    if (tag == kTagRemove || tag == kTagRemoveWrite) {
      // One CQE per POLL_REMOVE submitted by Deregister.
      UringFinishCqe(handle);
    } else if (tag == kTagWritePoll) {
      // The oneshot POLLOUT is no longer in flight; the next WaitForWritable
      // may arm a fresh one.
      handle->write_poll_armed.store(false, std::memory_order_release);
      if (!handle->closed.load(std::memory_order_acquire)) {
        DeliverReady(handle, cqe->res < 0
                                 ? kIoError
                                 : PollBitsFromRevents(static_cast<unsigned>(cqe->res)));
        dispatched++;
      }
      UringFinishCqe(handle);
    } else {  // kTagMainPoll
      // A multishot emits many CQEs; only one without F_MORE ends the series
      // (spontaneous termination, an error, or cancellation by Deregister's
      // POLL_REMOVE — the kernel may post that -ECANCELED CQE *after* the
      // remove's own CQE, hence the counting).
      bool terminal = (cqe->flags & IORING_CQE_F_MORE) == 0;
      if (handle->closed.load(std::memory_order_acquire)) {
        // Stale completion for a deregistered handle; deliver nothing.
      } else if (cqe->res < 0) {
        handle->main_poll_armed.store(false, std::memory_order_release);
        DeliverReady(handle, kIoError);
        dispatched++;
      } else {
        DeliverReady(handle, PollBitsFromRevents(static_cast<unsigned>(cqe->res)));
        dispatched++;
        if (terminal) {
          if (UringArmPoll(handle, POLLIN | POLLRDHUP, kTagMainPoll)) {
            terminal = false;  // re-armed: the poll's expected-CQE count lives on
          } else {
            // Lost read monitoring: latch an error so the waiter wakes and
            // tears the connection down instead of parking forever.
            handle->main_poll_armed.store(false, std::memory_order_release);
            DeliverReady(handle, kIoError);
          }
        }
      }
      if (terminal) {
        UringFinishCqe(handle);
      }
    }
    head++;
  }
  __atomic_store_n(s->cq_head, head, __ATOMIC_RELEASE);
  if (dispatched > 0) {
    UringSubmit();  // flush any re-arms queued while reaping
  }
  return dispatched;
}

#else  // !SKYLOFT_IO_URING

struct IoEngine::UringState {};
bool IoEngine::UringInit(int /*entries*/) { return false; }
void IoEngine::UringShutdown() {}
int IoEngine::UringPoll() { return 0; }
bool IoEngine::UringArmPoll(IoHandle*, unsigned, std::uintptr_t) { return false; }
void IoEngine::UringRemovePoll(IoHandle*, std::uintptr_t) {}
void IoEngine::UringFinishCqe(IoHandle*) {}
void IoEngine::UringSubmit() {}

#endif  // SKYLOFT_IO_URING

// ---------------------------------------------------------------------------
// Backend-neutral engine.
// ---------------------------------------------------------------------------

IoEngine::IoEngine(int worker, const IoEngineOptions& options, const IoEngineStats& stats)
    : worker_(worker), options_(options), stats_(stats) {
  SKYLOFT_CHECK(options_.max_events > 0);
  if (options_.backend != IoEngineOptions::Backend::kEpoll) {
    if (!UringInit(options_.uring_entries) &&
        options_.backend == IoEngineOptions::Backend::kIoUring) {
      IncLane(stats_.uring_fallbacks, worker_);
    }
  }
  if (uring_fd_ < 0) {
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    SKYLOFT_CHECK(epoll_fd_ >= 0) << "epoll_create1 failed: " << std::strerror(errno);
    event_buf_.resize(static_cast<std::size_t>(options_.max_events) * sizeof(epoll_event));
  }
}

IoEngine::~IoEngine() {
  // Drain the retire pipeline, then close out whatever the application left
  // registered (a server torn down mid-connection).
  FreeRetired();
  FreeRetired();
  for (IoHandle* handle : handles_) {
    if (!handle->closed.load(std::memory_order_relaxed)) {
      close(handle->fd);
    }
    delete handle;
  }
  handles_.clear();
  UringShutdown();
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
  }
}

void IoEngine::LockHandles() {
  SpinBackoff backoff;
  while (handles_spin_.test_and_set(std::memory_order_acquire)) {
    backoff.Pause();
  }
}

void IoEngine::UnlockHandles() { handles_spin_.clear(std::memory_order_release); }

void IoEngine::TrackHandle(IoHandle* handle) {
  LockHandles();
  handles_.push_back(handle);
  UnlockHandles();
}

void IoEngine::UntrackHandle(IoHandle* handle) {
  LockHandles();
  for (std::size_t i = 0; i < handles_.size(); i++) {
    if (handles_[i] == handle) {
      handles_[i] = handles_.back();
      handles_.pop_back();
      break;
    }
  }
  UnlockHandles();
}

IoHandle* IoEngine::Register(int fd) {
  const int fl = fcntl(fd, F_GETFL, 0);
  if (fl < 0 || fcntl(fd, F_SETFL, fl | O_NONBLOCK) < 0) {
    return nullptr;
  }
  auto* handle = new IoHandle;
  handle->fd = fd;
  handle->engine = this;
  if (uring_fd_ >= 0) {
#ifdef SKYLOFT_IO_URING
    // Pre-publication: count the main poll's expected terminal CQE before
    // the kernel can post it.
    handle->main_poll_armed.store(true, std::memory_order_relaxed);
    handle->pending_cqes.store(1, std::memory_order_relaxed);
    if (!UringArmPoll(handle, POLLIN | POLLRDHUP, kTagMainPoll)) {
      delete handle;
      return nullptr;
    }
    UringSubmit();
#endif
  } else {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.ptr = handle;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      delete handle;
      return nullptr;
    }
  }
  TrackHandle(handle);
  IncLane(stats_.registered, worker_);
  return handle;
}

void IoEngine::Deregister(IoHandle* handle) {
  SKYLOFT_CHECK(handle != nullptr && handle->engine == this);
  if (uring_fd_ >= 0) {
    // Take a queueing reference BEFORE publishing closed: once closed is
    // visible, a concurrent reaper dropping pending_cqes to zero frees the
    // handle, and this function is still using it below.
    handle->pending_cqes.fetch_add(1, std::memory_order_acq_rel);
    const bool was_closed = handle->closed.exchange(true, std::memory_order_acq_rel);
    SKYLOFT_CHECK(!was_closed) << "double Deregister of fd " << handle->fd;
    // Cancel every outstanding poll — the multishot main poll and, if armed,
    // the oneshot write poll. A pending poll holds a file reference, so
    // closing the fd alone would not complete it and its CQE could fire
    // after the handle was freed. Each remove yields its own CQE too; count
    // both before queueing. The fd can be closed right away — POLL_REMOVE
    // targets by user_data, not fd.
    if (handle->main_poll_armed.load(std::memory_order_acquire)) {
      handle->pending_cqes.fetch_add(1, std::memory_order_acq_rel);
      UringRemovePoll(handle, kTagRemove);
    }
    if (handle->write_poll_armed.load(std::memory_order_acquire)) {
      handle->pending_cqes.fetch_add(1, std::memory_order_acq_rel);
      UringRemovePoll(handle, kTagRemoveWrite);
    }
    UringSubmit();
    close(handle->fd);
    IncLane(stats_.retired, worker_);
    UringFinishCqe(handle);  // drop the queueing reference; may free
    return;
  }
  const bool was_closed = handle->closed.exchange(true, std::memory_order_acq_rel);
  SKYLOFT_CHECK(!was_closed) << "double Deregister of fd " << handle->fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, handle->fd, nullptr);
  close(handle->fd);
  // Two-phase retire (list -> graveyard -> free) so an event batch fetched
  // by a concurrent epoll_wait on the home worker can never outlive the
  // handle it points at.
  IoHandle* head = retired_head_.load(std::memory_order_relaxed);
  do {
    handle->retire_next = head;
  } while (!retired_head_.compare_exchange_weak(head, handle, std::memory_order_release,
                                                std::memory_order_relaxed));
  IncLane(stats_.retired, worker_);
}

void IoEngine::FreeRetired() {
  for (IoHandle* handle : retire_graveyard_) {
    UntrackHandle(handle);
    delete handle;
  }
  retire_graveyard_.clear();
  IoHandle* head = retired_head_.exchange(nullptr, std::memory_order_acquire);
  while (head != nullptr) {
    IoHandle* next = head->retire_next;
    retire_graveyard_.push_back(head);
    head = next;
  }
}

void IoEngine::DeliverReady(IoHandle* handle, unsigned bits) {
  if (bits == 0 || handle->closed.load(std::memory_order_acquire)) {
    return;
  }
  handle->ready.fetch_or(bits, std::memory_order_acq_rel);
  if (bits & (kIoReadable | kIoHup | kIoError)) {
    UThread* waiter = handle->reader.exchange(nullptr, std::memory_order_acq_rel);
    if (waiter != nullptr) {
      Runtime::Unpark(waiter);
      IncLane(stats_.wakeups, worker_);
    }
  }
  if (bits & (kIoWritable | kIoHup | kIoError)) {
    UThread* waiter = handle->writer.exchange(nullptr, std::memory_order_acq_rel);
    if (waiter != nullptr) {
      Runtime::Unpark(waiter);
      IncLane(stats_.wakeups, worker_);
    }
  }
}

int IoEngine::EpollPoll() {
  FreeRetired();
  auto* events = reinterpret_cast<epoll_event*>(event_buf_.data());
  // This epoll_wait only drains already-pending events: the scheduler loop
  // calls it between uthread switches precisely because it cannot block.
  // skylint:allow(blocking-call-on-worker) -- timeout 0 never sleeps
  const int n = epoll_wait(epoll_fd_, events, options_.max_events, 0);
  if (n <= 0) {
    return 0;
  }
  for (int i = 0; i < n; i++) {
    unsigned bits = 0;
    const unsigned ev = events[i].events;
    if (ev & (EPOLLIN | EPOLLRDHUP)) {
      bits |= kIoReadable;
    }
    if (ev & EPOLLOUT) {
      bits |= kIoWritable;
    }
    if (ev & EPOLLHUP) {
      bits |= kIoHup;
    }
    if (ev & EPOLLERR) {
      bits |= kIoError;
    }
    DeliverReady(static_cast<IoHandle*>(events[i].data.ptr), bits);
  }
  return n;
}

int IoEngine::Poll() {
  const int n = uring_fd_ >= 0 ? UringPoll() : EpollPoll();
  if (n > 0) {
    IncLane(stats_.polls, worker_);
    IncLane(stats_.events, worker_, static_cast<std::uint64_t>(n));
  }
  return n;
}

void IoEngine::RequestWritable(IoHandle* handle) {
  if (uring_fd_ >= 0) {
#ifdef SKYLOFT_IO_URING
    // At most one oneshot POLLOUT in flight per handle, so Deregister knows
    // exactly which polls remain to cancel; an unreaped previous arm still
    // delivers the wakeup this caller is about to wait for.
    if (handle->write_poll_armed.exchange(true, std::memory_order_acq_rel)) {
      return;
    }
    handle->pending_cqes.fetch_add(1, std::memory_order_acq_rel);
    if (UringArmPoll(handle, POLLOUT, kTagWritePoll)) {
      UringSubmit();
    } else {
      handle->pending_cqes.fetch_sub(1, std::memory_order_acq_rel);
      handle->write_poll_armed.store(false, std::memory_order_release);
      // No write monitoring means the waiter would park forever; latch an
      // error so it wakes and fails the write instead.
      DeliverReady(handle, kIoError);
    }
#endif
  }
  // epoll: EPOLLOUT|EPOLLET is permanently armed; the edge fires when the
  // send buffer drains.
}

void IoEngine::RelatchReadable(IoHandle* handle) {
  handle->ready.fetch_or(kIoReadable, std::memory_order_acq_rel);
  UThread* waiter = handle->reader.exchange(nullptr, std::memory_order_acq_rel);
  if (waiter != nullptr) {
    Runtime::Unpark(waiter);
  }
}

void IoEngine::Interrupt(IoHandle* handle) {
  handle->ready.fetch_or(kIoError, std::memory_order_acq_rel);
  UThread* reader = handle->reader.exchange(nullptr, std::memory_order_acq_rel);
  if (reader != nullptr) {
    Runtime::Unpark(reader);
  }
  UThread* writer = handle->writer.exchange(nullptr, std::memory_order_acq_rel);
  if (writer != nullptr) {
    Runtime::Unpark(writer);
  }
}

}  // namespace skyloft
