#include "src/runtime/io_engine.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <memory>

#include "src/base/logging.h"
#include "src/runtime/uthread.h"

#ifdef SKYLOFT_IO_URING
#include <linux/io_uring.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/syscall.h>

#include <deque>
#include <string>

// The completion data path needs the multishot-recv generation of the uapi
// header (kernel >= 6.0: IORING_RECV_MULTISHOT, provided buffer rings,
// io_uring_recvmsg_out all landed together). Older headers compile the
// readiness-only backend; newer headers still fall back at RUNTIME when the
// kernel's feature probe comes back short.
#if defined(IORING_RECV_MULTISHOT) && defined(IORING_ACCEPT_MULTISHOT)
#define SKYLOFT_URING_COMPLETION 1
#endif
#endif  // SKYLOFT_IO_URING

namespace skyloft {

namespace {

// Low bits of a CQE user_data distinguish what completed for a handle
// (IoHandle is cache-line aligned and DgramSendOp heap-allocated, so the
// bits are free).
constexpr std::uintptr_t kTagMask = 0x7;
constexpr std::uintptr_t kTagMainPoll = 0;     // multishot POLLIN|HUP|ERR
constexpr std::uintptr_t kTagRemove = 1;       // cancel CQE (POLL_REMOVE / ASYNC_CANCEL)
constexpr std::uintptr_t kTagWritePoll = 2;    // oneshot POLLOUT
constexpr std::uintptr_t kTagRemoveWrite = 3;  // POLL_REMOVE of the write poll
constexpr std::uintptr_t kTagRecv = 4;         // multishot RECV/RECVMSG segment
constexpr std::uintptr_t kTagAccept = 5;       // multishot ACCEPT
constexpr std::uintptr_t kTagSend = 6;         // stream async send (SEND/SENDMSG)
constexpr std::uintptr_t kTagDgram = 7;        // datagram async SENDMSG (op ptr)

// Iovec capacity of a stream handle's in-flight send (send_batch clamps to
// this).
constexpr int kMaxSendIovs = 16;

// Every engine registers its provided-buffer ring under one group id; rings
// are per-engine (per ring fd), so the ids never collide across engines.
constexpr std::uint16_t kBufGroup = 0;

void IncLane(ShardedCounter* c, int lane, std::uint64_t n = 1) {
  if (c != nullptr) {
    c->Inc(lane, n);
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// io_uring backend plumbing (raw syscalls; liburing is not a dependency).
// Compiled only under SKYLOFT_IO_URING; every entry point has an epoll
// fallback so a kernel that refuses io_uring_setup (seccomp'd containers,
// CONFIG_IO_URING=n) degrades cleanly at runtime.
// ---------------------------------------------------------------------------

#ifdef SKYLOFT_IO_URING

struct IoEngine::UringState {
  io_uring_params params{};
  // SQ ring.
  void* sq_ring = nullptr;
  std::size_t sq_ring_len = 0;
  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_array = nullptr;
  unsigned* sq_flags = nullptr;  // NEED_WAKEUP (SQPOLL) / CQ_OVERFLOW
  io_uring_sqe* sqes = nullptr;
  std::size_t sqes_len = 0;
  bool sqpoll = false;
  // CQ ring (separate mmap unless IORING_FEAT_SINGLE_MMAP).
  void* cq_ring = nullptr;
  std::size_t cq_ring_len = 0;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;
  // SQE production is multi-producer (RequestWritable, Deregister and the
  // completion path's SendEnqueue run on whatever worker the handler uthread
  // was stolen to); short spinlock.
  std::atomic_flag sqe_spin = ATOMIC_FLAG_INIT;
  // Mutated under sqe_spin; atomic so UringPoll's flush heuristic can read it
  // without taking the lock (a stale value just defers one round).
  std::atomic<unsigned> to_submit{0};

#ifdef SKYLOFT_URING_COMPLETION
  // Provided buffer ring (IORING_REGISTER_PBUF_RING) + its backing arena.
  // Producer side (recycling consumed buffers) is multi-worker: a stolen
  // handler returns buffers from wherever it runs; buf_spin guards the
  // shadow tail. NOTE: slots are addressed via `bufs` (the ring base), NOT
  // io_uring_buf_ring::bufs — that flex-array member sits behind a
  // __DECLARE_FLEX_ARRAY empty struct whose size is 0 in C but >= 1 in C++,
  // shifting the member to offset 8 and silently corrupting every
  // descriptor the kernel reads from offset 0.
  io_uring_buf_ring* buf_ring = nullptr;
  io_uring_buf* bufs = nullptr;  // == ring base; slot i at bufs[i]
  std::size_t buf_ring_len = 0;
  unsigned buf_entries = 0;
  unsigned buf_mask = 0;
  std::unique_ptr<char[]> buf_arena;
  std::size_t buf_size = 0;
  std::atomic_flag buf_spin = ATOMIC_FLAG_INIT;
  std::uint16_t buf_tail = 0;  // producer shadow of buf_ring->tail
  // Recycle epoch: bumped on every returned buffer so the home engine knows
  // when re-arming an ENOBUFS-stalled recv can make progress.
  std::atomic<std::uint64_t> buf_recycled{0};
  // Registered-file table (IORING_REGISTER_FILES, sparse): free slot indices,
  // guarded by the engine's handles lock.
  bool fixed_files = false;
  std::vector<int> free_slots;
#endif
};

// Heap-owned async datagram reply: the SENDMSG op's msghdr, destination and
// payload must all outlive submission, so they travel with the op and are
// freed when its CQE arrives (tag kTagDgram carries the op pointer).
struct IoEngine::DgramSendOp {
  IoHandle* handle = nullptr;
  sockaddr_in to{};
  std::string payload;
  iovec iov{};
  msghdr msg{};
};

namespace {

int SysIoUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags) {
  return static_cast<int>(syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags,
                                  nullptr, 0));
}

int SysIoUringRegister(int fd, unsigned opcode, void* arg, unsigned nr_args) {
  return static_cast<int>(syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

// Deferred-submission thresholds (see the flush policy at the end of
// UringPoll): flush once this many SQEs are queued, or after this many poll
// rounds with anything queued at all, whichever comes first.
constexpr unsigned kSubmitEagerBatch = 32;
constexpr int kSubmitRoundLimit = 8;

unsigned RoundUpPow2(unsigned v) {
  unsigned p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

unsigned PollBitsFromRevents(unsigned revents) {
  unsigned bits = 0;
  if (revents & (POLLIN | POLLRDHUP)) {
    bits |= kIoReadable;
  }
  if (revents & POLLOUT) {
    bits |= kIoWritable;
  }
  if (revents & POLLHUP) {
    bits |= kIoHup;
  }
  if (revents & (POLLERR | POLLNVAL)) {
    bits |= kIoError;
  }
  return bits;
}

}  // namespace

bool IoEngine::UringInit(int entries) {
  auto state = std::make_unique<UringState>();
  // Multishot recv can post many CQEs per submitted SQE, so ask for a CQ
  // several times deeper than the SQ; degrade gracefully for kernels that
  // reject CQSIZE or (unprivileged, pre-5.11) SQPOLL.
  auto try_setup = [&](bool sqpoll, bool cqsize) {
    std::memset(&state->params, 0, sizeof(state->params));
    if (cqsize) {
      state->params.flags |= IORING_SETUP_CQSIZE;
      state->params.cq_entries = RoundUpPow2(std::max(4096u, 8u * static_cast<unsigned>(entries)));
    }
    if (sqpoll) {
      state->params.flags |= IORING_SETUP_SQPOLL;
      state->params.sq_thread_idle = 100;  // ms before the SQ thread naps
    }
    return SysIoUringSetup(static_cast<unsigned>(entries), &state->params);
  };
  int fd = try_setup(options_.sqpoll, true);
  if (fd < 0 && options_.sqpoll) {
    fd = try_setup(false, true);
  }
  if (fd < 0) {
    fd = try_setup(false, false);
  }
  if (fd < 0) {
    return false;
  }
  UringState* s = state.get();
  s->sqpoll = (s->params.flags & IORING_SETUP_SQPOLL) != 0;
  s->sq_ring_len = s->params.sq_off.array + s->params.sq_entries * sizeof(unsigned);
  s->cq_ring_len = s->params.cq_off.cqes + s->params.cq_entries * sizeof(io_uring_cqe);
  const bool single_mmap = (s->params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (single_mmap) {
    s->sq_ring_len = s->cq_ring_len = std::max(s->sq_ring_len, s->cq_ring_len);
  }
  s->sq_ring = mmap(nullptr, s->sq_ring_len, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                    fd, IORING_OFF_SQ_RING);
  if (s->sq_ring == MAP_FAILED) {
    close(fd);
    return false;
  }
  s->cq_ring = single_mmap
                   ? s->sq_ring
                   : mmap(nullptr, s->cq_ring_len, PROT_READ | PROT_WRITE,
                          MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
  if (s->cq_ring == MAP_FAILED) {
    munmap(s->sq_ring, s->sq_ring_len);
    close(fd);
    return false;
  }
  s->sqes_len = s->params.sq_entries * sizeof(io_uring_sqe);
  s->sqes = static_cast<io_uring_sqe*>(mmap(nullptr, s->sqes_len, PROT_READ | PROT_WRITE,
                                            MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES));
  if (s->sqes == MAP_FAILED) {
    if (!single_mmap) {
      munmap(s->cq_ring, s->cq_ring_len);
    }
    munmap(s->sq_ring, s->sq_ring_len);
    close(fd);
    return false;
  }
  auto* sq = static_cast<unsigned char*>(s->sq_ring);
  s->sq_head = reinterpret_cast<unsigned*>(sq + s->params.sq_off.head);
  s->sq_tail = reinterpret_cast<unsigned*>(sq + s->params.sq_off.tail);
  s->sq_mask = *reinterpret_cast<unsigned*>(sq + s->params.sq_off.ring_mask);
  s->sq_array = reinterpret_cast<unsigned*>(sq + s->params.sq_off.array);
  s->sq_flags = reinterpret_cast<unsigned*>(sq + s->params.sq_off.flags);
  auto* cq = static_cast<unsigned char*>(s->cq_ring);
  s->cq_head = reinterpret_cast<unsigned*>(cq + s->params.cq_off.head);
  s->cq_tail = reinterpret_cast<unsigned*>(cq + s->params.cq_off.tail);
  s->cq_mask = *reinterpret_cast<unsigned*>(cq + s->params.cq_off.ring_mask);
  s->cqes = reinterpret_cast<io_uring_cqe*>(cq + s->params.cq_off.cqes);

  uring_fd_ = fd;
  uring_ = state.release();
  completion_ = UringSetupCompletion();
  return true;
}

void IoEngine::UringShutdown() {
  if (uring_ == nullptr) {
    return;
  }
  UringTeardownCompletion();
  munmap(uring_->sqes, uring_->sqes_len);
  const bool single_mmap = (uring_->params.features & IORING_FEAT_SINGLE_MMAP) != 0;
  if (!single_mmap) {
    munmap(uring_->cq_ring, uring_->cq_ring_len);
  }
  munmap(uring_->sq_ring, uring_->sq_ring_len);
  close(uring_fd_);
  uring_fd_ = -1;
  delete uring_;
  uring_ = nullptr;
}

void IoEngine::SqLock(UringState* s) {
  SpinBackoff backoff;
  while (s->sqe_spin.test_and_set(std::memory_order_acquire)) {
    backoff.Pause();
  }
}

void IoEngine::SqUnlock(UringState* s) { s->sqe_spin.clear(std::memory_order_release); }

void* IoEngine::SqePrepareLocked() {
  UringState* s = uring_;
  const unsigned head = __atomic_load_n(s->sq_head, __ATOMIC_ACQUIRE);
  const unsigned tail = *s->sq_tail;
  if (tail - head >= s->params.sq_entries) {
    // SQ full: flush what is queued inline and retry once; a second failure
    // means the ring is badly undersized — report it to the caller.
    SysIoUringEnter(uring_fd_, s->to_submit.load(std::memory_order_relaxed), 0,
                    s->sqpoll ? IORING_ENTER_SQ_WAKEUP : 0);
    IncLane(stats_.sys_enter, worker_);
    s->to_submit.store(0, std::memory_order_relaxed);
    if (*s->sq_tail - __atomic_load_n(s->sq_head, __ATOMIC_ACQUIRE) >= s->params.sq_entries) {
      return nullptr;
    }
  }
  io_uring_sqe* sqe = &s->sqes[*s->sq_tail & s->sq_mask];
  std::memset(sqe, 0, sizeof(*sqe));
  return sqe;
}

void IoEngine::SqeCommitLocked() {
  UringState* s = uring_;
  const unsigned tail = *s->sq_tail;
  const unsigned index = tail & s->sq_mask;
  s->sq_array[index] = index;
  __atomic_store_n(s->sq_tail, tail + 1, __ATOMIC_RELEASE);
  s->to_submit.fetch_add(1, std::memory_order_relaxed);
}

bool IoEngine::UringArmPoll(IoHandle* handle, unsigned poll_mask, std::uintptr_t tag) {
  // Single unlock point (no early unlock-and-return): skylint's lock walk is
  // lexical, so an SqUnlock inside a return branch would mark the commit
  // below as unlocked. Same shape in every SQE-arming function here.
  UringState* s = uring_;
  SqLock(s);
  auto* sqe = static_cast<io_uring_sqe*>(SqePrepareLocked());
  if (sqe != nullptr) {
    if (tag == kTagRemove || tag == kTagRemoveWrite) {
      sqe->opcode = IORING_OP_POLL_REMOVE;
      // addr identifies the poll to cancel by its submission user_data.
      sqe->addr = reinterpret_cast<std::uintptr_t>(handle) |
                  (tag == kTagRemove ? kTagMainPoll : kTagWritePoll);
    } else {
      sqe->opcode = IORING_OP_POLL_ADD;
      sqe->fd = handle->fd;
      sqe->poll32_events = poll_mask;
      if (tag == kTagMainPoll) {
        sqe->len = IORING_POLL_ADD_MULTI;
      }
    }
    sqe->user_data = reinterpret_cast<std::uintptr_t>(handle) | tag;
    SqeCommitLocked();
  }
  SqUnlock(s);
  return sqe != nullptr;
}

void IoEngine::UringRemovePoll(IoHandle* handle, std::uintptr_t tag) {
  // Must not fail: a dropped remove means its CQE never arrives and the
  // handle is never freed. A full SQ drains via the enter() flush inside
  // SqePrepareLocked, so the retry terminates.
  SpinBackoff backoff;
  while (!UringArmPoll(handle, 0, tag)) {
    backoff.Pause();
  }
}

// Retires one expected CQE (or Deregister's queueing reference). Whoever
// drops the count to zero after the handle was closed owns the free; until
// then some op or cancel completion may still reference the handle. Must
// be the caller's LAST touch of the handle.
void IoEngine::UringFinishCqe(IoHandle* handle) {
  if (handle->pending_cqes.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
      handle->closed.load(std::memory_order_acquire)) {
    FreeCompletionResources(handle);
    UntrackHandle(handle);
    delete handle;
  }
}

void IoEngine::UringSubmit() {
  UringState* s = uring_;
  SqLock(s);
  const unsigned n = s->to_submit.load(std::memory_order_relaxed);
  s->to_submit.store(0, std::memory_order_relaxed);
  bool need_enter = n > 0;
  unsigned flags = 0;
  if (s->sqpoll) {
    // The kernel SQ thread consumes entries on its own; enter only to wake
    // it from an idle nap — the zero-syscall steady state.
    flags = IORING_ENTER_SQ_WAKEUP;
    need_enter = need_enter &&
                 (__atomic_load_n(s->sq_flags, __ATOMIC_ACQUIRE) & IORING_SQ_NEED_WAKEUP) != 0;
  }
  SqUnlock(s);
  if (need_enter) {
    SysIoUringEnter(uring_fd_, n, 0, flags);
    IncLane(stats_.sys_enter, worker_);
  }
}

int IoEngine::UringPoll() {
  UringState* s = uring_;
#ifdef SKYLOFT_URING_COMPLETION
  if (completion_) {
    RearmStalled();
  }
#endif
  int dispatched = 0;
  unsigned head = __atomic_load_n(s->cq_head, __ATOMIC_ACQUIRE);
  const unsigned tail = __atomic_load_n(s->cq_tail, __ATOMIC_ACQUIRE);
  const int budget = options_.max_events;
  while (head != tail && dispatched < budget) {
    const io_uring_cqe* cqe = &s->cqes[head & s->cq_mask];
    const std::uintptr_t tag = cqe->user_data & kTagMask;
    if (tag == kTagDgram) {
      // The op pointer travels in the user_data; its CQE is the free point
      // for the payload and one expected CQE of the owning handle. Send
      // errors are intentionally dropped — UDP replies are best-effort.
      auto* op = reinterpret_cast<DgramSendOp*>(cqe->user_data & ~kTagMask);
      IoHandle* handle = op->handle;
      delete op;
      UringFinishCqe(handle);
      dispatched++;
      head++;
      continue;
    }
    auto* handle = reinterpret_cast<IoHandle*>(cqe->user_data & ~kTagMask);
    if (tag == kTagRemove || tag == kTagRemoveWrite) {
      // One CQE per POLL_REMOVE/ASYNC_CANCEL submitted by Deregister.
      UringFinishCqe(handle);
    } else if (tag == kTagWritePoll) {
      // The oneshot POLLOUT is no longer in flight; the next WaitForWritable
      // may arm a fresh one.
      handle->write_poll_armed.store(false, std::memory_order_release);
      if (!handle->closed.load(std::memory_order_acquire)) {
        DeliverReady(handle, cqe->res < 0
                                 ? kIoError
                                 : PollBitsFromRevents(static_cast<unsigned>(cqe->res)));
        dispatched++;
      }
      UringFinishCqe(handle);
    } else if (tag == kTagRecv) {
      HandleRecvCqe(handle, cqe->res, cqe->flags);
      dispatched++;
    } else if (tag == kTagAccept) {
      HandleAcceptCqe(handle, cqe->res, cqe->flags);
      dispatched++;
    } else if (tag == kTagSend) {
      HandleSendCqe(handle, cqe->res);
      dispatched++;
    } else {  // kTagMainPoll
      // A multishot emits many CQEs; only one without F_MORE ends the series
      // (spontaneous termination, an error, or cancellation by Deregister's
      // POLL_REMOVE — the kernel may post that -ECANCELED CQE *after* the
      // remove's own CQE, hence the counting).
      bool terminal = (cqe->flags & IORING_CQE_F_MORE) == 0;
      if (handle->closed.load(std::memory_order_acquire)) {
        // Stale completion for a deregistered handle; deliver nothing.
      } else if (cqe->res < 0) {
        handle->main_poll_armed.store(false, std::memory_order_release);
        DeliverReady(handle, kIoError);
        dispatched++;
      } else {
        DeliverReady(handle, PollBitsFromRevents(static_cast<unsigned>(cqe->res)));
        dispatched++;
        if (terminal) {
          if (UringArmPoll(handle, POLLIN | POLLRDHUP, kTagMainPoll)) {
            terminal = false;  // re-armed: the poll's expected-CQE count lives on
          } else {
            // Lost read monitoring: latch an error so the waiter wakes and
            // tears the connection down instead of parking forever.
            handle->main_poll_armed.store(false, std::memory_order_release);
            DeliverReady(handle, kIoError);
          }
        }
      }
      if (terminal) {
        UringFinishCqe(handle);
      }
    }
    head++;
  }
  __atomic_store_n(s->cq_head, head, __ATOMIC_RELEASE);
  if ((__atomic_load_n(s->sq_flags, __ATOMIC_ACQUIRE) & IORING_SQ_CQ_OVERFLOW) != 0) {
    // A CQ overflow parked completions kernel-side; flush them into the ring
    // so the next Poll can reap (the deep CQSIZE ring makes this rare).
    SysIoUringEnter(uring_fd_, 0, 0, IORING_ENTER_GETEVENTS);
    IncLane(stats_.sys_enter, worker_);
  }
  // The batched-submission point: every op queued since the last round —
  // handler sends, registrations, cancels, plus the re-arms above — goes to
  // the kernel in one enter. Reaping above is pure shared-memory work, so it
  // runs every scheduler round; the enter() is DEFERRED until a worthwhile
  // batch accumulated or a flush is overdue — the scheduler polls between
  // every two uthread segments, so an eager flush here would pay one syscall
  // per handler send. The worker loop's pre-idle FlushSubmissions() bounds
  // the added latency whenever the runqueue drains; the round limit bounds it
  // when a yield-spinning uthread keeps the worker out of the idle path.
  // SQPOLL submits by publishing the SQ tail (the enter below is only a
  // NEED_WAKEUP nudge), so deferring would buy nothing.
  const unsigned pending = s->to_submit.load(std::memory_order_relaxed);
  if (pending == 0) {
    submit_rounds_ = 0;
  } else if (s->sqpoll || pending >= kSubmitEagerBatch ||
             ++submit_rounds_ >= kSubmitRoundLimit) {
    submit_rounds_ = 0;
    UringSubmit();
  }
  return dispatched;
}

void IoEngine::FlushSubmissions() {
  UringState* s = uring_;
  if (s != nullptr && s->to_submit.load(std::memory_order_relaxed) > 0) {
    submit_rounds_ = 0;
    UringSubmit();
  }
}

// ---------------------------------------------------------------------------
// Completion data path (multishot RECV/RECVMSG/ACCEPT + provided buffers +
// async sends). Compiled only when the uapi header is new enough; probed at
// ring setup and degraded per-feature at runtime.
// ---------------------------------------------------------------------------

#ifdef SKYLOFT_URING_COMPLETION

// One queued received segment: `len` payload bytes in provided buffer `bid`.
struct IoRecvSeg {
  std::uint32_t len = 0;
  std::uint16_t bid = 0;
};

// Per-handle completion state. The queues are filled by the home engine's
// reaping and drained by the handler uthread from whichever worker stole it;
// q_spin (lock class io_handle_q) guards them. Single-writer send contract:
// only the one handler uthread enqueues, so tx ordering needs no further
// synchronization beyond the spinlock.
struct IoCompletionState {
  IoRegisterMode mode = IoRegisterMode::kStream;
  int fixed_slot = -1;  // registered-file table index; -1 = raw fd
  std::atomic_flag q_spin = ATOMIC_FLAG_INIT;
  std::deque<IoRecvSeg> rx;
  std::deque<int> accepted;
  // Send queue. tx_off = bytes of tx.front() already sent; tx_bytes = total
  // unsent bytes. While tx_inflight, tx_iov/tx_msg describe the submitted
  // batch and the referenced front frames must not be popped (only the send
  // CQE pops, under q_spin, before any re-arm).
  std::deque<std::string> tx;
  std::size_t tx_off = 0;
  std::size_t tx_bytes = 0;
  bool tx_inflight = false;
  iovec tx_iov[kMaxSendIovs];
  msghdr tx_msg{};
  // Multishot RECVMSG template (kDatagram): namelen reserves space for the
  // sender address that the kernel packs into the provided buffer.
  msghdr rx_msg{};
};

void IoEngine::QLock(IoCompletionState* cs) {
  SpinBackoff backoff;
  while (cs->q_spin.test_and_set(std::memory_order_acquire)) {
    backoff.Pause();
  }
}

void IoEngine::QUnlock(IoCompletionState* cs) {
  cs->q_spin.clear(std::memory_order_release);
}

void IoEngine::BufLock(UringState* s) {
  SpinBackoff backoff;
  while (s->buf_spin.test_and_set(std::memory_order_acquire)) {
    backoff.Pause();
  }
}

void IoEngine::BufUnlock(UringState* s) { s->buf_spin.clear(std::memory_order_release); }

namespace {

// Logged once per process, not per engine: every worker's engine probes the
// same kernel, and a line per engine would just repeat it.
void LogCompletionFallbackOnce(const char* why) {
  static std::atomic<bool> logged{false};
  if (!logged.exchange(true, std::memory_order_acq_rel)) {
    SKYLOFT_LOG(kInfo) << "io_uring completion data path unavailable (" << why
                       << "); serving on the POLL_ADD readiness path";
  }
}

}  // namespace

bool IoEngine::UringSetupCompletion() {
  if (!options_.completion) {
    return false;
  }
  UringState* s = uring_;
  // Feature probe: every op the completion path arms must be supported.
  // IORING_OP_SEND_ZC doubles as the kernel >= 6.0 marker — the generation
  // where multishot RECV and provided buffer rings are complete — since
  // probe flags only say an opcode exists, not which sqe flags it honours.
  constexpr unsigned kProbeOps = 256;
  std::vector<unsigned char> probe_mem(
      sizeof(io_uring_probe) + kProbeOps * sizeof(io_uring_probe_op), 0);
  auto* probe = reinterpret_cast<io_uring_probe*>(probe_mem.data());
  if (SysIoUringRegister(uring_fd_, IORING_REGISTER_PROBE, probe, kProbeOps) < 0) {
    LogCompletionFallbackOnce("probe rejected");
    return false;
  }
  const auto supported = [probe](unsigned op) {
    return op <= probe->last_op && (probe->ops[op].flags & IO_URING_OP_SUPPORTED) != 0;
  };
  for (const unsigned op : {static_cast<unsigned>(IORING_OP_RECV),
                            static_cast<unsigned>(IORING_OP_SEND),
                            static_cast<unsigned>(IORING_OP_SENDMSG),
                            static_cast<unsigned>(IORING_OP_RECVMSG),
                            static_cast<unsigned>(IORING_OP_ACCEPT),
                            static_cast<unsigned>(IORING_OP_ASYNC_CANCEL),
                            static_cast<unsigned>(IORING_OP_SEND_ZC)}) {
    if (!supported(op)) {
      LogCompletionFallbackOnce("op probe short");
      return false;
    }
  }
  // Provided buffer ring: one page-aligned ring of descriptors plus a flat
  // arena the kernel scatters received bytes into.
  const unsigned entries = RoundUpPow2(static_cast<unsigned>(
      std::clamp(options_.buf_ring_entries, 8, 32768)));
  const std::size_t ring_len = entries * sizeof(io_uring_buf);
  void* ring_mem = mmap(nullptr, ring_len, PROT_READ | PROT_WRITE,
                        MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
  if (ring_mem == MAP_FAILED) {
    LogCompletionFallbackOnce("buffer ring mmap failed");
    return false;
  }
  io_uring_buf_reg reg{};
  reg.ring_addr = reinterpret_cast<std::uintptr_t>(ring_mem);
  reg.ring_entries = entries;
  reg.bgid = kBufGroup;
  if (SysIoUringRegister(uring_fd_, IORING_REGISTER_PBUF_RING, &reg, 1) < 0) {
    munmap(ring_mem, ring_len);
    LogCompletionFallbackOnce("pbuf ring register refused");
    return false;
  }
  s->buf_ring = static_cast<io_uring_buf_ring*>(ring_mem);
  s->bufs = static_cast<io_uring_buf*>(ring_mem);
  s->buf_ring_len = ring_len;
  s->buf_entries = entries;
  s->buf_mask = entries - 1;
  s->buf_size = static_cast<std::size_t>(std::max(256, options_.buf_size));
  s->buf_arena = std::make_unique<char[]>(entries * s->buf_size);
  for (unsigned i = 0; i < entries; i++) {
    io_uring_buf* slot = &s->bufs[i];
    slot->addr = reinterpret_cast<std::uintptr_t>(s->buf_arena.get() + i * s->buf_size);
    slot->len = static_cast<std::uint32_t>(s->buf_size);
    slot->bid = static_cast<std::uint16_t>(i);
  }
  s->buf_tail = static_cast<std::uint16_t>(entries);
  __atomic_store_n(&s->buf_ring->tail, s->buf_tail, __ATOMIC_RELEASE);
  // Registered files are an optimization, not a requirement: losing them
  // keeps the completion path on raw fds.
  if (options_.fixed_file_slots > 0) {
    std::vector<int> table(static_cast<std::size_t>(options_.fixed_file_slots), -1);
    if (SysIoUringRegister(uring_fd_, IORING_REGISTER_FILES, table.data(),
                           static_cast<unsigned>(table.size())) == 0) {
      s->fixed_files = true;
      s->free_slots.reserve(table.size());
      for (int slot = options_.fixed_file_slots - 1; slot >= 0; slot--) {
        s->free_slots.push_back(slot);
      }
    }
  }
  return true;
}

void IoEngine::UringTeardownCompletion() {
  UringState* s = uring_;
  if (s->buf_ring != nullptr) {
    munmap(s->buf_ring, s->buf_ring_len);
    s->buf_ring = nullptr;
  }
}

int IoEngine::AllocFixedSlot(int fd) {
  UringState* s = uring_;
  if (!s->fixed_files) {
    return -1;
  }
  int slot = -1;
  LockHandles();
  if (!s->free_slots.empty()) {
    slot = s->free_slots.back();
    s->free_slots.pop_back();
  }
  UnlockHandles();
  if (slot < 0) {
    return -1;
  }
  io_uring_files_update up{};
  up.offset = static_cast<unsigned>(slot);
  up.fds = reinterpret_cast<std::uintptr_t>(&fd);
  if (SysIoUringRegister(uring_fd_, IORING_REGISTER_FILES_UPDATE, &up, 1) < 0) {
    LockHandles();
    s->free_slots.push_back(slot);
    UnlockHandles();
    return -1;
  }
  return slot;
}

void IoEngine::ReleaseFixedSlot(int slot) {
  UringState* s = uring_;
  int minus_one = -1;
  io_uring_files_update up{};
  up.offset = static_cast<unsigned>(slot);
  up.fds = reinterpret_cast<std::uintptr_t>(&minus_one);
  // Clearing the slot releases the table's file reference — the last one by
  // now, since Deregister already closed the fd number.
  SysIoUringRegister(uring_fd_, IORING_REGISTER_FILES_UPDATE, &up, 1);
  LockHandles();
  s->free_slots.push_back(slot);
  UnlockHandles();
}

bool IoEngine::ArmMainOp(IoHandle* handle) {
  UringState* s = uring_;
  IoCompletionState* cs = handle->cs;
  SKYLOFT_CHECK(cs->mode != IoRegisterMode::kReadiness) << "ArmMainOp on a readiness handle";
  SqLock(s);
  auto* sqe = static_cast<io_uring_sqe*>(SqePrepareLocked());
  if (sqe != nullptr) {
    const bool fixed = cs->fixed_slot >= 0;
    sqe->fd = fixed ? cs->fixed_slot : handle->fd;
    if (fixed) {
      sqe->flags |= IOSQE_FIXED_FILE;
    }
    switch (cs->mode) {
      case IoRegisterMode::kStream:
        sqe->opcode = IORING_OP_RECV;
        sqe->ioprio = IORING_RECV_MULTISHOT;
        sqe->flags |= IOSQE_BUFFER_SELECT;
        sqe->buf_group = kBufGroup;
        sqe->user_data = reinterpret_cast<std::uintptr_t>(handle) | kTagRecv;
        break;
      case IoRegisterMode::kDatagram:
        sqe->opcode = IORING_OP_RECVMSG;
        sqe->ioprio = IORING_RECV_MULTISHOT;
        sqe->flags |= IOSQE_BUFFER_SELECT;
        sqe->buf_group = kBufGroup;
        sqe->addr = reinterpret_cast<std::uintptr_t>(&cs->rx_msg);
        sqe->user_data = reinterpret_cast<std::uintptr_t>(handle) | kTagRecv;
        break;
      case IoRegisterMode::kListener:
        sqe->opcode = IORING_OP_ACCEPT;
        sqe->ioprio = IORING_ACCEPT_MULTISHOT;
        sqe->accept_flags = SOCK_NONBLOCK | SOCK_CLOEXEC;
        sqe->user_data = reinterpret_cast<std::uintptr_t>(handle) | kTagAccept;
        break;
      case IoRegisterMode::kReadiness:
        break;  // unreachable, checked on entry
    }
    SqeCommitLocked();
  }
  SqUnlock(s);
  return sqe != nullptr;
}

// Arms the next SEND/SENDMSG for the queued front frames. Caller holds the
// handle's queue lock; nests the SQ lock inside it (lock order
// io_handle_q -> uring_sq, everywhere). MSG_NOSIGNAL keeps a reset peer from
// raising SIGPIPE out of the kernel's async context.
bool IoEngine::ArmSendLocked(IoHandle* handle) {
  IoCompletionState* cs = handle->cs;
  int niov = 0;
  std::size_t skip = cs->tx_off;
  const int max_iov = std::min(std::max(1, options_.send_batch), kMaxSendIovs);
  for (const std::string& frame : cs->tx) {
    if (niov >= max_iov) {
      break;
    }
    cs->tx_iov[niov].iov_base = const_cast<char*>(frame.data()) + skip;
    cs->tx_iov[niov].iov_len = frame.size() - skip;
    skip = 0;  // only the front frame carries an offset
    niov++;
  }
  SKYLOFT_CHECK(niov > 0) << "ArmSendLocked with an empty send queue";
  UringState* s = uring_;
  SqLock(s);
  auto* sqe = static_cast<io_uring_sqe*>(SqePrepareLocked());
  if (sqe != nullptr) {
    const bool fixed = cs->fixed_slot >= 0;
    sqe->fd = fixed ? cs->fixed_slot : handle->fd;
    if (fixed) {
      sqe->flags |= IOSQE_FIXED_FILE;
    }
    if (niov == 1) {
      sqe->opcode = IORING_OP_SEND;
      sqe->addr = reinterpret_cast<std::uintptr_t>(cs->tx_iov[0].iov_base);
      sqe->len = static_cast<std::uint32_t>(cs->tx_iov[0].iov_len);
    } else {
      sqe->opcode = IORING_OP_SENDMSG;
      cs->tx_msg.msg_iov = cs->tx_iov;
      cs->tx_msg.msg_iovlen = static_cast<std::size_t>(niov);
      sqe->addr = reinterpret_cast<std::uintptr_t>(&cs->tx_msg);
    }
    sqe->msg_flags = MSG_NOSIGNAL;
    sqe->user_data = reinterpret_cast<std::uintptr_t>(handle) | kTagSend;
    SqeCommitLocked();
  }
  SqUnlock(s);
  if (sqe == nullptr) {
    return false;
  }
  IncLane(stats_.send_ops, worker_);
  return true;
}

void IoEngine::QueueCancel(IoHandle* handle, std::uintptr_t target_tag) {
  // Must not fail (a dropped cancel means a leaked handle); the inline flush
  // in SqePrepareLocked drains a full SQ, so the retry terminates.
  UringState* s = uring_;
  SpinBackoff backoff;
  while (true) {
    SqLock(s);
    auto* sqe = static_cast<io_uring_sqe*>(SqePrepareLocked());
    if (sqe != nullptr) {
      sqe->opcode = IORING_OP_ASYNC_CANCEL;
      sqe->addr = reinterpret_cast<std::uintptr_t>(handle) | target_tag;
      sqe->user_data = reinterpret_cast<std::uintptr_t>(handle) | kTagRemove;
      SqeCommitLocked();
      SqUnlock(s);
      return;
    }
    SqUnlock(s);
    backoff.Pause();
  }
}

void IoEngine::StallHandle(IoHandle* handle) {
  // Home-worker only (called while reaping). The terminal CQE's expected-CQE
  // reference transfers to the list entry, keeping the handle alive until
  // RearmStalled either re-arms (reference moves back to the op) or observes
  // the close (reference dropped via UringFinishCqe).
  stalled_.push_back(handle);
}

void IoEngine::RearmStalled() {
  if (stalled_.empty()) {
    return;
  }
  UringState* s = uring_;
  const std::uint64_t recycled = s->buf_recycled.load(std::memory_order_acquire);
  const bool bufs_back = recycled != last_recycled_;
  std::size_t kept = 0;
  for (IoHandle* handle : stalled_) {
    if (handle->closed.load(std::memory_order_acquire)) {
      UringFinishCqe(handle);  // drop the list reference; may free
      continue;
    }
    // ENOBUFS-stalled recvs only retry once a buffer came back; accept
    // stalls (EMFILE bursts) retry every round — their resource isn't ours
    // to observe.
    const bool listener = handle->cs->mode == IoRegisterMode::kListener;
    if (!listener && !bufs_back) {
      stalled_[kept++] = handle;
      continue;
    }
    // Publish-then-recheck against a concurrent Deregister (which stores
    // closed, then reads armed): with seq_cst on both sides at least one of
    // us sees the other, so a re-armed op always has a cancel coming or is
    // never armed at all.
    handle->main_poll_armed.store(true, std::memory_order_seq_cst);
    if (handle->closed.load(std::memory_order_seq_cst)) {
      handle->main_poll_armed.store(false, std::memory_order_release);
      UringFinishCqe(handle);
      continue;
    }
    if (!ArmMainOp(handle)) {
      handle->main_poll_armed.store(false, std::memory_order_release);
      stalled_[kept++] = handle;
    }
  }
  stalled_.resize(kept);
  last_recycled_ = recycled;
}

void IoEngine::HandleRecvCqe(IoHandle* handle, std::int32_t res, std::uint32_t flags) {
  const bool more = (flags & IORING_CQE_F_MORE) != 0;
  const bool has_buf = (flags & IORING_CQE_F_BUFFER) != 0;
  const auto bid = static_cast<std::uint16_t>(flags >> IORING_CQE_BUFFER_SHIFT);
  if (handle->closed.load(std::memory_order_acquire)) {
    // Stale completion for a deregistered handle: the buffer still belongs
    // to the ring, the data does not belong to anyone.
    if (has_buf) {
      RecycleBuffer(bid);
    }
    if (!more) {
      handle->main_poll_armed.store(false, std::memory_order_release);
      UringFinishCqe(handle);
    }
    return;
  }
  if (res < 0) {
    // Errors are terminal for the multishot (the kernel never sets F_MORE on
    // them).
    handle->main_poll_armed.store(false, std::memory_order_release);
    if (res == -ENOBUFS) {
      // Provided-buffer ring ran dry: park on the stall list and re-arm once
      // a consumer recycles — the backpressure path, not an error.
      IncLane(stats_.buf_exhaustions, worker_);
      StallHandle(handle);
      return;
    }
    DeliverReady(handle, kIoError);
    UringFinishCqe(handle);
    return;
  }
  if (res == 0) {
    // Stream EOF. Terminal: re-arming would just replay 0-byte completions.
    if (has_buf) {
      RecycleBuffer(bid);
    }
    handle->main_poll_armed.store(false, std::memory_order_release);
    DeliverReady(handle, kIoHup);
    if (!more) {
      UringFinishCqe(handle);
    }
    return;
  }
  if (has_buf) {
    IoCompletionState* cs = handle->cs;
    QLock(cs);
    cs->rx.push_back(IoRecvSeg{static_cast<std::uint32_t>(res), bid});
    QUnlock(cs);
    IncLane(stats_.recv_segments, worker_);
    DeliverReady(handle, kIoReadable);
  }
  if (!more) {
    // The kernel retired the multishot without an error (e.g. bufs were
    // momentarily short); re-arm inline so the data path keeps flowing.
    if (!ArmMainOp(handle)) {
      handle->main_poll_armed.store(false, std::memory_order_release);
      DeliverReady(handle, kIoError);
      UringFinishCqe(handle);
    }
  }
}

void IoEngine::HandleAcceptCqe(IoHandle* handle, std::int32_t res, std::uint32_t flags) {
  const bool more = (flags & IORING_CQE_F_MORE) != 0;
  if (handle->closed.load(std::memory_order_acquire)) {
    if (res >= 0) {
      close(res);  // accepted after the listener was torn down
    }
    if (!more) {
      handle->main_poll_armed.store(false, std::memory_order_release);
      UringFinishCqe(handle);
    }
    return;
  }
  if (res < 0) {
    handle->main_poll_armed.store(false, std::memory_order_release);
    if (res == -ECANCELED) {
      UringFinishCqe(handle);
      return;
    }
    // Transient accept failure (ECONNABORTED, EMFILE burst): retry from the
    // stall list next poll round rather than killing the listener.
    StallHandle(handle);
    return;
  }
  IoCompletionState* cs = handle->cs;
  QLock(cs);
  cs->accepted.push_back(res);
  QUnlock(cs);
  IncLane(stats_.completion_accepts, worker_);
  DeliverReady(handle, kIoReadable);
  if (!more) {
    if (!ArmMainOp(handle)) {
      handle->main_poll_armed.store(false, std::memory_order_release);
      DeliverReady(handle, kIoError);
      UringFinishCqe(handle);
    }
  }
}

void IoEngine::HandleSendCqe(IoHandle* handle, std::int32_t res) {
  IoCompletionState* cs = handle->cs;
  unsigned latch = 0;
  bool finished = true;  // this CQE retires the in-flight send unless re-armed
  QLock(cs);
  if (res < 0) {
    // EPIPE/ECONNRESET and friends: the connection is done writing; drop the
    // queue so teardown doesn't wait on bytes that can never leave.
    cs->tx.clear();
    cs->tx_off = 0;
    cs->tx_bytes = 0;
    cs->tx_inflight = false;
    latch = kIoError;
  } else {
    const auto sent = static_cast<std::size_t>(res);
    cs->tx_bytes -= std::min(sent, cs->tx_bytes);
    std::size_t consumed = cs->tx_off + sent;
    while (!cs->tx.empty() && consumed >= cs->tx.front().size()) {
      consumed -= cs->tx.front().size();
      cs->tx.pop_front();
    }
    cs->tx_off = consumed;
    if (cs->tx.empty()) {
      cs->tx_inflight = false;
      latch = kIoWritable;  // drained: wake a backpressured writer
    } else if (handle->closed.load(std::memory_order_acquire)) {
      cs->tx.clear();
      cs->tx_off = 0;
      cs->tx_bytes = 0;
      cs->tx_inflight = false;
    } else if (ArmSendLocked(handle)) {
      finished = false;  // short send: continuation keeps the expected CQE
    } else {
      cs->tx_inflight = false;
      latch = kIoError;
    }
  }
  QUnlock(cs);
  if (latch != 0) {
    DeliverReady(handle, latch);  // no-op on closed handles
  }
  if (finished) {
    UringFinishCqe(handle);
  }
}

bool IoEngine::PopRecv(IoHandle* handle, IoRecvSlice* slice) {
  IoCompletionState* cs = handle->cs;
  if (cs == nullptr) {
    return false;
  }
  IoRecvSeg seg;
  QLock(cs);
  if (cs->rx.empty()) {
    QUnlock(cs);
    return false;
  }
  seg = cs->rx.front();
  cs->rx.pop_front();
  QUnlock(cs);
  UringState* s = uring_;
  slice->data = s->buf_arena.get() + static_cast<std::size_t>(seg.bid) * s->buf_size;
  slice->len = seg.len;
  slice->buf_id = seg.bid;
  return true;
}

void IoEngine::RecycleBuffer(std::uint16_t buf_id) {
  UringState* s = uring_;
  BufLock(s);
  const std::uint16_t tail = s->buf_tail;
  io_uring_buf* slot = &s->bufs[tail & s->buf_mask];
  slot->addr = reinterpret_cast<std::uintptr_t>(
      s->buf_arena.get() + static_cast<std::size_t>(buf_id) * s->buf_size);
  slot->len = static_cast<std::uint32_t>(s->buf_size);
  slot->bid = buf_id;
  s->buf_tail = static_cast<std::uint16_t>(tail + 1);
  __atomic_store_n(&s->buf_ring->tail, s->buf_tail, __ATOMIC_RELEASE);
  BufUnlock(s);
  s->buf_recycled.fetch_add(1, std::memory_order_release);
}

int IoEngine::TakeAccepted(IoHandle* handle) {
  IoCompletionState* cs = handle->cs;
  if (cs == nullptr) {
    return -1;
  }
  int fd = -1;
  QLock(cs);
  if (!cs->accepted.empty()) {
    fd = cs->accepted.front();
    cs->accepted.pop_front();
  }
  QUnlock(cs);
  return fd;
}

std::size_t IoEngine::SendEnqueue(IoHandle* handle, std::string frame) {
  IoCompletionState* cs = handle->cs;
  SKYLOFT_CHECK(cs != nullptr) << "SendEnqueue on a readiness handle";
  if (frame.empty()) {
    return SendQueuedBytes(handle);
  }
  bool arm_failed = false;
  std::size_t queued = 0;
  QLock(cs);
  if (!handle->closed.load(std::memory_order_acquire)) {
    cs->tx_bytes += frame.size();
    queued = cs->tx_bytes;
    cs->tx.push_back(std::move(frame));
    if (!cs->tx_inflight) {
      // Count the send's expected CQE before the kernel can post it. The
      // handle cannot race to its free point here: it is not closed and we
      // are its (single) writer.
      handle->pending_cqes.fetch_add(1, std::memory_order_acq_rel);
      if (ArmSendLocked(handle)) {
        cs->tx_inflight = true;
      } else {
        handle->pending_cqes.fetch_sub(1, std::memory_order_acq_rel);
        cs->tx.clear();
        cs->tx_off = 0;
        cs->tx_bytes = 0;
        arm_failed = true;
        queued = 0;
      }
    }
  }
  QUnlock(cs);
  if (arm_failed) {
    // No send monitoring means the writer could wait forever; latch an error
    // so it wakes and fails the connection instead.
    DeliverReady(handle, kIoError);
  }
  return queued;
}

std::size_t IoEngine::SendQueuedBytes(IoHandle* handle) {
  IoCompletionState* cs = handle->cs;
  if (cs == nullptr) {
    return 0;
  }
  QLock(cs);
  const std::size_t n = cs->tx_bytes;
  QUnlock(cs);
  return n;
}

bool IoEngine::SendDatagram(IoHandle* handle, const sockaddr_in& to, std::string frame) {
  IoCompletionState* cs = handle->cs;
  SKYLOFT_CHECK(cs != nullptr) << "SendDatagram on a readiness handle";
  if (handle->closed.load(std::memory_order_acquire)) {
    return false;
  }
  auto* op = new DgramSendOp;
  op->handle = handle;
  op->to = to;
  op->payload = std::move(frame);
  op->iov.iov_base = const_cast<char*>(op->payload.data());
  op->iov.iov_len = op->payload.size();
  op->msg.msg_name = &op->to;
  op->msg.msg_namelen = sizeof(op->to);
  op->msg.msg_iov = &op->iov;
  op->msg.msg_iovlen = 1;
  // The caller is the handle's serving uthread, so no concurrent Deregister
  // can race this expected-CQE count (same single-owner argument as
  // SendEnqueue).
  handle->pending_cqes.fetch_add(1, std::memory_order_acq_rel);
  UringState* s = uring_;
  SqLock(s);
  auto* sqe = static_cast<io_uring_sqe*>(SqePrepareLocked());
  if (sqe != nullptr) {
    const bool fixed = cs->fixed_slot >= 0;
    sqe->fd = fixed ? cs->fixed_slot : handle->fd;
    if (fixed) {
      sqe->flags |= IOSQE_FIXED_FILE;
    }
    sqe->opcode = IORING_OP_SENDMSG;
    sqe->addr = reinterpret_cast<std::uintptr_t>(&op->msg);
    sqe->msg_flags = MSG_NOSIGNAL;
    sqe->user_data = reinterpret_cast<std::uintptr_t>(op) | kTagDgram;
    SqeCommitLocked();
  }
  SqUnlock(s);
  if (sqe == nullptr) {
    handle->pending_cqes.fetch_sub(1, std::memory_order_acq_rel);
    delete op;
    return false;  // SQ jammed: drop the reply, exactly like UDP overload
  }
  IncLane(stats_.send_ops, worker_);
  return true;
}

bool IoEngine::ParseDatagram(const IoRecvSlice& slice, IoDatagram* out) {
  // Multishot RECVMSG packs [io_uring_recvmsg_out][name area][control area]
  // [payload] into the provided buffer; the armed msghdr reserved
  // sizeof(sockaddr_in) of name space and no control space.
  const auto* hdr = reinterpret_cast<const io_uring_recvmsg_out*>(slice.data);
  if (slice.len < sizeof(*hdr)) {
    return false;
  }
  const std::size_t payload_off = sizeof(*hdr) + sizeof(sockaddr_in);
  if (slice.len < payload_off || slice.len - payload_off < hdr->payloadlen) {
    return false;  // truncated (datagram or sender address didn't fit)
  }
  if (hdr->namelen < sizeof(sockaddr_in)) {
    return false;
  }
  std::memcpy(&out->peer, slice.data + sizeof(*hdr), sizeof(out->peer));
  out->data = slice.data + payload_off;
  out->len = hdr->payloadlen;
  return true;
}

void IoEngine::FreeCompletionResources(IoHandle* handle) {
  IoCompletionState* cs = handle->cs;
  if (cs == nullptr) {
    return;
  }
  // The free point: no op references the handle any more, so queued-but-
  // unconsumed resources return to their owners — buffers to the ring,
  // never-taken accepted fds to the kernel.
  for (const IoRecvSeg& seg : cs->rx) {
    RecycleBuffer(seg.bid);
  }
  for (const int fd : cs->accepted) {
    close(fd);
  }
  if (cs->fixed_slot >= 0) {
    ReleaseFixedSlot(cs->fixed_slot);
  }
  delete cs;
  handle->cs = nullptr;
}

#else  // !SKYLOFT_URING_COMPLETION (io_uring without a 6.0+ uapi header)

struct IoCompletionState {};

bool IoEngine::UringSetupCompletion() { return false; }
void IoEngine::UringTeardownCompletion() {}
void IoEngine::QLock(IoCompletionState*) {}
void IoEngine::QUnlock(IoCompletionState*) {}
void IoEngine::BufLock(UringState*) {}
void IoEngine::BufUnlock(UringState*) {}
int IoEngine::AllocFixedSlot(int) { return -1; }
void IoEngine::ReleaseFixedSlot(int) {}
bool IoEngine::ArmMainOp(IoHandle*) { return false; }
bool IoEngine::ArmSendLocked(IoHandle*) { return false; }
void IoEngine::QueueCancel(IoHandle*, std::uintptr_t) {}
void IoEngine::StallHandle(IoHandle*) {}
void IoEngine::RearmStalled() {}
void IoEngine::HandleRecvCqe(IoHandle*, std::int32_t, std::uint32_t) {}
void IoEngine::HandleAcceptCqe(IoHandle*, std::int32_t, std::uint32_t) {}
void IoEngine::HandleSendCqe(IoHandle*, std::int32_t) {}
bool IoEngine::PopRecv(IoHandle*, IoRecvSlice*) { return false; }
void IoEngine::RecycleBuffer(std::uint16_t) {}
int IoEngine::TakeAccepted(IoHandle*) { return -1; }
std::size_t IoEngine::SendEnqueue(IoHandle*, std::string) { return 0; }
std::size_t IoEngine::SendQueuedBytes(IoHandle*) { return 0; }
bool IoEngine::SendDatagram(IoHandle*, const sockaddr_in&, std::string) { return false; }
bool IoEngine::ParseDatagram(const IoRecvSlice&, IoDatagram*) { return false; }
void IoEngine::FreeCompletionResources(IoHandle* handle) {
  delete handle->cs;  // never allocated on this build; null delete is a no-op
  handle->cs = nullptr;
}

#endif  // SKYLOFT_URING_COMPLETION

#else  // !SKYLOFT_IO_URING

struct IoEngine::UringState {};
struct IoEngine::DgramSendOp {};
struct IoCompletionState {};
bool IoEngine::UringInit(int /*entries*/) { return false; }
void IoEngine::UringShutdown() {}
int IoEngine::UringPoll() { return 0; }
void IoEngine::FlushSubmissions() {}
bool IoEngine::UringArmPoll(IoHandle*, unsigned, std::uintptr_t) { return false; }
void IoEngine::UringRemovePoll(IoHandle*, std::uintptr_t) {}
void IoEngine::UringFinishCqe(IoHandle*) {}
void IoEngine::UringSubmit() {}
void* IoEngine::SqePrepareLocked() { return nullptr; }
void IoEngine::SqeCommitLocked() {}
bool IoEngine::UringSetupCompletion() { return false; }
void IoEngine::UringTeardownCompletion() {}
void IoEngine::QLock(IoCompletionState*) {}
void IoEngine::QUnlock(IoCompletionState*) {}
void IoEngine::BufLock(UringState*) {}
void IoEngine::BufUnlock(UringState*) {}
int IoEngine::AllocFixedSlot(int) { return -1; }
void IoEngine::ReleaseFixedSlot(int) {}
bool IoEngine::ArmMainOp(IoHandle*) { return false; }
bool IoEngine::ArmSendLocked(IoHandle*) { return false; }
void IoEngine::QueueCancel(IoHandle*, std::uintptr_t) {}
void IoEngine::StallHandle(IoHandle*) {}
void IoEngine::RearmStalled() {}
void IoEngine::HandleRecvCqe(IoHandle*, std::int32_t, std::uint32_t) {}
void IoEngine::HandleAcceptCqe(IoHandle*, std::int32_t, std::uint32_t) {}
void IoEngine::HandleSendCqe(IoHandle*, std::int32_t) {}
bool IoEngine::PopRecv(IoHandle*, IoRecvSlice*) { return false; }
void IoEngine::RecycleBuffer(std::uint16_t) {}
int IoEngine::TakeAccepted(IoHandle*) { return -1; }
std::size_t IoEngine::SendEnqueue(IoHandle*, std::string) { return 0; }
std::size_t IoEngine::SendQueuedBytes(IoHandle*) { return 0; }
bool IoEngine::SendDatagram(IoHandle*, const sockaddr_in&, std::string) { return false; }
bool IoEngine::ParseDatagram(const IoRecvSlice&, IoDatagram*) { return false; }
void IoEngine::FreeCompletionResources(IoHandle* handle) {
  delete handle->cs;
  handle->cs = nullptr;
}

#endif  // SKYLOFT_IO_URING

// ---------------------------------------------------------------------------
// Backend-neutral engine.
// ---------------------------------------------------------------------------

IoEngine::IoEngine(int worker, const IoEngineOptions& options, const IoEngineStats& stats)
    : worker_(worker), options_(options), stats_(stats) {
  SKYLOFT_CHECK(options_.max_events > 0);
  if (options_.backend != IoEngineOptions::Backend::kEpoll) {
    if (!UringInit(options_.uring_entries) &&
        options_.backend == IoEngineOptions::Backend::kIoUring) {
      IncLane(stats_.uring_fallbacks, worker_);
    }
  }
  if (uring_fd_ < 0) {
    epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
    SKYLOFT_CHECK(epoll_fd_ >= 0) << "epoll_create1 failed: " << std::strerror(errno);
    event_buf_.resize(static_cast<std::size_t>(options_.max_events) * sizeof(epoll_event));
  }
}

IoEngine::~IoEngine() {
  // Drain the retire pipeline, then close out whatever the application left
  // registered (a server torn down mid-connection). The stall list holds
  // references to handles that are also in handles_; just drop the list —
  // the sweep below frees them.
  stalled_.clear();
  FreeRetired();
  FreeRetired();
  for (IoHandle* handle : handles_) {
    if (!handle->closed.load(std::memory_order_relaxed)) {
      close(handle->fd);
    }
    FreeCompletionResources(handle);
    delete handle;
  }
  handles_.clear();
  UringShutdown();
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
  }
}

void IoEngine::LockHandles() {
  SpinBackoff backoff;
  while (handles_spin_.test_and_set(std::memory_order_acquire)) {
    backoff.Pause();
  }
}

void IoEngine::UnlockHandles() { handles_spin_.clear(std::memory_order_release); }

void IoEngine::TrackHandle(IoHandle* handle) {
  LockHandles();
  handles_.push_back(handle);
  UnlockHandles();
}

void IoEngine::UntrackHandle(IoHandle* handle) {
  LockHandles();
  for (std::size_t i = 0; i < handles_.size(); i++) {
    if (handles_[i] == handle) {
      handles_[i] = handles_.back();
      handles_.pop_back();
      break;
    }
  }
  UnlockHandles();
}

IoHandle* IoEngine::Register(int fd, IoRegisterMode mode) {
  const int fl = fcntl(fd, F_GETFL, 0);
  if (fl < 0 || fcntl(fd, F_SETFL, fl | O_NONBLOCK) < 0) {
    return nullptr;
  }
  auto* handle = new IoHandle;
  handle->fd = fd;
  handle->engine = this;
  if (uring_fd_ >= 0) {
#ifdef SKYLOFT_IO_URING
#ifdef SKYLOFT_URING_COMPLETION
    if (completion_ && mode != IoRegisterMode::kReadiness) {
      handle->mode = mode;
      auto* cs = new IoCompletionState;
      cs->mode = mode;
      if (mode == IoRegisterMode::kDatagram) {
        cs->rx_msg.msg_namelen = sizeof(sockaddr_in);
      }
      cs->fixed_slot = AllocFixedSlot(fd);
      handle->cs = cs;
      // Pre-publication: count the main op's expected terminal CQE before
      // the kernel can post it.
      handle->main_poll_armed.store(true, std::memory_order_relaxed);
      handle->pending_cqes.store(1, std::memory_order_relaxed);
      if (!ArmMainOp(handle)) {
        if (cs->fixed_slot >= 0) {
          ReleaseFixedSlot(cs->fixed_slot);
        }
        delete cs;
        handle->cs = nullptr;
        delete handle;
        return nullptr;
      }
      TrackHandle(handle);
      IncLane(stats_.registered, worker_);
      return handle;
    }
#endif
    // Readiness mode (or completion unavailable): multishot POLL_ADD. The
    // SQE rides the next poll round's batched submit.
    handle->main_poll_armed.store(true, std::memory_order_relaxed);
    handle->pending_cqes.store(1, std::memory_order_relaxed);
    if (!UringArmPoll(handle, POLLIN | POLLRDHUP, kTagMainPoll)) {
      delete handle;
      return nullptr;
    }
#endif
  } else {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
    ev.data.ptr = handle;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      delete handle;
      return nullptr;
    }
  }
  TrackHandle(handle);
  IncLane(stats_.registered, worker_);
  return handle;
}

void IoEngine::Deregister(IoHandle* handle) {
  SKYLOFT_CHECK(handle != nullptr && handle->engine == this);
  if (uring_fd_ >= 0) {
    // Take a queueing reference BEFORE publishing closed: once closed is
    // visible, a concurrent reaper dropping pending_cqes to zero frees the
    // handle, and this function is still using it below. seq_cst pairs with
    // RearmStalled's armed-store/closed-recheck so the two can never both
    // miss each other (a stalled handle re-armed with no cancel queued).
    handle->pending_cqes.fetch_add(1, std::memory_order_acq_rel);
    const bool was_closed = handle->closed.exchange(true, std::memory_order_seq_cst);
    SKYLOFT_CHECK(!was_closed) << "double Deregister of fd " << handle->fd;
    // Cancel every outstanding op — the multishot main op (POLL_ADD for
    // readiness handles, RECV/RECVMSG/ACCEPT for completion handles), the
    // oneshot write poll, and an in-flight async send. A pending op holds a
    // file reference, so closing the fd alone would not complete it and its
    // CQE could fire after the handle was freed. Each cancel yields its own
    // CQE too; count both before queueing. The fd can be closed right away —
    // POLL_REMOVE/ASYNC_CANCEL target by user_data, not fd.
    if (handle->main_poll_armed.load(std::memory_order_seq_cst)) {
      handle->pending_cqes.fetch_add(1, std::memory_order_acq_rel);
      if (handle->cs == nullptr) {
        UringRemovePoll(handle, kTagRemove);
      } else {
        QueueCancel(handle, handle->mode == IoRegisterMode::kListener ? kTagAccept : kTagRecv);
      }
    }
    if (handle->write_poll_armed.load(std::memory_order_acquire)) {
      handle->pending_cqes.fetch_add(1, std::memory_order_acq_rel);
      UringRemovePoll(handle, kTagRemoveWrite);
    }
    if (handle->cs != nullptr) {
      // An in-flight async send holds a file reference and could otherwise
      // stay queued indefinitely (zero-window peer) pinning the handle;
      // cancel unconditionally — a miss just yields a -ENOENT cancel CQE,
      // which the +1 below absorbs either way.
      handle->pending_cqes.fetch_add(1, std::memory_order_acq_rel);
      QueueCancel(handle, kTagSend);
    }
    close(handle->fd);
    IncLane(stats_.retired, worker_);
    UringFinishCqe(handle);  // drop the queueing reference; may free
    return;
  }
  const bool was_closed = handle->closed.exchange(true, std::memory_order_acq_rel);
  SKYLOFT_CHECK(!was_closed) << "double Deregister of fd " << handle->fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, handle->fd, nullptr);
  close(handle->fd);
  // Two-phase retire (list -> graveyard -> free) so an event batch fetched
  // by a concurrent epoll_wait on the home worker can never outlive the
  // handle it points at.
  IoHandle* head = retired_head_.load(std::memory_order_relaxed);
  do {
    handle->retire_next = head;
  } while (!retired_head_.compare_exchange_weak(head, handle, std::memory_order_release,
                                                std::memory_order_relaxed));
  IncLane(stats_.retired, worker_);
}

void IoEngine::FreeRetired() {
  for (IoHandle* handle : retire_graveyard_) {
    UntrackHandle(handle);
    delete handle;
  }
  retire_graveyard_.clear();
  IoHandle* head = retired_head_.exchange(nullptr, std::memory_order_acquire);
  while (head != nullptr) {
    IoHandle* next = head->retire_next;
    retire_graveyard_.push_back(head);
    head = next;
  }
}

void IoEngine::DeliverReady(IoHandle* handle, unsigned bits) {
  if (bits == 0 || handle->closed.load(std::memory_order_acquire)) {
    return;
  }
  handle->ready.fetch_or(bits, std::memory_order_acq_rel);
  if (bits & (kIoReadable | kIoHup | kIoError)) {
    UThread* waiter = handle->reader.exchange(nullptr, std::memory_order_acq_rel);
    if (waiter != nullptr) {
      Runtime::Unpark(waiter);
      IncLane(stats_.wakeups, worker_);
    }
  }
  if (bits & (kIoWritable | kIoHup | kIoError)) {
    UThread* waiter = handle->writer.exchange(nullptr, std::memory_order_acq_rel);
    if (waiter != nullptr) {
      Runtime::Unpark(waiter);
      IncLane(stats_.wakeups, worker_);
    }
  }
}

int IoEngine::EpollPoll() {
  FreeRetired();
  auto* events = reinterpret_cast<epoll_event*>(event_buf_.data());
  // This epoll_wait only drains already-pending events: the scheduler loop
  // calls it between uthread switches precisely because it cannot block.
  // skylint:allow(blocking-call-on-worker) -- timeout 0 never sleeps
  const int n = epoll_wait(epoll_fd_, events, options_.max_events, 0);
  if (n <= 0) {
    return 0;
  }
  for (int i = 0; i < n; i++) {
    unsigned bits = 0;
    const unsigned ev = events[i].events;
    if (ev & (EPOLLIN | EPOLLRDHUP)) {
      bits |= kIoReadable;
    }
    if (ev & EPOLLOUT) {
      bits |= kIoWritable;
    }
    if (ev & EPOLLHUP) {
      bits |= kIoHup;
    }
    if (ev & EPOLLERR) {
      bits |= kIoError;
    }
    DeliverReady(static_cast<IoHandle*>(events[i].data.ptr), bits);
  }
  return n;
}

int IoEngine::Poll() {
  const int n = uring_fd_ >= 0 ? UringPoll() : EpollPoll();
  if (n > 0) {
    IncLane(stats_.polls, worker_);
    IncLane(stats_.events, worker_, static_cast<std::uint64_t>(n));
  }
  return n;
}

void IoEngine::RequestWritable(IoHandle* handle) {
  if (uring_fd_ >= 0) {
#ifdef SKYLOFT_IO_URING
    if (handle->cs != nullptr) {
      // Completion handles don't poll for POLLOUT: the parked writer is
      // woken by the send queue draining (final send CQE latches
      // kIoWritable).
      return;
    }
    // At most one oneshot POLLOUT in flight per handle, so Deregister knows
    // exactly which polls remain to cancel; an unreaped previous arm still
    // delivers the wakeup this caller is about to wait for.
    if (handle->write_poll_armed.exchange(true, std::memory_order_acq_rel)) {
      return;
    }
    handle->pending_cqes.fetch_add(1, std::memory_order_acq_rel);
    if (!UringArmPoll(handle, POLLOUT, kTagWritePoll)) {
      handle->pending_cqes.fetch_sub(1, std::memory_order_acq_rel);
      handle->write_poll_armed.store(false, std::memory_order_release);
      // No write monitoring means the waiter would park forever; latch an
      // error so it wakes and fails the write instead.
      DeliverReady(handle, kIoError);
    }
#endif
  }
  // epoll: EPOLLOUT|EPOLLET is permanently armed; the edge fires when the
  // send buffer drains.
}

void IoEngine::RelatchReadable(IoHandle* handle) {
  handle->ready.fetch_or(kIoReadable, std::memory_order_acq_rel);
  UThread* waiter = handle->reader.exchange(nullptr, std::memory_order_acq_rel);
  if (waiter != nullptr) {
    Runtime::Unpark(waiter);
  }
}

void IoEngine::DumpDebug(std::FILE* out) {
  std::fprintf(out, "engine[%d] backend=%s completion=%d\n", worker_,
               uring_fd_ >= 0 ? "io_uring" : "epoll", completion_ ? 1 : 0);
#ifdef SKYLOFT_IO_URING
  if (uring_ != nullptr) {
    UringState* s = uring_;
    std::fprintf(out,
                 "  sq head=%u tail=%u to_submit=%u flags=%#x cq head=%u tail=%u\n",
                 __atomic_load_n(s->sq_head, __ATOMIC_ACQUIRE),
                 __atomic_load_n(s->sq_tail, __ATOMIC_ACQUIRE),
                 s->to_submit.load(std::memory_order_relaxed),
                 __atomic_load_n(s->sq_flags, __ATOMIC_ACQUIRE),
                 __atomic_load_n(s->cq_head, __ATOMIC_ACQUIRE),
                 __atomic_load_n(s->cq_tail, __ATOMIC_ACQUIRE));
#ifdef SKYLOFT_URING_COMPLETION
    if (s->buf_ring != nullptr) {
      std::fprintf(out, "  buf entries=%u tail=%u recycled=%llu stalled=%zu\n",
                   s->buf_entries, static_cast<unsigned>(s->buf_tail),
                   static_cast<unsigned long long>(
                       s->buf_recycled.load(std::memory_order_acquire)),
                   stalled_.size());
    }
#endif
  }
#endif
  LockHandles();
  for (IoHandle* handle : handles_) {
    std::fprintf(out,
                 "  fd=%d mode=%d ready=%#x closed=%d armed=%d/%d pending=%d "
                 "reader=%d writer=%d",
                 handle->fd, static_cast<int>(handle->mode),
                 handle->ready.load(std::memory_order_acquire),
                 handle->closed.load(std::memory_order_acquire) ? 1 : 0,
                 handle->main_poll_armed.load(std::memory_order_acquire) ? 1 : 0,
                 handle->write_poll_armed.load(std::memory_order_acquire) ? 1 : 0,
                 handle->pending_cqes.load(std::memory_order_acquire),
                 handle->reader.load(std::memory_order_acquire) != nullptr ? 1 : 0,
                 handle->writer.load(std::memory_order_acquire) != nullptr ? 1 : 0);
#ifdef SKYLOFT_URING_COMPLETION
    if (handle->cs != nullptr) {
      IoCompletionState* cs = handle->cs;
      QLock(cs);
      std::fprintf(out, " rx=%zu acc=%zu tx=%zu tx_bytes=%zu tx_off=%zu inflight=%d",
                   cs->rx.size(), cs->accepted.size(), cs->tx.size(), cs->tx_bytes,
                   cs->tx_off, cs->tx_inflight ? 1 : 0);
      QUnlock(cs);
    }
#endif
    std::fprintf(out, "\n");
  }
  UnlockHandles();
  std::fflush(out);
}

void IoEngine::Interrupt(IoHandle* handle) {
  handle->ready.fetch_or(kIoError, std::memory_order_acq_rel);
  UThread* reader = handle->reader.exchange(nullptr, std::memory_order_acq_rel);
  if (reader != nullptr) {
    Runtime::Unpark(reader);
  }
  UThread* writer = handle->writer.exchange(nullptr, std::memory_order_acq_rel);
  if (writer != nullptr) {
    Runtime::Unpark(writer);
  }
}

}  // namespace skyloft
