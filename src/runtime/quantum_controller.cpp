#include "src/runtime/quantum_controller.h"

#include <algorithm>

#include "src/base/logging.h"

namespace skyloft {

DurationNs QuantumControlLaw::Tighten(DurationNs q) const {
  const auto next = static_cast<DurationNs>(static_cast<double>(q) / config_.tighten_div);
  return std::max(config_.quantum_min, next);
}

DurationNs QuantumControlLaw::Relax(DurationNs q) const {
  const auto next = static_cast<DurationNs>(static_cast<double>(q) * config_.relax_mul);
  return std::min(config_.quantum_max, std::max(next, q + 1));
}

DurationNs QuantumControlLaw::Step(DurationNs current, const QuantumWindowSignals& signals) {
  if (signals.total_samples < config_.min_window_samples) {
    // Too few samples to trust (the controller polls faster than requests
    // arrive at low load): hold, and drop the move memory — comparing p99
    // across an idle gap would attribute the gap's noise to our last move.
    last_move_ = Move::kNone;
    return current;
  }
  if (signals.samples == 0) {
    // Traffic flowed but none of it is tail-protected: there is nothing for
    // preemption to shield this window (uniform regime), so the quantum is
    // pure tick/switch overhead — relax toward the ceiling. Drop the tail
    // memory: the next protected window starts a fresh probe downward.
    const DurationNs next = Relax(current);
    direction_ = Direction::kTighten;
    last_move_ = next > current ? Move::kRelax : Move::kNone;
    last_p99_ = -1;
    return next;
  }
  if (signals.p99_slowdown_x100 < 0) {
    last_move_ = Move::kNone;
    return current;
  }
  const double p99 = static_cast<double>(signals.p99_slowdown_x100);
  const double slo = static_cast<double>(config_.slo_slowdown_x100);
  const bool congested = p99 >= config_.tighten_at * slo;
  const bool comfortable = p99 < config_.relax_below * slo;

  DurationNs next = current;
  if (congested) {
    // Hill-climb. Both failure modes inflate p99 — head-of-line blocking
    // (wants a smaller quantum) and tick/preemption overhead (wants a larger
    // one) — and the window cannot tell them apart, so probe: keep moving in
    // the current direction while it does not hurt, and when the previous
    // move made the windowed p99 materially worse, move back the way we
    // came. The reversal keys off last_move_, not direction_: other branches
    // (the comfortable relax, the hold) reset direction_, so it does not
    // reliably point the way of the move being judged.
    const bool worsened = last_p99_ >= 0 && p99 > last_p99_ * (1.0 + config_.flip_worsen_frac);
    if (last_move_ != Move::kNone && worsened) {
      direction_ = last_move_ == Move::kRelax ? Direction::kTighten : Direction::kRelax;
    }
    // Pinned against a clamp: when the SLO is simply unattainable the clamp
    // is the best known point, so park there — bouncing off it every window
    // would spend half the windows at a worse quantum.
    //
    // The two clamps part ways on when to leave. At the *floor*, park
    // unconditionally: a congested window that reads worse than the last
    // cannot distinguish tail noise (a p99 over ~50 samples is roughly the
    // 2nd-worst sample) from a regime shift, and the cost asymmetry is
    // brutal — probing up from the floor in a head-of-line regime multiplies
    // the short-request tail by the relax step for the whole window. The
    // regime that genuinely wants a bigger quantum (uniform tasks where
    // slicing only adds overhead) surfaces as a *comfortable* tail with high
    // tick volume, which the comfortable branch below relaxes on its own.
    // At the *ceiling* no such safe exit exists, so a materially worsened
    // window (a regime shift toward head-of-line blocking) re-probes down.
    bool park = false;
    if (current <= config_.quantum_min) {
      // Unconditional even when the flip above just pointed kRelax (the move
      // into the floor read as worsened): that read is exactly the noise
      // case, and future probes should still head down first.
      park = true;
      direction_ = Direction::kTighten;
    } else if (direction_ == Direction::kRelax && current >= config_.quantum_max) {
      if (worsened) {
        direction_ = Direction::kTighten;
      } else {
        park = true;
      }
    }
    if (!park) {
      next = direction_ == Direction::kTighten ? Tighten(current) : Relax(current);
    }
  } else if (comfortable &&
             signals.ticks_per_core_per_sec > config_.tick_budget_per_core_hz) {
    // Tail has headroom and interrupt volume dominates: shed overhead.
    next = Relax(current);
    direction_ = Direction::kTighten;  // next congestion episode probes down first
  } else {
    // Hysteresis band (or comfortable with ticks within budget): hold.
    direction_ = Direction::kTighten;
  }

  last_move_ = next < current ? Move::kTighten : next > current ? Move::kRelax : Move::kNone;
  last_p99_ = p99;
  return next;
}

QuantumController::QuantumController(QuantumControllerConfig config, Hooks hooks)
    : config_(config),
      hooks_(std::move(hooks)),
      law_(config),
      quantum_(config.quantum_initial) {
  SKYLOFT_CHECK(hooks_.apply_quantum != nullptr);
  SKYLOFT_CHECK(config_.quantum_min > 0);
  SKYLOFT_CHECK(config_.quantum_min <= config_.quantum_initial);
  SKYLOFT_CHECK(config_.quantum_initial <= config_.quantum_max);
}

void QuantumController::WatchSlowdown(const LatencyHistogram* histogram) {
  SKYLOFT_CHECK(histogram != nullptr);
  watched_.push_back(Watched{histogram, *histogram});
}

void QuantumController::WatchProtected(const LatencyHistogram* histogram) {
  SKYLOFT_CHECK(histogram != nullptr);
  protected_watched_.push_back(Watched{histogram, *histogram});
}

void QuantumController::WatchTicks(std::function<std::uint64_t()> reader, int cores) {
  ticks_reader_ = std::move(reader);
  tick_cores_ = cores >= 1 ? cores : 1;
  last_ticks_ = ticks_reader_();
}

void QuantumController::WatchPreempts(std::function<std::uint64_t()> reader) {
  preempts_reader_ = std::move(reader);
  last_preempts_ = preempts_reader_();
}

void QuantumController::Apply(TimeNs now, DurationNs quantum_ns) {
  hooks_.apply_quantum(quantum_ns, /*worker=*/-1);
  if (hooks_.apply_timer_period != nullptr) {
    const auto scaled = static_cast<DurationNs>(static_cast<double>(quantum_ns) *
                                                config_.timer_period_frac);
    hooks_.apply_timer_period(
        std::clamp(scaled, config_.timer_period_min, config_.timer_period_max));
  }
  history_.push_back(HistoryPoint{now, quantum_ns});
  if (tracer_ != nullptr) {
    // Counter event; the task_id field carries the quantum in ns (trace.h).
    tracer_->Record(now, TraceEventType::kQuantumSet, /*worker=*/-1,
                    static_cast<std::uint64_t>(quantum_ns), /*app_id=*/-1);
  }
}

void QuantumController::ApplyInitial(TimeNs now) {
  Apply(now, quantum_);
}

void QuantumController::Poll(TimeNs now) {
  polls_++;
  if (!primed_ || now <= last_poll_) {
    // First poll (or a non-advancing clock): snapshot baselines only.
    for (Watched& w : watched_) {
      w.baseline = *w.histogram;
    }
    for (Watched& w : protected_watched_) {
      w.baseline = *w.histogram;
    }
    if (ticks_reader_ != nullptr) {
      last_ticks_ = ticks_reader_();
    }
    if (preempts_reader_ != nullptr) {
      last_preempts_ = preempts_reader_();
    }
    last_poll_ = now;
    primed_ = true;
    return;
  }

  const double window_sec = static_cast<double>(now - last_poll_) / 1e9;
  LatencyHistogram window;
  for (Watched& w : watched_) {
    window.Merge(w.histogram->DeltaSince(w.baseline));
    w.baseline = *w.histogram;
  }
  LatencyHistogram protected_window;
  for (Watched& w : protected_watched_) {
    protected_window.Merge(w.histogram->DeltaSince(w.baseline));
    w.baseline = *w.histogram;
  }

  // Steer by the protected kind's tail when one is watched, else by the
  // overall tail. The steering p99 is EWMA-smoothed (config.signal_ewma);
  // protected-empty windows leave the EWMA untouched — there is no tail to
  // learn from, and the law reads the emptiness itself as the signal.
  const bool has_protected = !protected_watched_.empty();
  const LatencyHistogram& steer = has_protected ? protected_window : window;
  QuantumWindowSignals signals;
  signals.samples = steer.Count();
  signals.total_samples = watched_.empty() ? steer.Count() : window.Count();
  if (steer.Count() == 0) {
    signals.p99_slowdown_x100 = -1;
  } else {
    const double raw = static_cast<double>(steer.Percentile(0.99));
    smoothed_p99_ = smoothed_p99_ < 0
                        ? raw
                        : config_.signal_ewma * raw + (1 - config_.signal_ewma) * smoothed_p99_;
    signals.p99_slowdown_x100 = static_cast<std::int64_t>(smoothed_p99_);
  }
  if (ticks_reader_ != nullptr) {
    const std::uint64_t ticks = ticks_reader_();
    const std::uint64_t delta = ticks >= last_ticks_ ? ticks - last_ticks_ : 0;
    signals.ticks_per_core_per_sec =
        static_cast<double>(delta) / window_sec / static_cast<double>(tick_cores_);
    last_ticks_ = ticks;
  }
  if (preempts_reader_ != nullptr) {
    const std::uint64_t preempts = preempts_reader_();
    const std::uint64_t delta = preempts >= last_preempts_ ? preempts - last_preempts_ : 0;
    signals.preempts_per_core_per_sec =
        static_cast<double>(delta) / window_sec / static_cast<double>(tick_cores_);
    last_preempts_ = preempts;
  }
  last_poll_ = now;

  const DurationNs next = law_.Step(quantum_, signals);
  if (next != quantum_) {
    quantum_ = next;
    adjustments_++;
    Apply(now, next);
  }
}

}  // namespace skyloft
