// Adaptive per-core preemption-quantum controller (ROADMAP item 2, the
// LibPreemptible direction; DESIGN.md section 13).
//
// Fig. 8b shows the fixed-quantum tradeoff: smaller quanta strictly help
// bimodal workloads (short requests stop waiting behind long ones) but cost
// interrupt volume; larger quanta shed tick overhead but let head-of-line
// blocking explode the short-request tail. No static quantum wins when the
// workload mix shifts, so this slow-path feedback controller retunes the
// quantum (and the preemption-timer period) online from *windowed* latency
// snapshots — LatencyHistogram::DeltaSince against per-poll baselines, since
// cumulative histograms cannot see a regime change — plus interrupt-volume
// counters.
//
// The control law is substrate-neutral and deliberately model-free: it never
// guesses WHY the tail is bad (tick overhead and head-of-line blocking both
// inflate p99), it probes. While p99 slowdown is near the SLO it hill-climbs:
// move the quantum one step in the current direction, and if the windowed
// p99 got materially worse since the last move, flip direction; at a clamp
// it parks (the clamp is the best known point when the SLO is unattainable)
// until the tail materially worsens again. While p99 is comfortable it sheds
// cost: relax the quantum when tick volume exceeds the per-core budget, else
// hold. One wasted probe per regime change is the price of never misreading
// the cause.
//
// Everything here runs on a slow path (a housekeeping thread on the host, a
// periodic event in the sim) — never on a worker, never in a signal handler.
// The fast-path knobs it drives are lock-free to read: HostSched's per-worker
// atomic quantum, Runtime's atomic timer period, the sim policies' plain
// fields mutated from the single event loop.
#ifndef SRC_RUNTIME_QUANTUM_CONTROLLER_H_
#define SRC_RUNTIME_QUANTUM_CONTROLLER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/base/histogram.h"
#include "src/base/time.h"
#include "src/base/trace.h"

namespace skyloft {

struct QuantumControllerConfig {
  // Tail-latency target: windowed p99 slowdown (latency / service time,
  // x100) the controller steers against. 1000 = 10x.
  std::int64_t slo_slowdown_x100 = 1000;
  // Enter the hill-climbing (congested) regime when windowed p99 slowdown
  // reaches tighten_at * SLO; the band between the two thresholds is
  // hysteresis where the quantum holds.
  double tighten_at = 0.8;
  // Below relax_below * SLO the tail is comfortable: relax the quantum if
  // tick volume exceeds the budget, else hold.
  double relax_below = 0.5;
  // Quantum clamp. The max is finite on purpose: the controller can always
  // climb back down, whereas a true "infinite" quantum produces no
  // preemption signal to learn from.
  DurationNs quantum_min = Micros(2);
  DurationNs quantum_max = Micros(200);
  DurationNs quantum_initial = Micros(15);
  // Multiplicative step sizes (tighten divides, relax multiplies).
  double tighten_div = 2.0;
  double relax_mul = 1.5;
  // A previous move is judged harmful (direction flips) when windowed p99
  // worsened by more than this fraction since that move; the same threshold
  // lets the probe leave a clamp it parked at. High enough that window-to-
  // window p99 noise (a p99 over ~50 samples is roughly the 2nd-worst
  // sample) does not trigger spurious excursions; a real regime shift moves
  // p99 by multiples, not tens of percent.
  double flip_worsen_frac = 0.5;
  // Windows with fewer total completions than this are noise: hold.
  std::uint64_t min_window_samples = 32;
  // EWMA weight of the newest window in the steering p99 (1.0 = unsmoothed).
  // A windowed p99 over ~50 samples is roughly the window's 2nd-worst sample
  // — noisy enough to cross the congestion thresholds on luck alone — so
  // controllers polling small windows should smooth. Regime shifts move the
  // tail by multiples, which still crosses a threshold in one or two
  // windows at 0.3-0.5.
  double signal_ewma = 1.0;
  // Per-core tick-rate budget: in the comfortable regime, tick volume above
  // this is overhead worth shedding.
  double tick_budget_per_core_hz = 150e3;
  // Preemption-timer period tracks the quantum: period = quantum *
  // timer_period_frac, clamped to [timer_period_min, timer_period_max].
  // Ticking faster than the quantum keeps quantum-overrun detection latency
  // below one quantum; ticking slower would quantize preemption to the
  // timer instead.
  double timer_period_frac = 0.5;
  DurationNs timer_period_min = Micros(2);
  DurationNs timer_period_max = Micros(100);
};

// One poll window's worth of control inputs, already rate-normalized.
struct QuantumWindowSignals {
  // Steering tail: the protected kind's windowed p99 when protected
  // histograms are watched, else the overall windowed p99 (possibly
  // EWMA-smoothed). -1: no usable tail this window.
  std::int64_t p99_slowdown_x100 = -1;
  // Samples behind the steering tail. 0 with total_samples high is itself a
  // signal: traffic flowed but none of it is tail-protected, so preemption
  // is pure overhead this window (uniform regime) — relax.
  std::uint64_t samples = 0;
  std::uint64_t total_samples = 0;  // all completions in the window
  double ticks_per_core_per_sec = 0;
  double preempts_per_core_per_sec = 0;
};

// The pure control law: quantum in, quantum out, no I/O — unit-testable
// without an engine. Stateful (direction + last windowed p99) because the
// hill-climb compares consecutive windows.
class QuantumControlLaw {
 public:
  explicit QuantumControlLaw(const QuantumControllerConfig& config) : config_(config) {}

  // One control step: returns the quantum to use for the next window
  // (== `current` means hold).
  DurationNs Step(DurationNs current, const QuantumWindowSignals& signals);

  // Last direction the congested-regime probe moves in.
  bool tightening() const { return direction_ == Direction::kTighten; }

 private:
  enum class Direction { kTighten, kRelax };
  enum class Move { kNone, kTighten, kRelax };

  DurationNs Tighten(DurationNs q) const;
  DurationNs Relax(DurationNs q) const;

  QuantumControllerConfig config_;
  Direction direction_ = Direction::kTighten;
  Move last_move_ = Move::kNone;
  double last_p99_ = -1;  // windowed p99 slowdown (x100) at the previous step
};

// Glue around the law: watches cumulative histograms/counters, computes the
// interval window each Poll, applies quantum/timer decisions through caller
// hooks, and records history + quantum_set trace events for plotting.
class QuantumController {
 public:
  struct Hooks {
    // Required: apply `quantum_ns` to `worker` (SchedPolicy::kAllWorkers for
    // every worker). E.g. Runtime::SetQuantum or policy->SetQuantum + sim
    // timer reprogramming.
    std::function<void(DurationNs quantum_ns, int worker)> apply_quantum;
    // Optional: retune the preemption-timer period.
    std::function<void(DurationNs period_ns)> apply_timer_period;
  };

  struct HistoryPoint {
    TimeNs when = 0;
    DurationNs quantum_ns = 0;
  };

  QuantumController(QuantumControllerConfig config, Hooks hooks);

  // Registers a cumulative slowdown histogram (values x100) to steer by.
  // Multiple watches are window-merged. The pointer must outlive the
  // controller; the histogram may be Reset() (e.g. warmup discard) — the
  // saturating delta absorbs it.
  void WatchSlowdown(const LatencyHistogram* histogram);

  // Registers the slowdown histogram of a *protected* request kind (the
  // short requests the quantum exists to shield from head-of-line blocking;
  // typically slowdown_by_kind[kKindShort]). When any protected histogram
  // is watched, the law steers by the protected tail instead of the overall
  // one, and a window with traffic but zero protected completions reads as
  // "nothing to protect" — the quantum relaxes toward the ceiling rather
  // than holding. Same lifetime/Reset contract as WatchSlowdown.
  void WatchProtected(const LatencyHistogram* histogram);

  // Registers cumulative tick / preemption counters (monotonic readers).
  void WatchTicks(std::function<std::uint64_t()> reader, int cores);
  void WatchPreempts(std::function<std::uint64_t()> reader);

  // Attaches a tracer: every quantum change emits a kQuantumSet counter
  // event, so quantum-vs-time plots straight from the Perfetto JSON.
  void SetTracer(SchedTracer* tracer) { tracer_ = tracer; }

  // One control step at time `now` (sim time or host MonotonicNs — any
  // monotonic ns clock, used for rates and history stamps). The first call
  // only primes baselines. Call from a slow path; not signal-safe.
  void Poll(TimeNs now);

  DurationNs quantum() const { return quantum_; }
  const std::vector<HistoryPoint>& history() const { return history_; }
  std::uint64_t polls() const { return polls_; }
  std::uint64_t adjustments() const { return adjustments_; }

  // Applies the initial quantum (and timer period) through the hooks and
  // stamps history at `now`. Call once before the workload starts so the
  // plumbing begins in a known state.
  void ApplyInitial(TimeNs now);

 private:
  struct Watched {
    const LatencyHistogram* histogram;
    LatencyHistogram baseline;
  };

  void Apply(TimeNs now, DurationNs quantum_ns);

  QuantumControllerConfig config_;
  Hooks hooks_;
  QuantumControlLaw law_;
  std::vector<Watched> watched_;
  std::vector<Watched> protected_watched_;
  double smoothed_p99_ = -1;  // EWMA state of the steering tail (x100)
  std::function<std::uint64_t()> ticks_reader_;
  std::function<std::uint64_t()> preempts_reader_;
  int tick_cores_ = 1;
  std::uint64_t last_ticks_ = 0;
  std::uint64_t last_preempts_ = 0;
  SchedTracer* tracer_ = nullptr;
  DurationNs quantum_;
  TimeNs last_poll_ = -1;
  bool primed_ = false;
  std::uint64_t polls_ = 0;
  std::uint64_t adjustments_ = 0;
  std::vector<HistoryPoint> history_;
};

}  // namespace skyloft

#endif  // SRC_RUNTIME_QUANTUM_CONTROLLER_H_
