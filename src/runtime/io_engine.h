// Per-worker I/O engine cores for the host runtime (DESIGN.md section 10).
//
// Skyloft's latency argument needs a real wakeup path: a NIC-driven readiness
// event must turn into a runnable uthread in microseconds. Each runtime
// worker owns one IoEngine — a private epoll set (io_uring behind
// SKYLOFT_IO_URING, falling back to epoll when the kernel refuses) polled
// from the worker's scheduler loop between uthread switches. Connections are
// sharded at accept time (SO_REUSEPORT listeners, one per worker) and an fd
// never changes engines; only the *handler uthread* migrates, via ordinary
// work stealing. A readiness event therefore always fires on the fd's home
// engine, and the resulting Unpark enqueues through that worker's own
// runqueue — the remote-enqueue mailbox path when the handler was stolen.
//
// Blocking is cooperative, not thread-blocking: a uthread that would block on
// a socket parks through WaitForReadable/WaitForWritable (src/runtime/sync.h)
// and the worker runs other uthreads until the engine latches readiness and
// unparks it. Readiness is edge-triggered and latched in the handle:
//
//   engine Poll():  ready.fetch_or(bits); wake parked reader/writer
//   WaitForReadable: wait for the latch, consume it, caller then drains the
//                    socket until EAGAIN (edge-triggered contract)
//
// The io_uring backend additionally offers a COMPLETION data path (DESIGN.md
// section 10, "completion data path"): instead of POLL_ADD readiness followed
// by per-request read/writev/accept4 syscalls, a handle registered in
// kStream/kListener/kDatagram mode keeps a multishot RECV/RECVMSG/ACCEPT
// armed whose completions carry the data itself — payload bytes land in
// engine-owned provided buffers (IORING_REGISTER_PBUF_RING), accepted fds and
// datagrams land in per-handle queues, and responses go out as engine-owned
// async SEND/SENDMSG submissions with short-send continuation. All SQEs are
// batched: one io_uring_enter per worker poll round (zero with the opt-in
// SQPOLL knob), so a worker's steady state is ~0 syscalls per request. The
// same latch/park machinery signals the handler: kIoReadable means "segments
// (or fds) queued", kIoWritable means "send queue drained". Every completion
// feature is probed at ring setup and degrades per-feature to the readiness
// path at runtime — kernels without multishot recv or pbuf rings simply keep
// the POLL_ADD behaviour, logged once.
//
// Handle lifetime: Deregister unlinks the fd from the kernel set, closes it,
// and pushes the handle onto the engine's retire list; the engine frees
// retired handles at the top of a later Poll, after any in-flight event
// batch that might still reference them has been processed (events on a
// closed handle are skipped via the `closed` flag). This lets a handler
// uthread close its connection from whatever worker it was stolen to while
// the home engine is mid-poll. On io_uring, lifetime is completion-counted
// instead: every armed op (poll, recv, accept, send, cancel) owes one
// terminal CQE, and the free point is the expected-CQE count reaching zero
// after close.
#ifndef SRC_RUNTIME_IO_ENGINE_H_
#define SRC_RUNTIME_IO_ENGINE_H_

#include <netinet/in.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/base/compiler.h"
#include "src/base/metrics.h"

namespace skyloft {

struct UThread;
class IoEngine;
struct IoCompletionState;

// Readiness bits latched in IoHandle::ready. kIoHup/kIoError are sticky:
// once the peer is gone the condition never clears, so waits return
// immediately and the handler can tear the connection down.
enum IoReady : unsigned {
  kIoReadable = 1u << 0,
  kIoWritable = 1u << 1,
  kIoHup = 1u << 2,
  kIoError = 1u << 3,
};

// What a Register()ed fd is, which selects the io_uring completion op kept
// armed for it. kReadiness is the classic POLL_ADD/epoll contract (pipes,
// anything the caller read()s itself); the other modes opt into the
// completion data path and silently degrade to kReadiness when the engine
// lacks completion support (check IoEngine::completion()).
enum class IoRegisterMode {
  kReadiness,  // readiness only; caller does its own read/write/accept
  kStream,     // connected TCP: multishot RECV + engine-owned async sends
  kListener,   // listening TCP: multishot ACCEPT into an fd queue
  kDatagram,   // UDP: multishot RECVMSG (peer addr in-buffer) + SENDMSG out
};

// One received completion segment: `data/len` point into the engine's
// provided-buffer arena and stay valid until the consumer returns the buffer
// with IoEngine::RecycleBuffer(buf_id). Consumers may be on any worker (a
// stolen handler); recycling is thread-safe.
struct IoRecvSlice {
  const char* data = nullptr;
  std::uint32_t len = 0;
  std::uint16_t buf_id = 0;
};

// A decoded datagram completion (kDatagram handles): payload view into the
// slice's provided buffer plus the sender address recovered from the
// multishot RECVMSG header that the kernel packs in front of the payload.
struct IoDatagram {
  sockaddr_in peer{};
  const char* data = nullptr;
  std::uint32_t len = 0;
};

// One registered fd. Created by IoEngine::Register, destroyed by the engine
// after Deregister. At most one waiting reader and one waiting writer at a
// time (the KV server's one-uthread-per-connection model; a second concurrent
// waiter on the same direction is a caller bug).
struct alignas(kCacheLineSize) IoHandle {
  int fd = -1;
  IoEngine* engine = nullptr;
  // Effective mode: what Register actually armed (a completion-mode request
  // on an engine without completion support records kReadiness here).
  IoRegisterMode mode = IoRegisterMode::kReadiness;
  std::atomic<unsigned> ready{0};
  std::atomic<UThread*> reader{nullptr};
  std::atomic<UThread*> writer{nullptr};
  std::atomic<bool> closed{false};
  // io_uring backend only. Which ops are in flight — at most one multishot
  // main op (POLL_ADD, RECV, RECVMSG or ACCEPT depending on mode) and one
  // oneshot POLLOUT (RequestWritable is a no-op while armed) — so Deregister
  // knows which to cancel; and a count of terminal CQEs still expected
  // (+1 per armed op, +1 per submitted cancel, +1 held by Deregister itself
  // while it queues the cancels, +1 while parked on the engine's buffer-
  // exhaustion stall list). The kernel does NOT order a cancelled op's CQE
  // before its cancel's CQE (task-work can post it later), so the free point
  // is the count reaching zero after close, not any particular completion.
  std::atomic<bool> main_poll_armed{false};
  std::atomic<bool> write_poll_armed{false};
  std::atomic<int> pending_cqes{0};
  IoHandle* retire_next = nullptr;  // engine retire list linkage
  // Completion-mode state (recv/accept/send queues); null for kReadiness
  // handles and whenever the engine fell back to readiness. Owned by the
  // engine, freed with the handle.
  IoCompletionState* cs = nullptr;
};

// Counter lanes shared by every engine of one Runtime; `worker` indexes the
// lane, so per-engine accounting never bounces a cache line. All pointers are
// owned by the Runtime's MetricGroup (null in standalone/unit contexts).
struct IoEngineStats {
  ShardedCounter* polls = nullptr;         // Poll() calls that found events
  ShardedCounter* events = nullptr;        // readiness events dispatched
  ShardedCounter* wakeups = nullptr;       // parked uthreads unparked
  ShardedCounter* registered = nullptr;    // fds registered (lifetime total)
  ShardedCounter* retired = nullptr;       // fds deregistered
  ShardedCounter* uring_fallbacks = nullptr;  // io_uring refused -> epoll
  // Data-path syscall accounting, the bench's syscalls/request numerator.
  // The engine counts its own io_uring_enter calls; the readiness serving
  // paths self-report their read/write/accept syscalls via CountSys*.
  ShardedCounter* sys_enter = nullptr;     // io_uring_enter calls
  ShardedCounter* sys_read = nullptr;      // read/recvfrom on the data path
  ShardedCounter* sys_write = nullptr;     // writev/sendto on the data path
  ShardedCounter* sys_accept = nullptr;    // accept4 on the data path
  // Completion data-path traffic.
  ShardedCounter* recv_segments = nullptr;    // provided-buffer segments queued
  ShardedCounter* send_ops = nullptr;         // async send submissions armed
  ShardedCounter* completion_accepts = nullptr;  // fds from multishot accept
  ShardedCounter* buf_exhaustions = nullptr;  // recv stalled on empty buf ring
};

struct IoEngineOptions {
  enum class Backend {
    kAuto,    // io_uring when compiled in and the kernel allows it, else epoll
    kEpoll,   // force epoll
    kIoUring, // require io_uring (falls back to epoll with a counted fallback)
  };
  Backend backend = Backend::kAuto;
  int max_events = 256;     // readiness batch drained per Poll
  int uring_entries = 256;  // SQ depth (io_uring backend)
  // Completion data path (io_uring backend; ignored by epoll). `completion`
  // gates the whole path — when false, kStream/kListener/kDatagram registers
  // behave like kReadiness even on a capable kernel (the bench's readiness
  // baseline on the uring build).
  bool completion = true;
  bool sqpoll = false;          // kernel SQ polling thread: zero-enter submits
  int buf_ring_entries = 1024;  // provided buffers per engine (rounded to pow2)
  int buf_size = 2048;          // bytes per provided buffer
  int fixed_file_slots = 4096;  // registered-file table size (0 disables)
  int send_batch = 16;          // max frames folded into one async send
};

class IoEngine {
 public:
  // `worker` is the owning runtime worker's index (stats lane + diagnostics).
  IoEngine(int worker, const IoEngineOptions& options, const IoEngineStats& stats);
  ~IoEngine();

  IoEngine(const IoEngine&) = delete;
  IoEngine& operator=(const IoEngine&) = delete;

  // Registers `fd` with this engine: sets O_NONBLOCK and arms edge-triggered
  // read/write/hup monitoring — or, for completion modes on a completion-
  // capable engine, the mode's multishot op. Callable from any worker
  // (registration is spinlocked); returns null if the kernel rejects the fd.
  SKYLOFT_NO_SWITCH IoHandle* Register(int fd, IoRegisterMode mode = IoRegisterMode::kReadiness);

  // Unlinks the fd, closes it, and retires the handle (freed by a later
  // Poll on the home engine). Callable from any worker; the caller must not
  // touch the handle afterwards.
  SKYLOFT_NO_SWITCH void Deregister(IoHandle* handle);

  // Drains up to max_events readiness/completion events, latches them into
  // handles, and unparks waiters. Returns the number of events dispatched.
  // Must only be called from the owning worker's scheduler loop (single
  // consumer).
  SKYLOFT_NO_SWITCH int Poll();

  // Pushes any deferred submission-queue entries to the kernel now (io_uring
  // backend; no-op on epoll). Poll() batches submissions across scheduler
  // rounds; the worker loop calls this right before idling so a lone queued
  // send is never held hostage to the batching heuristic while the worker
  // sleeps. Home-worker only, like Poll().
  SKYLOFT_NO_SWITCH void FlushSubmissions();

  // Backend hook for write-interest (io_uring arms a oneshot POLLOUT; epoll's
  // persistent EPOLLOUT|EPOLLET makes this a no-op). Called by
  // WaitForWritable before parking. On completion-mode handles this is a
  // no-op too: the parked writer is woken by the send queue draining (its
  // final send CQE latches kIoWritable), not by POLLOUT.
  SKYLOFT_NO_SWITCH void RequestWritable(IoHandle* handle);

  // Re-latches readability on a handle — used by batched accept loops that
  // stop before EAGAIN (the consumed edge must be restored or the remaining
  // backlog would wait for the next connection attempt).
  SKYLOFT_NO_SWITCH static void RelatchReadable(IoHandle* handle);

  // Latches kIoError and unparks any waiters without touching the kernel
  // set — the shutdown path: a server's Stop() interrupts uthreads blocked
  // in WaitFor* so they can observe their stop flag and exit. Callable from
  // any thread.
  SKYLOFT_NO_SWITCH static void Interrupt(IoHandle* handle);

  // ---- Completion data path (io_uring only; see completion()) ----
  //
  // All of these are callable from any worker: the handler uthread migrates
  // via work stealing while the fd's completions keep landing on the home
  // engine, which fills the per-handle queues these drain.

  // Pops the next received segment of a kStream/kDatagram handle. Returns
  // false when no segment is queued (wait for kIoReadable and retry). The
  // caller owns the slice's buffer until RecycleBuffer(slice.buf_id).
  SKYLOFT_NO_SWITCH bool PopRecv(IoHandle* handle, IoRecvSlice* slice);

  // Returns a provided buffer to this engine's ring. Must be called exactly
  // once per popped slice, on the handle's HOME engine (slice buffers belong
  // to the engine that produced them, not to whichever worker consumed).
  SKYLOFT_NO_SWITCH void RecycleBuffer(std::uint16_t buf_id);

  // Pops the next accepted connection fd of a kListener handle; -1 when the
  // queue is empty (wait for kIoReadable and retry).
  SKYLOFT_NO_SWITCH int TakeAccepted(IoHandle* handle);

  // Queues `frame` on a kStream handle's async send queue and arms a send if
  // none is in flight (short sends re-arm from the CQE until drained; frames
  // are coalesced up to send_batch iovecs per submission). Returns the bytes
  // now queued, or 0 if the handle is closed/errored and the frame was
  // dropped. Single writer per handle (the one-uthread-per-connection
  // contract). Backpressure: callers above a high-water mark of
  // SendQueuedBytes should WaitForWritable, which returns once the final
  // send CQE drains the queue.
  SKYLOFT_NO_SWITCH std::size_t SendEnqueue(IoHandle* handle, std::string frame);
  SKYLOFT_NO_SWITCH std::size_t SendQueuedBytes(IoHandle* handle);

  // Fire-and-forget datagram reply on a kDatagram handle (async SENDMSG; the
  // op owns the payload until its CQE). Returns false if the frame was
  // dropped (closed handle or submission-queue pressure) — UDP semantics.
  SKYLOFT_NO_SWITCH bool SendDatagram(IoHandle* handle, const sockaddr_in& to, std::string frame);

  // Decodes a kDatagram slice (kernel-packed io_uring_recvmsg_out + sender
  // address + payload) into an IoDatagram view. False on truncated input.
  static bool ParseDatagram(const IoRecvSlice& slice, IoDatagram* out);

  // Syscall self-reporting hooks for the READINESS data path: the serving
  // loops count their per-request read/writev/accept4/recvfrom/sendto calls
  // here so the bench's syscalls/request column covers both paths.
  SKYLOFT_NO_SWITCH void CountSysRead(std::uint64_t n = 1) {
    if (stats_.sys_read != nullptr) stats_.sys_read->Inc(worker_, n);
  }
  SKYLOFT_NO_SWITCH void CountSysWrite(std::uint64_t n = 1) {
    if (stats_.sys_write != nullptr) stats_.sys_write->Inc(worker_, n);
  }
  SKYLOFT_NO_SWITCH void CountSysAccept(std::uint64_t n = 1) {
    if (stats_.sys_accept != nullptr) stats_.sys_accept->Inc(worker_, n);
  }

  // Diagnostics: one-line-per-handle snapshot of queue depths, latch bits,
  // armed ops and ring positions. Callable from any thread (takes the handle
  // and queue spinlocks briefly); for post-mortem debugging of stuck serving
  // loops, not for hot paths.
  SKYLOFT_NO_SWITCH void DumpDebug(std::FILE* out);

  bool using_io_uring() const { return uring_fd_ >= 0; }
  // True when the completion data path is active: io_uring is up AND the
  // kernel passed the multishot/pbuf-ring/send feature probe AND the
  // `completion` option is on. When false, completion-mode registers degrade
  // to readiness and the caller must use its readiness path.
  bool completion() const { return completion_; }
  int worker() const { return worker_; }

 private:
  struct UringState;  // mmap'd ring pointers (io_uring backend only)
  struct DgramSendOp;  // heap-owned async SENDMSG (payload + msghdr + addr)

  SKYLOFT_NO_SWITCH void DeliverReady(IoHandle* handle, unsigned bits);
  SKYLOFT_NO_SWITCH void FreeRetired();
  SKYLOFT_NO_SWITCH void TrackHandle(IoHandle* handle);
  SKYLOFT_NO_SWITCH void UntrackHandle(IoHandle* handle);

  // Live-handle table spinlock (lock class `io_handles`): annotated so
  // skylint tracks hold windows across the registration/teardown paths.
  SKYLOFT_NO_SWITCH SKYLOFT_ACQUIRES(io_handles) void LockHandles();
  SKYLOFT_NO_SWITCH SKYLOFT_RELEASES(io_handles) void UnlockHandles();

  // io_uring submission-queue spinlock (lock class `uring_sq`); guards the
  // SQ tail/to_submit producer state shared by every worker that arms or
  // cancels an op on this engine.
  SKYLOFT_NO_SWITCH SKYLOFT_ACQUIRES(uring_sq) static void SqLock(UringState* s);
  SKYLOFT_NO_SWITCH SKYLOFT_RELEASES(uring_sq) static void SqUnlock(UringState* s);

  // Per-handle completion-queue spinlock (lock class `io_handle_q`); guards
  // the rx/accepted/tx queues shared between the home engine's reaping and
  // the (possibly stolen) handler uthread. Ordered before uring_sq: send
  // arming nests SqLock inside the queue lock, never the reverse.
  SKYLOFT_NO_SWITCH SKYLOFT_ACQUIRES(io_handle_q) static void QLock(IoCompletionState* cs);
  SKYLOFT_NO_SWITCH SKYLOFT_RELEASES(io_handle_q) static void QUnlock(IoCompletionState* cs);

  // Provided-buffer-ring producer spinlock (lock class `uring_buf`); guards
  // the ring tail shared by every worker that recycles a consumed buffer
  // back to this engine. Leaf lock: nothing nests inside it.
  SKYLOFT_NO_SWITCH SKYLOFT_ACQUIRES(uring_buf) static void BufLock(UringState* s);
  SKYLOFT_NO_SWITCH SKYLOFT_RELEASES(uring_buf) static void BufUnlock(UringState* s);

  // epoll backend.
  SKYLOFT_NO_SWITCH int EpollPoll();

  // io_uring backend (compiled under SKYLOFT_IO_URING; stubs otherwise).
  bool UringInit(int entries);
  void UringShutdown();
  SKYLOFT_NO_SWITCH int UringPoll();
  SKYLOFT_NO_SWITCH bool UringArmPoll(IoHandle* handle, unsigned poll_mask, std::uintptr_t tag);
  // SQE slot claim/commit under the SQ lock. Prepare zeroes the next slot
  // (flushing inline once if the ring is full; null if still full); commit
  // publishes it. Split so SQPOLL's kernel thread can never observe a
  // half-filled entry.
  SKYLOFT_NO_SWITCH SKYLOFT_REQUIRES(uring_sq) void* SqePrepareLocked();
  SKYLOFT_NO_SWITCH SKYLOFT_REQUIRES(uring_sq) void SqeCommitLocked();
  SKYLOFT_NO_SWITCH void UringRemovePoll(IoHandle* handle, std::uintptr_t tag);
  SKYLOFT_NO_SWITCH void UringFinishCqe(IoHandle* handle);
  SKYLOFT_NO_SWITCH void UringSubmit();

  // Completion data path internals (io_uring backend; stubs otherwise).
  bool UringSetupCompletion();  // probe + pbuf ring + registered files
  void UringTeardownCompletion();
  SKYLOFT_NO_SWITCH bool ArmMainOp(IoHandle* handle);  // RECV/RECVMSG/ACCEPT by mode
  SKYLOFT_NO_SWITCH SKYLOFT_REQUIRES(io_handle_q) bool ArmSendLocked(IoHandle* handle);
  SKYLOFT_NO_SWITCH void QueueCancel(IoHandle* handle, std::uintptr_t target_tag);
  SKYLOFT_NO_SWITCH void HandleRecvCqe(IoHandle* handle, std::int32_t res, std::uint32_t flags);
  SKYLOFT_NO_SWITCH void HandleAcceptCqe(IoHandle* handle, std::int32_t res, std::uint32_t flags);
  SKYLOFT_NO_SWITCH void HandleSendCqe(IoHandle* handle, std::int32_t res);
  SKYLOFT_NO_SWITCH void StallHandle(IoHandle* handle);
  SKYLOFT_NO_SWITCH void RearmStalled();
  SKYLOFT_NO_SWITCH void FreeCompletionResources(IoHandle* handle);
  SKYLOFT_NO_SWITCH int AllocFixedSlot(int fd);       // -1 when table off/full
  SKYLOFT_NO_SWITCH void ReleaseFixedSlot(int slot);

  int worker_;
  IoEngineOptions options_;
  IoEngineStats stats_;

  int epoll_fd_ = -1;
  int uring_fd_ = -1;  // >= 0 => io_uring backend active
  UringState* uring_ = nullptr;
  bool completion_ = false;  // completion data path probed + enabled

  std::vector<unsigned char> event_buf_;  // epoll_event array storage

  // Live-handle table for teardown; spinlocked (registration is off the hot
  // path — Poll never takes it).
  std::atomic_flag handles_spin_ = ATOMIC_FLAG_INIT;
  std::vector<IoHandle*> handles_;

  // Retired handles awaiting a safe free point (MPSC: any worker pushes,
  // the home engine's Poll frees).
  std::atomic<IoHandle*> retired_head_{nullptr};
  // Handles that survived one Poll on the retire list and are freed at the
  // next: by then no event batch fetched before their epoll_ctl(DEL) can
  // still be in flight.
  std::vector<IoHandle*> retire_graveyard_;

  // Completion-mode handles whose multishot op died on -ENOBUFS (buffer ring
  // empty) or a transient accept error, awaiting a poll-round re-arm. Home
  // worker only; each entry holds one pending_cqes reference.
  std::vector<IoHandle*> stalled_;
  std::uint64_t last_recycled_ = 0;  // buf-recycle epoch at last re-arm sweep

  // Poll rounds since the last submission flush with SQEs still queued — the
  // deferred-submission clock (home worker only; see UringPoll's flush
  // policy).
  int submit_rounds_ = 0;
};

}  // namespace skyloft

#endif  // SRC_RUNTIME_IO_ENGINE_H_
