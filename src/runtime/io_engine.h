// Per-worker I/O engine cores for the host runtime (DESIGN.md section 10).
//
// Skyloft's latency argument needs a real wakeup path: a NIC-driven readiness
// event must turn into a runnable uthread in microseconds. Each runtime
// worker owns one IoEngine — a private epoll set (io_uring behind
// SKYLOFT_IO_URING, falling back to epoll when the kernel refuses) polled
// from the worker's scheduler loop between uthread switches. Connections are
// sharded at accept time (SO_REUSEPORT listeners, one per worker) and an fd
// never changes engines; only the *handler uthread* migrates, via ordinary
// work stealing. A readiness event therefore always fires on the fd's home
// engine, and the resulting Unpark enqueues through that worker's own
// runqueue — the remote-enqueue mailbox path when the handler was stolen.
//
// Blocking is cooperative, not thread-blocking: a uthread that would block on
// a socket parks through WaitForReadable/WaitForWritable (src/runtime/sync.h)
// and the worker runs other uthreads until the engine latches readiness and
// unparks it. Readiness is edge-triggered and latched in the handle:
//
//   engine Poll():  ready.fetch_or(bits); wake parked reader/writer
//   WaitForReadable: wait for the latch, consume it, caller then drains the
//                    socket until EAGAIN (edge-triggered contract)
//
// Handle lifetime: Deregister unlinks the fd from the kernel set, closes it,
// and pushes the handle onto the engine's retire list; the engine frees
// retired handles at the top of a later Poll, after any in-flight event
// batch that might still reference them has been processed (events on a
// closed handle are skipped via the `closed` flag). This lets a handler
// uthread close its connection from whatever worker it was stolen to while
// the home engine is mid-poll.
#ifndef SRC_RUNTIME_IO_ENGINE_H_
#define SRC_RUNTIME_IO_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "src/base/compiler.h"
#include "src/base/metrics.h"

namespace skyloft {

struct UThread;
class IoEngine;

// Readiness bits latched in IoHandle::ready. kIoHup/kIoError are sticky:
// once the peer is gone the condition never clears, so waits return
// immediately and the handler can tear the connection down.
enum IoReady : unsigned {
  kIoReadable = 1u << 0,
  kIoWritable = 1u << 1,
  kIoHup = 1u << 2,
  kIoError = 1u << 3,
};

// One registered fd. Created by IoEngine::Register, destroyed by the engine
// after Deregister. At most one waiting reader and one waiting writer at a
// time (the KV server's one-uthread-per-connection model; a second concurrent
// waiter on the same direction is a caller bug).
struct alignas(kCacheLineSize) IoHandle {
  int fd = -1;
  IoEngine* engine = nullptr;
  std::atomic<unsigned> ready{0};
  std::atomic<UThread*> reader{nullptr};
  std::atomic<UThread*> writer{nullptr};
  std::atomic<bool> closed{false};
  // io_uring backend only. Which polls are in flight — at most one multishot
  // main poll and one oneshot POLLOUT (RequestWritable is a no-op while
  // armed) — so Deregister knows which to cancel; and a count of terminal
  // CQEs still expected (+1 per armed poll, +1 per submitted POLL_REMOVE,
  // +1 held by Deregister itself while it queues the cancels). The kernel
  // does NOT order a cancelled poll's CQE before its POLL_REMOVE's CQE
  // (task-work can post it later), so the free point is the count reaching
  // zero after close, not any particular completion.
  std::atomic<bool> main_poll_armed{false};
  std::atomic<bool> write_poll_armed{false};
  std::atomic<int> pending_cqes{0};
  IoHandle* retire_next = nullptr;  // engine retire list linkage
};

// Counter lanes shared by every engine of one Runtime; `worker` indexes the
// lane, so per-engine accounting never bounces a cache line. All pointers are
// owned by the Runtime's MetricGroup (null in standalone/unit contexts).
struct IoEngineStats {
  ShardedCounter* polls = nullptr;         // Poll() calls that found events
  ShardedCounter* events = nullptr;        // readiness events dispatched
  ShardedCounter* wakeups = nullptr;       // parked uthreads unparked
  ShardedCounter* registered = nullptr;    // fds registered (lifetime total)
  ShardedCounter* retired = nullptr;       // fds deregistered
  ShardedCounter* uring_fallbacks = nullptr;  // io_uring refused -> epoll
};

struct IoEngineOptions {
  enum class Backend {
    kAuto,    // io_uring when compiled in and the kernel allows it, else epoll
    kEpoll,   // force epoll
    kIoUring, // require io_uring (falls back to epoll with a counted fallback)
  };
  Backend backend = Backend::kAuto;
  int max_events = 256;     // readiness batch drained per Poll
  int uring_entries = 256;  // SQ depth (io_uring backend)
};

class IoEngine {
 public:
  // `worker` is the owning runtime worker's index (stats lane + diagnostics).
  IoEngine(int worker, const IoEngineOptions& options, const IoEngineStats& stats);
  ~IoEngine();

  IoEngine(const IoEngine&) = delete;
  IoEngine& operator=(const IoEngine&) = delete;

  // Registers `fd` with this engine: sets O_NONBLOCK and arms edge-triggered
  // read/write/hup monitoring. Callable from any worker (registration is
  // spinlocked); returns null if the kernel rejects the fd.
  SKYLOFT_NO_SWITCH IoHandle* Register(int fd);

  // Unlinks the fd, closes it, and retires the handle (freed by a later
  // Poll on the home engine). Callable from any worker; the caller must not
  // touch the handle afterwards.
  SKYLOFT_NO_SWITCH void Deregister(IoHandle* handle);

  // Drains up to max_events readiness events, latches them into handles, and
  // unparks waiters. Returns the number of events dispatched. Must only be
  // called from the owning worker's scheduler loop (single consumer).
  SKYLOFT_NO_SWITCH int Poll();

  // Backend hook for write-interest (io_uring arms a oneshot POLLOUT; epoll's
  // persistent EPOLLOUT|EPOLLET makes this a no-op). Called by
  // WaitForWritable before parking.
  SKYLOFT_NO_SWITCH void RequestWritable(IoHandle* handle);

  // Re-latches readability on a handle — used by batched accept loops that
  // stop before EAGAIN (the consumed edge must be restored or the remaining
  // backlog would wait for the next connection attempt).
  SKYLOFT_NO_SWITCH static void RelatchReadable(IoHandle* handle);

  // Latches kIoError and unparks any waiters without touching the kernel
  // set — the shutdown path: a server's Stop() interrupts uthreads blocked
  // in WaitFor* so they can observe their stop flag and exit. Callable from
  // any thread.
  SKYLOFT_NO_SWITCH static void Interrupt(IoHandle* handle);

  bool using_io_uring() const { return uring_fd_ >= 0; }
  int worker() const { return worker_; }

 private:
  struct UringState;  // mmap'd ring pointers (io_uring backend only)

  SKYLOFT_NO_SWITCH void DeliverReady(IoHandle* handle, unsigned bits);
  SKYLOFT_NO_SWITCH void FreeRetired();
  SKYLOFT_NO_SWITCH void TrackHandle(IoHandle* handle);
  SKYLOFT_NO_SWITCH void UntrackHandle(IoHandle* handle);

  // Live-handle table spinlock (lock class `io_handles`): annotated so
  // skylint tracks hold windows across the registration/teardown paths.
  SKYLOFT_NO_SWITCH SKYLOFT_ACQUIRES(io_handles) void LockHandles();
  SKYLOFT_NO_SWITCH SKYLOFT_RELEASES(io_handles) void UnlockHandles();

  // io_uring submission-queue spinlock (lock class `uring_sq`); guards the
  // SQ tail/to_submit producer state shared by every worker that arms or
  // cancels a poll on this engine.
  SKYLOFT_NO_SWITCH SKYLOFT_ACQUIRES(uring_sq) static void SqLock(UringState* s);
  SKYLOFT_NO_SWITCH SKYLOFT_RELEASES(uring_sq) static void SqUnlock(UringState* s);

  // epoll backend.
  SKYLOFT_NO_SWITCH int EpollPoll();

  // io_uring backend (compiled under SKYLOFT_IO_URING; stubs otherwise).
  bool UringInit(int entries);
  void UringShutdown();
  SKYLOFT_NO_SWITCH int UringPoll();
  SKYLOFT_NO_SWITCH bool UringArmPoll(IoHandle* handle, unsigned poll_mask, std::uintptr_t tag);
  SKYLOFT_NO_SWITCH void UringRemovePoll(IoHandle* handle, std::uintptr_t tag);
  SKYLOFT_NO_SWITCH void UringFinishCqe(IoHandle* handle);
  SKYLOFT_NO_SWITCH void UringSubmit();

  int worker_;
  IoEngineOptions options_;
  IoEngineStats stats_;

  int epoll_fd_ = -1;
  int uring_fd_ = -1;  // >= 0 => io_uring backend active
  UringState* uring_ = nullptr;

  std::vector<unsigned char> event_buf_;  // epoll_event array storage

  // Live-handle table for teardown; spinlocked (registration is off the hot
  // path — Poll never takes it).
  std::atomic_flag handles_spin_ = ATOMIC_FLAG_INIT;
  std::vector<IoHandle*> handles_;

  // Retired handles awaiting a safe free point (MPSC: any worker pushes,
  // the home engine's Poll frees).
  std::atomic<IoHandle*> retired_head_{nullptr};
  // Handles that survived one Poll on the retire list and are freed at the
  // next: by then no event batch fetched before their epoll_ctl(DEL) can
  // still be in flight.
  std::vector<IoHandle*> retire_graveyard_;
};

}  // namespace skyloft

#endif  // SRC_RUNTIME_IO_ENGINE_H_
