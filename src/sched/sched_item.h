// SchedItem: the substrate-neutral unit of scheduling.
//
// The paper's Table 2 operations schedule "tasks", but nothing in a policy
// needs to know whether a task is a simulated work segment (src/libos Task)
// or a real user-level thread (src/runtime UThread). Both embed this base:
// intrusive runqueue linkage, a stable id for deterministic tie-breaks, and
// the policy-defined per-task field (the extra word in the paper's task_t).
// Policies written against SchedItem therefore compile unchanged into both
// execution substrates — the repo's version of the paper's generality claim.
#ifndef SRC_SCHED_SCHED_ITEM_H_
#define SRC_SCHED_SCHED_ITEM_H_

#include <cstddef>
#include <cstdint>

#include "src/base/intrusive_list.h"
#include "src/base/mpsc_queue.h"

namespace skyloft {

// Flags passed to SchedPolicy::TaskEnqueue (paper: task_enqueue flags).
enum EnqueueFlags : unsigned {
  kEnqueueNew = 1u << 0,        // first enqueue after creation
  kEnqueueWakeup = 1u << 1,     // task was blocked and is waking (CFS sleeper credit)
  kEnqueuePreempted = 1u << 2,  // task was preempted mid-segment
  kEnqueueYield = 1u << 3,      // task voluntarily yielded
};

// ListNode links the item into a policy's IntrusiveList runqueues; MpscNode
// links it into a worker's lock-free submission mailbox (the two linkages are
// never live at once: an item is either inside a policy or in flight to one).
struct SchedItem : ListNode, MpscNode {
  std::uint64_t id = 0;

  // ---- policy-defined per-task state (paper: the extra field in task_t) ----
  static constexpr std::size_t kPolicyDataSize = 64;
  alignas(8) unsigned char policy_data[kPolicyDataSize] = {};

  template <typename T>
  T* PolicyData() {
    static_assert(sizeof(T) <= kPolicyDataSize, "policy data too large");
    return reinterpret_cast<T*>(policy_data);
  }
};

}  // namespace skyloft

#endif  // SRC_SCHED_SCHED_ITEM_H_
