#include "src/sched/registry.h"

#include <cstring>

namespace skyloft {

namespace {
std::vector<RegisteredPolicy>& MutableRegistry() {
  static std::vector<RegisteredPolicy> registry;
  return registry;
}
}  // namespace

void RegisterPolicy(const RegisteredPolicy& entry) {
  for (const RegisteredPolicy& existing : MutableRegistry()) {
    if (std::strcmp(existing.name, entry.name) == 0) {
      return;
    }
  }
  MutableRegistry().push_back(entry);
}

const std::vector<RegisteredPolicy>& RegisteredPolicies() { return MutableRegistry(); }

std::unique_ptr<SchedPolicy> MakePolicy(const char* name) {
  for (const RegisteredPolicy& entry : MutableRegistry()) {
    if (std::strcmp(entry.name, name) == 0) {
      return entry.make();
    }
  }
  return nullptr;
}

}  // namespace skyloft
