// The general scheduling-operations interface (paper §3.4, Table 2).
//
// A scheduling policy implements these operations and nothing else; the
// engines drive it. Two kinds of engine exist:
//   - the simulated engines (src/libos: per-CPU with user-space timer
//     interrupts, or centralized with a dispatcher), scheduling simulated
//     Tasks, and
//   - the host runtime (src/runtime), scheduling real user-level threads
//     through the HostSchedCore adapter.
// This header deliberately depends only on src/base: the same policy
// translation units compile into both substrates. That is the paper's
// central claim of generality — RR, CFS, EEVDF, Shinjuku,
// Shinjuku+Shenango and preemptive work stealing are each a few hundred
// lines against this interface.
#ifndef SRC_SCHED_POLICY_H_
#define SRC_SCHED_POLICY_H_

#include <cstddef>
#include <vector>

#include "src/base/compiler.h"
#include "src/base/time.h"
#include "src/sched/sched_item.h"

namespace skyloft {

// Read-only view of engine state offered to policies (e.g. for stealing
// decisions and congestion detection). Implemented by the simulated Engine
// and by the host runtime's per-shard view.
class EngineView {
 public:
  virtual ~EngineView() = default;
  virtual TimeNs Now() const = 0;
  virtual int NumWorkers() const = 0;
  // The physical core (sim) or global worker index (host) behind a worker.
  virtual int WorkerCore(int index) const = 0;
  virtual bool IsWorkerIdle(int index) const = 0;
};

// Every Table 2 operation is SKYLOFT_NO_SWITCH: policies run under the host
// runtime's shard locks (or inside the sim event loop) and must never reach
// a context-switch primitive. skylint enforces this transitively over every
// policy implementation.
class SchedPolicy {
 public:
  virtual ~SchedPolicy() = default;

  // sched_init: policy-defined scheduler state.
  SKYLOFT_NO_SWITCH virtual void SchedInit(EngineView* view) { view_ = view; }

  // task_init / task_terminate: manage the policy-defined field of a task.
  SKYLOFT_NO_SWITCH virtual void TaskInit(SchedItem* item) {}
  SKYLOFT_NO_SWITCH virtual void TaskTerminate(SchedItem* item) {}

  // task_enqueue: puts a task on a runqueue. `worker_hint` is the engine
  // worker index the event originated from (kInvalidCore-like -1 when none).
  SKYLOFT_NO_SWITCH virtual void TaskEnqueue(SchedItem* item, unsigned flags,
                                             int worker_hint) = 0;

  // task_dequeue: selects and removes the next task for the given worker.
  // Centralized policies ignore `worker` (single global queue).
  SKYLOFT_NO_SWITCH virtual SchedItem* TaskDequeue(int worker) = 0;

  // sched_timer_tick: updates policy state on each tick; returns true when
  // the current task must be preempted. `ran_ns` is wall time the task has
  // run since it was last charged; `current` may be nullptr (idle tick).
  SKYLOFT_NO_SWITCH virtual bool SchedTimerTick(int worker, SchedItem* current,
                                                DurationNs ran_ns) = 0;

  // sched_balance: per-CPU only; invoked when `worker` would go idle.
  SKYLOFT_NO_SWITCH virtual void SchedBalance(int worker) {}

  // True when the policy uses a single global queue fed by a dispatcher
  // (sched_poll model) rather than per-CPU queues.
  SKYLOFT_NO_SWITCH virtual bool IsCentralized() const { return false; }

  // ---- Lock-free driver capability ----
  //
  // A policy that returns true declares that its scheduling discipline is
  // exactly "per-worker FIFO + steal-half when idle": the host runtime may
  // then bypass the policy's Table 2 methods entirely and run the task flow
  // on its lock-free two-level runqueue (MPSC mailbox -> Chase-Lev deque,
  // DESIGN.md section 9). The policy object still provides Name() and the
  // preemption quantum below; its TaskEnqueue/TaskDequeue are never called.
  // Policies with cross-task ordering state (CFS, EEVDF, RR's cyclic order,
  // centralized dispatch) must keep the default false and ride the
  // shard-mutex driver.
  SKYLOFT_NO_SWITCH virtual bool SupportsLockFree() const { return false; }

  // Preemption quantum the lock-free driver should enforce on timer ticks
  // (preempt when a task has run this long and work is waiting). 0 disables
  // tick preemption. Only consulted when SupportsLockFree() is true.
  SKYLOFT_NO_SWITCH virtual DurationNs LockFreeQuantumNs() const { return 0; }

  // ---- Dynamic quantum control ----
  //
  // Worker argument meaning "every worker" for SetQuantum/QuantumFor.
  static constexpr int kAllWorkers = -1;

  // Updates the policy's preemption quantum (time slice / granularity) for
  // `worker`, or for all workers when kAllWorkers. Drivers call this under
  // the same serialization as the Table 2 methods (shard lock on the host,
  // event loop in the sim), so implementations may use plain fields; the
  // change takes effect from the next tick/enqueue that consults it —
  // in-flight slices are not re-evaluated retroactively. `quantum_ns` <= 0
  // means "infinite" (disable tick preemption). The default ignores the
  // request, for policies with no quantum notion (e.g. FIFO).
  SKYLOFT_NO_SWITCH virtual void SetQuantum(DurationNs quantum_ns, int worker) {}

  // The quantum currently in force for `worker` (same units/sentinel rules as
  // SetQuantum); 0 when the policy has no quantum notion.
  SKYLOFT_NO_SWITCH virtual DurationNs QuantumFor(int worker) const { return 0; }

  // Number of runnable tasks currently queued (all queues). Used by engines
  // for work-conservation checks and by core allocators for congestion.
  SKYLOFT_NO_SWITCH virtual std::size_t QueuedTasks() const = 0;

  virtual const char* Name() const = 0;

 protected:
  EngineView* view_ = nullptr;
};

// Per-worker quantum table backing the built-in policies' SetQuantum /
// QuantumFor implementations: a global value plus sparse per-worker
// overrides, normalized so requests <= 0 become the policy's "infinite"
// sentinel. Grows on demand so it works even when SchedInit was never called
// (the host's lock-free driver bypasses it). Callers serialize access the
// same way they serialize the Table 2 methods.
class QuantumTable {
 public:
  QuantumTable(DurationNs global, DurationNs infinite)
      : infinite_(infinite), global_(Normalize(global)) {}

  SKYLOFT_NO_SWITCH void Set(DurationNs quantum_ns, int worker) {
    const DurationNs q = Normalize(quantum_ns);
    if (worker < 0) {
      global_ = q;
      global_explicit_ = true;
      overrides_.clear();
      return;
    }
    if (static_cast<std::size_t>(worker) >= overrides_.size()) {
      overrides_.resize(static_cast<std::size_t>(worker) + 1, kUnset);
    }
    overrides_[static_cast<std::size_t>(worker)] = q;
  }

  SKYLOFT_NO_SWITCH DurationNs For(int worker) const {
    if (worker >= 0 && static_cast<std::size_t>(worker) < overrides_.size() &&
        overrides_[static_cast<std::size_t>(worker)] != kUnset) {
      return overrides_[static_cast<std::size_t>(worker)];
    }
    return global_;
  }

  // True when SetQuantum has explicitly pinned a value for `worker` (either
  // per-worker or globally). Policies whose default slice is computed (CFS's
  // sched_latency / nr_runnable) bypass the formula only in that case.
  SKYLOFT_NO_SWITCH bool IsExplicit(int worker) const {
    if (worker >= 0 && static_cast<std::size_t>(worker) < overrides_.size() &&
        overrides_[static_cast<std::size_t>(worker)] != kUnset) {
      return true;
    }
    return global_explicit_;
  }

 private:
  static constexpr DurationNs kUnset = -1;

  DurationNs Normalize(DurationNs q) const { return q <= 0 ? infinite_ : q; }

  DurationNs infinite_;
  DurationNs global_;
  bool global_explicit_ = false;
  std::vector<DurationNs> overrides_;
};

}  // namespace skyloft

#endif  // SRC_SCHED_POLICY_H_
