// Registry of scheduling policies available to either substrate.
//
// Registration is explicit (call RegisterStandardPolicies() or
// RegisterPolicy yourself) rather than via static initializers: the
// policy library is a static archive and the linker would silently drop
// unreferenced registration TUs.
#ifndef SRC_SCHED_REGISTRY_H_
#define SRC_SCHED_REGISTRY_H_

#include <memory>
#include <vector>

#include "src/sched/policy.h"

namespace skyloft {

struct RegisteredPolicy {
  const char* name;
  bool centralized;
  std::unique_ptr<SchedPolicy> (*make)();
};

// Registers a factory; duplicate names are ignored (idempotent re-registration).
void RegisterPolicy(const RegisteredPolicy& entry);

const std::vector<RegisteredPolicy>& RegisteredPolicies();

// nullptr when `name` is unknown.
std::unique_ptr<SchedPolicy> MakePolicy(const char* name);

}  // namespace skyloft

#endif  // SRC_SCHED_REGISTRY_H_
