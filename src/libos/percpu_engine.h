// Per-CPU scheduling engine (paper Fig. 2a, §5.1).
//
// Each worker core has its own runqueue (owned by the policy) and is
// preempted by its local APIC timer. In Skyloft mode the timer interrupt is
// delegated to user space with the UINV + SN-bit trick (§3.2) and costs 642
// cycles to take; in Linux-baseline mode the same tick takes the legacy
// kernel path at CONFIG_HZ with kernel-level costs — that difference is the
// whole story of Fig. 5.
#ifndef SRC_LIBOS_PERCPU_ENGINE_H_
#define SRC_LIBOS_PERCPU_ENGINE_H_

#include <vector>

#include "src/libos/engine.h"
#include "src/uintr/upid.h"

namespace skyloft {

enum class TickPath {
  kUserTimer,     // Skyloft: LAPIC timer delegated to user space
  kKernelTimer,   // Linux baseline: tick handled in the kernel
  kUtimerIpi,     // software timer: a dedicated core sends user IPIs (§5.3)
  kUserDeadline,  // User-Timer Events (§6): per-task deadline, no periodic tick
  kNone,          // no timer (pure run-to-completion)
};

struct PerCpuEngineConfig {
  EngineConfig base;
  std::int64_t timer_hz = 100'000;  // Table 5: Skyloft runs TIMER_HZ = 100000
  TickPath tick_path = TickPath::kUserTimer;

  // Kernel-tick handler cost (scheduler_tick + IRQ entry/exit). Only used on
  // the kKernelTimer path.
  DurationNs kernel_tick_cost_ns = 1500;

  // Extra cost charged when a *kernel* preemption actually switches threads
  // (Linux context switch, §5.4: 1124 ns). Skyloft pays only the user-level
  // switch, which AssignTask already charges.
  DurationNs preempt_extra_ns = 0;

  // Whether idle workers invoke sched_balance (work stealing).
  bool steal_on_idle = true;

  // Dedicated core emulating a timer by sending user IPIs to every worker
  // each period (kUtimerIpi only). Must not be a worker core.
  CoreId utimer_core = kInvalidCore;

  // Deadline horizon for kUserDeadline: the user timer is programmed to
  // run_start + quantum on every assignment and re-armed on every tick the
  // task survives. 0 derives it from timer_hz.
  DurationNs deadline_quantum = 0;
};

class PerCpuEngine : public Engine {
 public:
  PerCpuEngine(Machine* machine, UintrChip* chip, KernelSim* kernel, SchedPolicy* policy,
               PerCpuEngineConfig config);

  void Start() override;

  // Total timer interrupts taken (all cores).
  std::uint64_t ticks() const { return ticks_; }

 protected:
  void OnWorkerFree(int worker, DurationNs overhead_ns) override;
  void OnTaskAvailable(int worker_hint) override;
  void OnAssigned(int worker) override;
  void OnUnassigned(int worker) override;

 private:
  void OnUserTick(int worker, const UintrFrame& frame);
  void OnKernelTick(int worker);
  void UtimerRound();
  void Tick(int worker, DurationNs handler_cost_ns, DurationNs preempt_extra_ns);
  bool TryRunNext(int worker, DurationNs overhead_ns);

  PerCpuEngineConfig pcfg_;
  std::vector<Upid> upids_;           // one per worker (timer-delegation UPIDs)
  std::vector<int> self_uitt_index_;  // per-worker self-IPI UITT entry
  std::uint64_t ticks_ = 0;
};

}  // namespace skyloft

#endif  // SRC_LIBOS_PERCPU_ENGINE_H_
