#include "src/libos/central_engine.h"

#include <algorithm>

#include "src/base/logging.h"

namespace skyloft {

namespace {
// User-interrupt vector (PIR bit) used for dispatcher->worker preemptions.
constexpr int kPreemptUivec = 2;
}  // namespace

CentralizedEngine::CentralizedEngine(Machine* machine, UintrChip* chip, KernelSim* kernel,
                                     SchedPolicy* policy, CentralizedEngineConfig config)
    : Engine(machine, chip, kernel, policy, config.base), ccfg_(std::move(config)) {
  const auto n = static_cast<std::size_t>(NumWorkers());
  preempt_upids_.resize(n);
  preempt_uitt_.resize(n, -1);
  assign_gen_.resize(n, 0);
  preempt_target_gen_.resize(n, 0);
  quantum_ev_.resize(n, kInvalidEventId);
  owner_.resize(n, Owner::kLc);
  be_tasks_.resize(n, nullptr);
  for (int w = 0; w < NumWorkers(); w++) {
    SKYLOFT_CHECK(WorkerCore(w) != ccfg_.dispatcher_core)
        << "dispatcher core must not be a worker";
  }
}

void CentralizedEngine::Start() {
  SKYLOFT_CHECK(!apps_.empty()) << "create at least one app before Start()";
  SKYLOFT_CHECK(!started_);
  started_ = true;

  if (ccfg_.mech == CentralizedEngineConfig::Mech::kUserIpi) {
    for (int w = 0; w < NumWorkers(); w++) {
      const CoreId core = WorkerCore(w);
      Upid& upid = preempt_upids_[static_cast<std::size_t>(w)];
      upid.sn = false;
      upid.nv = kUserIpiVector;
      upid.ndst = core;
      UserInterruptUnit& unit = chip_->unit(core);
      unit.SetUinv(kUserIpiVector);
      unit.SetActiveUpid(&upid);
      unit.SetHandler([this, w](const UintrFrame& frame) { OnPreemptIpi(w, frame); });
      preempt_uitt_[static_cast<std::size_t>(w)] =
          chip_->RegisterUittEntry(ccfg_.dispatcher_core, &upid, kPreemptUivec);
    }
  }

  if (ccfg_.core_alloc) {
    machine_->sim().SchedulePeriodic(machine_->sim().Now() + ccfg_.alloc_period,
                                     ccfg_.alloc_period, [this] { AllocatorTick(); });
  }
}

void CentralizedEngine::AttachBestEffortApp(App* app) {
  SKYLOFT_CHECK(app->best_effort);
  be_app_ = app;
}

int CentralizedEngine::BestEffortWorkers() const {
  int n = 0;
  for (const Owner owner : owner_) {
    if (owner == Owner::kBe) {
      n++;
    }
  }
  return n;
}

DurationNs CentralizedEngine::DispatcherOccupy(DurationNs occupancy_ns) {
  // The dispatcher handles one operation at a time; later operations wait.
  const TimeNs now = Now();
  const DurationNs wait = std::max<DurationNs>(0, dispatcher_free_at_ - now);
  dispatcher_free_at_ = now + wait + occupancy_ns;
  return wait;
}

bool CentralizedEngine::Dispatch(int worker, DurationNs overhead_ns) {
  Task* task = static_cast<Task*>(policy_->TaskDequeue(/*worker=*/-1));
  if (task == nullptr) {
    return false;
  }
  const DurationNs wait = DispatcherOccupy(ccfg_.dispatch_occupancy_ns);
  AssignTask(worker, task, overhead_ns + wait + ccfg_.dispatch_ns);
  return true;
}

void CentralizedEngine::OnWorkerFree(int worker, DurationNs overhead_ns) {
  if (owner_[static_cast<std::size_t>(worker)] == Owner::kBe) {
    ResumeBatch(worker, overhead_ns);
    return;
  }
  Dispatch(worker, overhead_ns);
}

void CentralizedEngine::OnTaskAvailable(int worker_hint) {
  for (int w = 0; w < NumWorkers(); w++) {
    if (owner_[static_cast<std::size_t>(w)] == Owner::kLc && IsWorkerIdle(w)) {
      Dispatch(w, 0);
      return;
    }
  }
}

void CentralizedEngine::OnAssigned(int worker) {
  assign_gen_[static_cast<std::size_t>(worker)]++;
  if (owner_[static_cast<std::size_t>(worker)] == Owner::kLc) {
    ArmQuantum(worker);
  }
}

void CentralizedEngine::OnUnassigned(int worker) {
  EventId& ev = quantum_ev_[static_cast<std::size_t>(worker)];
  if (ev != kInvalidEventId) {
    machine_->sim().Cancel(ev);
    ev = kInvalidEventId;
  }
}

void CentralizedEngine::ArmQuantum(int worker) {
  if (ccfg_.quantum <= 0 || ccfg_.mech == CentralizedEngineConfig::Mech::kNone) {
    return;
  }
  const std::uint64_t gen = assign_gen_[static_cast<std::size_t>(worker)];
  // run_start is always >= Now() here (assignment charges overheads forward).
  const TimeNs deadline = runs_[static_cast<std::size_t>(worker)].run_start + ccfg_.quantum;
  quantum_ev_[static_cast<std::size_t>(worker)] =
      machine_->sim().ScheduleAt(deadline, [this, worker, gen] { QuantumExpired(worker, gen); });
}

void CentralizedEngine::QuantumExpired(int worker, std::uint64_t gen) {
  quantum_ev_[static_cast<std::size_t>(worker)] = kInvalidEventId;
  if (assign_gen_[static_cast<std::size_t>(worker)] != gen ||
      runs_[static_cast<std::size_t>(worker)].current == nullptr) {
    return;  // the task already left the core
  }
  // Don't bother preempting when nothing is waiting: run-to-completion is
  // optimal for an empty queue (the dispatcher knows, it owns the queue).
  if (policy_->QueuedTasks() == 0) {
    // Re-check one quantum from now for the same occupancy generation.
    quantum_ev_[static_cast<std::size_t>(worker)] = machine_->sim().ScheduleAfter(
        ccfg_.quantum, [this, worker, gen] { QuantumExpired(worker, gen); });
    return;
  }
  SendPreempt(worker);
}

void CentralizedEngine::SendPreempt(int worker) {
  preempts_sent_++;
  preempt_target_gen_[static_cast<std::size_t>(worker)] =
      assign_gen_[static_cast<std::size_t>(worker)];
  switch (ccfg_.mech) {
    case CentralizedEngineConfig::Mech::kUserIpi: {
      const DurationNs send_cost =
          chip_->SendUipi(ccfg_.dispatcher_core, preempt_uitt_[static_cast<std::size_t>(worker)]);
      DispatcherOccupy(send_cost);
      break;
    }
    case CentralizedEngineConfig::Mech::kModelled: {
      DispatcherOccupy(ccfg_.preempt_delivery_ns / 4);  // sender-side part
      const std::uint64_t gen = preempt_target_gen_[static_cast<std::size_t>(worker)];
      machine_->sim().ScheduleAfter(ccfg_.preempt_delivery_ns, [this, worker, gen] {
        if (assign_gen_[static_cast<std::size_t>(worker)] == gen) {
          PreemptWorker(worker, ccfg_.preempt_receive_ns);
        }
      });
      break;
    }
    case CentralizedEngineConfig::Mech::kNone:
      break;
  }
}

void CentralizedEngine::OnPreemptIpi(int worker, const UintrFrame& frame) {
  if (assign_gen_[static_cast<std::size_t>(worker)] !=
      preempt_target_gen_[static_cast<std::size_t>(worker)]) {
    // The targeted task left the core while the IPI was in flight; absorb
    // the handler cost only.
    ChargeOverhead(worker, frame.receive_cost_ns);
    return;
  }
  PreemptWorker(worker, frame.receive_cost_ns);
}

void CentralizedEngine::AllocatorTick() {
  // Re-armed in place by the periodic event that invoked us.
  if (be_app_ == nullptr) {
    return;
  }
  const std::size_t backlog = policy_->QueuedTasks();
  if (backlog >= ccfg_.congestion_threshold) {
    // LC is congested: take a core back from the batch application.
    for (int w = 0; w < NumWorkers(); w++) {
      if (owner_[static_cast<std::size_t>(w)] == Owner::kBe) {
        ReclaimCore(w);
        return;
      }
    }
    return;
  }
  if (backlog == 0) {
    // LC is quiet: grant one idle LC core to the batch application, keeping
    // a minimum reserve for latency spikes.
    int lc_workers = NumWorkers() - BestEffortWorkers();
    if (lc_workers <= ccfg_.min_lc_workers) {
      return;
    }
    for (int w = NumWorkers() - 1; w >= 0; w--) {
      if (owner_[static_cast<std::size_t>(w)] == Owner::kLc && IsWorkerIdle(w)) {
        GrantCore(w);
        return;
      }
    }
  }
}

void CentralizedEngine::GrantCore(int worker) {
  owner_[static_cast<std::size_t>(worker)] = Owner::kBe;
  ResumeBatch(worker, 0);
}

void CentralizedEngine::ReclaimCore(int worker) {
  owner_[static_cast<std::size_t>(worker)] = Owner::kLc;
  // Preempt the batch task with the configured mechanism; once the
  // preemption lands, the worker switches back to the LC application.
  const DurationNs delivery = ccfg_.mech == CentralizedEngineConfig::Mech::kUserIpi
                                  ? machine_->costs().UserIpiDeliveryNs(
                                        machine_->CrossNuma(ccfg_.dispatcher_core,
                                                            WorkerCore(worker)))
                                  : ccfg_.preempt_delivery_ns;
  const DurationNs receive = ccfg_.mech == CentralizedEngineConfig::Mech::kUserIpi
                                 ? machine_->costs().UserIpiReceiveNs()
                                 : ccfg_.preempt_receive_ns;
  preempts_sent_++;
  machine_->sim().ScheduleAfter(delivery, [this, worker, receive] {
    Task* batch = DetachCurrent(worker);
    (void)batch;  // kept in be_tasks_; re-segmented on the next grant
    if (runs_[static_cast<std::size_t>(worker)].current == nullptr) {
      Dispatch(worker, receive);
    }
  });
}

void CentralizedEngine::ResumeBatch(int worker, DurationNs overhead_ns) {
  if (owner_[static_cast<std::size_t>(worker)] != Owner::kBe) {
    return;
  }
  SKYLOFT_CHECK(be_app_ != nullptr);
  Task*& batch = be_tasks_[static_cast<std::size_t>(worker)];
  if (batch == nullptr) {
    batch = NewTask(be_app_, ccfg_.be_segment_ns, /*kind=*/3);
    batch->submit_time = Now();
    batch->on_segment_end = [](Task*) { return SegmentAction::kBlock; };
  }
  batch->remaining_ns = ccfg_.be_segment_ns;
  batch->state = TaskState::kRunnable;
  AssignTask(worker, batch, overhead_ns);
}

}  // namespace skyloft
