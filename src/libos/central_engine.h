// Centralized scheduling engine (paper Fig. 2b, §5.2).
//
// A dedicated dispatcher core maintains the global runqueue (owned by the
// policy), hands tasks to idle workers (sched_poll), and preempts workers
// whose quantum expired by sending user IPIs with SENDUIPI. The dispatcher
// is a serial resource: its per-dispatch occupancy bounds maximum
// throughput, which is how ghOSt's heavier kernel-transaction dispatch shows
// up in Fig. 7.
//
// With `core_alloc` enabled the engine also implements Shenango's core
// allocation policy (§5.2 "Multiple workloads"): a congestion check every
// 5 us reclaims cores from the best-effort application when the LC queue
// backs up, and grants idle cores to it when the LC application is quiet.
#ifndef SRC_LIBOS_CENTRAL_ENGINE_H_
#define SRC_LIBOS_CENTRAL_ENGINE_H_

#include <vector>

#include "src/libos/engine.h"
#include "src/uintr/upid.h"

namespace skyloft {

struct CentralizedEngineConfig {
  EngineConfig base;  // base.worker_cores excludes the dispatcher core
  CoreId dispatcher_core = 0;

  // Preemption quantum for LC tasks; 0 disables quantum preemption.
  DurationNs quantum = Micros(30);

  enum class Mech {
    kUserIpi,   // Skyloft: SENDUIPI through the UINTR chip model
    kModelled,  // fixed delivery/receive costs (Shinjuku posted IPIs, ghOSt)
    kNone,      // no preemption mechanism
  };
  Mech mech = Mech::kUserIpi;
  DurationNs preempt_delivery_ns = 0;  // kModelled only
  DurationNs preempt_receive_ns = 0;   // kModelled only

  // Worker-side cost of accepting a dispatched task (cache-line handoff).
  DurationNs dispatch_ns = 100;
  // Dispatcher-side serial occupancy per dispatch decision.
  DurationNs dispatch_occupancy_ns = 50;

  // ---- Shenango-style core allocation (Fig. 7b/7c) ----
  bool core_alloc = false;
  DurationNs alloc_period = Micros(5);
  std::size_t congestion_threshold = 1;  // queued LC tasks => congested
  int min_lc_workers = 1;                // never grant the last LC worker away
  DurationNs be_segment_ns = Millis(1);  // batch work chunk size
};

class CentralizedEngine : public Engine {
 public:
  CentralizedEngine(Machine* machine, UintrChip* chip, KernelSim* kernel, SchedPolicy* policy,
                    CentralizedEngineConfig config);

  void Start() override;

  // Registers `app` as the co-located best-effort application. Its work is
  // an endless stream of be_segment_ns chunks on whatever cores the
  // allocator grants. Requires core_alloc (otherwise the app never runs,
  // reproducing Shinjuku's zero BE share in Fig. 7c).
  void AttachBestEffortApp(App* app);

  // Number of workers currently owned by the best-effort app.
  int BestEffortWorkers() const;

  std::uint64_t preempts_sent() const { return preempts_sent_; }

 protected:
  void OnWorkerFree(int worker, DurationNs overhead_ns) override;
  void OnTaskAvailable(int worker_hint) override;
  void OnAssigned(int worker) override;
  void OnUnassigned(int worker) override;

 private:
  enum class Owner { kLc, kBe };

  bool Dispatch(int worker, DurationNs overhead_ns);
  void ArmQuantum(int worker);
  void QuantumExpired(int worker, std::uint64_t gen);
  void SendPreempt(int worker);
  void OnPreemptIpi(int worker, const UintrFrame& frame);
  void AllocatorTick();
  void GrantCore(int worker);
  void ReclaimCore(int worker);
  void ResumeBatch(int worker, DurationNs overhead_ns);
  DurationNs DispatcherOccupy(DurationNs occupancy_ns);

  CentralizedEngineConfig ccfg_;
  std::vector<Upid> preempt_upids_;
  std::vector<int> preempt_uitt_;
  std::vector<std::uint64_t> assign_gen_;
  std::vector<std::uint64_t> preempt_target_gen_;
  std::vector<EventId> quantum_ev_;
  std::vector<Owner> owner_;
  std::vector<Task*> be_tasks_;
  App* be_app_ = nullptr;
  TimeNs dispatcher_free_at_ = 0;
  std::uint64_t preempts_sent_ = 0;
};

}  // namespace skyloft

#endif  // SRC_LIBOS_CENTRAL_ENGINE_H_
