// Engine: shared machinery of Skyloft's scheduling loops.
//
// An engine owns a set of worker cores, the applications running on them,
// and the task pool; it charges every modeled overhead (context switches,
// interrupt handling, inter-application switches through the kernel module)
// to the affected core by shifting that core's segment-completion event.
//
// Two engines derive from this base (mirroring §3.4's two scheduler models):
//   - PerCpuEngine: per-core runqueues + user-space timer-interrupt
//     preemption (Fig. 2a)
//   - CentralizedEngine: dispatcher core + global queue + user-IPI
//     preemption (Fig. 2b)
#ifndef SRC_LIBOS_ENGINE_H_
#define SRC_LIBOS_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/base/metrics.h"
#include "src/base/trace.h"
#include "src/kernelsim/kernel_sim.h"
#include "src/libos/app.h"
#include "src/libos/engine_stats.h"
#include "src/sched/policy.h"
#include "src/libos/task.h"
#include "src/simcore/machine.h"
#include "src/uintr/uintr_chip.h"

namespace skyloft {

struct EngineConfig {
  std::vector<CoreId> worker_cores;

  // Cost of switching between user threads of the same application (fast
  // path, §4.1). The paper measures a 37 ns yield; a full switch through the
  // scheduler including dequeue is ~100 ns.
  DurationNs local_switch_ns = 100;

  // Extra per-wakeup cost charged when a previously blocked task is placed
  // on a core (kernel baselines pay the 2471 ns kernel wake+switch path;
  // Skyloft pays nothing beyond the local switch).
  DurationNs wakeup_extra_ns = 0;

  // When false, SchedTimerTick preemption decisions are ignored
  // (run-to-completion / FIFO behaviour).
  bool preemption = true;

  // Idle-core parking model (Shenango baseline): a worker idle for longer
  // than the threshold is considered parked, and assigning work to it costs
  // an extra kernel unpark. Skyloft workers spin-poll and pay nothing.
  DurationNs idle_park_threshold_ns = INT64_MAX;
  DurationNs idle_unpark_cost_ns = 0;
};

class Engine : public EngineView {
 public:
  Engine(Machine* machine, UintrChip* chip, KernelSim* kernel, SchedPolicy* policy,
         EngineConfig config);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Creates an application with one kernel thread per worker core. The first
  // application's threads start active; later ones are parked (§4.1) via
  // skyloft_park_on_cpu — a switch point for the simulated kthreads.
  SKYLOFT_MAY_SWITCH App* CreateApp(const std::string& name, bool best_effort = false);

  // Allocates (or recycles) a task with one work segment of `service_ns`.
  Task* NewTask(App* app, DurationNs service_ns, int kind = 0);

  // Submits a new task to the scheduler (task_init + task_enqueue).
  void Submit(Task* task, int worker_hint = -1);

  // Wakes a blocked task with its next work segment (task_wakeup).
  void WakeTask(Task* task, DurationNs service_ns);

  // §6 "Blocking events": the task running on `worker` takes a page fault
  // lasting `fault_ns`. Its application's kernel thread on that core blocks;
  // a userfaultfd-style monitor (running on a non-isolated core) observes
  // the blockage and wakes a *different* application's kernel thread on the
  // core — the Single Binding Rule holds because the faulted kthread is no
  // longer runnable. Until the fault resolves, the engine will not place
  // tasks of the faulted application on this worker. On resolution the task
  // resumes from where it faulted (its remaining service time is preserved).
  // No-op if the worker is idle or the segment completes at this instant.
  void InjectPageFault(int worker, DurationNs fault_ns);

  // True while `app` has a faulted kernel thread on `worker`.
  bool AppFaultedOn(int worker, const App* app) const;

  // Installs handlers/timers and begins scheduling. Apps must exist.
  virtual void Start() = 0;

  EngineStats& stats() { return stats_; }

  // Attaches a scheduling-event tracer (nullptr detaches). Not owned.
  void SetTracer(SchedTracer* tracer) { tracer_ = tracer; }

  // Resets all statistics (including per-app CPU time) at `Now()`; used to
  // discard warmup.
  void ResetStats();

  // Folds the in-progress run time of every busy core into app CPU time;
  // call before reading App::cpu_time_ns.
  void FlushAccounting();

  // Fraction of total worker-core time used by `app` since the last
  // ResetStats() (Fig. 7c's metric).
  double CpuShare(const App* app);

  SchedPolicy& policy() { return *policy_; }
  Machine& machine() { return *machine_; }
  KernelSim& kernel() { return *kernel_; }
  UintrChip& chip() { return *chip_; }
  const EngineConfig& config() const { return config_; }

  // ---- EngineView ----
  TimeNs Now() const override { return machine_->sim().Now(); }
  int NumWorkers() const override { return static_cast<int>(config_.worker_cores.size()); }
  CoreId WorkerCore(int index) const override {
    return config_.worker_cores[static_cast<std::size_t>(index)];
  }
  bool IsWorkerIdle(int index) const override {
    return runs_[static_cast<std::size_t>(index)].current == nullptr;
  }

  Task* CurrentOn(int worker) const { return runs_[static_cast<std::size_t>(worker)].current; }

 protected:
  struct WorkerRun {
    Task* current = nullptr;
    App* app = nullptr;        // application active on this core
    TimeNs run_start = 0;      // when `current` began executing
    TimeNs span_start = 0;     // occupancy-span origin (not reset by accounting)
    TimeNs completion_at = 0;  // scheduled end of current segment
    EventId completion_ev = kInvalidEventId;
    TimeNs last_account = 0;   // policy time-accounting watermark
    DurationNs busy_ns = 0;    // total busy time since last ResetStats()
    TimeNs idle_since = 0;     // when the worker last became idle
    App* faulted_app = nullptr;  // app whose kthread is blocked on this core
  };

  // Cost charged when the fault monitor switches the core to another app
  // (userfaultfd notification + kthread wake, §6).
  static constexpr DurationNs kFaultMonitorNs = 2000;

  // Places `task` on `worker`, charging `pre_overhead_ns` plus the local
  // switch cost and, when the task belongs to a different application than
  // the one active on the core, the inter-application switch (§3.3) through
  // skyloft_switch_to.
  SKYLOFT_MAY_SWITCH void AssignTask(int worker, Task* task, DurationNs pre_overhead_ns);

  // Preempts the running task (requeues it with kEnqueuePreempted) and asks
  // the subclass for the next one. `overhead_ns` is the interrupt-handling
  // cost leading to this preemption. No-op if the worker is idle or the
  // segment is already complete at Now().
  SKYLOFT_MAY_SWITCH void PreemptWorker(int worker, DurationNs overhead_ns);

  // Removes the running task from `worker` without requeuing it: accounts
  // CPU time, saves the remaining service time, and leaves the task in
  // kRunnable state for the caller to place (used by core allocators that
  // reclaim a best-effort core, §5.2). Returns nullptr when the worker is
  // idle or the segment completes at this very instant.
  SKYLOFT_NO_SWITCH Task* DetachCurrent(int worker);

  // Extends the running segment's completion by `overhead_ns` (interrupt
  // handled without rescheduling). No-op when idle.
  SKYLOFT_NO_SWITCH void ChargeOverhead(int worker, DurationNs overhead_ns);

  // Completion-event body: finishes or blocks the segment, then asks the
  // subclass for the next task.
  SKYLOFT_MAY_SWITCH void FinishSegment(int worker);

  // Subclass hook: the worker just became free (after `overhead_ns` of
  // unavoidable switch/handler cost); pick and assign the next task.
  SKYLOFT_MAY_SWITCH virtual void OnWorkerFree(int worker, DurationNs overhead_ns) = 0;

  // Subclass hook: a task was enqueued (Submit/WakeTask); dispatch if
  // possible.
  SKYLOFT_MAY_SWITCH virtual void OnTaskAvailable(int worker_hint) = 0;

  // Subclass hooks around assignment (centralized engine arms/cancels the
  // quantum timer here).
  virtual void OnAssigned(int worker) {}
  virtual void OnUnassigned(int worker) {}

  SKYLOFT_NO_SWITCH int WorkerIndexOf(CoreId core) const;

  void Trace(TraceEventType type, int worker, const Task* task) {
    if (tracer_ != nullptr) {
      tracer_->Record(Now(), type, worker, task != nullptr ? task->id : 0,
                      task != nullptr && task->app != nullptr ? task->app->id : -1);
    }
  }

  // Emits a "ph":"X" complete event covering [start, start + dur).
  void TraceSpan(TraceEventType type, int worker, const Task* task, TimeNs start,
                 DurationNs dur) {
    if (tracer_ != nullptr && dur > 0) {
      tracer_->RecordSpan(start, dur, type, worker, task != nullptr ? task->id : 0,
                          task != nullptr && task->app != nullptr ? task->app->id : -1);
    }
  }

  Machine* machine_;
  UintrChip* chip_;
  KernelSim* kernel_;
  SchedPolicy* policy_;
  EngineConfig config_;

  std::vector<WorkerRun> runs_;
  std::vector<std::unique_ptr<App>> apps_;
  std::vector<std::unique_ptr<Task>> all_tasks_;
  std::vector<Task*> free_tasks_;
  std::uint64_t next_task_id_ = 1;
  EngineStats stats_;
  SchedTracer* tracer_ = nullptr;
  bool started_ = false;
  // Declared after stats_ so it unregisters (destructor order) before the
  // linked stats block goes away.
  MetricGroup metrics_{"engine"};
};

}  // namespace skyloft

#endif  // SRC_LIBOS_ENGINE_H_
