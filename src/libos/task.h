// Task: the user-level thread (`task_t`) that Skyloft schedules (§3.3, §3.4).
//
// In the simulated substrate a task does not execute real instructions;
// it carries a *work model*: the remaining service time of its current
// segment plus a segment-end callback that decides whether the task finishes
// or blocks (e.g. a schbench worker blocks waiting for the next wake). The
// scheduling framework around it — states, runqueue linkage, policy-defined
// data, preemption accounting — matches the paper's task_t.
#ifndef SRC_LIBOS_TASK_H_
#define SRC_LIBOS_TASK_H_

#include <cstdint>
#include <functional>

#include "src/base/intrusive_list.h"
#include "src/base/time.h"
#include "src/simcore/machine.h"

namespace skyloft {

struct App;
struct Task;

enum class TaskState {
  kCreated,
  kRunnable,  // on a runqueue
  kRunning,   // current on some core
  kBlocked,   // waiting for task_wakeup
  kFinished,
};

// What a task does when its current work segment completes.
enum class SegmentAction {
  kFinish,  // task terminates; its end-to-end latency is recorded
  kBlock,   // task blocks; someone must WakeTask() it with a new segment
};

// Flags passed to SchedPolicy::TaskEnqueue (paper: task_enqueue flags).
enum EnqueueFlags : unsigned {
  kEnqueueNew = 1u << 0,        // first enqueue after creation
  kEnqueueWakeup = 1u << 1,     // task was blocked and is waking (CFS sleeper credit)
  kEnqueuePreempted = 1u << 2,  // task was preempted mid-segment
  kEnqueueYield = 1u << 3,      // task voluntarily yielded
};

struct Task : ListNode {
  std::uint64_t id = 0;
  App* app = nullptr;
  TaskState state = TaskState::kCreated;

  // ---- work model ----
  DurationNs remaining_ns = 0;  // remaining service time of the current segment
  std::function<SegmentAction(Task*)> on_segment_end;

  // ---- metrics ----
  TimeNs submit_time = 0;       // when the request entered the system
  TimeNs last_wakeup = 0;       // when task_wakeup was last called
  bool wakeup_pending = false;  // a wakeup latency sample should be taken at next run
  DurationNs total_service_ns = 0;  // sum of all segment service times (for slowdown)
  int preempt_count = 0;
  CoreId last_cpu = kInvalidCore;

  // Opaque tag benchmarks use to classify requests (e.g. GET vs SCAN).
  int kind = 0;

  // ---- policy-defined per-task state (paper: the extra field in task_t) ----
  static constexpr std::size_t kPolicyDataSize = 64;
  alignas(8) unsigned char policy_data[kPolicyDataSize] = {};

  template <typename T>
  T* PolicyData() {
    static_assert(sizeof(T) <= kPolicyDataSize, "policy data too large");
    return reinterpret_cast<T*>(policy_data);
  }
};

}  // namespace skyloft

#endif  // SRC_LIBOS_TASK_H_
