// Task: the user-level thread (`task_t`) that Skyloft schedules (§3.3, §3.4).
//
// In the simulated substrate a task does not execute real instructions;
// it carries a *work model*: the remaining service time of its current
// segment plus a segment-end callback that decides whether the task finishes
// or blocks (e.g. a schbench worker blocks waiting for the next wake). The
// scheduling framework around it — states, runqueue linkage, policy-defined
// data, preemption accounting — matches the paper's task_t.
#ifndef SRC_LIBOS_TASK_H_
#define SRC_LIBOS_TASK_H_

#include <cstdint>
#include <functional>

#include "src/base/time.h"
#include "src/sched/sched_item.h"
#include "src/simcore/machine.h"

namespace skyloft {

struct App;
struct Task;

enum class TaskState {
  kCreated,
  kRunnable,  // on a runqueue
  kRunning,   // current on some core
  kBlocked,   // waiting for task_wakeup
  kFinished,
};

// What a task does when its current work segment completes.
enum class SegmentAction {
  kFinish,  // task terminates; its end-to-end latency is recorded
  kBlock,   // task blocks; someone must WakeTask() it with a new segment
};

// EnqueueFlags (kEnqueueNew/kEnqueueWakeup/...) now live with the Table 2
// interface in src/sched/sched_item.h, pulled in above.

// The substrate-neutral scheduling state (runqueue linkage, id, policy data)
// lives in the SchedItem base so the same policies also schedule the host
// runtime's UThread.
struct Task : SchedItem {
  App* app = nullptr;
  TaskState state = TaskState::kCreated;

  // ---- work model ----
  DurationNs remaining_ns = 0;  // remaining service time of the current segment
  std::function<SegmentAction(Task*)> on_segment_end;

  // ---- metrics ----
  TimeNs submit_time = 0;       // when the request entered the system
  TimeNs last_wakeup = 0;       // when task_wakeup was last called
  bool wakeup_pending = false;  // a wakeup latency sample should be taken at next run
  DurationNs total_service_ns = 0;  // sum of all segment service times (for slowdown)
  int preempt_count = 0;
  CoreId last_cpu = kInvalidCore;

  // Opaque tag benchmarks use to classify requests (e.g. GET vs SCAN).
  int kind = 0;
};

}  // namespace skyloft

#endif  // SRC_LIBOS_TASK_H_
