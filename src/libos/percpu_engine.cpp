#include "src/libos/percpu_engine.h"

#include "src/base/logging.h"

namespace skyloft {

namespace {
// User-interrupt vector (bit in the PIR/UIRR) used for the timer-delegation
// self-IPIs. Any value works; the paper uses "any interrupt number".
constexpr int kSelfTimerUivec = 1;
}  // namespace

PerCpuEngine::PerCpuEngine(Machine* machine, UintrChip* chip, KernelSim* kernel,
                           SchedPolicy* policy, PerCpuEngineConfig config)
    : Engine(machine, chip, kernel, policy, config.base), pcfg_(std::move(config)) {
  upids_.resize(static_cast<std::size_t>(NumWorkers()));
  self_uitt_index_.resize(static_cast<std::size_t>(NumWorkers()), -1);
}

void PerCpuEngine::Start() {
  SKYLOFT_CHECK(!apps_.empty()) << "create at least one app before Start()";
  SKYLOFT_CHECK(!started_);
  started_ = true;

  for (int w = 0; w < NumWorkers(); w++) {
    const CoreId core = WorkerCore(w);
    switch (pcfg_.tick_path) {
      case TickPath::kUserTimer: {
        Upid& upid = upids_[static_cast<std::size_t>(w)];
        // §3.2 setup: (1) configure UINV = timer vector and UPID.SN = 1 via
        // the kernel module; (2) self-SENDUIPI to populate the PIR so the
        // first hardware timer interrupt is recognized in user space.
        kernel_->SkyloftTimerEnable(core, &upid);
        self_uitt_index_[static_cast<std::size_t>(w)] =
            chip_->RegisterUittEntry(core, &upid, kSelfTimerUivec);
        chip_->SendUipi(core, self_uitt_index_[static_cast<std::size_t>(w)]);
        chip_->unit(core).SetHandler(
            [this, w](const UintrFrame& frame) { OnUserTick(w, frame); });
        kernel_->SkyloftTimerSetHz(core, pcfg_.timer_hz);
        break;
      }
      case TickPath::kKernelTimer: {
        chip_->timer(core).SetHz(pcfg_.timer_hz);
        chip_->timer(core).Enable();
        break;
      }
      case TickPath::kUtimerIpi: {
        SKYLOFT_CHECK(pcfg_.utimer_core != kInvalidCore);
        Upid& upid = upids_[static_cast<std::size_t>(w)];
        upid.sn = false;
        upid.nv = kUserIpiVector;
        upid.ndst = core;
        UserInterruptUnit& unit = chip_->unit(core);
        unit.SetUinv(kUserIpiVector);
        unit.SetActiveUpid(&upid);
        unit.SetHandler([this, w](const UintrFrame& frame) { OnUserTick(w, frame); });
        self_uitt_index_[static_cast<std::size_t>(w)] =
            chip_->RegisterUittEntry(pcfg_.utimer_core, &upid, kSelfTimerUivec);
        break;
      }
      case TickPath::kUserDeadline: {
        // User-Timer Events (§6): the handler is all that's needed up front;
        // deadlines are programmed per assignment in OnAssigned().
        if (pcfg_.deadline_quantum == 0) {
          pcfg_.deadline_quantum = HzToPeriodNs(pcfg_.timer_hz);
        }
        chip_->unit(core).SetHandler(
            [this, w](const UintrFrame& frame) { OnUserTick(w, frame); });
        break;
      }
      case TickPath::kNone:
        break;
    }
  }

  if (pcfg_.tick_path == TickPath::kUtimerIpi && pcfg_.timer_hz > 0) {
    // One periodic node drives every round; it re-arms in place (fresh
    // sequence number before the round runs, so same-tick ordering matches
    // the old schedule-at-top-of-callback pattern).
    const DurationNs period = HzToPeriodNs(pcfg_.timer_hz);
    machine_->sim().SchedulePeriodic(machine_->sim().Now() + period, period,
                                     [this] { UtimerRound(); });
  }

  if (pcfg_.tick_path == TickPath::kKernelTimer) {
    chip_->SetLegacyHandler([this](CoreId core, int vector) {
      if (vector != kApicTimerVector) {
        return;
      }
      const int w = WorkerIndexOf(core);
      if (w >= 0) {
        OnKernelTick(w);
      }
    });
  }
}

void PerCpuEngine::OnUserTick(int worker, const UintrFrame& frame) {
  ticks_++;
  DurationNs cost = frame.receive_cost_ns;
  if (frame.from_timer && pcfg_.tick_path == TickPath::kUserTimer) {
    // Listing 1: re-SENDUIPI (UPID.SN = 1) so the next timer interrupt is
    // also recognized in user space. Functionally re-posts the PIR bit.
    // (User-Timer Events need no re-arm: they bypass the PIR entirely.)
    chip_->SendUipi(WorkerCore(worker), self_uitt_index_[static_cast<std::size_t>(worker)]);
    cost += machine_->costs().SenduipiSnRearmNs();
  }
  Tick(worker, cost, /*preempt_extra_ns=*/0);
  if (pcfg_.tick_path == TickPath::kUserDeadline &&
      runs_[static_cast<std::size_t>(worker)].current != nullptr &&
      !chip_->UserTimerArmed(WorkerCore(worker))) {
    // The task survived its quantum (policy declined to preempt): extend
    // the deadline by one more quantum.
    chip_->ProgramUserTimerDeadline(WorkerCore(worker), Now() + pcfg_.deadline_quantum);
  }
}

void PerCpuEngine::OnAssigned(int worker) {
  if (pcfg_.tick_path == TickPath::kUserDeadline) {
    chip_->ProgramUserTimerDeadline(
        WorkerCore(worker),
        runs_[static_cast<std::size_t>(worker)].run_start + pcfg_.deadline_quantum);
  }
}

void PerCpuEngine::OnUnassigned(int worker) {
  if (pcfg_.tick_path == TickPath::kUserDeadline) {
    chip_->CancelUserTimerDeadline(WorkerCore(worker));
  }
}

void PerCpuEngine::UtimerRound() {
  // The utimer core loops over the workers executing one SENDUIPI each; the
  // sends are serial on the utimer core, so each worker's IPI departs a
  // little later than the previous one (Table 6: 167 cycles per send).
  // (The next round is armed by the periodic event that invoked us.)
  DurationNs offset = 0;
  for (int w = 0; w < NumWorkers(); w++) {
    const int idx = self_uitt_index_[static_cast<std::size_t>(w)];
    if (offset == 0) {
      offset += chip_->SendUipi(pcfg_.utimer_core, idx);
    } else {
      machine_->sim().ScheduleAfter(offset, [this, idx] { chip_->SendUipi(pcfg_.utimer_core, idx); });
      offset += machine_->costs().UserIpiSendNs(
          machine_->CrossNuma(pcfg_.utimer_core, WorkerCore(w)));
    }
  }
}

void PerCpuEngine::OnKernelTick(int worker) {
  ticks_++;
  Tick(worker, pcfg_.kernel_tick_cost_ns, pcfg_.preempt_extra_ns);
}

void PerCpuEngine::Tick(int worker, DurationNs handler_cost_ns, DurationNs preempt_extra_ns) {
  WorkerRun& run = runs_[static_cast<std::size_t>(worker)];
  Task* current = run.current;
  DurationNs ran = 0;
  const TimeNs now = Now();
  if (current != nullptr && now > run.last_account) {
    ran = now - run.last_account;
    run.last_account = now;
  }
  const bool resched = policy_->SchedTimerTick(worker, current, ran);
  if (current == nullptr) {
    // Idle tick: chance to pull work (e.g. steal from a loaded sibling).
    TryRunNext(worker, handler_cost_ns);
    return;
  }
  if (resched && config_.preemption) {
    PreemptWorker(worker, handler_cost_ns + preempt_extra_ns);
  } else {
    ChargeOverhead(worker, handler_cost_ns);
  }
}

bool PerCpuEngine::TryRunNext(int worker, DurationNs overhead_ns) {
  Task* task = static_cast<Task*>(policy_->TaskDequeue(worker));
  if (task == nullptr && pcfg_.steal_on_idle) {
    policy_->SchedBalance(worker);
    task = static_cast<Task*>(policy_->TaskDequeue(worker));
  }
  if (task == nullptr) {
    return false;
  }
  if (AppFaultedOn(worker, task->app)) {
    // §6: the task's kernel thread on this core is blocked on a fault; the
    // task stays queued (preferring another worker) until it resolves.
    const int other = (worker + 1) % NumWorkers();
    policy_->TaskEnqueue(task, 0, other);
    // Kick the target worker through the event queue rather than recursing.
    // If that worker is fault-blocked for the app too, nobody is kicked; the
    // fault-resolution event re-dispatches when a kthread becomes runnable.
    if (!AppFaultedOn(other, task->app)) {
      machine_->sim().ScheduleAfter(0, [this, other] {
        if (IsWorkerIdle(other)) {
          TryRunNext(other, 0);
        }
      });
    }
    return false;
  }
  AssignTask(worker, task, overhead_ns);
  return true;
}

void PerCpuEngine::OnWorkerFree(int worker, DurationNs overhead_ns) {
  TryRunNext(worker, overhead_ns);
}

void PerCpuEngine::OnTaskAvailable(int worker_hint) {
  if (worker_hint >= 0 && IsWorkerIdle(worker_hint)) {
    if (TryRunNext(worker_hint, 0)) {
      return;
    }
  }
  for (int w = 0; w < NumWorkers(); w++) {
    if (IsWorkerIdle(w)) {
      TryRunNext(w, 0);
    }
  }
}

}  // namespace skyloft
