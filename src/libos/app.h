// Application abstraction (§3.3): a process with one kernel thread per
// isolated core. At any instant at most one application's kernel thread is
// runnable ("active") on each core — the Single Binding Rule — and switching
// the application running on a core goes through the kernel module.
#ifndef SRC_LIBOS_APP_H_
#define SRC_LIBOS_APP_H_

#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/kernelsim/kernel_sim.h"

namespace skyloft {

struct App {
  int id = -1;
  std::string name;

  // Latency-critical apps preempt best-effort apps for cores (§5.2).
  bool best_effort = false;

  // One kernel thread per isolated core, indexed by the engine's core index.
  std::vector<Tid> kthreads;

  // Accumulated busy time across all cores, for CPU-share reporting (Fig 7c).
  DurationNs cpu_time_ns = 0;
};

}  // namespace skyloft

#endif  // SRC_LIBOS_APP_H_
