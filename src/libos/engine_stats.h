// Metrics collected by the scheduling engines: request latency, wakeup
// latency (schbench's metric), slowdown (Fig. 8b's metric: total response
// time / service time), throughput, and per-app CPU time (Fig. 7c).
#ifndef SRC_LIBOS_ENGINE_STATS_H_
#define SRC_LIBOS_ENGINE_STATS_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/base/histogram.h"
#include "src/base/metrics.h"
#include "src/base/time.h"

namespace skyloft {

struct EngineStats {
  static constexpr int kMaxKinds = 4;

  LatencyHistogram wakeup_latency;   // task_wakeup -> first instruction, ns
  LatencyHistogram request_latency;  // submit -> completion, ns
  LatencyHistogram slowdown_x100;    // (latency / service) * 100
  std::array<LatencyHistogram, kMaxKinds> latency_by_kind;
  std::array<LatencyHistogram, kMaxKinds> slowdown_by_kind_x100;
  std::uint64_t completed = 0;
  TimeNs epoch_start = 0;

  void Reset(TimeNs now) {
    wakeup_latency.Reset();
    request_latency.Reset();
    slowdown_x100.Reset();
    for (auto& h : latency_by_kind) {
      h.Reset();
    }
    for (auto& h : slowdown_by_kind_x100) {
      h.Reset();
    }
    completed = 0;
    epoch_start = now;
  }

  // Folds another engine's stats into this one — the cluster aggregation
  // path: each ClusterSim shard records into its own EngineStats (no shared
  // state, so shards stay race-free and deterministic) and a fleet-wide view
  // is produced after the run by merging. Equivalent to having recorded every
  // sample into one histogram; the throughput window widens to the earliest
  // epoch_start so ThroughputRps stays meaningful for aligned shards.
  void MergeFrom(const EngineStats& other) {
    wakeup_latency.Merge(other.wakeup_latency);
    request_latency.Merge(other.request_latency);
    slowdown_x100.Merge(other.slowdown_x100);
    for (int k = 0; k < kMaxKinds; k++) {
      const auto i = static_cast<std::size_t>(k);
      latency_by_kind[i].Merge(other.latency_by_kind[i]);
      slowdown_by_kind_x100[i].Merge(other.slowdown_by_kind_x100[i]);
    }
    completed += other.completed;
    if (other.epoch_start < epoch_start) {
      epoch_start = other.epoch_start;
    }
  }

  // Completed requests per second since the last Reset().
  double ThroughputRps(TimeNs now) const {
    const DurationNs window = now - epoch_start;
    if (window <= 0) {
      return 0.0;
    }
    return static_cast<double>(completed) * 1e9 / static_cast<double>(window);
  }

  // Registers every stat on `group` so engine telemetry shows up in the
  // unified MetricsRegistry snapshot; this stats block must outlive `group`.
  void LinkTo(MetricGroup* group) const {
    group->LinkHistogram("wakeup_latency_ns", &wakeup_latency);
    group->LinkHistogram("request_latency_ns", &request_latency);
    group->LinkHistogram("slowdown_x100", &slowdown_x100);
    for (int k = 0; k < kMaxKinds; k++) {
      const std::string suffix = std::to_string(k);
      group->LinkHistogram("latency_by_kind_ns." + suffix,
                           &latency_by_kind[static_cast<std::size_t>(k)]);
      group->LinkHistogram("slowdown_by_kind_x100." + suffix,
                           &slowdown_by_kind_x100[static_cast<std::size_t>(k)]);
    }
    group->LinkValue("completed", [this] { return static_cast<std::int64_t>(completed); });
  }
};

}  // namespace skyloft

#endif  // SRC_LIBOS_ENGINE_STATS_H_
