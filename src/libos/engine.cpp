#include "src/libos/engine.h"

#include <algorithm>

#include "src/base/logging.h"

namespace skyloft {

Engine::Engine(Machine* machine, UintrChip* chip, KernelSim* kernel, SchedPolicy* policy,
               EngineConfig config)
    : machine_(machine),
      chip_(chip),
      kernel_(kernel),
      policy_(policy),
      config_(std::move(config)) {
  SKYLOFT_CHECK(!config_.worker_cores.empty());
  runs_.resize(config_.worker_cores.size());
  kernel_->IsolateCores(config_.worker_cores);
  policy_->SchedInit(this);
  stats_.LinkTo(&metrics_);
}

Engine::~Engine() = default;

App* Engine::CreateApp(const std::string& name, bool best_effort) {
  auto app = std::make_unique<App>();
  app->id = static_cast<int>(apps_.size());
  app->name = name;
  app->best_effort = best_effort;
  const bool first = apps_.empty();
  for (int w = 0; w < NumWorkers(); w++) {
    const CoreId core = WorkerCore(w);
    const Tid tid = kernel_->CreateThread(app->id);
    if (first) {
      // The daemon binds its threads directly (§4.1).
      kernel_->BindToCore(tid, core);
    } else {
      // Later applications park their threads to respect the binding rule.
      kernel_->SkyloftParkOnCpu(tid, core);
    }
    app->kthreads.push_back(tid);
  }
  apps_.push_back(std::move(app));
  App* result = apps_.back().get();
  if (first) {
    for (auto& run : runs_) {
      run.app = result;
    }
  }
  kernel_->CheckBindingRule();
  return result;
}

Task* Engine::NewTask(App* app, DurationNs service_ns, int kind) {
  Task* task;
  if (!free_tasks_.empty()) {
    task = free_tasks_.back();
    free_tasks_.pop_back();
    *task = Task{};
  } else {
    all_tasks_.push_back(std::make_unique<Task>());
    task = all_tasks_.back().get();
  }
  task->id = next_task_id_++;
  task->app = app;
  task->remaining_ns = service_ns;
  task->total_service_ns = service_ns;
  // Kinds index the fixed per-kind stat arrays; clamp so a misbehaving
  // workload degrades to the last kind instead of indexing out of bounds.
  task->kind = std::clamp(kind, 0, EngineStats::kMaxKinds - 1);
  task->state = TaskState::kCreated;
  return task;
}

void Engine::Submit(Task* task, int worker_hint) {
  SKYLOFT_DCHECK(task->state == TaskState::kCreated);
  task->submit_time = Now();
  task->state = TaskState::kRunnable;
  policy_->TaskInit(task);
  policy_->TaskEnqueue(task, kEnqueueNew, worker_hint);
  OnTaskAvailable(worker_hint);
}

void Engine::WakeTask(Task* task, DurationNs service_ns) {
  SKYLOFT_CHECK(task->state == TaskState::kBlocked)
      << "waking task " << task->id << " in state " << static_cast<int>(task->state);
  task->remaining_ns = service_ns;
  task->total_service_ns += service_ns;
  task->last_wakeup = Now();
  task->wakeup_pending = true;
  task->state = TaskState::kRunnable;
  const int hint = task->last_cpu == kInvalidCore ? -1 : WorkerIndexOf(task->last_cpu);
  policy_->TaskEnqueue(task, kEnqueueWakeup, hint);
  OnTaskAvailable(hint);
}

void Engine::InjectPageFault(int worker, DurationNs fault_ns) {
  WorkerRun& run = runs_[static_cast<std::size_t>(worker)];
  Task* task = DetachCurrent(worker);
  if (task == nullptr) {
    return;
  }
  task->state = TaskState::kBlocked;
  run.faulted_app = task->app;
  const TimeNs fault_at = Now();
  Trace(TraceEventType::kFault, worker, task);
  machine_->sim().ScheduleAfter(fault_ns, [this, worker, task, fault_at, fault_ns] {
    // Fault resolved: the kthread is runnable again; the task re-enters the
    // runqueues and competes normally (it may resume on another core).
    runs_[static_cast<std::size_t>(worker)].faulted_app = nullptr;
    task->state = TaskState::kRunnable;
    TraceSpan(TraceEventType::kFaultStall, worker, task, fault_at, fault_ns);
    Trace(TraceEventType::kFaultDone, worker, task);
    policy_->TaskEnqueue(task, kEnqueueWakeup, worker);
    OnTaskAvailable(worker);
  });
  // The monitor notices the blocked kthread and hands the core to another
  // application's work.
  OnWorkerFree(worker, kFaultMonitorNs);
}

bool Engine::AppFaultedOn(int worker, const App* app) const {
  const App* faulted = runs_[static_cast<std::size_t>(worker)].faulted_app;
  return faulted != nullptr && faulted == app;
}

void Engine::ResetStats() {
  FlushAccounting();
  stats_.Reset(Now());
  for (auto& app : apps_) {
    app->cpu_time_ns = 0;
  }
  for (auto& run : runs_) {
    run.busy_ns = 0;
  }
}

void Engine::FlushAccounting() {
  const TimeNs now = Now();
  for (auto& run : runs_) {
    if (run.current != nullptr && now > run.run_start) {
      const DurationNs delta = now - run.run_start;
      run.current->app->cpu_time_ns += delta;
      run.busy_ns += delta;
      run.run_start = now;
    }
  }
}

double Engine::CpuShare(const App* app) {
  FlushAccounting();
  const DurationNs window = Now() - stats_.epoch_start;
  if (window <= 0) {
    return 0.0;
  }
  const double total = static_cast<double>(window) * NumWorkers();
  return static_cast<double>(app->cpu_time_ns) / total;
}

int Engine::WorkerIndexOf(CoreId core) const {
  for (int w = 0; w < NumWorkers(); w++) {
    if (WorkerCore(w) == core) {
      return w;
    }
  }
  return -1;
}

void Engine::AssignTask(int worker, Task* task, DurationNs pre_overhead_ns) {
  WorkerRun& run = runs_[static_cast<std::size_t>(worker)];
  SKYLOFT_CHECK(run.current == nullptr) << "assigning to busy worker " << worker;
  SKYLOFT_DCHECK(task->state == TaskState::kRunnable);

  const TimeNs now = Now();
  DurationNs overhead = pre_overhead_ns + config_.local_switch_ns;
  if (task->wakeup_pending) {
    overhead += config_.wakeup_extra_ns;
  }
  if (now - run.idle_since > config_.idle_park_threshold_ns) {
    // The worker parked while idle; waking it goes through the kernel.
    overhead += config_.idle_unpark_cost_ns;
  }
  if (task->app != run.app) {
    // Inter-application switch: suspend the current app's kernel thread and
    // wake the target's, atomically, through the kernel module (§3.3).
    SKYLOFT_CHECK(run.app != nullptr);
    const Tid cur = run.app->kthreads[static_cast<std::size_t>(worker)];
    const Tid target = task->app->kthreads[static_cast<std::size_t>(worker)];
    const DurationNs switch_cost = kernel_->SkyloftSwitchTo(cur, target);
    overhead += switch_cost;
    run.app = task->app;
    // Duration event: the core is unavailable for the switch cost.
    TraceSpan(TraceEventType::kAppSwitch, worker, task, now, switch_cost);
  }
  Trace(TraceEventType::kAssign, worker, task);

  const TimeNs start = now + overhead;
  run.current = task;
  run.run_start = start;
  run.span_start = start;
  run.last_account = start;
  run.completion_at = start + task->remaining_ns;
  run.completion_ev =
      machine_->sim().ScheduleAt(run.completion_at, [this, worker] { FinishSegment(worker); });

  task->state = TaskState::kRunning;
  task->last_cpu = WorkerCore(worker);
  if (task->wakeup_pending) {
    stats_.wakeup_latency.Record(start - task->last_wakeup);
    task->wakeup_pending = false;
  }
  OnAssigned(worker);
}

void Engine::ChargeOverhead(int worker, DurationNs overhead_ns) {
  if (overhead_ns <= 0) {
    return;
  }
  WorkerRun& run = runs_[static_cast<std::size_t>(worker)];
  if (run.current == nullptr) {
    return;
  }
  machine_->sim().Cancel(run.completion_ev);
  run.completion_at += overhead_ns;
  run.completion_ev =
      // skylint:allow(switch-in-noswitch) -- deferred: the lambda runs from the event loop, not here
      machine_->sim().ScheduleAt(run.completion_at, [this, worker] { FinishSegment(worker); });
}

Task* Engine::DetachCurrent(int worker) {
  WorkerRun& run = runs_[static_cast<std::size_t>(worker)];
  if (run.current == nullptr) {
    return nullptr;
  }
  const TimeNs now = Now();
  Task* task = run.current;
  const DurationNs remaining = run.completion_at - now;
  if (remaining <= 0 || now < run.run_start) {
    // The segment completes at this very instant (its event is already
    // queued), or the task has not even started yet.
    return nullptr;
  }
  machine_->sim().Cancel(run.completion_ev);
  run.completion_ev = kInvalidEventId;
  task->remaining_ns = remaining;
  const DurationNs ran = now - run.run_start;
  task->app->cpu_time_ns += ran;
  run.busy_ns += ran;
  TraceSpan(TraceEventType::kRun, worker, task, run.span_start, now - run.span_start);
  task->state = TaskState::kRunnable;
  run.current = nullptr;
  run.idle_since = now;
  OnUnassigned(worker);
  return task;
}

void Engine::PreemptWorker(int worker, DurationNs overhead_ns) {
  if (runs_[static_cast<std::size_t>(worker)].current == nullptr) {
    return;
  }
  Task* task = DetachCurrent(worker);
  if (task == nullptr) {
    ChargeOverhead(worker, overhead_ns);
    return;
  }
  task->preempt_count++;
  Trace(TraceEventType::kPreempt, worker, task);
  policy_->TaskEnqueue(task, kEnqueuePreempted, worker);
  OnWorkerFree(worker, overhead_ns);
}

void Engine::FinishSegment(int worker) {
  WorkerRun& run = runs_[static_cast<std::size_t>(worker)];
  Task* task = run.current;
  SKYLOFT_CHECK(task != nullptr);
  const TimeNs now = Now();
  const DurationNs ran = now - run.run_start;
  task->app->cpu_time_ns += ran;
  run.busy_ns += ran;
  run.current = nullptr;
  run.completion_ev = kInvalidEventId;
  run.idle_since = now;
  OnUnassigned(worker);
  task->remaining_ns = 0;
  TraceSpan(TraceEventType::kRun, worker, task, run.span_start, now - run.span_start);
  Trace(TraceEventType::kSegmentEnd, worker, task);

  const SegmentAction action =
      task->on_segment_end ? task->on_segment_end(task) : SegmentAction::kFinish;
  if (action == SegmentAction::kFinish) {
    task->state = TaskState::kFinished;
    stats_.completed++;
    const DurationNs latency = now - task->submit_time;
    stats_.request_latency.Record(latency);
    // NewTask clamps kinds into range; re-clamp defensively so a stray
    // direct write to task->kind still cannot index out of bounds.
    const auto kind = static_cast<std::size_t>(
        std::clamp(task->kind, 0, EngineStats::kMaxKinds - 1));
    SKYLOFT_DCHECK(static_cast<int>(kind) == task->kind)
        << "task " << task->id << " has out-of-range kind " << task->kind;
    if (task->total_service_ns > 0) {
      const std::int64_t slowdown = latency * 100 / task->total_service_ns;
      stats_.slowdown_x100.Record(slowdown);
      stats_.slowdown_by_kind_x100[kind].Record(slowdown);
    }
    stats_.latency_by_kind[kind].Record(latency);
    policy_->TaskTerminate(task);
    task->on_segment_end = nullptr;
    free_tasks_.push_back(task);
  } else {
    task->state = TaskState::kBlocked;
  }
  // AssignTask already charges the local switch cost for the next task.
  OnWorkerFree(worker, 0);
}

}  // namespace skyloft
