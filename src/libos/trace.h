// Scheduling-event tracer.
//
// A fixed-capacity ring of timestamped scheduling events (assignments,
// preemptions, application switches, faults) that engines emit when a tracer
// is attached. Useful for debugging policies and for asserting fine-grained
// scheduling behaviour in tests; can be dumped in a chrome://tracing-flavored
// JSON array for visualization.
#ifndef SRC_LIBOS_TRACE_H_
#define SRC_LIBOS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/time.h"
#include "src/simcore/machine.h"

namespace skyloft {

enum class TraceEventType : std::uint8_t {
  kAssign,     // task placed on a core
  kSegmentEnd, // task segment completed (finish or block)
  kPreempt,    // task preempted off a core
  kAppSwitch,  // inter-application kthread switch on a core
  kFault,      // page fault blocked the core's kthread
  kFaultDone,  // fault resolved
};

const char* TraceEventName(TraceEventType type);

struct TraceEvent {
  TimeNs when = 0;
  TraceEventType type = TraceEventType::kAssign;
  int worker = -1;
  std::uint64_t task_id = 0;
  int app_id = -1;
};

class SchedTracer {
 public:
  explicit SchedTracer(std::size_t capacity = 1 << 16) : capacity_(capacity) {
    events_.reserve(capacity);
  }

  void Record(TimeNs when, TraceEventType type, int worker, std::uint64_t task_id,
              int app_id) {
    if (events_.size() < capacity_) {
      events_.push_back(TraceEvent{when, type, worker, task_id, app_id});
    } else {
      // Ring behaviour: overwrite oldest.
      events_[wrap_cursor_] = TraceEvent{when, type, worker, task_id, app_id};
      wrap_cursor_ = (wrap_cursor_ + 1) % capacity_;
      wrapped_ = true;
    }
    total_++;
  }

  // Events in record order (oldest first), accounting for wrap.
  std::vector<TraceEvent> Snapshot() const;

  // Counts events of one type (over the retained window).
  std::size_t CountOf(TraceEventType type) const;

  // chrome://tracing "trace events" JSON array: one complete event per
  // retained record (instant events, pid=app, tid=worker).
  std::string ToJson() const;

  std::uint64_t total_recorded() const { return total_; }
  void Clear();

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::size_t wrap_cursor_ = 0;
  bool wrapped_ = false;
  std::uint64_t total_ = 0;
};

}  // namespace skyloft

#endif  // SRC_LIBOS_TRACE_H_
