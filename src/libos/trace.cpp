#include "src/libos/trace.h"

#include <sstream>

namespace skyloft {

const char* TraceEventName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kAssign:
      return "assign";
    case TraceEventType::kSegmentEnd:
      return "segment_end";
    case TraceEventType::kPreempt:
      return "preempt";
    case TraceEventType::kAppSwitch:
      return "app_switch";
    case TraceEventType::kFault:
      return "fault";
    case TraceEventType::kFaultDone:
      return "fault_done";
  }
  return "?";
}

std::vector<TraceEvent> SchedTracer::Snapshot() const {
  if (!wrapped_) {
    return events_;
  }
  std::vector<TraceEvent> ordered;
  ordered.reserve(events_.size());
  for (std::size_t i = 0; i < events_.size(); i++) {
    ordered.push_back(events_[(wrap_cursor_ + i) % events_.size()]);
  }
  return ordered;
}

std::size_t SchedTracer::CountOf(TraceEventType type) const {
  std::size_t n = 0;
  for (const TraceEvent& event : events_) {
    if (event.type == type) {
      n++;
    }
  }
  return n;
}

std::string SchedTracer::ToJson() const {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const TraceEvent& event : Snapshot()) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"name\":\"" << TraceEventName(event.type) << "\",\"ph\":\"i\",\"ts\":"
        << event.when / 1000 << ",\"pid\":" << event.app_id << ",\"tid\":" << event.worker
        << ",\"args\":{\"task\":" << event.task_id << "}}";
  }
  out << "]";
  return out.str();
}

void SchedTracer::Clear() {
  events_.clear();
  wrap_cursor_ = 0;
  wrapped_ = false;
  total_ = 0;
}

}  // namespace skyloft
