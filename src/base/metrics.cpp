#include "src/base/metrics.h"

#include <cstdio>

#include "src/base/logging.h"

namespace skyloft {

ShardedCounter::ShardedCounter(int shards)
    : shards_(shards > 0 ? shards : 1),
      lanes_(new Lane[static_cast<std::size_t>(shards_)]) {}

std::uint64_t ShardedCounter::Value() const {
  std::uint64_t total = 0;
  for (int i = 0; i < shards_; i++) {
    total += lanes_[static_cast<std::size_t>(i)].value.load(std::memory_order_relaxed);
  }
  return total;
}

MetricGroup::MetricGroup(std::string prefix) : prefix_(std::move(prefix)) {
  MetricsRegistry::Global().Register(this);
}

MetricGroup::~MetricGroup() { MetricsRegistry::Global().Unregister(this); }

Counter* MetricGroup::AddCounter(std::string name) {
  counters_.emplace_back();
  Entry entry;
  entry.name = std::move(name);
  entry.kind = MetricSample::Kind::kCounter;
  entry.counter = &counters_.back();
  entries_.push_back(std::move(entry));
  return &counters_.back();
}

Gauge* MetricGroup::AddGauge(std::string name) {
  gauges_.emplace_back();
  Entry entry;
  entry.name = std::move(name);
  entry.kind = MetricSample::Kind::kGauge;
  entry.gauge = &gauges_.back();
  entries_.push_back(std::move(entry));
  return &gauges_.back();
}

ShardedCounter* MetricGroup::AddSharded(std::string name, int shards) {
  sharded_.emplace_back(shards);
  Entry entry;
  entry.name = std::move(name);
  entry.kind = MetricSample::Kind::kCounter;
  entry.sharded = &sharded_.back();
  entries_.push_back(std::move(entry));
  return &sharded_.back();
}

LatencyHistogram* MetricGroup::AddHistogram(std::string name) {
  histograms_.emplace_back();
  Entry entry;
  entry.name = std::move(name);
  entry.kind = MetricSample::Kind::kHistogram;
  entry.histogram = &histograms_.back();
  entries_.push_back(std::move(entry));
  return &histograms_.back();
}

void MetricGroup::LinkHistogram(std::string name, const LatencyHistogram* histogram) {
  SKYLOFT_CHECK(histogram != nullptr);
  Entry entry;
  entry.name = std::move(name);
  entry.kind = MetricSample::Kind::kHistogram;
  entry.histogram = histogram;
  entries_.push_back(std::move(entry));
}

void MetricGroup::LinkValue(std::string name, std::function<std::int64_t()> read) {
  SKYLOFT_CHECK(read != nullptr);
  Entry entry;
  entry.name = std::move(name);
  entry.kind = MetricSample::Kind::kGauge;
  entry.read = std::move(read);
  entries_.push_back(std::move(entry));
}

void MetricGroup::LinkCounter(std::string name, const Counter* counter) {
  SKYLOFT_CHECK(counter != nullptr);
  Entry entry;
  entry.name = std::move(name);
  entry.kind = MetricSample::Kind::kCounter;
  entry.counter = counter;
  entries_.push_back(std::move(entry));
}

void MetricGroup::Sample(std::vector<MetricSample>* out) const {
  for (const Entry& entry : entries_) {
    MetricSample sample;
    sample.name = prefix_ + "." + entry.name;
    sample.kind = entry.kind;
    if (entry.counter != nullptr) {
      sample.value = static_cast<std::int64_t>(entry.counter->Value());
    } else if (entry.sharded != nullptr) {
      sample.value = static_cast<std::int64_t>(entry.sharded->Value());
    } else if (entry.gauge != nullptr) {
      sample.value = entry.gauge->Value();
    } else if (entry.read) {
      sample.value = entry.read();
    } else if (entry.histogram != nullptr) {
      const LatencyHistogram& h = *entry.histogram;
      sample.count = h.Count();
      sample.min = h.Min();
      sample.p50 = h.Percentile(0.50);
      sample.p99 = h.Percentile(0.99);
      sample.max = h.Max();
      sample.mean = h.Mean();
    }
    out->push_back(std::move(sample));
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

void MetricsRegistry::Register(MetricGroup* group) {
  std::lock_guard<std::mutex> lock(mu_);
  groups_.push_back(group);
}

void MetricsRegistry::Unregister(MetricGroup* group) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < groups_.size(); i++) {
    if (groups_[i] == group) {
      groups_.erase(groups_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSample> out;
  for (const MetricGroup* group : groups_) {
    group->Sample(&out);
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  const std::vector<MetricSample> samples = Snapshot();
  std::string out = "{";
  bool first = true;
  char buf[64];
  for (const MetricSample& s : samples) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\"" + s.name + "\":";
    if (s.kind == MetricSample::Kind::kHistogram) {
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(s.count));
      out += std::string("{\"count\":") + buf;
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(s.min));
      out += std::string(",\"min\":") + buf;
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(s.p50));
      out += std::string(",\"p50\":") + buf;
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(s.p99));
      out += std::string(",\"p99\":") + buf;
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(s.max));
      out += std::string(",\"max\":") + buf;
      std::snprintf(buf, sizeof(buf), "%.3f", s.mean);
      out += std::string(",\"mean\":") + buf + "}";
    } else {
      std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(s.value));
      out += buf;
    }
  }
  out += "}";
  return out;
}

int MetricsRegistry::group_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(groups_.size());
}

}  // namespace skyloft
