// Minimal logging and invariant-checking facility.
//
// SKYLOFT_CHECK(cond) aborts with a message when an invariant is violated;
// it is always on, including in release builds, because the simulator relies
// on these invariants (e.g. the Single Binding Rule) for correctness of every
// measured result.
#ifndef SRC_BASE_LOGGING_H_
#define SRC_BASE_LOGGING_H_

#include <sstream>
#include <string>

#include "src/base/compiler.h"

namespace skyloft {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

// Global log threshold; messages below it are dropped. Defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Writes one formatted log line to stderr. Thread-safe.
void LogMessage(LogLevel level, const char* file, int line, const std::string& msg);

// Aborts the process after logging `msg`. Never returns.
[[noreturn]] void LogFatal(const char* file, int line, const std::string& msg);

// Stream-style helper so call sites can write SKYLOFT_LOG(kInfo) << "x=" << x.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

class FatalLogLine {
 public:
  FatalLogLine(const char* file, int line) : file_(file), line_(line) {}
  [[noreturn]] ~FatalLogLine() { LogFatal(file_, line_, stream_.str()); }

  template <typename T>
  FatalLogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace skyloft

#define SKYLOFT_LOG(level) \
  ::skyloft::LogLine(::skyloft::LogLevel::level, __FILE__, __LINE__)

#define SKYLOFT_CHECK(cond)                                 \
  if (SKYLOFT_LIKELY(cond)) {                               \
  } else /* NOLINT */                                       \
    ::skyloft::FatalLogLine(__FILE__, __LINE__)             \
        << "Check failed: " #cond " "

#define SKYLOFT_DCHECK(cond) SKYLOFT_CHECK(cond)

#endif  // SRC_BASE_LOGGING_H_
