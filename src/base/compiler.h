// Compiler and platform helpers shared by all Skyloft modules.
#ifndef SRC_BASE_COMPILER_H_
#define SRC_BASE_COMPILER_H_

#include <sched.h>

#include <cstddef>

#define SKYLOFT_LIKELY(x) __builtin_expect(!!(x), 1)
#define SKYLOFT_UNLIKELY(x) __builtin_expect(!!(x), 0)

// ---- Scheduling-discipline annotations (checked by tools/skylint) ----
//
// These are no-op markers that document the concurrency contract of a
// function; `skylint` (run as a ctest target and CI job) computes call-graph
// fixpoints from them and enforces the rules the C++ compiler cannot see:
//
//   SKYLOFT_MAY_SWITCH   The function may context-switch the calling
//                        execution context (uthread switch, or the kernel
//                        module's inter-application switch, Table 3). Seeds
//                        the may-switch set; callers inherit transitively.
//   SKYLOFT_NO_SWITCH    The function must never reach a switch primitive —
//                        typically because it runs under a shard lock or in
//                        a context that must not migrate (rule
//                        switch-in-noswitch).
//   SKYLOFT_SIGNAL_SAFE  The function runs in (or is reachable from) the
//                        preemption signal handler and must stay
//                        async-signal-safe: no allocation, stdio or locking
//                        (rule signal-unsafe-call).
//   SKYLOFT_RETURNS_TLS  The function returns a pointer derived from
//                        thread-local storage and re-derives it on every
//                        call (noinline + compiler barrier). Results must
//                        not be cached across a may-switch call (rule
//                        tls-across-switch).
//
// ---- Lock-discipline annotations (skylint v2) ----
//
// `l` is a *lock class* — a short stable identifier naming one lock role
// (e.g. wait_spin, io_handles, uthread_mutex), not a C++ expression. The
// analyzer computes per-function held-lock summaries from these and from
// std::lock_guard/unique_lock/scoped_lock declarations, then enforces:
//
//   SKYLOFT_ACQUIRES(l)  The function returns with lock class `l` held
//                        (lock functions, RAII guard constructors). Seeds
//                        the held-set for rules lock-held-across-switch
//                        and lock-order-cycle.
//   SKYLOFT_RELEASES(l)  The function releases lock class `l` before
//                        returning (unlock functions, guard destructors).
//   SKYLOFT_REQUIRES(l)  The caller must already hold `l` at every call
//                        (rule lock-requires-unheld). A REQUIRES callee may
//                        context-switch while `l` is held without tripping
//                        lock-held-across-switch — the condvar-wait pattern,
//                        which releases `l` itself before parking.
//   SKYLOFT_BLOCKING     The function may block the calling *pthread* in
//                        the kernel (not just park the uthread). Calling it
//                        from worker/scheduler context stalls every uthread
//                        on that worker (rule blocking-call-on-worker).
//
// Note: try-lock functions are deliberately NOT annotated — a conditional
// acquire has no unconditional post-state the linear analysis could model.
#define SKYLOFT_MAY_SWITCH
#define SKYLOFT_NO_SWITCH
#define SKYLOFT_SIGNAL_SAFE
#define SKYLOFT_RETURNS_TLS
#define SKYLOFT_ACQUIRES(l)
#define SKYLOFT_RELEASES(l)
#define SKYLOFT_REQUIRES(l)
#define SKYLOFT_BLOCKING

namespace skyloft {

// Size of a cache line on every x86-64 part we care about; used to pad
// per-core state so simulated and real cores never false-share.
inline constexpr std::size_t kCacheLineSize = 64;

// Spin-wait hint: de-pipelines the spinning core so a sibling hyperthread
// (or, on one-core hosts, the lock holder waiting for a timeslice) gets the
// execution resources the spin would otherwise burn.
SKYLOFT_SIGNAL_SAFE inline void CpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

// Exponential pause/yield ladder for short spin loops (sync-primitive wait
// lists, lock-free retry loops). Doubles the pause batch each round up to
// 2^kMaxPauseShift, then falls back to sched_yield() — essential whenever
// the holder may not be running (oversubscribed or single-core hosts).
class SpinBackoff {
 public:
  SKYLOFT_SIGNAL_SAFE void Pause() {
    if (round_ < kMaxPauseShift) {
      for (int i = 0; i < (1 << round_); i++) {
        CpuRelax();
      }
      round_++;
    } else {
      sched_yield();
    }
  }

 private:
  static constexpr int kMaxPauseShift = 6;  // 1+2+...+32 = 63 pauses, then yield
  int round_ = 0;
};

}  // namespace skyloft

#endif  // SRC_BASE_COMPILER_H_
