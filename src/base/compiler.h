// Compiler and platform helpers shared by all Skyloft modules.
#ifndef SRC_BASE_COMPILER_H_
#define SRC_BASE_COMPILER_H_

#include <cstddef>

#define SKYLOFT_LIKELY(x) __builtin_expect(!!(x), 1)
#define SKYLOFT_UNLIKELY(x) __builtin_expect(!!(x), 0)

namespace skyloft {

// Size of a cache line on every x86-64 part we care about; used to pad
// per-core state so simulated and real cores never false-share.
inline constexpr std::size_t kCacheLineSize = 64;

}  // namespace skyloft

#endif  // SRC_BASE_COMPILER_H_
