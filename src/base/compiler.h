// Compiler and platform helpers shared by all Skyloft modules.
#ifndef SRC_BASE_COMPILER_H_
#define SRC_BASE_COMPILER_H_

#include <cstddef>

#define SKYLOFT_LIKELY(x) __builtin_expect(!!(x), 1)
#define SKYLOFT_UNLIKELY(x) __builtin_expect(!!(x), 0)

// ---- Scheduling-discipline annotations (checked by tools/skylint) ----
//
// These are no-op markers that document the concurrency contract of a
// function; `skylint` (run as a ctest target and CI job) computes call-graph
// fixpoints from them and enforces the rules the C++ compiler cannot see:
//
//   SKYLOFT_MAY_SWITCH   The function may context-switch the calling
//                        execution context (uthread switch, or the kernel
//                        module's inter-application switch, Table 3). Seeds
//                        the may-switch set; callers inherit transitively.
//   SKYLOFT_NO_SWITCH    The function must never reach a switch primitive —
//                        typically because it runs under a shard lock or in
//                        a context that must not migrate (rule
//                        switch-in-noswitch).
//   SKYLOFT_SIGNAL_SAFE  The function runs in (or is reachable from) the
//                        preemption signal handler and must stay
//                        async-signal-safe: no allocation, stdio or locking
//                        (rule signal-unsafe-call).
//   SKYLOFT_RETURNS_TLS  The function returns a pointer derived from
//                        thread-local storage and re-derives it on every
//                        call (noinline + compiler barrier). Results must
//                        not be cached across a may-switch call (rule
//                        tls-across-switch).
#define SKYLOFT_MAY_SWITCH
#define SKYLOFT_NO_SWITCH
#define SKYLOFT_SIGNAL_SAFE
#define SKYLOFT_RETURNS_TLS

namespace skyloft {

// Size of a cache line on every x86-64 part we care about; used to pad
// per-core state so simulated and real cores never false-share.
inline constexpr std::size_t kCacheLineSize = 64;

}  // namespace skyloft

#endif  // SRC_BASE_COMPILER_H_
