// Move-only `void()` callable with inline small-buffer storage.
//
// The simulation engine invokes millions of callbacks per simulated second;
// `std::function`'s 16-byte small-object buffer forces a heap allocation for
// anything bigger than a single captured pointer pair. InplaceFunction stores
// closures up to kCapacity bytes inline (enough for every hot-path lambda in
// the tree: `this` plus a few scalars) and falls back to the heap only for
// oversized or throwing-move captures, so the schedule/fire path allocates
// nothing.
#ifndef SRC_BASE_INPLACE_FUNCTION_H_
#define SRC_BASE_INPLACE_FUNCTION_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace skyloft {

class InplaceFunction {
 public:
  static constexpr std::size_t kCapacity = 48;

  InplaceFunction() = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  InplaceFunction(F&& fn) {  // NOLINT: implicit like std::function
    if constexpr (sizeof(D) <= kCapacity &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &InlineOps<D>::kOps;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(fn)));
      ops_ = &HeapOps<D>::kOps;
    }
  }

  InplaceFunction(InplaceFunction&& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      if (other.ops_ != nullptr) {
        ops_ = other.ops_;
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { Reset(); }

  void operator()() { ops_->invoke(buf_); }

  explicit operator bool() const { return ops_ != nullptr; }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs into dst and destroys src (both point at buffers).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename D>
  struct InlineOps {
    static void Invoke(void* p) { (*static_cast<D*>(p))(); }
    static void Relocate(void* dst, void* src) {
      ::new (dst) D(std::move(*static_cast<D*>(src)));
      static_cast<D*>(src)->~D();
    }
    static void Destroy(void* p) { static_cast<D*>(p)->~D(); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  template <typename D>
  struct HeapOps {
    static D* Ptr(void* p) { return *static_cast<D**>(p); }
    static void Invoke(void* p) { (*Ptr(p))(); }
    static void Relocate(void* dst, void* src) {
      ::new (dst) D*(Ptr(src));  // ownership transfers with the pointer
    }
    static void Destroy(void* p) { delete Ptr(p); }
    static constexpr Ops kOps{&Invoke, &Relocate, &Destroy};
  };

  alignas(std::max_align_t) unsigned char buf_[kCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace skyloft

#endif  // SRC_BASE_INPLACE_FUNCTION_H_
