// Hierarchical timing wheel.
//
// The classic O(1) timer structure (Varghese & Lauck) used by kernels and
// dataplanes for massive timer counts: four levels of 64 slots give a
// 64^4-tick horizon with constant-time insertion and cancellation, cascading
// longer timers down a level as the wheel turns. The host runtime and the
// simulated network stack have timer-heavy workloads (RTOs, quanta,
// deadlines); this is the scalable alternative to a binary heap, with the
// trade-off quantified in base_test's comparison tests.
#ifndef SRC_BASE_TIMER_WHEEL_H_
#define SRC_BASE_TIMER_WHEEL_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/base/intrusive_list.h"
#include "src/base/logging.h"

namespace skyloft {

using TimerId = std::uint64_t;
inline constexpr TimerId kInvalidTimerId = 0;

class TimerWheel {
 public:
  using Callback = std::function<void()>;

  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;  // 64

  TimerWheel() {
    for (auto& level : wheel_) {
      for (auto& slot : level) {
        slot = std::make_unique<IntrusiveList<Timer>>();
      }
    }
  }

  // Schedules `cb` to fire when the wheel advances to absolute tick `when`
  // (must be >= Now()). Returns an id for Cancel().
  TimerId ScheduleAt(std::uint64_t when, Callback cb);
  TimerId ScheduleAfter(std::uint64_t delay, Callback cb) {
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  // Cancels a pending timer; false if it already fired or was cancelled.
  bool Cancel(TimerId id);

  // Advances the wheel to absolute tick `to`, firing due timers in tick
  // order (ties fire in insertion order).
  void AdvanceTo(std::uint64_t to);

  std::uint64_t Now() const { return now_; }
  std::size_t Pending() const { return pending_; }

 private:
  struct Timer : ListNode {
    TimerId id = kInvalidTimerId;
    std::uint64_t when = 0;
    Callback cb;
  };

  // Level l slot for expiry `when` given current time: timers within
  // kSlots^(l+1) ticks live at level l.
  int LevelFor(std::uint64_t when) const;
  void Insert(std::unique_ptr<Timer> timer);
  void CascadeInto(std::uint64_t slot_time, int level);

  std::array<std::array<std::unique_ptr<IntrusiveList<Timer>>, kSlots>, kLevels> wheel_;
  std::vector<std::unique_ptr<Timer>> storage_;  // owns live timers by id order
  std::uint64_t now_ = 0;
  TimerId next_id_ = 1;
  std::size_t pending_ = 0;
};

inline int TimerWheel::LevelFor(std::uint64_t when) const {
  const std::uint64_t delta = when - now_;
  for (int level = 0; level < kLevels; level++) {
    if (delta < (std::uint64_t{1} << (kSlotBits * (level + 1)))) {
      return level;
    }
  }
  return kLevels - 1;  // beyond horizon: clamp to the top level (re-cascades)
}

inline void TimerWheel::Insert(std::unique_ptr<Timer> timer) {
  const int level = LevelFor(timer->when);
  const std::uint64_t slot =
      (timer->when >> (kSlotBits * level)) & (kSlots - 1);
  wheel_[static_cast<std::size_t>(level)][static_cast<std::size_t>(slot)]->PushBack(
      timer.get());
  storage_.push_back(std::move(timer));
}

inline TimerId TimerWheel::ScheduleAt(std::uint64_t when, Callback cb) {
  SKYLOFT_CHECK(when >= now_) << "timer in the past";
  auto timer = std::make_unique<Timer>();
  timer->id = next_id_++;
  timer->when = when;
  timer->cb = std::move(cb);
  pending_++;
  Insert(std::move(timer));
  return next_id_ - 1;
}

inline bool TimerWheel::Cancel(TimerId id) {
  // Linear scan of owned storage: acceptable because Cancel is rare in our
  // workloads relative to schedule/fire (RTO timers mostly fire or complete).
  for (auto& timer : storage_) {
    if (timer && timer->id == id) {
      if (timer->IsLinked()) {
        // Remove from whichever slot list holds it.
        ListNode* node = timer.get();
        node->prev->next = node->next;
        node->next->prev = node->prev;
        node->prev = nullptr;
        node->next = nullptr;
      }
      timer.reset();
      pending_--;
      return true;
    }
  }
  return false;
}

inline void TimerWheel::CascadeInto(std::uint64_t slot_time, int level) {
  const std::uint64_t slot = (slot_time >> (kSlotBits * level)) & (kSlots - 1);
  auto& list = *wheel_[static_cast<std::size_t>(level)][static_cast<std::size_t>(slot)];
  std::vector<Timer*> moved;
  while (Timer* timer = list.PopFront()) {
    moved.push_back(timer);
  }
  for (Timer* timer : moved) {
    const int new_level = LevelFor(timer->when);
    const std::uint64_t new_slot =
        (timer->when >> (kSlotBits * new_level)) & (kSlots - 1);
    wheel_[static_cast<std::size_t>(new_level)][static_cast<std::size_t>(new_slot)]->PushBack(
        timer);
  }
}

inline void TimerWheel::AdvanceTo(std::uint64_t to) {
  SKYLOFT_CHECK(to >= now_);
  while (now_ < to) {
    now_++;
    // Cascade upper levels whenever a level's cursor wraps to slot 0.
    for (int level = 1; level < kLevels; level++) {
      if ((now_ & ((std::uint64_t{1} << (kSlotBits * level)) - 1)) == 0) {
        CascadeInto(now_, level);
      } else {
        break;
      }
    }
    const std::uint64_t slot = now_ & (kSlots - 1);
    auto& list = *wheel_[0][static_cast<std::size_t>(slot)];
    std::vector<Timer*> due;
    while (Timer* timer = list.PopFront()) {
      due.push_back(timer);
    }
    for (Timer* timer : due) {
      if (timer->when == now_) {
        timer->cb();
        pending_--;
        // Release owned storage for this id.
        for (auto& owned : storage_) {
          if (owned.get() == timer) {
            owned.reset();
            break;
          }
        }
      } else {
        // Same slot, later lap: reinsert relative to the new now_.
        const int new_level = LevelFor(timer->when);
        const std::uint64_t new_slot =
            (timer->when >> (kSlotBits * new_level)) & (kSlots - 1);
        wheel_[static_cast<std::size_t>(new_level)][static_cast<std::size_t>(new_slot)]
            ->PushBack(timer);
      }
    }
  }
  // Compact released storage occasionally to bound memory.
  if (storage_.size() > 4096 && pending_ * 2 < storage_.size()) {
    std::vector<std::unique_ptr<Timer>> live;
    live.reserve(pending_);
    for (auto& timer : storage_) {
      if (timer) {
        live.push_back(std::move(timer));
      }
    }
    storage_ = std::move(live);
  }
}

}  // namespace skyloft

#endif  // SRC_BASE_TIMER_WHEEL_H_
