// Bitmaps: the plain 64-bit map modeling the UINTR architectural registers
// (UIRR, PIR — up to 64 pending user-interrupt vectors), and a multi-word
// atomic bitmap the host scheduler uses to publish per-worker idle state so
// external placement finds an idle worker in O(workers/64) word scans
// instead of an O(workers) flag walk.
#ifndef SRC_BASE_BITMAP_H_
#define SRC_BASE_BITMAP_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>

#include "src/base/logging.h"

namespace skyloft {

class Bitmap64 {
 public:
  Bitmap64() = default;
  explicit Bitmap64(std::uint64_t bits) : bits_(bits) {}

  void Set(int bit) {
    SKYLOFT_DCHECK(bit >= 0 && bit < 64);
    bits_ |= (std::uint64_t{1} << bit);
  }

  void Clear(int bit) {
    SKYLOFT_DCHECK(bit >= 0 && bit < 64);
    bits_ &= ~(std::uint64_t{1} << bit);
  }

  bool Test(int bit) const {
    SKYLOFT_DCHECK(bit >= 0 && bit < 64);
    return (bits_ >> bit) & 1;
  }

  bool Any() const { return bits_ != 0; }
  bool None() const { return bits_ == 0; }
  int Count() const { return std::popcount(bits_); }

  // Index of the highest set bit (interrupt priority: highest vector wins),
  // or -1 when empty.
  int HighestSet() const {
    if (bits_ == 0) {
      return -1;
    }
    return 63 - std::countl_zero(bits_);
  }

  // Atomically (in the model's sense) take all bits and clear.
  std::uint64_t Exchange(std::uint64_t new_bits) {
    const std::uint64_t old = bits_;
    bits_ = new_bits;
    return old;
  }

  void Or(std::uint64_t bits) { bits_ |= bits; }
  std::uint64_t Raw() const { return bits_; }

 private:
  std::uint64_t bits_ = 0;
};

// Fixed-size concurrent bitmap over 64-bit atomic words. Writers flip their
// own bit with an RMW on the owning word; readers scan whole words. All
// accesses are relaxed — the map is an advisory hint (idle-worker placement),
// never a synchronization edge.
class AtomicBitmap {
 public:
  explicit AtomicBitmap(int bits)
      : bits_(bits),
        words_((bits + 63) / 64),
        data_(std::make_unique<std::atomic<std::uint64_t>[]>(static_cast<std::size_t>(words_))) {
    SKYLOFT_CHECK(bits >= 1);
    for (int i = 0; i < words_; i++) {
      data_[i].store(0, std::memory_order_relaxed);
    }
  }

  void Set(int bit) {
    SKYLOFT_DCHECK(bit >= 0 && bit < bits_);
    data_[bit >> 6].fetch_or(std::uint64_t{1} << (bit & 63), std::memory_order_relaxed);
  }

  void Clear(int bit) {
    SKYLOFT_DCHECK(bit >= 0 && bit < bits_);
    data_[bit >> 6].fetch_and(~(std::uint64_t{1} << (bit & 63)), std::memory_order_relaxed);
  }

  bool Test(int bit) const {
    SKYLOFT_DCHECK(bit >= 0 && bit < bits_);
    return (data_[bit >> 6].load(std::memory_order_relaxed) >> (bit & 63)) & 1;
  }

  // Index of the lowest set bit, or -1 when the map is (racily) empty.
  int FindFirstSet() const {
    for (int w = 0; w < words_; w++) {
      const std::uint64_t word = data_[w].load(std::memory_order_relaxed);
      if (word != 0) {
        return w * 64 + std::countr_zero(word);
      }
    }
    return -1;
  }

  int bits() const { return bits_; }

 private:
  int bits_;
  int words_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> data_;
};

}  // namespace skyloft

#endif  // SRC_BASE_BITMAP_H_
