// 64-bit bitmap used to model the UINTR architectural registers (UIRR, PIR),
// which hold up to 64 pending user-interrupt vectors.
#ifndef SRC_BASE_BITMAP_H_
#define SRC_BASE_BITMAP_H_

#include <bit>
#include <cstdint>

#include "src/base/logging.h"

namespace skyloft {

class Bitmap64 {
 public:
  Bitmap64() = default;
  explicit Bitmap64(std::uint64_t bits) : bits_(bits) {}

  void Set(int bit) {
    SKYLOFT_DCHECK(bit >= 0 && bit < 64);
    bits_ |= (std::uint64_t{1} << bit);
  }

  void Clear(int bit) {
    SKYLOFT_DCHECK(bit >= 0 && bit < 64);
    bits_ &= ~(std::uint64_t{1} << bit);
  }

  bool Test(int bit) const {
    SKYLOFT_DCHECK(bit >= 0 && bit < 64);
    return (bits_ >> bit) & 1;
  }

  bool Any() const { return bits_ != 0; }
  bool None() const { return bits_ == 0; }
  int Count() const { return std::popcount(bits_); }

  // Index of the highest set bit (interrupt priority: highest vector wins),
  // or -1 when empty.
  int HighestSet() const {
    if (bits_ == 0) {
      return -1;
    }
    return 63 - std::countl_zero(bits_);
  }

  // Atomically (in the model's sense) take all bits and clear.
  std::uint64_t Exchange(std::uint64_t new_bits) {
    const std::uint64_t old = bits_;
    bits_ = new_bits;
    return old;
  }

  void Or(std::uint64_t bits) { bits_ |= bits; }
  std::uint64_t Raw() const { return bits_; }

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace skyloft

#endif  // SRC_BASE_BITMAP_H_
