// Cross-layer scheduling-event tracer.
//
// A fixed-capacity ring of timestamped scheduling events shared by both
// substrates: the simulated libos engines emit assignments, preemptions,
// application switches and faults, and the host M:N runtime emits the same
// vocabulary from real worker threads — including from inside the preemption
// signal handler. Events are either instants ("ph":"i") or duration spans
// ("ph":"X" complete events: core-occupancy segments, app switches, fault
// stalls). Dumps as a chrome://tracing / Perfetto-loadable JSON array.
//
// Concurrency: RecordEvent reserves a slot with one relaxed fetch_add and
// then does plain stores, so it is async-signal-safe and allocation-free
// (skylint's signal-unsafe-call rule holds for the host preemption path) and
// multiple host workers can record concurrently without locks. Readers
// (Snapshot/CountOf/ToJson) assume the recording side is quiesced — after
// Simulation::Run or Runtime::Run returns.
#ifndef SRC_BASE_TRACE_H_
#define SRC_BASE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/compiler.h"
#include "src/base/time.h"

namespace skyloft {

enum class TraceEventType : std::uint8_t {
  kAssign,      // task placed on a core (instant)
  kSegmentEnd,  // task segment completed: finish or block (instant)
  kPreempt,     // task preempted off a core (instant)
  kAppSwitch,   // inter-application kthread switch on a core (span: switch cost)
  kFault,       // page fault blocked the core's kthread (instant)
  kFaultDone,   // fault resolved (instant)
  kRun,         // core occupied by one task segment (span)
  kFaultStall,  // core stalled on a fault, start..resolution (span)
  kSignal,      // host preemption signal accepted at a safe point (instant)
  kDeferred,    // host preemption signal deferred at an unsafe PC (instant)
  kQuantumSet,  // preemption quantum retuned; task_id carries the new quantum
                // in ns. Rendered as a Perfetto counter event ("ph":"C") so
                // quantum-vs-time plots as a counter track per worker.
};

const char* TraceEventName(TraceEventType type);

struct TraceEvent {
  TimeNs when = 0;
  DurationNs dur = -1;  // >= 0: "ph":"X" complete event; < 0: instant
  TraceEventType type = TraceEventType::kAssign;
  int worker = -1;
  std::uint64_t task_id = 0;
  int app_id = -1;
};

class SchedTracer {
 public:
  explicit SchedTracer(std::size_t capacity = 1 << 16)
      : capacity_(capacity == 0 ? 1 : capacity) {
    events_.resize(capacity_);
  }

  SchedTracer(const SchedTracer&) = delete;
  SchedTracer& operator=(const SchedTracer&) = delete;

  // Hot-path recording. Reserves a ring slot and fills it in place; wraps by
  // overwriting the oldest event once capacity is exceeded. Safe to call
  // concurrently from multiple workers and from the preemption signal
  // handler (no allocation, no locks, no stdio).
  SKYLOFT_SIGNAL_SAFE void RecordEvent(TimeNs when, TraceEventType type, int worker,
                                       std::uint64_t task_id, int app_id,
                                       DurationNs dur = -1) {
    const std::uint64_t seq = total_.fetch_add(1, std::memory_order_relaxed);
    TraceEvent& slot = events_[static_cast<std::size_t>(seq % capacity_)];
    slot.when = when;
    slot.dur = dur;
    slot.type = type;
    slot.worker = worker;
    slot.task_id = task_id;
    slot.app_id = app_id;
  }

  // Instant-event shorthand kept for the (single-threaded) sim engines.
  void Record(TimeNs when, TraceEventType type, int worker, std::uint64_t task_id,
              int app_id) {
    RecordEvent(when, type, worker, task_id, app_id, /*dur=*/-1);
  }

  // Duration ("ph":"X") shorthand: a span starting at `start` lasting `dur`.
  void RecordSpan(TimeNs start, DurationNs dur, TraceEventType type, int worker,
                  std::uint64_t task_id, int app_id) {
    RecordEvent(start, type, worker, task_id, app_id, dur >= 0 ? dur : 0);
  }

  // Events in record order (oldest retained first), accounting for wrap.
  std::vector<TraceEvent> Snapshot() const;

  // Counts events of one type over the retained window.
  std::size_t CountOf(TraceEventType type) const;

  // chrome://tracing "trace events" JSON array. Instants carry the mandatory
  // "s":"t" scope; timestamps/durations are fractional microseconds with ns
  // resolution (3 decimals), so sub-µs events stay distinct in viewers.
  std::string ToJson() const;

  // Number of events ever recorded (may exceed the retained window).
  std::uint64_t total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }
  // Number of events currently retained: min(total_recorded, capacity).
  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  void Clear() { total_.store(0, std::memory_order_relaxed); }

 private:
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::atomic<std::uint64_t> total_{0};
};

// Formats one event as a chrome-trace JSON object into buf; returns buf.
// Exposed for the golden-string tests.
const char* TraceEventToJson(const TraceEvent& event, char* buf, std::size_t len);

}  // namespace skyloft

#endif  // SRC_BASE_TRACE_H_
