// Fixed-capacity single-producer/single-consumer ring buffer.
//
// Used for the simulated NIC's per-core descriptor rings (§3.5 of the paper:
// DPDK poll core -> isolated worker cores via shared ring buffers) and by the
// host runtime for cross-worker mailboxes.
#ifndef SRC_BASE_RING_BUFFER_H_
#define SRC_BASE_RING_BUFFER_H_

#include <atomic>
#include <cstddef>
#include <vector>

#include "src/base/compiler.h"
#include "src/base/logging.h"

namespace skyloft {

template <typename T>
class SpscRing {
 public:
  // Capacity must be a power of two (masked indexing).
  explicit SpscRing(std::size_t capacity) : mask_(capacity - 1), slots_(capacity) {
    SKYLOFT_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0)
        << "capacity must be a power of two";
  }

  bool TryPush(const T& value) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail > mask_) {
      return false;  // full
    }
    slots_[head & mask_] = value;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  bool TryPop(T* out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail == head) {
      return false;  // empty
    }
    *out = slots_[tail & mask_];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  std::size_t SizeApprox() const {
    return head_.load(std::memory_order_acquire) - tail_.load(std::memory_order_acquire);
  }

  bool Empty() const { return SizeApprox() == 0; }
  std::size_t Capacity() const { return mask_ + 1; }

 private:
  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};
  std::size_t mask_;
  std::vector<T> slots_;
};

}  // namespace skyloft

#endif  // SRC_BASE_RING_BUFFER_H_
