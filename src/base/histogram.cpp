#include "src/base/histogram.h"

#include <algorithm>
#include <bit>

#include "src/base/logging.h"

namespace skyloft {

LatencyHistogram::LatencyHistogram() : buckets_(kBucketRanges * kSubBuckets, 0) {}

int LatencyHistogram::BucketIndex(std::int64_t value) {
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  const auto v = static_cast<std::uint64_t>(value);
  const int msb = 63 - std::countl_zero(v);
  const int range = msb - kSubBucketBits + 1;  // >= 1
  const int sub = static_cast<int>(v >> range);  // in [kSubBuckets/2, kSubBuckets)
  return range * kSubBuckets + sub;
}

std::int64_t LatencyHistogram::BucketUpperBound(int index) {
  const int range = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (range == 0) {
    return sub;
  }
  return (static_cast<std::int64_t>(sub) + 1) << range;
}

void LatencyHistogram::Record(std::int64_t value) {
  if (value < 0) {
    value = 0;
  }
  const int index = BucketIndex(value);
  SKYLOFT_DCHECK(index >= 0 && index < static_cast<int>(buckets_.size()));
  buckets_[static_cast<std::size_t>(index)]++;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_++;
  sum_ += static_cast<double>(value);
}

std::int64_t LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  if (target <= 1) {
    // The quantile lands on the first sample: report the tracked minimum
    // exactly instead of its bucket's upper bound, which can exceed it.
    return min_;
  }
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); i++) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::clamp(BucketUpperBound(static_cast<int>(i)), min_, max_);
    }
  }
  return max_;
}

double LatencyHistogram::Mean() const {
  if (count_ == 0) {
    return 0.0;
  }
  return sum_ / static_cast<double>(count_);
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  SKYLOFT_CHECK(buckets_.size() == other.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); i++) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

}  // namespace skyloft
