#include "src/base/histogram.h"

#include <algorithm>
#include <bit>

#include "src/base/logging.h"

namespace skyloft {

LatencyHistogram::LatencyHistogram() : buckets_(kBucketRanges * kSubBuckets, 0) {}

int LatencyHistogram::BucketIndex(std::int64_t value) {
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  const auto v = static_cast<std::uint64_t>(value);
  const int msb = 63 - std::countl_zero(v);
  const int range = msb - kSubBucketBits + 1;  // >= 1
  const int sub = static_cast<int>(v >> range);  // in [kSubBuckets/2, kSubBuckets)
  return range * kSubBuckets + sub;
}

std::int64_t LatencyHistogram::BucketUpperBound(int index) {
  const int range = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (range == 0) {
    return sub;
  }
  return (static_cast<std::int64_t>(sub) + 1) << range;
}

std::int64_t LatencyHistogram::BucketLowerBound(int index) {
  const int range = index / kSubBuckets;
  const int sub = index % kSubBuckets;
  if (range == 0) {
    return sub;
  }
  return static_cast<std::int64_t>(sub) << range;
}

void LatencyHistogram::Record(std::int64_t value) {
  if (value < 0) {
    value = 0;
  }
  const int index = BucketIndex(value);
  SKYLOFT_DCHECK(index >= 0 && index < static_cast<int>(buckets_.size()));
  buckets_[static_cast<std::size_t>(index)]++;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  count_++;
  sum_ += static_cast<double>(value);
}

std::int64_t LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const auto target =
      static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
  if (target <= 1) {
    // The quantile lands on the first sample: report the tracked minimum
    // exactly instead of its bucket's upper bound, which can exceed it.
    return min_;
  }
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); i++) {
    seen += buckets_[i];
    if (seen >= target) {
      return std::clamp(BucketUpperBound(static_cast<int>(i)), min_, max_);
    }
  }
  return max_;
}

double LatencyHistogram::Mean() const {
  if (count_ == 0) {
    return 0.0;
  }
  return sum_ / static_cast<double>(count_);
}

void LatencyHistogram::Reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = 0;
  max_ = 0;
  sum_ = 0.0;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  SKYLOFT_CHECK(buckets_.size() == other.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); i++) {
    buckets_[i] += other.buckets_[i];
  }
  if (other.count_ > 0) {
    if (count_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

LatencyHistogram LatencyHistogram::DeltaSince(const LatencyHistogram& baseline) const {
  SKYLOFT_CHECK(buckets_.size() == baseline.buckets_.size());
  LatencyHistogram delta;
  // `prefix` tracks whether `baseline` is a strict prefix of this histogram
  // (no Reset() between the snapshots); only then do cumulative extremes and
  // the cumulative sum bound the window.
  bool prefix = count_ >= baseline.count_ && sum_ >= baseline.sum_;
  int first = -1;
  int last = -1;
  for (std::size_t i = 0; i < buckets_.size(); i++) {
    const std::uint64_t cur = buckets_[i];
    const std::uint64_t base = baseline.buckets_[i];
    if (cur < base) {
      // A Reset() ran between the snapshots; saturate at zero rather than
      // wrapping. The window under-reports once and the caller's next
      // baseline copy self-corrects.
      prefix = false;
      continue;
    }
    const std::uint64_t d = cur - base;
    if (d == 0) {
      continue;
    }
    delta.buckets_[i] = d;
    delta.count_ += d;
    if (first < 0) {
      first = static_cast<int>(i);
    }
    last = static_cast<int>(i);
  }
  if (delta.count_ == 0) {
    // Empty window: a defined empty histogram (Percentile() -> kEmptySentinel,
    // Mean() -> 0). No division or bucket scan happens on this path.
    return delta;
  }
  delta.min_ = BucketLowerBound(first);
  delta.max_ = BucketUpperBound(last);
  if (prefix) {
    // Every window sample is also a cumulative sample, so the cumulative
    // extremes bracket the window's.
    delta.min_ = std::max(delta.min_, Min());
    delta.max_ = std::min(delta.max_, Max());
    delta.sum_ = sum_ - baseline.sum_;
  } else {
    for (std::size_t i = 0; i < delta.buckets_.size(); i++) {
      if (delta.buckets_[i] == 0) {
        continue;
      }
      const std::int64_t rep =
          std::clamp(BucketUpperBound(static_cast<int>(i)), delta.min_, delta.max_);
      delta.sum_ += static_cast<double>(delta.buckets_[i]) * static_cast<double>(rep);
    }
  }
  return delta;
}

}  // namespace skyloft
