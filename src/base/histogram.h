// Log-bucketed latency histogram with percentile queries.
//
// HdrHistogram-style layout: values are bucketed with a fixed number of
// sub-buckets per power-of-two range, giving a bounded relative error over a
// huge dynamic range with O(1) recording. With kSubBucketBits = 7 a bucketed
// value lands in sub-bucket [64, 128) of its range, so the bucket upper
// bound overshoots the true value by at most 1/64 (~1.6%); Percentile()
// additionally clamps to the exact tracked [min, max]. This is what every
// benchmark uses to report p50/p99/p99.9 wakeup latencies and slowdowns.
#ifndef SRC_BASE_HISTOGRAM_H_
#define SRC_BASE_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace skyloft {

class LatencyHistogram {
 public:
  LatencyHistogram();

  // Records one sample. Negative samples are clamped to zero.
  void Record(std::int64_t value);

  // Value at quantile q in [0, 1]; returns kEmptySentinel (0) when empty —
  // never divides or scans in that case. The returned value is the upper
  // bound of the bucket containing the quantile (within 1/64 above the true
  // sample), clamped to the tracked [min, max]; q = 0 returns Min() exactly
  // and q = 1 returns Max() exactly.
  std::int64_t Percentile(double q) const;

  // Defined result of Percentile()/Min()/Max() on an empty histogram (or an
  // empty interval window). Callers that must distinguish "no samples" from
  // "a zero-valued sample" check Count() == 0, not the sentinel.
  static constexpr std::int64_t kEmptySentinel = 0;

  std::int64_t Min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t Max() const { return count_ == 0 ? 0 : max_; }
  double Mean() const;
  std::uint64_t Count() const { return count_; }

  void Reset();

  // Merges another histogram into this one.
  void Merge(const LatencyHistogram& other);

  // Interval snapshot: the samples recorded here since `baseline` (an earlier
  // copy of this histogram) as a standalone histogram. Cumulative histograms
  // are useless for feedback control — a window that misbehaved for 100 ms is
  // invisible behind hours of good samples — so controllers keep a baseline
  // copy and diff against it each poll.
  //
  // Computed by bucket-wise *saturating* subtraction: a Reset() between the
  // two snapshots yields a short (never negative) window instead of garbage,
  // and the next poll's fresh baseline self-corrects. Window min/max are
  // reconstructed from the outermost occupied delta buckets (exact below 128,
  // within one bucket otherwise), tightened by the cumulative extremes when no
  // Reset() intervened; the sum (hence Mean) is exact in that same case and
  // bucket-approximated otherwise. An empty window is a valid empty
  // histogram: Count() == 0 and Percentile() returns kEmptySentinel — callers
  // polling faster than samples arrive must check Count() before trusting it.
  LatencyHistogram DeltaSince(const LatencyHistogram& baseline) const;

 private:
  static constexpr int kSubBucketBits = 7;  // 128 sub-buckets: <=1/64 relative error
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  static constexpr int kBucketRanges = 64 - kSubBucketBits;

  static int BucketIndex(std::int64_t value);
  static std::int64_t BucketUpperBound(int index);
  static std::int64_t BucketLowerBound(int index);

  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace skyloft

#endif  // SRC_BASE_HISTOGRAM_H_
