// Chase-Lev work-stealing deque (Chase & Lev, SPAA '05; memory orderings
// after Lê et al., PPoPP '13, strengthened to avoid standalone fences —
// see below).
//
// One owner thread pushes and pops at the bottom; any number of thieves
// steal from the top with a CAS. This is the local runqueue of the host
// scheduler's lock-free fast path (src/runtime/host_sched.cpp): the owner's
// push/pop are a handful of plain and relaxed-atomic operations, and cross-
// thread synchronization is paid only on the one-element race and on steals.
//
// Memory-ordering argument for the take/steal race (DESIGN.md section 9):
//   - PopBottom publishes its claim with a seq_cst store to bottom_ and then
//     reads top_ with seq_cst; Steal reads top_ then bottom_ with seq_cst.
//     The two accesses to {top_, bottom_} in each operation therefore cannot
//     both see the other's "before" state: either the owner sees the thief's
//     incremented top_, or the thief sees the owner's decremented bottom_,
//     so for a single remaining element at most one of them passes its range
//     check into the CAS — and the CAS on top_ arbitrates that last case.
//   - Item contents are published by PushBottom's release store of bottom_
//     and acquired by Steal's bottom_ load, so a thief that wins the CAS
//     sees everything the owner wrote into the item before pushing.
// The original formulation uses seq_cst thread fences with relaxed accesses;
// we put the ordering on the accesses themselves, which is marginally
// stronger, measurably identical on x86, and — unlike standalone fences —
// modeled precisely by ThreadSanitizer, keeping the TSan CI job exact.
//
// Growth: the circular buffer doubles when full. A thief may still hold a
// pointer to a retired buffer; retired buffers are kept alive until the
// deque is destroyed (the standard leak-to-quiescence scheme — growth is
// rare and bounded, and the top_ CAS makes stale reads harmless: the old
// buffer's slots in [top, bottom) are never rewritten).
#ifndef SRC_BASE_WS_DEQUE_H_
#define SRC_BASE_WS_DEQUE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/compiler.h"
#include "src/base/logging.h"

namespace skyloft {

enum class StealOutcome {
  kSuccess,   // *out holds the stolen item
  kEmpty,     // nothing to steal
  kLostRace,  // another thief (or the owner's pop) won the CAS; retry is fair game
};

template <typename T>
class WsDeque {
 public:
  explicit WsDeque(std::int64_t initial_capacity = 64) {
    SKYLOFT_CHECK(initial_capacity > 0 &&
                  (initial_capacity & (initial_capacity - 1)) == 0)
        << "capacity must be a power of two";
    auto buf = std::make_unique<Buffer>(initial_capacity);
    buffer_.store(buf.get(), std::memory_order_relaxed);
    buffers_.push_back(std::move(buf));
  }

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  // Owner only. Never fails; grows the buffer when full.
  SKYLOFT_NO_SWITCH void PushBottom(T* item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    if (b - t >= buf->capacity) {
      buf = Grow(buf, t, b);
    }
    buf->slots[b & buf->mask].store(item, std::memory_order_relaxed);
    // Release: a thief acquiring bottom_ sees the slot and the item's fields.
    bottom_.store(b + 1, std::memory_order_release);
  }

  // Owner only. LIFO end; returns nullptr when empty (or when a thief wins
  // the last element).
  SKYLOFT_NO_SWITCH T* PopBottom() {
    // Empty fast path on two relaxed loads: only the owner writes bottom_,
    // and top_ is monotonic, so a stale top_ can only under-read — if even
    // the stale value says empty, the deque is empty. This keeps the
    // owner's dequeue-when-drained loop (the scheduler's common case) off
    // the seq_cst claim/undo dance below.
    const std::int64_t b0 = bottom_.load(std::memory_order_relaxed);
    if (top_.load(std::memory_order_relaxed) >= b0) {
      return nullptr;
    }
    const std::int64_t b = b0 - 1;
    Buffer* buf = buffer_.load(std::memory_order_relaxed);
    // Claim the slot before reading top_ (see the ordering argument above).
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {
      // Empty: undo the claim.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T* item = buf->slots[b & buf->mask].load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race thieves for it through top_.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // a thief got there first
      }
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  // Any thread. FIFO end.
  SKYLOFT_NO_SWITCH StealOutcome Steal(T** out) {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) {
      return StealOutcome::kEmpty;
    }
    Buffer* buf = buffer_.load(std::memory_order_acquire);
    T* item = buf->slots[t & buf->mask].load(std::memory_order_relaxed);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return StealOutcome::kLostRace;
    }
    *out = item;
    return StealOutcome::kSuccess;
  }

  // Racy size estimate for steal-half sizing and placement. Signal-safe:
  // two relaxed loads.
  SKYLOFT_SIGNAL_SAFE std::int64_t SizeApprox() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

 private:
  struct Buffer {
    explicit Buffer(std::int64_t cap)
        : capacity(cap),
          mask(cap - 1),
          slots(std::make_unique<std::atomic<T*>[]>(static_cast<std::size_t>(cap))) {}
    const std::int64_t capacity;
    const std::int64_t mask;
    std::unique_ptr<std::atomic<T*>[]> slots;
  };

  // Owner only (called from PushBottom).
  SKYLOFT_NO_SWITCH Buffer* Grow(Buffer* old, std::int64_t t, std::int64_t b) {
    auto grown = std::make_unique<Buffer>(old->capacity * 2);
    for (std::int64_t i = t; i < b; i++) {
      grown->slots[i & grown->mask].store(old->slots[i & old->mask].load(std::memory_order_relaxed),
                                          std::memory_order_relaxed);
    }
    Buffer* raw = grown.get();
    // Release: a thief that acquires the new pointer sees the copied slots.
    // Thieves still holding `old` read slots the owner will never rewrite.
    buffer_.store(raw, std::memory_order_release);
    buffers_.push_back(std::move(grown));
    return raw;
  }

  // Thieves CAS top_ while the owner spins on bottom_: keep them on separate
  // cache lines so steals never stall the owner's push/pop line.
  alignas(kCacheLineSize) std::atomic<std::int64_t> top_{0};
  alignas(kCacheLineSize) std::atomic<std::int64_t> bottom_{0};
  alignas(kCacheLineSize) std::atomic<Buffer*> buffer_{nullptr};
  // All buffers ever allocated, retired ones included (owner-only mutation;
  // freed when the deque dies, after every thief is quiesced).
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

}  // namespace skyloft

#endif  // SRC_BASE_WS_DEQUE_H_
