#include "src/base/trace.h"

#include <cinttypes>
#include <cstdio>

namespace skyloft {

const char* TraceEventName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kAssign:
      return "assign";
    case TraceEventType::kSegmentEnd:
      return "segment_end";
    case TraceEventType::kPreempt:
      return "preempt";
    case TraceEventType::kAppSwitch:
      return "app_switch";
    case TraceEventType::kFault:
      return "fault";
    case TraceEventType::kFaultDone:
      return "fault_done";
    case TraceEventType::kRun:
      return "run";
    case TraceEventType::kFaultStall:
      return "fault_stall";
    case TraceEventType::kSignal:
      return "preempt_signal";
    case TraceEventType::kDeferred:
      return "preempt_deferred";
    case TraceEventType::kQuantumSet:
      return "quantum_set";
  }
  return "?";
}

std::vector<TraceEvent> SchedTracer::Snapshot() const {
  const std::uint64_t total = total_.load(std::memory_order_relaxed);
  const std::size_t n =
      total < capacity_ ? static_cast<std::size_t>(total) : capacity_;
  // Once wrapped, the slot the next write would take is the oldest event.
  const std::size_t start =
      total < capacity_ ? 0 : static_cast<std::size_t>(total % capacity_);
  std::vector<TraceEvent> ordered;
  ordered.reserve(n);
  for (std::size_t i = 0; i < n; i++) {
    ordered.push_back(events_[(start + i) % capacity_]);
  }
  return ordered;
}

std::size_t SchedTracer::size() const {
  const std::uint64_t total = total_.load(std::memory_order_relaxed);
  return total < capacity_ ? static_cast<std::size_t>(total) : capacity_;
}

std::size_t SchedTracer::CountOf(TraceEventType type) const {
  const std::size_t n = size();
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; i++) {
    if (events_[i].type == type) {
      count++;
    }
  }
  return count;
}

const char* TraceEventToJson(const TraceEvent& event, char* buf, std::size_t len) {
  // Chrome-trace timestamps are microseconds; emit 3 decimals to keep ns
  // resolution so sub-µs scheduling events stay distinct.
  const double ts_us = static_cast<double>(event.when) / 1000.0;
  if (event.type == TraceEventType::kQuantumSet) {
    // Counter event: Perfetto plots args values as a counter track keyed on
    // (pid, name), so quantum-vs-time is directly visible in the UI. The
    // task_id field carries the new quantum in ns (0 = preemption disabled).
    const double quantum_us = static_cast<double>(event.task_id) / 1000.0;
    std::snprintf(buf, len,
                  "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,"
                  "\"pid\":%d,\"tid\":%d,\"args\":{\"quantum_us\":%.3f}}",
                  TraceEventName(event.type), ts_us, event.app_id, event.worker,
                  quantum_us);
    return buf;
  }
  if (event.dur >= 0) {
    const double dur_us = static_cast<double>(event.dur) / 1000.0;
    std::snprintf(buf, len,
                  "{\"name\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
                  "\"pid\":%d,\"tid\":%d,\"args\":{\"task\":%" PRIu64 "}}",
                  TraceEventName(event.type), ts_us, dur_us, event.app_id,
                  event.worker, event.task_id);
  } else {
    // Instant events require a scope; "t" (thread) matches pid/tid scoping.
    std::snprintf(buf, len,
                  "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%.3f,"
                  "\"pid\":%d,\"tid\":%d,\"args\":{\"task\":%" PRIu64 "}}",
                  TraceEventName(event.type), ts_us, event.app_id, event.worker,
                  event.task_id);
  }
  return buf;
}

std::string SchedTracer::ToJson() const {
  std::string out = "[";
  bool first = true;
  char buf[256];
  for (const TraceEvent& event : Snapshot()) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += TraceEventToJson(event, buf, sizeof(buf));
  }
  out += "]";
  return out;
}

}  // namespace skyloft
