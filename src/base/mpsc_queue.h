// Intrusive multi-producer single-consumer mailbox.
//
// The host scheduler's lock-free fast path gives every worker one of these:
// remote workers and off-runtime threads push submissions with a single CAS,
// and the owning worker drains the whole backlog with one exchange at
// dequeue time (see src/runtime/host_sched.cpp). The queue is a Treiber
// stack: Push prepends under a release CAS loop, DrainReversed takes the
// entire chain with an acquire exchange. The consumer therefore receives the
// nodes in REVERSE arrival order — which is exactly what the scheduler
// wants, because pushing the chain into a Chase-Lev deque bottom-first makes
// the earliest arrival pop first (FIFO run order falls out of two reversals
// cancelling).
//
// Ownership contract: a node may be in at most one MpscQueue at a time, and
// must not be pushed again until the consumer has drained it (the scheduler
// guarantees this — a task is running, queued once, or parked). Push is
// lock-free (the CAS loop retries only under producer contention);
// DrainReversed is wait-free.
#ifndef SRC_BASE_MPSC_QUEUE_H_
#define SRC_BASE_MPSC_QUEUE_H_

#include <atomic>

#include "src/base/compiler.h"

namespace skyloft {

// Intrusive hook: queued types derive from this (SchedItem does, so the
// runqueue mailboxes need no allocation).
struct MpscNode {
  MpscNode() = default;
  // The link is live only while the node sits inside a queue; copying or
  // moving a node (container reshuffles of un-queued items) never transfers
  // it. Copying a node that IS queued is a caller bug, same as ListNode.
  MpscNode(const MpscNode&) noexcept {}
  MpscNode& operator=(const MpscNode&) noexcept { return *this; }

  std::atomic<MpscNode*> mpsc_next{nullptr};
};

// T must derive from MpscNode.
template <typename T>
class MpscQueue {
 public:
  MpscQueue() = default;
  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  // Any thread. Returns the number of CAS retries taken (0 on the
  // uncontended path), so callers can feed a contention counter.
  SKYLOFT_NO_SWITCH int Push(T* item) {
    MpscNode* node = item;
    int retries = 0;
    MpscNode* old_head = head_.load(std::memory_order_relaxed);
    node->mpsc_next.store(old_head, std::memory_order_relaxed);
    // Release so the consumer's acquire exchange sees the item's fields;
    // RMWs extend the release sequence, so every producer in the chain
    // synchronizes with the drain, not just the last one.
    while (!head_.compare_exchange_weak(old_head, node, std::memory_order_release,
                                        std::memory_order_relaxed)) {
      node->mpsc_next.store(old_head, std::memory_order_relaxed);
      retries++;
    }
    return retries;
  }

  // Consumer only. Takes the whole backlog in one exchange and returns it as
  // a null-terminated chain (follow with Next) in reverse arrival order.
  SKYLOFT_NO_SWITCH T* DrainReversed() {
    MpscNode* chain = head_.exchange(nullptr, std::memory_order_acquire);
    return static_cast<T*>(chain);
  }

  // Follow the drained chain. Only valid on nodes returned by DrainReversed
  // (the links are stable once the consumer owns the chain).
  SKYLOFT_NO_SWITCH static T* Next(T* item) {
    return static_cast<T*>(item->mpsc_next.load(std::memory_order_relaxed));
  }

  // Racy emptiness hint (placement decisions, preemption tick). Safe to call
  // from the preemption signal handler: one relaxed load, no allocation.
  SKYLOFT_SIGNAL_SAFE bool EmptyApprox() const {
    return head_.load(std::memory_order_relaxed) == nullptr;
  }

 private:
  // Producers from every worker CAS this word; keep it off any neighbor's
  // hot state.
  alignas(kCacheLineSize) std::atomic<MpscNode*> head_{nullptr};
};

}  // namespace skyloft

#endif  // SRC_BASE_MPSC_QUEUE_H_
