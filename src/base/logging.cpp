#include "src/base/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace skyloft {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& msg) {
  if (level < GetLogLevel()) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), file, line, msg.c_str());
}

void LogFatal(const char* file, int line, const std::string& msg) {
  {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::fprintf(stderr, "[FATAL %s:%d] %s\n", file, line, msg.c_str());
    std::fflush(stderr);
  }
  std::abort();
}

}  // namespace skyloft
