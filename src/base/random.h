// Deterministic pseudo-random number generation and the service-time
// distributions used by the paper's workloads.
//
// We use splitmix64/xoshiro-style generators instead of <random> engines so
// that simulation traces are reproducible across standard libraries.
#ifndef SRC_BASE_RANDOM_H_
#define SRC_BASE_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "src/base/logging.h"
#include "src/base/time.h"

namespace skyloft {

// splitmix64: tiny, well-distributed, and stable across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  // Derives an independent stream seed from (base seed, stream index) —
  // per-node RNG splitting for cluster simulations. A plain `seed ^ stream`
  // is dangerous with splitmix64 (nearby streams start a fixed small offset
  // apart in the same underlying sequence), so the stream index is mixed
  // through a full avalanche round first. Stream 0 returns the base seed
  // unchanged, keeping single-node runs bit-identical to their historical
  // traces.
  static std::uint64_t DeriveStream(std::uint64_t seed, std::uint64_t stream) {
    if (stream == 0) {
      return seed;
    }
    std::uint64_t z = seed + stream * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t NextU64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform integer in [0, bound).
  std::uint64_t NextBelow(std::uint64_t bound) {
    SKYLOFT_DCHECK(bound > 0);
    return NextU64() % bound;
  }

  // Bernoulli trial with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

  // Exponential with the given mean (used for Poisson inter-arrival gaps).
  double NextExponential(double mean) {
    double u = NextDouble();
    // Guard the log against u == 0.
    if (u <= 0.0) {
      u = 1e-18;
    }
    return -mean * std::log(1.0 - u);
  }

 private:
  std::uint64_t state_;
};

// A service-time distribution: maps RNG draws to request durations in ns.
// Covers every workload in the paper's evaluation:
//   - Fixed: schbench-style constant work items
//   - Exponential: generic light-tailed load
//   - Bimodal: Fig. 7 dispersive load (99.5% x 4us + 0.5% x 10ms) and the
//     Fig. 8b RocksDB mix (50% x 0.95us GET + 50% x 591us SCAN)
class ServiceTimeDist {
 public:
  static ServiceTimeDist Fixed(DurationNs value) {
    ServiceTimeDist d;
    d.kind_ = Kind::kFixed;
    d.a_ = value;
    return d;
  }

  static ServiceTimeDist Exponential(DurationNs mean) {
    ServiceTimeDist d;
    d.kind_ = Kind::kExponential;
    d.a_ = mean;
    return d;
  }

  // With probability `p_short` draws `short_ns`, otherwise `long_ns`.
  static ServiceTimeDist Bimodal(double p_short, DurationNs short_ns, DurationNs long_ns) {
    SKYLOFT_CHECK(p_short >= 0.0 && p_short <= 1.0);
    ServiceTimeDist d;
    d.kind_ = Kind::kBimodal;
    d.p_ = p_short;
    d.a_ = short_ns;
    d.b_ = long_ns;
    return d;
  }

  DurationNs Sample(Rng& rng) const {
    switch (kind_) {
      case Kind::kFixed:
        return a_;
      case Kind::kExponential:
        return static_cast<DurationNs>(rng.NextExponential(static_cast<double>(a_)));
      case Kind::kBimodal:
        return rng.NextBool(p_) ? a_ : b_;
    }
    return a_;
  }

  // Expected value in ns, used to compute offered load from request rate.
  double MeanNs() const {
    switch (kind_) {
      case Kind::kFixed:
      case Kind::kExponential:
        return static_cast<double>(a_);
      case Kind::kBimodal:
        return p_ * static_cast<double>(a_) + (1.0 - p_) * static_cast<double>(b_);
    }
    return static_cast<double>(a_);
  }

 private:
  enum class Kind { kFixed, kExponential, kBimodal };

  ServiceTimeDist() = default;

  Kind kind_ = Kind::kFixed;
  double p_ = 0.0;
  DurationNs a_ = 0;
  DurationNs b_ = 0;
};

}  // namespace skyloft

#endif  // SRC_BASE_RANDOM_H_
