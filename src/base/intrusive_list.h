// Intrusive doubly-linked list.
//
// Runqueues hold tasks that are owned elsewhere (by their application); an
// intrusive list gives O(1) unlink-from-anywhere without allocation, which is
// what both the simulated scheduler and the host runtime need on hot paths.
// A node may be on at most one list at a time (checked).
#ifndef SRC_BASE_INTRUSIVE_LIST_H_
#define SRC_BASE_INTRUSIVE_LIST_H_

#include <cstddef>

#include "src/base/logging.h"

namespace skyloft {

struct ListNode {
  ListNode* prev = nullptr;
  ListNode* next = nullptr;

  bool IsLinked() const { return prev != nullptr; }
};

// T must derive from ListNode (single inheritance).
template <typename T>
class IntrusiveList {
 public:
  IntrusiveList() {
    head_.prev = &head_;
    head_.next = &head_;
  }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  bool Empty() const { return head_.next == &head_; }
  std::size_t Size() const { return size_; }

  void PushBack(T* item) { InsertBefore(&head_, item); }
  void PushFront(T* item) { InsertBefore(head_.next, item); }

  T* Front() const { return Empty() ? nullptr : static_cast<T*>(head_.next); }
  T* Back() const { return Empty() ? nullptr : static_cast<T*>(head_.prev); }

  T* PopFront() {
    if (Empty()) {
      return nullptr;
    }
    T* item = static_cast<T*>(head_.next);
    Remove(item);
    return item;
  }

  T* PopBack() {
    if (Empty()) {
      return nullptr;
    }
    T* item = static_cast<T*>(head_.prev);
    Remove(item);
    return item;
  }

  void Remove(T* item) {
    ListNode* node = item;
    SKYLOFT_DCHECK(node->IsLinked());
    node->prev->next = node->next;
    node->next->prev = node->prev;
    node->prev = nullptr;
    node->next = nullptr;
    size_--;
  }

  // Iteration support (forward only; removal of the current element during
  // iteration is not supported — snapshot first if needed).
  class Iterator {
   public:
    Iterator(ListNode* node, const ListNode* head) : node_(node), head_(head) {}
    T* operator*() const { return static_cast<T*>(node_); }
    Iterator& operator++() {
      node_ = node_->next;
      return *this;
    }
    bool operator!=(const Iterator& other) const { return node_ != other.node_; }

   private:
    ListNode* node_;
    const ListNode* head_;
  };

  Iterator begin() { return Iterator(head_.next, &head_); }
  Iterator end() { return Iterator(&head_, &head_); }

 private:
  void InsertBefore(ListNode* pos, T* item) {
    ListNode* node = item;
    SKYLOFT_CHECK(!node->IsLinked()) << "node already on a list";
    node->prev = pos->prev;
    node->next = pos;
    pos->prev->next = node;
    pos->prev = node;
    size_++;
  }

  ListNode head_;
  std::size_t size_ = 0;
};

}  // namespace skyloft

#endif  // SRC_BASE_INTRUSIVE_LIST_H_
