// Time types shared by the simulator and the host runtime.
//
// All simulated time is kept in integer nanoseconds (TimeNs). Hardware-level
// costs from the paper are quoted in CPU cycles at the evaluation machine's
// 2.0 GHz nominal frequency; CyclesToNs/NsToCycles convert between the two.
#ifndef SRC_BASE_TIME_H_
#define SRC_BASE_TIME_H_

#include <cstdint>

namespace skyloft {

using TimeNs = std::int64_t;   // absolute simulated time, ns since boot
using DurationNs = std::int64_t;
using Cycles = std::int64_t;

inline constexpr DurationNs kMicrosecond = 1000;
inline constexpr DurationNs kMillisecond = 1000 * kMicrosecond;
inline constexpr DurationNs kSecond = 1000 * kMillisecond;

// Nominal frequency of the paper's evaluation machine (Intel Xeon Gold 5418Y).
inline constexpr std::int64_t kDefaultCpuHz = 2'000'000'000;

constexpr DurationNs CyclesToNs(Cycles cycles, std::int64_t cpu_hz = kDefaultCpuHz) {
  // ns = cycles * 1e9 / hz. Done in __int128 to avoid overflow for long runs.
  return static_cast<DurationNs>(static_cast<__int128>(cycles) * kSecond / cpu_hz);
}

constexpr Cycles NsToCycles(DurationNs ns, std::int64_t cpu_hz = kDefaultCpuHz) {
  return static_cast<Cycles>(static_cast<__int128>(ns) * cpu_hz / kSecond);
}

constexpr DurationNs Micros(std::int64_t us) { return us * kMicrosecond; }
constexpr DurationNs Millis(std::int64_t ms) { return ms * kMillisecond; }

// Converts a timer frequency in Hz to the tick period in ns.
constexpr DurationNs HzToPeriodNs(std::int64_t hz) { return kSecond / hz; }

}  // namespace skyloft

#endif  // SRC_BASE_TIME_H_
