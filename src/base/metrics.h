// Unified metrics layer shared by both substrates (simulated libos engines
// and the host M:N runtime).
//
// Design: hot paths touch only the metric object itself — a relaxed-atomic
// increment for Counter/ShardedCounter, a relaxed store for Gauge — and never
// the registry. The registry is a mutex-guarded list of MetricGroups consulted
// only by Snapshot()/ToJson(), which benches and tests call while the system
// is quiesced. ShardedCounter keeps one cache line per shard and aggregates
// on read, so per-worker increments (steals, preemptions) never contend.
//
// Ownership: a MetricGroup registers itself on construction and unregisters
// on destruction, so groups may come and go (benches build many engines in a
// row). Metrics created through Add* are owned by the group in stable
// storage; Link* entries reference externally-owned state (EngineStats
// histograms, chip counters) that must outlive the group.
#ifndef SRC_BASE_METRICS_H_
#define SRC_BASE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/compiler.h"
#include "src/base/histogram.h"

namespace skyloft {

// Monotonically increasing event count. Inc() is async-signal-safe and
// lock-free; the host runtime bumps counters from the preemption signal
// handler.
class Counter {
 public:
  SKYLOFT_SIGNAL_SAFE void Inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-writer-wins instantaneous value (queue depth, active workers).
class Gauge {
 public:
  SKYLOFT_SIGNAL_SAFE void Set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
  }
  std::int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Counter split across cache-line-padded lanes; writers pick a lane (their
// shard/worker index) so concurrent increments never bounce a line. Reads
// aggregate across lanes.
class ShardedCounter {
 public:
  explicit ShardedCounter(int shards);

  SKYLOFT_SIGNAL_SAFE void Inc(int shard, std::uint64_t n = 1) {
    lanes_[static_cast<std::size_t>(shard) % static_cast<std::size_t>(shards_)]
        .value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const;
  int shards() const { return shards_; }

 private:
  struct alignas(kCacheLineSize) Lane {
    std::atomic<std::uint64_t> value{0};
  };
  int shards_;
  std::unique_ptr<Lane[]> lanes_;
};

// One sampled metric in a registry snapshot. Histograms carry a percentile
// summary instead of raw buckets.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;  // "<group prefix>.<metric name>"
  Kind kind = Kind::kCounter;
  std::int64_t value = 0;  // counters and gauges
  // Histogram summary (valid when kind == kHistogram).
  std::uint64_t count = 0;
  std::int64_t min = 0;
  std::int64_t p50 = 0;
  std::int64_t p99 = 0;
  std::int64_t max = 0;
  double mean = 0.0;
};

// A named bundle of metrics belonging to one component ("runtime",
// "host_sched", "uintr", ...). Registers with the global registry for its
// lifetime. Not thread-safe for concurrent Add*/Link* — populate at setup
// time, before the component goes hot.
class MetricGroup {
 public:
  explicit MetricGroup(std::string prefix);
  ~MetricGroup();

  MetricGroup(const MetricGroup&) = delete;
  MetricGroup& operator=(const MetricGroup&) = delete;

  Counter* AddCounter(std::string name);
  Gauge* AddGauge(std::string name);
  ShardedCounter* AddSharded(std::string name, int shards);
  LatencyHistogram* AddHistogram(std::string name);

  // Reference externally-owned state. The pointee / captured state must
  // outlive this group.
  void LinkHistogram(std::string name, const LatencyHistogram* histogram);
  void LinkValue(std::string name, std::function<std::int64_t()> read);
  void LinkCounter(std::string name, const Counter* counter);

  const std::string& prefix() const { return prefix_; }

  // Appends one MetricSample per entry, names qualified with the prefix.
  void Sample(std::vector<MetricSample>* out) const;

 private:
  struct Entry {
    std::string name;
    MetricSample::Kind kind = MetricSample::Kind::kCounter;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const ShardedCounter* sharded = nullptr;
    const LatencyHistogram* histogram = nullptr;
    std::function<std::int64_t()> read;
  };

  std::string prefix_;
  // Stable storage for owned metrics: entries hand out raw pointers.
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<ShardedCounter> sharded_;
  std::deque<LatencyHistogram> histograms_;
  std::vector<Entry> entries_;
};

// Process-wide list of live MetricGroups. All methods take an internal mutex;
// none are called on scheduling hot paths.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  void Register(MetricGroup* group);
  void Unregister(MetricGroup* group);

  // Samples every registered group. Safe to call while metrics are being
  // incremented (reads are relaxed atomics); histogram reads assume the
  // recording side is quiesced, which holds for the single-threaded sim and
  // for benches sampling after Run() returns.
  std::vector<MetricSample> Snapshot() const;

  // Snapshot rendered as a JSON object keyed by qualified metric name.
  std::string ToJson() const;

  int group_count() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::vector<MetricGroup*> groups_;
};

}  // namespace skyloft

#endif  // SRC_BASE_METRICS_H_
