// User Posted-Interrupt Descriptor (UPID) and User-Interrupt Target Table
// (UITT) entries, as defined by the Intel UINTR architecture (SDM ch. 7) and
// summarized in §3.2 of the paper.
//
// One UPID exists per receiving thread. Senders hold a UITT whose entries
// point at receiver UPIDs; SENDUIPI takes a UITT index.
#ifndef SRC_UINTR_UPID_H_
#define SRC_UINTR_UPID_H_

#include <cstdint>

#include "src/base/bitmap.h"
#include "src/simcore/machine.h"

namespace skyloft {

// Interrupt vector numbers used by the simulated platform.
inline constexpr int kUserIpiVector = 0xe1;    // kernel-chosen UINTR notification vector
inline constexpr int kApicTimerVector = 0xec;  // LAPIC timer vector
inline constexpr int kNicMsiVector = 0xd0;     // NIC MSI vector (peripheral delegation)

// User-interrupt vector (UIRR bit) used by User-Timer Events (§6).
inline constexpr int kUserTimerUivec = 62;

struct Upid {
  // Outstanding Notification: a notification IPI for this UPID is in flight
  // or pending; suppresses duplicate IPIs.
  bool on = false;

  // Suppress Notification: when set, SENDUIPI posts into PIR but sends no
  // IPI. Skyloft's user-space timer trick (§3.2) relies on this: each core
  // sends *itself* a user IPI with SN=1 to pre-populate the PIR so that the
  // next hardware timer interrupt is recognized as a user interrupt.
  bool sn = false;

  // Notification Vector: the IPI vector used to notify the destination.
  int nv = kUserIpiVector;

  // Notification Destination: core where the receiving thread runs.
  CoreId ndst = kInvalidCore;

  // Posted-Interrupt Requests: one bit per user-interrupt vector (0..63).
  Bitmap64 pir;
};

struct UittEntry {
  bool valid = false;
  Upid* target = nullptr;
  int user_vector = 0;  // bit set in target->pir on SENDUIPI
};

}  // namespace skyloft

#endif  // SRC_UINTR_UPID_H_
