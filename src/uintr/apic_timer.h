// Per-core local APIC timer model.
//
// Fires a hardware interrupt with vector kApicTimerVector at a configurable
// frequency. Skyloft programs this to 100 kHz (Table 5) and delegates the
// resulting interrupts to user space; the Linux baselines run it at
// CONFIG_HZ (250 or 1000).
//
// The periodic stream rides the simulator's SchedulePeriodic fast path: one
// event node is armed when the timer is enabled and re-arms itself in place
// on every fire, so a 100 kHz timer costs no allocation or closure
// construction per tick.
#ifndef SRC_UINTR_APIC_TIMER_H_
#define SRC_UINTR_APIC_TIMER_H_

#include <functional>

#include "src/simcore/machine.h"
#include "src/simcore/sim_node.h"

namespace skyloft {

class ApicTimer {
 public:
  using FireCallback = std::function<void(CoreId core, int vector)>;

  ApicTimer(SimNode* sim, CoreId core, FireCallback on_fire)
      : sim_(sim), core_(core), on_fire_(std::move(on_fire)) {}

  // Sets the periodic frequency. Reprogramming an enabled timer restarts the
  // current period: the next fire is exactly one new period from now.
  void SetHz(std::int64_t hz);
  std::int64_t hz() const { return hz_; }

  void Enable();
  void Disable();
  bool enabled() const { return enabled_; }

  CoreId core() const { return core_; }

 private:
  void Rearm();
  void Fire();

  SimNode* sim_;
  CoreId core_;
  FireCallback on_fire_;
  std::int64_t hz_ = 0;
  bool enabled_ = false;
  EventId pending_ = kInvalidEventId;
};

}  // namespace skyloft

#endif  // SRC_UINTR_APIC_TIMER_H_
