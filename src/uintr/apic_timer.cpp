#include "src/uintr/apic_timer.h"

#include "src/base/logging.h"
#include "src/uintr/upid.h"

namespace skyloft {

void ApicTimer::SetHz(std::int64_t hz) {
  SKYLOFT_CHECK(hz >= 0);
  hz_ = hz;
  if (enabled_) {
    // Reprogramming the timer restarts the current period.
    Rearm();
  }
}

void ApicTimer::Enable() {
  if (enabled_) {
    return;
  }
  enabled_ = true;
  Rearm();
}

void ApicTimer::Disable() {
  enabled_ = false;
  if (pending_ != kInvalidEventId) {
    sim_->Cancel(pending_);
    pending_ = kInvalidEventId;
  }
}

void ApicTimer::Rearm() {
  if (pending_ != kInvalidEventId) {
    sim_->Cancel(pending_);
    pending_ = kInvalidEventId;
  }
  if (hz_ <= 0) {
    return;
  }
  // One periodic node carries the whole tick stream. Deadlines are
  // drift-free: each is the previous plus the period, independent of handler
  // execution time.
  const DurationNs period = HzToPeriodNs(hz_);
  pending_ = sim_->SchedulePeriodic(sim_->Now() + period, period, [this] { Fire(); });
}

void ApicTimer::Fire() { on_fire_(core_, kApicTimerVector); }

}  // namespace skyloft
