#include "src/uintr/apic_timer.h"

#include "src/base/logging.h"
#include "src/uintr/upid.h"

namespace skyloft {

void ApicTimer::SetHz(std::int64_t hz) {
  SKYLOFT_CHECK(hz >= 0);
  hz_ = hz;
  if (enabled_) {
    // Reprogramming the timer restarts the current period.
    if (pending_ != kInvalidEventId) {
      sim_->Cancel(pending_);
      pending_ = kInvalidEventId;
    }
    next_deadline_ = sim_->Now();
    Arm();
  }
}

void ApicTimer::Enable() {
  if (enabled_) {
    return;
  }
  enabled_ = true;
  next_deadline_ = sim_->Now();
  Arm();
}

void ApicTimer::Disable() {
  enabled_ = false;
  if (pending_ != kInvalidEventId) {
    sim_->Cancel(pending_);
    pending_ = kInvalidEventId;
  }
}

void ApicTimer::Arm() {
  if (!enabled_ || hz_ <= 0) {
    return;
  }
  // Drift-free periodic deadlines: each deadline is the previous plus the
  // period, independent of handler execution time.
  next_deadline_ += HzToPeriodNs(hz_);
  pending_ = sim_->ScheduleAt(next_deadline_, [this] { Fire(); });
}

void ApicTimer::Fire() {
  pending_ = kInvalidEventId;
  if (!enabled_) {
    return;
  }
  Arm();
  on_fire_(core_, kApicTimerVector);
}

}  // namespace skyloft
