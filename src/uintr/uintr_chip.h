// Functional model of the per-core user-interrupt hardware.
//
// Models the architectural state machine of Intel UINTR (§3.2 of the paper):
//   - UINV: the vector the core recognizes as a user interrupt
//   - UIRR: 64-bit pending user-interrupt request register
//   - UIF:  user-interrupt flag (delivery enabled)
//   - UIHANDLER: the registered user-space handler
//   - SENDUIPI: posts into the target UPID's PIR and, unless UPID.SN is set,
//     sends a physical IPI with vector UPID.NV to UPID.NDST
//   - recognition: an arriving physical interrupt whose vector equals UINV
//     moves PIR into UIRR and clears UPID.ON; anything else takes the legacy
//     (kernel) interrupt path
//   - delivery: when the core is in user mode with UIF set and UIRR != 0, the
//     highest pending vector is delivered to the handler
//
// The model also reproduces the paper's key discovery: a hardware timer
// interrupt whose vector matches UINV is only *recognized* as a user
// interrupt; because the timer does not write the PIR, recognition finds an
// empty PIR and nothing is delivered — unless software pre-populated the PIR
// via a self-SENDUIPI with SN=1.
#ifndef SRC_UINTR_UINTR_CHIP_H_
#define SRC_UINTR_UINTR_CHIP_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/base/bitmap.h"
#include "src/base/metrics.h"
#include "src/simcore/machine.h"
#include "src/uintr/apic_timer.h"
#include "src/uintr/upid.h"

namespace skyloft {

// Per-mechanism interrupt volume, counted where the modeled hardware acts —
// not where software believes it asked for an interrupt. The ablation and
// Table 6 benches report these measured counts.
struct UintrChipCounters {
  Counter senduipi_executed;    // SENDUIPI instructions executed
  Counter senduipi_suppressed;  // posted without an IPI (SN set, or ON coalesced)
  Counter physical_ipis;        // notification IPIs that arrived at a core
  Counter user_irqs_delivered;  // user-interrupt handler invocations
  Counter user_timer_irqs;      // direct User-Timer Event deliveries
  Counter hw_recognized;        // hardware interrupts recognized as user interrupts
  Counter legacy_interrupts;    // interrupts that took the legacy kernel path
};

// Context passed to a user-interrupt handler. `receive_cost_ns` is the
// receiver-side overhead (context save/restore + handler dispatch) that the
// scheduling engine must charge to the interrupted core.
struct UintrFrame {
  int vector = 0;
  DurationNs receive_cost_ns = 0;
  bool from_timer = false;
  CoreId sender = kInvalidCore;  // kInvalidCore for hardware-generated
};

class UserInterruptUnit {
 public:
  using UserHandler = std::function<void(const UintrFrame&)>;

  // UINV register: which physical vector is recognized as a user interrupt.
  // -1 disables user-interrupt recognition entirely.
  void SetUinv(int vector) { uinv_ = vector; }
  int uinv() const { return uinv_; }

  void SetHandler(UserHandler handler) { handler_ = std::move(handler); }

  // The UPID of the thread currently running on this core (IA32_UINTR_PD).
  void SetActiveUpid(Upid* upid) { active_upid_ = upid; }
  Upid* active_upid() const { return active_upid_; }

  // User-interrupt flag; clearing it blocks delivery (pending interrupts stay
  // in UIRR until re-enabled).
  void SetUif(bool enabled);
  bool uif() const { return uif_; }

  // Whether the core currently executes in user mode; delivery only happens
  // in user mode (kernel-mode arrival stays pending).
  void SetUserMode(bool user_mode);
  bool user_mode() const { return user_mode_; }

  const Bitmap64& uirr() const { return uirr_; }

  // Direct user-interrupt delivery without going through a UPID: models the
  // User-Timer Event architecture (§6 "Kernel-bypass timer reset", Intel ISE
  // ch. 13), where a per-thread deadline timer raises a user interrupt on
  // the running core with no PIR posting and no IPI.
  void DeliverDirect(int vector, DurationNs receive_cost_ns, bool from_timer);

 private:
  friend class UintrChip;

  void Recognize(DurationNs receive_cost_ns, bool from_timer, CoreId sender);
  void TryDeliver();

  int uinv_ = -1;
  bool uif_ = true;
  bool user_mode_ = true;
  Bitmap64 uirr_;
  Upid* active_upid_ = nullptr;
  UserHandler handler_;
  UintrChipCounters* counters_ = nullptr;  // owned by the chip

  // Metadata describing the pending recognition, consumed at delivery.
  DurationNs pending_receive_cost_ns_ = 0;
  bool pending_from_timer_ = false;
  CoreId pending_sender_ = kInvalidCore;
};

class UintrChip {
 public:
  // Handler for interrupts that are NOT recognized as user interrupts (the
  // legacy path into the kernel).
  using LegacyHandler = std::function<void(CoreId core, int vector)>;

  explicit UintrChip(Machine* machine);

  UserInterruptUnit& unit(CoreId core) { return *units_[static_cast<std::size_t>(core)]; }
  ApicTimer& timer(CoreId core) { return *timers_[static_cast<std::size_t>(core)]; }

  void SetLegacyHandler(LegacyHandler handler) { legacy_handler_ = std::move(handler); }

  // Registers a UITT entry for `sender_core`; returns the index SENDUIPI uses.
  int RegisterUittEntry(CoreId sender_core, Upid* target, int user_vector);

  // Executes SENDUIPI on `sender_core` with the given UITT index. Posts into
  // the target PIR; unless SN is set, emits a physical IPI (vector UPID.NV)
  // that arrives at UPID.NDST after the modeled delivery latency. Returns the
  // sender-side cost in ns, which the caller must charge to the sender.
  DurationNs SendUipi(CoreId sender_core, int uitt_index);

  // Raises a hardware-generated interrupt (LAPIC timer, MSI, ...) on `core`.
  // Dispatches to user-interrupt recognition or the legacy kernel path.
  void RaiseHardwareInterrupt(CoreId core, int vector);

  // ---- User-Timer Events (§6 / Intel ISE ch. 13) ----
  // Programs the per-core user deadline timer: at absolute time `deadline`
  // the unit receives a direct user interrupt (vector kUserTimerUivec, cost
  // of a user timer receive) with no kernel, APIC, or PIR involvement.
  // Reprogramming replaces any pending deadline. Requires hardware support
  // (the simulated machine always has it; real parts are future Intel).
  void ProgramUserTimerDeadline(CoreId core, TimeNs deadline);
  void CancelUserTimerDeadline(CoreId core);
  bool UserTimerArmed(CoreId core) const;

  Machine& machine() { return *machine_; }

  // Measured interrupt volume since construction (whole chip, all cores).
  const UintrChipCounters& counters() const { return counters_; }

 private:
  void DeliverPhysicalIpi(CoreId core, int vector, Upid* upid, CoreId sender);

  Machine* machine_;
  std::vector<std::unique_ptr<UserInterruptUnit>> units_;
  std::vector<std::unique_ptr<ApicTimer>> timers_;
  std::vector<std::vector<UittEntry>> uitts_;  // per sender core
  std::vector<EventId> user_timer_events_;     // per-core UTE deadline events
  LegacyHandler legacy_handler_;
  UintrChipCounters counters_;
  MetricGroup metrics_{"uintr"};
};

}  // namespace skyloft

#endif  // SRC_UINTR_UINTR_CHIP_H_
