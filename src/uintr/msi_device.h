// Message-Signaled Interrupt device model (§6 "Peripheral interrupts").
//
// The paper observes that Skyloft's timer-delegation mechanism generalizes:
// any interrupt whose vector is programmed into UINV — including MSIs from
// peripherals like NICs — can be handled in user space once the PIR is
// primed with the SN-bit self-SENDUIPI trick, enabling interrupt-driven
// kernel-bypass drivers instead of polling.
//
// An MsiDevice owns a (target core, vector) route, as a device's MSI
// capability would after configuration, and raises interrupts with a modeled
// wire delay. Whether the interrupt lands in user space or the kernel is
// decided by the receiving core's UINV state, exactly as for timers.
#ifndef SRC_UINTR_MSI_DEVICE_H_
#define SRC_UINTR_MSI_DEVICE_H_

#include "src/uintr/uintr_chip.h"

namespace skyloft {

class MsiDevice {
 public:
  // `delivery_ns`: bus + interrupt-remapping latency from Raise() to the
  // core observing the interrupt.
  MsiDevice(UintrChip* chip, CoreId target, int vector, DurationNs delivery_ns = 200)
      : chip_(chip), target_(target), vector_(vector), delivery_ns_(delivery_ns) {}

  // Reprograms the MSI route (kernel-privileged in reality; the Skyloft
  // kernel module would expose this like timer configuration).
  void Route(CoreId target, int vector) {
    target_ = target;
    vector_ = vector;
  }

  // Asserts the interrupt. Edge-triggered: every call is one message.
  void Raise() {
    raised_++;
    chip_->machine().sim().ScheduleAfter(delivery_ns_, [this] {
      chip_->RaiseHardwareInterrupt(target_, vector_);
    });
  }

  CoreId target() const { return target_; }
  int vector() const { return vector_; }
  std::uint64_t raised() const { return raised_; }

 private:
  UintrChip* chip_;
  CoreId target_;
  int vector_;
  DurationNs delivery_ns_;
  std::uint64_t raised_ = 0;
};

}  // namespace skyloft

#endif  // SRC_UINTR_MSI_DEVICE_H_
