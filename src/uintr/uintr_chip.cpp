#include "src/uintr/uintr_chip.h"

#include <algorithm>

#include "src/base/logging.h"

namespace skyloft {

void UserInterruptUnit::SetUif(bool enabled) {
  uif_ = enabled;
  if (uif_) {
    TryDeliver();
  }
}

void UserInterruptUnit::SetUserMode(bool user_mode) {
  user_mode_ = user_mode;
  if (user_mode_) {
    TryDeliver();
  }
}

void UserInterruptUnit::Recognize(DurationNs receive_cost_ns, bool from_timer, CoreId sender) {
  // Recognition (§3.2 step 2): move PIR bits into UIRR and clear ON. If the
  // PIR is empty (the hardware-timer case without the SN self-IPI trick),
  // nothing becomes pending and no delivery happens.
  if (active_upid_ == nullptr) {
    return;
  }
  const std::uint64_t posted = active_upid_->pir.Exchange(0);
  active_upid_->on = false;
  if (posted == 0) {
    return;
  }
  uirr_.Or(posted);
  pending_receive_cost_ns_ = receive_cost_ns;
  pending_from_timer_ = from_timer;
  pending_sender_ = sender;
  TryDeliver();
}

void UserInterruptUnit::TryDeliver() {
  // Delivery (§3.2 step 3): only in user mode with UIF set; highest vector
  // first. Each delivered vector invokes the registered handler once.
  while (user_mode_ && uif_ && uirr_.Any() && handler_) {
    const int vector = uirr_.HighestSet();
    uirr_.Clear(vector);
    UintrFrame frame;
    frame.vector = vector;
    frame.receive_cost_ns = pending_receive_cost_ns_;
    frame.from_timer = pending_from_timer_;
    frame.sender = pending_sender_;
    if (counters_ != nullptr) {
      counters_->user_irqs_delivered.Inc();
      if (frame.from_timer) {
        counters_->user_timer_irqs.Inc();
      }
    }
    handler_(frame);
  }
}

void UserInterruptUnit::DeliverDirect(int vector, DurationNs receive_cost_ns, bool from_timer) {
  uirr_.Set(vector);
  pending_receive_cost_ns_ = receive_cost_ns;
  pending_from_timer_ = from_timer;
  pending_sender_ = kInvalidCore;
  TryDeliver();
}

UintrChip::UintrChip(Machine* machine) : machine_(machine) {
  const int n = machine_->num_cores();
  units_.reserve(static_cast<std::size_t>(n));
  timers_.reserve(static_cast<std::size_t>(n));
  uitts_.resize(static_cast<std::size_t>(n));
  user_timer_events_.resize(static_cast<std::size_t>(n), kInvalidEventId);
  for (CoreId core = 0; core < n; core++) {
    units_.push_back(std::make_unique<UserInterruptUnit>());
    units_.back()->counters_ = &counters_;
    timers_.push_back(std::make_unique<ApicTimer>(
        &machine_->sim(), core,
        [this](CoreId c, int vector) { RaiseHardwareInterrupt(c, vector); }));
  }
  metrics_.LinkCounter("senduipi_executed", &counters_.senduipi_executed);
  metrics_.LinkCounter("senduipi_suppressed", &counters_.senduipi_suppressed);
  metrics_.LinkCounter("physical_ipis", &counters_.physical_ipis);
  metrics_.LinkCounter("user_irqs_delivered", &counters_.user_irqs_delivered);
  metrics_.LinkCounter("user_timer_irqs", &counters_.user_timer_irqs);
  metrics_.LinkCounter("hw_recognized", &counters_.hw_recognized);
  metrics_.LinkCounter("legacy_interrupts", &counters_.legacy_interrupts);
}

int UintrChip::RegisterUittEntry(CoreId sender_core, Upid* target, int user_vector) {
  SKYLOFT_CHECK(user_vector >= 0 && user_vector < 64);
  auto& table = uitts_[static_cast<std::size_t>(sender_core)];
  table.push_back(UittEntry{true, target, user_vector});
  return static_cast<int>(table.size()) - 1;
}

DurationNs UintrChip::SendUipi(CoreId sender_core, int uitt_index) {
  auto& table = uitts_[static_cast<std::size_t>(sender_core)];
  SKYLOFT_CHECK(uitt_index >= 0 && uitt_index < static_cast<int>(table.size()))
      << "SENDUIPI with out-of-range UITT index";
  const UittEntry& entry = table[static_cast<std::size_t>(uitt_index)];
  SKYLOFT_CHECK(entry.valid);
  Upid* upid = entry.target;

  counters_.senduipi_executed.Inc();
  upid->pir.Set(entry.user_vector);

  const bool cross_numa =
      upid->ndst != kInvalidCore && machine_->CrossNuma(sender_core, upid->ndst);
  const CostModel& costs = machine_->costs();

  if (upid->sn || upid->on) {
    // SN set: post only, no notification IPI (Skyloft's timer trick).
    // ON set: a notification is already outstanding; hardware coalesces.
    counters_.senduipi_suppressed.Inc();
    return costs.UserIpiSendNs(cross_numa);
  }

  upid->on = true;
  const CoreId dest = upid->ndst;
  SKYLOFT_CHECK(dest != kInvalidCore) << "SENDUIPI to UPID with no destination";
  const int vector = upid->nv;
  const DurationNs delivery = costs.UserIpiDeliveryNs(cross_numa);
  machine_->sim().ScheduleAfter(
      delivery, [this, dest, vector, upid, sender_core] {
        DeliverPhysicalIpi(dest, vector, upid, sender_core);
      });
  return costs.UserIpiSendNs(cross_numa);
}

void UintrChip::DeliverPhysicalIpi(CoreId core, int vector, Upid* upid, CoreId sender) {
  UserInterruptUnit& unit = this->unit(core);
  counters_.physical_ipis.Inc();
  if (unit.uinv() == vector && unit.active_upid() == upid) {
    const bool cross_numa = machine_->CrossNuma(sender, core);
    counters_.hw_recognized.Inc();
    unit.Recognize(machine_->costs().UserIpiReceiveNs(cross_numa),
                   /*from_timer=*/false, sender);
    return;
  }
  // Vector mismatch or the receiving thread is no longer current on the
  // core: treated as a legacy interrupt (kernel handles and re-posts).
  counters_.legacy_interrupts.Inc();
  if (legacy_handler_) {
    legacy_handler_(core, vector);
  }
}

void UintrChip::ProgramUserTimerDeadline(CoreId core, TimeNs deadline) {
  CancelUserTimerDeadline(core);
  SimNode& sim = machine_->sim();
  const TimeNs at = std::max(deadline, sim.Now());
  user_timer_events_[static_cast<std::size_t>(core)] = sim.ScheduleAt(at, [this, core] {
    user_timer_events_[static_cast<std::size_t>(core)] = kInvalidEventId;
    unit(core).DeliverDirect(kUserTimerUivec, machine_->costs().UserTimerReceiveNs(),
                             /*from_timer=*/true);
  });
}

void UintrChip::CancelUserTimerDeadline(CoreId core) {
  EventId& ev = user_timer_events_[static_cast<std::size_t>(core)];
  if (ev != kInvalidEventId) {
    machine_->sim().Cancel(ev);
    ev = kInvalidEventId;
  }
}

bool UintrChip::UserTimerArmed(CoreId core) const {
  return user_timer_events_[static_cast<std::size_t>(core)] != kInvalidEventId;
}

void UintrChip::RaiseHardwareInterrupt(CoreId core, int vector) {
  UserInterruptUnit& unit = this->unit(core);
  if (unit.uinv() == vector) {
    // Identification (§3.2 step 1): vector matches UINV, so the core treats
    // this hardware interrupt as a user interrupt. Whether anything is
    // actually delivered depends on the PIR contents (the SN trick).
    counters_.hw_recognized.Inc();
    unit.Recognize(machine_->costs().UserTimerReceiveNs(), /*from_timer=*/true,
                   kInvalidCore);
    return;
  }
  counters_.legacy_interrupts.Inc();
  if (legacy_handler_) {
    legacy_handler_(core, vector);
  }
}

}  // namespace skyloft
