#include "src/baselines/systems.h"

#include <utility>

#include "src/base/logging.h"

namespace skyloft {

namespace {

// Builds the simulation substrate shared by every system under test, on a
// SimNode the caller owns (a standalone Simulation or a ClusterSim shard).
NodeSetup MakeNodeBase(SimNode* sim, const std::string& name, int num_cores) {
  SKYLOFT_CHECK(sim != nullptr);
  NodeSetup node;
  node.name = name;
  node.sim = sim;
  MachineConfig mcfg;
  mcfg.num_cores = num_cores;
  mcfg.cores_per_socket = 24;
  node.machine = std::make_unique<Machine>(sim, mcfg);
  node.chip = std::make_unique<UintrChip>(node.machine.get());
  node.kernel = std::make_unique<KernelSim>(node.machine.get(), node.chip.get());
  return node;
}

// Wraps a NodeSetup built on a freshly-owned Simulation into a SystemSetup.
SystemSetup Adopt(std::unique_ptr<Simulation> sim, NodeSetup node) {
  SystemSetup setup;
  setup.name = std::move(node.name);
  setup.sim = std::move(sim);
  setup.machine = std::move(node.machine);
  setup.chip = std::move(node.chip);
  setup.kernel = std::move(node.kernel);
  setup.policy = std::move(node.policy);
  setup.engine = std::move(node.engine);
  setup.app = node.app;
  return setup;
}

std::vector<CoreId> CoreRange(int first, int count) {
  std::vector<CoreId> cores;
  cores.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; i++) {
    cores.push_back(first + i);
  }
  return cores;
}

// Linux context-switch costs (§5.4): every switch through the kernel
// scheduler costs 1124 ns; waking a blocked thread costs 2471 ns total.
void ApplyLinuxCosts(EngineConfig& config, const CostModel& costs) {
  config.local_switch_ns = costs.linux_kthread_switch_ns;
  config.wakeup_extra_ns = costs.linux_kthread_wake_switch_ns - costs.linux_kthread_switch_ns;
}

}  // namespace

NodeSetup MakeSkyloftPerCpuNode(SimNode* sim, SkyloftSched sched, int num_cores,
                                DurationNs rr_slice) {
  const char* names[] = {"skyloft-rr", "skyloft-cfs", "skyloft-eevdf", "skyloft-fifo"};
  NodeSetup node = MakeNodeBase(sim, names[static_cast<int>(sched)], num_cores);

  switch (sched) {
    case SkyloftSched::kRr:
      node.policy = std::make_unique<RoundRobinPolicy>(rr_slice);
      break;
    case SkyloftSched::kCfs:
      node.policy = std::make_unique<CfsPolicy>(CfsParams{Micros(12) + 500, Micros(50)});
      break;
    case SkyloftSched::kEevdf:
      node.policy = std::make_unique<EevdfPolicy>(EevdfParams{Micros(12) + 500});
      break;
    case SkyloftSched::kFifo:
      node.policy = std::make_unique<RoundRobinPolicy>(kInfiniteSlice);
      break;
  }

  PerCpuEngineConfig pcfg;
  pcfg.base.worker_cores = CoreRange(0, num_cores);
  pcfg.base.local_switch_ns = 100;  // user-level switch through the scheduler
  pcfg.timer_hz = 100'000;          // Table 5: TIMER_HZ
  pcfg.tick_path = TickPath::kUserTimer;
  node.engine = std::make_unique<PerCpuEngine>(node.machine.get(), node.chip.get(),
                                               node.kernel.get(), node.policy.get(), pcfg);
  node.app = node.engine->CreateApp("lc");
  node.engine->Start();
  return node;
}

SystemSetup MakeSkyloftPerCpu(SkyloftSched sched, int num_cores, DurationNs rr_slice) {
  auto sim = std::make_unique<Simulation>();
  NodeSetup node = MakeSkyloftPerCpuNode(sim.get(), sched, num_cores, rr_slice);
  return Adopt(std::move(sim), std::move(node));
}

SystemSetup MakeLinuxPerCpu(LinuxSched sched, int num_cores) {
  const char* names[] = {"linux-rr", "linux-cfs-default", "linux-cfs-tuned",
                         "linux-eevdf-default", "linux-eevdf-tuned"};
  auto sim = std::make_unique<Simulation>();
  NodeSetup node = MakeNodeBase(sim.get(), names[static_cast<int>(sched)], num_cores);

  std::int64_t hz = 250;
  switch (sched) {
    case LinuxSched::kRrDefault:
      node.policy = std::make_unique<RoundRobinPolicy>(Millis(100));
      hz = 250;
      break;
    case LinuxSched::kCfsDefault:
      node.policy = std::make_unique<CfsPolicy>(CfsParams{Millis(3), Millis(24)});
      hz = 250;
      break;
    case LinuxSched::kCfsTuned:
      node.policy = std::make_unique<CfsPolicy>(CfsParams{Micros(12) + 500, Micros(50)});
      hz = 1000;
      break;
    case LinuxSched::kEevdfDefault:
      node.policy = std::make_unique<EevdfPolicy>(EevdfParams{Millis(3)});
      hz = 1000;
      break;
    case LinuxSched::kEevdfTuned:
      node.policy = std::make_unique<EevdfPolicy>(EevdfParams{Micros(12) + 500});
      hz = 1000;
      break;
  }

  PerCpuEngineConfig pcfg;
  pcfg.base.worker_cores = CoreRange(0, num_cores);
  ApplyLinuxCosts(pcfg.base, node.machine->costs());
  pcfg.timer_hz = hz;  // Table 5: CONFIG_HZ caps Linux preemption granularity
  pcfg.tick_path = TickPath::kKernelTimer;
  pcfg.kernel_tick_cost_ns = 1500;
  pcfg.preempt_extra_ns = 0;  // switch cost is already in local_switch_ns
  node.engine = std::make_unique<PerCpuEngine>(node.machine.get(), node.chip.get(),
                                               node.kernel.get(), node.policy.get(), pcfg);
  node.app = node.engine->CreateApp("lc");
  node.engine->Start();
  return Adopt(std::move(sim), std::move(node));
}

namespace {

NodeSetup MakeCentralNode(SimNode* sim, const std::string& name, int workers,
                          CentralizedEngineConfig ccfg) {
  // Core layout: workers on 0..N-1, dispatcher (+ load generator) on core N.
  NodeSetup node = MakeNodeBase(sim, name, workers + 1);
  node.policy = std::make_unique<ShinjukuPolicy>();
  ccfg.base.worker_cores = CoreRange(0, workers);
  ccfg.dispatcher_core = workers;
  node.engine = std::make_unique<CentralizedEngine>(node.machine.get(), node.chip.get(),
                                                    node.kernel.get(), node.policy.get(),
                                                    ccfg);
  node.app = node.engine->CreateApp("lc");
  node.engine->Start();
  return node;
}

SystemSetup MakeCentral(const std::string& name, int workers,
                        CentralizedEngineConfig ccfg) {
  auto sim = std::make_unique<Simulation>();
  NodeSetup node = MakeCentralNode(sim.get(), name, workers, std::move(ccfg));
  return Adopt(std::move(sim), std::move(node));
}

CentralizedEngineConfig SkyloftShinjukuConfig(DurationNs quantum, bool core_alloc) {
  CentralizedEngineConfig ccfg;
  ccfg.base.local_switch_ns = 100;
  ccfg.quantum = quantum;
  ccfg.mech = CentralizedEngineConfig::Mech::kUserIpi;
  ccfg.dispatch_ns = 100;
  ccfg.dispatch_occupancy_ns = 50;
  ccfg.core_alloc = core_alloc;
  ccfg.alloc_period = Micros(5);  // Shenango's 5 us allocation granularity
  return ccfg;
}

}  // namespace

NodeSetup MakeSkyloftShinjukuNode(SimNode* sim, int workers, DurationNs quantum) {
  return MakeCentralNode(sim, "skyloft-shinjuku", workers,
                         SkyloftShinjukuConfig(quantum, /*core_alloc=*/false));
}

SystemSetup MakeSkyloftShinjuku(int workers, DurationNs quantum, bool core_alloc) {
  return MakeCentral(core_alloc ? "skyloft-shinjuku-shenango" : "skyloft-shinjuku", workers,
                     SkyloftShinjukuConfig(quantum, core_alloc));
}

SystemSetup MakeShinjukuOriginal(int workers, DurationNs quantum) {
  CentralizedEngineConfig ccfg;
  ccfg.base.local_switch_ns = 100;
  ccfg.quantum = quantum;
  // Dune posted interrupts: delivery through the VM posted-interrupt path
  // plus receiver-side VM-mode handling; a little slower than user IPIs but
  // the same order of magnitude, hence Fig. 7a's near-identical curves.
  ccfg.mech = CentralizedEngineConfig::Mech::kModelled;
  ccfg.preempt_delivery_ns = 1500;
  ccfg.preempt_receive_ns = 1200;
  ccfg.dispatch_ns = 100;
  ccfg.dispatch_occupancy_ns = 50;
  ccfg.core_alloc = false;  // Shinjuku dedicates cores to one application
  return MakeCentral("shinjuku", workers, ccfg);
}

SystemSetup MakeGhost(int workers, DurationNs quantum, bool core_alloc) {
  CentralizedEngineConfig ccfg;
  // ghOSt schedules kernel threads: every dispatch is an agent transaction
  // committed into the kernel plus a kernel context switch on the worker,
  // and every preemption is a kernel IPI followed by a kernel reschedule.
  ccfg.base.local_switch_ns = 1124;  // kthread switch on the worker
  ccfg.quantum = quantum;
  ccfg.mech = CentralizedEngineConfig::Mech::kModelled;
  ccfg.preempt_delivery_ns = 1500;  // syscall + kernel IPI delivery
  ccfg.preempt_receive_ns = 2000;   // IPI receive + kernel reschedule
  ccfg.dispatch_ns = 2400;          // txn decode + kthread wake on worker
  ccfg.dispatch_occupancy_ns = 1200;  // agent-side transaction commit
  ccfg.core_alloc = core_alloc;
  ccfg.alloc_period = Micros(5);
  return MakeCentral(core_alloc ? "ghost-shenango" : "ghost", workers, ccfg);
}

SystemSetup MakeLinuxCfsCentralWorkload(int workers) {
  // The non-preemptive-dispatcher comparison point of Fig. 7a: the same
  // dispersive workload thrown at plain Linux CFS (tuned), no dispatcher.
  return MakeLinuxPerCpu(LinuxSched::kCfsTuned, workers);
}

namespace {

NodeSetup MakeWorkStealingNode(SimNode* sim, int workers, DurationNs quantum,
                               bool utimer_core_emulation) {
  const bool preemptive = quantum != kInfiniteSliceWs;
  NodeSetup node = MakeNodeBase(
      sim,
      utimer_core_emulation ? "skyloft-ws-utimer" : (preemptive ? "skyloft-ws-preempt" : "skyloft-ws"),
      workers + (utimer_core_emulation ? 1 : 0));

  WorkStealingParams params;
  params.quantum = quantum;
  node.policy = std::make_unique<WorkStealingPolicy>(params);

  PerCpuEngineConfig pcfg;
  pcfg.base.worker_cores = CoreRange(0, workers);
  pcfg.base.local_switch_ns = 100;
  pcfg.base.preemption = preemptive;
  if (preemptive) {
    pcfg.timer_hz = kSecond / quantum;  // tick once per quantum
    pcfg.tick_path = utimer_core_emulation ? TickPath::kUtimerIpi : TickPath::kUserTimer;
    pcfg.utimer_core = utimer_core_emulation ? workers : kInvalidCore;
  } else {
    pcfg.tick_path = TickPath::kNone;
  }
  node.engine = std::make_unique<PerCpuEngine>(node.machine.get(), node.chip.get(),
                                               node.kernel.get(), node.policy.get(), pcfg);
  node.app = node.engine->CreateApp("server");
  node.engine->Start();
  return node;
}

}  // namespace

NodeSetup MakeSkyloftWorkStealingNode(SimNode* sim, int workers, DurationNs quantum) {
  return MakeWorkStealingNode(sim, workers, quantum, /*utimer_core_emulation=*/false);
}

SystemSetup MakeSkyloftWorkStealing(int workers, DurationNs quantum,
                                    bool utimer_core_emulation) {
  auto sim = std::make_unique<Simulation>();
  NodeSetup node = MakeWorkStealingNode(sim.get(), workers, quantum, utimer_core_emulation);
  return Adopt(std::move(sim), std::move(node));
}

SystemSetup MakeShenango(int workers) {
  auto sim = std::make_unique<Simulation>();
  NodeSetup node = MakeNodeBase(sim.get(), "shenango", workers);
  WorkStealingParams params;
  params.quantum = kInfiniteSliceWs;  // no preemption within an application
  node.policy = std::make_unique<WorkStealingPolicy>(params);

  PerCpuEngineConfig pcfg;
  pcfg.base.worker_cores = CoreRange(0, workers);
  pcfg.base.local_switch_ns = 150;
  pcfg.base.preemption = false;
  // Shenango parks idle kthreads and the IOKernel unparks them on new work
  // every 5 us; an idle core therefore pays a kernel wake to accept work.
  pcfg.base.idle_park_threshold_ns = Micros(5);
  pcfg.base.idle_unpark_cost_ns = 2000;
  pcfg.tick_path = TickPath::kNone;
  node.engine = std::make_unique<PerCpuEngine>(node.machine.get(), node.chip.get(),
                                               node.kernel.get(), node.policy.get(), pcfg);
  node.app = node.engine->CreateApp("server");
  node.engine->Start();
  return Adopt(std::move(sim), std::move(node));
}

}  // namespace skyloft
