// Behavioural models of the systems the paper compares against, expressed as
// configurations of the same engines and policies Skyloft uses, plus each
// system's published mechanism costs:
//
//   - Linux RR / CFS / EEVDF (Fig. 5): per-CPU engine on the kernel-tick
//     path, CONFIG_HZ-limited preemption, kernel switch/wakeup costs
//   - ghOSt (Fig. 7): centralized engine whose dispatch and preemption go
//     through kernel transactions and kernel IPIs
//   - original Shinjuku (Fig. 7a): centralized engine with Dune
//     posted-interrupt preemption costs
//   - Shenango (Fig. 8): per-CPU work stealing without in-app preemption,
//     with its IOKernel-driven core parking overheads
//
// Two granularities:
//
//   - SystemSetup: one standalone simulated machine owning its own
//     Simulation — what every single-machine benchmark sweeps.
//   - NodeSetup: the same machine built on a caller-provided SimNode, i.e.
//     one shard of a ClusterSim. Multi-node scenarios (tail-at-scale
//     fan-out, per-tenant fleets) build one NodeSetup per backend shard and
//     wire the shards together with net NodeLinks.
#ifndef SRC_BASELINES_SYSTEMS_H_
#define SRC_BASELINES_SYSTEMS_H_

#include <memory>
#include <string>

#include "src/libos/central_engine.h"
#include "src/libos/percpu_engine.h"
#include "src/policies/cfs.h"
#include "src/policies/eevdf.h"
#include "src/policies/round_robin.h"
#include "src/policies/shinjuku.h"
#include "src/policies/work_stealing.h"
#include "src/simcore/simulation.h"

namespace skyloft {

// One simulated machine built on a SimNode the caller owns (typically a
// ClusterSim shard). Everything event-driven in here schedules on that node.
struct NodeSetup {
  std::string name;
  SimNode* sim = nullptr;  // not owned
  std::unique_ptr<Machine> machine;
  std::unique_ptr<UintrChip> chip;
  std::unique_ptr<KernelSim> kernel;
  std::unique_ptr<SchedPolicy> policy;
  std::unique_ptr<Engine> engine;
  App* app = nullptr;  // primary (LC) application, already created

  CentralizedEngine* central() { return static_cast<CentralizedEngine*>(engine.get()); }
  PerCpuEngine* percpu() { return static_cast<PerCpuEngine*>(engine.get()); }
};

// Everything a benchmark needs to drive one standalone system under test.
struct SystemSetup {
  std::string name;
  std::unique_ptr<Simulation> sim;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<UintrChip> chip;
  std::unique_ptr<KernelSim> kernel;
  std::unique_ptr<SchedPolicy> policy;
  std::unique_ptr<Engine> engine;
  App* app = nullptr;  // primary (LC) application, already created

  CentralizedEngine* central() { return static_cast<CentralizedEngine*>(engine.get()); }
  PerCpuEngine* percpu() { return static_cast<PerCpuEngine*>(engine.get()); }
};

// Linux scheduler variants for Fig. 5 (Table 5 parameters).
enum class LinuxSched {
  kRrDefault,     // SCHED_RR, 100 ms slice, 250 Hz tick
  kCfsDefault,    // CFS, 3 ms granularity / 24 ms latency, 250 Hz tick
  kCfsTuned,      // CFS, 12.5 us granularity / 50 us latency, 1000 Hz tick
  kEevdfDefault,  // EEVDF, 3 ms base slice, 1000 Hz tick
  kEevdfTuned,    // EEVDF, 12.5 us base slice, 1000 Hz tick
};

// Skyloft per-CPU variants for Fig. 5 (100 kHz user-space timer).
enum class SkyloftSched {
  kRr,     // 50 us slice
  kCfs,    // 12.5 us granularity / 50 us latency
  kEevdf,  // 12.5 us base slice
  kFifo,   // infinite slice (Fig. 6)
};

// ---- Per-CPU systems (Fig. 5 / Fig. 6) ----
SystemSetup MakeSkyloftPerCpu(SkyloftSched sched, int num_cores,
                              DurationNs rr_slice = Micros(50));
SystemSetup MakeLinuxPerCpu(LinuxSched sched, int num_cores);

// ---- Centralized systems (Fig. 7) ----
// `workers` excludes the dispatcher core. `core_alloc` attaches a
// best-effort app slot (Fig. 7b/7c).
SystemSetup MakeSkyloftShinjuku(int workers, DurationNs quantum, bool core_alloc);
SystemSetup MakeShinjukuOriginal(int workers, DurationNs quantum);
SystemSetup MakeGhost(int workers, DurationNs quantum, bool core_alloc);
// Linux CFS running the dispersive workload without a dispatcher.
SystemSetup MakeLinuxCfsCentralWorkload(int workers);

// ---- Work-stealing systems (Fig. 8) ----
// Skyloft work stealing; quantum = kInfiniteSliceWs disables preemption
// (Memcached config), 5/15/30 us for the RocksDB sweeps. When
// `utimer_core_emulation` is set a dedicated core sends the timer IPIs
// instead of the local APIC timers (§5.3's utimer experiment).
SystemSetup MakeSkyloftWorkStealing(int workers, DurationNs quantum,
                                    bool utimer_core_emulation = false);
SystemSetup MakeShenango(int workers);

// ---- Cluster-node variants ----
// The same systems built on one shard of a ClusterSim; the caller keeps the
// cluster (and thus `sim`) alive for the NodeSetup's lifetime.
NodeSetup MakeSkyloftPerCpuNode(SimNode* sim, SkyloftSched sched, int num_cores,
                                DurationNs rr_slice = Micros(50));
NodeSetup MakeSkyloftShinjukuNode(SimNode* sim, int workers, DurationNs quantum);
NodeSetup MakeSkyloftWorkStealingNode(SimNode* sim, int workers, DurationNs quantum);

}  // namespace skyloft

#endif  // SRC_BASELINES_SYSTEMS_H_
