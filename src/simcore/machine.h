// Simulated machine topology.
//
// Mirrors the paper's server: two sockets, 24 cores each, 2.0 GHz. Only the
// pieces relevant to scheduling are modeled: core ids, NUMA placement (user
// IPI costs differ across sockets, Table 6), and the shared cost model.
//
// A Machine is scoped to one SimNode: standalone single-machine setups hand
// it their `Simulation`, cluster setups hand it one shard of a ClusterSim —
// every event the machine's components schedule lands on that node's wheel.
#ifndef SRC_SIMCORE_MACHINE_H_
#define SRC_SIMCORE_MACHINE_H_

#include <vector>

#include "src/base/logging.h"
#include "src/simcore/cost_model.h"
#include "src/simcore/sim_node.h"

namespace skyloft {

using CoreId = int;
inline constexpr CoreId kInvalidCore = -1;

struct MachineConfig {
  int num_cores = 24;
  int cores_per_socket = 24;
  CostModel costs;
};

class Machine {
 public:
  Machine(SimNode* sim, MachineConfig config) : sim_(sim), config_(config) {
    SKYLOFT_CHECK(config.num_cores > 0);
    SKYLOFT_CHECK(config.cores_per_socket > 0);
  }

  SimNode& sim() { return *sim_; }
  const MachineConfig& config() const { return config_; }
  const CostModel& costs() const { return config_.costs; }
  int num_cores() const { return config_.num_cores; }

  int SocketOf(CoreId core) const {
    SKYLOFT_DCHECK(core >= 0 && core < config_.num_cores);
    return core / config_.cores_per_socket;
  }

  bool CrossNuma(CoreId a, CoreId b) const { return SocketOf(a) != SocketOf(b); }

 private:
  SimNode* sim_;
  MachineConfig config_;
};

}  // namespace skyloft

#endif  // SRC_SIMCORE_MACHINE_H_
