// Deterministic discrete-event simulation engine.
//
// Every hardware and software component of the simulated machine (LAPIC
// timers, user-interrupt delivery, kernel scheduling ticks, network arrivals,
// task completions) is an event on a single totally-ordered queue. Ties are
// broken by schedule order, so a given seed always produces the same trace —
// a property the test suite asserts directly (and cross-checks against a
// reference heap implementation, see tests/reference_simulation.h).
//
// The queue is a hybrid of two structures chosen for the workload's shape
// (millions of short-horizon timer events per simulated second):
//
//   - A 4-level hierarchical timing wheel (Varghese & Lauck) covering the
//     next 2^24 ns (~16.7 ms). Events land at the level of their most
//     significant differing bit-group relative to the clock, so every slot
//     list is strictly "ahead" of the cursor and no lap counting is needed.
//     Per-level occupancy bitmaps let the clock jump straight to the next
//     non-empty slot instead of ticking through empty ones. Insert, cancel,
//     and pop are O(1); cascading on window entry is amortized O(1).
//
//   - An overflow min-heap (ordered by (deadline, sequence)) for events
//     beyond the wheel horizon. The two structures are merged at pop time,
//     comparing (when, seq) lexicographically, so ordering is exactly that
//     of a single queue.
//
// Event nodes are slab-allocated and intrusive: scheduling reuses freed
// nodes, cancellation unlinks in O(1), and EventIds carry a generation tag so
// a stale id (already fired/cancelled) is rejected without any hash-set
// bookkeeping. Callbacks are stored in an InplaceFunction, so the
// schedule/fire path performs no heap allocation for ordinary closures.
// Periodic events (SchedulePeriodic) re-arm their own node in place with a
// fresh sequence number before the callback runs — equivalent in event order
// to re-scheduling from the callback, without constructing a new closure.
#ifndef SRC_SIMCORE_SIMULATION_H_
#define SRC_SIMCORE_SIMULATION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/inplace_function.h"
#include "src/base/intrusive_list.h"
#include "src/base/time.h"

namespace skyloft {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulation {
 public:
  using Callback = InplaceFunction;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current simulated time.
  TimeNs Now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= Now()). Returns an id
  // usable with Cancel().
  EventId ScheduleAt(TimeNs at, Callback fn);

  // Schedules `fn` to run `delay` ns from now.
  EventId ScheduleAfter(DurationNs delay, Callback fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Schedules `fn` to run at `first`, then every `period` ns after that,
  // reusing one event node (no per-fire allocation or closure construction).
  // The returned id stays valid across fires; Cancel() stops the series.
  // Each fire is ordered as if the next occurrence had been re-scheduled at
  // the top of the callback (fresh sequence number).
  EventId SchedulePeriodic(TimeNs first, DurationNs period, Callback fn);

  // Cancels a pending event. Cancelling an already-fired or already-cancelled
  // event is a no-op that returns false. Returns true if the event was
  // pending.
  bool Cancel(EventId id);

  // Runs events until the queue is empty or Stop() is called.
  void Run();

  // Runs events with timestamp <= `deadline`; afterwards Now() == deadline
  // (unless Stop() was called earlier).
  void RunUntil(TimeNs deadline);

  // Runs exactly one event if available. Returns false when the queue is empty.
  bool Step();

  // Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  std::size_t PendingEvents() const { return pending_; }

  // Total number of events executed so far (for determinism checks).
  std::uint64_t EventsExecuted() const { return executed_; }

 private:
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;  // 64
  static constexpr int kWheelLevels = 4;         // horizon: 2^24 ns
  static constexpr int kWheelBits = kSlotBits * kWheelLevels;
  // Node location sentinels (EventNode::level).
  static constexpr std::int8_t kUnlinked = -1;      // popped / being fired
  static constexpr std::int8_t kOverflow = kWheelLevels;  // in overflow_

  struct EventNode : ListNode {
    TimeNs when = 0;
    std::uint64_t seq = 0;    // schedule order; same-time tie-break
    DurationNs period = 0;    // > 0 for periodic events
    std::uint32_t gen = 1;    // bumped on free; half of the EventId
    std::uint32_t self = 0;   // own slab index
    std::int8_t level = kUnlinked;
    std::uint8_t slot = 0;
    bool dead = false;        // fired or cancelled; awaiting reclamation
    bool in_flight = false;   // callback currently executing
    Callback fn;
  };

  static EventId IdOf(const EventNode* n) {
    return (static_cast<EventId>(n->gen) << 32) | (n->self + 1);
  }

  EventNode* Alloc();
  void Free(EventNode* n);
  // Resolves an id to its live node, or nullptr if stale/invalid.
  EventNode* NodeFor(EventId id);
  EventId ScheduleNode(TimeNs at, DurationNs period, Callback fn);
  // Places a node into the wheel or the overflow heap relative to now_.
  void InsertPending(EventNode* n);
  // Unlinks a wheel-resident node, clearing the occupancy bit if needed.
  void WheelRemove(EventNode* n);
  // Redistributes a higher-level slot into lower levels after the clock
  // enters its window.
  void Cascade(int level, int slot);
  // Advances now_ (cascading as needed) to the next event with
  // when <= limit and pops it, or returns nullptr leaving now_ <= limit.
  EventNode* NextDue(TimeNs limit);
  void FireNode(EventNode* n);
  void HeapPush(EventNode* n);
  void HeapPopTop();

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t pending_ = 0;
  bool stopped_ = false;

  IntrusiveList<EventNode> wheel_[kWheelLevels][kSlots];
  std::uint64_t occupied_[kWheelLevels] = {};
  std::vector<EventNode*> overflow_;  // min-heap by (when, seq)

  // Slab: chunked so node addresses are stable across growth.
  static constexpr std::size_t kChunkSize = 256;
  std::vector<std::unique_ptr<EventNode[]>> chunks_;
  std::vector<std::uint32_t> free_;
};

}  // namespace skyloft

#endif  // SRC_SIMCORE_SIMULATION_H_
