// Simulation: the single-shard degenerate case of the partitioned event core.
//
// Historically the whole discrete-event engine lived in this class; it is now
// SimNode (src/simcore/sim_node.h), of which a cluster (ClusterSim) owns one
// per simulated node. A standalone `Simulation` is exactly one unclustered
// shard driven through Run()/RunUntil()/Step(), so every single-machine
// consumer keeps the same ScheduleAt/SchedulePeriodic/Cancel surface it
// always had.
#ifndef SRC_SIMCORE_SIMULATION_H_
#define SRC_SIMCORE_SIMULATION_H_

#include "src/simcore/sim_node.h"

namespace skyloft {

using Simulation = SimNode;

}  // namespace skyloft

#endif  // SRC_SIMCORE_SIMULATION_H_
