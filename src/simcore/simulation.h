// Deterministic discrete-event simulation engine.
//
// Every hardware and software component of the simulated machine (LAPIC
// timers, user-interrupt delivery, kernel scheduling ticks, network arrivals,
// task completions) is an event on a single totally-ordered queue. Ties are
// broken by schedule order, so a given seed always produces the same trace —
// a property the test suite asserts directly.
#ifndef SRC_SIMCORE_SIMULATION_H_
#define SRC_SIMCORE_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/base/time.h"

namespace skyloft {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class Simulation {
 public:
  using Callback = std::function<void()>;

  Simulation() = default;
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current simulated time.
  TimeNs Now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= Now()). Returns an id
  // usable with Cancel().
  EventId ScheduleAt(TimeNs at, Callback fn);

  // Schedules `fn` to run `delay` ns from now.
  EventId ScheduleAfter(DurationNs delay, Callback fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Cancels a pending event. Cancelling an already-fired or already-cancelled
  // event is a no-op. Returns true if the event was pending.
  bool Cancel(EventId id);

  // Runs events until the queue is empty or Stop() is called.
  void Run();

  // Runs events with timestamp <= `deadline`; afterwards Now() == deadline
  // (unless Stop() was called earlier).
  void RunUntil(TimeNs deadline);

  // Runs exactly one event if available. Returns false when the queue is empty.
  bool Step();

  // Makes Run()/RunUntil() return after the current event completes.
  void Stop() { stopped_ = true; }

  std::size_t PendingEvents() const { return heap_.size() - cancelled_.size(); }

  // Total number of events executed so far (for determinism checks).
  std::uint64_t EventsExecuted() const { return executed_; }

 private:
  struct Event {
    TimeNs when;
    EventId id;
    Callback fn;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  // Pops the next non-cancelled event, or returns false.
  bool PopNext(Event* out);

  TimeNs now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
};

}  // namespace skyloft

#endif  // SRC_SIMCORE_SIMULATION_H_
