// SimNode: one shard of the deterministic discrete-event simulation.
//
// Every hardware and software component of a simulated machine (LAPIC
// timers, user-interrupt delivery, kernel scheduling ticks, network arrivals,
// task completions) is an event on this node's totally-ordered queue. Ties
// are broken by schedule order, so a given seed always produces the same
// trace — a property the test suite asserts directly (and cross-checks
// against a reference heap implementation, see tests/reference_simulation.h).
//
// A SimNode is either *standalone* — the classic single-machine case, driven
// through Run()/RunUntil()/Step(), spelled `Simulation` by consumers — or one
// of N shards owned by a ClusterSim (src/simcore/cluster_sim.h). In a cluster
// each shard owns its own wheel, overflow heap, and slab, runs its events on
// a host thread, and talks to other shards only through cross-node sends
// (NodeLink in src/net) that carry at least the cluster's lookahead latency.
//
// The queue is a hybrid of two structures chosen for the workload's shape
// (millions of short-horizon timer events per simulated second):
//
//   - A 4-level hierarchical timing wheel (Varghese & Lauck) covering the
//     next 2^24 ns (~16.7 ms). Events land at the level of their most
//     significant differing bit-group relative to the clock, so every slot
//     list is strictly "ahead" of the cursor and no lap counting is needed.
//     Per-level occupancy bitmaps let the clock jump straight to the next
//     non-empty slot instead of ticking through empty ones. Insert, cancel,
//     and pop are O(1); cascading on window entry is amortized O(1).
//
//   - An overflow min-heap (ordered by (deadline, sequence)) for events
//     beyond the wheel horizon. The two structures are merged at pop time,
//     comparing (when, seq) lexicographically, so ordering is exactly that
//     of a single queue.
//
// Event nodes are slab-allocated and intrusive: scheduling reuses freed
// nodes, cancellation unlinks in O(1), and EventIds carry a generation tag so
// a stale id (already fired/cancelled) is rejected without any hash-set
// bookkeeping. Callbacks are stored in an InplaceFunction, so the
// schedule/fire path performs no heap allocation for ordinary closures.
// Periodic events (SchedulePeriodic) re-arm their own node in place with a
// fresh sequence number before the callback runs — equivalent in event order
// to re-scheduling from the callback, without constructing a new closure.
#ifndef SRC_SIMCORE_SIM_NODE_H_
#define SRC_SIMCORE_SIM_NODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/base/inplace_function.h"
#include "src/base/intrusive_list.h"
#include "src/base/time.h"

namespace skyloft {

class ClusterSim;

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

// Handle for a cross-node event while it is still in flight on the link
// (i.e. not yet delivered into the destination shard at an epoch barrier).
using RemoteEventId = std::uint64_t;
inline constexpr RemoteEventId kInvalidRemoteEventId = 0;

class SimNode {
 public:
  using Callback = InplaceFunction;

  SimNode() = default;
  SimNode(const SimNode&) = delete;
  SimNode& operator=(const SimNode&) = delete;

  // Shard index within a ClusterSim; 0 for a standalone node.
  int node_id() const { return node_id_; }

  // Current simulated time.
  TimeNs Now() const { return now_; }

  // Schedules `fn` to run at absolute time `at` (>= Now()). Returns an id
  // usable with Cancel().
  EventId ScheduleAt(TimeNs at, Callback fn);

  // Schedules `fn` to run `delay` ns from now.
  EventId ScheduleAfter(DurationNs delay, Callback fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  // Schedules `fn` to run at `first`, then every `period` ns after that,
  // reusing one event node (no per-fire allocation or closure construction).
  // The returned id stays valid across fires; Cancel() stops the series.
  // Each fire is ordered as if the next occurrence had been re-scheduled at
  // the top of the callback (fresh sequence number).
  EventId SchedulePeriodic(TimeNs first, DurationNs period, Callback fn);

  // Cancels a pending event. Cancelling an already-fired or already-cancelled
  // event is a no-op that returns false. Returns true if the event was
  // pending.
  bool Cancel(EventId id);

  // ---- Cross-shard sends (cluster members only) ----
  //
  // Queues `fn` for execution on shard `dst_node` at Now() + latency_ns.
  // The event travels through this node's outbox and is delivered into the
  // destination shard's wheel at the next epoch barrier — single-threaded,
  // in (source node id, send order) order — so per-seed determinism is
  // independent of how shards are interleaved across host threads. Arrivals
  // tie-breaking against local events at the same timestamp order after any
  // event the destination had already scheduled. Use a net NodeLink rather
  // than calling this directly: the link pins the latency that the cluster's
  // lookahead was derived from.
  RemoteEventId SendRemote(int dst_node, DurationNs latency_ns, Callback fn);

  // Cancels a cross-shard send. Only the sending node may cancel, and only
  // while the event is still in flight on the link (it has not crossed an
  // epoch barrier yet); afterwards the event belongs to the destination
  // shard and Cancel... returns false.
  bool CancelRemote(RemoteEventId id);

  // Number of cross-shard events queued but not yet delivered.
  std::size_t OutboxSize() const { return outbox_.size(); }

  // ---- Standalone drivers (forbidden on cluster members, which are
  // advanced in lockstep by ClusterSim::Run/RunUntil) ----

  // Runs events until the queue is empty or Stop() is called.
  void Run();

  // Runs events with timestamp <= `deadline`; afterwards Now() == deadline
  // (unless Stop() was called earlier).
  void RunUntil(TimeNs deadline);

  // Runs exactly one event if available. Returns false when the queue is empty.
  bool Step();

  // Makes Run()/RunUntil() return after the current event completes. On a
  // cluster member this also halts the whole cluster: the coordinator
  // observes the flag at the next epoch barrier and stops every shard there
  // (other shards always finish their current window, so the trace up to the
  // stop is identical at any host-thread count).
  void Stop() { stopped_ = true; }

  std::size_t PendingEvents() const { return pending_; }

  // Total number of events executed so far (for determinism checks).
  std::uint64_t EventsExecuted() const { return executed_; }

 private:
  friend class ClusterSim;

  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;  // 64
  static constexpr int kWheelLevels = 4;         // horizon: 2^24 ns
  static constexpr int kWheelBits = kSlotBits * kWheelLevels;
  // Node location sentinels (EventNode::level).
  static constexpr std::int8_t kUnlinked = -1;      // popped / being fired
  static constexpr std::int8_t kOverflow = kWheelLevels;  // in overflow_

  struct EventNode : ListNode {
    TimeNs when = 0;
    std::uint64_t seq = 0;    // schedule order; same-time tie-break
    DurationNs period = 0;    // > 0 for periodic events
    std::uint32_t gen = 1;    // bumped on free; half of the EventId
    std::uint32_t self = 0;   // own slab index
    std::int8_t level = kUnlinked;
    std::uint8_t slot = 0;
    bool dead = false;        // fired or cancelled; awaiting reclamation
    bool in_flight = false;   // callback currently executing
    Callback fn;
  };

  // One cross-shard event waiting for the next epoch barrier.
  struct OutboxEntry {
    int dst = 0;
    TimeNs when = 0;         // arrival time (send time + link latency)
    RemoteEventId id = kInvalidRemoteEventId;
    bool cancelled = false;
    Callback fn;
  };

  static EventId IdOf(const EventNode* n) {
    return (static_cast<EventId>(n->gen) << 32) | (n->self + 1);
  }

  EventNode* Alloc();
  void Free(EventNode* n);
  // Resolves an id to its live node, or nullptr if stale/invalid.
  EventNode* NodeFor(EventId id);
  EventId ScheduleNode(TimeNs at, DurationNs period, Callback fn);
  // Places a node into the wheel or the overflow heap relative to now_.
  void InsertPending(EventNode* n);
  // Unlinks a wheel-resident node, clearing the occupancy bit if needed.
  void WheelRemove(EventNode* n);
  // Redistributes a higher-level slot into lower levels after the clock
  // enters its window.
  void Cascade(int level, int slot);
  // Advances now_ (cascading as needed) to the next event with
  // when <= limit and pops it, or returns nullptr leaving now_ <= limit.
  EventNode* NextDue(TimeNs limit);
  // Jumps the clock to `t` (caller proved no event fires before it) and
  // cascades any occupied cursor-slot windows the landing point sits inside,
  // keeping every occupied slot strictly ahead of the cursor.
  void JumpTo(TimeNs t);
  void FireNode(EventNode* n);
  void HeapPush(EventNode* n);
  void HeapPopTop();

  // ---- ClusterSim-only surface ----
  //
  // Runs one conservative time window. Fires events with when < `end`
  // (when <= `end` if `inclusive`, used for the final window of a
  // RunUntil), honoring Stop() without resetting it, then advances the
  // clock to `end`. Called from the shard's host thread for the epoch.
  void RunWindow(TimeNs end, bool inclusive);
  // Inserts a cross-shard arrival (barrier-time, coordinator thread only).
  void DeliverRemote(TimeNs when, Callback fn);
  // Non-mutating lower bound on the earliest pending event's timestamp
  // (INT64_MAX when the queue is empty). Exact for level-0 and overflow
  // events; for higher wheel levels it is the start of the earliest occupied
  // slot's bucket — always <= the true time, which is what the coordinator's
  // idle fast-forward needs (it may only skip windows no event can fall in).
  TimeNs EarliestPendingBound() const;

  int node_id_ = 0;
  ClusterSim* cluster_ = nullptr;  // set by ClusterSim on its members

  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::size_t pending_ = 0;
  bool stopped_ = false;

  IntrusiveList<EventNode> wheel_[kWheelLevels][kSlots];
  std::uint64_t occupied_[kWheelLevels] = {};
  std::vector<EventNode*> overflow_;  // min-heap by (when, seq)

  RemoteEventId next_remote_id_ = 1;
  std::vector<OutboxEntry> outbox_;

  // Slab: chunked so node addresses are stable across growth.
  static constexpr std::size_t kChunkSize = 256;
  std::vector<std::unique_ptr<EventNode[]>> chunks_;
  std::vector<std::uint32_t> free_;
};

}  // namespace skyloft

#endif  // SRC_SIMCORE_SIM_NODE_H_
