// Per-operation cost constants for the simulated machine.
//
// Every constant is taken from the paper's own measurements on the Sapphire
// Rapids evaluation machine (Tables 6 and 7, §5.4 text), quoted in cycles at
// 2.0 GHz or directly in ns. Benchmarks that reproduce Table 6 / Table 7 read
// these back out through the full mechanism model, so they serve as both
// input calibration and an end-to-end consistency check of the model.
#ifndef SRC_SIMCORE_COST_MODEL_H_
#define SRC_SIMCORE_COST_MODEL_H_

#include "src/base/time.h"

namespace skyloft {

struct CostModel {
  std::int64_t cpu_hz = kDefaultCpuHz;

  // ---- Table 6: preemption mechanisms (cycles) ----
  // "Send": time spent by the sender; "Receive": receiver-side handling
  // including context save/restore; "Delivery": wire latency from send start
  // to handler entry on the remote core.
  Cycles signal_send = 1224;
  Cycles signal_receive = 6359;
  Cycles signal_delivery = 5274;

  Cycles kernel_ipi_send = 437;
  Cycles kernel_ipi_receive = 1582;
  Cycles kernel_ipi_delivery = 1345;

  Cycles user_ipi_send = 167;
  Cycles user_ipi_receive = 661;
  Cycles user_ipi_delivery = 1211;

  Cycles user_ipi_xnuma_send = 178;
  Cycles user_ipi_xnuma_receive = 883;
  Cycles user_ipi_xnuma_delivery = 1782;

  Cycles setitimer_receive = 5057;
  Cycles user_timer_receive = 642;

  // §5.4: extra SENDUIPI (UPID.SN=1) in the handler to re-arm user-space
  // timer-interrupt delivery.
  Cycles senduipi_sn_rearm = 123;

  // ---- Table 7: threading operations (ns) ----
  DurationNs uthread_yield_ns = 37;
  DurationNs uthread_spawn_ns = 191;
  DurationNs uthread_mutex_ns = 27;
  DurationNs uthread_condvar_ns = 86;

  DurationNs pthread_yield_ns = 898;
  DurationNs pthread_spawn_ns = 15418;
  DurationNs pthread_mutex_ns = 28;
  DurationNs pthread_condvar_ns = 2532;

  // ---- §5.4 text: thread/application switching (ns) ----
  DurationNs skyloft_app_switch_ns = 1905;       // inter-application uthread switch
  DurationNs linux_kthread_switch_ns = 1124;     // both threads runnable
  DurationNs linux_kthread_wake_switch_ns = 2471;  // wake + switch (IPC-style)

  // Generic mode-switch cost for a light syscall/ioctl round trip (derived
  // from the kernel-IPI send/receive split: user->kernel->user transition).
  DurationNs syscall_ns = 250;

  // Dispatch overhead of handing a task to a worker in centralized mode
  // (cache-line handoff + queue manipulation; Shinjuku reports ~100ns).
  DurationNs dispatch_ns = 100;

  // Convenience conversions.
  DurationNs SignalDeliveryNs() const { return CyclesToNs(signal_delivery, cpu_hz); }
  DurationNs SignalReceiveNs() const { return CyclesToNs(signal_receive, cpu_hz); }
  DurationNs SignalSendNs() const { return CyclesToNs(signal_send, cpu_hz); }
  DurationNs KernelIpiDeliveryNs() const { return CyclesToNs(kernel_ipi_delivery, cpu_hz); }
  DurationNs KernelIpiReceiveNs() const { return CyclesToNs(kernel_ipi_receive, cpu_hz); }
  DurationNs KernelIpiSendNs() const { return CyclesToNs(kernel_ipi_send, cpu_hz); }
  DurationNs UserIpiSendNs(bool cross_numa = false) const {
    return CyclesToNs(cross_numa ? user_ipi_xnuma_send : user_ipi_send, cpu_hz);
  }
  DurationNs UserIpiReceiveNs(bool cross_numa = false) const {
    return CyclesToNs(cross_numa ? user_ipi_xnuma_receive : user_ipi_receive, cpu_hz);
  }
  DurationNs UserIpiDeliveryNs(bool cross_numa = false) const {
    return CyclesToNs(cross_numa ? user_ipi_xnuma_delivery : user_ipi_delivery, cpu_hz);
  }
  DurationNs UserTimerReceiveNs() const { return CyclesToNs(user_timer_receive, cpu_hz); }
  DurationNs SetitimerReceiveNs() const { return CyclesToNs(setitimer_receive, cpu_hz); }
  DurationNs SenduipiSnRearmNs() const { return CyclesToNs(senduipi_sn_rearm, cpu_hz); }
};

}  // namespace skyloft

#endif  // SRC_SIMCORE_COST_MODEL_H_
