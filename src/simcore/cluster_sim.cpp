#include "src/simcore/cluster_sim.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/base/logging.h"

namespace skyloft {

namespace {

inline constexpr TimeNs kNoDeadline = std::numeric_limits<TimeNs>::max();

}  // namespace

ClusterSim::ClusterSim(int num_nodes, Options options) : options_(options) {
  SKYLOFT_CHECK(num_nodes > 0);
  SKYLOFT_CHECK(options.num_threads > 0);
  SKYLOFT_CHECK(options.epoch_ns >= 0);
  nodes_.reserve(static_cast<std::size_t>(num_nodes));
  for (int i = 0; i < num_nodes; i++) {
    auto node = std::make_unique<SimNode>();
    node->node_id_ = i;
    node->cluster_ = this;
    nodes_.push_back(std::move(node));
  }
  pool_size_ = std::min(options_.num_threads, num_nodes);
}

ClusterSim::~ClusterSim() {
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      shutdown_ = true;
    }
    cv_work_.notify_all();
    for (std::thread& t : threads_) {
      t.join();
    }
  }
}

SimNode* ClusterSim::node(int index) {
  SKYLOFT_CHECK(index >= 0 && index < num_nodes());
  return nodes_[static_cast<std::size_t>(index)].get();
}

void ClusterSim::RegisterLinkLatency(DurationNs latency_ns) {
  SKYLOFT_CHECK(!running_) << "links must be registered before the cluster runs";
  SKYLOFT_CHECK(latency_ns > 0) << "zero-latency link: lookahead must be > 0";
  if (min_link_latency_ == 0 || latency_ns < min_link_latency_) {
    min_link_latency_ = latency_ns;
  }
}

DurationNs ClusterSim::lookahead() const {
  if (options_.epoch_ns > 0) {
    return options_.epoch_ns;
  }
  return min_link_latency_ > 0 ? min_link_latency_ : kDefaultEpochNs;
}

void ClusterSim::Run() { RunLoop(kNoDeadline, /*bounded=*/false); }

void ClusterSim::RunUntil(TimeNs deadline) {
  SKYLOFT_CHECK(deadline >= floor_) << "cluster deadline in the past";
  RunLoop(deadline, /*bounded=*/true);
}

void ClusterSim::RunLoop(TimeNs deadline, bool bounded) {
  SKYLOFT_CHECK(!running_) << "re-entrant cluster run";
  running_ = true;
  external_stop_.store(false, std::memory_order_relaxed);
  for (auto& n : nodes_) {
    n->stopped_ = false;
  }
  const DurationNs epoch = lookahead();
  SKYLOFT_CHECK(epoch > 0);
  if (min_link_latency_ > 0) {
    SKYLOFT_CHECK(epoch <= min_link_latency_)
        << "epoch " << epoch << " exceeds the lookahead (min link latency "
        << min_link_latency_ << ")";
  }

  for (;;) {
    TimeNs end = floor_ + epoch;
    // Idle fast-forward. At the top of an iteration every outbox is empty
    // except before the very first window (pre-run SendRemote), so when that
    // holds and the earliest pending event sits beyond the next window, the
    // intervening epochs are provably empty: no event can fire in them, so
    // no send, delivery, or stop can happen either. Merge them into one
    // no-op window whose end stays on the epoch grid and at or below the
    // earliest event's lower bound — the resulting trace is bit-identical
    // to stepping every empty epoch, just without the barriers.
    if (OutboxesEmpty()) {
      TimeNs next_event = kNoDeliveries;
      for (auto& n : nodes_) {
        next_event = std::min(next_event, n->EarliestPendingBound());
      }
      if (next_event != kNoDeliveries && next_event > end) {
        end = floor_ + (next_event - floor_) / epoch * epoch;
      }
    }
    bool final_window = false;
    if (bounded && end >= deadline) {
      end = deadline;
      final_window = true;
    }
    RunWindows(end, /*inclusive=*/final_window);
    epochs_++;
    floor_ = end;
    const bool any_stop =
        external_stop_.load(std::memory_order_relaxed) || AnyShardStopped();
    TimeNs earliest = DeliverOutboxes();
    if (any_stop) {
      break;
    }
    if (final_window) {
      // The final barrier can deliver arrivals landing exactly on the
      // deadline (send at t == floor - lookahead over a lookahead-latency
      // link). One extra inclusive window fires them; anything those events
      // send arrives strictly after the deadline, so one round suffices.
      if (earliest <= deadline) {
        RunWindows(deadline, /*inclusive=*/true);
        DeliverOutboxes();
      }
      break;
    }
    if (earliest == kNoDeliveries && TotalPendingEvents() == 0) {
      if (!bounded) {
        break;  // globally drained
      }
      // Drained early: nothing can fire before the deadline, so skip the
      // empty epochs and run the final (inclusive) window directly — it only
      // advances every shard's clock to the deadline.
      RunWindows(deadline, /*inclusive=*/true);
      epochs_++;
      floor_ = deadline;
      break;
    }
  }
  running_ = false;
}

void ClusterSim::RunWindows(TimeNs end, bool inclusive) {
  if (pool_size_ <= 1) {
    for (auto& n : nodes_) {
      n->RunWindow(end, inclusive);
    }
    return;
  }
  EnsurePool();
  {
    std::lock_guard<std::mutex> lk(mu_);
    window_end_ = end;
    window_inclusive_ = inclusive;
    done_ = 0;
    generation_++;
  }
  cv_work_.notify_all();
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [this] { return done_ == pool_size_; });
}

TimeNs ClusterSim::DeliverOutboxes() {
  TimeNs earliest = kNoDeliveries;
  // Source node id order, then send order within a source: a fixed total
  // order so destination sequence numbers (the same-time tie-break) do not
  // depend on host-thread interleaving.
  for (auto& src : nodes_) {
    for (SimNode::OutboxEntry& e : src->outbox_) {
      if (e.cancelled) {
        continue;
      }
      SKYLOFT_DCHECK(e.when >= nodes_[static_cast<std::size_t>(e.dst)]->Now())
          << "cross-shard arrival inside the executed window: when=" << e.when
          << " dst_now=" << nodes_[static_cast<std::size_t>(e.dst)]->Now()
          << " floor=" << floor_ << " src=" << src->node_id();
      nodes_[static_cast<std::size_t>(e.dst)]->DeliverRemote(e.when, std::move(e.fn));
      earliest = std::min(earliest, e.when);
    }
    src->outbox_.clear();
  }
  return earliest;
}

bool ClusterSim::OutboxesEmpty() const {
  for (const auto& n : nodes_) {
    if (!n->outbox_.empty()) {
      return false;
    }
  }
  return true;
}

bool ClusterSim::AnyShardStopped() const {
  for (const auto& n : nodes_) {
    if (n->stopped_) {
      return true;
    }
  }
  return false;
}

std::uint64_t ClusterSim::TotalEventsExecuted() const {
  std::uint64_t total = 0;
  for (const auto& n : nodes_) {
    total += n->EventsExecuted();
  }
  return total;
}

std::size_t ClusterSim::TotalPendingEvents() const {
  std::size_t total = 0;
  for (const auto& n : nodes_) {
    total += n->PendingEvents();
  }
  return total;
}

void ClusterSim::EnsurePool() {
  if (!threads_.empty()) {
    return;
  }
  threads_.reserve(static_cast<std::size_t>(pool_size_));
  for (int w = 0; w < pool_size_; w++) {
    threads_.emplace_back([this, w] { WorkerMain(w); });
  }
}

void ClusterSim::WorkerMain(int worker_index) {
  std::uint64_t seen = 0;
  for (;;) {
    TimeNs end;
    bool inclusive;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) {
        return;
      }
      seen = generation_;
      end = window_end_;
      inclusive = window_inclusive_;
    }
    for (int i = worker_index; i < num_nodes(); i += pool_size_) {
      nodes_[static_cast<std::size_t>(i)]->RunWindow(end, inclusive);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (++done_ == pool_size_) {
        cv_done_.notify_one();
      }
    }
  }
}

}  // namespace skyloft
