#include "src/simcore/simulation.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/base/logging.h"

namespace skyloft {

namespace {

inline constexpr TimeNs kNoLimit = std::numeric_limits<TimeNs>::max();

}  // namespace

Simulation::EventNode* Simulation::Alloc() {
  if (free_.empty()) {
    auto chunk = std::make_unique<EventNode[]>(kChunkSize);
    const auto base = static_cast<std::uint32_t>(chunks_.size() * kChunkSize);
    for (std::size_t i = kChunkSize; i-- > 0;) {
      chunk[i].self = base + static_cast<std::uint32_t>(i);
      free_.push_back(base + static_cast<std::uint32_t>(i));
    }
    chunks_.push_back(std::move(chunk));
  }
  const std::uint32_t index = free_.back();
  free_.pop_back();
  return &chunks_[index / kChunkSize][index % kChunkSize];
}

void Simulation::Free(EventNode* n) {
  n->fn.Reset();  // release captured resources promptly
  n->gen++;       // invalidate every outstanding id for this slot
  n->level = kUnlinked;
  n->dead = false;
  n->in_flight = false;
  free_.push_back(n->self);
}

Simulation::EventNode* Simulation::NodeFor(EventId id) {
  if (id == kInvalidEventId) {
    return nullptr;
  }
  const std::uint64_t index = (id & 0xffffffffull) - 1;
  if (index >= chunks_.size() * kChunkSize) {
    return nullptr;
  }
  EventNode* n = &chunks_[index / kChunkSize][index % kChunkSize];
  if (n->gen != static_cast<std::uint32_t>(id >> 32)) {
    return nullptr;  // slot was reused: the id refers to a dead event
  }
  return n;
}

EventId Simulation::ScheduleNode(TimeNs at, DurationNs period, Callback fn) {
  SKYLOFT_CHECK(at >= now_) << "cannot schedule in the past: " << at << " < " << now_;
  EventNode* n = Alloc();
  n->when = at;
  n->seq = next_seq_++;
  n->period = period;
  n->fn = std::move(fn);
  pending_++;
  InsertPending(n);
  return IdOf(n);
}

EventId Simulation::ScheduleAt(TimeNs at, Callback fn) {
  return ScheduleNode(at, /*period=*/0, std::move(fn));
}

EventId Simulation::SchedulePeriodic(TimeNs first, DurationNs period, Callback fn) {
  SKYLOFT_CHECK(period > 0) << "periodic event needs a positive period";
  return ScheduleNode(first, period, std::move(fn));
}

void Simulation::InsertPending(EventNode* n) {
  const std::uint64_t x =
      static_cast<std::uint64_t>(n->when) ^ static_cast<std::uint64_t>(now_);
  int level = 0;
  if (x != 0) {
    level = (63 - __builtin_clzll(x)) / kSlotBits;
  }
  if (level >= kWheelLevels) {
    n->level = kOverflow;
    HeapPush(n);
    return;
  }
  const int slot = static_cast<int>(
      (static_cast<std::uint64_t>(n->when) >> (kSlotBits * level)) & (kSlots - 1));
  n->level = static_cast<std::int8_t>(level);
  n->slot = static_cast<std::uint8_t>(slot);
  wheel_[level][slot].PushBack(n);
  occupied_[level] |= 1ull << slot;
}

void Simulation::WheelRemove(EventNode* n) {
  auto& list = wheel_[n->level][n->slot];
  list.Remove(n);
  if (list.Empty()) {
    occupied_[n->level] &= ~(1ull << n->slot);
  }
  n->level = kUnlinked;
}

void Simulation::Cascade(int level, int slot) {
  auto& list = wheel_[level][slot];
  occupied_[level] &= ~(1ull << slot);
  // Pop front-to-back and reinsert: each node lands at a strictly lower
  // level (its upper bit-groups now match the clock), preserving sequence
  // order within every destination slot.
  while (EventNode* n = list.PopFront()) {
    InsertPending(n);
  }
}

void Simulation::HeapPush(EventNode* n) {
  auto after = [](const EventNode* a, const EventNode* b) {
    if (a->when != b->when) {
      return a->when > b->when;
    }
    return a->seq > b->seq;
  };
  overflow_.push_back(n);
  std::push_heap(overflow_.begin(), overflow_.end(), after);
}

void Simulation::HeapPopTop() {
  auto after = [](const EventNode* a, const EventNode* b) {
    if (a->when != b->when) {
      return a->when > b->when;
    }
    return a->seq > b->seq;
  };
  std::pop_heap(overflow_.begin(), overflow_.end(), after);
  overflow_.pop_back();
}

bool Simulation::Cancel(EventId id) {
  EventNode* n = NodeFor(id);
  if (n == nullptr || n->dead) {
    return false;
  }
  if (n->level == kUnlinked) {
    // A one-shot that is executing right now: it already fired.
    return false;
  }
  pending_--;
  if (n->level == kOverflow) {
    // Heap-resident: mark dead and reclaim lazily when it surfaces at the
    // top, keeping Cancel O(1).
    n->dead = true;
    return true;
  }
  WheelRemove(n);
  if (n->in_flight) {
    n->dead = true;  // periodic cancelled from inside its own callback
  } else {
    Free(n);
  }
  return true;
}

Simulation::EventNode* Simulation::NextDue(TimeNs limit) {
  for (;;) {
    // Reclaim cancelled events that have drifted to the overflow top.
    while (!overflow_.empty() && overflow_.front()->dead) {
      EventNode* dead = overflow_.front();
      HeapPopTop();
      Free(dead);
    }
    EventNode* over = overflow_.empty() ? nullptr : overflow_.front();

    // Level 0: slots at or ahead of the cursor within the current 64-ns
    // window hold events due at exactly window_base + slot.
    const int c0 = static_cast<int>(static_cast<std::uint64_t>(now_) & (kSlots - 1));
    const std::uint64_t m0 = occupied_[0] & (~0ull << c0);
    if (m0 != 0) {
      const int s = __builtin_ctzll(m0);
      const TimeNs t = (now_ - c0) + s;
      if (t <= limit) {
        EventNode* head = wheel_[0][s].Front();
        if (over == nullptr || over->when > t ||
            (over->when == t && over->seq > head->seq)) {
          WheelRemove(head);
          now_ = t;
          return head;
        }
      }
      // The wheel's earliest event loses to the overflow top or the limit.
      if (over != nullptr && over->when <= limit && over->when <= t) {
        HeapPopTop();
        over->level = kUnlinked;
        now_ = over->when;
        return over;
      }
      return nullptr;  // nothing due at or before `limit`
    }

    // No level-0 events in the current window: enter the next occupied
    // window (lowest level first — its events precede all higher levels').
    bool cascaded = false;
    for (int level = 1; level < kWheelLevels; level++) {
      const int cl = static_cast<int>(
          (static_cast<std::uint64_t>(now_) >> (kSlotBits * level)) & (kSlots - 1));
      const std::uint64_t ml = occupied_[level] & ~((2ull << cl) - 1);
      if (ml == 0) {
        continue;
      }
      const int s = __builtin_ctzll(ml);
      const std::uint64_t span = (1ull << (kSlotBits * (level + 1))) - 1;
      const TimeNs window_start = static_cast<TimeNs>(
          (static_cast<std::uint64_t>(now_) & ~span) |
          (static_cast<std::uint64_t>(s) << (kSlotBits * level)));
      if (window_start > limit || (over != nullptr && window_start > over->when)) {
        break;  // everything in the wheel starts past the cap
      }
      now_ = window_start;
      Cascade(level, s);
      cascaded = true;
      break;
    }
    if (cascaded) {
      continue;
    }

    // The wheel has nothing due before the cap; the overflow heap decides.
    // Jumping now_ to the overflow deadline is safe: every occupied wheel
    // window starts after it, so no cascade is skipped.
    if (over != nullptr && over->when <= limit) {
      HeapPopTop();
      over->level = kUnlinked;
      now_ = over->when;
      return over;
    }
    return nullptr;
  }
}

void Simulation::FireNode(EventNode* n) {
  executed_++;
  pending_--;
  n->in_flight = true;
  if (n->period > 0) {
    // Periodic fast path: re-arm the same node before running the callback,
    // with a fresh sequence number so same-time ordering matches what a
    // re-schedule at the top of the callback would produce.
    n->when += n->period;
    n->seq = next_seq_++;
    pending_++;
    InsertPending(n);
  } else {
    n->dead = true;  // fired: Cancel() on this id must now return false
  }
  n->fn();  // may schedule/cancel anything, including this very node
  n->in_flight = false;
  if (n->dead && n->level != kOverflow) {
    Free(n);  // heap-resident corpses are reclaimed at the top instead
  }
}

void Simulation::Run() {
  stopped_ = false;
  while (!stopped_) {
    EventNode* n = NextDue(kNoLimit);
    if (n == nullptr) {
      break;
    }
    FireNode(n);
  }
}

void Simulation::RunUntil(TimeNs deadline) {
  stopped_ = false;
  while (!stopped_) {
    EventNode* n = NextDue(deadline);
    if (n == nullptr) {
      break;
    }
    FireNode(n);
  }
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
}

bool Simulation::Step() {
  EventNode* n = NextDue(kNoLimit);
  if (n == nullptr) {
    return false;
  }
  FireNode(n);
  return true;
}

}  // namespace skyloft
