#include "src/simcore/simulation.h"

#include <utility>

#include "src/base/logging.h"

namespace skyloft {

EventId Simulation::ScheduleAt(TimeNs at, Callback fn) {
  SKYLOFT_CHECK(at >= now_) << "cannot schedule in the past: " << at << " < " << now_;
  const EventId id = next_id_++;
  heap_.push(Event{at, id, std::move(fn)});
  return id;
}

bool Simulation::Cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_id_) {
    return false;
  }
  // Lazy deletion: remember the id, skip it when popped.
  return cancelled_.insert(id).second;
}

bool Simulation::PopNext(Event* out) {
  while (!heap_.empty()) {
    // priority_queue::top() is const; we move out via const_cast, which is
    // safe because we pop immediately.
    Event& top = const_cast<Event&>(heap_.top());
    Event ev{top.when, top.id, std::move(top.fn)};
    heap_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    *out = std::move(ev);
    return true;
  }
  return false;
}

void Simulation::Run() {
  stopped_ = false;
  Event ev;
  while (!stopped_ && PopNext(&ev)) {
    now_ = ev.when;
    executed_++;
    ev.fn();
  }
}

void Simulation::RunUntil(TimeNs deadline) {
  stopped_ = false;
  Event ev;
  while (!stopped_) {
    if (heap_.empty()) {
      break;
    }
    if (heap_.top().when > deadline) {
      break;
    }
    if (!PopNext(&ev)) {
      break;
    }
    if (ev.when > deadline) {
      // Rare: next non-cancelled event is past the deadline; put it back.
      heap_.push(std::move(ev));
      break;
    }
    now_ = ev.when;
    executed_++;
    ev.fn();
  }
  if (!stopped_ && now_ < deadline) {
    now_ = deadline;
  }
}

bool Simulation::Step() {
  Event ev;
  if (!PopNext(&ev)) {
    return false;
  }
  now_ = ev.when;
  executed_++;
  ev.fn();
  return true;
}

}  // namespace skyloft
