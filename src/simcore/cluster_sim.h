// ClusterSim: partitioned parallel discrete-event simulation.
//
// Owns one SimNode shard per simulated node and advances them in lockstep
// under conservative time-window synchronization (a CMB-style null-message-
// free variant): because every cross-node interaction carries at least the
// cluster's *lookahead* latency (the minimum latency over all registered
// NodeLinks), a shard can safely execute the whole window [T, T + lookahead)
// without observing any other shard — nothing sent during the window can
// arrive before it ends. Each epoch therefore is:
//
//   1. every shard runs its window [T, T + lookahead) — in parallel on host
//      threads (static shard->thread assignment),
//   2. barrier,
//   3. the coordinator drains every shard's outbox single-threadedly in
//      (source node id, send order) order, inserting arrivals into the
//      destination wheels, and
//   4. T += lookahead.
//
// Step 3 is what preserves bit-for-bit per-seed determinism at any host
// thread count: shards never touch each other's state during a window, and
// delivery order (which assigns destination sequence numbers, the same-time
// tie-break) is a pure function of the simulation, not of the host
// scheduler. tests/simcore_determinism_test.cpp asserts 1-thread and
// N-thread runs produce identical per-node traces.
//
// Lookahead must be > 0 (a zero-latency link would force shard-lockstep at
// event granularity, i.e. no parallelism and no conservative window); links
// register their latency at construction and ClusterSim rejects zero.
#ifndef SRC_SIMCORE_CLUSTER_SIM_H_
#define SRC_SIMCORE_CLUSTER_SIM_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/base/time.h"
#include "src/simcore/sim_node.h"

namespace skyloft {

class ClusterSim {
 public:
  struct Options {
    // Host threads running shard windows. 1 (the default) runs every shard
    // sequentially on the calling thread — the reference execution that any
    // parallel run must reproduce bit-for-bit. Clamped to [1, num_nodes].
    int num_threads = 1;

    // Conservative window length. 0 derives it from the links: the minimum
    // registered latency (the lookahead), or kDefaultEpochNs for a cluster
    // with no links (fully independent shards). A non-zero override must not
    // exceed the minimum link latency.
    DurationNs epoch_ns = 0;
  };

  static constexpr DurationNs kDefaultEpochNs = Millis(1);

  explicit ClusterSim(int num_nodes) : ClusterSim(num_nodes, Options()) {}
  ClusterSim(int num_nodes, Options options);
  ~ClusterSim();

  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  SimNode* node(int index);

  // Registers a cross-node link's latency (called by net NodeLink). The
  // lookahead is the minimum over all registrations. Rejects zero latency;
  // must happen before the first Run/RunUntil.
  void RegisterLinkLatency(DurationNs latency_ns);

  // Effective conservative window length for the next run.
  DurationNs lookahead() const;

  // Runs epochs until every shard's queue is empty and no cross-shard event
  // is in flight, or a shard calls Stop(). (Like SimNode::Run, a cluster
  // with periodic events never drains — use RunUntil.)
  void Run();

  // Runs epochs until every shard has executed its events with timestamp
  // <= `deadline`; afterwards every node's Now() == deadline (unless the
  // cluster was stopped earlier, in which case shards rest at the barrier
  // where the stop was observed).
  void RunUntil(TimeNs deadline);

  // Requests a stop from outside the simulation (any thread); takes effect
  // at the next epoch barrier. From inside the simulation, call
  // SimNode::Stop() on the shard executing the event instead.
  void Stop() { external_stop_.store(true, std::memory_order_relaxed); }

  // Cluster time floor: every shard has fully executed [0, Now()).
  TimeNs Now() const { return floor_; }

  std::uint64_t TotalEventsExecuted() const;
  std::size_t TotalPendingEvents() const;
  std::uint64_t EpochsRun() const { return epochs_; }

 private:
  void RunLoop(TimeNs deadline, bool bounded);
  // Runs one window on every shard (parallel when the pool is active).
  void RunWindows(TimeNs end, bool inclusive);
  // Barrier-time delivery; returns the earliest delivered arrival time, or
  // kNoDeliveries when every outbox was empty.
  static constexpr TimeNs kNoDeliveries = INT64_MAX;
  TimeNs DeliverOutboxes();
  bool OutboxesEmpty() const;
  bool AnyShardStopped() const;
  void EnsurePool();
  void WorkerMain(int worker_index);

  Options options_;
  std::vector<std::unique_ptr<SimNode>> nodes_;
  DurationNs min_link_latency_ = 0;  // 0: no links registered yet
  TimeNs floor_ = 0;
  std::uint64_t epochs_ = 0;
  bool running_ = false;
  std::atomic<bool> external_stop_{false};

  // Worker pool (spawned lazily on the first parallel run). All shard state
  // handoff between coordinator and workers goes through mu_, so an epoch's
  // writes happen-before the barrier-time delivery and the next epoch.
  int pool_size_ = 1;  // threads actually used, after clamping
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t generation_ = 0;
  int done_ = 0;
  bool shutdown_ = false;
  TimeNs window_end_ = 0;
  bool window_inclusive_ = false;
};

}  // namespace skyloft

#endif  // SRC_SIMCORE_CLUSTER_SIM_H_
