#include "src/simcore/sim_node.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "src/base/logging.h"

namespace skyloft {

namespace {

inline constexpr TimeNs kNoLimit = std::numeric_limits<TimeNs>::max();

}  // namespace

SimNode::EventNode* SimNode::Alloc() {
  if (free_.empty()) {
    auto chunk = std::make_unique<EventNode[]>(kChunkSize);
    const auto base = static_cast<std::uint32_t>(chunks_.size() * kChunkSize);
    for (std::size_t i = kChunkSize; i-- > 0;) {
      chunk[i].self = base + static_cast<std::uint32_t>(i);
      free_.push_back(base + static_cast<std::uint32_t>(i));
    }
    chunks_.push_back(std::move(chunk));
  }
  const std::uint32_t index = free_.back();
  free_.pop_back();
  return &chunks_[index / kChunkSize][index % kChunkSize];
}

void SimNode::Free(EventNode* n) {
  n->fn.Reset();  // release captured resources promptly
  n->gen++;       // invalidate every outstanding id for this slot
  n->level = kUnlinked;
  n->dead = false;
  n->in_flight = false;
  free_.push_back(n->self);
}

SimNode::EventNode* SimNode::NodeFor(EventId id) {
  if (id == kInvalidEventId) {
    return nullptr;
  }
  const std::uint64_t index = (id & 0xffffffffull) - 1;
  if (index >= chunks_.size() * kChunkSize) {
    return nullptr;
  }
  EventNode* n = &chunks_[index / kChunkSize][index % kChunkSize];
  if (n->gen != static_cast<std::uint32_t>(id >> 32)) {
    return nullptr;  // slot was reused: the id refers to a dead event
  }
  return n;
}

EventId SimNode::ScheduleNode(TimeNs at, DurationNs period, Callback fn) {
  SKYLOFT_CHECK(at >= now_) << "cannot schedule in the past: " << at << " < " << now_;
  EventNode* n = Alloc();
  n->when = at;
  n->seq = next_seq_++;
  n->period = period;
  n->fn = std::move(fn);
  pending_++;
  InsertPending(n);
  return IdOf(n);
}

EventId SimNode::ScheduleAt(TimeNs at, Callback fn) {
  return ScheduleNode(at, /*period=*/0, std::move(fn));
}

EventId SimNode::SchedulePeriodic(TimeNs first, DurationNs period, Callback fn) {
  SKYLOFT_CHECK(period > 0) << "periodic event needs a positive period";
  return ScheduleNode(first, period, std::move(fn));
}

void SimNode::InsertPending(EventNode* n) {
  const std::uint64_t x =
      static_cast<std::uint64_t>(n->when) ^ static_cast<std::uint64_t>(now_);
  int level = 0;
  if (x != 0) {
    level = (63 - __builtin_clzll(x)) / kSlotBits;
  }
  if (level >= kWheelLevels) {
    n->level = kOverflow;
    HeapPush(n);
    return;
  }
  const int slot = static_cast<int>(
      (static_cast<std::uint64_t>(n->when) >> (kSlotBits * level)) & (kSlots - 1));
  n->level = static_cast<std::int8_t>(level);
  n->slot = static_cast<std::uint8_t>(slot);
  wheel_[level][slot].PushBack(n);
  occupied_[level] |= 1ull << slot;
}

void SimNode::WheelRemove(EventNode* n) {
  auto& list = wheel_[n->level][n->slot];
  list.Remove(n);
  if (list.Empty()) {
    occupied_[n->level] &= ~(1ull << n->slot);
  }
  n->level = kUnlinked;
}

void SimNode::Cascade(int level, int slot) {
  auto& list = wheel_[level][slot];
  occupied_[level] &= ~(1ull << slot);
  // Pop front-to-back and reinsert: each node lands at a strictly lower
  // level (its upper bit-groups now match the clock), preserving sequence
  // order within every destination slot.
  while (EventNode* n = list.PopFront()) {
    InsertPending(n);
  }
}

void SimNode::HeapPush(EventNode* n) {
  auto after = [](const EventNode* a, const EventNode* b) {
    if (a->when != b->when) {
      return a->when > b->when;
    }
    return a->seq > b->seq;
  };
  overflow_.push_back(n);
  std::push_heap(overflow_.begin(), overflow_.end(), after);
}

void SimNode::HeapPopTop() {
  auto after = [](const EventNode* a, const EventNode* b) {
    if (a->when != b->when) {
      return a->when > b->when;
    }
    return a->seq > b->seq;
  };
  std::pop_heap(overflow_.begin(), overflow_.end(), after);
  overflow_.pop_back();
}

bool SimNode::Cancel(EventId id) {
  EventNode* n = NodeFor(id);
  if (n == nullptr || n->dead) {
    return false;
  }
  if (n->level == kUnlinked) {
    // A one-shot that is executing right now: it already fired.
    return false;
  }
  pending_--;
  if (n->level == kOverflow) {
    // Heap-resident: mark dead and reclaim lazily when it surfaces at the
    // top, keeping Cancel O(1).
    n->dead = true;
    return true;
  }
  WheelRemove(n);
  if (n->in_flight) {
    n->dead = true;  // periodic cancelled from inside its own callback
  } else {
    Free(n);
  }
  return true;
}

RemoteEventId SimNode::SendRemote(int dst_node, DurationNs latency_ns, Callback fn) {
  SKYLOFT_CHECK(cluster_ != nullptr) << "cross-node send from a standalone node";
  SKYLOFT_CHECK(dst_node != node_id_) << "cross-node send to self";
  SKYLOFT_CHECK(latency_ns > 0) << "zero-latency link: lookahead must be > 0";
  OutboxEntry entry;
  entry.dst = dst_node;
  entry.when = now_ + latency_ns;
  entry.id = next_remote_id_++;
  entry.fn = std::move(fn);
  outbox_.push_back(std::move(entry));
  return outbox_.back().id;
}

bool SimNode::CancelRemote(RemoteEventId id) {
  if (id == kInvalidRemoteEventId) {
    return false;
  }
  for (OutboxEntry& e : outbox_) {
    if (e.id == id && !e.cancelled) {
      e.cancelled = true;
      e.fn.Reset();
      return true;
    }
  }
  return false;  // already delivered (or cancelled): the destination owns it
}

void SimNode::DeliverRemote(TimeNs when, Callback fn) {
  ScheduleNode(when, /*period=*/0, std::move(fn));
}

SimNode::EventNode* SimNode::NextDue(TimeNs limit) {
  for (;;) {
    // Reclaim cancelled events that have drifted to the overflow top.
    while (!overflow_.empty() && overflow_.front()->dead) {
      EventNode* dead = overflow_.front();
      HeapPopTop();
      Free(dead);
    }
    EventNode* over = overflow_.empty() ? nullptr : overflow_.front();

    // Level 0: slots at or ahead of the cursor within the current 64-ns
    // window hold events due at exactly window_base + slot.
    const int c0 = static_cast<int>(static_cast<std::uint64_t>(now_) & (kSlots - 1));
    const std::uint64_t m0 = occupied_[0] & (~0ull << c0);
    if (m0 != 0) {
      const int s = __builtin_ctzll(m0);
      const TimeNs t = (now_ - c0) + s;
      if (t <= limit) {
        EventNode* head = wheel_[0][s].Front();
        if (over == nullptr || over->when > t ||
            (over->when == t && over->seq > head->seq)) {
          WheelRemove(head);
          now_ = t;
          return head;
        }
      }
      // The wheel's earliest event loses to the overflow top or the limit.
      if (over != nullptr && over->when <= limit && over->when <= t) {
        HeapPopTop();
        over->level = kUnlinked;
        now_ = over->when;
        return over;
      }
      return nullptr;  // nothing due at or before `limit`
    }

    // No level-0 events in the current window: enter the next occupied
    // window (lowest level first — its events precede all higher levels').
    // Slots at or below the cursor are excluded: JumpTo keeps the invariant
    // that every occupied slot lies strictly ahead of the cursor, so the
    // cursor's own window was already cascaded when the clock entered it.
    bool cascaded = false;
    for (int level = 1; level < kWheelLevels; level++) {
      const int cl = static_cast<int>(
          (static_cast<std::uint64_t>(now_) >> (kSlotBits * level)) & (kSlots - 1));
      const std::uint64_t ml = occupied_[level] & ~((2ull << cl) - 1);
      if (ml == 0) {
        continue;
      }
      const int s = __builtin_ctzll(ml);
      const std::uint64_t span = (1ull << (kSlotBits * (level + 1))) - 1;
      const TimeNs window_start = static_cast<TimeNs>(
          (static_cast<std::uint64_t>(now_) & ~span) |
          (static_cast<std::uint64_t>(s) << (kSlotBits * level)));
      if (window_start > limit || (over != nullptr && window_start > over->when)) {
        break;  // everything in the wheel starts past the cap
      }
      now_ = window_start;
      Cascade(level, s);
      cascaded = true;
      break;
    }
    if (cascaded) {
      continue;
    }

    // The wheel has nothing due before the cap; the overflow heap decides.
    // Jumping now_ to the overflow deadline is safe: every occupied wheel
    // window starts after it, so no cascade is skipped.
    if (over != nullptr && over->when <= limit) {
      HeapPopTop();
      over->level = kUnlinked;
      now_ = over->when;
      return over;
    }
    return nullptr;
  }
}

void SimNode::JumpTo(TimeNs t) {
  // `t` may land mid-window at any wheel level (NextDue only proved nothing
  // fires *before* it). Events later in the same window would then sit in
  // the cursor's own slot, which the NextDue scans never look at — they rely
  // on every occupied slot being strictly ahead of the cursor. Re-establish
  // that invariant by cascading the landing window at every level, top-down
  // (a level-3 cascade may populate the level-2 cursor slot, and so on);
  // everything re-inserts at or ahead of the new cursor because no pending
  // event precedes `t`.
  now_ = t;
  for (int level = kWheelLevels - 1; level >= 1; level--) {
    const int cl = static_cast<int>(
        (static_cast<std::uint64_t>(now_) >> (kSlotBits * level)) & (kSlots - 1));
    if ((occupied_[level] >> cl) & 1u) {
      Cascade(level, cl);
    }
  }
}

void SimNode::FireNode(EventNode* n) {
  executed_++;
  pending_--;
  n->in_flight = true;
  if (n->period > 0) {
    // Periodic fast path: re-arm the same node before running the callback,
    // with a fresh sequence number so same-time ordering matches what a
    // re-schedule at the top of the callback would produce.
    n->when += n->period;
    n->seq = next_seq_++;
    pending_++;
    InsertPending(n);
  } else {
    n->dead = true;  // fired: Cancel() on this id must now return false
  }
  n->fn();  // may schedule/cancel anything, including this very node
  n->in_flight = false;
  if (n->dead && n->level != kOverflow) {
    Free(n);  // heap-resident corpses are reclaimed at the top instead
  }
}

void SimNode::Run() {
  SKYLOFT_CHECK(cluster_ == nullptr) << "cluster members are driven by ClusterSim::Run";
  stopped_ = false;
  while (!stopped_) {
    EventNode* n = NextDue(kNoLimit);
    if (n == nullptr) {
      break;
    }
    FireNode(n);
  }
}

void SimNode::RunUntil(TimeNs deadline) {
  SKYLOFT_CHECK(cluster_ == nullptr) << "cluster members are driven by ClusterSim::RunUntil";
  stopped_ = false;
  while (!stopped_) {
    EventNode* n = NextDue(deadline);
    if (n == nullptr) {
      break;
    }
    FireNode(n);
  }
  if (!stopped_ && now_ < deadline) {
    JumpTo(deadline);
  }
}

bool SimNode::Step() {
  SKYLOFT_CHECK(cluster_ == nullptr) << "cluster members are driven by ClusterSim";
  EventNode* n = NextDue(kNoLimit);
  if (n == nullptr) {
    return false;
  }
  FireNode(n);
  return true;
}

TimeNs SimNode::EarliestPendingBound() const {
  TimeNs best = std::numeric_limits<TimeNs>::max();
  if (!overflow_.empty()) {
    best = overflow_.front()->when;
  }
  for (int level = 0; level < kWheelLevels; level++) {
    if (occupied_[level] == 0) {
      continue;
    }
    // Every occupied slot is ahead of the cursor and shares now_'s bits above
    // this level's group, so the earliest occupied slot's bucket start is a
    // valid lower bound for the whole level (exact at level 0).
    const int slot = __builtin_ctzll(occupied_[level]);
    const int shift = kSlotBits * level;
    const std::uint64_t above = ~((std::uint64_t{1} << (shift + kSlotBits)) - 1);
    const std::uint64_t bound = (static_cast<std::uint64_t>(now_) & above) |
                                (static_cast<std::uint64_t>(slot) << shift);
    best = std::min(best, static_cast<TimeNs>(bound));
  }
  return best;
}

void SimNode::RunWindow(TimeNs end, bool inclusive) {
  SKYLOFT_DCHECK(end >= now_);
  const TimeNs limit = inclusive ? end : end - 1;
  while (!stopped_) {
    EventNode* n = NextDue(limit);
    if (n == nullptr) {
      break;
    }
    FireNode(n);
  }
  if (!stopped_ && now_ < end) {
    JumpTo(end);  // safe: NextDue proved nothing is pending before `end`
  }
}

}  // namespace skyloft
