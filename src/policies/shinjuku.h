// Shinjuku policy (paper §5.2, Table 4: "Skyloft Shinjuku", 192 LOC in the
// original vs 3,900 for the real Shinjuku system).
//
// A single global FIFO queue behind a centralized dispatcher. Preemption is
// driven by the engine's quantum timer: a preempted request returns to the
// *tail* of the global queue, approximating processor sharing for
// heavy-tailed workloads. The policy itself is trivial — which is exactly
// the paper's point about the generality of the Table 2 operations.
#ifndef SRC_POLICIES_SHINJUKU_H_
#define SRC_POLICIES_SHINJUKU_H_

#include "src/base/intrusive_list.h"
#include "src/sched/policy.h"

namespace skyloft {

class ShinjukuPolicy : public SchedPolicy {
 public:
  ShinjukuPolicy() = default;

  SKYLOFT_NO_SWITCH void TaskEnqueue(SchedItem* task, unsigned flags, int worker_hint) override {
    queue_.PushBack(task);
  }

  SKYLOFT_NO_SWITCH SchedItem* TaskDequeue(int worker) override { return queue_.PopFront(); }

  SKYLOFT_NO_SWITCH bool SchedTimerTick(int worker, SchedItem* current,
                                        DurationNs ran_ns) override {
    // Quantum enforcement lives in the centralized engine's dispatcher.
    return false;
  }

  SKYLOFT_NO_SWITCH bool IsCentralized() const override { return true; }
  SKYLOFT_NO_SWITCH std::size_t QueuedTasks() const override { return queue_.Size(); }
  const char* Name() const override { return "skyloft-shinjuku"; }

 private:
  IntrusiveList<SchedItem> queue_;
};

}  // namespace skyloft

#endif  // SRC_POLICIES_SHINJUKU_H_
