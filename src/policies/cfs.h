// Completely Fair Scheduler policy (paper §5.1, Table 4: "Skyloft CFS",
// 430 LOC in the original; kernel/sched/fair.c is 6592).
//
// Faithful to the CFS mechanisms that matter at schbench timescales:
//   - per-worker runqueues ordered by vruntime
//   - monotonic per-queue min_vruntime
//   - dynamic time slice: sched_latency / nr_runnable, floored at
//     min_granularity
//   - sleeper compensation: a waking task's vruntime is placed at
//     min_vruntime - sched_latency/2 (clamped), which is why CFS beats RR on
//     wakeup latency in Fig. 5
#ifndef SRC_POLICIES_CFS_H_
#define SRC_POLICIES_CFS_H_

#include <set>
#include <vector>

#include "src/sched/policy.h"

namespace skyloft {

struct CfsParams {
  DurationNs min_granularity = Micros(12) + 500;  // 12.5 us (Table 5, tuned)
  DurationNs sched_latency = Micros(50);          // 50 us (Table 5, tuned)
};

class CfsPolicy : public SchedPolicy {
 public:
  explicit CfsPolicy(CfsParams params)
      : params_(params), quantum_(params.min_granularity, INT64_MAX) {}

  SKYLOFT_NO_SWITCH void SchedInit(EngineView* view) override;
  SKYLOFT_NO_SWITCH void TaskInit(SchedItem* task) override;
  SKYLOFT_NO_SWITCH void TaskEnqueue(SchedItem* task, unsigned flags, int worker_hint) override;
  SKYLOFT_NO_SWITCH SchedItem* TaskDequeue(int worker) override;
  SKYLOFT_NO_SWITCH bool SchedTimerTick(int worker, SchedItem* current, DurationNs ran_ns) override;
  SKYLOFT_NO_SWITCH void SchedBalance(int worker) override;
  SKYLOFT_NO_SWITCH std::size_t QueuedTasks() const override { return queued_; }
  const char* Name() const override { return "skyloft-cfs"; }

  // An explicit SetQuantum pins the slice for that worker, bypassing the
  // sched_latency / nr_runnable formula (the controller wants a direct knob,
  // not one diluted by queue depth); before any SetQuantum the quantum
  // reported is the min_granularity floor and the formula governs.
  SKYLOFT_NO_SWITCH void SetQuantum(DurationNs quantum_ns, int worker) override {
    quantum_.Set(quantum_ns, worker);
  }
  SKYLOFT_NO_SWITCH DurationNs QuantumFor(int worker) const override {
    return quantum_.For(worker);
  }

 private:
  struct CfsData {
    DurationNs vruntime = 0;
    DurationNs slice_used = 0;
  };

  struct VruntimeLess {
    bool operator()(const SchedItem* a, const SchedItem* b) const;
  };

  struct Runqueue {
    std::multiset<SchedItem*, VruntimeLess> tree;
    DurationNs min_vruntime = 0;
  };

  Runqueue& rq(int worker) { return queues_[static_cast<std::size_t>(worker)]; }
  DurationNs SliceFor(int worker, const Runqueue& queue) const;

  CfsParams params_;
  QuantumTable quantum_;
  std::vector<Runqueue> queues_;
  std::size_t queued_ = 0;
  int next_queue_ = 0;
};

}  // namespace skyloft

#endif  // SRC_POLICIES_CFS_H_
