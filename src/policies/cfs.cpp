#include "src/policies/cfs.h"

#include <algorithm>

#include "src/base/logging.h"

namespace skyloft {

bool CfsPolicy::VruntimeLess::operator()(const SchedItem* a, const SchedItem* b) const {
  const auto* da = const_cast<SchedItem*>(a)->PolicyData<CfsData>();
  const auto* db = const_cast<SchedItem*>(b)->PolicyData<CfsData>();
  if (da->vruntime != db->vruntime) {
    return da->vruntime < db->vruntime;
  }
  return a->id < b->id;
}

void CfsPolicy::SchedInit(EngineView* view) {
  SchedPolicy::SchedInit(view);
  queues_ = std::vector<Runqueue>(static_cast<std::size_t>(view->NumWorkers()));
}

void CfsPolicy::TaskInit(SchedItem* task) { *task->PolicyData<CfsData>() = CfsData{}; }

DurationNs CfsPolicy::SliceFor(int worker, const Runqueue& queue) const {
  if (quantum_.IsExplicit(worker)) {
    return quantum_.For(worker);
  }
  const auto nr = static_cast<DurationNs>(queue.tree.size()) + 1;  // + current
  return std::max(params_.min_granularity, params_.sched_latency / nr);
}

void CfsPolicy::TaskEnqueue(SchedItem* task, unsigned flags, int worker_hint) {
  int target = worker_hint;
  if (target < 0 || target >= static_cast<int>(queues_.size())) {
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % static_cast<int>(queues_.size());
  }
  Runqueue& queue = rq(target);
  CfsData* data = task->PolicyData<CfsData>();
  if (flags & (kEnqueueNew | kEnqueueWakeup)) {
    // Sleeper compensation: place the task half a latency period before
    // min_vruntime so it runs soon, but never let it roll vruntime backward.
    const DurationNs placed = queue.min_vruntime - params_.sched_latency / 2;
    data->vruntime = std::max(data->vruntime, placed);
  }
  queue.tree.insert(task);
  queued_++;
}

SchedItem* CfsPolicy::TaskDequeue(int worker) {
  if (worker < 0 || worker >= static_cast<int>(queues_.size())) {
    return nullptr;
  }
  Runqueue& queue = rq(worker);
  if (queue.tree.empty()) {
    return nullptr;
  }
  SchedItem* task = *queue.tree.begin();
  queue.tree.erase(queue.tree.begin());
  queued_--;
  CfsData* data = task->PolicyData<CfsData>();
  queue.min_vruntime = std::max(queue.min_vruntime, data->vruntime);
  data->slice_used = 0;
  return task;
}

bool CfsPolicy::SchedTimerTick(int worker, SchedItem* current, DurationNs ran_ns) {
  if (current == nullptr) {
    return false;
  }
  Runqueue& queue = rq(worker);
  CfsData* data = current->PolicyData<CfsData>();
  data->vruntime += ran_ns;
  data->slice_used += ran_ns;
  // Advance min_vruntime with the running task (Linux update_min_vruntime):
  // it is the smaller of the current task's vruntime and the leftmost
  // waiter's, and never goes backward.
  DurationNs floor = data->vruntime;
  if (!queue.tree.empty()) {
    floor = std::min(floor, (*queue.tree.begin())->PolicyData<CfsData>()->vruntime);
  }
  queue.min_vruntime = std::max(queue.min_vruntime, floor);
  if (queue.tree.empty()) {
    return false;
  }
  if (data->slice_used < SliceFor(worker, queue)) {
    return false;
  }
  // Preempt only if someone has a smaller vruntime (fairness deficit).
  const auto* leftmost = (*queue.tree.begin())->PolicyData<CfsData>();
  return leftmost->vruntime < data->vruntime;
}

void CfsPolicy::SchedBalance(int worker) {
  int victim = -1;
  std::size_t best = 0;
  for (int q = 0; q < static_cast<int>(queues_.size()); q++) {
    if (q == worker) {
      continue;
    }
    const std::size_t size = queues_[static_cast<std::size_t>(q)].tree.size();
    if (size > best) {
      best = size;
      victim = q;
    }
  }
  if (victim < 0) {
    return;
  }
  Runqueue& from = rq(victim);
  Runqueue& to = rq(worker);
  SchedItem* task = *from.tree.begin();
  from.tree.erase(from.tree.begin());
  // Migrating between queues renormalizes vruntime to the new queue's base,
  // as Linux does with min_vruntime deltas.
  CfsData* data = task->PolicyData<CfsData>();
  data->vruntime = data->vruntime - from.min_vruntime + to.min_vruntime;
  to.tree.insert(task);
}

}  // namespace skyloft
