// ShinjukuPolicy is header-only; this translation unit exists so the policy
// participates in the library target (and its LoC is counted by the Table 4
// benchmark alongside the header).
#include "src/policies/shinjuku.h"
