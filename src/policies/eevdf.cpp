#include "src/policies/eevdf.h"

#include <algorithm>

#include "src/base/logging.h"

namespace skyloft {

void EevdfPolicy::SchedInit(EngineView* view) {
  SchedPolicy::SchedInit(view);
  queues_ = std::vector<Runqueue>(static_cast<std::size_t>(view->NumWorkers()));
}

void EevdfPolicy::TaskInit(SchedItem* task) { *task->PolicyData<EevdfData>() = EevdfData{}; }

void EevdfPolicy::TaskEnqueue(SchedItem* task, unsigned flags, int worker_hint) {
  int target = worker_hint;
  if (target < 0 || target >= static_cast<int>(queues_.size())) {
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % static_cast<int>(queues_.size());
  }
  Runqueue& queue = rq(target);
  EevdfData* data = task->PolicyData<EevdfData>();
  if (flags & (kEnqueueNew | kEnqueueWakeup)) {
    // Join with zero lag: vruntime = V, deadline one base_slice out.
    data->vruntime = queue.vtime;
    data->deadline = data->vruntime + slice_.For(target);
  }
  // Preempted tasks keep their vruntime/deadline (lag is preserved).
  queue.tasks.push_back(task);
  queued_++;
}

SchedItem* EevdfPolicy::TaskDequeue(int worker) {
  if (worker < 0 || worker >= static_cast<int>(queues_.size())) {
    return nullptr;
  }
  Runqueue& queue = rq(worker);
  if (queue.tasks.empty()) {
    return nullptr;
  }
  // Earliest deadline among eligible tasks; if nothing is eligible (V lags
  // after idling), fall back to the smallest vruntime.
  std::size_t pick = queue.tasks.size();
  DurationNs best_deadline = INT64_MAX;
  for (std::size_t i = 0; i < queue.tasks.size(); i++) {
    const auto* data = queue.tasks[i]->PolicyData<EevdfData>();
    if (data->vruntime <= queue.vtime && data->deadline < best_deadline) {
      best_deadline = data->deadline;
      pick = i;
    }
  }
  if (pick == queue.tasks.size()) {
    DurationNs best_v = INT64_MAX;
    for (std::size_t i = 0; i < queue.tasks.size(); i++) {
      const auto* data = queue.tasks[i]->PolicyData<EevdfData>();
      if (data->vruntime < best_v) {
        best_v = data->vruntime;
        pick = i;
      }
    }
    // Nobody is eligible: advance V to the earliest vruntime so the pick is.
    queue.vtime = std::max(queue.vtime, best_v);
  }
  SchedItem* task = queue.tasks[pick];
  queue.tasks.erase(queue.tasks.begin() + static_cast<std::ptrdiff_t>(pick));
  queued_--;
  return task;
}

bool EevdfPolicy::SchedTimerTick(int worker, SchedItem* current, DurationNs ran_ns) {
  if (current == nullptr) {
    return false;
  }
  Runqueue& queue = rq(worker);
  EevdfData* data = current->PolicyData<EevdfData>();
  data->vruntime += ran_ns;
  // V advances at 1/nr_runnable of wall time (unit weights).
  const auto nr = static_cast<DurationNs>(queue.tasks.size()) + 1;
  queue.vtime += ran_ns / nr;
  if (queue.tasks.empty()) {
    return false;
  }
  if (data->vruntime < data->deadline) {
    return false;
  }
  // Slice exhausted: push the deadline and preempt if a waiting task has an
  // earlier deadline and is eligible.
  data->deadline = data->vruntime + slice_.For(worker);
  for (SchedItem* waiting : queue.tasks) {
    const auto* wd = waiting->PolicyData<EevdfData>();
    if (wd->vruntime <= queue.vtime && wd->deadline < data->deadline) {
      return true;
    }
  }
  return false;
}

void EevdfPolicy::SchedBalance(int worker) {
  int victim = -1;
  std::size_t best = 0;
  for (int q = 0; q < static_cast<int>(queues_.size()); q++) {
    if (q == worker) {
      continue;
    }
    const std::size_t size = queues_[static_cast<std::size_t>(q)].tasks.size();
    if (size > best) {
      best = size;
      victim = q;
    }
  }
  if (victim < 0) {
    return;
  }
  Runqueue& from = rq(victim);
  Runqueue& to = rq(worker);
  SchedItem* task = from.tasks.front();
  from.tasks.erase(from.tasks.begin());
  // Renormalize to the destination queue's virtual time, preserving lag.
  EevdfData* data = task->PolicyData<EevdfData>();
  const DurationNs lag = from.vtime - data->vruntime;
  data->vruntime = to.vtime - lag;
  data->deadline = data->vruntime + slice_.For(worker);
  to.tasks.push_back(task);
}

DurationNs EevdfPolicy::LagOf(SchedItem* task, int worker) const {
  const auto& queue = queues_[static_cast<std::size_t>(worker)];
  return queue.vtime - const_cast<SchedItem*>(task)->PolicyData<EevdfData>()->vruntime;
}

}  // namespace skyloft
