// Registration of the repo's standard Table 4 policies with the
// src/sched registry. Idempotent; call from any substrate before using
// RegisteredPolicies()/MakePolicy().
#ifndef SRC_POLICIES_STANDARD_H_
#define SRC_POLICIES_STANDARD_H_

namespace skyloft {

void RegisterStandardPolicies();

}  // namespace skyloft

#endif  // SRC_POLICIES_STANDARD_H_
