#include "src/policies/standard.h"

#include <memory>

#include "src/policies/cfs.h"
#include "src/policies/eevdf.h"
#include "src/policies/round_robin.h"
#include "src/policies/shinjuku.h"
#include "src/policies/work_stealing.h"
#include "src/sched/registry.h"

namespace skyloft {

namespace {

std::unique_ptr<SchedPolicy> MakeFifo() {
  return std::make_unique<RoundRobinPolicy>(kInfiniteSlice);
}

std::unique_ptr<SchedPolicy> MakeRr() {
  // 12.5 us default slice, matching the Table 5 tuning used elsewhere.
  return std::make_unique<RoundRobinPolicy>(Micros(12) + 500);
}

std::unique_ptr<SchedPolicy> MakeCfs() { return std::make_unique<CfsPolicy>(CfsParams{}); }

std::unique_ptr<SchedPolicy> MakeEevdf() { return std::make_unique<EevdfPolicy>(EevdfParams{}); }

std::unique_ptr<SchedPolicy> MakeWs() {
  return std::make_unique<WorkStealingPolicy>(WorkStealingParams{});
}

std::unique_ptr<SchedPolicy> MakeShinjuku() { return std::make_unique<ShinjukuPolicy>(); }

}  // namespace

void RegisterStandardPolicies() {
  RegisterPolicy({"fifo", /*centralized=*/false, MakeFifo});
  RegisterPolicy({"rr", /*centralized=*/false, MakeRr});
  RegisterPolicy({"cfs", /*centralized=*/false, MakeCfs});
  RegisterPolicy({"eevdf", /*centralized=*/false, MakeEevdf});
  RegisterPolicy({"ws", /*centralized=*/false, MakeWs});
  RegisterPolicy({"shinjuku", /*centralized=*/true, MakeShinjuku});
}

}  // namespace skyloft
