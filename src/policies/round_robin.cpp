#include "src/policies/round_robin.h"

#include "src/base/logging.h"

namespace skyloft {

void RoundRobinPolicy::SchedInit(EngineView* view) {
  SchedPolicy::SchedInit(view);
  queues_ = std::vector<IntrusiveList<SchedItem>>(static_cast<std::size_t>(view->NumWorkers()));
}

void RoundRobinPolicy::TaskInit(SchedItem* task) { *task->PolicyData<RrData>() = RrData{}; }

void RoundRobinPolicy::TaskEnqueue(SchedItem* task, unsigned flags, int worker_hint) {
  int target = worker_hint;
  if (target < 0 || target >= static_cast<int>(queues_.size())) {
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % static_cast<int>(queues_.size());
  }
  queues_[static_cast<std::size_t>(target)].PushBack(task);
  queued_++;
}

SchedItem* RoundRobinPolicy::TaskDequeue(int worker) {
  if (worker < 0 || worker >= static_cast<int>(queues_.size())) {
    return nullptr;
  }
  SchedItem* task = queues_[static_cast<std::size_t>(worker)].PopFront();
  if (task != nullptr) {
    queued_--;
    task->PolicyData<RrData>()->slice_used = 0;
  }
  return task;
}

bool RoundRobinPolicy::SchedTimerTick(int worker, SchedItem* current, DurationNs ran_ns) {
  const DurationNs slice = time_slice_.For(worker);
  if (current == nullptr || slice == kInfiniteSlice) {
    return false;
  }
  RrData* data = current->PolicyData<RrData>();
  data->slice_used += ran_ns;
  if (data->slice_used < slice) {
    return false;
  }
  // Only round-robin when someone is actually waiting on this queue.
  return !queues_[static_cast<std::size_t>(worker)].Empty();
}

void RoundRobinPolicy::SchedBalance(int worker) {
  // Pull one task from the most loaded sibling queue; any waiting task on
  // another queue is runnable work for an idle core.
  int victim = -1;
  std::size_t best = 0;
  for (int q = 0; q < static_cast<int>(queues_.size()); q++) {
    if (q == worker) {
      continue;
    }
    const std::size_t size = queues_[static_cast<std::size_t>(q)].Size();
    if (size > best) {
      best = size;
      victim = q;
    }
  }
  if (victim < 0) {
    return;
  }
  SchedItem* task = queues_[static_cast<std::size_t>(victim)].PopFront();
  if (task != nullptr) {
    queues_[static_cast<std::size_t>(worker)].PushBack(task);
  }
}

}  // namespace skyloft
