#include "src/policies/work_stealing.h"

#include "src/base/logging.h"

namespace skyloft {

void WorkStealingPolicy::SchedInit(EngineView* view) {
  SchedPolicy::SchedInit(view);
  queues_ = std::vector<IntrusiveList<SchedItem>>(static_cast<std::size_t>(view->NumWorkers()));
}

void WorkStealingPolicy::TaskInit(SchedItem* task) { *task->PolicyData<WsData>() = WsData{}; }

void WorkStealingPolicy::TaskEnqueue(SchedItem* task, unsigned flags, int worker_hint) {
  int target = worker_hint;
  if (target < 0 || target >= static_cast<int>(queues_.size())) {
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % static_cast<int>(queues_.size());
  }
  queues_[static_cast<std::size_t>(target)].PushBack(task);
  queued_++;
}

SchedItem* WorkStealingPolicy::TaskDequeue(int worker) {
  if (worker < 0 || worker >= static_cast<int>(queues_.size())) {
    return nullptr;
  }
  SchedItem* task = queues_[static_cast<std::size_t>(worker)].PopFront();
  if (task != nullptr) {
    queued_--;
    task->PolicyData<WsData>()->ran = 0;
  }
  return task;
}

bool WorkStealingPolicy::SchedTimerTick(int worker, SchedItem* current, DurationNs ran_ns) {
  const DurationNs quantum = quantum_.For(worker);
  if (current == nullptr || quantum == kInfiniteSliceWs) {
    return false;
  }
  WsData* data = current->PolicyData<WsData>();
  data->ran += ran_ns;
  if (data->ran < quantum) {
    return false;
  }
  // Preempt only when runnable work is waiting somewhere: preempting onto an
  // empty system would only add switch overhead.
  return queued_ > 0;
}

void WorkStealingPolicy::SchedBalance(int worker) {
  // Steal half of a random victim's queue (Shenango §4.2 / Blumofe-Leiserson).
  const int n = static_cast<int>(queues_.size());
  if (n <= 1) {
    return;
  }
  // Probe victims starting from a random index so contention spreads.
  const int start = static_cast<int>(rng_.NextBelow(static_cast<std::uint64_t>(n)));
  for (int probe = 0; probe < n; probe++) {
    const int victim = (start + probe) % n;
    if (victim == worker) {
      continue;
    }
    auto& from = queues_[static_cast<std::size_t>(victim)];
    const std::size_t take = (from.Size() + 1) / 2;
    if (take == 0) {
      continue;
    }
    auto& to = queues_[static_cast<std::size_t>(worker)];
    for (std::size_t i = 0; i < take; i++) {
      SchedItem* task = from.PopFront();
      if (task == nullptr) {
        break;
      }
      to.PushBack(task);
      steals_++;
    }
    return;
  }
}

}  // namespace skyloft
