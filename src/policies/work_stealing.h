// Work-stealing policy (paper §5.3, Table 4: "Skyloft Work-Stealing
// (Preemptive)", 150 LOC in the original).
//
// Shenango-style: per-worker FIFO deques; an idle worker steals half of a
// random victim's queue. The same policy runs in two modes:
//   - non-preemptive (Shenango-equivalent): tasks run to completion, which
//     suffers head-of-line blocking on heavy-tailed workloads (Fig. 8b)
//   - preemptive: the engine's user-space timer ticks call SchedTimerTick,
//     and any task that has run a full quantum while work is waiting gets
//     preempted — the paper's 5 us quantum gives 1.9x Shenango's load at the
//     same slowdown SLO
#ifndef SRC_POLICIES_WORK_STEALING_H_
#define SRC_POLICIES_WORK_STEALING_H_

#include <vector>

#include "src/base/intrusive_list.h"
#include "src/base/random.h"
#include "src/sched/policy.h"

namespace skyloft {

struct WorkStealingParams {
  // Preemption quantum consulted on timer ticks; kInfiniteSliceWs disables.
  DurationNs quantum = Micros(5);
  std::uint64_t steal_seed = 1;
};

inline constexpr DurationNs kInfiniteSliceWs = INT64_MAX;

class WorkStealingPolicy : public SchedPolicy {
 public:
  explicit WorkStealingPolicy(WorkStealingParams params)
      : params_(params),
        rng_(params.steal_seed),
        quantum_(params.quantum, kInfiniteSliceWs) {}

  SKYLOFT_NO_SWITCH void SchedInit(EngineView* view) override;
  SKYLOFT_NO_SWITCH void TaskInit(SchedItem* task) override;
  SKYLOFT_NO_SWITCH void TaskEnqueue(SchedItem* task, unsigned flags, int worker_hint) override;
  SKYLOFT_NO_SWITCH SchedItem* TaskDequeue(int worker) override;
  SKYLOFT_NO_SWITCH bool SchedTimerTick(int worker, SchedItem* current, DurationNs ran_ns) override;
  SKYLOFT_NO_SWITCH void SchedBalance(int worker) override;
  SKYLOFT_NO_SWITCH std::size_t QueuedTasks() const override { return queued_; }
  const char* Name() const override { return "skyloft-ws"; }

  // FIFO + steal-half is exactly what the host's lock-free driver implements,
  // so the host runtime runs this policy without ever entering the methods
  // above (the sim engines still drive them).
  SKYLOFT_NO_SWITCH bool SupportsLockFree() const override { return true; }
  SKYLOFT_NO_SWITCH DurationNs LockFreeQuantumNs() const override {
    const DurationNs q = quantum_.For(kAllWorkers);
    return q == kInfiniteSliceWs ? 0 : q;
  }

  // Live quantum control (sim engines and the shard-mutex host driver; under
  // the lock-free driver HostSched holds the authoritative per-worker copy).
  SKYLOFT_NO_SWITCH void SetQuantum(DurationNs quantum_ns, int worker) override {
    quantum_.Set(quantum_ns, worker);
  }
  SKYLOFT_NO_SWITCH DurationNs QuantumFor(int worker) const override {
    return quantum_.For(worker);
  }

  std::uint64_t steals() const { return steals_; }

 private:
  struct WsData {
    DurationNs ran = 0;
  };

  WorkStealingParams params_;
  Rng rng_;
  QuantumTable quantum_;
  std::vector<IntrusiveList<SchedItem>> queues_;
  std::size_t queued_ = 0;
  std::uint64_t steals_ = 0;
  int next_queue_ = 0;
};

}  // namespace skyloft

#endif  // SRC_POLICIES_WORK_STEALING_H_
