// EEVDF policy: Earliest Eligible Virtual Deadline First (paper §5.1,
// Table 4: "Skyloft EEVDF", 579 LOC in the original; merged into Linux 6.6).
//
// Implements the Stoica & Abdel-Wahab mechanism with unit weights:
//   - each queue tracks a virtual time V that advances as tasks consume CPU
//   - a task is *eligible* when its vruntime <= V (non-negative lag)
//   - each task carries a virtual deadline vd = vruntime + base_slice
//   - dispatch picks the eligible task with the earliest deadline
//   - a task whose vruntime reaches its deadline is preempted and gets a new
//     deadline one base_slice later
// Unlike CFS there are no wakeup heuristics: a waking task enters with zero
// lag (vruntime = V), which bounds its wait by one base_slice — the reason
// EEVDF's tail wakeup latency beats CFS in Fig. 5.
#ifndef SRC_POLICIES_EEVDF_H_
#define SRC_POLICIES_EEVDF_H_

#include <vector>

#include "src/sched/policy.h"

namespace skyloft {

struct EevdfParams {
  DurationNs base_slice = Micros(12) + 500;  // 12.5 us (Table 5)
};

class EevdfPolicy : public SchedPolicy {
 public:
  // "Infinite" slice sentinel: huge at scheduling timescales (~13 days) but
  // small enough that vruntime + slice can never overflow a signed 64-bit
  // deadline (vruntime grows with accumulated CPU time).
  static constexpr DurationNs kInfiniteSliceEevdf = DurationNs{1} << 50;

  explicit EevdfPolicy(EevdfParams params)
      : params_(params), slice_(params.base_slice, kInfiniteSliceEevdf) {}

  SKYLOFT_NO_SWITCH void SchedInit(EngineView* view) override;
  SKYLOFT_NO_SWITCH void TaskInit(SchedItem* task) override;
  SKYLOFT_NO_SWITCH void TaskEnqueue(SchedItem* task, unsigned flags, int worker_hint) override;
  SKYLOFT_NO_SWITCH SchedItem* TaskDequeue(int worker) override;
  SKYLOFT_NO_SWITCH bool SchedTimerTick(int worker, SchedItem* current, DurationNs ran_ns) override;
  SKYLOFT_NO_SWITCH void SchedBalance(int worker) override;
  SKYLOFT_NO_SWITCH std::size_t QueuedTasks() const override { return queued_; }
  const char* Name() const override { return "skyloft-eevdf"; }

  // Exposed for invariant tests: the lag of `task` relative to its queue.
  DurationNs LagOf(SchedItem* task, int worker) const;

  // Live base-slice control: affects future deadlines (join, slice refresh,
  // migration); deadlines already granted are honored at their old length.
  SKYLOFT_NO_SWITCH void SetQuantum(DurationNs quantum_ns, int worker) override {
    slice_.Set(quantum_ns, worker);
  }
  SKYLOFT_NO_SWITCH DurationNs QuantumFor(int worker) const override {
    return slice_.For(worker);
  }

 private:
  struct EevdfData {
    DurationNs vruntime = 0;
    DurationNs deadline = 0;
  };

  struct Runqueue {
    std::vector<SchedItem*> tasks;  // scanned linearly; queues are short
    DurationNs vtime = 0;      // V: queue virtual time
  };

  Runqueue& rq(int worker) { return queues_[static_cast<std::size_t>(worker)]; }

  EevdfParams params_;
  QuantumTable slice_;
  std::vector<Runqueue> queues_;
  std::size_t queued_ = 0;
  int next_queue_ = 0;
};

}  // namespace skyloft

#endif  // SRC_POLICIES_EEVDF_H_
