// Round-Robin / FIFO policy (paper §5.1, Table 4: "Skyloft Round-Robin",
// 141 LOC in the original).
//
// Per-worker FIFO queues with time slicing: a task that has run for a full
// time slice is preempted and requeued at the tail. An infinite time slice
// degenerates to FIFO (the "Skyloft-FIFO" series of Fig. 6).
#ifndef SRC_POLICIES_ROUND_ROBIN_H_
#define SRC_POLICIES_ROUND_ROBIN_H_

#include <vector>

#include "src/base/intrusive_list.h"
#include "src/sched/policy.h"

namespace skyloft {

inline constexpr DurationNs kInfiniteSlice = INT64_MAX;

class RoundRobinPolicy : public SchedPolicy {
 public:
  // `time_slice` of kInfiniteSlice disables slice-based preemption (FIFO).
  explicit RoundRobinPolicy(DurationNs time_slice)
      : time_slice_(time_slice, kInfiniteSlice) {}

  SKYLOFT_NO_SWITCH void SchedInit(EngineView* view) override;
  SKYLOFT_NO_SWITCH void TaskInit(SchedItem* task) override;
  SKYLOFT_NO_SWITCH void TaskEnqueue(SchedItem* task, unsigned flags, int worker_hint) override;
  SKYLOFT_NO_SWITCH SchedItem* TaskDequeue(int worker) override;
  SKYLOFT_NO_SWITCH bool SchedTimerTick(int worker, SchedItem* current, DurationNs ran_ns) override;
  SKYLOFT_NO_SWITCH void SchedBalance(int worker) override;
  SKYLOFT_NO_SWITCH std::size_t QueuedTasks() const override { return queued_; }
  const char* Name() const override { return "skyloft-rr"; }

  SKYLOFT_NO_SWITCH void SetQuantum(DurationNs quantum_ns, int worker) override {
    time_slice_.Set(quantum_ns, worker);
  }
  SKYLOFT_NO_SWITCH DurationNs QuantumFor(int worker) const override {
    return time_slice_.For(worker);
  }

 private:
  struct RrData {
    DurationNs slice_used = 0;
  };

  QuantumTable time_slice_;
  std::vector<IntrusiveList<SchedItem>> queues_;
  std::size_t queued_ = 0;
  int next_queue_ = 0;  // round-robin placement for hintless tasks
};

}  // namespace skyloft

#endif  // SRC_POLICIES_ROUND_ROBIN_H_
