// Tests for the §6 "Discussion" features: User-Timer Events (kernel-bypass
// timer reset), peripheral MSI delegation to user space, and blocking-event
// (page fault) handling under the Single Binding Rule.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/simcore/simulation.h"
#include "src/libos/percpu_engine.h"
#include "src/net/nic.h"
#include "src/policies/round_robin.h"
#include "src/policies/work_stealing.h"
#include "src/uintr/msi_device.h"

namespace skyloft {
namespace {

struct Rig {
  explicit Rig(int cores) {
    MachineConfig mcfg;
    mcfg.num_cores = cores;
    machine = std::make_unique<Machine>(&sim, mcfg);
    chip = std::make_unique<UintrChip>(machine.get());
    kernel = std::make_unique<KernelSim>(machine.get(), chip.get());
  }
  Simulation sim;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<UintrChip> chip;
  std::unique_ptr<KernelSim> kernel;
};

// ---- User-Timer Events (chip level) ----

TEST(UserTimerEventsTest, FiresAtProgrammedDeadline) {
  Rig rig(2);
  std::vector<UintrFrame> frames;
  TimeNs fired_at = -1;
  rig.chip->unit(0).SetHandler([&](const UintrFrame& frame) {
    frames.push_back(frame);
    fired_at = rig.sim.Now();
  });
  rig.chip->ProgramUserTimerDeadline(0, Micros(50));
  EXPECT_TRUE(rig.chip->UserTimerArmed(0));
  rig.sim.Run();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(fired_at, Micros(50));
  EXPECT_TRUE(frames[0].from_timer);
  EXPECT_EQ(frames[0].vector, kUserTimerUivec);
  EXPECT_EQ(frames[0].receive_cost_ns, rig.machine->costs().UserTimerReceiveNs());
  EXPECT_FALSE(rig.chip->UserTimerArmed(0));
}

TEST(UserTimerEventsTest, ReprogramReplacesDeadline) {
  Rig rig(1);
  int fires = 0;
  rig.chip->unit(0).SetHandler([&](const UintrFrame&) { fires++; });
  rig.chip->ProgramUserTimerDeadline(0, Micros(10));
  rig.chip->ProgramUserTimerDeadline(0, Micros(100));  // replaces, not adds
  rig.sim.RunUntil(Micros(50));
  EXPECT_EQ(fires, 0);
  rig.sim.RunUntil(Micros(200));
  EXPECT_EQ(fires, 1);
}

TEST(UserTimerEventsTest, CancelPreventsFire) {
  Rig rig(1);
  int fires = 0;
  rig.chip->unit(0).SetHandler([&](const UintrFrame&) { fires++; });
  rig.chip->ProgramUserTimerDeadline(0, Micros(10));
  rig.chip->CancelUserTimerDeadline(0);
  rig.sim.RunUntil(Millis(1));
  EXPECT_EQ(fires, 0);
}

TEST(UserTimerEventsTest, NoPirOrIpiInvolved) {
  // Unlike timer delegation, UTE needs no UPID priming: delivery works with
  // no active UPID at all.
  Rig rig(1);
  int fires = 0;
  rig.chip->unit(0).SetHandler([&](const UintrFrame&) { fires++; });
  ASSERT_EQ(rig.chip->unit(0).active_upid(), nullptr);
  rig.chip->ProgramUserTimerDeadline(0, Micros(5));
  rig.sim.Run();
  EXPECT_EQ(fires, 1);
}

// ---- User-Timer Events (engine: kUserDeadline tick path) ----

PerCpuEngineConfig DeadlineCfg(int cores, DurationNs quantum) {
  PerCpuEngineConfig cfg;
  for (int i = 0; i < cores; i++) {
    cfg.base.worker_cores.push_back(i);
  }
  cfg.tick_path = TickPath::kUserDeadline;
  cfg.deadline_quantum = quantum;
  return cfg;
}

TEST(DeadlineEngineTest, PreemptsLikePeriodicTimer) {
  Rig rig(1);
  RoundRobinPolicy policy(Micros(50));
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                      DeadlineCfg(1, Micros(50)));
  App* app = engine.CreateApp("a");
  engine.Start();
  engine.Submit(engine.NewTask(app, Millis(10), 1));
  engine.Submit(engine.NewTask(app, Micros(4), 0));
  rig.sim.RunUntil(Millis(50));
  EXPECT_EQ(engine.stats().completed, 2u);
  EXPECT_LT(engine.stats().latency_by_kind[0].Max(), Micros(200));
}

TEST(DeadlineEngineTest, NoTicksWhenIdle) {
  // The headline benefit over the periodic 100 kHz tick: an idle machine
  // takes zero timer interrupts.
  Rig rig(2);
  RoundRobinPolicy policy(Micros(50));
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                      DeadlineCfg(2, Micros(50)));
  App* app = engine.CreateApp("a");
  engine.Start();
  engine.Submit(engine.NewTask(app, Micros(10)));
  rig.sim.RunUntil(Millis(100));
  EXPECT_EQ(engine.stats().completed, 1u);
  // Only the one assignment's deadline could have fired (task finished
  // first, so likely zero) — nothing close to 100ms/50us = 2000 ticks.
  EXPECT_LE(engine.ticks(), 1u);
}

TEST(DeadlineEngineTest, TickCountScalesWithWorkNotWallTime) {
  Rig rig(1);
  RoundRobinPolicy policy(Micros(50));
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                      DeadlineCfg(1, Micros(50)));
  App* app = engine.CreateApp("a");
  engine.Start();
  // 2 ms of CPU-bound work in two competing tasks -> ~2ms/50us = 40 ticks,
  // then silence for the rest of the 100 ms window.
  engine.Submit(engine.NewTask(app, Millis(1)));
  engine.Submit(engine.NewTask(app, Millis(1)));
  rig.sim.RunUntil(Millis(100));
  EXPECT_EQ(engine.stats().completed, 2u);
  EXPECT_GE(engine.ticks(), 30u);
  EXPECT_LE(engine.ticks(), 60u);
}

// ---- Peripheral MSI delegation (§6) ----

TEST(MsiDeviceTest, DefaultRouteTakesKernelPath) {
  Rig rig(2);
  MsiDevice nic_msi(rig.chip.get(), /*target=*/1, kNicMsiVector);
  int kernel_irqs = 0;
  rig.chip->SetLegacyHandler([&](CoreId core, int vector) {
    EXPECT_EQ(core, 1);
    EXPECT_EQ(vector, kNicMsiVector);
    kernel_irqs++;
  });
  nic_msi.Raise();
  rig.sim.Run();
  EXPECT_EQ(kernel_irqs, 1);
}

TEST(MsiDeviceTest, DelegatedMsiHandledInUserSpace) {
  // Same recipe as timer delegation: UINV = device vector, SN-primed PIR.
  Rig rig(2);
  MsiDevice nic_msi(rig.chip.get(), 1, kNicMsiVector);
  Upid upid;
  upid.sn = true;
  upid.ndst = 1;
  upid.nv = kNicMsiVector;
  UserInterruptUnit& unit = rig.chip->unit(1);
  unit.SetUinv(kNicMsiVector);
  unit.SetActiveUpid(&upid);
  const int self_idx = rig.chip->RegisterUittEntry(1, &upid, 2);
  int user_irqs = 0;
  int kernel_irqs = 0;
  unit.SetHandler([&](const UintrFrame& frame) {
    user_irqs++;
    rig.chip->SendUipi(1, self_idx);  // re-arm, as for timers
  });
  rig.chip->SetLegacyHandler([&](CoreId, int) { kernel_irqs++; });
  rig.chip->SendUipi(1, self_idx);  // prime
  for (int i = 0; i < 5; i++) {
    nic_msi.Raise();
  }
  rig.sim.Run();
  EXPECT_EQ(user_irqs, 5);
  EXPECT_EQ(kernel_irqs, 0) << "delegated MSIs must bypass the kernel";
}

TEST(MsiDeviceTest, InterruptDrivenNicRxPath) {
  // Full §6 peripheral story: packet -> RSS ring -> MSI -> user-space
  // handler drains the ring. No polling loop anywhere.
  Rig rig(2);
  std::vector<std::uint64_t> received;
  auto nic = std::make_unique<Nic>(&rig.sim, /*queues=*/1, /*wire=*/Micros(5), 64, nullptr);
  MsiDevice msi(rig.chip.get(), 0, kNicMsiVector);

  Upid upid;
  upid.sn = true;
  upid.ndst = 0;
  upid.nv = kNicMsiVector;
  UserInterruptUnit& unit = rig.chip->unit(0);
  unit.SetUinv(kNicMsiVector);
  unit.SetActiveUpid(&upid);
  const int self_idx = rig.chip->RegisterUittEntry(0, &upid, 2);
  unit.SetHandler([&](const UintrFrame&) {
    rig.chip->SendUipi(0, self_idx);
    Packet p;
    while (nic->PollQueue(0, &p)) {
      received.push_back(p.flow);
    }
  });
  rig.chip->SendUipi(0, self_idx);

  // Rebuild the NIC with an MSI-raising deliver hook.
  nic = std::make_unique<Nic>(&rig.sim, 1, Micros(5), 64, [&](int) { msi.Raise(); });
  for (std::uint64_t f = 1; f <= 10; f++) {
    Packet p;
    p.flow = f;
    nic->Transmit(p);
  }
  rig.sim.Run();
  EXPECT_EQ(received.size(), 10u);
  EXPECT_EQ(msi.raised(), 10u);
}

// ---- Blocking events / page faults (§6) ----

PerCpuEngineConfig FaultCfg(int cores) {
  PerCpuEngineConfig cfg;
  for (int i = 0; i < cores; i++) {
    cfg.base.worker_cores.push_back(i);
  }
  cfg.timer_hz = 100'000;
  cfg.tick_path = TickPath::kUserTimer;
  return cfg;
}

TEST(PageFaultTest, OtherAppRunsDuringFault) {
  Rig rig(1);
  // Infinite quantum: A is never quantum-preempted, so the fault is the only
  // thing that can take it off the core.
  WorkStealingPolicy policy(WorkStealingParams{kInfiniteSliceWs, 1});
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                      FaultCfg(1));
  App* app_a = engine.CreateApp("a");
  App* app_b = engine.CreateApp("b");
  engine.Start();
  engine.Submit(engine.NewTask(app_a, Millis(1), /*kind=*/0));
  engine.Submit(engine.NewTask(app_b, Micros(50), /*kind=*/1));
  // Fault the running A task at t=100us for 500us.
  rig.sim.ScheduleAt(Micros(100), [&] { engine.InjectPageFault(0, Micros(500)); });
  rig.sim.RunUntil(Millis(5));
  EXPECT_EQ(engine.stats().completed, 2u);
  // B completed *during* A's fault window, long before A.
  EXPECT_LT(engine.stats().latency_by_kind[1].Max(), Micros(250));
  EXPECT_GT(engine.stats().latency_by_kind[0].Max(), Millis(1) + Micros(500) - Micros(10));
  rig.kernel->CheckBindingRule();
}

TEST(PageFaultTest, FaultedAppTasksStayOffTheCore) {
  Rig rig(1);
  WorkStealingPolicy policy(WorkStealingParams{kInfiniteSliceWs, 1});
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                      FaultCfg(1));
  App* app_a = engine.CreateApp("a");
  engine.CreateApp("b");
  engine.Start();
  Task* first = engine.NewTask(app_a, Millis(1), 0);
  engine.Submit(first);
  engine.Submit(engine.NewTask(app_a, Micros(10), 1));  // same app, queued
  rig.sim.ScheduleAt(Micros(100), [&] { engine.InjectPageFault(0, Millis(1)); });
  rig.sim.RunUntil(Micros(500));
  // During the fault neither A task may run: none completed yet.
  EXPECT_EQ(engine.stats().completed, 0u);
  EXPECT_TRUE(engine.AppFaultedOn(0, app_a));
  rig.sim.RunUntil(Millis(10));
  EXPECT_EQ(engine.stats().completed, 2u) << "both must finish after resolution";
}

TEST(PageFaultTest, FaultOnIdleWorkerIsNoop) {
  Rig rig(1);
  RoundRobinPolicy policy(Micros(50));
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                      FaultCfg(1));
  engine.CreateApp("a");
  engine.Start();
  engine.InjectPageFault(0, Micros(100));  // nothing running
  rig.sim.RunUntil(Millis(1));
  EXPECT_FALSE(engine.AppFaultedOn(0, nullptr));
}

TEST(PageFaultTest, RandomFaultInjectionConservesTasks) {
  Rig rig(4);
  WorkStealingPolicy policy(WorkStealingParams{Micros(20), 5});
  PerCpuEngine engine(rig.machine.get(), rig.chip.get(), rig.kernel.get(), &policy,
                      FaultCfg(4));
  App* app_a = engine.CreateApp("a");
  App* app_b = engine.CreateApp("b");
  engine.Start();
  Rng rng(123);
  std::uint64_t submitted = 0;
  for (int i = 0; i < 800; i++) {
    const auto at = static_cast<TimeNs>(rng.NextBelow(Millis(10)));
    rig.sim.ScheduleAt(at, [&engine, &rng, &submitted, app_a, app_b] {
      submitted++;
      App* app = rng.NextBool(0.5) ? app_a : app_b;
      engine.Submit(engine.NewTask(app, 500 + static_cast<DurationNs>(rng.NextBelow(Micros(100)))));
    });
  }
  for (int i = 0; i < 100; i++) {
    const auto at = static_cast<TimeNs>(rng.NextBelow(Millis(10)));
    rig.sim.ScheduleAt(at, [&engine, &rng] {
      engine.InjectPageFault(static_cast<int>(rng.NextBelow(4)),
                             Micros(10) + static_cast<DurationNs>(rng.NextBelow(Micros(200))));
    });
  }
  rig.sim.RunUntil(kSecond);
  EXPECT_EQ(engine.stats().completed, submitted);
  rig.kernel->CheckBindingRule();
}

}  // namespace
}  // namespace skyloft
