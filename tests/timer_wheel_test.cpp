// Tests for the hierarchical timing wheel, including an exhaustive
// cross-check against a sorted reference over random workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/base/random.h"
#include "src/base/timer_wheel.h"

namespace skyloft {
namespace {

TEST(TimerWheelTest, FiresAtExactTick) {
  TimerWheel wheel;
  std::uint64_t fired_at = 0;
  wheel.ScheduleAt(37, [&] { fired_at = wheel.Now(); });
  wheel.AdvanceTo(36);
  EXPECT_EQ(fired_at, 0u);
  wheel.AdvanceTo(37);
  EXPECT_EQ(fired_at, 37u);
}

TEST(TimerWheelTest, ScheduleAfterIsRelative) {
  TimerWheel wheel;
  wheel.AdvanceTo(100);
  bool fired = false;
  wheel.ScheduleAfter(10, [&] { fired = true; });
  wheel.AdvanceTo(109);
  EXPECT_FALSE(fired);
  wheel.AdvanceTo(110);
  EXPECT_TRUE(fired);
}

TEST(TimerWheelTest, MultipleTimersSameTick) {
  TimerWheel wheel;
  std::vector<int> order;
  wheel.ScheduleAt(5, [&] { order.push_back(1); });
  wheel.ScheduleAt(5, [&] { order.push_back(2); });
  wheel.ScheduleAt(5, [&] { order.push_back(3); });
  wheel.AdvanceTo(10);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3})) << "insertion order on ties";
}

TEST(TimerWheelTest, LongTimerCascades) {
  TimerWheel wheel;
  // Far beyond level 0's 64-tick range: must cascade through levels.
  bool fired = false;
  wheel.ScheduleAt(100'000, [&] { fired = true; });
  wheel.AdvanceTo(99'999);
  EXPECT_FALSE(fired);
  wheel.AdvanceTo(100'000);
  EXPECT_TRUE(fired);
}

TEST(TimerWheelTest, CancelPreventsFire) {
  TimerWheel wheel;
  bool fired = false;
  const TimerId id = wheel.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(wheel.Cancel(id));
  EXPECT_FALSE(wheel.Cancel(id));
  wheel.AdvanceTo(100);
  EXPECT_FALSE(fired);
  EXPECT_EQ(wheel.Pending(), 0u);
}

TEST(TimerWheelTest, PendingCount) {
  TimerWheel wheel;
  wheel.ScheduleAt(10, [] {});
  wheel.ScheduleAt(20, [] {});
  EXPECT_EQ(wheel.Pending(), 2u);
  wheel.AdvanceTo(15);
  EXPECT_EQ(wheel.Pending(), 1u);
}

TEST(TimerWheelTest, RescheduleFromCallback) {
  TimerWheel wheel;
  int fires = 0;
  std::function<void()> periodic = [&] {
    fires++;
    if (fires < 5) {
      wheel.ScheduleAfter(10, periodic);
    }
  };
  wheel.ScheduleAfter(10, periodic);
  wheel.AdvanceTo(100);
  EXPECT_EQ(fires, 5);
}

TEST(TimerWheelTest, SameSlotDifferentLapNotFiredEarly) {
  TimerWheel wheel;
  // Ticks 2 and 66 share level-0 slot 2; only the due one may fire.
  std::vector<std::uint64_t> fired;
  wheel.ScheduleAt(2, [&] { fired.push_back(2); });
  wheel.ScheduleAt(66, [&] { fired.push_back(66); });
  wheel.AdvanceTo(2);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{2}));
  wheel.AdvanceTo(66);
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{2, 66}));
}

// Property: the wheel fires exactly the same (time, count) multiset as a
// sorted reference, across random schedules spanning all levels.
TEST(TimerWheelTest, MatchesReferenceOnRandomWorkload) {
  Rng rng(2024);
  TimerWheel wheel;
  std::multimap<std::uint64_t, int> reference;
  std::vector<std::pair<std::uint64_t, int>> fired;
  for (int i = 0; i < 2000; i++) {
    const std::uint64_t when = 1 + rng.NextBelow(1 << 20);  // spans 4 levels
    reference.emplace(when, i);
    wheel.ScheduleAt(when, [&fired, &wheel, i] { fired.emplace_back(wheel.Now(), i); });
  }
  wheel.AdvanceTo(1 << 20);
  ASSERT_EQ(fired.size(), reference.size());
  // Every firing must be at its scheduled time.
  std::multimap<std::uint64_t, int> got;
  for (const auto& [when, idx] : fired) {
    got.emplace(when, idx);
  }
  // Compare as sets of (time, id).
  std::vector<std::pair<std::uint64_t, int>> a(reference.begin(), reference.end());
  std::vector<std::pair<std::uint64_t, int>> b(got.begin(), got.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  // And firing order must be non-decreasing in time.
  for (std::size_t i = 1; i < fired.size(); i++) {
    EXPECT_LE(fired[i - 1].first, fired[i].first);
  }
}

TEST(TimerWheelTest, RandomCancellations) {
  Rng rng(7);
  TimerWheel wheel;
  std::vector<TimerId> ids;
  int fired = 0;
  for (int i = 0; i < 500; i++) {
    ids.push_back(wheel.ScheduleAt(1 + rng.NextBelow(10'000), [&] { fired++; }));
  }
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    if (wheel.Cancel(ids[i])) {
      cancelled++;
    }
  }
  wheel.AdvanceTo(10'000);
  EXPECT_EQ(fired + cancelled, 500);
  EXPECT_EQ(cancelled, 250);
}

}  // namespace
}  // namespace skyloft
