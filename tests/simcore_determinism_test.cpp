// Determinism property tests: the timing-wheel Simulation must execute the
// exact same event sequence as the reference priority-queue engine
// (tests/reference_simulation.h) for any schedule, including periodic
// events, cancellations, and deadline-chunked execution. The cluster section
// extends the property across shards: a partitioned ClusterSim must produce
// bit-identical per-node traces at any host-thread count.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <utility>
#include <vector>

#include "src/base/random.h"
#include "src/net/node_link.h"
#include "src/simcore/cluster_sim.h"
#include "src/simcore/simulation.h"
#include "tests/reference_simulation.h"

namespace skyloft {
namespace {

// ---- Engine adapters ----
//
// Both engines expose the same driver-facing surface. Periodic events on the
// reference engine are emulated the way the seed code did it (re-schedule a
// fresh event at the top of the callback), which is exactly the ordering the
// wheel's rearm-in-place fast path must reproduce.

struct WheelEngine {
  using OneShot = EventId;
  using Periodic = EventId;

  TimeNs Now() const { return sim.Now(); }

  template <typename F>
  OneShot At(TimeNs at, F fn) {
    return sim.ScheduleAt(at, std::move(fn));
  }

  template <typename F>
  Periodic Every(TimeNs first, DurationNs period, F fn) {
    return sim.SchedulePeriodic(first, period, std::move(fn));
  }

  bool CancelOneShot(OneShot h) { return sim.Cancel(h); }
  bool CancelPeriodic(Periodic h) { return sim.Cancel(h); }

  void RunUntil(TimeNs deadline) { sim.RunUntil(deadline); }
  void Run() { sim.Run(); }
  std::uint64_t Executed() const { return sim.EventsExecuted(); }
  std::size_t Pending() const { return sim.PendingEvents(); }

  Simulation sim;
};

struct ReferenceEngine {
  using OneShot = ReferenceSimulation::EventId;

  struct PeriodicState {
    ReferenceSimulation* sim = nullptr;
    ReferenceSimulation::EventId current = ReferenceSimulation::kInvalidId;
    DurationNs period = 0;
    std::function<void()> body;
    std::function<void()> fire;
  };
  using Periodic = std::shared_ptr<PeriodicState>;

  TimeNs Now() const { return sim.Now(); }

  template <typename F>
  OneShot At(TimeNs at, F fn) {
    return sim.ScheduleAt(at, std::move(fn));
  }

  template <typename F>
  Periodic Every(TimeNs first, DurationNs period, F fn) {
    auto state = std::make_shared<PeriodicState>();
    state->sim = &sim;
    state->period = period;
    state->body = std::move(fn);
    // Raw capture: `fire` lives inside the state it re-arms, so a shared_ptr
    // capture would be a self-cycle (leak). The caller keeps the state alive.
    state->fire = [s = state.get()] {
      // Seed idiom: re-arm first (fresh id => fresh sequence number), then
      // run the payload.
      s->current = s->sim->ScheduleAt(s->sim->Now() + s->period, s->fire);
      s->body();
    };
    state->current = sim.ScheduleAt(first, state->fire);
    return state;
  }

  bool CancelOneShot(OneShot h) { return sim.Cancel(h); }
  bool CancelPeriodic(const Periodic& h) { return sim.Cancel(h->current); }

  void RunUntil(TimeNs deadline) { sim.RunUntil(deadline); }
  void Run() { sim.Run(); }
  std::uint64_t Executed() const { return sim.EventsExecuted(); }
  std::size_t Pending() const { return sim.PendingEvents(); }

  ReferenceSimulation sim;
};

// Delay distribution biased toward timing-wheel edge cases: same-tick,
// level boundaries (64, 4096, 2^18), the wheel horizon (2^24, where events
// spill into the overflow heap), and genuinely far futures.
DurationNs RandomDelay(Rng& rng) {
  switch (rng.NextBelow(8)) {
    case 0:
      return static_cast<DurationNs>(rng.NextBelow(4));
    case 1:
      return 62 + static_cast<DurationNs>(rng.NextBelow(5));
    case 2:
      return 4094 + static_cast<DurationNs>(rng.NextBelow(5));
    case 3:
      return (DurationNs{1} << 18) - 2 + static_cast<DurationNs>(rng.NextBelow(5));
    case 4:
      return (DurationNs{1} << 24) - 3 + static_cast<DurationNs>(rng.NextBelow(6));
    case 5:
      return static_cast<DurationNs>(rng.NextBelow(1000));
    case 6:
      return static_cast<DurationNs>(rng.NextBelow(200'000));
    default:
      return static_cast<DurationNs>(rng.NextBelow(40'000'000));
  }
}

// Drives one engine through a randomized self-propagating schedule and
// records the (time, tag) trace plus every Cancel() result.
template <typename Engine>
struct Driver {
  explicit Driver(std::uint64_t seed) : rng(seed) {}

  void SpawnOneShot(DurationNs delay) {
    const int tag = next_tag++;
    handles.push_back(engine.At(engine.Now() + delay, [this, tag] { OnFire(tag); }));
  }

  void SpawnPeriodic(DurationNs first, DurationNs period, int fires) {
    const int tag = next_tag++;
    auto fires_left = std::make_shared<int>(fires);
    // The handle lives in `periodics` (not in the callback's captures): for
    // the reference engine the callback is stored inside the handle's own
    // state, so capturing the handle would cycle and leak.
    const std::size_t slot = periodics.size();
    periodics.emplace_back();
    periodics[slot] = engine.Every(engine.Now() + first, period, [this, tag, fires_left, slot] {
      trace.push_back({engine.Now(), tag});
      if (--*fires_left == 0) {
        cancel_results.push_back(engine.CancelPeriodic(periodics[slot]));
      }
    });
  }

  void OnFire(int tag) {
    trace.push_back({engine.Now(), tag});
    if (budget > 0) {
      const int kids = static_cast<int>(rng.NextBelow(3));
      for (int i = 0; i < kids && budget > 0; i++) {
        budget--;
        SpawnOneShot(RandomDelay(rng));
      }
    }
    if (!handles.empty() && rng.NextBool(0.25)) {
      const auto victim = rng.NextBelow(handles.size());
      cancel_results.push_back(engine.CancelOneShot(handles[victim]));
    }
    if (budget > 8 && rng.NextBool(0.04)) {
      const int fires = 3 + static_cast<int>(rng.NextBelow(6));
      budget -= fires;
      SpawnPeriodic(1 + RandomDelay(rng) % 10'000, 1 + RandomDelay(rng) % 50'000, fires);
    }
  }

  Engine engine;
  Rng rng;
  std::vector<typename Engine::OneShot> handles;
  std::vector<typename Engine::Periodic> periodics;
  std::vector<std::pair<TimeNs, int>> trace;
  std::vector<bool> cancel_results;
  int next_tag = 0;
  int budget = 2500;
};

// The driver is heap-allocated: its callbacks capture `this`, and the engine
// itself is immovable.
template <typename Engine>
std::unique_ptr<Driver<Engine>> RunSchedule(std::uint64_t seed) {
  auto driver = std::make_unique<Driver<Engine>>(seed);
  for (int i = 0; i < 40; i++) {
    driver->budget--;
    driver->SpawnOneShot(RandomDelay(driver->rng));
  }
  // Chunked execution exercises the RunUntil deadline paths (clock jumps
  // into half-open windows) in between full drains.
  TimeNs deadline = 0;
  for (int chunk = 0; chunk < 200 && driver->engine.Pending() > 0; chunk++) {
    deadline += Millis(1);
    driver->engine.RunUntil(deadline);
  }
  driver->engine.Run();
  return driver;
}

TEST(SimcoreDeterminismTest, WheelMatchesReferenceForManySeeds) {
  for (std::uint64_t seed = 1; seed <= 12; seed++) {
    auto wheel = RunSchedule<WheelEngine>(seed);
    auto ref = RunSchedule<ReferenceEngine>(seed);
    ASSERT_EQ(wheel->trace.size(), ref->trace.size()) << "seed " << seed;
    for (std::size_t i = 0; i < wheel->trace.size(); i++) {
      ASSERT_EQ(wheel->trace[i], ref->trace[i])
          << "seed " << seed << " diverges at event " << i;
    }
    EXPECT_EQ(wheel->engine.Executed(), ref->engine.Executed()) << "seed " << seed;
    EXPECT_EQ(wheel->cancel_results, ref->cancel_results) << "seed " << seed;
    EXPECT_EQ(wheel->engine.Pending(), 0u) << "seed " << seed;
    EXPECT_EQ(ref->engine.Pending(), 0u) << "seed " << seed;
  }
}

// Re-running the wheel with the same seed must give the identical trace
// (self-determinism, independent of the reference).
TEST(SimcoreDeterminismTest, WheelIsSelfDeterministic) {
  auto a = RunSchedule<WheelEngine>(7);
  auto b = RunSchedule<WheelEngine>(7);
  EXPECT_EQ(a->trace, b->trace);
  EXPECT_EQ(a->engine.Executed(), b->engine.Executed());
}

// ---- Cluster determinism ----
//
// Three shards on a latency ring, each running a randomized self-propagating
// schedule from its own derived RNG stream, randomly sending events across
// the ring (and sometimes cancelling them in flight). All mutable driver
// state is per-node and only ever touched from that node's events, so the
// workload is exactly as parallel as the shards themselves. The property:
// the per-node (time, tag) traces and every cancel result are bit-identical
// whether the shards share one host thread or get one each.

struct ClusterDriver {
  static constexpr int kNodes = 3;

  ClusterDriver(std::uint64_t seed, int threads) {
    ClusterSim::Options options;
    options.num_threads = threads;
    cluster = std::make_unique<ClusterSim>(kNodes, options);
    for (int n = 0; n < kNodes; n++) {
      rngs.emplace_back(Rng::DeriveStream(seed, static_cast<std::uint64_t>(n)));
      budgets[static_cast<std::size_t>(n)] = 400;
      next_tag[static_cast<std::size_t>(n)] = n * 1'000'000;
      // Ring with per-hop latencies 2us / 2.5us / 3us; lookahead = 2us.
      links.push_back(std::make_unique<NodeLink>(cluster.get(), n, (n + 1) % kNodes,
                                                 Micros(2) + n * 500));
    }
  }

  void SpawnLocal(int node, DurationNs delay) {
    const auto i = static_cast<std::size_t>(node);
    const int tag = next_tag[i]++;
    SimNode* sim = cluster->node(node);
    handles[i].push_back(sim->ScheduleAt(sim->Now() + delay, [this, node, tag] {
      OnFire(node, tag);
    }));
  }

  void OnFire(int node, int tag) {
    const auto i = static_cast<std::size_t>(node);
    traces[i].push_back({cluster->node(node)->Now(), tag});
    Rng& rng = rngs[i];
    if (budgets[i] > 0) {
      const int kids = static_cast<int>(rng.NextBelow(3));
      for (int k = 0; k < kids && budgets[i] > 0; k++) {
        budgets[i]--;
        SpawnLocal(node, RandomDelay(rng));
      }
    }
    if (budgets[i] > 0 && rng.NextBool(0.3)) {
      // Hop to the next node on the ring; the remote event continues the
      // destination's schedule with the destination's own RNG stream.
      budgets[i]--;
      const int rtag = next_tag[i]++;
      remote_ids[i].push_back(links[i]->Send([this, dst = (node + 1) % kNodes, rtag] {
        OnFire(dst, rtag);
      }));
    }
    if (!remote_ids[i].empty() && rng.NextBool(0.2)) {
      const auto victim = rng.NextBelow(remote_ids[i].size());
      cancel_results[i].push_back(links[i]->Cancel(remote_ids[i][victim]));
    }
    if (!handles[i].empty() && rng.NextBool(0.2)) {
      const auto victim = rng.NextBelow(handles[i].size());
      cancel_results[i].push_back(cluster->node(node)->Cancel(handles[i][victim]));
    }
  }

  std::unique_ptr<ClusterSim> cluster;
  std::vector<Rng> rngs;
  std::vector<std::unique_ptr<NodeLink>> links;
  std::array<std::vector<EventId>, kNodes> handles;
  std::array<std::vector<RemoteEventId>, kNodes> remote_ids;
  std::array<std::vector<std::pair<TimeNs, int>>, kNodes> traces;
  std::array<std::vector<bool>, kNodes> cancel_results;
  std::array<int, kNodes> next_tag = {};
  std::array<int, kNodes> budgets = {};
};

std::unique_ptr<ClusterDriver> RunClusterSchedule(std::uint64_t seed, int threads) {
  auto driver = std::make_unique<ClusterDriver>(seed, threads);
  for (int n = 0; n < ClusterDriver::kNodes; n++) {
    for (int i = 0; i < 15; i++) {
      driver->budgets[static_cast<std::size_t>(n)]--;
      driver->SpawnLocal(n, RandomDelay(driver->rngs[static_cast<std::size_t>(n)]));
    }
  }
  // Chunked epochs (RunUntil deadline paths, including deadline-grazing
  // cross-shard arrivals) followed by a full drain.
  TimeNs deadline = 0;
  for (int chunk = 0; chunk < 100 && driver->cluster->TotalPendingEvents() > 0; chunk++) {
    deadline += Millis(1);
    driver->cluster->RunUntil(deadline);
  }
  driver->cluster->Run();
  return driver;
}

TEST(SimcoreDeterminismTest, ClusterParallelMatchesSequentialForManySeeds) {
  for (std::uint64_t seed = 1; seed <= 10; seed++) {
    auto seq = RunClusterSchedule(seed, /*threads=*/1);
    auto par = RunClusterSchedule(seed, /*threads=*/ClusterDriver::kNodes);
    for (std::size_t n = 0; n < ClusterDriver::kNodes; n++) {
      ASSERT_EQ(seq->traces[n].size(), par->traces[n].size())
          << "seed " << seed << " node " << n;
      for (std::size_t i = 0; i < seq->traces[n].size(); i++) {
        ASSERT_EQ(seq->traces[n][i], par->traces[n][i])
            << "seed " << seed << " node " << n << " diverges at event " << i;
      }
      EXPECT_EQ(seq->cancel_results[n], par->cancel_results[n])
          << "seed " << seed << " node " << n;
    }
    EXPECT_EQ(seq->cluster->TotalEventsExecuted(), par->cluster->TotalEventsExecuted())
        << "seed " << seed;
    EXPECT_EQ(seq->cluster->TotalPendingEvents(), 0u) << "seed " << seed;
  }
}

// Same cluster workload, same seed, same thread count, run twice: the trace
// must also be stable run-to-run (no hidden dependence on allocation order
// or thread start timing).
TEST(SimcoreDeterminismTest, ClusterIsSelfDeterministic) {
  auto a = RunClusterSchedule(11, /*threads=*/ClusterDriver::kNodes);
  auto b = RunClusterSchedule(11, /*threads=*/ClusterDriver::kNodes);
  for (std::size_t n = 0; n < ClusterDriver::kNodes; n++) {
    EXPECT_EQ(a->traces[n], b->traces[n]) << "node " << n;
  }
}

// Derived per-node streams must actually decorrelate the shards: two nodes
// seeded from the same base seed draw different schedules.
TEST(SimcoreDeterminismTest, DerivedNodeStreamsAreDistinct) {
  Rng a(Rng::DeriveStream(42, 0));
  Rng b(Rng::DeriveStream(42, 1));
  Rng c(Rng::DeriveStream(42, 2));
  int equal_ab = 0;
  int equal_bc = 0;
  for (int i = 0; i < 64; i++) {
    const std::uint64_t x = a.NextU64();
    const std::uint64_t y = b.NextU64();
    const std::uint64_t z = c.NextU64();
    equal_ab += (x == y);
    equal_bc += (y == z);
  }
  EXPECT_EQ(equal_ab, 0);
  EXPECT_EQ(equal_bc, 0);
  // Stream 0 is the base seed itself (single-node compatibility).
  EXPECT_EQ(Rng::DeriveStream(42, 0), 42u);
}

}  // namespace
}  // namespace skyloft
