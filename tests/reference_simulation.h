// Reference discrete-event engine: the original `std::priority_queue` +
// lazy-cancellation implementation that `Simulation` replaced.
//
// Kept under tests/ as the ground truth for the determinism property tests
// (same schedule => identical event order and counts in both engines) and as
// the baseline core for bench_simcore_events. Apart from the Cancel()
// id-validation fix (an already-fired id must not be inserted into the
// cancelled set), this is the seed implementation verbatim.
#ifndef TESTS_REFERENCE_SIMULATION_H_
#define TESTS_REFERENCE_SIMULATION_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/simcore/simulation.h"
#include "src/base/logging.h"
#include "src/base/time.h"

namespace skyloft {

class ReferenceSimulation {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;
  static constexpr EventId kInvalidId = 0;

  ReferenceSimulation() = default;
  ReferenceSimulation(const ReferenceSimulation&) = delete;
  ReferenceSimulation& operator=(const ReferenceSimulation&) = delete;

  TimeNs Now() const { return now_; }

  EventId ScheduleAt(TimeNs at, Callback fn) {
    SKYLOFT_CHECK(at >= now_) << "cannot schedule in the past: " << at << " < " << now_;
    const EventId id = next_id_++;
    heap_.push(Event{at, id, std::move(fn)});
    live_.insert(id);
    return id;
  }

  EventId ScheduleAfter(DurationNs delay, Callback fn) {
    return ScheduleAt(now_ + delay, std::move(fn));
  }

  bool Cancel(EventId id) {
    if (id == kInvalidId || id >= next_id_) {
      return false;
    }
    if (live_.find(id) == live_.end()) {
      return false;  // already fired or already cancelled
    }
    live_.erase(id);
    return cancelled_.insert(id).second;
  }

  void Run() {
    stopped_ = false;
    Event ev;
    while (!stopped_ && PopNext(&ev)) {
      now_ = ev.when;
      executed_++;
      ev.fn();
    }
  }

  void RunUntil(TimeNs deadline) {
    stopped_ = false;
    Event ev;
    while (!stopped_) {
      if (heap_.empty() || heap_.top().when > deadline) {
        break;
      }
      if (!PopNext(&ev)) {
        break;
      }
      if (ev.when > deadline) {
        heap_.push(std::move(ev));
        break;
      }
      now_ = ev.when;
      executed_++;
      ev.fn();
    }
    if (!stopped_ && now_ < deadline) {
      now_ = deadline;
    }
  }

  bool Step() {
    Event ev;
    if (!PopNext(&ev)) {
      return false;
    }
    now_ = ev.when;
    executed_++;
    ev.fn();
    return true;
  }

  void Stop() { stopped_ = true; }

  std::size_t PendingEvents() const { return heap_.size() - cancelled_.size(); }
  std::uint64_t EventsExecuted() const { return executed_; }

 private:
  struct Event {
    TimeNs when;
    EventId id;
    Callback fn;
  };

  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.id > b.id;  // FIFO among same-time events
    }
  };

  bool PopNext(Event* out) {
    while (!heap_.empty()) {
      Event& top = const_cast<Event&>(heap_.top());
      Event ev{top.when, top.id, std::move(top.fn)};
      heap_.pop();
      auto it = cancelled_.find(ev.id);
      if (it != cancelled_.end()) {
        cancelled_.erase(it);
        continue;
      }
      live_.erase(ev.id);
      *out = std::move(ev);
      return true;
    }
    return false;
  }

  TimeNs now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> live_;
};

}  // namespace skyloft

#endif  // TESTS_REFERENCE_SIMULATION_H_
