// Tests for the simulated kernel and the Skyloft kernel module: thread state
// transitions, the Single Binding Rule (§3.3), signal/kernel-IPI costs
// (Table 6), and timer-delegation configuration (§4.2).
#include <gtest/gtest.h>

#include "src/kernelsim/kernel_sim.h"
#include "src/simcore/machine.h"
#include "src/simcore/simulation.h"
#include "src/uintr/uintr_chip.h"

namespace skyloft {
namespace {

class KernelSimTest : public ::testing::Test {
 protected:
  KernelSimTest() : machine_(&sim_, MakeConfig()), chip_(&machine_), kernel_(&machine_, &chip_) {
    kernel_.IsolateCores({0, 1, 2, 3});
  }

  static MachineConfig MakeConfig() {
    MachineConfig config;
    config.num_cores = 8;
    return config;
  }

  Simulation sim_;
  Machine machine_;
  UintrChip chip_;
  KernelSim kernel_;
};

TEST_F(KernelSimTest, CreateThreadStartsRunnable) {
  const Tid tid = kernel_.CreateThread(/*app_id=*/0);
  EXPECT_EQ(kernel_.thread(tid).state, KthreadState::kRunnable);
  EXPECT_EQ(kernel_.thread(tid).app_id, 0);
  EXPECT_EQ(kernel_.thread(tid).affinity, kInvalidCore);
}

TEST_F(KernelSimTest, IsolationFlags) {
  EXPECT_TRUE(kernel_.IsIsolated(0));
  EXPECT_TRUE(kernel_.IsIsolated(3));
  EXPECT_FALSE(kernel_.IsIsolated(4));
}

TEST_F(KernelSimTest, BindMakesThreadActiveOnCore) {
  const Tid tid = kernel_.CreateThread(0);
  kernel_.BindToCore(tid, 2);
  EXPECT_EQ(kernel_.ActiveOn(2), &kernel_.thread(tid));
  EXPECT_EQ(kernel_.ActiveOn(1), nullptr);
}

TEST_F(KernelSimTest, ParkOnCpuBindsAndSuspends) {
  const Tid tid = kernel_.CreateThread(1);
  const DurationNs cost = kernel_.SkyloftParkOnCpu(tid, 1);
  EXPECT_GT(cost, 0);
  EXPECT_EQ(kernel_.thread(tid).state, KthreadState::kSuspended);
  EXPECT_EQ(kernel_.thread(tid).affinity, 1);
  EXPECT_EQ(kernel_.ActiveOn(1), nullptr) << "parked threads are inactive";
}

TEST_F(KernelSimTest, SwitchToSwapsActiveThread) {
  const Tid a = kernel_.CreateThread(0);
  kernel_.BindToCore(a, 0);
  const Tid b = kernel_.CreateThread(1);
  kernel_.SkyloftParkOnCpu(b, 0);

  const DurationNs cost = kernel_.SkyloftSwitchTo(a, b);
  EXPECT_EQ(cost, machine_.costs().skyloft_app_switch_ns);  // §5.4: 1905 ns
  EXPECT_EQ(kernel_.thread(a).state, KthreadState::kSuspended);
  EXPECT_EQ(kernel_.thread(b).state, KthreadState::kRunnable);
  EXPECT_EQ(kernel_.ActiveOn(0), &kernel_.thread(b));
}

TEST_F(KernelSimTest, SwitchToRoundTrip) {
  const Tid a = kernel_.CreateThread(0);
  kernel_.BindToCore(a, 0);
  const Tid b = kernel_.CreateThread(1);
  kernel_.SkyloftParkOnCpu(b, 0);
  kernel_.SkyloftSwitchTo(a, b);
  kernel_.SkyloftSwitchTo(b, a);
  EXPECT_EQ(kernel_.ActiveOn(0), &kernel_.thread(a));
  kernel_.CheckBindingRule();
}

TEST_F(KernelSimTest, WakeupActivatesParkedThread) {
  const Tid tid = kernel_.CreateThread(0);
  kernel_.SkyloftParkOnCpu(tid, 3);
  kernel_.SkyloftWakeup(tid);
  EXPECT_EQ(kernel_.ActiveOn(3), &kernel_.thread(tid));
}

TEST_F(KernelSimTest, BindingRuleViolationOnWakeupAborts) {
  const Tid a = kernel_.CreateThread(0);
  kernel_.BindToCore(a, 0);
  const Tid b = kernel_.CreateThread(1);
  kernel_.SkyloftParkOnCpu(b, 0);
  // Waking b while a is active on core 0 breaks the Single Binding Rule.
  EXPECT_DEATH(kernel_.SkyloftWakeup(b), "Single Binding Rule");
}

TEST_F(KernelSimTest, BindingRuleViolationOnBindAborts) {
  const Tid a = kernel_.CreateThread(0);
  kernel_.BindToCore(a, 0);
  const Tid b = kernel_.CreateThread(1);
  EXPECT_DEATH(kernel_.BindToCore(b, 0), "Single Binding Rule");
}

TEST_F(KernelSimTest, NonIsolatedCoresAllowOversubscription) {
  const Tid a = kernel_.CreateThread(0);
  const Tid b = kernel_.CreateThread(1);
  kernel_.BindToCore(a, 5);
  kernel_.BindToCore(b, 5);  // fine: core 5 is not isolated
  kernel_.CheckBindingRule();
}

TEST_F(KernelSimTest, SwitchToAcrossCoresAborts) {
  const Tid a = kernel_.CreateThread(0);
  kernel_.BindToCore(a, 0);
  const Tid b = kernel_.CreateThread(1);
  kernel_.SkyloftParkOnCpu(b, 1);
  EXPECT_DEATH(kernel_.SkyloftSwitchTo(a, b), "across cores");
}

TEST_F(KernelSimTest, SwitchToNonSuspendedTargetAborts) {
  const Tid a = kernel_.CreateThread(0);
  kernel_.BindToCore(a, 0);
  const Tid b = kernel_.CreateThread(1);
  kernel_.BindToCore(b, 1);
  EXPECT_DEATH(kernel_.SkyloftSwitchTo(a, b), "not suspended");
}

TEST_F(KernelSimTest, SignalDeliveryTiming) {
  const Tid tid = kernel_.CreateThread(0);
  kernel_.BindToCore(tid, 1);
  TimeNs delivered_at = -1;
  const DurationNs send_cost =
      kernel_.SendSignal(/*from_core=*/0, tid, [&] { delivered_at = sim_.Now(); });
  EXPECT_EQ(send_cost, machine_.costs().SignalSendNs());
  sim_.Run();
  EXPECT_EQ(delivered_at, machine_.costs().SignalDeliveryNs());
  EXPECT_GT(kernel_.SignalReceiveCost(), 0);
}

TEST_F(KernelSimTest, KernelIpiFasterThanSignal) {
  TimeNs signal_at = -1;
  TimeNs ipi_at = -1;
  const Tid tid = kernel_.CreateThread(0);
  kernel_.SendSignal(0, tid, [&] { signal_at = sim_.Now(); });
  kernel_.SendKernelIpi(0, 1, [&] { ipi_at = sim_.Now(); });
  sim_.Run();
  EXPECT_LT(ipi_at, signal_at) << "Table 6: kernel IPI beats signal delivery";
}

TEST_F(KernelSimTest, TimerEnableConfiguresDelegation) {
  Upid upid;
  kernel_.SkyloftTimerEnable(2, &upid);
  EXPECT_TRUE(upid.sn) << "SN must be pre-set for the self-IPI trick";
  EXPECT_EQ(upid.ndst, 2);
  EXPECT_EQ(upid.nv, kApicTimerVector);
  EXPECT_EQ(chip_.unit(2).uinv(), kApicTimerVector);
  EXPECT_EQ(chip_.unit(2).active_upid(), &upid);
}

TEST_F(KernelSimTest, TimerSetHzStartsTimer) {
  Upid upid;
  kernel_.SkyloftTimerEnable(2, &upid);
  kernel_.SkyloftTimerSetHz(2, 100'000);
  EXPECT_TRUE(chip_.timer(2).enabled());
  EXPECT_EQ(chip_.timer(2).hz(), 100'000);
}

// End-to-end: kernel-module configuration + self-IPI priming => timer
// interrupts handled in user space, repeatedly, with re-arm.
TEST_F(KernelSimTest, UserSpaceTimerEndToEnd) {
  Upid upid;
  kernel_.SkyloftTimerEnable(2, &upid);
  const int self_idx = chip_.RegisterUittEntry(2, &upid, 1);
  int ticks = 0;
  chip_.unit(2).SetHandler([&](const UintrFrame& frame) {
    EXPECT_TRUE(frame.from_timer);
    ticks++;
    chip_.SendUipi(2, self_idx);  // re-arm (Listing 1)
  });
  chip_.SendUipi(2, self_idx);  // initial priming
  kernel_.SkyloftTimerSetHz(2, 100'000);
  sim_.RunUntil(Millis(1));
  EXPECT_EQ(ticks, 100);
}

}  // namespace
}  // namespace skyloft
