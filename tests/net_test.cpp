// Tests for the network substrate: NIC + RSS rings, the IPv4/UDP codec, and
// the open-loop Poisson load generator.
#include <gtest/gtest.h>

#include <map>

#include "src/simcore/simulation.h"
#include "src/libos/percpu_engine.h"
#include "src/net/loadgen.h"
#include "src/net/nic.h"
#include "src/net/udp.h"
#include "src/policies/work_stealing.h"

namespace skyloft {
namespace {

// ---- NIC / RSS ----

TEST(NicTest, PacketArrivesAfterWireLatency) {
  Simulation sim;
  int delivered_queue = -1;
  TimeNs delivered_at = -1;
  Nic nic(&sim, 4, Micros(5), 64, [&](int queue) {
    delivered_queue = queue;
    delivered_at = sim.Now();
  });
  Packet p;
  p.flow = 7;
  nic.Transmit(p);
  sim.Run();
  EXPECT_EQ(delivered_at, Micros(5));
  EXPECT_EQ(delivered_queue, nic.QueueFor(7));
  Packet out;
  EXPECT_TRUE(nic.PollQueue(delivered_queue, &out));
  EXPECT_EQ(out.flow, 7u);
  EXPECT_FALSE(nic.PollQueue(delivered_queue, &out));
}

TEST(NicTest, RssIsDeterministicPerFlow) {
  Simulation sim;
  Nic nic(&sim, 8, 0, 64, nullptr);
  for (std::uint64_t flow = 0; flow < 100; flow++) {
    EXPECT_EQ(nic.QueueFor(flow), nic.QueueFor(flow));
  }
}

TEST(NicTest, RssSpreadsFlows) {
  Simulation sim;
  Nic nic(&sim, 4, 0, 64, nullptr);
  std::map<int, int> counts;
  for (std::uint64_t flow = 0; flow < 4000; flow++) {
    counts[nic.QueueFor(flow)]++;
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [queue, count] : counts) {
    EXPECT_GT(count, 800) << "queue " << queue << " underloaded";
    EXPECT_LT(count, 1200) << "queue " << queue << " overloaded";
  }
}

TEST(NicTest, FullRingDropsAndCounts) {
  Simulation sim;
  Nic nic(&sim, 1, 0, 4, nullptr);  // tiny ring, nobody draining
  for (int i = 0; i < 10; i++) {
    Packet p;
    p.flow = 1;
    nic.Transmit(p);
  }
  sim.Run();
  EXPECT_EQ(nic.delivered(), 4u);
  EXPECT_EQ(nic.drops(), 6u);
}

// ---- UDP codec ----

UdpDatagram MakeDgram() {
  UdpDatagram d;
  d.ip.src_addr = 0x0a000001;  // 10.0.0.1
  d.ip.dst_addr = 0x0a000002;
  d.udp.src_port = 12345;
  d.udp.dst_port = 11211;
  d.payload = {'g', 'e', 't', ' ', 'k', 'e', 'y'};
  return d;
}

TEST(UdpTest, SerializeParseRoundTrip) {
  const auto bytes = SerializeUdp(MakeDgram());
  auto parsed = ParseUdp(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->ip.src_addr, 0x0a000001u);
  EXPECT_EQ(parsed->ip.dst_addr, 0x0a000002u);
  EXPECT_EQ(parsed->udp.src_port, 12345);
  EXPECT_EQ(parsed->udp.dst_port, 11211);
  EXPECT_EQ(parsed->payload, MakeDgram().payload);
}

TEST(UdpTest, HeaderChecksumValidates) {
  auto bytes = SerializeUdp(MakeDgram());
  bytes[16] ^= 0xff;  // corrupt dst address
  EXPECT_FALSE(ParseUdp(bytes).has_value());
}

TEST(UdpTest, PayloadCorruptionCaughtByUdpChecksum) {
  auto bytes = SerializeUdp(MakeDgram());
  bytes.back() ^= 0x01;
  EXPECT_FALSE(ParseUdp(bytes).has_value());
}

TEST(UdpTest, TruncatedPacketRejected) {
  auto bytes = SerializeUdp(MakeDgram());
  bytes.pop_back();
  EXPECT_FALSE(ParseUdp(bytes).has_value());
}

TEST(UdpTest, NonUdpProtocolRejected) {
  auto dgram = MakeDgram();
  dgram.ip.protocol = 6;  // TCP
  // Serialize computes checksums for whatever is set; parse must reject the
  // protocol before anything else matters.
  auto bytes = SerializeUdp(dgram);
  EXPECT_FALSE(ParseUdp(bytes).has_value());
}

TEST(UdpTest, EmptyPayloadOk) {
  UdpDatagram d = MakeDgram();
  d.payload.clear();
  auto parsed = ParseUdp(SerializeUdp(d));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->payload.empty());
}

TEST(UdpTest, ChecksumRfc1071KnownVector) {
  // Classic example: the checksum of a buffer including its own checksum
  // field is zero.
  const auto bytes = SerializeUdp(MakeDgram());
  EXPECT_EQ(InternetChecksum(bytes.data(), 20), 0);
}

// ---- Poisson load generator ----

struct LoadgenRig {
  LoadgenRig() {
    MachineConfig mcfg;
    mcfg.num_cores = 4;
    machine = std::make_unique<Machine>(&sim, mcfg);
    chip = std::make_unique<UintrChip>(machine.get());
    kernel = std::make_unique<KernelSim>(machine.get(), chip.get());
    policy = std::make_unique<WorkStealingPolicy>(WorkStealingParams{kInfiniteSliceWs, 1});
    PerCpuEngineConfig cfg;
    cfg.base.worker_cores = {0, 1, 2, 3};
    cfg.tick_path = TickPath::kNone;
    engine = std::make_unique<PerCpuEngine>(machine.get(), chip.get(), kernel.get(),
                                            policy.get(), cfg);
    app = engine->CreateApp("srv");
    engine->Start();
  }
  Simulation sim;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<UintrChip> chip;
  std::unique_ptr<KernelSim> kernel;
  std::unique_ptr<WorkStealingPolicy> policy;
  std::unique_ptr<PerCpuEngine> engine;
  App* app = nullptr;
};

TEST(PoissonClientTest, RateIsApproximatelyCorrect) {
  LoadgenRig rig;
  PoissonClient::Options options;
  options.rate_rps = 100'000;
  options.seed = 3;
  PoissonClient client(rig.engine.get(), rig.app, {{1.0, ServiceTimeDist::Fixed(1000), 0}},
                       options);
  client.Start();
  rig.sim.RunUntil(kSecond);
  const double generated = static_cast<double>(client.generated());
  EXPECT_NEAR(generated, 100'000.0, 2'000.0);  // ~2% tolerance
  EXPECT_EQ(rig.engine->stats().completed, client.generated());
}

TEST(PoissonClientTest, MixProportionsRespected) {
  LoadgenRig rig;
  PoissonClient::Options options;
  options.rate_rps = 200'000;
  options.seed = 5;
  RequestMix mix = {{0.9, ServiceTimeDist::Fixed(500), 0}, {0.1, ServiceTimeDist::Fixed(800), 1}};
  PoissonClient client(rig.engine.get(), rig.app, mix, options);
  client.Start();
  rig.sim.RunUntil(kSecond / 2);
  const auto& stats = rig.engine->stats();
  const double frac_kind1 =
      static_cast<double>(stats.latency_by_kind[1].Count()) /
      static_cast<double>(stats.completed);
  EXPECT_NEAR(frac_kind1, 0.1, 0.02);
}

TEST(PoissonClientTest, WireLatencyDelaysSubmission) {
  LoadgenRig rig;
  PoissonClient::Options options;
  options.rate_rps = 1'000;
  options.seed = 7;
  options.wire_ns = Micros(50);
  PoissonClient client(rig.engine.get(), rig.app, {{1.0, ServiceTimeDist::Fixed(1000), 0}},
                       options);
  client.Start();
  rig.sim.RunUntil(Millis(100));
  EXPECT_GT(rig.engine->stats().completed, 50u);
}

TEST(PoissonClientTest, StopHaltsGeneration) {
  LoadgenRig rig;
  PoissonClient::Options options;
  options.rate_rps = 100'000;
  PoissonClient client(rig.engine.get(), rig.app, {{1.0, ServiceTimeDist::Fixed(100), 0}},
                       options);
  client.Start();
  rig.sim.RunUntil(Millis(10));
  client.Stop();
  const auto generated = client.generated();
  rig.sim.RunUntil(Millis(20));
  EXPECT_EQ(client.generated(), generated);
}

TEST(MixMeanTest, WeightedMean) {
  RequestMix mix = {{0.995, ServiceTimeDist::Fixed(Micros(4)), 0},
                    {0.005, ServiceTimeDist::Fixed(Millis(10)), 1}};
  EXPECT_NEAR(MixMeanNs(mix), 53'980.0, 1.0);
}

// Arrival-count trajectory sampled at fixed sim-time checkpoints: a
// fingerprint of the client's arrival process that two identical streams
// match exactly and two distinct streams almost surely do not.
std::vector<std::uint64_t> ArrivalTrajectory(std::uint64_t seed, int node_id) {
  LoadgenRig rig;
  PoissonClient::Options options;
  options.rate_rps = 100'000;
  options.seed = seed;
  options.node_id = node_id;
  PoissonClient client(rig.engine.get(), rig.app, {{1.0, ServiceTimeDist::Fixed(1000), 0}},
                       options);
  client.Start();
  std::vector<std::uint64_t> counts;
  for (int step = 1; step <= 200; step++) {
    rig.sim.RunUntil(step * Micros(50));
    counts.push_back(client.generated());
  }
  return counts;
}

TEST(PoissonClientTest, PerNodeStreamsAreIndependentButSeeded) {
  // Same base seed, different node: statistically independent arrivals.
  const auto node0 = ArrivalTrajectory(/*seed=*/9, /*node_id=*/0);
  const auto node1 = ArrivalTrajectory(/*seed=*/9, /*node_id=*/1);
  EXPECT_NE(node0, node1) << "nodes sharing a base seed must not share arrivals";
  // Same (seed, node): fully deterministic.
  EXPECT_EQ(node1, ArrivalTrajectory(/*seed=*/9, /*node_id=*/1));
  // Node 0 uses the base seed unchanged (Rng::DeriveStream(seed, 0) == seed),
  // so pre-cluster single-machine traces are preserved: the derived stream
  // for node 0 matches a raw Rng on the same seed.
  EXPECT_EQ(Rng::DeriveStream(9, 0), 9u);
}

}  // namespace
}  // namespace skyloft
