// Golden tests for tools/skylint: every fixture under tests/skylint_fixtures
// declares its expected diagnostics inline with marker comments, and the
// analyzer's output must match them exactly (same lines, same rules, and —
// when the marker gives one — a message substring).
//
// Marker forms, anywhere in a line:
//   // expect(<rule>)[: <message substring>]       diagnostic on THIS line
//   // expect-next(<rule>)[: <message substring>]  diagnostic on the NEXT line
//
// Files without markers (the *_fixed / *_ok variants) must analyze clean.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "tools/skylint/analysis.h"
#include "tools/skylint/lexer.h"

namespace {

namespace fs = std::filesystem;

struct Expectation {
  int line = 0;
  std::string rule;
  std::string substr;  // empty => any message
  bool matched = false;
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Scans one fixture's raw text for expect()/expect-next() markers.
std::vector<Expectation> ParseExpectations(const std::string& text) {
  std::vector<Expectation> out;
  std::istringstream lines(text);
  std::string line;
  for (int lineno = 1; std::getline(lines, line); lineno++) {
    for (const auto& [tag, offset] :
         {std::pair<const char*, int>{"expect-next(", 1}, {"expect(", 0}}) {
      const std::size_t at = line.find(tag);
      if (at == std::string::npos) continue;
      const std::size_t open = at + std::string(tag).size();
      const std::size_t close = line.find(')', open);
      if (close == std::string::npos) continue;
      Expectation e;
      e.line = lineno + offset;
      e.rule = line.substr(open, close - open);
      if (close + 2 < line.size() && line[close + 1] == ':') {
        e.substr = line.substr(close + 2);
        while (!e.substr.empty() && e.substr.front() == ' ') e.substr.erase(0, 1);
      }
      out.push_back(std::move(e));
      break;  // one marker per line
    }
  }
  return out;
}

std::vector<skylint::Diagnostic> Analyze(const std::string& path, const std::string& text) {
  skylint::Analyzer analyzer;
  analyzer.AddFile(skylint::Lex(path, text));
  return analyzer.Run();
}

class SkylintFixtureTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SkylintFixtureTest, MatchesGolden) {
  const std::string path = std::string(SKYLINT_FIXTURE_DIR) + "/" + GetParam();
  const std::string text = ReadFile(path);
  ASSERT_FALSE(text.empty()) << "cannot read fixture " << path;

  std::vector<Expectation> expected = ParseExpectations(text);
  const std::vector<skylint::Diagnostic> diags = Analyze(path, text);

  for (const skylint::Diagnostic& d : diags) {
    bool matched = false;
    for (Expectation& e : expected) {
      if (e.matched || e.line != d.line || e.rule != d.rule) continue;
      if (!e.substr.empty() && d.message.find(e.substr) == std::string::npos) continue;
      e.matched = true;
      matched = true;
      break;
    }
    EXPECT_TRUE(matched) << "unexpected diagnostic in " << GetParam() << ":\n  line " << d.line
                         << ": " << d.rule << ": " << d.message;
  }
  for (const Expectation& e : expected) {
    EXPECT_TRUE(e.matched) << "missing diagnostic in " << GetParam() << ":\n  expected line "
                           << e.line << ": " << e.rule
                           << (e.substr.empty() ? "" : " (message containing '" + e.substr + "')");
  }
}

std::vector<std::string> FixtureNames() {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(SKYLINT_FIXTURE_DIR)) {
    if (entry.path().extension() == ".cpp") {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

INSTANTIATE_TEST_SUITE_P(Corpus, SkylintFixtureTest, ::testing::ValuesIn(FixtureNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

// The three PR 2 regressions must stay in the corpus, in bad AND fixed form:
// they are the incidents this tool exists to prevent.
TEST(SkylintCorpus, Pr2RegressionsPresent) {
  const std::set<std::string> names = [] {
    std::set<std::string> s;
    for (const std::string& n : FixtureNames()) s.insert(n);
    return s;
  }();
  for (const char* base : {"regress_errno_across_switch", "regress_preempt_unbalanced",
                           "regress_signal_malloc"}) {
    EXPECT_TRUE(names.count(std::string(base) + ".cpp")) << base;
    EXPECT_TRUE(names.count(std::string(base) + "_fixed.cpp")) << base;
  }
}

// The lock-discipline rules (skylint v2) must keep their bad AND fixed
// exemplars in the corpus — one pair per rule — plus the #ifdef coverage
// fixture proving io_uring-only code is analyzed in the epoll config too.
TEST(SkylintCorpus, LockDisciplinePairsPresent) {
  const std::set<std::string> names = [] {
    std::set<std::string> s;
    for (const std::string& n : FixtureNames()) s.insert(n);
    return s;
  }();
  for (const char* base : {"lock_held_across_switch", "lock_order_cycle", "blocking_on_worker",
                           "lock_requires_unheld"}) {
    EXPECT_TRUE(names.count(std::string(base) + ".cpp")) << base;
    EXPECT_TRUE(names.count(std::string(base) + "_fixed.cpp")) << base;
  }
  EXPECT_TRUE(names.count("uring_ifdef_seen.cpp"));
}

// The bad fixtures must also fail at the CLI contract level: nonzero exit is
// what gates CI. Exercised via the library (exit code mirrors !diags.empty()).
TEST(SkylintCorpus, BadVariantsHaveFindings) {
  for (const std::string& name : FixtureNames()) {
    const std::string path = std::string(SKYLINT_FIXTURE_DIR) + "/" + name;
    const std::string text = ReadFile(path);
    const bool expect_findings = !ParseExpectations(text).empty();
    const bool has_findings = !Analyze(path, text).empty();
    EXPECT_EQ(expect_findings, has_findings) << name;
  }
}

}  // namespace
