// Tests for the application models (schbench, workload mixes, batch app) and
// the real KV store.
#include <gtest/gtest.h>

#include "src/simcore/simulation.h"
#include "src/apps/batch_app.h"
#include "src/apps/kvstore.h"
#include "src/apps/schbench.h"
#include "src/apps/workloads.h"
#include "src/libos/percpu_engine.h"
#include "src/policies/cfs.h"
#include "src/policies/round_robin.h"

namespace skyloft {
namespace {

// ---- KvStore ----

TEST(KvStoreTest, SetGetDelete) {
  KvStore kv;
  EXPECT_TRUE(kv.Set("a", "1"));
  EXPECT_FALSE(kv.Set("a", "2"));  // overwrite
  EXPECT_EQ(kv.Get("a"), "2");
  EXPECT_EQ(kv.Get("missing"), std::nullopt);
  EXPECT_TRUE(kv.Delete("a"));
  EXPECT_FALSE(kv.Delete("a"));
  EXPECT_EQ(kv.Get("a"), std::nullopt);
  EXPECT_EQ(kv.Size(), 0u);
}

TEST(KvStoreTest, GrowsPastInitialCapacity) {
  KvStore kv(16);
  for (int i = 0; i < 10'000; i++) {
    kv.Set("key" + std::to_string(i), std::to_string(i * 3));
  }
  EXPECT_EQ(kv.Size(), 10'000u);
  for (int i = 0; i < 10'000; i += 97) {
    EXPECT_EQ(kv.Get("key" + std::to_string(i)), std::to_string(i * 3));
  }
}

TEST(KvStoreTest, TombstoneReuse) {
  KvStore kv(16);
  for (int round = 0; round < 200; round++) {
    const std::string key = "k" + std::to_string(round % 5);
    kv.Set(key, "v");
    kv.Delete(key);
  }
  EXPECT_EQ(kv.Size(), 0u);
  kv.Set("final", "x");
  EXPECT_EQ(kv.Get("final"), "x");
}

TEST(KvStoreTest, ScanIsOrderedAndBounded) {
  KvStore kv;
  kv.Set("b", "2");
  kv.Set("a", "1");
  kv.Set("d", "4");
  kv.Set("c", "3");
  const auto result = kv.Scan("b", 2);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].first, "b");
  EXPECT_EQ(result[1].first, "c");
}

TEST(KvStoreTest, ScanSkipsDeleted) {
  KvStore kv;
  kv.Set("a", "1");
  kv.Set("b", "2");
  kv.Delete("a");
  const auto result = kv.Scan("", 10);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].first, "b");
}

// ---- Workload mixes ----

TEST(WorkloadsTest, DispersiveMixMatchesPaper) {
  const RequestMix mix = DispersiveMix();
  EXPECT_NEAR(MixMeanNs(mix), 53'980.0, 1.0);  // 99.5% x 4us + 0.5% x 10ms
}

TEST(WorkloadsTest, RocksdbMixMatchesPaper) {
  const RequestMix mix = RocksdbBimodalMix();
  // 0.5 * 0.95us + 0.5 * 591us = 295.975 us
  EXPECT_NEAR(MixMeanNs(mix), 295'975.0, 1.0);
}

TEST(WorkloadsTest, MemcachedMixIsLightTailed) {
  const RequestMix mix = MemcachedUsrMix();
  EXPECT_LT(MixMeanNs(mix), 1'100.0);
}

// ---- schbench model ----

struct SchbenchRig {
  explicit SchbenchRig(int cores, std::unique_ptr<SchedPolicy> p) : policy(std::move(p)) {
    MachineConfig mcfg;
    mcfg.num_cores = cores;
    machine = std::make_unique<Machine>(&sim, mcfg);
    chip = std::make_unique<UintrChip>(machine.get());
    kernel = std::make_unique<KernelSim>(machine.get(), chip.get());
    PerCpuEngineConfig cfg;
    for (int i = 0; i < cores; i++) {
      cfg.base.worker_cores.push_back(i);
    }
    cfg.timer_hz = 100'000;
    cfg.tick_path = TickPath::kUserTimer;
    engine = std::make_unique<PerCpuEngine>(machine.get(), chip.get(), kernel.get(),
                                            policy.get(), cfg);
    app = engine->CreateApp("schbench");
    engine->Start();
  }
  Simulation sim;
  std::unique_ptr<Machine> machine;
  std::unique_ptr<UintrChip> chip;
  std::unique_ptr<KernelSim> kernel;
  std::unique_ptr<SchedPolicy> policy;
  std::unique_ptr<PerCpuEngine> engine;
  App* app = nullptr;
};

TEST(SchbenchTest, UndersubscribedWakeupsAreFast) {
  SchbenchRig rig(4, std::make_unique<RoundRobinPolicy>(Micros(50)));
  SchbenchSim bench(rig.engine.get(), rig.app,
                    SchbenchOptions{.worker_threads = 4, .request_ns = Micros(100)});
  bench.Start();
  rig.sim.RunUntil(Millis(50));
  EXPECT_GT(bench.requests_completed(), 100u);
  // Free cores: wakeup latency is just the switch cost, far under 1 us.
  EXPECT_LT(bench.WakeupPercentileNs(0.99), Micros(1));
}

TEST(SchbenchTest, OversubscriptionRaisesWakeupLatency) {
  SchbenchRig rig(2, std::make_unique<RoundRobinPolicy>(Micros(50)));
  SchbenchSim bench(rig.engine.get(), rig.app,
                    SchbenchOptions{.worker_threads = 8, .request_ns = Micros(500)});
  bench.Start();
  rig.sim.RunUntil(Millis(100));
  // 4x oversubscribed: woken workers wait for slices of the runners.
  EXPECT_GT(bench.WakeupPercentileNs(0.99), Micros(20));
}

TEST(SchbenchTest, WorkersKeepCyclingForever) {
  SchbenchRig rig(2, std::make_unique<RoundRobinPolicy>(Micros(50)));
  SchbenchSim bench(rig.engine.get(), rig.app,
                    SchbenchOptions{.worker_threads = 2, .request_ns = Micros(100)});
  bench.Start();
  rig.sim.RunUntil(Millis(10));
  const auto early = bench.requests_completed();
  rig.sim.RunUntil(Millis(20));
  EXPECT_GT(bench.requests_completed(), early) << "message threads must keep waking workers";
}

// ---- Batch app driver ----

TEST(BatchAppTest, SoaksIdleCpu) {
  SchbenchRig rig(2, std::make_unique<CfsPolicy>(CfsParams{}));
  App* batch = rig.engine->CreateApp("batch", true);
  BatchAppDriver driver(rig.engine.get(), batch, BatchAppDriver::Options{.tasks = 2});
  driver.Start();
  rig.sim.RunUntil(Millis(5));
  rig.engine->ResetStats();
  rig.sim.RunUntil(Millis(50));
  // Machine otherwise idle: batch should own nearly all of it.
  EXPECT_GT(driver.CpuShare(), 0.9);
}

TEST(BatchAppTest, SharesUnderCfsWithForegroundWork) {
  SchbenchRig rig(2, std::make_unique<CfsPolicy>(CfsParams{Micros(12) + 500, Micros(50)}));
  App* batch = rig.engine->CreateApp("batch", true);
  BatchAppDriver driver(rig.engine.get(), batch, BatchAppDriver::Options{.tasks = 2});
  driver.Start();
  SchbenchSim fg(rig.engine.get(), rig.app,
                 SchbenchOptions{.worker_threads = 2, .request_ns = Micros(200)});
  fg.Start();
  rig.sim.RunUntil(Millis(5));
  rig.engine->ResetStats();
  rig.sim.RunUntil(Millis(50));
  const double share = driver.CpuShare();
  // CFS fair-shares: batch gets a real slice but not the whole machine.
  EXPECT_GT(share, 0.2);
  EXPECT_LT(share, 0.8);
  EXPECT_GT(fg.requests_completed(), 50u);
}

}  // namespace
}  // namespace skyloft
