#include <gtest/gtest.h>

#include <vector>

#include "src/simcore/cost_model.h"
#include "src/simcore/machine.h"
#include "src/simcore/simulation.h"

namespace skyloft {
namespace {

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulationTest, SameTimeEventsRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(SimulationTest, ScheduleAfterIsRelative) {
  Simulation sim;
  TimeNs seen = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { seen = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 150);
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulationTest, CancelTwiceIsNoop) {
  Simulation sim;
  const EventId id = sim.ScheduleAt(10, [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(kInvalidEventId));
  EXPECT_FALSE(sim.Cancel(999999));
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int count = 0;
  sim.ScheduleAt(10, [&] { count++; });
  sim.ScheduleAt(20, [&] { count++; });
  sim.ScheduleAt(30, [&] { count++; });
  sim.RunUntil(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), 20);
  sim.RunUntil(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.Now(), 100);  // clock advances to the deadline
}

TEST(SimulationTest, RunUntilWithCancelledHead) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.ScheduleAt(5, [&] { ran = true; });
  sim.ScheduleAt(50, [&] { ran = true; });
  sim.Cancel(id);
  sim.RunUntil(10);
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.Now(), 10);
}

TEST(SimulationTest, StopEndsRun) {
  Simulation sim;
  int count = 0;
  sim.ScheduleAt(1, [&] {
    count++;
    sim.Stop();
  });
  sim.ScheduleAt(2, [&] { count++; });
  sim.Run();
  EXPECT_EQ(count, 1);
  sim.Run();  // resumes
  EXPECT_EQ(count, 2);
}

TEST(SimulationTest, StepRunsExactlyOne) {
  Simulation sim;
  int count = 0;
  sim.ScheduleAt(1, [&] { count++; });
  sim.ScheduleAt(2, [&] { count++; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulationDeathTest, SchedulingInThePastAborts) {
  Simulation sim;
  sim.ScheduleAt(100, [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(50, [] {}), "cannot schedule in the past");
}

TEST(SimulationTest, PendingEventsExcludesCancelled) {
  Simulation sim;
  const EventId a = sim.ScheduleAt(1, [] {});
  sim.ScheduleAt(2, [] {});
  EXPECT_EQ(sim.PendingEvents(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.PendingEvents(), 1u);
}

// Property: identical schedules produce identical traces (determinism).
TEST(SimulationTest, DeterministicTraces) {
  auto run_once = [] {
    Simulation sim;
    std::vector<TimeNs> trace;
    int budget = 5000;  // total events to spawn
    // A self-propagating cascade of events.
    std::function<void(int)> spawn = [&](int depth) {
      trace.push_back(sim.Now());
      if (budget-- > 0) {
        sim.ScheduleAfter(depth % 7 + 1, [&spawn, depth] { spawn(depth + 1); });
        if (depth % 3 == 0 && budget-- > 0) {
          sim.ScheduleAfter(depth % 5 + 1, [&spawn, depth] { spawn(depth + 2); });
        }
      }
    };
    sim.ScheduleAt(0, [&] { spawn(0); });
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---- machine.h ----

TEST(MachineTest, SocketTopology) {
  Simulation sim;
  MachineConfig config;
  config.num_cores = 48;
  config.cores_per_socket = 24;
  Machine machine(&sim, config);
  EXPECT_EQ(machine.SocketOf(0), 0);
  EXPECT_EQ(machine.SocketOf(23), 0);
  EXPECT_EQ(machine.SocketOf(24), 1);
  EXPECT_FALSE(machine.CrossNuma(0, 23));
  EXPECT_TRUE(machine.CrossNuma(0, 24));
}

// ---- cost_model.h ----

TEST(CostModelTest, Table6ConversionsAt2GHz) {
  CostModel costs;
  // 1211 cycles at 2 GHz = 605 ns.
  EXPECT_EQ(costs.UserIpiDeliveryNs(), 605);
  EXPECT_EQ(costs.UserTimerReceiveNs(), 321);
  EXPECT_EQ(costs.SignalDeliveryNs(), 2637);
  EXPECT_EQ(costs.KernelIpiDeliveryNs(), 672);
  EXPECT_EQ(costs.SetitimerReceiveNs(), 2528);
}

TEST(CostModelTest, CrossNumaCostsAreHigher) {
  CostModel costs;
  EXPECT_GT(costs.UserIpiDeliveryNs(true), costs.UserIpiDeliveryNs(false));
  EXPECT_GT(costs.UserIpiReceiveNs(true), costs.UserIpiReceiveNs(false));
}

}  // namespace
}  // namespace skyloft
