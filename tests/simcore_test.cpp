#include <gtest/gtest.h>

#include <vector>

#include "src/simcore/cost_model.h"
#include "src/simcore/machine.h"
#include "src/simcore/simulation.h"

namespace skyloft {
namespace {

TEST(SimulationTest, EventsRunInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulationTest, SameTimeEventsRunFifo) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; i++) {
    sim.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
  }
}

TEST(SimulationTest, ScheduleAfterIsRelative) {
  Simulation sim;
  TimeNs seen = -1;
  sim.ScheduleAt(100, [&] {
    sim.ScheduleAfter(50, [&] { seen = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(seen, 150);
}

TEST(SimulationTest, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.ScheduleAt(10, [&] { ran = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(ran);
}

TEST(SimulationTest, CancelTwiceIsNoop) {
  Simulation sim;
  const EventId id = sim.ScheduleAt(10, [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(kInvalidEventId));
  EXPECT_FALSE(sim.Cancel(999999));
}

TEST(SimulationTest, RunUntilStopsAtDeadline) {
  Simulation sim;
  int count = 0;
  sim.ScheduleAt(10, [&] { count++; });
  sim.ScheduleAt(20, [&] { count++; });
  sim.ScheduleAt(30, [&] { count++; });
  sim.RunUntil(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.Now(), 20);
  sim.RunUntil(100);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.Now(), 100);  // clock advances to the deadline
}

TEST(SimulationTest, RunUntilWithCancelledHead) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.ScheduleAt(5, [&] { ran = true; });
  sim.ScheduleAt(50, [&] { ran = true; });
  sim.Cancel(id);
  sim.RunUntil(10);
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.Now(), 10);
}

TEST(SimulationTest, StopEndsRun) {
  Simulation sim;
  int count = 0;
  sim.ScheduleAt(1, [&] {
    count++;
    sim.Stop();
  });
  sim.ScheduleAt(2, [&] { count++; });
  sim.Run();
  EXPECT_EQ(count, 1);
  sim.Run();  // resumes
  EXPECT_EQ(count, 2);
}

TEST(SimulationTest, StepRunsExactlyOne) {
  Simulation sim;
  int count = 0;
  sim.ScheduleAt(1, [&] { count++; });
  sim.ScheduleAt(2, [&] { count++; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulationDeathTest, SchedulingInThePastAborts) {
  Simulation sim;
  sim.ScheduleAt(100, [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(50, [] {}), "cannot schedule in the past");
}

TEST(SimulationTest, PendingEventsExcludesCancelled) {
  Simulation sim;
  const EventId a = sim.ScheduleAt(1, [] {});
  sim.ScheduleAt(2, [] {});
  EXPECT_EQ(sim.PendingEvents(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.PendingEvents(), 1u);
}

// Property: identical schedules produce identical traces (determinism).
TEST(SimulationTest, DeterministicTraces) {
  auto run_once = [] {
    Simulation sim;
    std::vector<TimeNs> trace;
    int budget = 5000;  // total events to spawn
    // A self-propagating cascade of events.
    std::function<void(int)> spawn = [&](int depth) {
      trace.push_back(sim.Now());
      if (budget-- > 0) {
        sim.ScheduleAfter(depth % 7 + 1, [&spawn, depth] { spawn(depth + 1); });
        if (depth % 3 == 0 && budget-- > 0) {
          sim.ScheduleAfter(depth % 5 + 1, [&spawn, depth] { spawn(depth + 2); });
        }
      }
    };
    sim.ScheduleAt(0, [&] { spawn(0); });
    sim.Run();
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

// Regression: the seed implementation accepted Cancel() on an already-fired
// id, permanently leaking a lazy-cancellation entry and underflowing
// PendingEvents() (computed as heap size minus cancelled size, unsigned).
TEST(SimulationTest, CancelAfterFireIsRejected) {
  Simulation sim;
  bool ran = false;
  const EventId id = sim.ScheduleAt(10, [&] { ran = true; });
  sim.Run();
  EXPECT_TRUE(ran);
  EXPECT_FALSE(sim.Cancel(id));
  EXPECT_EQ(sim.PendingEvents(), 0u);  // seed bug: underflowed to ~2^64
  EXPECT_FALSE(sim.Cancel(id));        // stays rejected
}

TEST(SimulationTest, PendingEventsNeverUnderflows) {
  Simulation sim;
  std::vector<EventId> ids;
  for (int i = 0; i < 3; i++) {
    ids.push_back(sim.ScheduleAt(10 + i, [] {}));
  }
  sim.Run();
  for (const EventId id : ids) {
    EXPECT_FALSE(sim.Cancel(id));
  }
  EXPECT_EQ(sim.PendingEvents(), 0u);
  sim.ScheduleAfter(5, [] {});
  sim.ScheduleAfter(6, [] {});
  EXPECT_EQ(sim.PendingEvents(), 2u);
}

// A cancelled id must stay dead even after its slab slot is reused by a new
// event (generation tag check).
TEST(SimulationTest, StaleIdDoesNotAliasReusedSlot) {
  Simulation sim;
  bool a_ran = false;
  bool b_ran = false;
  const EventId a = sim.ScheduleAt(10, [&] { a_ran = true; });
  EXPECT_TRUE(sim.Cancel(a));
  const EventId b = sim.ScheduleAt(10, [&] { b_ran = true; });  // reuses a's slot
  EXPECT_NE(a, b);
  EXPECT_FALSE(sim.Cancel(a));  // must not cancel b through a's stale id
  sim.Run();
  EXPECT_FALSE(a_ran);
  EXPECT_TRUE(b_ran);
}

// ---- periodic events ----

TEST(SimulationTest, PeriodicFiresAtFixedIntervals) {
  Simulation sim;
  std::vector<TimeNs> fires;
  const EventId id = sim.SchedulePeriodic(100, 50, [&] { fires.push_back(sim.Now()); });
  sim.RunUntil(260);
  EXPECT_EQ(fires, (std::vector<TimeNs>{100, 150, 200, 250}));
  // The id remains valid across fires; cancelling stops the series.
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunUntil(1000);
  EXPECT_EQ(fires.size(), 4u);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(SimulationTest, PeriodicCancelFromOwnCallback) {
  Simulation sim;
  int fires = 0;
  EventId id = kInvalidEventId;
  id = sim.SchedulePeriodic(10, 10, [&] {
    fires++;
    if (fires == 3) {
      EXPECT_TRUE(sim.Cancel(id));
    }
  });
  sim.RunUntil(1000);
  EXPECT_EQ(fires, 3);
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

// Re-arm-in-place must order same-tick ties exactly like the seed idiom of
// re-scheduling at the top of the callback: an older one-shot scheduled for
// the same instant fires first (smaller sequence number).
TEST(SimulationTest, PeriodicSameTickOrderMatchesReschedule) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(200, [&] { order.push_back(1); });  // scheduled before t=100
  sim.SchedulePeriodic(100, 100, [&] { order.push_back(2); });
  sim.ScheduleAt(50, [&] {
    // Scheduled at t=50 for t=300: younger than the periodic's t=200 re-arm
    // (sequenced at t=100)? No — the re-arm at t=100 gets a fresh sequence
    // number, so this t=50 schedule is older and fires first at t=300.
    sim.ScheduleAt(300, [&] { order.push_back(3); });
  });
  sim.RunUntil(300);
  // t=100: periodic(2). t=200: one-shot(1) then periodic(2).
  // t=300: one-shot(3) scheduled at t=50, then periodic(2) re-armed at t=200.
  EXPECT_EQ(order, (std::vector<int>{2, 1, 2, 3, 2}));
}

// ---- timing-wheel edge cases ----

// Events exactly at level boundaries (64^k) and at the wheel horizon (2^24,
// where events spill into the overflow heap) must fire in time order.
TEST(SimulationTest, LevelBoundaryEventsFireInOrder) {
  Simulation sim;
  const std::vector<TimeNs> deltas = {
      1,      63,     64,         65,         4095,        4096,        4097,
      262143, 262144, 16777215,   16777216,   16777217,    40'000'000};
  std::vector<TimeNs> fired;
  // Schedule in reverse so insertion order disagrees with time order.
  for (auto it = deltas.rbegin(); it != deltas.rend(); ++it) {
    const TimeNs at = *it;
    sim.ScheduleAt(at, [&fired, &sim] { fired.push_back(sim.Now()); });
  }
  sim.Run();
  EXPECT_EQ(fired, deltas);
  EXPECT_EQ(sim.EventsExecuted(), deltas.size());
}

// Cancelling an event after it has been cascaded into a lower level (and one
// still waiting at a higher level) must both unlink cleanly.
TEST(SimulationTest, CancelDuringCascadeWindow) {
  Simulation sim;
  std::vector<int> order;
  // A and B land in the same level-1 slot as C; entering that window at
  // t=64 cascades all three into level 0.
  const EventId a = sim.ScheduleAt(100, [&] { order.push_back(0); });
  sim.ScheduleAt(101, [&] { order.push_back(1); });
  const EventId d = sim.ScheduleAt(100'000, [&] { order.push_back(2); });
  sim.ScheduleAt(70, [&] {
    order.push_back(3);
    EXPECT_TRUE(sim.Cancel(a));  // already cascaded to level 0
    EXPECT_TRUE(sim.Cancel(d));  // still parked at a higher level
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{3, 1}));
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

// An overflow-heap event and a wheel event at the same timestamp must fire
// in schedule order.
TEST(SimulationTest, OverflowAndWheelTieBreakBySeq) {
  Simulation sim;
  std::vector<int> order;
  const TimeNs t = Millis(20);  // beyond the 2^24 ns wheel horizon at t=0
  sim.ScheduleAt(t, [&] { order.push_back(1); });  // overflow heap
  sim.ScheduleAt(Millis(19), [&] {
    // By now the horizon covers t: this one lands in the wheel but was
    // scheduled later, so it must fire second.
    sim.ScheduleAt(t, [&] { order.push_back(2); });
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulationTest, CancelOverflowEvent) {
  Simulation sim;
  bool ran = false;
  const EventId far = sim.ScheduleAt(Millis(30), [&] { ran = true; });
  sim.ScheduleAt(5, [] {});
  EXPECT_TRUE(sim.Cancel(far));
  EXPECT_FALSE(sim.Cancel(far));
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.Now(), 5);  // the cancelled far event never advances time
}

TEST(SimulationTest, ScheduleAtNowFromCallbackRunsSameTick) {
  Simulation sim;
  std::vector<int> order;
  sim.ScheduleAt(10, [&] {
    order.push_back(1);
    sim.ScheduleAt(sim.Now(), [&] { order.push_back(2); });
  });
  sim.ScheduleAt(11, [&] { order.push_back(3); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// ---- machine.h ----

TEST(MachineTest, SocketTopology) {
  Simulation sim;
  MachineConfig config;
  config.num_cores = 48;
  config.cores_per_socket = 24;
  Machine machine(&sim, config);
  EXPECT_EQ(machine.SocketOf(0), 0);
  EXPECT_EQ(machine.SocketOf(23), 0);
  EXPECT_EQ(machine.SocketOf(24), 1);
  EXPECT_FALSE(machine.CrossNuma(0, 23));
  EXPECT_TRUE(machine.CrossNuma(0, 24));
}

// ---- cost_model.h ----

TEST(CostModelTest, Table6ConversionsAt2GHz) {
  CostModel costs;
  // 1211 cycles at 2 GHz = 605 ns.
  EXPECT_EQ(costs.UserIpiDeliveryNs(), 605);
  EXPECT_EQ(costs.UserTimerReceiveNs(), 321);
  EXPECT_EQ(costs.SignalDeliveryNs(), 2637);
  EXPECT_EQ(costs.KernelIpiDeliveryNs(), 672);
  EXPECT_EQ(costs.SetitimerReceiveNs(), 2528);
}

TEST(CostModelTest, CrossNumaCostsAreHigher) {
  CostModel costs;
  EXPECT_GT(costs.UserIpiDeliveryNs(true), costs.UserIpiDeliveryNs(false));
  EXPECT_GT(costs.UserIpiReceiveNs(true), costs.UserIpiReceiveNs(false));
}

}  // namespace
}  // namespace skyloft
