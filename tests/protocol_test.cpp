// Tests for the memcached text-protocol codec and its execution against the
// real KvStore, plus an end-to-end request stream over the TCP model.
#include <gtest/gtest.h>

#include "src/simcore/simulation.h"
#include "src/apps/memcached_protocol.h"
#include "src/net/tcp.h"

namespace skyloft {
namespace {

TEST(McProtocolTest, ParseGet) {
  std::size_t pos = 0;
  const auto cmd = ParseMcCommand("get user42\r\n", &pos);
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->op, McOp::kGet);
  EXPECT_EQ(cmd->key, "user42");
  EXPECT_EQ(pos, 12u);
}

TEST(McProtocolTest, ParseSetWithData) {
  std::size_t pos = 0;
  const auto cmd = ParseMcCommand("set k 7 0 5\r\nhello\r\n", &pos);
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->op, McOp::kSet);
  EXPECT_EQ(cmd->key, "k");
  EXPECT_EQ(cmd->flags, 7u);
  EXPECT_EQ(cmd->data, "hello");
  EXPECT_EQ(pos, 20u);
}

TEST(McProtocolTest, ParseDelete) {
  std::size_t pos = 0;
  const auto cmd = ParseMcCommand("delete gone\r\n", &pos);
  ASSERT_TRUE(cmd.has_value());
  EXPECT_EQ(cmd->op, McOp::kDelete);
  EXPECT_EQ(cmd->key, "gone");
}

TEST(McProtocolTest, IncompleteLineReturnsNullopt) {
  std::size_t pos = 0;
  EXPECT_FALSE(ParseMcCommand("get user", &pos).has_value());
  EXPECT_EQ(pos, 0u);
}

TEST(McProtocolTest, IncompleteSetDataReturnsNullopt) {
  std::size_t pos = 0;
  EXPECT_FALSE(ParseMcCommand("set k 0 0 10\r\nshort\r\n", &pos).has_value());
  EXPECT_EQ(pos, 0u);
}

TEST(McProtocolTest, MalformedRejected) {
  std::size_t pos = 0;
  EXPECT_FALSE(ParseMcCommand("frobnicate x\r\n", &pos).has_value());
  pos = 0;
  EXPECT_FALSE(ParseMcCommand("set k x 0 3\r\nabc\r\n", &pos).has_value());
  pos = 0;
  EXPECT_FALSE(ParseMcCommand("set k 0 0 3\r\nabcXY", &pos).has_value());
}

TEST(McProtocolTest, MultipleCommandsInOneBuffer) {
  const std::string buffer = "set a 0 0 1\r\nx\r\nget a\r\ndelete a\r\n";
  std::size_t pos = 0;
  const auto c1 = ParseMcCommand(buffer, &pos);
  const auto c2 = ParseMcCommand(buffer, &pos);
  const auto c3 = ParseMcCommand(buffer, &pos);
  ASSERT_TRUE(c1 && c2 && c3);
  EXPECT_EQ(c1->op, McOp::kSet);
  EXPECT_EQ(c2->op, McOp::kGet);
  EXPECT_EQ(c3->op, McOp::kDelete);
  EXPECT_EQ(pos, buffer.size());
}

TEST(McProtocolTest, ExecuteAgainstStore) {
  KvStore store;
  McCommand set;
  set.op = McOp::kSet;
  set.key = "k";
  set.data = "value";
  EXPECT_EQ(ExecuteMcCommand(store, set), "STORED\r\n");

  McCommand get;
  get.op = McOp::kGet;
  get.key = "k";
  EXPECT_EQ(ExecuteMcCommand(store, get), "VALUE k 0 5\r\nvalue\r\nEND\r\n");

  McCommand del;
  del.op = McOp::kDelete;
  del.key = "k";
  EXPECT_EQ(ExecuteMcCommand(store, del), "DELETED\r\n");
  EXPECT_EQ(ExecuteMcCommand(store, get), "END\r\n");
  EXPECT_EQ(ExecuteMcCommand(store, del), "NOT_FOUND\r\n");
}

TEST(McProtocolTest, FormatParseRoundTrip) {
  McCommand set;
  set.op = McOp::kSet;
  set.key = "roundtrip";
  set.flags = 3;
  set.data = "payload with spaces";
  std::size_t pos = 0;
  const auto parsed = ParseMcCommand(FormatMcCommand(set), &pos);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->key, set.key);
  EXPECT_EQ(parsed->flags, set.flags);
  EXPECT_EQ(parsed->data, set.data);
}

// End-to-end: memcached commands streamed over the lossy TCP model into a
// server that parses incrementally and executes against the store — the full
// §3.5 user-space stack in miniature.
TEST(McProtocolTest, CommandsOverLossyTcp) {
  Simulation sim;
  TcpWire wire(&sim, Micros(10), /*loss=*/0.15, /*seed=*/5);
  TcpEndpoint client(&sim, &wire, "client");
  TcpEndpoint server(&sim, &wire, "server");
  wire.Attach(&client, &server);

  KvStore store;
  std::string rx_buffer;
  int executed = 0;
  std::string last_response;
  server.SetReceiveCallback([&](const std::string& data) {
    rx_buffer += data;
    std::size_t pos = 0;
    while (true) {
      const auto cmd = ParseMcCommand(rx_buffer, &pos);
      if (!cmd) {
        break;
      }
      last_response = ExecuteMcCommand(store, *cmd);
      executed++;
    }
    rx_buffer.erase(0, pos);
  });

  server.Listen();
  client.Connect();
  sim.RunUntil(Millis(100));
  ASSERT_EQ(client.state(), TcpState::kEstablished);

  for (int i = 0; i < 30; i++) {
    McCommand set;
    set.op = McOp::kSet;
    set.key = "key" + std::to_string(i);
    set.data = "value" + std::to_string(i);
    client.Send(FormatMcCommand(set));
    sim.RunUntil(sim.Now() + Millis(5));
  }
  McCommand get;
  get.op = McOp::kGet;
  get.key = "key7";
  client.Send(FormatMcCommand(get));
  sim.RunUntil(sim.Now() + kSecond);

  EXPECT_EQ(executed, 31);
  EXPECT_EQ(store.Size(), 30u);
  EXPECT_EQ(last_response, "VALUE key7 0 6\r\nvalue7\r\nEND\r\n");
}

}  // namespace
}  // namespace skyloft
