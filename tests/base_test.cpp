#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/base/bitmap.h"
#include "src/base/histogram.h"
#include "src/base/intrusive_list.h"
#include "src/base/random.h"
#include "src/base/ring_buffer.h"
#include "src/base/time.h"

namespace skyloft {
namespace {

// ---- time.h ----

TEST(TimeTest, CyclesToNsAtDefaultFrequency) {
  // 2 GHz: 1 cycle = 0.5 ns.
  EXPECT_EQ(CyclesToNs(2000), 1000);
  EXPECT_EQ(CyclesToNs(1), 0);  // truncation
  EXPECT_EQ(CyclesToNs(2), 1);
}

TEST(TimeTest, NsToCyclesRoundTrip) {
  EXPECT_EQ(NsToCycles(1000), 2000);
  EXPECT_EQ(NsToCycles(CyclesToNs(123456)), 123456);
}

TEST(TimeTest, CyclesToNsCustomFrequency) {
  EXPECT_EQ(CyclesToNs(3'000'000'000, 3'000'000'000), kSecond);
}

TEST(TimeTest, HzToPeriod) {
  EXPECT_EQ(HzToPeriodNs(1000), Millis(1));
  EXPECT_EQ(HzToPeriodNs(100'000), Micros(10));
  EXPECT_EQ(HzToPeriodNs(250), Millis(4));
}

TEST(TimeTest, NoOverflowOnLongDurations) {
  // A day's worth of cycles should convert without overflow.
  const Cycles day_cycles = kDefaultCpuHz * 86400;
  EXPECT_EQ(CyclesToNs(day_cycles), kSecond * 86400);
}

// ---- random.h ----

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; i++) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (a.NextU64() == b.NextU64()) {
      same++;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; i++) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; i++) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, ExponentialMeanConverges) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; i++) {
    sum += rng.NextExponential(100.0);
  }
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    if (rng.NextBool(0.25)) {
      hits++;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(ServiceTimeDistTest, FixedAlwaysSame) {
  Rng rng(1);
  auto dist = ServiceTimeDist::Fixed(Micros(4));
  for (int i = 0; i < 10; i++) {
    EXPECT_EQ(dist.Sample(rng), Micros(4));
  }
  EXPECT_DOUBLE_EQ(dist.MeanNs(), static_cast<double>(Micros(4)));
}

TEST(ServiceTimeDistTest, BimodalProportions) {
  Rng rng(3);
  auto dist = ServiceTimeDist::Bimodal(0.995, Micros(4), Millis(10));
  int longs = 0;
  const int n = 200000;
  for (int i = 0; i < n; i++) {
    if (dist.Sample(rng) == Millis(10)) {
      longs++;
    }
  }
  EXPECT_NEAR(static_cast<double>(longs) / n, 0.005, 0.001);
  // Mean: 0.995*4us + 0.005*10ms = 53.98 us.
  EXPECT_NEAR(dist.MeanNs(), 53980.0, 1.0);
}

TEST(ServiceTimeDistTest, ExponentialMean) {
  Rng rng(5);
  auto dist = ServiceTimeDist::Exponential(Micros(10));
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; i++) {
    sum += static_cast<double>(dist.Sample(rng));
  }
  EXPECT_NEAR(sum / n, static_cast<double>(Micros(10)), 200.0);
}

// ---- histogram.h ----

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
}

TEST(HistogramTest, SingleValue) {
  LatencyHistogram h;
  h.Record(1234);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.Min(), 1234);
  EXPECT_EQ(h.Max(), 1234);
  EXPECT_DOUBLE_EQ(h.Mean(), 1234.0);
  // Percentile is bucket-bounded above, clamped by max.
  EXPECT_EQ(h.Percentile(0.5), 1234);
  EXPECT_EQ(h.Percentile(0.99), 1234);
}

TEST(HistogramTest, ExactForSmallValues) {
  // Values < 128 land in exact buckets.
  LatencyHistogram h;
  for (int v = 0; v < 100; v++) {
    h.Record(v);
  }
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(0.5), 49);
  EXPECT_EQ(h.Percentile(1.0), 99);
}

TEST(HistogramTest, NegativeClampedToZero) {
  LatencyHistogram h;
  h.Record(-5);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
}

TEST(HistogramTest, MergeCombinesCountsAndExtremes) {
  LatencyHistogram a;
  LatencyHistogram b;
  a.Record(10);
  a.Record(20);
  b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 3u);
  EXPECT_EQ(a.Min(), 10);
  EXPECT_EQ(a.Max(), 1000000);
}

TEST(HistogramTest, ResetClears) {
  LatencyHistogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.Count(), 0u);
  EXPECT_EQ(h.Percentile(0.99), 0);
}

// Property: percentile error is bounded by the bucket resolution (<1%).
class HistogramErrorTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(HistogramErrorTest, RelativeErrorBounded) {
  const std::int64_t scale = GetParam();
  Rng rng(17);
  LatencyHistogram h;
  std::vector<std::int64_t> values;
  for (int i = 0; i < 20000; i++) {
    const auto v = static_cast<std::int64_t>(rng.NextExponential(static_cast<double>(scale)));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const auto exact = values[static_cast<std::size_t>(q * (values.size() - 1))];
    const auto approx = h.Percentile(q);
    if (exact > 256) {
      const double rel = std::abs(static_cast<double>(approx - exact)) /
                         static_cast<double>(exact);
      EXPECT_LT(rel, 0.02) << "q=" << q << " exact=" << exact << " approx=" << approx;
    } else {
      EXPECT_LE(std::abs(approx - exact), 4) << "q=" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Scales, HistogramErrorTest,
                         ::testing::Values<std::int64_t>(100, 10'000, 1'000'000,
                                                         100'000'000));

TEST(HistogramTest, PercentileZeroReturnsExactMin) {
  // Regression: p0 used to return the bucket UPPER bound of the lowest
  // occupied bucket — e.g. 1008 for a 1000 ns minimum — biasing every low
  // quantile high. q=0 must report the tracked minimum exactly.
  LatencyHistogram h;
  h.Record(1000);
  h.Record(5000);
  EXPECT_EQ(h.Percentile(0.0), 1000);
  EXPECT_EQ(h.Percentile(0.0), h.Min());
}

// Property: p0/p50/p99/p100 against a sorted-vector nearest-rank reference.
// The endpoints are exact (Percentile clamps to the tracked [min, max]); the
// interior quantiles are within the documented 1/64 bucket-resolution bound,
// always from above (bucket upper bound >= every member of the bucket).
TEST_P(HistogramErrorTest, QuantilesMatchSortedReference) {
  const std::int64_t scale = GetParam();
  Rng rng(23);
  LatencyHistogram h;
  std::vector<std::int64_t> values;
  for (int i = 0; i < 20000; i++) {
    const auto v = static_cast<std::int64_t>(rng.NextExponential(static_cast<double>(scale)));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(h.Percentile(0.0), values.front());
  EXPECT_EQ(h.Percentile(1.0), values.back());
  for (const double q : {0.5, 0.99}) {
    const auto exact = values[static_cast<std::size_t>(q * (values.size() - 1))];
    const auto approx = h.Percentile(q);
    ASSERT_GT(exact, 0);
    EXPECT_GE(approx, exact) << "q=" << q;
    const double rel =
        static_cast<double>(approx - exact) / static_cast<double>(exact);
    EXPECT_LE(rel, 1.0 / 64.0) << "q=" << q << " exact=" << exact << " approx=" << approx;
  }
}

// ---- intrusive_list.h ----

struct Node : ListNode {
  explicit Node(int v) : value(v) {}
  int value;
};

TEST(IntrusiveListTest, PushPopFifo) {
  IntrusiveList<Node> list;
  Node a(1);
  Node b(2);
  Node c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  EXPECT_EQ(list.Size(), 3u);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 2);
  EXPECT_EQ(list.PopFront()->value, 3);
  EXPECT_TRUE(list.Empty());
  EXPECT_EQ(list.PopFront(), nullptr);
}

TEST(IntrusiveListTest, PushFrontAndBack) {
  IntrusiveList<Node> list;
  Node a(1);
  Node b(2);
  list.PushBack(&a);
  list.PushFront(&b);
  EXPECT_EQ(list.Front()->value, 2);
  EXPECT_EQ(list.Back()->value, 1);
}

TEST(IntrusiveListTest, RemoveFromMiddle) {
  IntrusiveList<Node> list;
  Node a(1);
  Node b(2);
  Node c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  list.Remove(&b);
  EXPECT_EQ(list.Size(), 2u);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 3);
  EXPECT_FALSE(b.IsLinked());
}

TEST(IntrusiveListTest, ReusableAfterRemove) {
  IntrusiveList<Node> list;
  Node a(1);
  list.PushBack(&a);
  list.PopFront();
  list.PushBack(&a);  // relinking must be allowed
  EXPECT_EQ(list.Size(), 1u);
}

TEST(IntrusiveListTest, Iteration) {
  IntrusiveList<Node> list;
  Node nodes[] = {Node(1), Node(2), Node(3)};
  for (auto& n : nodes) {
    list.PushBack(&n);
  }
  int sum = 0;
  for (Node* n : list) {
    sum += n->value;
  }
  EXPECT_EQ(sum, 6);
}

TEST(IntrusiveListDeathTest, DoubleInsertAborts) {
  IntrusiveList<Node> list;
  Node a(1);
  list.PushBack(&a);
  EXPECT_DEATH(list.PushBack(&a), "already on a list");
}

// ---- ring_buffer.h ----

TEST(SpscRingTest, PushPopOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; i++) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99)) << "ring should be full";
  int out;
  for (int i = 0; i < 8; i++) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));
}

TEST(SpscRingTest, WrapAround) {
  SpscRing<int> ring(4);
  int out;
  for (int round = 0; round < 100; round++) {
    EXPECT_TRUE(ring.TryPush(round));
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, round);
  }
  EXPECT_TRUE(ring.Empty());
}

TEST(SpscRingTest, SizeApprox) {
  SpscRing<int> ring(16);
  EXPECT_EQ(ring.SizeApprox(), 0u);
  ring.TryPush(1);
  ring.TryPush(2);
  EXPECT_EQ(ring.SizeApprox(), 2u);
  EXPECT_EQ(ring.Capacity(), 16u);
}

TEST(SpscRingDeathTest, NonPowerOfTwoRejected) {
  EXPECT_DEATH(SpscRing<int>(10), "power of two");
}

// ---- bitmap.h ----

TEST(BitmapTest, SetClearTest) {
  Bitmap64 bm;
  EXPECT_TRUE(bm.None());
  bm.Set(0);
  bm.Set(63);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(63));
  EXPECT_FALSE(bm.Test(32));
  EXPECT_EQ(bm.Count(), 2);
  bm.Clear(63);
  EXPECT_FALSE(bm.Test(63));
}

TEST(BitmapTest, HighestSetIsPriorityOrder) {
  Bitmap64 bm;
  EXPECT_EQ(bm.HighestSet(), -1);
  bm.Set(3);
  bm.Set(41);
  bm.Set(7);
  EXPECT_EQ(bm.HighestSet(), 41);
}

TEST(BitmapTest, ExchangeTakesAllBits) {
  Bitmap64 bm;
  bm.Set(1);
  bm.Set(2);
  const std::uint64_t old = bm.Exchange(0);
  EXPECT_EQ(old, 0b110u);
  EXPECT_TRUE(bm.None());
}

TEST(BitmapTest, OrMergesBits) {
  Bitmap64 bm;
  bm.Or(0b101);
  EXPECT_TRUE(bm.Test(0));
  EXPECT_TRUE(bm.Test(2));
  EXPECT_EQ(bm.Count(), 2);
}

}  // namespace
}  // namespace skyloft
